#include "android/location_manager.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "android/android_platform.h"
#include "android/exceptions.h"
#include "support/geo_units.h"

namespace mobivine::android {

LocationManager::LocationManager(AndroidPlatform& platform)
    : platform_(platform) {}

std::vector<std::string> LocationManager::getProviders() const {
  return {GPS_PROVIDER, NETWORK_PROVIDER};
}

Location LocationManager::getCurrentLocation(const std::string& provider) {
  platform_.checkPermission(permissions::kFineLocation);
  if (provider != GPS_PROVIDER && provider != NETWORK_PROVIDER) {
    throw IllegalArgumentException("unknown location provider: " + provider);
  }
  auto& device = platform_.device();
  device.scheduler().AdvanceBy(
      platform_.cost().get_location_framework.Sample(device.rng()));

  // getCurrentLocation serves the fast path: low-power for "network",
  // low-power cached fix for "gps" too (the full fix belongs to the
  // request-updates path, which Figure 10 does not measure).
  const device::GpsFix fix =
      device.gps().BlockingFix(device::GpsMode::kLowPower);
  Location location(provider);
  if (!fix.valid) return location;  // m5 returned null; see header
  location.setLatitude(fix.latitude_deg);
  location.setLongitude(fix.longitude_deg);
  location.setAltitude(fix.altitude_m);
  location.setAccuracy(static_cast<float>(fix.horizontal_accuracy_m));
  location.setSpeed(static_cast<float>(fix.speed_mps));
  location.setBearing(static_cast<float>(fix.heading_deg));
  location.setTime(fix.timestamp.micros() / 1000);
  return location;
}

void LocationManager::Validate(double latitude, double longitude,
                               float radius) const {
  if (latitude < -90 || latitude > 90 || longitude < -180 || longitude > 180) {
    throw IllegalArgumentException("latitude/longitude out of range");
  }
  if (!(radius > 0.0f) || std::isnan(radius)) {
    throw IllegalArgumentException("radius must be > 0");
  }
}

void LocationManager::addProximityAlert(double latitude, double longitude,
                                        float radius, long long expiration_ms,
                                        const Intent& intent) {
  if (platform_.api_level() == ApiLevel::k10) {
    throw UnsupportedOperationException(
        "addProximityAlert(Intent) was removed in Android 1.0; "
        "use the PendingIntent overload");
  }
  platform_.checkPermission(permissions::kFineLocation);
  Validate(latitude, longitude, radius);
  if (intent.getAction().empty()) {
    throw IllegalArgumentException("proximity intent has no action");
  }
  Alert alert;
  alert.latitude = latitude;
  alert.longitude = longitude;
  alert.radius_m = radius;
  alert.has_expiration = expiration_ms >= 0;
  alert.expires_at =
      alert.has_expiration
          ? platform_.device().scheduler().now() + sim::SimTime::Millis(expiration_ms)
          : sim::SimTime::Max();
  alert.use_pending = false;
  alert.intent = intent;
  Arm(std::move(alert));
}

void LocationManager::addProximityAlert(
    double latitude, double longitude, float radius, long long expiration_ms,
    std::shared_ptr<PendingIntent> pending_intent) {
  if (platform_.api_level() == ApiLevel::kM5) {
    throw UnsupportedOperationException(
        "PendingIntent does not exist on SDK m5-rc15");
  }
  platform_.checkPermission(permissions::kFineLocation);
  Validate(latitude, longitude, radius);
  if (!pending_intent) {
    throw IllegalArgumentException("pending intent is null");
  }
  Alert alert;
  alert.latitude = latitude;
  alert.longitude = longitude;
  alert.radius_m = radius;
  alert.has_expiration = expiration_ms >= 0;
  alert.expires_at =
      alert.has_expiration
          ? platform_.device().scheduler().now() + sim::SimTime::Millis(expiration_ms)
          : sim::SimTime::Max();
  alert.use_pending = true;
  alert.pending = std::move(pending_intent);
  Arm(std::move(alert));
}

void LocationManager::Arm(Alert alert) {
  auto& device = platform_.device();
  device.scheduler().AdvanceBy(
      platform_.cost().add_proximity_alert.Sample(device.rng()));
  alerts_.push_back(std::move(alert));
  EnsurePoll();
}

void LocationManager::removeProximityAlert(const std::string& action) {
  alerts_.erase(std::remove_if(alerts_.begin(), alerts_.end(),
                               [&action](const Alert& alert) {
                                 return !alert.use_pending &&
                                        alert.intent.getAction() == action;
                               }),
                alerts_.end());
}

void LocationManager::removeProximityAlert(
    const std::shared_ptr<PendingIntent>& pending) {
  alerts_.erase(std::remove_if(alerts_.begin(), alerts_.end(),
                               [&pending](const Alert& alert) {
                                 return alert.use_pending &&
                                        alert.pending == pending;
                               }),
                alerts_.end());
}

void LocationManager::EnsurePoll() {
  if (poll_running_) return;
  poll_running_ = true;
  // The closure self-references weakly; the strong reference lives in
  // poll_tick_ so an abandoned manager can't keep the chain alive
  // through a shared_ptr cycle.
  poll_tick_ = std::make_shared<std::function<void()>>();
  std::weak_ptr<bool> alive = platform_.alive_token();
  std::weak_ptr<std::function<void()>> weak_tick = poll_tick_;
  *poll_tick_ = [this, weak_tick, alive] {
    auto locked = alive.lock();
    if (!locked || !*locked) return;
    PollTick();
    if (alerts_.empty()) {
      poll_running_ = false;
      return;
    }
    if (auto self = weak_tick.lock()) {
      platform_.device().scheduler().ScheduleAfter(
          platform_.cost().proximity_poll_interval, *self);
    }
  };
  platform_.device().scheduler().ScheduleAfter(
      platform_.cost().proximity_poll_interval, *poll_tick_);
}

void LocationManager::PollTick() {
  auto& device = platform_.device();
  const sim::SimTime now = device.scheduler().now();

  // Expire first.
  alerts_.erase(std::remove_if(alerts_.begin(), alerts_.end(),
                               [now](const Alert& alert) {
                                 return alert.has_expiration &&
                                        now >= alert.expires_at;
                               }),
                alerts_.end());
  if (alerts_.empty()) return;

  const device::GpsFix fix = device.gps().BlockingFix(device::GpsMode::kBalanced);
  if (!fix.valid) return;

  // Compute transitions, then deliver (delivery may re-enter alerts_).
  std::vector<std::pair<Alert, bool>> to_deliver;
  for (Alert& alert : alerts_) {
    const double distance = support::HaversineMeters(
        fix.latitude_deg, fix.longitude_deg, alert.latitude, alert.longitude);
    const bool inside_now = distance <= alert.radius_m;
    if (inside_now != alert.inside) {
      alert.inside = inside_now;
      to_deliver.emplace_back(alert, inside_now);
    }
  }
  for (const auto& [alert, entering] : to_deliver) {
    Deliver(alert, entering);
  }
}

void LocationManager::Deliver(const Alert& alert, bool entering) {
  if (alert.use_pending) {
    Intent fill_in;
    fill_in.putExtra("entering", entering);
    alert.pending->send(fill_in);
    return;
  }
  Intent intent = alert.intent;
  intent.putExtra("entering", entering);
  platform_.application_context().broadcastIntent(intent);
}

}  // namespace mobivine::android
