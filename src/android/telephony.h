// android.telephony analog. m5 exposed phone-call control through the
// (semi-internal) IPhone interface; we model it as TelephonyManager with
// call() / endCall() / a PhoneStateListener. This interface has NO S60
// counterpart — the asymmetry behind the paper's note that the Call proxy
// exists on Android and WebView but not S60.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "device/cellular_modem.h"

namespace mobivine::android {

class AndroidPlatform;

/// android.telephony.PhoneStateListener analog (call-state only).
class PhoneStateListener {
 public:
  static constexpr int CALL_STATE_IDLE = 0;
  static constexpr int CALL_STATE_RINGING = 1;
  static constexpr int CALL_STATE_OFFHOOK = 2;

  virtual ~PhoneStateListener() = default;
  virtual void onCallStateChanged(int state,
                                  const std::string& incoming_number) = 0;
};

class TelephonyManager {
 public:
  explicit TelephonyManager(AndroidPlatform& platform) : platform_(platform) {}

  /// Place a call (the IPhone.call path). Throws SecurityException
  /// (no CALL_PHONE) or IllegalArgumentException (empty number).
  /// Returns false if a call is already in progress.
  bool call(const std::string& number);

  void endCall();

  /// Android call state mapped from the modem's state machine.
  int getCallState() const;

  void listen(PhoneStateListener* listener);
  void stopListening(PhoneStateListener* listener);

  /// Semi-internal IPhone surface (the paper's Call proxy was built on
  /// android.telephony.IPhone): full-resolution call-state callback,
  /// not the coarse IDLE/OFFHOOK of PhoneStateListener.
  void setDetailedCallListener(std::function<void(device::CallState)> listener) {
    detailed_listener_ = std::move(listener);
  }

 private:
  void NotifyListeners(device::CallState state);

  AndroidPlatform& platform_;
  std::vector<PhoneStateListener*> listeners_;
  std::function<void(device::CallState)> detailed_listener_;
  std::string current_number_;
};

}  // namespace mobivine::android
