#include "android/context.h"

#include <algorithm>

#include "android/android_platform.h"

namespace mobivine::android {

void* Context::getSystemService(const std::string& name) {
  if (name == LOCATION_SERVICE) {
    return &platform_.location_manager();
  }
  if (name == TELEPHONY_SERVICE) {
    return &platform_.telephony_manager();
  }
  return nullptr;  // Android's contract: unknown service name -> null
}

void Context::registerReceiver(IntentReceiver* receiver, IntentFilter filter) {
  if (receiver == nullptr) return;
  receivers_.push_back({receiver, std::move(filter)});
}

void Context::unregisterReceiver(IntentReceiver* receiver) {
  receivers_.erase(std::remove_if(receivers_.begin(), receivers_.end(),
                                  [receiver](const Registration& reg) {
                                    return reg.receiver == receiver;
                                  }),
                   receivers_.end());
}

void Context::broadcastIntent(const Intent& intent) {
  // Snapshot matching receivers now; deliver through the main-thread queue
  // with one dispatch latency each. A receiver unregistered between
  // broadcast and dispatch is NOT delivered to (checked at fire time).
  std::vector<IntentReceiver*> matched;
  for (const auto& reg : receivers_) {
    if (reg.filter.matches(intent)) matched.push_back(reg.receiver);
  }
  auto& scheduler = platform_.device().scheduler();
  std::weak_ptr<bool> alive = platform_.alive_token();
  sim::SimTime delay = platform_.cost().broadcast_dispatch;
  for (IntentReceiver* receiver : matched) {
    scheduler.ScheduleAfter(delay, [this, receiver, intent, alive] {
      auto locked = alive.lock();
      if (!locked || !*locked) return;
      const bool still_registered =
          std::any_of(receivers_.begin(), receivers_.end(),
                      [receiver](const Registration& reg) {
                        return reg.receiver == receiver;
                      });
      if (still_registered) receiver->onReceiveIntent(*this, intent);
    });
    delay += platform_.cost().broadcast_dispatch;
  }
}

}  // namespace mobivine::android
