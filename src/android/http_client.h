// org.apache.http analog: request objects (HttpGet/HttpPost) executed by a
// DefaultHttpClient. Blocking, like the 2009 stack; failures surface as
// ClientProtocolException / ConnectTimeoutException — a third error style
// after S60's IOException and WebView's error codes.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "device/http_message.h"

namespace mobivine::android {

class AndroidPlatform;

/// Base of HttpGet/HttpPost (org.apache.http.client.methods.HttpUriRequest).
class HttpUriRequest {
 public:
  virtual ~HttpUriRequest() = default;
  explicit HttpUriRequest(std::string uri) : uri_(std::move(uri)) {}

  virtual const char* getMethod() const = 0;
  const std::string& getURI() const { return uri_; }

  void addHeader(const std::string& name, const std::string& value) {
    headers_.Set(name, value);
  }
  const device::HeaderMap& headers() const { return headers_; }

 private:
  std::string uri_;
  device::HeaderMap headers_;
};

class HttpGet : public HttpUriRequest {
 public:
  explicit HttpGet(std::string uri) : HttpUriRequest(std::move(uri)) {}
  const char* getMethod() const override { return "GET"; }
};

class HttpPost : public HttpUriRequest {
 public:
  explicit HttpPost(std::string uri) : HttpUriRequest(std::move(uri)) {}
  const char* getMethod() const override { return "POST"; }

  void setEntity(std::string body) { body_ = std::move(body); }
  const std::string& entity() const { return body_; }

 private:
  std::string body_;
};

/// org.apache.http.HttpResponse analog.
class ApacheHttpResponse {
 public:
  ApacheHttpResponse() = default;
  explicit ApacheHttpResponse(device::HttpResponse response)
      : response_(std::move(response)) {}

  int getStatusCode() const { return response_.status; }
  const std::string& getReasonPhrase() const { return response_.reason; }
  std::optional<std::string> getFirstHeader(const std::string& name) const {
    return response_.headers.Get(name);
  }
  const std::string& getEntity() const { return response_.body; }

 private:
  device::HttpResponse response_;
};

/// org.apache.http.impl.client.DefaultHttpClient analog.
class DefaultHttpClient {
 public:
  explicit DefaultHttpClient(AndroidPlatform& platform) : platform_(platform) {}

  /// Blocking execute. Throws SecurityException (no INTERNET permission),
  /// IllegalArgumentException (malformed URI), ClientProtocolException
  /// (unreachable host) or ConnectTimeoutException (network timeout).
  ApacheHttpResponse execute(const HttpUriRequest& request);

 private:
  AndroidPlatform& platform_;
};

}  // namespace mobivine::android
