// android.location.LocationManager analog (m5-rc15, plus the 1.0 variant).
//
// Contrasts with s60::LocationProvider that the Location proxy absorbs:
//  * provider selected by NAME ("gps"/"network"), not criteria;
//  * getCurrentLocation() is fast (serves the cached/coarse path);
//  * proximity alerts deliver BOTH entry and exit events, repeatedly,
//    until `expiration` elapses — via Intent broadcast (m5) or
//    PendingIntent (1.0), not a listener object;
//  * the documented exception set is {SecurityException} plus
//    IllegalArgumentException for bad providers/radii.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "android/intent.h"
#include "android/location.h"
#include "sim/clock.h"

namespace mobivine::android {

class AndroidPlatform;

class LocationManager {
 public:
  static constexpr const char* GPS_PROVIDER = "gps";
  static constexpr const char* NETWORK_PROVIDER = "network";

  explicit LocationManager(AndroidPlatform& platform);

  /// Blocking read of the current location for a named provider.
  /// Throws SecurityException (no ACCESS_FINE_LOCATION) or
  /// IllegalArgumentException (unknown provider). Returns an invalid-time
  /// location (getTime()==0, lat/lon 0) when no fix is available — m5
  /// returned null; callers must check.
  Location getCurrentLocation(const std::string& provider);

  /// m5-rc15 signature: the alert is delivered by broadcasting `intent`.
  /// On ApiLevel::k10 this entry point no longer exists and throws
  /// UnsupportedOperationException — the E4 API break.
  void addProximityAlert(double latitude, double longitude, float radius,
                         long long expiration_ms, const Intent& intent);

  /// Android 1.0 signature (PendingIntent). On kM5 it throws
  /// UnsupportedOperationException (the class did not exist yet).
  void addProximityAlert(double latitude, double longitude, float radius,
                         long long expiration_ms,
                         std::shared_ptr<PendingIntent> pending_intent);

  /// Remove every alert whose broadcast action matches `action` (m5) or
  /// that wraps `pending_intent` (1.0).
  void removeProximityAlert(const std::string& action);
  void removeProximityAlert(const std::shared_ptr<PendingIntent>& pending);

  std::size_t alert_count() const { return alerts_.size(); }

  /// Providers known to this device.
  std::vector<std::string> getProviders() const;

 private:
  struct Alert {
    double latitude;
    double longitude;
    float radius_m;
    sim::SimTime expires_at;  // SimTime::Max() = never
    bool has_expiration;
    // Exactly one of the two delivery mechanisms is set.
    bool use_pending;
    Intent intent;                           // m5 path
    std::shared_ptr<PendingIntent> pending;  // 1.0 path
    // Entry/exit detection state. Registration assumes "outside", so a
    // device already in the region fires an entering event on the first
    // poll — matching Android's fire-immediately-if-inside behaviour.
    bool inside = false;
  };

  void Validate(double latitude, double longitude, float radius) const;
  void Arm(Alert alert);
  void EnsurePoll();
  void PollTick();
  void Deliver(const Alert& alert, bool entering);

  AndroidPlatform& platform_;
  std::vector<Alert> alerts_;
  bool poll_running_ = false;
  // Sole strong reference to the polling closure (it self-captures only
  // weakly, so dropping the manager reclaims the chain).
  std::shared_ptr<std::function<void()>> poll_tick_;
};

}  // namespace mobivine::android
