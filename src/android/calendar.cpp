#include "android/calendar.h"

#include "android/android_platform.h"
#include "android/exceptions.h"

namespace mobivine::android {

bool EventCursor::moveToNext() {
  if (closed_) throw IllegalStateException("cursor is closed");
  if (position_ + 1 >= static_cast<int>(rows_.size())) return false;
  ++position_;
  return true;
}

long long EventCursor::getLong(int column) const {
  if (closed_) throw IllegalStateException("cursor is closed");
  if (position_ < 0 || position_ >= static_cast<int>(rows_.size())) {
    throw IllegalStateException("cursor not positioned on a row");
  }
  const Row& row = rows_[position_];
  switch (column) {
    case COLUMN_ID:
      return row.id;
    case COLUMN_DTSTART:
      return row.dtstart;
    case COLUMN_DTEND:
      return row.dtend;
    default:
      throw IllegalArgumentException("column " + std::to_string(column) +
                                     " is not a long column");
  }
}

std::string EventCursor::getString(int column) const {
  if (closed_) throw IllegalStateException("cursor is closed");
  if (position_ < 0 || position_ >= static_cast<int>(rows_.size())) {
    throw IllegalStateException("cursor not positioned on a row");
  }
  const Row& row = rows_[position_];
  switch (column) {
    case COLUMN_TITLE:
      return row.title;
    case COLUMN_LOCATION:
      return row.location;
    default:
      throw IllegalArgumentException("unknown string column " +
                                     std::to_string(column));
  }
}

EventCursor CalendarProvider::Fill(long long from_ms, long long to_ms,
                                   bool bounded) {
  platform_.checkPermission(permissions::kReadCalendar);
  auto& device = platform_.device();
  device.scheduler().AdvanceBy(
      platform_.cost().calendar_query.Sample(device.rng()));
  EventCursor cursor;
  for (const auto& record : device.calendar().All()) {
    if (bounded && !(record.start_ms < to_ms && record.end_ms > from_ms)) {
      continue;
    }
    cursor.rows_.push_back({record.id, record.title, record.start_ms,
                            record.end_ms, record.location});
  }
  return cursor;
}

EventCursor CalendarProvider::query() { return Fill(0, 0, /*bounded=*/false); }

EventCursor CalendarProvider::queryBetween(long long from_ms, long long to_ms) {
  return Fill(from_ms, to_ms, /*bounded=*/true);
}

}  // namespace mobivine::android
