// Seedable randomness for the simulator.
//
// Header-only thin wrapper over std::mt19937_64 with the handful of
// distributions the device models need. Every component that needs
// randomness takes a Rng& so an experiment is fully determined by one seed.
#pragma once

#include <cstdint>
#include <random>

namespace mobivine::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Normal sample clamped to [lo, hi].
  double NormalClamped(double mean, double stddev, double lo, double hi) {
    std::normal_distribution<double> dist(mean, stddev);
    double sample = dist(engine_);
    if (sample < lo) return lo;
    if (sample > hi) return hi;
    return sample;
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mobivine::sim
