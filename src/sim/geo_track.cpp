#include "sim/geo_track.h"

#include <cmath>
#include <stdexcept>

namespace mobivine::sim {

using support::HaversineMeters;
using support::InitialBearingDeg;
using support::MoveAlongBearing;

void GeoTrack::AddWaypoint(Waypoint wp) {
  if (!waypoints_.empty() && wp.at < waypoints_.back().at) {
    throw std::invalid_argument("GeoTrack waypoints must be time-ordered");
  }
  waypoints_.push_back(wp);
}

GeoTrack GeoTrack::Stationary(double lat_deg, double lon_deg, double alt_m) {
  GeoTrack track;
  track.AddWaypoint({SimTime::Zero(), lat_deg, lon_deg, alt_m});
  return track;
}

GeoTrack GeoTrack::StraightLine(double lat_deg, double lon_deg,
                                double bearing_deg, double speed_mps,
                                SimTime duration, SimTime step) {
  GeoTrack track;
  if (step <= SimTime::Zero()) {
    throw std::invalid_argument("StraightLine step must be positive");
  }
  for (SimTime t = SimTime::Zero(); t <= duration; t += step) {
    const double meters = speed_mps * t.seconds();
    auto point = MoveAlongBearing(lat_deg, lon_deg, bearing_deg, meters);
    track.AddWaypoint({t, point.latitude_deg, point.longitude_deg, 0.0});
  }
  return track;
}

TrackFix GeoTrack::PositionAt(SimTime t) const {
  TrackFix fix;
  if (waypoints_.empty()) return fix;
  if (t <= waypoints_.front().at || waypoints_.size() == 1) {
    const Waypoint& wp = waypoints_.front();
    fix.latitude_deg = wp.latitude_deg;
    fix.longitude_deg = wp.longitude_deg;
    fix.altitude_m = wp.altitude_m;
    return fix;
  }
  if (t >= waypoints_.back().at) {
    const Waypoint& wp = waypoints_.back();
    fix.latitude_deg = wp.latitude_deg;
    fix.longitude_deg = wp.longitude_deg;
    fix.altitude_m = wp.altitude_m;
    return fix;
  }
  // Find the segment containing t.
  size_t hi = 1;
  while (waypoints_[hi].at < t) ++hi;
  const Waypoint& a = waypoints_[hi - 1];
  const Waypoint& b = waypoints_[hi];
  const double span = (b.at - a.at).seconds();
  const double frac = span > 0 ? (t - a.at).seconds() / span : 0.0;

  const double segment_m = HaversineMeters(a.latitude_deg, a.longitude_deg,
                                           b.latitude_deg, b.longitude_deg);
  const double bearing = InitialBearingDeg(a.latitude_deg, a.longitude_deg,
                                           b.latitude_deg, b.longitude_deg);
  auto point = MoveAlongBearing(a.latitude_deg, a.longitude_deg, bearing,
                                segment_m * frac);
  fix.latitude_deg = point.latitude_deg;
  fix.longitude_deg = point.longitude_deg;
  fix.altitude_m = a.altitude_m + (b.altitude_m - a.altitude_m) * frac;
  fix.speed_mps = span > 0 ? segment_m / span : 0.0;
  fix.heading_deg = segment_m > 0.01 ? bearing : 0.0;
  return fix;
}

}  // namespace mobivine::sim
