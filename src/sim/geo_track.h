// Waypoint tracks for the GPS simulation.
//
// A GeoTrack is a sequence of timed waypoints; PositionAt() interpolates
// along great-circle segments, giving the "true" device position the GPS
// receiver then perturbs with measurement noise. Tracks also compute
// instantaneous speed and heading, which the platform location objects
// expose.
#pragma once

#include <vector>

#include "sim/clock.h"
#include "support/geo_units.h"

namespace mobivine::sim {

struct Waypoint {
  SimTime at;
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
  double altitude_m = 0.0;
};

struct TrackFix {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
  double altitude_m = 0.0;
  double speed_mps = 0.0;
  double heading_deg = 0.0;  ///< compass bearing of travel; 0 when stationary
};

class GeoTrack {
 public:
  GeoTrack() = default;

  /// Waypoints must be appended in non-decreasing time order; out-of-order
  /// appends throw std::invalid_argument.
  void AddWaypoint(Waypoint wp);

  /// Convenience: a stationary track at one point.
  static GeoTrack Stationary(double lat_deg, double lon_deg,
                             double alt_m = 0.0);

  /// Convenience: straight-line travel from `from` at constant speed along
  /// `bearing_deg`, sampled every `step` for `duration`.
  static GeoTrack StraightLine(double lat_deg, double lon_deg,
                               double bearing_deg, double speed_mps,
                               SimTime duration, SimTime step);

  bool empty() const { return waypoints_.empty(); }
  const std::vector<Waypoint>& waypoints() const { return waypoints_; }

  /// True position at time t. Before the first waypoint the track holds at
  /// the first point; after the last it holds at the last.
  [[nodiscard]] TrackFix PositionAt(SimTime t) const;

 private:
  std::vector<Waypoint> waypoints_;
};

}  // namespace mobivine::sim
