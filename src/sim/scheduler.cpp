#include "sim/scheduler.h"

#include <utility>

namespace mobivine::sim {

EventId Scheduler::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  EventId id = next_id_++;
  pending_ids_.insert(id);
  queue_.push(Event{when, next_sequence_++, id, std::move(fn)});
  return id;
}

EventId Scheduler::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Scheduler::Cancel(EventId id) {
  // Only a still-pending event can be cancelled; fired or already-cancelled
  // ids report failure.
  if (pending_ids_.erase(id) == 0) return false;
  // Lazy deletion: mark the id; the queued entry is skipped when popped.
  tombstones_.insert(id);
  return true;
}

void Scheduler::AdvanceBy(SimTime delay) {
  if (delay > SimTime::Zero()) now_ += delay;
}

bool Scheduler::PopAndRunFront() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (tombstones_.erase(event.id)) continue;  // cancelled
    pending_ids_.erase(event.id);
    now_ = event.when > now_ ? event.when : now_;
    event.fn();
    return true;
  }
  return false;
}

bool Scheduler::Step() { return PopAndRunFront(); }

std::size_t Scheduler::Run(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && PopAndRunFront()) ++executed;
  return executed;
}

std::size_t Scheduler::RunUntil(SimTime deadline) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    // Peek past tombstones.
    while (!queue_.empty() && tombstones_.count(queue_.top().id)) {
      tombstones_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > deadline) break;
    if (PopAndRunFront()) ++executed;
  }
  if (deadline > now_) now_ = deadline;
  return executed;
}

}  // namespace mobivine::sim
