#include "sim/scheduler.h"

#include <utility>

namespace mobivine::sim {

namespace {
constexpr EventId MakeId(std::uint32_t generation, std::uint32_t slot) {
  return (static_cast<EventId>(generation) << 32) | slot;
}
}  // namespace

std::uint32_t Scheduler::AcquireSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::ReleaseSlot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.Reset();
  slot.active = false;
  slot.cancelled = false;
  ++slot.generation;  // invalidate any EventId still naming this occupancy
  free_slots_.push_back(index);
}

EventId Scheduler::ScheduleAt(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  const std::uint32_t index = AcquireSlot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.active = true;
  queue_.push(QueuedEvent{when, next_sequence_++, index});
  ++pending_count_;
  return MakeId(slot.generation, index);
}

EventId Scheduler::ScheduleAfter(SimTime delay, Callback fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Scheduler::Cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  // Only the live occupancy named by `id` can be cancelled: fired and
  // already-cancelled events fail the generation/flag checks.
  if (!slot.active || slot.cancelled || slot.generation != generation) {
    return false;
  }
  slot.cancelled = true;  // tombstone; the queue entry is dropped when popped
  --pending_count_;
  return true;
}

void Scheduler::AdvanceBy(SimTime delay) {
  if (delay > SimTime::Zero()) now_ += delay;
}

bool Scheduler::PopAndRunFront() {
  while (!queue_.empty()) {
    const QueuedEvent event = queue_.top();
    queue_.pop();
    if (slots_[event.slot].cancelled) {
      ReleaseSlot(event.slot);
      continue;
    }
    now_ = event.when > now_ ? event.when : now_;
    // Move the callback out and release the slot BEFORE invoking: the
    // callback may schedule new events (reusing this slot) and cancelling
    // the fired event from inside its own callback must report false.
    Callback fn = std::move(slots_[event.slot].fn);
    ReleaseSlot(event.slot);
    --pending_count_;
    fn();
    return true;
  }
  return false;
}

bool Scheduler::Step() { return PopAndRunFront(); }

std::size_t Scheduler::Run(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && PopAndRunFront()) ++executed;
  return executed;
}

std::size_t Scheduler::RunUntil(SimTime deadline) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    // Peek past tombstones so the deadline check sees a live event.
    while (!queue_.empty() && slots_[queue_.top().slot].cancelled) {
      const std::uint32_t index = queue_.top().slot;
      queue_.pop();
      ReleaseSlot(index);
    }
    if (queue_.empty() || queue_.top().when > deadline) break;
    if (PopAndRunFront()) ++executed;
  }
  if (deadline > now_) now_ = deadline;
  return executed;
}

}  // namespace mobivine::sim
