// Parametric latency models used to charge virtual time for device and
// platform operations.
//
// Figure 10 calibration lives in the platform substrates: each native API
// charges a LatencyModel whose mean matches the paper's "Without Proxy"
// row (see EXPERIMENTS.md). Models are value types and cheap to copy.
#pragma once

#include <string>

#include "sim/clock.h"
#include "sim/random.h"

namespace mobivine::sim {

/// Distribution family for a latency sample.
enum class LatencyKind { kFixed, kUniform, kNormal };

class LatencyModel {
 public:
  /// Always `value`.
  static LatencyModel Fixed(SimTime value);
  /// Uniform in [lo, hi].
  static LatencyModel UniformIn(SimTime lo, SimTime hi);
  /// Normal(mean, stddev) clamped to [min, +inf).
  static LatencyModel Normal(SimTime mean, SimTime stddev,
                             SimTime min = SimTime::Zero());

  /// Draw one latency sample.
  [[nodiscard]] SimTime Sample(Rng& rng) const;

  /// Expected value of the distribution (exact for all three families,
  /// ignoring the clamp).
  [[nodiscard]] SimTime Mean() const;

  [[nodiscard]] std::string ToString() const;

  LatencyKind kind() const { return kind_; }

 private:
  LatencyKind kind_ = LatencyKind::kFixed;
  SimTime a_;  // fixed value / lo / mean
  SimTime b_;  // unused    / hi / stddev
  SimTime min_;
};

}  // namespace mobivine::sim
