// Virtual time for the discrete-event simulator.
//
// SimTime is a strongly typed microsecond count since simulation start.
// All device latencies, platform API costs and timer expirations in the
// substrates are expressed in SimTime, which makes every experiment
// deterministic and independent of host speed.
#pragma once

#include <compare>
#include <cstdint>

namespace mobivine::sim {

/// A duration or instant in virtual microseconds.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime Micros(std::int64_t us) { return SimTime(us); }
  static constexpr SimTime Millis(std::int64_t ms) {
    return SimTime(ms * 1000);
  }
  static constexpr SimTime Seconds(std::int64_t s) {
    return SimTime(s * 1'000'000);
  }
  static constexpr SimTime MillisF(double ms) {
    return SimTime(static_cast<std::int64_t>(ms * 1000.0));
  }
  static constexpr SimTime Zero() { return SimTime(0); }
  /// Sentinel larger than any schedulable time.
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr std::int64_t micros() const { return micros_; }
  constexpr double millis() const { return static_cast<double>(micros_) / 1e3; }
  constexpr double seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.micros_ + b.micros_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.micros_ - b.micros_);
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.micros_ * k);
  }
  SimTime& operator+=(SimTime other) {
    micros_ += other.micros_;
    return *this;
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  constexpr explicit SimTime(std::int64_t us) : micros_(us) {}
  std::int64_t micros_ = 0;
};

}  // namespace mobivine::sim
