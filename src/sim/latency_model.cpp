#include "sim/latency_model.h"

#include <sstream>

namespace mobivine::sim {

LatencyModel LatencyModel::Fixed(SimTime value) {
  LatencyModel model;
  model.kind_ = LatencyKind::kFixed;
  model.a_ = value;
  return model;
}

LatencyModel LatencyModel::UniformIn(SimTime lo, SimTime hi) {
  LatencyModel model;
  model.kind_ = LatencyKind::kUniform;
  model.a_ = lo;
  model.b_ = hi;
  return model;
}

LatencyModel LatencyModel::Normal(SimTime mean, SimTime stddev, SimTime min) {
  LatencyModel model;
  model.kind_ = LatencyKind::kNormal;
  model.a_ = mean;
  model.b_ = stddev;
  model.min_ = min;
  return model;
}

SimTime LatencyModel::Sample(Rng& rng) const {
  switch (kind_) {
    case LatencyKind::kFixed:
      return a_;
    case LatencyKind::kUniform:
      return SimTime::Micros(rng.UniformInt(a_.micros(), b_.micros()));
    case LatencyKind::kNormal: {
      double sample = rng.NormalClamped(
          static_cast<double>(a_.micros()), static_cast<double>(b_.micros()),
          static_cast<double>(min_.micros()), 9e18);
      return SimTime::Micros(static_cast<std::int64_t>(sample));
    }
  }
  return SimTime::Zero();
}

SimTime LatencyModel::Mean() const {
  switch (kind_) {
    case LatencyKind::kFixed:
      return a_;
    case LatencyKind::kUniform:
      return SimTime::Micros((a_.micros() + b_.micros()) / 2);
    case LatencyKind::kNormal:
      return a_;
  }
  return SimTime::Zero();
}

std::string LatencyModel::ToString() const {
  std::ostringstream out;
  switch (kind_) {
    case LatencyKind::kFixed:
      out << "fixed(" << a_.millis() << "ms)";
      break;
    case LatencyKind::kUniform:
      out << "uniform(" << a_.millis() << "ms," << b_.millis() << "ms)";
      break;
    case LatencyKind::kNormal:
      out << "normal(" << a_.millis() << "ms,sd=" << b_.millis() << "ms)";
      break;
  }
  return out.str();
}

}  // namespace mobivine::sim
