// Discrete-event scheduler.
//
// Single-threaded by design: every platform substrate, device model and
// application callback runs on the scheduler's virtual timeline, so runs
// are reproducible bit-for-bit given the same seed. Events scheduled for
// the same instant fire in scheduling order (stable FIFO).
//
// Hot-path layout: callbacks live in a slab of reusable slots with
// inline callable storage (no per-event heap allocation for typical
// capture lists), the priority queue holds trivially copyable
// {time, sequence, slot} records, and cancellation flips a tombstone flag
// on the slot — popping an event is an array load, not a hash lookup.
// EventIds encode {generation, slot} so stale ids from fired or cancelled
// events are rejected without any bookkeeping set.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/clock.h"
#include "support/inline_function.h"

namespace mobivine::sim {

/// Handle for cancelling a scheduled event. Id 0 is never issued.
using EventId = std::uint64_t;

class Scheduler {
 public:
  /// Event callback with inline storage for the capture lists the
  /// substrates use; larger closures spill to the heap transparently.
  using Callback = support::InlineFunction<void(), 48>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `when` (clamped to >= now).
  EventId ScheduleAt(SimTime when, Callback fn);

  /// Schedule `fn` after a virtual delay.
  EventId ScheduleAfter(SimTime delay, Callback fn);

  /// Cancel a pending event. Returns false if it already fired, was
  /// cancelled, or never existed.
  bool Cancel(EventId id);

  /// Advance the clock directly (used by substrates to charge a blocking
  /// API's latency without a callback round-trip). The clock never goes
  /// backwards.
  void AdvanceBy(SimTime delay);

  /// Run the next pending event; returns false if the queue is empty.
  bool Step();

  /// Run until the queue drains or `limit` events have fired.
  /// Returns the number of events executed.
  std::size_t Run(std::size_t limit = SIZE_MAX);

  /// Run events with time <= deadline, then set the clock to the deadline.
  std::size_t RunUntil(SimTime deadline);

  /// Run events for a further `duration` of virtual time.
  std::size_t RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  std::size_t pending_count() const { return pending_count_; }

 private:
  /// Callback slab entry. `generation` advances every time the slot is
  /// released, so EventIds referring to a previous occupancy fail the
  /// generation check in Cancel().
  struct Slot {
    Callback fn;
    std::uint32_t generation = 1;
    bool active = false;     ///< slot currently owns a queued event
    bool cancelled = false;  ///< tombstone: skip and release when popped
  };
  struct QueuedEvent {
    SimTime when;
    std::uint64_t sequence;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  std::uint32_t AcquireSlot();
  void ReleaseSlot(std::uint32_t index);
  bool PopAndRunFront();

  SimTime now_ = SimTime::Zero();
  std::uint64_t next_sequence_ = 0;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t pending_count_ = 0;  ///< scheduled, not yet fired/cancelled
};

}  // namespace mobivine::sim
