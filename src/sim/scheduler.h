// Discrete-event scheduler.
//
// Single-threaded by design: every platform substrate, device model and
// application callback runs on the scheduler's virtual timeline, so runs
// are reproducible bit-for-bit given the same seed. Events scheduled for
// the same instant fire in scheduling order (stable FIFO).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/clock.h"

namespace mobivine::sim {

/// Handle for cancelling a scheduled event. Id 0 is never issued.
using EventId = std::uint64_t;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `when` (clamped to >= now).
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  /// Schedule `fn` after a virtual delay.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired, was
  /// cancelled, or never existed.
  bool Cancel(EventId id);

  /// Advance the clock directly (used by substrates to charge a blocking
  /// API's latency without a callback round-trip). The clock never goes
  /// backwards.
  void AdvanceBy(SimTime delay);

  /// Run the next pending event; returns false if the queue is empty.
  bool Step();

  /// Run until the queue drains or `limit` events have fired.
  /// Returns the number of events executed.
  std::size_t Run(std::size_t limit = SIZE_MAX);

  /// Run events with time <= deadline, then set the clock to the deadline.
  std::size_t RunUntil(SimTime deadline);

  /// Run events for a further `duration` of virtual time.
  std::size_t RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  std::size_t pending_count() const { return pending_ids_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t sequence;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  bool PopAndRunFront();

  SimTime now_ = SimTime::Zero();
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> pending_ids_;  ///< scheduled, not yet fired
  std::unordered_set<EventId> tombstones_;   ///< cancelled, still queued
};

}  // namespace mobivine::sim
