// M-Fleet flyweight device state.
//
// A simulated fleet of a million devices cannot afford a MobileDevice
// (platform substrates, proxies, interners) per handset — the gateway
// already owns one complete MobiVine world per *shard* for exactly that
// reason. A fleet device is therefore pure extrinsic state: which tenant
// it bills against, where it is along a *shared* GeoTrack route, and a
// few messaging counters. Everything heavyweight (routes, arrival
// curves, RNG streams, platform objects) is shared flyweight context
// owned by the Fleet; the per-device cost is this struct and nothing
// else, which is what makes 1M devices ~16 MB instead of ~100 GB.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mobivine::fleet {

struct DeviceState {
  /// Progress along the shared route, in virtual track seconds. Each
  /// position report advances it, so consecutive reports from one device
  /// walk its route instead of teleporting.
  std::uint32_t track_offset_s = 0;
  /// Index into the fleet's shared route table (sim::GeoTrack flyweights).
  std::uint16_t route = 0;
  /// Index of the owning FleetTenant in FleetConfig::tenants (not the
  /// raw gateway tenant id — indices are dense, and the fleet resolves
  /// ids once at construction).
  std::uint16_t tenant_slot = 0;
  /// Messaging counters: how many SMS this device has sent and how many
  /// telemetry reports it has posted.
  std::uint16_t sms_sent = 0;
  std::uint16_t reports = 0;
  /// Total operations issued by this device (all kinds).
  std::uint32_t requests = 0;
};

/// The whole point: per-device cost must stay flyweight-sized. 1M devices
/// at 16 bytes is one contiguous 16 MB vector.
static_assert(sizeof(DeviceState) <= 32,
              "DeviceState must stay flyweight-sized (<= 32 bytes)");

}  // namespace mobivine::fleet
