// M-Fleet arrival model: diurnal rate curves and deterministic Poisson
// draws.
//
// The fleet is an *open-loop* load source: devices decide to talk on
// their own schedule, whether or not the gateway is keeping up. Arrivals
// per (producer, tenant, tick) are Poisson with mean
//
//   devices_in_slice * mean_rps_per_device * curve.RateAt(day_fraction)
//                    * tick_seconds
//
// drawn from a support::SplitMix64 stream forked per (tenant, producer),
// so an identical seed reproduces the identical arrival schedule — the
// property the determinism tests and EXPERIMENTS.md § Methodology rely
// on. Draws use Knuth's product method for small means and a
// Box-Muller normal approximation above that; both consume only the
// given stream (no global RNG, no wall clock).
#pragma once

#include <array>
#include <cstdint>

#include "support/seed.h"

namespace mobivine::fleet {

/// A 24-hour activity profile, one relative weight per hour, linearly
/// interpolated between hour centers and normalized so the mean over the
/// day is 1.0 (so `mean_rps_per_device` stays the *daily average* rate
/// whatever the shape).
class DiurnalCurve {
 public:
  /// Flat: every hour weight 1. The no-op curve for steady-rate tests.
  static DiurnalCurve Flat();

  /// A commuter-city profile: quiet night, morning ramp, lunch shoulder,
  /// evening peak around 18:00-19:00.
  static DiurnalCurve Commuter();

  /// Build from arbitrary hourly weights (all must be >= 0, at least one
  /// > 0); weights are normalized to mean 1 on construction.
  static DiurnalCurve FromHourly(const std::array<double, 24>& hourly);

  /// Rate multiplier at `day_fraction` in [0, 1) (0 = midnight). Values
  /// outside [0, 1) are wrapped. Piecewise-linear between hour centers.
  [[nodiscard]] double RateAt(double day_fraction) const;

  [[nodiscard]] const std::array<double, 24>& hourly() const {
    return hourly_;
  }

 private:
  std::array<double, 24> hourly_{};  // normalized to mean 1
};

/// One Poisson(mean) draw from `rng`. Deterministic given the stream
/// state; mean <= 0 returns 0. Knuth below mean 30, normal approximation
/// (with continuity correction, clamped at 0) above.
[[nodiscard]] std::uint32_t PoissonDraw(support::SplitMix64& rng,
                                        double mean);

}  // namespace mobivine::fleet
