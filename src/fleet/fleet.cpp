#include "fleet/fleet.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "support/histogram.h"
#include "support/seed.h"
#include "support/trace.h"

namespace mobivine::fleet {

namespace {

using gateway::Op;
using gateway::Platform;
using support::SplitMix64;

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void Fold(std::uint64_t& digest, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    digest ^= (value >> (byte * 8)) & 0xffu;
    digest *= kFnvPrime;
  }
}

/// The shared flyweight route table: a handful of tracks a million
/// devices walk at individual offsets. One stationary (parked/home
/// devices) plus three constant-speed commutes on different continents.
std::vector<sim::GeoTrack> BuildRoutes() {
  using sim::SimTime;
  std::vector<sim::GeoTrack> routes;
  routes.push_back(sim::GeoTrack::Stationary(37.7749, -122.4194, 16.0));
  routes.push_back(sim::GeoTrack::StraightLine(
      37.7600, -122.4200, 45.0, 15.0, SimTime::Seconds(7200),
      SimTime::Seconds(60)));
  routes.push_back(sim::GeoTrack::StraightLine(
      47.6062, -122.3321, 180.0, 30.0, SimTime::Seconds(7200),
      SimTime::Seconds(60)));
  routes.push_back(sim::GeoTrack::StraightLine(
      51.5074, -0.1278, 270.0, 10.0, SimTime::Seconds(7200),
      SimTime::Seconds(60)));
  return routes;
}

/// Completion rendezvous: open-loop runs don't know the total up front,
/// so `expected` is set (under the same mutex) after the producers join.
struct Rendezvous {
  std::mutex mutex;
  std::condition_variable all_done;
  std::uint64_t completed = 0;
  std::uint64_t expected = ~0ull;

  void OnComplete() {
    std::lock_guard<std::mutex> lock(mutex);
    if (++completed >= expected) all_done.notify_all();
  }
  void Wait(std::uint64_t total) {
    std::unique_lock<std::mutex> lock(mutex);
    expected = total;
    all_done.wait(lock, [this] { return completed >= expected; });
  }
};

/// Per-tenant client-side outcome counters (one writer set per tenant
/// across all producers/workers, so everything is atomic).
struct TenantTally {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> timed_out{0};
  support::LatencyHistogram latency;
};

}  // namespace

struct Fleet::Slice {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  [[nodiscard]] std::uint64_t count() const { return end - begin; }
};

Fleet::Fleet(FleetConfig config) : config_(std::move(config)) {
  if (config_.tick_seconds <= 0) {
    throw std::invalid_argument("FleetConfig::tick_seconds must be > 0");
  }
  if (config_.day_seconds <= 0) {
    throw std::invalid_argument("FleetConfig::day_seconds must be > 0");
  }
  config_.producers = std::max(config_.producers, 1);

  routes_ = BuildRoutes();

  auto add_op = [this](Op op, int weight) {
    for (int i = 0; i < weight; ++i) op_table_.push_back(op);
  };
  add_op(Op::kHttpPost, config_.mix.report);
  add_op(Op::kGetLocation, config_.mix.get_location);
  add_op(Op::kSendSms, config_.mix.sms);
  add_op(Op::kHttpGet, config_.mix.ping);
  if (op_table_.empty()) op_table_.push_back(Op::kHttpGet);

  std::uint64_t total = 0;
  tenant_base_.reserve(config_.tenants.size() + 1);
  for (const FleetTenant& tenant : config_.tenants) {
    tenant_base_.push_back(total);
    total += tenant.devices;
  }
  tenant_base_.push_back(total);

  devices_.resize(total);
  for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
    for (std::uint64_t g = tenant_base_[t]; g < tenant_base_[t + 1]; ++g) {
      DeviceState& dev = devices_[g];
      dev.tenant_slot = static_cast<std::uint16_t>(t);
      dev.route = static_cast<std::uint16_t>(g % routes_.size());
      // Stagger devices along their route so a million devices don't all
      // report the same fix; Mix64 keeps the stagger seed-independent
      // but well spread.
      dev.track_offset_s =
          static_cast<std::uint32_t>(support::Mix64(g) % 7200u);
    }
  }
}

std::vector<gateway::TenantConfig> Fleet::TenantConfigs() const {
  std::vector<gateway::TenantConfig> configs;
  configs.reserve(config_.tenants.size());
  for (const FleetTenant& tenant : config_.tenants) {
    configs.push_back(tenant.tenant);
  }
  return configs;
}

/// Drive one producer's deterministic schedule into `sink(tick, tenant,
/// device, op)`. Everything the sink sees — arrival counts, device and
/// op picks, their order — is a pure function of (config, producer), so
/// Run() and Preview() emit identical schedules.
template <typename Sink>
void Fleet::GenerateProducer(int producer, Sink&& sink) const {
  const int producers = config_.producers;
  const std::size_t tenant_count = config_.tenants.size();

  std::vector<Slice> slices(tenant_count);
  std::vector<SplitMix64> streams;
  streams.reserve(tenant_count);
  for (std::size_t t = 0; t < tenant_count; ++t) {
    const std::uint64_t base = tenant_base_[t];
    const std::uint64_t n = tenant_base_[t + 1] - base;
    const auto p = static_cast<std::uint64_t>(producer);
    slices[t].begin = base + n * p / producers;
    slices[t].end = base + n * (p + 1) / producers;
    streams.push_back(support::SeedSequence(config_.seed)
                          .Fork("fleet")
                          .Fork(config_.tenants[t].tenant.id)
                          .Fork(p)
                          .stream());
  }

  const double dt = config_.tick_seconds;
  const auto ticks = static_cast<std::uint64_t>(
      std::ceil(config_.duration_seconds / dt));
  for (std::uint64_t k = 0; k < ticks; ++k) {
    const double day_fraction =
        config_.start_day_fraction + (static_cast<double>(k) * dt) /
                                         config_.day_seconds;
    const double rate_multiplier = config_.curve.RateAt(day_fraction);
    for (std::size_t t = 0; t < tenant_count; ++t) {
      const std::uint64_t slice_devices = slices[t].count();
      if (slice_devices == 0) continue;
      const double mean = static_cast<double>(slice_devices) *
                          config_.tenants[t].mean_rps_per_device *
                          rate_multiplier * dt;
      const std::uint32_t arrivals = PoissonDraw(streams[t], mean);
      for (std::uint32_t i = 0; i < arrivals; ++i) {
        const std::uint64_t device =
            slices[t].begin + streams[t].NextBelow(slice_devices);
        const Op op = op_table_[streams[t].NextBelow(op_table_.size())];
        sink(k, t, device, op);
      }
    }
  }
}

SchedulePreview Fleet::Preview() const {
  SchedulePreview preview;
  preview.per_tenant.assign(config_.tenants.size(), 0);
  for (int p = 0; p < config_.producers; ++p) {
    std::uint64_t digest = kFnvBasis;
    GenerateProducer(p, [&](std::uint64_t tick, std::size_t tenant,
                            std::uint64_t device, Op op) {
      Fold(digest, tick);
      Fold(digest, tenant);
      Fold(digest, device);
      Fold(digest, static_cast<std::uint64_t>(op));
      ++preview.arrivals;
      ++preview.per_tenant[tenant];
    });
    preview.digest ^= digest;
  }
  return preview;
}

FleetReport Fleet::Run(gateway::Gateway& gateway) {
  support::trace::Span run_span("fleet.run");
  scheduled_.store(0, std::memory_order_relaxed);
  submitted_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);

  const std::size_t tenant_count = config_.tenants.size();
  std::vector<std::unique_ptr<TenantTally>> tallies;
  tallies.reserve(tenant_count);
  for (std::size_t t = 0; t < tenant_count; ++t) {
    tallies.push_back(std::make_unique<TenantTally>());
  }
  Rendezvous rendezvous;

  const auto start = gateway::Clock::now();
  const auto tick_interval = std::chrono::nanoseconds(
      static_cast<std::int64_t>(config_.tick_seconds * 1e9));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config_.producers));
  for (int p = 0; p < config_.producers; ++p) {
    threads.emplace_back([&, p] {
      support::trace::SetCurrentThreadName("fleet-gen-" +
                                           std::to_string(p));
      std::uint64_t paced_through = ~0ull;
      GenerateProducer(p, [&](std::uint64_t tick, std::size_t tenant,
                              std::uint64_t device, Op op) {
        if (config_.paced && tick != paced_through) {
          std::this_thread::sleep_until(start + tick * tick_interval);
          paced_through = tick;
        }
        DeviceState& dev = devices_[device];
        gateway::Request request;
        request.client_id = device;
        request.tenant = config_.tenants[tenant].tenant.id;
        request.op = op;
        request.platform = static_cast<Platform>(device % 3);
        request.timeout = config_.timeout;
        request.retry = config_.retry;
        switch (op) {
          case Op::kHttpPost: {
            // A telemetry report: advance the device along its shared
            // route and post the resulting fix.
            dev.track_offset_s += 30;
            const sim::TrackFix fix = routes_[dev.route].PositionAt(
                sim::SimTime::Seconds(dev.track_offset_s));
            char body[96];
            std::snprintf(body, sizeof(body), "fix=%.5f,%.5f spd=%.1f",
                          fix.latitude_deg, fix.longitude_deg,
                          fix.speed_mps);
            request.target =
                std::string("http://") + gateway::kGatewayHttpHost +
                "/ingest";
            request.payload = body;
            ++dev.reports;
            break;
          }
          case Op::kSendSms:
            request.target = gateway::kGatewaySmsPeer;
            request.payload =
                "fleet msg #" + std::to_string(dev.sms_sent);
            ++dev.sms_sent;
            break;
          case Op::kHttpGet:
            request.target = std::string("http://") +
                             gateway::kGatewayHttpHost + "/ping";
            break;
          default:
            break;  // kGetLocation needs no operands
        }
        ++dev.requests;

        TenantTally& tally = *tallies[tenant];
        tally.submitted.fetch_add(1, std::memory_order_relaxed);
        scheduled_.fetch_add(1, std::memory_order_relaxed);
        submitted_.fetch_add(1, std::memory_order_relaxed);
        const auto submit_time = gateway::Clock::now();
        request.on_complete = [this, &tally, &rendezvous,
                               submit_time](const gateway::Response& r) {
          bool served = true;
          if (r.ok) {
            tally.ok.fetch_add(1, std::memory_order_relaxed);
          } else if (r.error == core::ErrorCode::kOverloaded) {
            tally.shed.fetch_add(1, std::memory_order_relaxed);
            served = false;
          } else if (r.error == core::ErrorCode::kDeadlineExceeded) {
            tally.timed_out.fetch_add(1, std::memory_order_relaxed);
          } else {
            tally.failed.fetch_add(1, std::memory_order_relaxed);
          }
          // Served requests only: a shed completes on the submitting
          // thread in well under a microsecond, and folding those zeros
          // in would drown the serving percentiles.
          if (served) {
            tally.latency.Record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    gateway::Clock::now() - submit_time)
                    .count()));
          }
          completed_.fetch_add(1, std::memory_order_relaxed);
          rendezvous.OnComplete();
        };
        gateway.Submit(std::move(request));
      });
    });
  }
  for (auto& thread : threads) thread.join();
  rendezvous.Wait(submitted_.load(std::memory_order_relaxed));
  const auto end = gateway::Clock::now();

  FleetReport report;
  report.devices = devices_.size();
  report.wall_seconds = std::chrono::duration<double>(end - start).count();
  support::HistogramSnapshot overall;
  for (std::size_t t = 0; t < tenant_count; ++t) {
    const TenantTally& tally = *tallies[t];
    FleetTenantReport row;
    row.id = config_.tenants[t].tenant.id;
    row.name = config_.tenants[t].tenant.name.empty()
                   ? "tenant" + std::to_string(row.id)
                   : config_.tenants[t].tenant.name;
    row.devices = tenant_base_[t + 1] - tenant_base_[t];
    row.submitted = tally.submitted.load();
    row.ok = tally.ok.load();
    row.shed = tally.shed.load();
    row.failed = tally.failed.load();
    row.timed_out = tally.timed_out.load();
    const support::HistogramSnapshot snapshot = tally.latency.Snapshot();
    row.p50_us = snapshot.Percentile(0.50);
    row.p95_us = snapshot.Percentile(0.95);
    row.p99_us = snapshot.Percentile(0.99);
    overall.Merge(snapshot);
    report.submitted += row.submitted;
    report.ok += row.ok;
    report.shed += row.shed;
    report.failed += row.failed;
    report.timed_out += row.timed_out;
    report.tenants.push_back(std::move(row));
  }
  report.p50_us = overall.Percentile(0.50);
  report.p95_us = overall.Percentile(0.95);
  report.p99_us = overall.Percentile(0.99);
  const std::uint64_t served =
      report.ok + report.failed + report.timed_out;
  report.completed_per_sec =
      report.wall_seconds > 0
          ? static_cast<double>(served) / report.wall_seconds
          : 0;
  return report;
}

support::MetricsRegistry::Registration Fleet::RegisterMetrics(
    support::MetricsRegistry& registry, std::string prefix) const {
  return registry.Register(
      std::move(prefix), [this](support::MetricsSink& sink) {
        sink.Gauge("devices", static_cast<double>(devices_.size()));
        sink.Gauge("tenants", static_cast<double>(config_.tenants.size()));
        sink.Gauge("producers", static_cast<double>(config_.producers));
        sink.Counter("scheduled",
                     scheduled_.load(std::memory_order_relaxed));
        sink.Counter("submitted",
                     submitted_.load(std::memory_order_relaxed));
        sink.Counter("completed",
                     completed_.load(std::memory_order_relaxed));
      });
}

}  // namespace mobivine::fleet
