#include "fleet/arrival.h"

#include <cmath>
#include <stdexcept>

namespace mobivine::fleet {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

DiurnalCurve DiurnalCurve::Flat() {
  std::array<double, 24> hourly;
  hourly.fill(1.0);
  return FromHourly(hourly);
}

DiurnalCurve DiurnalCurve::Commuter() {
  // Relative activity per hour of day, midnight first. Normalization
  // makes the exact scale irrelevant; only the shape matters.
  return FromHourly({0.25, 0.18, 0.12, 0.10, 0.12, 0.25,
                     0.60, 1.10, 1.55, 1.60, 1.40, 1.35,
                     1.45, 1.35, 1.25, 1.30, 1.50, 1.80,
                     2.00, 1.85, 1.45, 1.05, 0.65, 0.40});
}

DiurnalCurve DiurnalCurve::FromHourly(const std::array<double, 24>& hourly) {
  double sum = 0.0;
  for (double w : hourly) {
    if (w < 0.0) {
      throw std::invalid_argument("DiurnalCurve weights must be >= 0");
    }
    sum += w;
  }
  if (sum <= 0.0) {
    throw std::invalid_argument("DiurnalCurve needs a positive weight");
  }
  const double scale = 24.0 / sum;
  DiurnalCurve curve;
  for (std::size_t h = 0; h < hourly.size(); ++h) {
    curve.hourly_[h] = hourly[h] * scale;
  }
  return curve;
}

double DiurnalCurve::RateAt(double day_fraction) const {
  double f = day_fraction - std::floor(day_fraction);  // wrap into [0, 1)
  // Hour *centers* carry the weights: hour h's weight applies at
  // (h + 0.5) / 24, with linear interpolation between neighbors (and
  // across midnight).
  const double pos = f * 24.0 - 0.5;
  const double base = std::floor(pos);
  const double t = pos - base;
  const int lo = (static_cast<int>(base) % 24 + 24) % 24;
  const int hi = (lo + 1) % 24;
  return hourly_[static_cast<std::size_t>(lo)] * (1.0 - t) +
         hourly_[static_cast<std::size_t>(hi)] * t;
}

std::uint32_t PoissonDraw(support::SplitMix64& rng, double mean) {
  if (!(mean > 0.0)) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    double product = 1.0;
    std::uint32_t k = 0;
    do {
      ++k;
      product *= rng.NextUnit();
    } while (product > limit);
    return k - 1;
  }
  // Large mean: Box-Muller normal approximation with continuity
  // correction. NextUnit() is in [0, 1); 1 - u keeps the log argument
  // strictly positive.
  const double u1 = 1.0 - rng.NextUnit();
  const double u2 = rng.NextUnit();
  const double gauss =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  const double value = mean + std::sqrt(mean) * gauss + 0.5;
  if (value <= 0.0) return 0;
  return static_cast<std::uint32_t>(value);
}

}  // namespace mobivine::fleet
