// M-Fleet: a device-fleet simulator that drives the gateway with
// open-loop, diurnal, multi-tenant load from 10k to 1M+ simulated
// handsets.
//
// The paper's fragmentation story is about *populations* of devices —
// many handsets, several platforms, uneven activity. M-Fleet models that
// population as flyweight DeviceState records (fleet/device_state.h):
// each device is ~16 bytes of extrinsic state (tenant, shared-route
// progress, messaging counters) while everything heavy — GeoTrack
// routes, the arrival curve, RNG streams, the platform worlds themselves
// — is shared context, either owned once by the Fleet or already owned
// per-shard by the gateway.
//
// Load shape: open loop. Producer threads tick a virtual day
// (`day_seconds` of wall clock per 24h of diurnal curve) and draw
// Poisson arrival counts per (tenant, tick) from seeded streams
// (support::SeedSequence(seed).Fork("fleet").Fork(tenant.id).Fork(p)),
// then submit each arrival to the gateway regardless of completions —
// the shape that pushes a serving system into overload and exercises the
// tenant-weighted admission plane (gateway/tenant.h). Identical seeds
// yield identical arrival schedules (devices, ops, counts, order within
// a producer); Preview() exposes that schedule as a digest without
// touching a gateway, which is what the determinism tests pin.
//
// Devices are partitioned across producers (each device has exactly one
// writer, so DeviceState needs no locks) and their global index is the
// gateway client_id, so a device keeps shard affinity for its lifetime.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/arrival.h"
#include "fleet/device_state.h"
#include "gateway/gateway.h"
#include "gateway/tenant.h"
#include "sim/geo_track.h"
#include "support/metrics.h"

namespace mobivine::fleet {

/// Relative op weights for fleet devices; zero removes the op.
struct FleetOpMix {
  int report = 4;        ///< kHttpPost telemetry carrying a GPS fix
  int get_location = 2;  ///< kGetLocation through the shard proxies
  int sms = 1;           ///< kSendSms to the gateway SMS peer
  int ping = 2;          ///< kHttpGet keepalive
};

/// One tenant's slice of the fleet.
struct FleetTenant {
  /// Gateway identity + admission weight (gateway/tenant.h). The id must
  /// be unique across the fleet's tenants.
  gateway::TenantConfig tenant;
  std::uint64_t devices = 1000;
  /// Daily-average operations per device per second; the diurnal curve
  /// modulates the instantaneous rate around this mean.
  double mean_rps_per_device = 0.1;
};

struct FleetConfig {
  std::vector<FleetTenant> tenants;
  /// Wall-clock run length.
  double duration_seconds = 2.0;
  /// Wall seconds per simulated 24h day — the diurnal compression knob.
  /// 60 means the fleet lives a full day each minute.
  double day_seconds = 60.0;
  /// Where in the day the run starts, in [0, 1). 0.75 = 18:00, the
  /// Commuter() curve's evening peak.
  double start_day_fraction = 0.75;
  /// Arrival-draw granularity. Each producer draws one Poisson count per
  /// tenant per tick.
  double tick_seconds = 0.005;
  std::uint64_t seed = 1;
  int producers = 2;
  /// When false, producers skip wall-clock pacing and emit the schedule
  /// as fast as possible — for tests that only care about the schedule
  /// or the reconcile, not about rates.
  bool paced = true;
  /// Per-request deadline; 0 = gateway default.
  std::chrono::microseconds timeout{0};
  /// Per-request retry; max_attempts 0 = gateway default.
  gateway::RetryPolicy retry;
  FleetOpMix mix;
  DiurnalCurve curve = DiurnalCurve::Commuter();
};

/// Client-side per-tenant outcome of a Run (the gateway keeps its own,
/// server-side view in TenantStatsSnapshot(); once quiescent the two
/// reconcile: ok + failed + timed_out + shed == submitted).
struct FleetTenantReport {
  std::uint32_t id = 0;
  std::string name;
  std::uint64_t devices = 0;
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timed_out = 0;
  /// Client-observed submit -> completion latency (µs) of *served*
  /// requests (ok/failed/timed_out); shed completions are excluded —
  /// they finish on the submitting thread in well under a microsecond
  /// and would drown the serving percentiles.
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
};

struct FleetReport {
  std::uint64_t devices = 0;
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timed_out = 0;
  double wall_seconds = 0;
  /// Served completions (ok + failed + timed_out) per wall second.
  double completed_per_sec = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  std::vector<FleetTenantReport> tenants;
};

/// Schedule fingerprint from Preview(): enough to pin determinism
/// without running a gateway.
struct SchedulePreview {
  /// FNV-folded (tick, tenant, device, op) per producer, XOR-combined
  /// across producers (producer interleaving on real threads is
  /// nondeterministic; each producer's own stream is not).
  std::uint64_t digest = 0;
  std::uint64_t arrivals = 0;
  std::vector<std::uint64_t> per_tenant;  ///< arrivals by tenant index
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);

  /// Drive `gateway` with the configured load; returns once every
  /// submitted request has completed (served or shed). Emits a
  /// "fleet.run" trace span; producer threads are named "fleet-gen-N".
  /// The gateway should be configured with TenantConfigs() so arrivals
  /// bill against the right admission weights.
  [[nodiscard]] FleetReport Run(gateway::Gateway& gateway);

  /// Generate the exact arrival schedule Run() would submit — same
  /// streams, same draw order — without a gateway and without pacing.
  /// Does not mutate device state. Identical config (seed included)
  /// => identical SchedulePreview.
  [[nodiscard]] SchedulePreview Preview() const;

  /// The tenant directory this fleet bills against, in fleet order —
  /// pass as GatewayConfig::tenants.
  [[nodiscard]] std::vector<gateway::TenantConfig> TenantConfigs() const;

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] const DeviceState& device(std::size_t global_index) const {
    return devices_[global_index];
  }
  [[nodiscard]] const std::vector<sim::GeoTrack>& routes() const {
    return routes_;
  }

  /// Register as an M-Scope source under `prefix`: fleet.devices,
  /// fleet.tenants, fleet.producers gauges plus live fleet.scheduled /
  /// fleet.submitted / fleet.completed counters. Drop the registration
  /// before the Fleet is destroyed.
  [[nodiscard]] support::MetricsRegistry::Registration RegisterMetrics(
      support::MetricsRegistry& registry,
      std::string prefix = "fleet.") const;

 private:
  struct Slice;  // per-(producer, tenant) device range
  template <typename Sink>
  void GenerateProducer(int producer, Sink&& sink) const;

  FleetConfig config_;
  std::vector<DeviceState> devices_;
  /// First global device index per tenant (tenant t owns
  /// [tenant_base_[t], tenant_base_[t + 1])); one extra trailing entry.
  std::vector<std::uint64_t> tenant_base_;
  std::vector<sim::GeoTrack> routes_;
  std::vector<gateway::Op> op_table_;  ///< weighted pick table

  // Live counters for RegisterMetrics (updated by Run).
  mutable std::atomic<std::uint64_t> scheduled_{0};
  mutable std::atomic<std::uint64_t> submitted_{0};
  mutable std::atomic<std::uint64_t> completed_{0};
};

}  // namespace mobivine::fleet
