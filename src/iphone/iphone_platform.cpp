#include "iphone/iphone_platform.h"

#include "support/strings.h"

namespace mobivine::iphone {

IPhonePlatform::IPhonePlatform(device::MobileDevice& device,
                               IPhoneApiCost cost)
    : device_(device), cost_(cost) {}

IPhonePlatform::~IPhonePlatform() { *alive_ = false; }

void IPhonePlatform::FinishComposer(ComposerOutcome outcome) {
  composer_outcome_ = outcome;
  if (composer_observer_) composer_observer_(outcome);
}

bool IPhonePlatform::openURL(const std::string& url, const std::string& body) {
  const bool is_sms = support::StartsWith(url, "sms:");
  const bool is_tel = support::StartsWith(url, "tel:");
  if (!is_sms && !is_tel) return false;  // UIKit: unhandled scheme -> NO
  const std::string number = url.substr(4);
  if (number.empty()) return false;

  device_.scheduler().AdvanceBy(cost_.open_url.Sample(device_.rng()));
  composer_outcome_ = ComposerOutcome::kNone;

  // The system composer takes over; the user decides after a think time.
  const sim::SimTime think = cost_.user_confirmation.Sample(device_.rng());
  std::weak_ptr<bool> alive = alive_;
  device_.scheduler().ScheduleAfter(
      think, [this, alive, is_sms, number, body] {
        auto locked = alive.lock();
        if (!locked || !*locked) return;
        if (!user_confirms_compose_) {
          FinishComposer(ComposerOutcome::kCancelled);
          return;
        }
        if (is_sms) {
          device_.modem().SendSms(
              number, body, [this, alive](const device::SmsResult& result) {
                auto still = alive.lock();
                if (!still || !*still) return;
                if (result.status == device::SmsStatus::kSent) {
                  FinishComposer(ComposerOutcome::kSent);
                } else if (result.status != device::SmsStatus::kDelivered) {
                  FinishComposer(ComposerOutcome::kFailed);
                }
              });
        } else {
          const bool started = device_.modem().Dial(number, nullptr);
          FinishComposer(started ? ComposerOutcome::kSent
                                 : ComposerOutcome::kFailed);
        }
      });
  return true;
}

IPhonePlatform::NSURLResponse IPhonePlatform::sendSynchronousRequest(
    const std::string& method, const std::string& url, const std::string& body,
    const std::string& content_type, NSError& error,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  error = NSError::None();
  NSURLResponse out;
  auto parsed = device::ParseUrl(url);
  if (!parsed) {
    error = {kNSURLErrorDomain, kNSURLErrorBadURL, "bad URL: " + url};
    return out;
  }
  device_.scheduler().AdvanceBy(cost_.nsurl_framework.Sample(device_.rng()));

  device::HttpRequest request;
  request.method = method;
  request.url = *parsed;
  request.body = body;
  for (const auto& [name, value] : headers) {
    request.headers.Set(name, value);
  }
  if (!content_type.empty()) {
    request.headers.Set("Content-Type", content_type);
  }
  const device::NetResult result = device_.network().BlockingSend(request);
  switch (result.error) {
    case device::NetError::kHostUnreachable:
      error = {kNSURLErrorDomain, kNSURLErrorCannotFindHost,
               "cannot find host: " + parsed->host};
      return out;
    case device::NetError::kTimeout:
      error = {kNSURLErrorDomain, kNSURLErrorTimedOut,
               "the request timed out"};
      return out;
    case device::NetError::kNone:
      break;
  }
  out.status_code = result.response.status;
  out.body = result.response.body;
  return out;
}

}  // namespace mobivine::iphone
