#include "iphone/core_location.h"

#include "iphone/iphone_platform.h"

namespace mobivine::iphone {

namespace {
device::GpsMode ModeFor(double desired_accuracy_m) {
  if (desired_accuracy_m <= kCLLocationAccuracyNearestTenMeters) {
    return device::GpsMode::kHighAccuracy;
  }
  if (desired_accuracy_m <= kCLLocationAccuracyHundredMeters) {
    return device::GpsMode::kBalanced;
  }
  return device::GpsMode::kLowPower;
}

CLLocation ToCL(const device::GpsFix& fix) {
  CLLocation out;
  out.latitude = fix.latitude_deg;
  out.longitude = fix.longitude_deg;
  out.altitude = fix.altitude_m;
  out.horizontalAccuracy = fix.valid ? fix.horizontal_accuracy_m : -1.0;
  out.speed = fix.valid ? fix.speed_mps : -1.0;
  out.course = fix.valid ? fix.heading_deg : -1.0;
  out.timestamp_ms = fix.timestamp.micros() / 1000;
  return out;
}
}  // namespace

CLLocationManager::CLLocationManager(IPhonePlatform& platform)
    : platform_(platform) {}

CLLocationManager::~CLLocationManager() {
  *alive_ = false;
  stopUpdatingLocation();
}

void CLLocationManager::startUpdatingLocation() {
  if (updating_) return;
  updating_ = true;

  auto& dev = platform_.device();
  if (!prompted_) {
    prompted_ = true;
    // The system authorization dialog blocks the fix stream, not the app.
    const sim::SimTime think =
        platform_.cost().authorization_prompt.Sample(dev.rng());
    std::weak_ptr<bool> alive = alive_;
    dev.scheduler().ScheduleAfter(think, [this, alive] {
      auto locked = alive.lock();
      if (!locked || !*locked || !updating_) return;
      if (!platform_.user_allows_location()) {
        if (delegate_ != nullptr) {
          delegate_->locationManagerDidFailWithError(
              {kCLErrorDomain, kCLErrorDenied, "user denied location access"});
        }
        updating_ = false;
        return;
      }
      DeliverFix();
    });
    return;
  }
  DeliverFix();
}

void CLLocationManager::DeliverFix() {
  auto& dev = platform_.device();
  std::weak_ptr<bool> alive = alive_;
  subscription_ = dev.gps().StartPeriodicFixes(
      ModeFor(desired_accuracy_m_), platform_.cost().location_update_interval,
      [this, alive](const device::GpsFix& fix) {
        auto locked = alive.lock();
        if (!locked || !*locked || !updating_ || delegate_ == nullptr) return;
        if (!fix.valid) {
          delegate_->locationManagerDidFailWithError(
              {kCLErrorDomain, kCLErrorLocationUnknown,
               "location is currently unknown"});
          return;
        }
        CLLocation next = ToCL(fix);
        delegate_->locationManagerDidUpdateToLocation(next, last_);
        last_ = next;
      });
}

void CLLocationManager::stopUpdatingLocation() {
  if (!updating_) return;
  updating_ = false;
  if (subscription_ != 0) {
    platform_.device().gps().StopPeriodicFixes(subscription_);
    subscription_ = 0;
  }
}

}  // namespace mobivine::iphone
