#include "iphone/address_book.h"

#include "iphone/iphone_platform.h"

namespace mobivine::iphone {

std::string ABRecord::CopyValue(int property) const {
  switch (property) {
    case kABPersonNameProperty:
      return name;
    case kABPersonPhoneProperty:
      return phone;
    case kABPersonEmailProperty:
      return email;
    default:
      throw NSInvalidArgumentException("unknown ABPerson property " +
                                       std::to_string(property));
  }
}

std::vector<ABRecord> ABAddressBook::CopyArrayOfAllPeople() {
  auto& device = platform_.device();
  device.scheduler().AdvanceBy(
      platform_.cost().ab_copy_all.Sample(device.rng()));
  std::vector<ABRecord> out;
  for (const auto& record : device.contacts().All()) {
    out.push_back(
        {record.id, record.display_name, record.phone_number, record.email});
  }
  return out;
}

long ABAddressBook::GetPersonCount() {
  return static_cast<long>(platform_.device().contacts().size());
}

}  // namespace mobivine::iphone
