// AddressBook.framework analog (iPhone OS 2.x): C-style Create/Copy calls,
// opaque record references, property constants — and, faithfully to 2009,
// NO user-consent prompt (address-book access prompts arrived with iOS 6).
#pragma once

#include <string>
#include <vector>

#include "iphone/exceptions.h"

namespace mobivine::iphone {

class IPhonePlatform;

/// kABPerson*Property constants.
inline constexpr int kABPersonNameProperty = 1;
inline constexpr int kABPersonPhoneProperty = 2;
inline constexpr int kABPersonEmailProperty = 3;

/// ABRecordRef analog: a value snapshot of one person.
struct ABRecord {
  long long record_id = 0;
  std::string name;
  std::string phone;
  std::string email;

  /// ABRecordCopyValue. Throws NSInvalidArgumentException for an unknown
  /// property (the CF call would return NULL and the app would crash later;
  /// we fail fast instead).
  [[nodiscard]] std::string CopyValue(int property) const;
};

/// ABAddressBookCreate + the copy calls the 2009 apps used.
class ABAddressBook {
 public:
  explicit ABAddressBook(IPhonePlatform& platform) : platform_(platform) {}

  /// ABAddressBookCopyArrayOfAllPeople.
  [[nodiscard]] std::vector<ABRecord> CopyArrayOfAllPeople();
  /// ABAddressBookGetPersonCount.
  [[nodiscard]] long GetPersonCount();

 private:
  IPhonePlatform& platform_;
};

}  // namespace mobivine::iphone
