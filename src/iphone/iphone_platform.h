// The iPhone OS (2009) platform substrate — the paper's §7 future-work
// platform, added here to exercise MobiVine's extension story: "if the
// semantic and syntactic planes already exist for other platforms, one
// requires to publish only the binding artifacts … for a new platform."
//
// 2009 platform realities modeled:
//  * Location: delegate-streaming CoreLocation, user-authorization prompt,
//    NO region monitoring (see core_location.h).
//  * SMS / calls: NO programmatic send — applications open "sms:" / "tel:"
//    URLs via UIApplication openURL:, the system UI takes over and the
//    user confirms. Modeled with a confirmation latency and a
//    user-approval flag; no delivery reports of any kind.
//  * HTTP: NSURLConnection sendSynchronousRequest (blocking, NSError out).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "device/mobile_device.h"
#include "iphone/core_location.h"
#include "iphone/exceptions.h"
#include "sim/latency_model.h"

namespace mobivine::iphone {

/// Figure-10-style calibration for the iPhone substrate. The paper has no
/// iPhone measurements; these are plausibility values documented in
/// EXPERIMENTS.md §Extension and exercised by the extension tests/benches.
struct IPhoneApiCost {
  /// CoreLocation fix cadence once updating.
  sim::SimTime location_update_interval = sim::SimTime::Millis(1000);
  /// System authorization prompt (user think time) on first location use.
  sim::LatencyModel authorization_prompt =
      sim::LatencyModel::UniformIn(sim::SimTime::Millis(800),
                                   sim::SimTime::Millis(2500));
  /// openURL context switch into the system SMS/phone UI.
  sim::LatencyModel open_url =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(60.0),
                                sim::SimTime::MillisF(5.0),
                                sim::SimTime::MillisF(30.0));
  /// User confirming the sms:/tel: composer.
  sim::LatencyModel user_confirmation =
      sim::LatencyModel::UniformIn(sim::SimTime::Millis(900),
                                   sim::SimTime::Millis(3000));
  sim::LatencyModel nsurl_framework =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(10.0),
                                sim::SimTime::MillisF(1.0),
                                sim::SimTime::MillisF(5.0));
  /// ABAddressBookCopyArrayOfAllPeople.
  sim::LatencyModel ab_copy_all =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(12.0),
                                sim::SimTime::MillisF(1.0),
                                sim::SimTime::MillisF(6.0));
};

class IPhonePlatform {
 public:
  explicit IPhonePlatform(device::MobileDevice& device, IPhoneApiCost cost = {});
  ~IPhonePlatform();

  IPhonePlatform(const IPhonePlatform&) = delete;
  IPhonePlatform& operator=(const IPhonePlatform&) = delete;

  device::MobileDevice& device() { return device_; }
  const IPhoneApiCost& cost() const { return cost_; }

  // --- user consent switches (the system dialogs) -------------------------
  void set_user_allows_location(bool allow) { user_allows_location_ = allow; }
  bool user_allows_location() const { return user_allows_location_; }
  void set_user_confirms_compose(bool confirm) {
    user_confirms_compose_ = confirm;
  }
  bool user_confirms_compose() const { return user_confirms_compose_; }

  // --- UIApplication openURL: ---------------------------------------------
  /// Open an "sms:+number" or "tel:+number" URL: switches to the system
  /// UI, waits for the user, and (if confirmed) hands the action to the
  /// modem. Returns NO for malformed/unsupported URLs (UIKit contract).
  /// `body` is the prefilled SMS text (the app cannot send silently).
  bool openURL(const std::string& url, const std::string& body = "");

  /// Completion of the last openURL-driven action, observable by tests and
  /// by bindings that poll (kNone until the user decides).
  enum class ComposerOutcome { kNone, kSent, kCancelled, kFailed };
  ComposerOutcome last_composer_outcome() const { return composer_outcome_; }
  /// Observer invoked when a composer session finishes.
  void set_composer_observer(std::function<void(ComposerOutcome)> observer) {
    composer_observer_ = std::move(observer);
  }

  // --- NSURLConnection sendSynchronousRequest ------------------------------
  struct NSURLResponse {
    int status_code = 0;
    std::string body;
  };
  /// Blocking HTTP. On failure the response is empty and `error` is set
  /// (NSError-out-parameter style, no exceptions). `headers` models the
  /// NSMutableURLRequest setValue:forHTTPHeaderField: calls.
  NSURLResponse sendSynchronousRequest(
      const std::string& method, const std::string& url,
      const std::string& body, const std::string& content_type,
      NSError& error,
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  std::shared_ptr<bool> alive_token() const { return alive_; }

 private:
  void FinishComposer(ComposerOutcome outcome);

  device::MobileDevice& device_;
  IPhoneApiCost cost_;
  bool user_allows_location_ = true;
  bool user_confirms_compose_ = true;
  ComposerOutcome composer_outcome_ = ComposerOutcome::kNone;
  std::function<void(ComposerOutcome)> composer_observer_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mobivine::iphone
