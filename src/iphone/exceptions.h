// iPhone OS (2009, iPhone OS 2.x/3.0) error surface.
//
// Objective-C APIs of the era do not throw for expectable failures: they
// report NSError objects through delegates or return nil/NO. The substrate
// mirrors that — the only C++ exceptions here model programmer errors
// (NSInvalidArgumentException-style) — and everything else is an NSError
// value. Same design note as the other substrates: the shapes are
// intentionally foreign; absorbing them is MobiVine's job.
#pragma once

#include <stdexcept>
#include <string>

namespace mobivine::iphone {

/// NSException with name NSInvalidArgumentException.
class NSInvalidArgumentException : public std::runtime_error {
 public:
  explicit NSInvalidArgumentException(const std::string& reason)
      : std::runtime_error(reason) {}
};

/// NSError analog: domain + code + localized description.
struct NSError {
  std::string domain;
  int code = 0;
  std::string localized_description;

  bool ok() const { return domain.empty(); }
  static NSError None() { return {}; }
};

/// kCLErrorDomain codes (CoreLocation).
inline constexpr const char* kCLErrorDomain = "kCLErrorDomain";
inline constexpr int kCLErrorLocationUnknown = 0;
inline constexpr int kCLErrorDenied = 1;

/// NSURLErrorDomain codes.
inline constexpr const char* kNSURLErrorDomain = "NSURLErrorDomain";
inline constexpr int kNSURLErrorCannotFindHost = -1003;
inline constexpr int kNSURLErrorTimedOut = -1001;
inline constexpr int kNSURLErrorBadURL = -1000;

}  // namespace mobivine::iphone
