// CoreLocation analog (iPhone OS 2.x): CLLocationManager with a delegate.
//
// Shapes the Location proxy must absorb on this platform:
//  * purely asynchronous: startUpdatingLocation() streams fixes to a
//    delegate; there is NO blocking "get current location" call;
//  * desiredAccuracy is a property on the manager, not a criteria object
//    or a provider name;
//  * NO region monitoring at all in 2009 (CLRegion arrived with iOS 4) —
//    proximity alerts must be synthesized from the update stream;
//  * the user authorizes location access through a system prompt; denial
//    surfaces as kCLErrorDenied through the delegate, not an exception.
#pragma once

#include <memory>

#include "iphone/exceptions.h"
#include "sim/clock.h"

namespace mobivine::iphone {

class IPhonePlatform;

/// CLLocationCoordinate2D + CLLocation (flattened).
struct CLLocation {
  double latitude = 0.0;
  double longitude = 0.0;
  double altitude = 0.0;
  double horizontalAccuracy = -1.0;  ///< negative = invalid, Apple-style
  double speed = -1.0;
  double course = -1.0;
  long long timestamp_ms = 0;

  bool valid() const { return horizontalAccuracy >= 0.0; }
};

/// kCLLocationAccuracy* constants (meters; the 2009 set).
inline constexpr double kCLLocationAccuracyBest = 5.0;
inline constexpr double kCLLocationAccuracyNearestTenMeters = 10.0;
inline constexpr double kCLLocationAccuracyHundredMeters = 100.0;
inline constexpr double kCLLocationAccuracyKilometer = 1000.0;

/// CLLocationManagerDelegate.
class CLLocationManagerDelegate {
 public:
  virtual ~CLLocationManagerDelegate() = default;
  virtual void locationManagerDidUpdateToLocation(
      const CLLocation& new_location, const CLLocation& old_location) = 0;
  virtual void locationManagerDidFailWithError(const NSError& error) = 0;
};

class CLLocationManager {
 public:
  explicit CLLocationManager(IPhonePlatform& platform);
  ~CLLocationManager();

  CLLocationManager(const CLLocationManager&) = delete;
  CLLocationManager& operator=(const CLLocationManager&) = delete;

  void setDelegate(CLLocationManagerDelegate* delegate) {
    delegate_ = delegate;
  }
  void setDesiredAccuracy(double accuracy_m) {
    desired_accuracy_m_ = accuracy_m;
  }
  double desiredAccuracy() const { return desired_accuracy_m_; }

  /// Begin streaming fixes to the delegate. The first call triggers the
  /// system authorization prompt (virtual user-think latency); a denial
  /// delivers kCLErrorDenied to the delegate and no fixes ever arrive.
  void startUpdatingLocation();
  void stopUpdatingLocation();
  bool updating() const { return updating_; }

 private:
  void DeliverFix();

  IPhonePlatform& platform_;
  CLLocationManagerDelegate* delegate_ = nullptr;
  double desired_accuracy_m_ = kCLLocationAccuracyHundredMeters;
  bool updating_ = false;
  bool prompted_ = false;
  CLLocation last_;
  std::uint64_t subscription_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mobivine::iphone
