#include "gateway/gateway.h"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "android/android_platform.h"
#include "core/meter.h"
#include "core/proxy.h"
#include "core/registry.h"
#include "gateway/mpsc_queue.h"
#include "iphone/iphone_platform.h"
#include "s60/s60_platform.h"
#include "sim/geo_track.h"
#include "support/logging.h"
#include "support/trace.h"

namespace mobivine::gateway {

namespace {

/// Finalizing mix so nearby client ids still spread across shards.
[[nodiscard]] std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Errors worth re-executing: the underlying condition (lost packet,
/// radio glitch, failed GPS fix) is sampled fresh on every attempt.
[[nodiscard]] bool IsTransient(core::ErrorCode code) {
  switch (code) {
    case core::ErrorCode::kTimeout:
    case core::ErrorCode::kRadioFailure:
    case core::ErrorCode::kNetwork:
    case core::ErrorCode::kUnreachable:
    case core::ErrorCode::kLocationUnavailable:
      return true;
    default:
      return false;
  }
}

constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

constexpr int kOpCount = static_cast<int>(core::Op::kCount_);

/// A request as it sits in a shard queue: envelope + admission stamps.
struct QueuedRequest {
  Request request;
  /// Non-null for an M-Script execution: it rides the same bounded queue
  /// and admission/deadline stamps, but Serve branches to the script
  /// plane at dequeue (and never retries it).
  std::unique_ptr<ScriptRequest> script;
  /// Resolved TenantTable slot (stamped at submit so the worker and the
  /// occupancy release never re-hash the tenant id).
  std::uint32_t tenant_slot = 0;
  Clock::time_point submitted_at{};
  Clock::time_point deadline = kNoDeadline;
};

void InvokeCompletionFn(const std::function<void(const Response&)>& fn,
                        const Response& response) {
  if (!fn) return;
  try {
    fn(response);
  } catch (const std::exception& e) {
    // A throwing completion callback must not take down the worker.
    MOBIVINE_LOG_ERROR << "gateway: completion callback threw: " << e.what();
  }
}

void InvokeCompletion(Request& request, const Response& response) {
  InvokeCompletionFn(request.on_complete, response);
}

void InvokeScriptCompletionFn(
    const std::function<void(const ScriptResponse&)>& fn,
    const ScriptResponse& response) {
  if (!fn) return;
  try {
    fn(response);
  } catch (const std::exception& e) {
    MOBIVINE_LOG_ERROR << "gateway: script completion callback threw: "
                       << e.what();
  }
}

}  // namespace

const char* ToString(Platform platform) {
  switch (platform) {
    case Platform::kAndroid:
      return "android";
    case Platform::kS60:
      return "s60";
    case Platform::kIphone:
      return "iphone";
  }
  return "?";
}

const char* ToString(Op op) {
  switch (op) {
    case Op::kGetLocation:
      return "getLocation";
    case Op::kSendSms:
      return "sendSms";
    case Op::kHttpGet:
      return "httpGet";
    case Op::kHttpPost:
      return "httpPost";
    case Op::kSegmentCount:
      return "segmentCount";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Shard: one worker thread owning a complete single-threaded MobiVine world
// ---------------------------------------------------------------------------

class Gateway::Shard {
 public:
  /// Why an admission attempt did not queue the request. Quota and
  /// queue-full both surface kOverloaded to the caller; they are kept
  /// apart so stats and traces can tell "the shard is full" from "this
  /// tenant exceeded its weighted share".
  enum class Admission { kAdmitted, kQueueFull, kQuota };

  Shard(const GatewayConfig& config, const TenantTable& tenants,
        std::uint32_t index)
      : index_(index),
        queue_(config.queue_capacity),
        shed_watermark_(std::min(config.shed_watermark == 0
                                     ? config.queue_capacity
                                     : config.shed_watermark,
                                 config.queue_capacity)),
        default_retry_(config.default_retry),
        tenants_(tenants),
        feed_(config.push_replay_capacity),
        sms_bridge_(*this),
        registry_(config.store) {
    tenant_caps_.reserve(tenants_.size());
    for (std::size_t slot = 0; slot < tenants_.size(); ++slot) {
      tenant_caps_.push_back(tenants_.QueueCap(slot, shed_watermark_));
    }
    tenant_occupancy_ =
        std::make_unique<std::atomic<std::uint32_t>[]>(tenants_.size());
    device::DeviceConfig device_config = config.device_template;
    device_config.seed += index;  // decorrelate shards, stay deterministic
    device_ = std::make_unique<device::MobileDevice>(device_config);
    device_->gps().set_track(
        sim::GeoTrack::Stationary(28.5245, 77.1855, 210.0));
    device_->modem().RegisterSubscriber(kGatewaySmsPeer);
    device_->network().RegisterHost(
        kGatewayHttpHost, [](const device::HttpRequest& http_request) {
          return device::HttpResponse::Ok(http_request.body.empty()
                                              ? "pong"
                                              : http_request.body);
        });

    android_ = std::make_unique<android::AndroidPlatform>(*device_);
    android_->grantPermission(android::permissions::kFineLocation);
    android_->grantPermission(android::permissions::kSendSms);
    android_->grantPermission(android::permissions::kInternet);
    s60_ = std::make_unique<s60::S60Platform>(*device_);
    s60_->grantPermission(s60::permissions::kLocation);
    s60_->grantPermission(s60::permissions::kSmsSend);
    s60_->grantPermission(s60::permissions::kHttp);
    iphone_ = std::make_unique<iphone::IPhonePlatform>(*device_);
    if (config.failover.enabled()) {
      failover_ =
          std::make_unique<FailoverEngine>(config.failover, stats_, index);
    }

    location_[PlatformIndex(Platform::kAndroid)] =
        registry_.CreateLocationProxy(*android_);
    location_[PlatformIndex(Platform::kAndroid)]->setProperty(
        "context", &android_->application_context());
    location_[PlatformIndex(Platform::kS60)] =
        registry_.CreateLocationProxy(*s60_);
    location_[PlatformIndex(Platform::kIphone)] =
        registry_.CreateLocationProxy(*iphone_);

    sms_[PlatformIndex(Platform::kAndroid)] = registry_.CreateSmsProxy(*android_);
    sms_[PlatformIndex(Platform::kAndroid)]->setProperty(
        "context", &android_->application_context());
    sms_[PlatformIndex(Platform::kS60)] = registry_.CreateSmsProxy(*s60_);
    sms_[PlatformIndex(Platform::kIphone)] = registry_.CreateSmsProxy(*iphone_);

    http_[PlatformIndex(Platform::kAndroid)] =
        registry_.CreateHttpProxy(*android_);
    http_[PlatformIndex(Platform::kS60)] = registry_.CreateHttpProxy(*s60_);
    http_[PlatformIndex(Platform::kIphone)] =
        registry_.CreateHttpProxy(*iphone_);

    if (failover_ != nullptr) {
      // The engine is every proxy's fault gate, so injected faults
      // surface through the same binding-dispatch path as real ones.
      static constexpr Platform kAll[] = {Platform::kAndroid, Platform::kS60,
                                          Platform::kIphone};
      for (Platform platform : kAll) {
        const char* tag = ToString(platform);
        const std::size_t i = PlatformIndex(platform);
        location_[i]->installFaultGate(failover_.get(), tag);
        sms_[i]->installFaultGate(failover_.get(), tag);
        http_[i]->installFaultGate(failover_.get(), tag);
      }
    }

    // M-Script: the engine's host ops close over this shard's proxies, so
    // a script's invocations hit the exact metered, fault-gated,
    // descriptor-validated surface kRequest traffic does. All callbacks
    // run on the worker thread only.
    ScriptHostOps host_ops;
    host_ops.invoke = [this](Platform platform, Op op,
                             const std::string& target,
                             const std::string& payload,
                             const std::string& content_type) {
      Request request;
      request.op = op;
      request.target = target;
      request.payload = payload;
      request.content_type = content_type;
      return ExecuteOnce(request, platform);
    };
    host_ops.set_property = [this](Platform platform, Op op,
                                   const std::string& name,
                                   const std::string& value) {
      core::MProxy& proxy = ProxyFor(platform, op);
      // Snapshot each proxy once per script, on first touch; ServeScript
      // restores every touched proxy after the run, so script property
      // writes never leak into later traffic on this shard.
      const bool seen = std::any_of(
          script_touched_.begin(), script_touched_.end(),
          [&proxy](const auto& entry) { return entry.first == &proxy; });
      if (!seen) {
        script_touched_.emplace_back(&proxy, proxy.snapshotProperties());
      }
      proxy.setProperty(name, core::PropertyValue(value));
    };
    host_ops.get_property = [this](Platform platform, Op op,
                                   const std::string& name) -> std::string {
      core::MProxy& proxy = ProxyFor(platform, op);
      if (auto s = proxy.getProperty<std::string>(name)) return *s;
      if (auto i = proxy.getProperty<long long>(name)) {
        return std::to_string(*i);
      }
      if (auto d = proxy.getProperty<double>(name)) return std::to_string(*d);
      if (auto b = proxy.getProperty<bool>(name)) return *b ? "true" : "false";
      return std::string();
    };
    const std::uint64_t per_step = config.script.virtual_us_per_step;
    host_ops.charge_steps = [this, per_step](std::uint64_t steps) {
      device_->scheduler().AdvanceBy(sim::SimTime::Micros(
          static_cast<std::int64_t>(steps * per_step)));
    };
    host_ops.virtual_now_us = [this] { return VirtualNowUs(); };
    script_engine_ =
        std::make_unique<ScriptEngine>(std::move(host_ops), config.script);

    // Everything above happened on the constructing thread; the thread
    // start below is the handoff point (happens-before), after which the
    // device, platforms and proxies are touched only by the worker.
    worker_ = std::thread([this] { WorkerLoop(); });
  }

  ~Shard() {
    Close();
    Join();
  }

  /// Admission control on the submitting thread: the global shed
  /// watermark first, then the tenant's weighted slot cap. On anything
  /// but kAdmitted the request is left intact in `queued` (TryPush only
  /// moves on success) so the caller can shed it. The occupancy counter
  /// is reserved *before* the push and released on failure, so
  /// concurrent submitters can momentarily observe cap-full and shed,
  /// but a tenant can never exceed its cap.
  Admission TrySubmit(QueuedRequest& queued) {
    const std::size_t depth = queue_.size();
    stats_.ObserveDepth(depth);
    if (depth >= shed_watermark_) return Admission::kQueueFull;
    const std::size_t slot = queued.tenant_slot;
    const std::uint32_t prev =
        tenant_occupancy_[slot].fetch_add(1, std::memory_order_relaxed);
    if (prev >= tenant_caps_[slot]) {
      tenant_occupancy_[slot].fetch_sub(1, std::memory_order_relaxed);
      return Admission::kQuota;
    }
    if (!queue_.TryPush(std::move(queued))) {
      tenant_occupancy_[slot].fetch_sub(1, std::memory_order_relaxed);
      return Admission::kQueueFull;
    }
    stats_.OnAccepted();
    tenants_.stats(slot).OnAccepted();
    return Admission::kAdmitted;
  }

  /// The admission checks alone, for the borrowed-request path: lets the
  /// caller decide to shed before paying for string materialization.
  /// Advisory — the queue can still fill (or the tenant's slots free up)
  /// between this and TrySubmit, so the push itself remains the
  /// authoritative admission.
  [[nodiscard]] Admission ProbeAdmission(std::size_t slot) const {
    if (queue_.size() >= shed_watermark_) return Admission::kQueueFull;
    if (tenant_occupancy_[slot].load(std::memory_order_relaxed) >=
        tenant_caps_[slot]) {
      return Admission::kQuota;
    }
    return Admission::kAdmitted;
  }

  void Close() { queue_.Close(); }

  void Join() {
    if (worker_.joinable()) worker_.join();
  }

  [[nodiscard]] ShardSnapshot Snapshot() const {
    return stats_.Snapshot(queue_.size());
  }

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  ShardStats& stats() { return stats_; }

  PushFeed& feed() { return feed_; }

  /// Sum this shard's nine proxy meters into the caller's accumulators
  /// (M-Scope metrics source). Meter counters are relaxed atomics, so
  /// reading them while the worker serves is safe.
  void AddMeterCounts(std::array<std::uint64_t, kOpCount>& counts,
                      std::uint64_t& charged_us) const {
    const auto add = [&](const core::MProxy& proxy) {
      const core::OverheadMeter& meter = proxy.meter();
      for (int op = 0; op < kOpCount; ++op) {
        counts[static_cast<std::size_t>(op)] +=
            meter.count(static_cast<core::Op>(op));
      }
      charged_us += static_cast<std::uint64_t>(meter.charged().micros());
    };
    for (const auto& proxy : location_) add(*proxy);
    for (const auto& proxy : sms_) add(*proxy);
    for (const auto& proxy : http_) add(*proxy);
  }

 private:
  /// Routes the uniform SmsListener callback surface into the shard's
  /// push feed. One long-lived instance per shard, handed to every
  /// sendTextMessage dispatch — the bindings retain it for the delivery
  /// broadcasts that fire later (during RunAll or a later serve), so it
  /// must outlive every in-flight message, which shard ownership gives.
  class SmsDeliveryBridge : public core::SmsListener {
   public:
    explicit SmsDeliveryBridge(Shard& shard) : shard_(shard) {}
    void smsStatusChanged(long long message_id,
                          core::SmsDeliveryStatus status) override {
      shard_.PublishSmsStatus(message_id, status);
    }

   private:
    Shard& shard_;
  };

  /// Worker-thread only (bindings fire callbacks on the serving thread).
  /// The kSubmitted callback fires inside sendTextMessage, while the
  /// originating request is still the one being served — that is when a
  /// message id gets bound to its client; later delivery broadcasts for
  /// the same id (which fire while a DIFFERENT request is current) look
  /// the owner up instead of trusting serving_client_id_.
  void PublishSmsStatus(long long message_id,
                        core::SmsDeliveryStatus status) {
    std::uint64_t client = serving_client_id_;
    const auto it = sms_owners_.find(message_id);
    if (it != sms_owners_.end()) {
      client = it->second;
    } else {
      sms_owners_.emplace(message_id, client);
    }
    // Delivered/failed are terminal — drop the binding so the map stays
    // bounded by in-flight messages.
    if (status != core::SmsDeliveryStatus::kSubmitted) {
      sms_owners_.erase(message_id);
    }
    feed_.Publish(PushTopic::kSmsDelivery, client,
                  std::to_string(message_id) + ":" + core::ToString(status));
  }

  static constexpr std::size_t PlatformIndex(Platform platform) {
    return static_cast<std::size_t>(platform);
  }

  /// M-Scope virtual clock source for this shard's worker thread: spans
  /// recorded on it carry the shard scheduler's virtual timestamps.
  static std::uint64_t VirtualNow(void* ctx) {
    auto* shard = static_cast<Shard*>(ctx);
    return static_cast<std::uint64_t>(shard->device_->scheduler().now().micros());
  }

  /// The shard's virtual clock, as the µs the breakers and hedge
  /// profiles run on.
  [[nodiscard]] std::uint64_t VirtualNowUs() const {
    return static_cast<std::uint64_t>(device_->scheduler().now().micros());
  }

  void WorkerLoop() {
    support::trace::SetCurrentThreadName("shard-" + std::to_string(index_));
    support::trace::SetThreadVirtualClock(&Shard::VirtualNow, this);
    QueuedRequest queued;
    while (queue_.Pop(queued)) {
      Serve(queued);
      // The tenant's slot reservation ends at *completion*, not dequeue:
      // the cap bounds outstanding (queued + in-service) work per
      // tenant. Releasing at dequeue would let a flooding tenant with
      // cap 1 keep one request queued while another is being served —
      // effectively two pipeline slots — and interleave itself between
      // every other tenant's requests. FIFO service then converts the
      // outstanding-work bound into weight-proportional served
      // throughput under backlog.
      tenant_occupancy_[queued.tenant_slot].fetch_sub(
          1, std::memory_order_relaxed);
    }
    support::trace::SetThreadVirtualClock(nullptr, nullptr);
  }

  void Serve(QueuedRequest& queued) {
    if (queued.script != nullptr) {
      ServeScript(queued);
      return;
    }
    support::trace::Span serve_span("gateway.serve");
    serve_span.Tag("shard", index_);
    serving_client_id_ = queued.request.client_id;
    Response response;
    response.shard = index_;
    const Clock::time_point dequeued_at = Clock::now();
    // Queue wait starts on the submitting thread and ends here; record it
    // as a complete event with caller-supplied bounds.
    support::trace::CompleteEvent("gateway.queue_wait", queued.submitted_at,
                                  dequeued_at, "shard", index_);
    if (dequeued_at >= queued.deadline) {
      support::trace::Instant("gateway.deadline_expired", "shard", index_);
      stats_.OnTimedOut();
      response.error = core::ErrorCode::kDeadlineExceeded;
      response.message = "deadline expired in queue";
      Finish(queued, response);
      return;
    }

    const RetryPolicy& policy = queued.request.retry.max_attempts > 0
                                    ? queued.request.retry
                                    : default_retry_;
    // max_attempts bounds retry ROUNDS. Without M-Failover a round is
    // exactly one dispatch, so this is the pre-failover contract; with it
    // a round is one failover sweep across the shard's platforms, and
    // Response::attempts reports the total dispatches issued.
    const int max_rounds = std::max(policy.max_attempts, 1);
    std::chrono::microseconds backoff =
        std::max(policy.initial_backoff, std::chrono::microseconds(1));
    int round = 0;
    while (true) {
      // The backoff-fits check below predicts the deadline will survive
      // the sleep, but sleep_for may overshoot: re-check so an expired
      // request never starts another attempt.
      if (response.attempts > 0 && Clock::now() >= queued.deadline) {
        support::trace::Instant("gateway.deadline_expired", "shard", index_);
        stats_.OnTimedOut();
        response.error = core::ErrorCode::kDeadlineExceeded;
        response.message = "deadline expired between retry attempts";
        break;
      }
      ++round;
      const SweepOutcome sweep = RunSweep(queued, response);
      if (sweep.final) break;  // success, or a non-retryable failure booked
      // The whole sweep failed transiently: spend a retry round on it.
      if (round >= max_rounds) {
        stats_.OnFailed();
        if (sweep.all_backends) {
          // Failover actually swept the shard's platforms (or breakers
          // sidelined them) and none could serve: the caller's platform
          // choice is not the story, the shard-wide outage is.
          response.error = core::ErrorCode::kAllBackendsFailed;
          response.message =
              std::string("all backends failed; last error: ") +
              sweep.last_message;
        } else {
          response.error = sweep.last_code;
          response.message = sweep.last_message;
        }
        break;
      }
      if (Clock::now() + backoff >= queued.deadline) {
        // Transient and rounds remain, but the deadline cannot absorb
        // the next backoff: the request ran out of time, not attempts.
        // That is a deadline outcome, not a failure of the last error's
        // kind — misclassifying it as the transient error both lies to
        // the caller and double-books stats (failed vs timed_out).
        stats_.OnTimedOut();
        response.error = core::ErrorCode::kDeadlineExceeded;
        response.message =
            std::string("deadline exhausted during retry; last error: ") +
            sweep.last_message;
        break;
      }
      stats_.OnRetry();
      tenants_.stats(queued.tenant_slot).OnRetry();
      {
        support::trace::Span backoff_span("gateway.backoff");
        backoff_span.Tag("backoff_us", backoff.count());
        backoff_span.Tag("shard", index_);
        std::this_thread::sleep_for(backoff);
        // Mirror the wait onto the shard's virtual timeline so
        // device-side timers (delivery reports, polling) progress
        // during the backoff — and open circuit breakers cool down.
        device_->scheduler().AdvanceBy(
            sim::SimTime::Micros(backoff.count()));
      }
      const auto grown = static_cast<std::int64_t>(
          static_cast<double>(backoff.count()) * policy.multiplier);
      backoff = std::min(std::chrono::microseconds(std::max<std::int64_t>(
                             grown, backoff.count() + 1)),
                         policy.max_backoff);
    }
    // Drain device-side follow-ups (delivery intents, polling ticks)
    // before the next request so per-request virtual work stays bounded.
    device_->RunAll();
    Finish(queued, response);
  }

  void Finish(QueuedRequest& queued, Response& response) {
    response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - queued.submitted_at);
    stats_.RecordLatency(
        static_cast<std::uint64_t>(response.latency.count()));
    // Per-tenant outcome, classified once from the final response so it
    // mirrors the shard counters booked along the serve path exactly:
    // ok / kDeadlineExceeded / everything-else == ok / timed_out / failed.
    TenantStats& tenant = tenants_.stats(queued.tenant_slot);
    if (response.ok) {
      tenant.OnOk();
    } else if (response.error == core::ErrorCode::kDeadlineExceeded) {
      tenant.OnTimedOut();
    } else {
      tenant.OnFailed();
    }
    tenant.RecordLatency(
        static_cast<std::uint64_t>(response.latency.count()));
    support::trace::Span complete_span("gateway.complete");
    complete_span.Tag("shard", index_);
    complete_span.Tag("attempts", response.attempts);
    InvokeCompletion(queued.request, response);
  }

  /// M-Script service: deadline check at dequeue, one sandboxed
  /// execution, one completion. No retry rounds — a composite may have
  /// performed side effects (an SMS send) before failing, and retry is
  /// expressible in-language since host errors are catchable.
  void ServeScript(QueuedRequest& queued) {
    ScriptRequest& script = *queued.script;
    support::trace::Span run_span("script.run");
    run_span.Tag("shard", index_);
    serving_client_id_ = script.client_id;
    ScriptResponse response;
    response.shard = index_;
    const Clock::time_point dequeued_at = Clock::now();
    support::trace::CompleteEvent("gateway.queue_wait", queued.submitted_at,
                                  dequeued_at, "shard", index_);
    if (dequeued_at >= queued.deadline) {
      support::trace::Instant("gateway.deadline_expired", "shard", index_);
      stats_.OnTimedOut();
      response.error = core::ErrorCode::kDeadlineExceeded;
      response.message = "deadline expired in queue";
      FinishScript(queued, response);
      return;
    }
    stats_.OnScript();
    response = script_engine_->Execute(script);
    response.shard = index_;
    if (response.cache_hit) {
      stats_.OnScriptCacheHit();
    } else {
      stats_.OnScriptCacheMiss();
    }
    run_span.Tag("steps", static_cast<std::int64_t>(response.steps));
    run_span.Tag("invocations",
                 static_cast<std::int64_t>(response.invocations));
    // Undo the script's property writes (reverse order, mirroring nested
    // ScopedPropertyRestore) whatever the outcome — including throws the
    // script caught and recovered from.
    for (auto it = script_touched_.rbegin(); it != script_touched_.rend();
         ++it) {
      it->first->restoreProperties(std::move(it->second));
    }
    script_touched_.clear();
    stats_.OnScriptSteps(response.steps);
    stats_.OnScriptInvocations(response.invocations);
    if (response.ok) {
      stats_.OnOk();
    } else if (response.error == core::ErrorCode::kDeadlineExceeded) {
      stats_.OnTimedOut();
    } else {
      stats_.OnFailed();
    }
    if (response.script_error) stats_.OnScriptError();
    if (response.budget_kill) stats_.OnScriptBudgetKill();
    // Drain device-side follow-ups (delivery intents, polling ticks)
    // scheduled by the script's invocations, as Serve does.
    device_->RunAll();
    FinishScript(queued, response);
  }

  void FinishScript(QueuedRequest& queued, ScriptResponse& response) {
    response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - queued.submitted_at);
    stats_.RecordLatency(
        static_cast<std::uint64_t>(response.latency.count()));
    // Same per-tenant classification as Finish(): scripts bill their
    // tenant through the identical outcome bands.
    TenantStats& tenant = tenants_.stats(queued.tenant_slot);
    if (response.ok) {
      tenant.OnOk();
    } else if (response.error == core::ErrorCode::kDeadlineExceeded) {
      tenant.OnTimedOut();
    } else {
      tenant.OnFailed();
    }
    tenant.RecordLatency(
        static_cast<std::uint64_t>(response.latency.count()));
    support::trace::Span complete_span("gateway.complete");
    complete_span.Tag("shard", index_);
    InvokeScriptCompletionFn(queued.script->on_complete, response);
  }

  /// What one failover sweep (one retry round) left behind when it did
  /// not fully book the response.
  struct SweepOutcome {
    bool final = false;  ///< response booked (success or terminal failure)
    /// The sweep genuinely exhausted the shard's platforms (>= 2
    /// platforms dispatched-and-failed, or breakers sidelined some):
    /// label exhaustion kAllBackendsFailed instead of the last error.
    bool all_backends = false;
    core::ErrorCode last_code = core::ErrorCode::kUnknown;
    std::string last_message;
  };

  /// One retry round. Without M-Failover: exactly one dispatch on the
  /// request's platform. With it: a sweep over the shard's platforms —
  /// primary first, then the rest in enum order — skipping open
  /// breakers, re-dispatching transient failures (failover) and hanging
  /// dispatches (hedge), first success wins.
  SweepOutcome RunSweep(QueuedRequest& queued, Response& response) {
    SweepOutcome out;
    const Platform primary = queued.request.platform;
    const bool multi =
        failover_ != nullptr &&
        (failover_->config().failover || failover_->config().hedging);
    Platform candidates[3];
    std::size_t candidate_count = 0;
    candidates[candidate_count++] = primary;
    if (multi) {
      for (std::size_t i = 0; i < 3; ++i) {
        const auto platform = static_cast<Platform>(i);
        if (platform != primary) candidates[candidate_count++] = platform;
      }
    }

    std::size_t breaker_skipped = 0;
    std::size_t dispatched = 0;
    bool next_is_hedge = false;
    for (std::size_t i = 0; i < candidate_count; ++i) {
      const Platform platform = candidates[i];
      const std::size_t platform_index = PlatformIndex(platform);
      if (failover_ != nullptr &&
          !failover_->BreakerAllows(platform_index, VirtualNowUs())) {
        ++breaker_skipped;
        support::trace::Instant("gateway.breaker_skip", "platform",
                                static_cast<std::int64_t>(platform_index));
        continue;
      }
      const bool is_redispatch = dispatched > 0;
      const bool is_hedge = is_redispatch && next_is_hedge;
      std::optional<support::trace::Span> redispatch_span;
      if (is_redispatch) {
        if (is_hedge) {
          stats_.OnHedgeFired();
        } else {
          stats_.OnFailover();
        }
        redispatch_span.emplace(is_hedge ? "gateway.hedge"
                                         : "gateway.failover");
        redispatch_span->Tag("shard", index_);
        redispatch_span->Tag("to_platform",
                             static_cast<std::int64_t>(platform_index));
      }
      if (failover_ != nullptr) {
        // Patience budget for a hanging dispatch: the hedge threshold
        // when another candidate could take over, otherwise the hang cap
        // bounded by whatever wall-clock deadline remains.
        std::uint64_t budget;
        if (failover_->config().hedging && i + 1 < candidate_count) {
          budget = failover_->HedgeThresholdUs(platform_index);
        } else {
          budget = failover_->config().hang_cap_us;
          if (queued.deadline != kNoDeadline) {
            const auto remaining =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    queued.deadline - Clock::now())
                    .count();
            budget = static_cast<std::uint64_t>(std::clamp<std::int64_t>(
                remaining, 1, static_cast<std::int64_t>(budget)));
          }
        }
        failover_->set_hang_budget_us(budget);
      }
      ++dispatched;
      ++response.attempts;
      const std::uint64_t virt_start = VirtualNowUs();
      try {
        support::trace::Span attempt_span("gateway.attempt");
        attempt_span.Tag("n", response.attempts);
        attempt_span.Tag("shard", index_);
        response.payload = ExecuteOnce(queued.request, platform);
        response.ok = true;
        response.served_platform = platform;
        stats_.OnOk();
        if (is_hedge) stats_.OnHedgeWon();
        if (failover_ != nullptr) {
          failover_->OnDispatchSuccess(platform_index,
                                       VirtualNowUs() - virt_start);
        }
        out.final = true;
        return out;
      } catch (const core::ProxyError& error) {
        if (is_redispatch && error.native_type() == "gateway.setProperty") {
          // The request's properties don't port to this platform (e.g. an
          // s60-only property on android) — that makes the candidate
          // ineligible for THIS request, not unhealthy: skip it without
          // charging its breaker. On the primary the same throw is the
          // caller's own error and stays terminal (below).
          continue;
        }
        const bool hung = error.native_type() == "fault.hang";
        const bool transient = IsTransient(error.code());
        if (failover_ != nullptr && transient) {
          failover_->OnDispatchFailure(platform_index, VirtualNowUs());
        }
        if (!transient) {
          stats_.OnFailed();
          response.error = error.code();
          response.message = error.what();
          out.final = true;
          return out;
        }
        out.last_code = error.code();
        out.last_message = error.what();
        // A hang can be hedged even when plain failover is off; any
        // other transient failure moves on only under failover.
        next_is_hedge = hung && multi && failover_->config().hedging;
        const bool sweep_on =
            multi && (failover_->config().failover || next_is_hedge);
        if (!sweep_on) break;  // retry rounds take it from here
      } catch (const std::exception& e) {
        stats_.OnFailed();
        response.error = core::ErrorCode::kUnknown;
        response.message = e.what();
        out.final = true;
        return out;
      }
    }
    if (dispatched == 0) {
      // Every candidate sat behind an open breaker. Retry rounds still
      // apply: the backoff advances the virtual clock, which is exactly
      // what lets a breaker reach half-open.
      out.last_code = core::ErrorCode::kAllBackendsFailed;
      out.last_message = "all circuit breakers open";
      out.all_backends = true;
      return out;
    }
    out.all_backends = multi && (dispatched >= 2 || breaker_skipped > 0);
    return out;
  }

  /// One dispatch on the real proxy surface of `platform`. Throws
  /// ProxyError on failure.
  std::string ExecuteOnce(const Request& request, Platform platform) {
    core::MProxy& proxy = ProxyFor(platform, request.op);
    // Request-scoped properties are applied to a shard-shared, long-lived
    // proxy; without save/restore they would leak into every later
    // request served on it (including on throw, e.g. a property-driven
    // LocationException). Snapshot only when there is something to apply.
    std::optional<core::ScopedPropertyRestore> restore;
    if (!request.properties.empty()) restore.emplace(proxy);
    try {
      for (const auto& [name, value] : request.properties) {
        proxy.setProperty(name, value);
      }
    } catch (const core::ProxyError& error) {
      // Tag property-application failures so the failover sweep can tell
      // "this candidate can't take these properties" from a dispatch
      // failure of the op itself.
      throw core::ProxyError(error.code(), error.what(), error.platform(),
                             "gateway.setProperty");
    }
    switch (request.op) {
      case Op::kGetLocation: {
        const core::Location location =
            static_cast<core::LocationProxy&>(proxy).getLocation();
        return std::to_string(location.latitude) + "," +
               std::to_string(location.longitude);
      }
      case Op::kSendSms:
        // The bridge listener turns submit/delivery broadcasts into
        // kSmsDelivery push events on this shard's feed.
        return std::to_string(
            static_cast<core::SmsProxy&>(proxy).sendTextMessage(
                request.target, request.payload, &sms_bridge_));
      case Op::kHttpGet:
        return static_cast<core::HttpProxy&>(proxy).get(request.target).body;
      case Op::kHttpPost:
        return static_cast<core::HttpProxy&>(proxy)
            .post(request.target, request.payload,
                  request.content_type.empty() ? "text/plain"
                                               : request.content_type)
            .body;
      case Op::kSegmentCount:
        return std::to_string(
            static_cast<core::SmsProxy&>(proxy).segmentCount(
                request.payload));
    }
    throw core::ProxyError(core::ErrorCode::kUnsupported, "unknown op");
  }

  core::MProxy& ProxyFor(Platform platform, Op op) {
    const std::size_t index = PlatformIndex(platform);
    switch (op) {
      case Op::kGetLocation:
        return *location_[index];
      case Op::kSendSms:
      case Op::kSegmentCount:
        return *sms_[index];
      case Op::kHttpGet:
      case Op::kHttpPost:
        return *http_[index];
    }
    throw core::ProxyError(core::ErrorCode::kUnsupported, "unknown op");
  }

  const std::uint32_t index_;
  BoundedMpscQueue<QueuedRequest> queue_;
  const std::size_t shed_watermark_;
  const RetryPolicy default_retry_;
  /// The gateway-owned tenant directory (admission weights + the shared
  /// per-tenant stats blocks; outlives every shard).
  const TenantTable& tenants_;
  /// Per-tenant queue-slot caps on THIS shard, derived from the weights
  /// and this shard's watermark at construction.
  std::vector<std::size_t> tenant_caps_;
  /// Queue slots each tenant currently occupies here: ++ at admission,
  /// -- at dequeue. Writers are submitting threads and the worker.
  std::unique_ptr<std::atomic<std::uint32_t>[]> tenant_occupancy_;
  ShardStats stats_;
  PushFeed feed_;
  SmsDeliveryBridge sms_bridge_;
  /// Client id of the request currently being served; worker-only.
  std::uint64_t serving_client_id_ = 0;
  /// In-flight message id -> originating client; worker-only, entries
  /// dropped on terminal delivery status.
  std::unordered_map<long long, std::uint64_t> sms_owners_;
  /// Null unless GatewayConfig::failover.enabled(); worker-thread-only
  /// after construction (its ShardStats writes are the shared part).
  std::unique_ptr<FailoverEngine> failover_;
  /// M-Script engine; worker-thread-only after construction.
  std::unique_ptr<ScriptEngine> script_engine_;
  /// Proxies the current script touched via setProperty, with their
  /// pre-script bags; worker-only, emptied after every script.
  std::vector<std::pair<core::MProxy*, core::PropertyBag>> script_touched_;

  // The shard-private single-threaded MobiVine world.
  std::unique_ptr<device::MobileDevice> device_;
  std::unique_ptr<android::AndroidPlatform> android_;
  std::unique_ptr<s60::S60Platform> s60_;
  std::unique_ptr<iphone::IPhonePlatform> iphone_;
  core::ProxyRegistry registry_;
  std::unique_ptr<core::LocationProxy> location_[3];
  std::unique_ptr<core::SmsProxy> sms_[3];
  std::unique_ptr<core::HttpProxy> http_[3];

  std::thread worker_;  // last member: starts after the world is built
};

// ---------------------------------------------------------------------------
// Gateway
// ---------------------------------------------------------------------------

Gateway::Gateway(GatewayConfig config)
    : config_(std::move(config)), tenant_table_(config_.tenants) {
  const int shard_count = std::max(config_.shards, 1);
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_, tenant_table_,
                                              static_cast<std::uint32_t>(i)));
  }
}

Gateway::~Gateway() { Stop(); }

std::uint32_t Gateway::ShardFor(std::uint64_t client_id) const {
  return static_cast<std::uint32_t>(Mix64(client_id) % shards_.size());
}

PushFeed& Gateway::FeedForShard(std::uint32_t shard) {
  return shards_[shard]->feed();
}

PushFeed& Gateway::FeedFor(std::uint64_t client_id) {
  return FeedForShard(ShardFor(client_id));
}

std::uint64_t Gateway::PublishEvent(std::uint64_t client_id, PushTopic topic,
                                    std::string body) {
  return FeedFor(client_id).Publish(topic, client_id, std::move(body));
}

int Gateway::shard_count() const { return static_cast<int>(shards_.size()); }

std::size_t Gateway::queue_depth() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->queue_depth();
  return total;
}

bool Gateway::Submit(Request request) {
  support::trace::Span span("gateway.submit");
  const std::uint32_t index = ShardFor(request.client_id);
  span.Tag("shard", index);
  Shard& shard = *shards_[index];
  const std::size_t slot = tenant_table_.SlotFor(request.tenant);
  tenant_table_.stats(slot).OnSubmitted();

  QueuedRequest queued;
  queued.tenant_slot = static_cast<std::uint32_t>(slot);
  queued.submitted_at = Clock::now();
  const std::chrono::microseconds timeout =
      request.timeout.count() > 0 ? request.timeout : config_.default_timeout;
  if (timeout.count() > 0) queued.deadline = queued.submitted_at + timeout;
  queued.request = std::move(request);

  Shard::Admission admission = Shard::Admission::kQueueFull;
  if (!stopping_.load(std::memory_order_relaxed)) {
    admission = shard.TrySubmit(queued);
    if (admission == Shard::Admission::kAdmitted) {
      span.Tag("admitted", 1);
      return true;
    }
  }
  // Shed on the submitting thread: typed overload error, no queueing.
  // (TrySubmit leaves `queued` intact on failure.)
  span.Tag("admitted", 0);
  support::trace::Instant("gateway.shed", "shard", index);
  shard.stats().OnShed();
  const bool quota = admission == Shard::Admission::kQuota;
  if (quota) {
    support::trace::Instant("gateway.quota_shed", "shard", index);
    tenant_table_.stats(slot).OnQuotaShed();
  } else {
    tenant_table_.stats(slot).OnShed();
  }
  Response response;
  response.error = core::ErrorCode::kOverloaded;
  response.message = stopping_.load(std::memory_order_relaxed)
                         ? "gateway is stopping"
                         : (quota ? "tenant over admission quota"
                                  : "shard queue above shed watermark");
  response.shard = index;
  InvokeCompletion(queued.request, response);
  return false;
}

bool Gateway::Submit(const BorrowedRequest& request,
                     std::function<void(const Response&)> on_complete) {
  support::trace::Span span("gateway.submit");
  const std::uint32_t index = ShardFor(request.client_id);
  span.Tag("shard", index);
  Shard& shard = *shards_[index];

  const std::size_t slot = tenant_table_.SlotFor(request.tenant);
  tenant_table_.stats(slot).OnSubmitted();

  // Admission first, materialization second: a shed decision must not
  // cost a string copy — the wire layer hands views into its input ring
  // precisely so the overload path stays allocation-free.
  Shard::Admission admission = Shard::Admission::kQueueFull;
  if (!stopping_.load(std::memory_order_relaxed)) {
    admission = shard.ProbeAdmission(slot);
  }
  if (!stopping_.load(std::memory_order_relaxed) &&
      admission == Shard::Admission::kAdmitted) {
    QueuedRequest queued;
    queued.tenant_slot = static_cast<std::uint32_t>(slot);
    queued.submitted_at = Clock::now();
    const std::chrono::microseconds timeout = request.timeout.count() > 0
                                                  ? request.timeout
                                                  : config_.default_timeout;
    if (timeout.count() > 0) queued.deadline = queued.submitted_at + timeout;
    Request& owned = queued.request;
    owned.client_id = request.client_id;
    owned.tenant = request.tenant;
    owned.platform = request.platform;
    owned.op = request.op;
    owned.target.assign(request.target.data(), request.target.size());
    owned.payload.assign(request.payload.data(), request.payload.size());
    owned.content_type.assign(request.content_type.data(),
                              request.content_type.size());
    owned.properties.reserve(request.property_count);
    for (std::size_t i = 0; i < request.property_count; ++i) {
      const BorrowedProperty& property = request.properties[i];
      std::string name(property.name);
      if (const auto* s = std::get_if<std::string_view>(&property.value)) {
        owned.properties.emplace_back(std::move(name), std::string(*s));
      } else if (const auto* n = std::get_if<long long>(&property.value)) {
        owned.properties.emplace_back(std::move(name), *n);
      } else if (const auto* d = std::get_if<double>(&property.value)) {
        owned.properties.emplace_back(std::move(name), *d);
      } else {
        owned.properties.emplace_back(std::move(name),
                                      std::get<bool>(property.value));
      }
    }
    owned.timeout = request.timeout;
    owned.retry = request.retry;
    owned.on_complete = std::move(on_complete);
    admission = shard.TrySubmit(queued);
    if (admission == Shard::Admission::kAdmitted) {
      span.Tag("admitted", 1);
      return true;
    }
    // Lost the race for the last queue slot; shed the materialized copy.
    on_complete = std::move(queued.request.on_complete);
  }
  span.Tag("admitted", 0);
  support::trace::Instant("gateway.shed", "shard", index);
  shard.stats().OnShed();
  const bool quota = admission == Shard::Admission::kQuota;
  if (quota) {
    support::trace::Instant("gateway.quota_shed", "shard", index);
    tenant_table_.stats(slot).OnQuotaShed();
  } else {
    tenant_table_.stats(slot).OnShed();
  }
  Response response;
  response.error = core::ErrorCode::kOverloaded;
  response.message = stopping_.load(std::memory_order_relaxed)
                         ? "gateway is stopping"
                         : (quota ? "tenant over admission quota"
                                  : "shard queue above shed watermark");
  response.shard = index;
  InvokeCompletionFn(on_complete, response);
  return false;
}

Response Gateway::Call(Request request) {
  struct Rendezvous {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Response response;
  } rendezvous;
  request.on_complete = [&rendezvous](const Response& response) {
    // Notify under the lock: the waiter owns `rendezvous` on its stack, so
    // the callback must not touch it after the waiter can observe done —
    // holding the mutex through the notify pins the waiter in wait().
    std::lock_guard<std::mutex> lock(rendezvous.mutex);
    rendezvous.response = response;
    rendezvous.done = true;
    rendezvous.cv.notify_one();
  };
  Submit(std::move(request));
  std::unique_lock<std::mutex> lock(rendezvous.mutex);
  rendezvous.cv.wait(lock, [&rendezvous] { return rendezvous.done; });
  return rendezvous.response;
}

bool Gateway::SubmitScript(ScriptRequest request) {
  support::trace::Span span("gateway.submit_script");
  const std::uint32_t index = ShardFor(request.client_id);
  span.Tag("shard", index);
  Shard& shard = *shards_[index];
  const std::size_t slot = tenant_table_.SlotFor(request.tenant);
  tenant_table_.stats(slot).OnSubmitted();

  QueuedRequest queued;
  queued.tenant_slot = static_cast<std::uint32_t>(slot);
  queued.submitted_at = Clock::now();
  const std::chrono::microseconds timeout =
      request.timeout.count() > 0 ? request.timeout : config_.default_timeout;
  if (timeout.count() > 0) queued.deadline = queued.submitted_at + timeout;
  queued.script = std::make_unique<ScriptRequest>(std::move(request));

  Shard::Admission admission = Shard::Admission::kQueueFull;
  if (!stopping_.load(std::memory_order_relaxed)) {
    admission = shard.TrySubmit(queued);
    if (admission == Shard::Admission::kAdmitted) {
      span.Tag("admitted", 1);
      return true;
    }
  }
  // Shed on the submitting thread, exactly like Submit(Request).
  span.Tag("admitted", 0);
  support::trace::Instant("gateway.shed", "shard", index);
  shard.stats().OnShed();
  const bool quota = admission == Shard::Admission::kQuota;
  if (quota) {
    support::trace::Instant("gateway.quota_shed", "shard", index);
    tenant_table_.stats(slot).OnQuotaShed();
  } else {
    tenant_table_.stats(slot).OnShed();
  }
  ScriptResponse response;
  response.error = core::ErrorCode::kOverloaded;
  response.message = stopping_.load(std::memory_order_relaxed)
                         ? "gateway is stopping"
                         : (quota ? "tenant over admission quota"
                                  : "shard queue above shed watermark");
  response.shard = index;
  InvokeScriptCompletionFn(queued.script->on_complete, response);
  return false;
}

ScriptResponse Gateway::CallScript(ScriptRequest request) {
  struct Rendezvous {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    ScriptResponse response;
  } rendezvous;
  request.on_complete = [&rendezvous](const ScriptResponse& response) {
    // Notify under the lock for the same lifetime reason as Call().
    std::lock_guard<std::mutex> lock(rendezvous.mutex);
    rendezvous.response = response;
    rendezvous.done = true;
    rendezvous.cv.notify_one();
  };
  SubmitScript(std::move(request));
  std::unique_lock<std::mutex> lock(rendezvous.mutex);
  rendezvous.cv.wait(lock, [&rendezvous] { return rendezvous.done; });
  return rendezvous.response;
}

void Gateway::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) shard->Close();
  for (auto& shard : shards_) shard->Join();
}

GatewaySnapshot Gateway::Stats() const {
  std::vector<ShardSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (const auto& shard : shards_) snapshots.push_back(shard->Snapshot());
  return Aggregate(std::move(snapshots));
}

std::vector<TenantSnapshot> Gateway::TenantStatsSnapshot() const {
  return tenant_table_.Snapshot();
}

bool Gateway::Drain(std::chrono::microseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const GatewaySnapshot snapshot = Stats();
    // completed (ok + failed + timed_out) catches up to accepted exactly
    // when no admitted request is queued or in flight. The caller must
    // have fenced new admissions; otherwise this races fresh traffic and
    // simply keeps waiting.
    if (snapshot.totals.completed() >= snapshot.totals.accepted) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

support::MetricsRegistry::Registration Gateway::RegisterMetrics(
    support::MetricsRegistry& registry, std::string prefix) const {
  return registry.Register(
      std::move(prefix), [this](support::MetricsSink& sink) {
        const GatewaySnapshot snapshot = Stats();
        const ShardSnapshot& totals = snapshot.totals;
        sink.Counter("accepted", totals.accepted);
        sink.Counter("shed", totals.shed);
        sink.Counter("ok", totals.ok);
        sink.Counter("failed", totals.failed);
        sink.Counter("timed_out", totals.timed_out);
        sink.Counter("retries", totals.retries);
        sink.Counter("failovers", totals.failovers);
        sink.Counter("hedges_fired", totals.hedges_fired);
        sink.Counter("hedges_won", totals.hedges_won);
        sink.Counter("breaker_opens", totals.breaker_opens);
        sink.Counter("faults_injected", totals.faults_injected);
        // M-Script: executed is in-sandbox runs (subset of accepted);
        // budget_kills is the subset of errors/timeouts caused by a
        // sandbox ceiling — every one a typed status, never a fault.
        sink.Counter("script.executed", totals.scripts);
        sink.Counter("script.errors", totals.script_errors);
        sink.Counter("script.budget_kills", totals.script_budget_kills);
        sink.Counter("script.steps", totals.script_steps);
        sink.Counter("script.invocations", totals.script_invocations);
        sink.Counter("script.cache_hits", totals.script_cache_hits);
        sink.Counter("script.cache_misses", totals.script_cache_misses);
        sink.Counter("queue_depth", totals.queue_depth);
        sink.Counter("max_queue_depth", totals.max_queue_depth);
        sink.Gauge("latency_p50_us",
                   static_cast<double>(snapshot.p50_micros()));
        sink.Gauge("latency_p95_us",
                   static_cast<double>(snapshot.p95_micros()));
        sink.Gauge("latency_p99_us",
                   static_cast<double>(snapshot.p99_micros()));
        for (std::size_t i = 0; i < snapshot.shards.size(); ++i) {
          const ShardSnapshot& s = snapshot.shards[i];
          const std::string base = "shard." + std::to_string(i) + ".";
          sink.Counter(base + "accepted", s.accepted);
          sink.Counter(base + "shed", s.shed);
          sink.Counter(base + "ok", s.ok);
          sink.Counter(base + "failed", s.failed);
          sink.Counter(base + "timed_out", s.timed_out);
          sink.Counter(base + "retries", s.retries);
          sink.Counter(base + "failovers", s.failovers);
          sink.Counter(base + "hedges_fired", s.hedges_fired);
          sink.Counter(base + "hedges_won", s.hedges_won);
          sink.Counter(base + "breaker_opens", s.breaker_opens);
          sink.Counter(base + "faults_injected", s.faults_injected);
          sink.Counter(base + "script.executed", s.scripts);
          sink.Counter(base + "script.errors", s.script_errors);
          sink.Counter(base + "script.budget_kills", s.script_budget_kills);
          sink.Counter(base + "queue_depth", s.queue_depth);
          sink.Counter(base + "max_queue_depth", s.max_queue_depth);
        }
        // Per-tenant serving counters under tenant.<name>.* — the
        // admission-isolation plane. Quiescent, every tenant reconciles
        // exactly: ok + failed + timed_out + shed == submitted.
        for (const TenantSnapshot& t : tenant_table_.Snapshot()) {
          const std::string base = "tenant." + t.name + ".";
          sink.Counter(base + "weight", t.weight);
          sink.Counter(base + "submitted", t.submitted);
          sink.Counter(base + "accepted", t.accepted);
          sink.Counter(base + "shed", t.shed);
          sink.Counter(base + "quota_shed", t.quota_shed);
          sink.Counter(base + "ok", t.ok);
          sink.Counter(base + "failed", t.failed);
          sink.Counter(base + "timed_out", t.timed_out);
          sink.Counter(base + "retries", t.retries);
          sink.Gauge(base + "latency_p50_us",
                     static_cast<double>(t.latency.Percentile(0.50)));
          sink.Gauge(base + "latency_p95_us",
                     static_cast<double>(t.latency.Percentile(0.95)));
        }
        // M-Push feed totals across shards — the notifier/feeder plane's
        // health: how much was published, how much the replay rings have
        // already forgotten, how many live listeners are attached.
        PushFeed::Counters push;
        for (const auto& shard : shards_) {
          const PushFeed::Counters c = shard->feed().GetCounters();
          push.published += c.published;
          push.evicted += c.evicted;
          push.listeners += c.listeners;
          push.replays += c.replays;
          push.replay_gaps += c.replay_gaps;
        }
        sink.Counter("push.published", push.published);
        sink.Counter("push.evicted", push.evicted);
        sink.Counter("push.listeners", push.listeners);
        sink.Counter("push.replays", push.replays);
        sink.Counter("push.replay_gaps", push.replay_gaps);
        // Per-proxy OverheadMeter counts summed across every shard's nine
        // proxies: the paper's de-fragmentation-overhead attribution, as a
        // live metric.
        std::array<std::uint64_t, kOpCount> counts{};
        std::uint64_t charged_us = 0;
        for (const auto& shard : shards_) {
          shard->AddMeterCounts(counts, charged_us);
        }
        for (int op = 0; op < kOpCount; ++op) {
          sink.Counter(
              std::string("op.") + core::ToString(static_cast<core::Op>(op)),
              counts[static_cast<std::size_t>(op)]);
        }
        sink.Counter("op.charged_virtual_us", charged_us);
      });
}

}  // namespace mobivine::gateway
