#include "gateway/push.h"

#include <algorithm>
#include <utility>

#include "support/trace.h"

namespace mobivine::gateway {

const char* ToString(PushTopic topic) {
  switch (topic) {
    case PushTopic::kAll:
      return "all";
    case PushTopic::kProximity:
      return "proximity";
    case PushTopic::kSmsDelivery:
      return "sms-delivery";
    case PushTopic::kCallState:
      return "call-state";
    case PushTopic::kNotification:
      return "notification";
  }
  return "?";
}

PushFeed::PushFeed(std::size_t replay_capacity)
    : replay_capacity_(replay_capacity) {}

std::uint64_t PushFeed::Publish(PushTopic topic, std::uint64_t client_id,
                                std::string body) {
  std::lock_guard<std::mutex> lock(mutex_);
  PushEvent event;
  event.topic = topic;
  event.cursor = next_cursor_++;
  event.client_id = client_id;
  event.body = std::move(body);
  support::trace::Instant("push.publish", "topic",
                          static_cast<std::int64_t>(topic), "cursor",
                          static_cast<std::int64_t>(event.cursor));
  for (const Entry& entry : listeners_) entry.listener(event);
  if (replay_capacity_ == 0) {
    ++evicted_;  // nothing is ever retained
    return event.cursor;
  }
  if (ring_.size() == replay_capacity_) {
    ring_.pop_front();
    ++evicted_;
  }
  const std::uint64_t cursor = event.cursor;
  ring_.push_back(std::move(event));
  return cursor;
}

std::uint64_t PushFeed::AddListener(Listener listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_listener_id_++;
  listeners_.push_back(Entry{id, std::move(listener)});
  return id;
}

void PushFeed::RemoveListener(std::uint64_t id) {
  // Taking the mutex IS the fence: a publish in flight on another thread
  // either finished before we got the lock or starts after we release it
  // with the entry gone.
  std::lock_guard<std::mutex> lock(mutex_);
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [id](const Entry& entry) { return entry.id == id; }),
      listeners_.end());
}

PushFeed::ReplayResult PushFeed::ReplayAfter(std::uint64_t after,
                                             PushTopic topic,
                                             std::uint64_t client_id,
                                             const Listener& fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ReplayLocked(after, topic, client_id, fn);
}

std::uint64_t PushFeed::AddListenerAndReplay(std::uint64_t after,
                                             PushTopic topic,
                                             std::uint64_t client_id,
                                             const Listener& replay_fn,
                                             Listener listener,
                                             ReplayResult* result) {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplayResult covered = ReplayLocked(after, topic, client_id, replay_fn);
  if (result != nullptr) *result = covered;
  const std::uint64_t id = next_listener_id_++;
  listeners_.push_back(Entry{id, std::move(listener)});
  return id;
}

PushFeed::ReplayResult PushFeed::ReplayLocked(std::uint64_t after,
                                              PushTopic topic,
                                              std::uint64_t client_id,
                                              const Listener& fn) {
  support::trace::Span span("push.replay");
  span.Tag("after", static_cast<std::int64_t>(after));
  ++replays_;
  ReplayResult result;
  const std::uint64_t last = next_cursor_ - 1;
  // A cursor from the future (typically: a cursor issued by a different
  // worker, after a plan change moved the client here) cannot be
  // replayed against this feed's timeline — clamp to live-from-now.
  result.resume_cursor = std::min(after, last);
  const std::uint64_t first_retained = ring_.empty() ? 0 : ring_.front().cursor;
  if (after < last && (ring_.empty() || after + 1 < first_retained)) {
    // Part (or all) of (after, last] left the ring before this replay.
    result.gap = true;
    result.gap_first = after + 1;
    result.gap_last = ring_.empty() ? last : first_retained - 1;
    result.resume_cursor = result.gap_last;
    ++replay_gaps_;
  }
  for (const PushEvent& event : ring_) {
    if (event.cursor <= after) continue;
    result.resume_cursor = event.cursor;
    if (!MatchesSubscription(event, topic, client_id)) continue;
    fn(event);
    ++result.delivered;
  }
  span.Tag("delivered", static_cast<std::int64_t>(result.delivered));
  return result;
}

std::uint64_t PushFeed::last_cursor() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_cursor_ - 1;
}

PushFeed::Counters PushFeed::GetCounters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters counters;
  counters.published = next_cursor_ - 1;
  counters.evicted = evicted_;
  counters.listeners = listeners_.size();
  counters.replays = replays_;
  counters.replay_gaps = replay_gaps_;
  return counters;
}

}  // namespace mobivine::gateway
