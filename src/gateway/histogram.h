// The gateway's latency histogram now lives in support/histogram.h so the
// wire layer's client-side latency shares the same buckets (and percentile
// error bounds). This alias keeps the historical gateway:: spellings —
// gateway code and tests predating the extraction compile unchanged.
#pragma once

#include "support/histogram.h"

namespace mobivine::gateway {

namespace histogram_detail = support::histogram_detail;

using support::HistogramSnapshot;
using support::LatencyHistogram;

}  // namespace mobivine::gateway
