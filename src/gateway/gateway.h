// M-Gateway: a concurrent, sharded invocation-serving runtime on top of
// the MobiVine proxy layer.
//
// The paper's M-Proxy makes one app's call uniform across platforms; the
// gateway turns that library into a serving runtime for many concurrent
// clients. Requests are sharded N ways by a client-id hash; each shard
// owns a worker thread and a complete single-threaded MobiVine world —
// its own simulated MobileDevice, platform substrates, ProxyRegistry and
// proxies — so the existing bindings, schedulers and per-store interners
// never need a lock. Cross-shard state is confined to the read-only
// DescriptorStore and the SharedInterner behind Interner::Global().
//
// Serving semantics:
//  * Admission control — each shard queue is bounded with a shed
//    watermark; a request arriving above it completes immediately with
//    ProxyError-typed ErrorCode::kOverloaded instead of queueing
//    unboundedly, which keeps served-request tail latency bounded under
//    overload.
//  * Deadlines — a request's wall-clock deadline is checked at dequeue
//    (kDeadlineExceeded, the binding never runs) and between retry
//    attempts; an in-flight blocking binding call is never interrupted.
//  * Retries — transient binding failures (timeout, radio failure, lost
//    GPS fix, network) re-execute under a bounded exponential backoff;
//    the backoff is slept on the worker's wall clock and mirrored onto
//    the shard's virtual clock. Exhausting attempts surfaces the last
//    error; running out of deadline mid-retry surfaces kDeadlineExceeded
//    (the request ran out of time, not attempts) and counts as timed_out.
//  * Property isolation — a request's properties are applied to the
//    shard's long-lived proxies under save/restore, so per-request
//    overrides never leak into later requests on the same shard.
//  * M-Failover (gateway/failover.h) — when enabled, a transient or
//    injected dispatch failure is re-dispatched to the next healthy
//    platform on the same shard before a retry round is spent;
//    per-platform circuit breakers sideline failing platforms, hanging
//    dispatches can be hedged onto another platform, and exhausting
//    every platform surfaces kAllBackendsFailed. See DESIGN.md §9 and
//    docs/failure-semantics.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "device/mobile_device.h"
#include "gateway/failover.h"
#include "gateway/push.h"
#include "gateway/request.h"
#include "gateway/script.h"
#include "gateway/stats.h"
#include "gateway/tenant.h"
#include "support/metrics.h"

namespace mobivine::gateway {

/// The in-sim HTTP host every shard's network serves (GET -> "pong",
/// POST -> echoes the body). Address ops at "http://gw.example/...".
inline constexpr const char* kGatewayHttpHost = "gw.example";
/// A subscriber registered on every shard's modem (SMS destination).
inline constexpr const char* kGatewaySmsPeer = "+15550123";

struct GatewayConfig {
  int shards = 4;
  std::size_t queue_capacity = 1024;
  /// Shed when a shard's queue depth reaches this at admission;
  /// 0 means "at capacity" (the bounded queue itself is the watermark).
  std::size_t shed_watermark = 0;
  /// Applied when a request carries retry.max_attempts == 0.
  RetryPolicy default_retry{.max_attempts = 3};
  /// Applied when a request carries timeout == 0; zero here means no
  /// deadline at all.
  std::chrono::microseconds default_timeout{0};
  /// Per-shard devices are built from this template with seed + shard
  /// index, so failure injection (network loss, GPS outage, radio
  /// failures) flows through every shard deterministically.
  device::DeviceConfig device_template;
  /// Shared read-only descriptor store (may be null: proxies are then
  /// created without descriptor validation).
  const core::DescriptorStore* store = nullptr;
  /// M-Failover policy: cross-platform failover, circuit breakers,
  /// hedging and fault injection. Default-constructed = all off.
  FailoverConfig failover;
  /// Events each shard's push feed retains for reconnect catch-up
  /// (see gateway/push.h). 0 disables replay: every cursor-based
  /// subscribe starts with a gap marker.
  std::size_t push_replay_capacity = 1024;
  /// M-Script sandbox ceilings (gateway/script.h). Client-supplied
  /// budgets are clamped to these.
  ScriptLimits script;
  /// Tenancy (gateway/tenant.h): per-tenant admission weights and the
  /// gateway.tenant.* accounting plane. Empty — the pre-tenancy default
  /// — yields just the built-in "default" tenant, whose cap equals the
  /// whole watermark, i.e. exactly the old tenant-blind behavior.
  std::vector<TenantConfig> tenants;
};

class Gateway {
 public:
  explicit Gateway(GatewayConfig config);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Route the request to its client's shard. Returns true when admitted;
  /// false when shed, in which case `on_complete` has already run on the
  /// calling thread with ErrorCode::kOverloaded. Either way the callback
  /// fires exactly once.
  bool Submit(Request request);

  /// Borrowed-request overload for callers whose operands are views into
  /// transient buffers (the wire layer's input rings). The admission
  /// decision runs first: only a request actually bound for a shard queue
  /// has its strings materialized into an owning Request; the shed path
  /// completes with kOverloaded without copying anything. Views must stay
  /// valid until this returns — they are not retained. Same exactly-once
  /// completion contract as Submit(Request).
  bool Submit(const BorrowedRequest& request,
              std::function<void(const Response&)> on_complete);

  /// Blocking convenience: submit and wait for the response (the
  /// request's own on_complete, if any, is ignored).
  Response Call(Request request);

  // ---- M-Script: server-side composite invocations (gateway/script.h) --

  /// Route a script to its client's shard, where it executes inside the
  /// sandbox against that shard's proxies. Rides the same queue/
  /// admission/deadline machinery as Submit(Request) — true when
  /// admitted, false when shed (on_complete already ran with
  /// kOverloaded) — but is never retried by the gateway: a composite may
  /// have performed side effects before failing.
  bool SubmitScript(ScriptRequest request);

  /// Blocking convenience: submit and wait for the script response (the
  /// request's own on_complete, if any, is ignored).
  ScriptResponse CallScript(ScriptRequest request);

  /// Stop admitting, drain every queued request, join the workers.
  /// Subsequent Submits shed. Idempotent; the destructor calls it.
  void Stop();

  /// M-Cluster handover hook: wait (bounded) until every request admitted
  /// so far has completed — quiescence is `totals.completed() ==
  /// totals.accepted`. The gateway keeps serving throughout; the caller
  /// fences *new* traffic first (the cluster worker flips its wire-server
  /// ownership filter to reject-everything before draining). True when
  /// quiescent within `timeout`, false when work was still in flight.
  bool Drain(std::chrono::microseconds timeout);

  /// Lock-free-readable view of all counters; safe while serving.
  [[nodiscard]] GatewaySnapshot Stats() const;

  /// Per-tenant counters (gateway/tenant.h); safe while serving. Once
  /// quiescent every row reconciles exactly: ok + failed + timed_out +
  /// shed == submitted.
  [[nodiscard]] std::vector<TenantSnapshot> TenantStatsSnapshot() const;

  /// The tenant directory this gateway admits against (immutable).
  [[nodiscard]] const TenantTable& tenants() const { return tenant_table_; }

  /// Register this gateway as one M-Scope metrics source under `prefix`:
  /// totals and per-shard serving counters, latency percentiles, and the
  /// per-proxy OverheadMeter op counts summed across shards. The returned
  /// registration must be dropped before the gateway is destroyed.
  [[nodiscard]] support::MetricsRegistry::Registration RegisterMetrics(
      support::MetricsRegistry& registry,
      std::string prefix = "gateway.") const;

  /// Which shard serves a client (stable for the gateway's lifetime).
  [[nodiscard]] std::uint32_t ShardFor(std::uint64_t client_id) const;

  // ---- M-Push: the per-shard notifier/feeder plane (gateway/push.h) ----

  /// The shard's push feed: platform callbacks served on that shard
  /// (SMS delivery reports today; see Shard's SmsListener bridge) are
  /// published into it, and the wire server's subscriptions listen on
  /// it. Valid for the gateway's lifetime; thread-safe.
  [[nodiscard]] PushFeed& FeedForShard(std::uint32_t shard);
  /// The feed serving `client_id` (== FeedForShard(ShardFor(id))).
  [[nodiscard]] PushFeed& FeedFor(std::uint64_t client_id);

  /// Publish an event into the client's shard feed from any thread —
  /// the entry point for the WebView bridge (notification posts) and
  /// for external event sources (proximity/call-state simulators,
  /// benches). A client_id of 0 broadcasts — but only within shard 0's
  /// feed; shard-targeted broadcast is FeedForShard(s).Publish(t, 0, b).
  /// Returns the assigned cursor.
  std::uint64_t PublishEvent(std::uint64_t client_id, PushTopic topic,
                             std::string body);

  [[nodiscard]] int shard_count() const;
  /// Total queued across shards right now (approximate).
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  class Shard;

  GatewayConfig config_;
  /// Before shards_: every shard keeps a reference for admission caps
  /// and service accounting, so the table must outlive them.
  TenantTable tenant_table_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
};

}  // namespace mobivine::gateway
