#include "gateway/script.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "minijs/interpreter.h"
#include "minijs/parser.h"
#include "minijs/value.h"
#include "support/seed.h"
#include "support/trace.h"

namespace mobivine::gateway {

namespace {

/// Virtual-time budget exhaustion. Deliberately NOT a minijs::ScriptError
/// or ThrowSignal: it propagates straight through script try/catch (only
/// ThrowSignal is catchable there), so a hostile script cannot swallow
/// its own budget kill.
struct TimeBudgetExceeded {
  std::uint64_t spent_us = 0;
  std::uint64_t budget_us = 0;
};

/// Clamp a client-supplied budget to the operator ceiling (0 = default).
std::uint64_t ClampBudget(std::uint64_t requested, std::uint64_t ceiling) {
  return requested == 0 ? ceiling : std::min(requested, ceiling);
}

minijs::Value ProxyErrorToValue(const core::ProxyError& error) {
  auto object = minijs::MakeErrorObject(
      "ProxyError", error.what(), static_cast<int>(error.code()));
  object->Set("platform", minijs::Value::String(error.platform()));
  return minijs::Value::Obj(object);
}

std::string ArgAsString(std::vector<minijs::Value>& args, std::size_t index) {
  if (index >= args.size() || args[index].is_nullish()) return std::string();
  return args[index].ToDisplayString();
}

}  // namespace

Platform ParsePlatformName(const std::string& name) {
  if (name == "android") return Platform::kAndroid;
  if (name == "s60") return Platform::kS60;
  if (name == "iphone") return Platform::kIphone;
  throw core::ProxyError(core::ErrorCode::kIllegalArgument,
                         "unknown platform '" + name + "'");
}

Op ParseOpName(const std::string& name) {
  if (name == "getLocation") return Op::kGetLocation;
  if (name == "sendSms") return Op::kSendSms;
  if (name == "httpGet") return Op::kHttpGet;
  if (name == "httpPost") return Op::kHttpPost;
  if (name == "segmentCount") return Op::kSegmentCount;
  throw core::ProxyError(core::ErrorCode::kIllegalArgument,
                         "unknown op '" + name + "'");
}

/// One cached parse: the source hash it is indexed under plus the
/// immutable AST. The full source rides along so a hash collision can
/// never execute the wrong program — on mismatch the entry is treated
/// as a miss and replaced.
struct ScriptEngine::CacheEntry {
  std::uint64_t hash = 0;
  std::string source;
  std::shared_ptr<const minijs::Program> program;
};

ScriptEngine::ScriptEngine(ScriptHostOps ops, ScriptLimits limits)
    : ops_(std::move(ops)), limits_(limits) {}

ScriptEngine::~ScriptEngine() = default;

ScriptResponse ScriptEngine::Execute(const ScriptRequest& request) {
  ScriptResponse response;

  const std::uint64_t step_budget =
      ClampBudget(request.step_budget, limits_.max_steps);
  const std::uint64_t virtual_budget =
      ClampBudget(request.virtual_us_budget, limits_.max_virtual_us);
  const std::uint64_t result_cap =
      ClampBudget(request.max_result_bytes, limits_.max_result_bytes);

  // Parse-cache lookup. The hash narrows to one candidate; the stored
  // source is compared byte-wise before reuse, so an FNV collision is a
  // miss (and a replacement), never a wrong program.
  const bool cache_enabled = limits_.parse_cache_entries > 0;
  const std::uint64_t source_hash =
      cache_enabled ? support::Fnv1a64(request.source) : 0;
  std::shared_ptr<const minijs::Program> program;
  if (cache_enabled) {
    const auto it = cache_index_.find(source_hash);
    if (it != cache_index_.end() && it->second->source == request.source) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      program = cache_lru_.front().program;
      ++cache_hits_;
      response.cache_hit = true;
    }
  }

  minijs::Interpreter interp;
  interp.set_step_limit(step_budget);

  // Budget hook: charge every step interval onto the shard's virtual
  // clock, then check the script's total virtual spend — which includes
  // whatever the host invocations below charged through the proxy
  // meters and fault gates in between.
  const std::uint64_t virtual_start = ops_.virtual_now_us();
  interp.set_step_observer([this, virtual_start,
                            virtual_budget](std::uint64_t delta) {
    ops_.charge_steps(delta);
    const std::uint64_t spent = ops_.virtual_now_us() - virtual_start;
    if (spent > virtual_budget) {
      throw TimeBudgetExceeded{spent, virtual_budget};
    }
  });

  std::uint64_t invocations = 0;

  // `mobile`: the uniform invocation surface. Host errors are raised as
  // minijs::ScriptError, which CallFunction converts to a catchable
  // script throw — composites can express their own failure handling.
  auto mobile = minijs::Object::Make();
  mobile->set_class_name("Mobile");
  const auto raise = [](const core::ProxyError& error) -> minijs::Value {
    throw minijs::ScriptError(ProxyErrorToValue(error));
  };
  mobile->Set(
      "invoke",
      minijs::MakeHostFunction(
          "invoke", [this, &invocations, raise](
                        minijs::Interpreter&, const minijs::Value&,
                        std::vector<minijs::Value>& args) -> minijs::Value {
            ++invocations;
            try {
              const Platform platform =
                  ParsePlatformName(ArgAsString(args, 0));
              const Op op = ParseOpName(ArgAsString(args, 1));
              return minijs::Value::String(
                  ops_.invoke(platform, op, ArgAsString(args, 2),
                              ArgAsString(args, 3), ArgAsString(args, 4)));
            } catch (const core::ProxyError& error) {
              return raise(error);
            }
          }));
  mobile->Set(
      "setProperty",
      minijs::MakeHostFunction(
          "setProperty", [this, &invocations, raise](
                             minijs::Interpreter&, const minijs::Value&,
                             std::vector<minijs::Value>& args)
                             -> minijs::Value {
            ++invocations;
            try {
              ops_.set_property(ParsePlatformName(ArgAsString(args, 0)),
                                ParseOpName(ArgAsString(args, 1)),
                                ArgAsString(args, 2), ArgAsString(args, 3));
              return minijs::Value::Undefined();
            } catch (const core::ProxyError& error) {
              return raise(error);
            }
          }));
  mobile->Set(
      "getProperty",
      minijs::MakeHostFunction(
          "getProperty", [this, &invocations, raise](
                             minijs::Interpreter&, const minijs::Value&,
                             std::vector<minijs::Value>& args)
                             -> minijs::Value {
            ++invocations;
            try {
              return minijs::Value::String(ops_.get_property(
                  ParsePlatformName(ArgAsString(args, 0)),
                  ParseOpName(ArgAsString(args, 1)), ArgAsString(args, 2)));
            } catch (const core::ProxyError& error) {
              return raise(error);
            }
          }));
  interp.SetGlobal("mobile", minijs::Value::Obj(mobile));

  auto script_args = minijs::Object::Make();
  script_args->set_class_name("Args");
  for (const auto& [name, value] : request.args) {
    script_args->Set(name, minijs::Value::String(value));
  }
  interp.SetGlobal("args", minijs::Value::Obj(script_args));

  const auto finish = [&](bool flush) {
    if (flush) {
      // The final partial interval still gets charged; if that charge
      // blows the time budget the outcome below already stands — a kill
      // thrown from inside a catch block would escape Execute entirely.
      try {
        interp.FlushStepObserver();
      } catch (const TimeBudgetExceeded&) {
      }
    }
    response.steps = interp.steps();
    response.invocations = invocations;
  };

  try {
    if (program == nullptr) {
      // A failed parse counts as a miss too; it is never cached (the
      // throw below skips the insert), so a bad program re-parses — and
      // re-fails — cheaply without occupying a slot.
      ++cache_misses_;
      program = std::make_shared<const minijs::Program>(
          minijs::ParseProgram(request.source));
      if (cache_enabled) {
        cache_lru_.push_front(
            CacheEntry{source_hash, request.source, program});
        cache_index_[source_hash] = cache_lru_.begin();
        if (cache_lru_.size() > limits_.parse_cache_entries) {
          const CacheEntry& oldest = cache_lru_.back();
          // A collision replacement redirects the index to the newer
          // entry; only erase when the index still points at the victim.
          const auto idx = cache_index_.find(oldest.hash);
          if (idx != cache_index_.end() && &*idx->second == &oldest) {
            cache_index_.erase(idx);
          }
          cache_lru_.pop_back();
        }
      }
    }
    const minijs::Value value = interp.Run(std::move(program));
    finish(/*flush=*/true);
    std::string result = value.ToDisplayString();
    if (result.size() > result_cap) {
      response.script_error = true;
      response.budget_kill = true;
      response.error = core::ErrorCode::kUnknown;
      response.message = "result over cap: " + std::to_string(result.size()) +
                         " > " + std::to_string(result_cap) + " bytes";
      support::trace::Instant("script.error", "kind", 1);
      return response;
    }
    response.ok = true;
    response.error = core::ErrorCode::kUnknown;
    response.result = std::move(result);
    return response;
  } catch (const TimeBudgetExceeded& budget) {
    // Flushing would charge more time onto an already-blown budget from
    // inside the observer; the counters are still read.
    finish(/*flush=*/false);
    response.budget_kill = true;
    response.error = core::ErrorCode::kDeadlineExceeded;
    response.message = "script virtual-time budget exceeded: " +
                       std::to_string(budget.spent_us) + "us > " +
                       std::to_string(budget.budget_us) + "us";
    support::trace::Instant("script.error", "kind", 2);
    return response;
  } catch (const minijs::ScriptError& error) {
    // Uncaught script throw, step-limit kill, or a host error the script
    // chose not to catch.
    finish(/*flush=*/true);
    response.script_error = true;
    // The step-limit kill arrives as a ScriptError too; it is the only
    // way steps can exceed the budget (the observer fires *after* the
    // limit check).
    response.budget_kill = interp.steps() > step_budget;
    response.error = core::ErrorCode::kUnknown;
    response.message = error.thrown().ToDisplayString();
    support::trace::Instant("script.error", "kind", 0);
    return response;
  } catch (const std::exception& error) {
    // Lex/parse failures (and anything else the interpreter surfaces as
    // a std::exception): a script bug, reported in-band.
    finish(/*flush=*/false);
    response.script_error = true;
    response.error = core::ErrorCode::kUnknown;
    response.message = error.what();
    support::trace::Instant("script.error", "kind", 3);
    return response;
  }
}

}  // namespace mobivine::gateway
