// M-Script: server-side composite invocations on a gateway shard.
//
// One wire round trip per invocation is the wrong shape for real
// scenarios — "get location, HTTP-POST it, SMS on failure" is three
// dependent round trips. M-Script extends the paper's M-Plugin idea
// (generated client stubs) to uploaded server procedures: a kScript
// frame carries a small MiniJS program that executes *inside* the
// owning shard, with that shard's proxy registry exposed as host
// objects, and returns one aggregated response.
//
// Sandbox contract (docs/scripting.md has the full reference):
//  * No ambient authority — a script sees exactly the installed host
//    objects (`mobile`, `args`) plus the MiniJS builtins. There is no
//    I/O, no clock, no require().
//  * Step budget — interpreter steps are hard-capped; exhaustion
//    surfaces as a kScriptError ("step limit exceeded") and is not
//    catchable in-script.
//  * Call-depth ceiling — script recursion recurses the AST-walking
//    interpreter on the C++ stack, so `function f(){f()}` would be a
//    stack smash without one; past the interpreter's depth limit the
//    call throws a catchable RangeError (JS "maximum call stack"
//    semantics).
//  * Virtual-time budget — every interpreter step and every host
//    invocation is charged to the shard's virtual clock (the same
//    OverheadMeter plane the proxies charge); exceeding the budget
//    surfaces as kDeadlineExceeded. Because `:wall` fault rules stall
//    the worker *and* advance the virtual clock, a slow backend burns
//    the script's budget exactly like it burns a request deadline.
//  * Result cap — the result's display string is size-capped
//    (kScriptError when exceeded), so a script cannot amplify one
//    frame into an arbitrarily large response.
//  * Exactly-once execution — scripts ride the shard queue's
//    admission/deadline/shed machinery but are never retried by the
//    gateway: a composite may have already performed side effects
//    (an SMS send) before failing, and retry policy is expressible
//    in-language anyway (the host errors are catchable).
//
// Clients may lower any budget per script; the server clamps every
// request to the operator ceilings below, so a hostile client cannot
// buy itself a bigger sandbox.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/errors.h"
#include "gateway/request.h"

namespace mobivine::gateway {

/// Operator ceilings, applied when a request's budget field is 0 and as
/// clamps when it is not. Virtual-clock cost per interpreter step matches
/// the WebView bridge's 2009-handset calibration (webview::BridgeCost).
struct ScriptLimits {
  std::uint64_t max_steps = 200'000;
  std::uint64_t max_virtual_us = 10'000'000;  // 10 virtual seconds
  std::uint64_t max_result_bytes = 64u << 10;  // == wire kMaxStringBytes
  std::uint64_t virtual_us_per_step = 30;
  /// Parsed-program cache entries per shard engine (LRU, keyed by an
  /// FNV-1a hash of the source). 0 disables caching: every execution
  /// re-parses, the pre-cache behavior.
  std::size_t parse_cache_entries = 128;
};

struct ScriptResponse {
  bool ok = false;
  /// kOk on success; kUnknown with script_error for thrown values and
  /// step/result violations; kDeadlineExceeded for time-budget kills and
  /// queue-deadline expiry; kOverloaded when shed at admission.
  core::ErrorCode error = core::ErrorCode::kUnknown;
  /// True when the failure is a *script* outcome (uncaught throw, step
  /// budget, oversized result) — the wire layer maps this to
  /// WireStatus::kScriptError, everything else through the normal bands.
  bool script_error = false;
  /// True when a sandbox budget fired: step limit, virtual-time budget,
  /// or result cap. Always paired with a typed status above — a budget
  /// kill is never a process fault.
  bool budget_kill = false;
  std::string message;  ///< thrown value's display string / error detail
  std::string result;   ///< final expression's display string on success
  std::uint64_t steps = 0;        ///< interpreter steps executed
  std::uint64_t invocations = 0;  ///< host binding calls performed
  /// True when the engine reused a cached parse of this source (the
  /// execution itself — interpreter, globals, budgets — is fresh either
  /// way). False on a parse miss or when caching is disabled.
  bool cache_hit = false;
  std::uint32_t shard = 0;
  std::chrono::microseconds latency{0};  ///< submit -> completion, wall
};

struct ScriptRequest {
  std::uint64_t client_id = 0;  ///< shard affinity key
  /// Tenant this script bills against — same resolution rules as
  /// Request::tenant (0 / unknown => the built-in default tenant).
  std::uint32_t tenant = 0;
  std::string source;           ///< MiniJS program
  /// Named string arguments, exposed to the script as the `args` object.
  std::vector<std::pair<std::string, std::string>> args;
  /// Wall-clock budget from submission (queue wait + execution); zero
  /// defers to the gateway default. Checked at dequeue like a request.
  std::chrono::microseconds timeout{0};
  std::uint64_t step_budget = 0;        ///< 0: ScriptLimits default
  std::uint64_t virtual_us_budget = 0;  ///< 0: ScriptLimits default
  std::uint64_t max_result_bytes = 0;   ///< 0: ScriptLimits default
  /// Invoked exactly once: on the owning shard's worker thread after
  /// execution, or on the submitting thread when the script is shed.
  std::function<void(const ScriptResponse&)> on_complete;
};

/// The bridge a shard hands the engine. Every callback runs on the
/// shard's worker thread; invoke/get/set route through the shard's
/// long-lived proxies, so fault gates, meters and descriptor validation
/// all apply exactly as they do to kRequest traffic.
struct ScriptHostOps {
  /// Dispatch one binding call. Throws core::ProxyError on failure —
  /// the engine re-enters it into the script as a catchable Error object
  /// {name, message, code, platform}.
  std::function<std::string(Platform, Op, const std::string& target,
                            const std::string& payload,
                            const std::string& content_type)>
      invoke;
  /// setProperty on the proxy serving (platform, op); descriptor-
  /// validated, ProxyError on rejection. The shard snapshots and
  /// restores every touched proxy around the script, so properties
  /// never leak into later traffic.
  std::function<void(Platform, Op, const std::string& name,
                     const std::string& value)>
      set_property;
  /// getProperty display string ("" when unset).
  std::function<std::string(Platform, Op, const std::string& name)>
      get_property;
  /// Charge `steps` interpreter steps onto the shard's virtual clock.
  std::function<void(std::uint64_t steps)> charge_steps;
  /// The shard's virtual clock, in micros (budget accounting).
  std::function<std::uint64_t()> virtual_now_us;
};

/// One engine per shard, single-threaded like everything the shard owns.
/// Each Execute() builds a fresh interpreter: the MiniJS interpreter
/// retains every loaded AST for its lifetime and its globals are mutable,
/// so reuse across scripts would both grow without bound and leak state
/// between clients — exactly what a sandbox must not do.
///
/// What IS shared across executions is the parse: an LRU cache keyed by
/// an FNV-1a hash of the source maps to an immutable AST
/// (shared_ptr<const Program>), so a repeat composite skips the lexer/
/// parser entirely. Only the syntax tree is reused — budgets, args,
/// globals and step accounting are rebuilt per execution, and programs
/// that fail to parse are never cached. Single-threaded like the shard,
/// so the cache needs no lock.
class ScriptEngine {
 public:
  explicit ScriptEngine(ScriptHostOps ops, ScriptLimits limits = {});
  ~ScriptEngine();

  /// Execute on the calling (worker) thread. Fills everything except
  /// shard/latency, which the shard stamps in its completion path.
  [[nodiscard]] ScriptResponse Execute(const ScriptRequest& request);

  const ScriptLimits& limits() const { return limits_; }

  /// Parse-cache counters since construction (worker-thread reads only;
  /// the shard mirrors them into ShardStats for the metrics plane).
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_misses_; }

 private:
  struct CacheEntry;

  ScriptHostOps ops_;
  ScriptLimits limits_;
  /// LRU list, most-recent first, plus the hash index into it.
  std::list<CacheEntry> cache_lru_;
  std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator>
      cache_index_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

/// Parse "android" / "s60" / "iphone" (as ToString(Platform) emits).
/// Throws core::ProxyError(kIllegalArgument) on anything else.
[[nodiscard]] Platform ParsePlatformName(const std::string& name);
/// Parse "getLocation" / "sendSms" / "httpGet" / "httpPost" /
/// "segmentCount" (as ToString(Op) emits). Same error contract.
[[nodiscard]] Op ParseOpName(const std::string& name);

}  // namespace mobivine::gateway
