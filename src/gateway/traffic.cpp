#include "gateway/traffic.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/seed.h"

namespace mobivine::gateway {

namespace {

using support::SplitMix64;

/// Completion bookkeeping shared by all producers and worker callbacks.
/// Tally lives on RunTraffic's stack, so Count must be safe against the
/// waiter waking up and destroying it: the completion counter and the
/// notify both happen inside one critical section, which pins the waiter
/// in wait() until the callback is completely done with the Tally.
struct Tally {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::uint64_t completed = 0;  // guarded by mutex
  std::uint64_t expected = 0;
  std::mutex mutex;
  std::condition_variable all_done;

  void Count(const Response& response) {
    if (response.ok) {
      ok.fetch_add(1, std::memory_order_relaxed);
    } else if (response.error == core::ErrorCode::kOverloaded) {
      shed.fetch_add(1, std::memory_order_relaxed);
    } else if (response.error == core::ErrorCode::kDeadlineExceeded) {
      timed_out.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(mutex);
    if (++completed == expected) all_done.notify_all();
  }
};

/// Per-producer closed-loop window.
struct Window {
  std::mutex mutex;
  std::condition_variable freed;
  int in_flight = 0;

  void Acquire(int limit) {
    std::unique_lock<std::mutex> lock(mutex);
    freed.wait(lock, [this, limit] { return in_flight < limit; });
    ++in_flight;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      --in_flight;
    }
    freed.notify_one();
  }
};

/// Weighted pick tables built once from the mix.
struct PickTables {
  std::vector<Op> ops;
  std::vector<Platform> platforms;

  explicit PickTables(const TrafficMix& mix) {
    auto add_op = [this](Op op, int weight) {
      for (int i = 0; i < weight; ++i) ops.push_back(op);
    };
    add_op(Op::kGetLocation, mix.get_location);
    add_op(Op::kSendSms, mix.send_sms);
    add_op(Op::kHttpGet, mix.http_get);
    add_op(Op::kHttpPost, mix.http_post);
    add_op(Op::kSegmentCount, mix.segment_count);
    if (ops.empty()) ops.push_back(Op::kSegmentCount);

    auto add_platform = [this](Platform platform, int weight) {
      for (int i = 0; i < weight; ++i) platforms.push_back(platform);
    };
    add_platform(Platform::kAndroid, mix.android);
    add_platform(Platform::kS60, mix.s60);
    add_platform(Platform::kIphone, mix.iphone);
    if (platforms.empty()) platforms.push_back(Platform::kAndroid);
  }
};

Request BuildRequest(SplitMix64& rng, const TrafficConfig& config,
                     const PickTables& tables) {
  Request request;
  request.client_id = rng.NextBelow(config.clients > 0 ? config.clients : 1);
  request.tenant = config.tenant;
  request.op = tables.ops[rng.NextBelow(tables.ops.size())];
  request.platform = tables.platforms[rng.NextBelow(tables.platforms.size())];
  request.timeout = config.timeout;
  request.retry = config.retry;
  switch (request.op) {
    case Op::kHttpGet:
      request.target = std::string("http://") + kGatewayHttpHost + "/ping";
      break;
    case Op::kHttpPost:
      request.target = std::string("http://") + kGatewayHttpHost + "/ingest";
      request.payload = "client=" + std::to_string(request.client_id);
      break;
    case Op::kSendSms:
      request.target = kGatewaySmsPeer;
      request.payload = "gw traffic";
      break;
    case Op::kSegmentCount:
      request.payload = "how many GSM segments does this sentence need?";
      break;
    case Op::kGetLocation:
      if (request.platform == Platform::kS60 &&
          config.location_property_values > 0) {
        // Bounded value pool under a fixed, descriptor-declared name —
        // see the field comment in traffic.h. Values stay >= 25 so the
        // simulated provider can always satisfy the criteria.
        const std::uint64_t pool =
            std::min<std::uint64_t>(config.location_property_values, 64);
        request.properties.emplace_back(
            "horizontalAccuracy",
            static_cast<long long>(25 + rng.NextBelow(pool)));
      }
      break;
  }
  return request;
}

}  // namespace

TrafficReport RunTraffic(Gateway& gateway, const TrafficConfig& config) {
  const int producers = std::max(config.producers, 1);
  const std::uint64_t total =
      static_cast<std::uint64_t>(producers) * config.requests_per_producer;
  const PickTables tables(config.mix);

  Tally tally;
  tally.expected = total;
  std::vector<std::unique_ptr<Window>> windows;
  for (int i = 0; i < producers; ++i) {
    windows.push_back(std::make_unique<Window>());
  }

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      SplitMix64 rng = support::SeedSequence(config.seed)
                           .Fork("traffic")
                           .Fork(static_cast<std::uint64_t>(p))
                           .stream();
      Window* window = windows[static_cast<std::size_t>(p)].get();
      const bool closed_loop = config.window > 0;
      // Open loop: fixed inter-arrival per producer, paced on the wall
      // clock from the common start so the aggregate rate holds.
      const auto interval =
          !closed_loop && config.open_loop_rps > 0
              ? std::chrono::nanoseconds(static_cast<std::int64_t>(
                    1e9 * producers / config.open_loop_rps))
              : std::chrono::nanoseconds(0);
      for (std::uint64_t i = 0; i < config.requests_per_producer; ++i) {
        Request request = BuildRequest(rng, config, tables);
        if (closed_loop) {
          window->Acquire(config.window);
          // Release before Count: Count's final increment lets RunTraffic
          // return and destroy the windows, so the Window must not be
          // touched after it.
          request.on_complete = [&tally, window](const Response& response) {
            window->Release();
            tally.Count(response);
          };
        } else {
          if (interval.count() > 0) {
            std::this_thread::sleep_until(start + (i + 1) * interval);
          }
          request.on_complete = [&tally](const Response& response) {
            tally.Count(response);
          };
        }
        gateway.Submit(std::move(request));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  {
    std::unique_lock<std::mutex> lock(tally.mutex);
    tally.all_done.wait(
        lock, [&tally] { return tally.completed == tally.expected; });
  }
  const auto end = Clock::now();

  TrafficReport report;
  report.submitted = total;
  report.ok = tally.ok.load();
  report.shed = tally.shed.load();
  report.failed = tally.failed.load();
  report.timed_out = tally.timed_out.load();
  report.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  const std::uint64_t served = report.ok + report.failed + report.timed_out;
  report.completed_per_sec =
      report.wall_seconds > 0
          ? static_cast<double>(served) / report.wall_seconds
          : 0;
  return report;
}

}  // namespace mobivine::gateway
