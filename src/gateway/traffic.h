// Synthetic traffic for M-Gateway: many simulated clients issuing mixed
// uniform-surface operations from several producer threads.
//
// Two load shapes:
//  * Closed loop (window > 0) — each producer keeps at most `window`
//    requests in flight, submitting the next as completions arrive. This
//    measures sustainable throughput: offered load adapts to capacity.
//  * Open loop (window == 0, open_loop_rps > 0) — producers submit on a
//    fixed wall-clock schedule regardless of completions, the shape that
//    drives a serving system into overload and exercises shedding.
//
// Deterministic given a seed: client ids, op and platform picks come from
// per-producer streams derived with support::SeedSequence —
// SeedSequence(seed).Fork("traffic").Fork(producer) — so identical seeds
// reproduce identical request schedules across runs and subsystems never
// collide on ad-hoc seed arithmetic (wall-clock interleaving still
// varies). EXPERIMENTS.md § Methodology documents the convention.
#pragma once

#include <chrono>
#include <cstdint>

#include "gateway/gateway.h"

namespace mobivine::gateway {

/// Relative weights; zero removes the op/platform from the mix.
struct TrafficMix {
  int get_location = 1;
  int send_sms = 1;
  int http_get = 2;
  int http_post = 1;
  int segment_count = 1;

  int android = 2;
  int s60 = 1;
  int iphone = 1;
};

struct TrafficConfig {
  int producers = 2;
  std::uint64_t requests_per_producer = 1000;
  std::uint64_t clients = 256;  ///< client-id space (shard affinity spread)
  std::uint64_t seed = 1;
  /// Tenant every generated request bills against (gateway/tenant.h);
  /// 0 = the built-in default tenant.
  std::uint32_t tenant = 0;
  int window = 32;           ///< closed-loop in-flight cap; 0 = open loop
  double open_loop_rps = 0;  ///< aggregate submit rate when window == 0
  std::chrono::microseconds timeout{0};  ///< per-request; 0 = gateway default
  RetryPolicy retry;                     ///< max_attempts 0 = gateway default
  TrafficMix mix;
  /// When > 0, S60 getLocation requests carry a per-request
  /// "horizontalAccuracy" property whose value cycles through this many
  /// distinct settings (capped at 64). Deliberately a bounded pool of
  /// VALUES under one fixed property NAME: property names are what the
  /// never-evicting global interner keys on, so a soak minting distinct
  /// names would grow resident memory linearly with runtime (the
  /// unbounded-growth contract in docs/failure-semantics.md).
  std::uint64_t location_property_values = 0;
};

struct TrafficReport {
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timed_out = 0;
  double wall_seconds = 0;      ///< first submit -> last completion
  double completed_per_sec = 0; ///< served completions (ok+failed+timed_out)
};

/// Drive `gateway` with the configured load; returns once every submitted
/// request has completed (served or shed).
[[nodiscard]] TrafficReport RunTraffic(Gateway& gateway,
                                       const TrafficConfig& config);

}  // namespace mobivine::gateway
