// M-Failover: cross-platform failover, circuit breakers and hedging for
// M-Gateway shards.
//
// The paper's M-Proxy semantic plane makes one invocation portable across
// every platform on the device; M-Failover makes that portability
// operational. When a dispatch fails transiently (or a FaultPlan injects
// a failure), the shard re-dispatches the same uniform invocation to the
// next healthy platform on the same shard — the caller observes one
// Response and, on success, never needed to know which backend produced
// it (Response::served_platform records it for M-Scope).
//
// Three cooperating mechanisms, all per shard and all on the shard's
// virtual clock so chaos runs are deterministic:
//  * FaultInjector — executes the configured support::FaultPlan; the
//    engine implements support::FaultGate and is installed on the shard's
//    proxies, so injected faults surface through the same binding
//    dispatch path (and exception-mapping machinery) as real ones.
//  * CircuitBreaker (one per platform) — closed / open / half-open on a
//    consecutive-transient-failure threshold. Open breakers are skipped
//    by the failover sweep; after a virtual-clock cooldown the breaker
//    lets exactly one probe through (half-open) and closes on success.
//  * Hedging — when enabled, a dispatch that hangs past the platform's
//    observed latency percentile (a virtual-time budget handed to the
//    fault plane) is abandoned and the invocation is hedged onto the
//    next platform; first success wins, the loser books no completion.
//
// Threading: the engine lives on its shard's worker thread. The only
// cross-thread readers are the relaxed ShardStats counters it shares
// with the rest of the stats plane.
#pragma once

#include <cstdint>

#include "gateway/histogram.h"
#include "gateway/stats.h"
#include "support/fault.h"

namespace mobivine::gateway {

/// Per-gateway M-Failover policy (GatewayConfig::failover). Default is
/// everything off: the serving path is byte-for-byte the pre-failover
/// one (a single null-pointer test per binding dispatch).
struct FailoverConfig {
  /// Re-dispatch transient failures to the next healthy platform on the
  /// same shard before burning a retry round.
  bool failover = false;
  /// Hedge a dispatch that hangs past the platform's latency percentile
  /// onto the next platform (first success wins).
  bool hedging = false;
  /// Consecutive transient failures that open a platform's breaker;
  /// 0 disables circuit breaking.
  int breaker_threshold = 0;
  /// Virtual-clock cooldown before an open breaker admits its half-open
  /// probe.
  std::uint64_t breaker_cooldown_us = 50'000;
  /// Hedge after the platform's q-th latency percentile (virtual µs of
  /// its successful dispatches).
  double hedge_quantile = 0.95;
  /// Hedge threshold floor, also used while the histogram is cold.
  std::uint64_t hedge_floor_us = 2'000;
  /// Patience budget for a hanging dispatch when hedging is off (or no
  /// candidate remains); the remaining request deadline caps it further.
  std::uint64_t hang_cap_us = 20'000;
  /// Faults to inject on this gateway's shards (empty = none).
  support::FaultPlan fault_plan;

  /// Whether a shard needs a FailoverEngine at all.
  [[nodiscard]] bool enabled() const {
    return failover || hedging || breaker_threshold > 0 ||
           !fault_plan.empty();
  }
};

/// Closed / open / half-open breaker on a consecutive-failure count,
/// probed on the shard's virtual clock. threshold == 0 disables it
/// (always allows, never opens).
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(int threshold, std::uint64_t cooldown_us)
      : threshold_(threshold), cooldown_us_(cooldown_us) {}

  /// May this platform be dispatched to at virtual time `now_us`? An open
  /// breaker whose cooldown elapsed transitions to half-open and admits
  /// exactly one probe; further calls say no until the probe resolves.
  [[nodiscard]] bool Allow(std::uint64_t now_us);

  /// A dispatch succeeded: close (resolves a half-open probe, resets the
  /// consecutive-failure run).
  void OnSuccess();

  /// A health-relevant (transient/injected) dispatch failure at virtual
  /// time `now_us`. Returns true when this failure opened the breaker.
  [[nodiscard]] bool OnFailure(std::uint64_t now_us);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] int consecutive_failures() const { return consecutive_; }

 private:
  const int threshold_;
  const std::uint64_t cooldown_us_;
  State state_ = State::kClosed;
  int consecutive_ = 0;
  std::uint64_t opened_at_us_ = 0;
  bool probe_in_flight_ = false;
};

/// The per-shard M-Failover brain: owns the shard's fault injector,
/// per-platform breakers and per-platform latency profiles. Installed on
/// the shard's proxies as their support::FaultGate.
class FailoverEngine final : public support::FaultGate {
 public:
  static constexpr std::size_t kPlatforms = 3;

  FailoverEngine(const FailoverConfig& config, ShardStats& stats,
                 std::uint32_t shard_index);

  // -- support::FaultGate (called from inside binding dispatch) ---------
  /// Consult the fault plan for one dispatch. A kHang decision is sized
  /// to the hang budget the shard set for this dispatch (hedge threshold
  /// or capped remaining deadline).
  support::FaultDecision Admit(std::string_view platform_tag,
                               std::string_view op_name) override;

  /// Patience budget (virtual µs) a hanging dispatch may consume before
  /// it surfaces as a timeout. Set by the shard before every dispatch.
  void set_hang_budget_us(std::uint64_t budget) { hang_budget_us_ = budget; }

  // -- breaker + latency profile (called from Shard::Serve) -------------
  /// Breaker check for a candidate platform (emits the half-open instant
  /// on transition).
  [[nodiscard]] bool BreakerAllows(std::size_t platform_index,
                                   std::uint64_t now_us);
  /// Successful dispatch: closes the breaker, records the dispatch's
  /// virtual latency into the platform's hedge profile.
  void OnDispatchSuccess(std::size_t platform_index,
                         std::uint64_t virt_latency_us);
  /// Transient/injected dispatch failure: advances the breaker (counts
  /// breaker_opens and emits the open instant on transition).
  void OnDispatchFailure(std::size_t platform_index, std::uint64_t now_us);

  /// Virtual-µs hedge threshold for a platform: its hedge_quantile
  /// latency percentile, floored at hedge_floor_us (the floor alone
  /// while the profile is cold).
  [[nodiscard]] std::uint64_t HedgeThresholdUs(std::size_t platform_index);

  [[nodiscard]] const FailoverConfig& config() const { return config_; }
  [[nodiscard]] const support::FaultInjector& injector() const {
    return injector_;
  }
  [[nodiscard]] const CircuitBreaker& breaker(
      std::size_t platform_index) const {
    return breakers_[platform_index];
  }

 private:
  /// Hedge profiles need this many successes before the percentile is
  /// trusted over the floor.
  static constexpr std::uint64_t kMinProfileSamples = 16;

  FailoverConfig config_;
  ShardStats& stats_;
  support::FaultInjector injector_;
  CircuitBreaker breakers_[kPlatforms];
  LatencyHistogram profiles_[kPlatforms];
  std::uint64_t profile_samples_[kPlatforms] = {0, 0, 0};
  std::uint64_t hang_budget_us_ = 0;
};

}  // namespace mobivine::gateway
