// GatewayStats: the observability plane of M-Gateway.
//
// One ShardStats block per shard, written with relaxed atomics by exactly
// two parties — the shard's worker (service counters, latency histogram)
// and submitting threads (admission counters) — and snapshotted by anyone
// at any time without stopping either. A snapshot is internally consistent
// per counter (each is a single atomic) but not across counters; the
// invariants tests assert (accepted == served + queue backlog, etc.) hold
// exactly once the gateway is quiescent.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "gateway/histogram.h"

namespace mobivine::gateway {

/// Point-in-time copy of one shard's counters.
struct ShardSnapshot {
  std::uint64_t accepted = 0;   ///< admitted into the shard queue
  std::uint64_t shed = 0;       ///< rejected at admission (kOverloaded)
  std::uint64_t ok = 0;         ///< served successfully
  std::uint64_t failed = 0;     ///< served, ended in a ProxyError
  std::uint64_t timed_out = 0;  ///< deadline expired before service
  std::uint64_t retries = 0;    ///< extra retry rounds beyond the first
  std::uint64_t failovers = 0;  ///< dispatches moved to another platform
  std::uint64_t hedges_fired = 0;  ///< hedge dispatches launched
  std::uint64_t hedges_won = 0;    ///< hedge dispatches that produced the win
  std::uint64_t breaker_opens = 0;  ///< closed/half-open -> open transitions
  std::uint64_t faults_injected = 0;  ///< FaultPlan decisions that fired
  /// M-Script: executions dequeued and run (also counted in accepted +
  /// ok/failed/timed_out — scripts ride the same serving machinery).
  std::uint64_t scripts = 0;
  std::uint64_t script_errors = 0;  ///< kScriptError outcomes (throw/budget)
  /// Sandbox budget kills within script_errors/timed_out: step-limit,
  /// virtual-time and result-cap violations — each surfaced as a typed
  /// status, never a process fault.
  std::uint64_t script_budget_kills = 0;
  std::uint64_t script_steps = 0;        ///< interpreter steps executed
  std::uint64_t script_invocations = 0;  ///< host binding calls from scripts
  /// Parse-cache outcomes: a hit reused a cached AST (fresh sandbox
  /// either way), a miss paid the lexer/parser. hits + misses == scripts
  /// once quiescent (every execution is one or the other).
  std::uint64_t script_cache_hits = 0;
  std::uint64_t script_cache_misses = 0;
  std::uint64_t queue_depth = 0;      ///< at snapshot time
  std::uint64_t max_queue_depth = 0;  ///< high-water mark since start
  HistogramSnapshot latency;          ///< completions (ok + failed + timed_out)

  [[nodiscard]] std::uint64_t completed() const {
    return ok + failed + timed_out;
  }
};

/// Aggregate view plus the per-shard breakdown.
struct GatewaySnapshot {
  std::vector<ShardSnapshot> shards;
  ShardSnapshot totals;  ///< counters summed, histograms merged

  [[nodiscard]] std::uint64_t p50_micros() const {
    return totals.latency.Percentile(0.50);
  }
  [[nodiscard]] std::uint64_t p95_micros() const {
    return totals.latency.Percentile(0.95);
  }
  [[nodiscard]] std::uint64_t p99_micros() const {
    return totals.latency.Percentile(0.99);
  }
};

/// The live, written-in-place side. All counters relaxed: they are
/// independent monotonic event counts, not a synchronization protocol.
class ShardStats {
 public:
  void OnAccepted() { accepted_.fetch_add(1, std::memory_order_relaxed); }
  void OnShed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void OnOk() { ok_.fetch_add(1, std::memory_order_relaxed); }
  void OnFailed() { failed_.fetch_add(1, std::memory_order_relaxed); }
  void OnTimedOut() { timed_out_.fetch_add(1, std::memory_order_relaxed); }
  void OnRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void OnFailover() { failovers_.fetch_add(1, std::memory_order_relaxed); }
  void OnHedgeFired() {
    hedges_fired_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnHedgeWon() { hedges_won_.fetch_add(1, std::memory_order_relaxed); }
  void OnBreakerOpen() {
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnFaultInjected() {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnScript() { scripts_.fetch_add(1, std::memory_order_relaxed); }
  void OnScriptError() {
    script_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnScriptBudgetKill() {
    script_budget_kills_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnScriptSteps(std::uint64_t steps) {
    script_steps_.fetch_add(steps, std::memory_order_relaxed);
  }
  void OnScriptInvocations(std::uint64_t count) {
    script_invocations_.fetch_add(count, std::memory_order_relaxed);
  }
  void OnScriptCacheHit() {
    script_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnScriptCacheMiss() {
    script_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordLatency(std::uint64_t micros) { latency_.Record(micros); }

  /// Monotonic high-water mark of the queue depth seen at admission.
  void ObserveDepth(std::uint64_t depth) {
    std::uint64_t seen = max_depth_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !max_depth_.compare_exchange_weak(seen, depth,
                                             std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] ShardSnapshot Snapshot(std::uint64_t queue_depth) const {
    ShardSnapshot snap;
    snap.accepted = accepted_.load(std::memory_order_relaxed);
    snap.shed = shed_.load(std::memory_order_relaxed);
    snap.ok = ok_.load(std::memory_order_relaxed);
    snap.failed = failed_.load(std::memory_order_relaxed);
    snap.timed_out = timed_out_.load(std::memory_order_relaxed);
    snap.retries = retries_.load(std::memory_order_relaxed);
    snap.failovers = failovers_.load(std::memory_order_relaxed);
    snap.hedges_fired = hedges_fired_.load(std::memory_order_relaxed);
    snap.hedges_won = hedges_won_.load(std::memory_order_relaxed);
    snap.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
    snap.faults_injected = faults_injected_.load(std::memory_order_relaxed);
    snap.scripts = scripts_.load(std::memory_order_relaxed);
    snap.script_errors = script_errors_.load(std::memory_order_relaxed);
    snap.script_budget_kills =
        script_budget_kills_.load(std::memory_order_relaxed);
    snap.script_steps = script_steps_.load(std::memory_order_relaxed);
    snap.script_invocations =
        script_invocations_.load(std::memory_order_relaxed);
    snap.script_cache_hits =
        script_cache_hits_.load(std::memory_order_relaxed);
    snap.script_cache_misses =
        script_cache_misses_.load(std::memory_order_relaxed);
    snap.queue_depth = queue_depth;
    snap.max_queue_depth = max_depth_.load(std::memory_order_relaxed);
    snap.latency = latency_.Snapshot();
    return snap;
  }

 private:
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> hedges_fired_{0};
  std::atomic<std::uint64_t> hedges_won_{0};
  std::atomic<std::uint64_t> breaker_opens_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<std::uint64_t> scripts_{0};
  std::atomic<std::uint64_t> script_errors_{0};
  std::atomic<std::uint64_t> script_budget_kills_{0};
  std::atomic<std::uint64_t> script_steps_{0};
  std::atomic<std::uint64_t> script_invocations_{0};
  std::atomic<std::uint64_t> script_cache_hits_{0};
  std::atomic<std::uint64_t> script_cache_misses_{0};
  std::atomic<std::uint64_t> max_depth_{0};
  LatencyHistogram latency_;
};

/// Sum shard snapshots into `totals` (histograms merged).
[[nodiscard]] GatewaySnapshot Aggregate(std::vector<ShardSnapshot> shards);

}  // namespace mobivine::gateway
