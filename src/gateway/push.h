// M-Push feed: the per-shard notifier/feeder split behind the wire's
// subscription plane.
//
// The paper's WebView plane delivers platform callbacks through a
// notification table the client *polls*; at production scale polling is
// the first thing to die. The feed inverts that: platform callbacks
// (SMS delivery reports, proximity alerts, call-state changes, WebView
// notification posts) are Publish()ed into their shard's feed, which
//  * notifies — live listeners (the wire server's per-connection
//    subscriptions) get each event synchronously at publish time, and
//  * feeds — a bounded replay ring retains the last N events under
//    monotonic cursors, so a reconnecting subscriber catches up from its
//    last cursor instead of silently missing the gap.
// When the ring has already evicted part of a requested range the replay
// reports the gap explicitly — the caller surfaces it as a typed
// kEventsDropped marker, never as silent loss.
//
// Threading: one feed per shard, but publishers are not confined to the
// shard worker (Gateway::PublishEvent and the WebView bridge run on
// caller threads), so the feed is internally mutex-guarded. Listeners
// run under that mutex: they must be quick (enqueue-and-signal, the wire
// server's delivery path) and must not re-enter the feed. In exchange,
// RemoveListener() returning guarantees no further callback for that
// listener is running or will run — the teardown fence connection close
// needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace mobivine::gateway {

/// Callback families a subscription can listen to. Numeric values are
/// the wire encoding (wire::PushTopic mirrors this enum one to one; the
/// wire layer static_casts between them, like WireStatus/ErrorCode).
enum class PushTopic : std::uint8_t {
  kAll = 0,           ///< wildcard: every topic on the owning shard
  kProximity = 1,     ///< ProximityListener::proximityEvent
  kSmsDelivery = 2,   ///< SmsListener::smsStatusChanged delivery reports
  kCallState = 3,     ///< CallListener::callStateChanged
  kNotification = 4,  ///< WebView NotificationTable posts (paper Fig 6)
};

[[nodiscard]] const char* ToString(PushTopic topic);

/// One pushed platform callback as it sits in the feed.
struct PushEvent {
  PushTopic topic = PushTopic::kAll;
  std::uint64_t cursor = 0;     ///< feed-assigned, monotonic from 1
  std::uint64_t client_id = 0;  ///< origin client; 0 = shard-wide broadcast
  std::string body;
};

/// Does an event match a subscription's (topic, client) filter? Topic
/// kAll subscribes to everything; client 0 subscribes to every client;
/// broadcast events (client_id 0) reach every subscriber of the topic.
[[nodiscard]] inline bool MatchesSubscription(const PushEvent& event,
                                              PushTopic sub_topic,
                                              std::uint64_t sub_client) {
  if (sub_topic != PushTopic::kAll && event.topic != sub_topic) return false;
  return sub_client == 0 || event.client_id == 0 ||
         event.client_id == sub_client;
}

class PushFeed {
 public:
  using Listener = std::function<void(const PushEvent&)>;

  /// `replay_capacity` bounds the ring; older events are evicted
  /// (counted) as new ones arrive. Zero means "no replay": every
  /// kFromCursor subscribe starts with a gap.
  explicit PushFeed(std::size_t replay_capacity);

  PushFeed(const PushFeed&) = delete;
  PushFeed& operator=(const PushFeed&) = delete;

  /// Append an event: assign the next cursor, retain it in the ring
  /// (evicting the oldest past capacity) and invoke every listener with
  /// it. Returns the assigned cursor.
  std::uint64_t Publish(PushTopic topic, std::uint64_t client_id,
                        std::string body);

  /// Register a live listener; returns its id. The listener sees every
  /// event published after this returns (and none published before —
  /// catch-up is ReplayAfter's job; do it from the same thread between
  /// AddListener and the first delivery to get the seam exactly once).
  std::uint64_t AddListener(Listener listener);

  /// Unregister. On return no callback for `id` is in flight or will
  /// ever run again (publishes hold the same mutex).
  void RemoveListener(std::uint64_t id);

  /// What a replay actually covered.
  struct ReplayResult {
    std::uint64_t delivered = 0;  ///< events handed to `fn`
    /// The cursor the live stream resumes after: the last retained
    /// cursor <= now, whether or not it matched the filter. Equal to the
    /// requested cursor when nothing new happened; clamped down to the
    /// feed's last cursor when the request was from the future (a cursor
    /// from another worker after a plan change).
    std::uint64_t resume_cursor = 0;
    bool gap = false;            ///< [gap_first, gap_last] were evicted
    std::uint64_t gap_first = 0;
    std::uint64_t gap_last = 0;
  };

  /// Feed every retained event with cursor > `after` matching (topic,
  /// client) to `fn`, oldest first. Events evicted from the ring inside
  /// (after, first-retained) are reported as a gap.
  ReplayResult ReplayAfter(std::uint64_t after, PushTopic topic,
                           std::uint64_t client_id, const Listener& fn);

  /// The exactly-once subscribe seam: replay (after, now] into
  /// `replay_fn` and register `listener` for everything newer — under
  /// ONE lock acquisition, so no event lands in both the replay and the
  /// live stream and none falls between them. Returns the listener id;
  /// `result` (if non-null) receives what the replay covered.
  std::uint64_t AddListenerAndReplay(std::uint64_t after, PushTopic topic,
                                     std::uint64_t client_id,
                                     const Listener& replay_fn,
                                     Listener listener, ReplayResult* result);

  /// Cursor of the newest event ever published (0 = none yet).
  [[nodiscard]] std::uint64_t last_cursor() const;

  struct Counters {
    std::uint64_t published = 0;
    std::uint64_t evicted = 0;    ///< pushed out of the replay ring
    std::uint64_t listeners = 0;  ///< currently registered
    std::uint64_t replays = 0;    ///< ReplayAfter calls
    std::uint64_t replay_gaps = 0;  ///< replays that reported a gap
  };
  [[nodiscard]] Counters GetCounters() const;

 private:
  struct Entry {
    std::uint64_t id;
    Listener listener;
  };

  /// ReplayAfter's body; mutex_ must be held.
  ReplayResult ReplayLocked(std::uint64_t after, PushTopic topic,
                            std::uint64_t client_id, const Listener& fn);

  const std::size_t replay_capacity_;
  mutable std::mutex mutex_;
  std::uint64_t next_cursor_ = 1;
  std::uint64_t next_listener_id_ = 1;
  std::deque<PushEvent> ring_;  ///< retained events, oldest first
  std::vector<Entry> listeners_;
  std::uint64_t evicted_ = 0;
  std::uint64_t replays_ = 0;
  std::uint64_t replay_gaps_ = 0;
};

}  // namespace mobivine::gateway
