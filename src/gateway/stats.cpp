#include "gateway/stats.h"

#include <utility>

namespace mobivine::gateway {

GatewaySnapshot Aggregate(std::vector<ShardSnapshot> shards) {
  GatewaySnapshot snap;
  snap.shards = std::move(shards);
  for (const ShardSnapshot& shard : snap.shards) {
    snap.totals.accepted += shard.accepted;
    snap.totals.shed += shard.shed;
    snap.totals.ok += shard.ok;
    snap.totals.failed += shard.failed;
    snap.totals.timed_out += shard.timed_out;
    snap.totals.retries += shard.retries;
    snap.totals.failovers += shard.failovers;
    snap.totals.hedges_fired += shard.hedges_fired;
    snap.totals.hedges_won += shard.hedges_won;
    snap.totals.breaker_opens += shard.breaker_opens;
    snap.totals.faults_injected += shard.faults_injected;
    snap.totals.scripts += shard.scripts;
    snap.totals.script_errors += shard.script_errors;
    snap.totals.script_budget_kills += shard.script_budget_kills;
    snap.totals.script_steps += shard.script_steps;
    snap.totals.script_invocations += shard.script_invocations;
    snap.totals.script_cache_hits += shard.script_cache_hits;
    snap.totals.script_cache_misses += shard.script_cache_misses;
    snap.totals.queue_depth += shard.queue_depth;
    if (shard.max_queue_depth > snap.totals.max_queue_depth) {
      snap.totals.max_queue_depth = shard.max_queue_depth;
    }
    snap.totals.latency.Merge(shard.latency);
  }
  return snap;
}

}  // namespace mobivine::gateway
