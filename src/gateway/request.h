// M-Gateway request envelope.
//
// A Request names an operation on the uniform M-Proxy surface — which
// platform binding to serve it on, which semantic operation, the operands,
// optional per-request properties — plus the serving-plane metadata the
// gateway acts on: a client id (shard affinity), a wall-clock deadline,
// and a retry policy for transient binding failures. Every submitted
// request receives exactly one Response through its completion callback,
// whether it was served, shed at admission, or expired in queue.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "core/errors.h"
#include "core/property.h"

namespace mobivine::gateway {

using Clock = std::chrono::steady_clock;

/// Which platform binding serves the request. The whole point of the
/// layer below: the request shape is identical for all of them.
enum class Platform : std::uint8_t { kAndroid, kS60, kIphone };

/// The uniform operations the gateway serves. Each maps to one semantic-
/// plane method implemented by every platform in the request mix.
enum class Op : std::uint8_t {
  kGetLocation,   ///< LocationProxy::getLocation()
  kSendSms,       ///< SmsProxy::sendTextMessage(target, payload, nullptr)
  kHttpGet,       ///< HttpProxy::get(target)
  kHttpPost,      ///< HttpProxy::post(target, payload, content_type)
  kSegmentCount,  ///< SmsProxy::segmentCount(payload) — pure, no device I/O
};

[[nodiscard]] const char* ToString(Platform platform);
[[nodiscard]] const char* ToString(Op op);

/// Bounded exponential backoff for transient binding failures (timeouts,
/// radio failures, lost fixes). max_attempts counts every execution, so
/// max_attempts = 1 means "no retries"; 0 defers to the gateway default.
struct RetryPolicy {
  int max_attempts = 0;
  std::chrono::microseconds initial_backoff{200};
  double multiplier = 2.0;
  std::chrono::microseconds max_backoff{5'000};
};

struct Response {
  bool ok = false;
  core::ErrorCode error = core::ErrorCode::kUnknown;
  std::string message;  ///< error detail; empty on success
  std::string payload;  ///< op result (body, message id, "lat,lon", ...)
  int attempts = 0;     ///< dispatches performed (0 when shed/expired);
                        ///< with failover/hedging one retry round may
                        ///< issue several dispatches
  std::uint32_t shard = 0;
  /// Which platform actually produced the successful payload. Equals the
  /// request's platform unless M-Failover re-dispatched (failover/hedge)
  /// — the caller never had to know, but M-Scope does.
  Platform served_platform = Platform::kAndroid;
  std::chrono::microseconds latency{0};  ///< submit -> completion, wall clock
};

struct Request {
  std::uint64_t client_id = 0;  ///< shard affinity key
  /// Tenant this request bills against (gateway/tenant.h). 0 — the
  /// default for every pre-tenancy caller — is the built-in "default"
  /// tenant; unknown ids also resolve there, never to a rejection.
  std::uint32_t tenant = 0;
  Platform platform = Platform::kAndroid;
  Op op = Op::kGetLocation;
  std::string target;        ///< url / destination number
  std::string payload;       ///< post body / sms text
  std::string content_type;  ///< kHttpPost only
  /// Applied via setProperty() before the op runs (descriptor-validated).
  std::vector<std::pair<std::string, core::PropertyValue>> properties;
  /// Wall-clock budget from submission; zero defers to the gateway
  /// default (which may be "none"). Checked at dequeue and between retry
  /// attempts — a blocking binding call in progress is never interrupted.
  std::chrono::microseconds timeout{0};
  RetryPolicy retry;  ///< max_attempts == 0 defers to the gateway default
  /// Invoked exactly once: on the owning shard's worker thread after
  /// service, or on the submitting thread when the request is shed.
  std::function<void(const Response&)> on_complete;
};

/// One borrowed property: the name and any string value are views into
/// caller-owned memory, valid only for the duration of the Submit call.
/// The value lanes mirror the four wire-encodable PropertyValue scalars.
struct BorrowedProperty {
  std::string_view name;
  std::variant<std::string_view, long long, double, bool> value;
};

/// A Request whose string operands are borrowed views — the zero-copy
/// envelope the wire layer decodes straight out of a connection's input
/// ring. Gateway::Submit(const BorrowedRequest&, ...) materializes owning
/// copies only when the request is actually queued; a shed decision
/// (overload, stopping) is taken first and never copies a byte, so the
/// overload path costs nothing beyond the completion callback itself.
/// Every view must stay valid until Submit returns; nothing retains them.
struct BorrowedRequest {
  std::uint64_t client_id = 0;
  std::uint32_t tenant = 0;  ///< same resolution rules as Request::tenant
  Platform platform = Platform::kAndroid;
  Op op = Op::kGetLocation;
  std::string_view target;
  std::string_view payload;
  std::string_view content_type;
  const BorrowedProperty* properties = nullptr;
  std::size_t property_count = 0;
  std::chrono::microseconds timeout{0};
  RetryPolicy retry;
};

}  // namespace mobivine::gateway
