#include "gateway/tenant.h"

#include <utility>

namespace mobivine::gateway {

TenantTable::TenantTable(std::vector<TenantConfig> tenants) {
  // Slot 0 is always the default tenant. An explicit id-0 config (first
  // occurrence) overrides its name/weight; otherwise the built-in one is
  // prepended so pre-tenancy callers (tenant id 0 everywhere) keep
  // working with weight-1 entitlement.
  configs_.reserve(tenants.size() + 1);
  TenantConfig default_tenant{0, "default", 1};
  for (auto& tenant : tenants) {
    if (tenant.id == 0 && slots_.find(0) == slots_.end()) {
      default_tenant = std::move(tenant);
      if (default_tenant.name.empty()) default_tenant.name = "default";
      slots_.emplace(0, 0);
    }
  }
  configs_.push_back(std::move(default_tenant));
  slots_[0] = 0;
  for (auto& tenant : tenants) {
    if (tenant.id == 0) continue;  // consumed above (or duplicate)
    if (!slots_.emplace(tenant.id, configs_.size()).second) continue;
    if (tenant.name.empty()) {
      tenant.name = "tenant" + std::to_string(tenant.id);
    }
    configs_.push_back(std::move(tenant));
  }
  total_weight_ = 0;
  for (const TenantConfig& config : configs_) total_weight_ += config.weight;
  if (total_weight_ == 0) total_weight_ = 1;  // all-zero quotas: avoid /0
  stats_ = std::make_unique<TenantStats[]>(configs_.size());
}

std::vector<TenantSnapshot> TenantTable::Snapshot() const {
  std::vector<TenantSnapshot> snapshots;
  snapshots.reserve(configs_.size());
  for (std::size_t slot = 0; slot < configs_.size(); ++slot) {
    TenantSnapshot snap = stats_[slot].Snapshot();
    snap.id = configs_[slot].id;
    snap.name = configs_[slot].name;
    snap.weight = configs_[slot].weight;
    snapshots.push_back(std::move(snap));
  }
  return snapshots;
}

}  // namespace mobivine::gateway
