// First-class tenancy for M-Gateway: who is asking, and how much of the
// serving plane they are entitled to.
//
// A fleet of simulated devices (src/fleet/) — or any multi-app / BYOD
// deployment the paper's middleware would front — shares one gateway.
// Without tenancy the shed watermark is tenant-blind: one misbehaving
// tenant flooding the shard queues starves everyone equally. The
// TenantTable makes admission weighted instead:
//
//  * Every tenant carries an admission weight. On each shard, a tenant
//    may occupy at most  cap = max(1, floor(watermark * w / Σw))  queue
//    slots (weight 0 => cap 0: a zero-quota tenant is always shed, even
//    on an idle gateway). Occupancy is counted at admission and released
//    when the request *completes* service, so the cap bounds a tenant's
//    outstanding (queued + in-service) work; because the shard serves
//    FIFO, served throughput under full backlog converges to the weight
//    ratio.
//  * A request above its tenant cap is shed with the same typed
//    kOverloaded as a watermark shed — the caller-visible contract is
//    unchanged — but it is counted separately (quota_shed) and traced
//    with a gateway.quota_shed instant, so operators can tell "the shard
//    is full" from "this tenant exceeded its share". See
//    docs/failure-semantics.md.
//  * Per-tenant accounting mirrors the shard plane: submitted / accepted
//    / shed / ok / failed / timed_out / retries plus a latency histogram,
//    snapshot-able while serving and exported as gateway.tenant.<name>.*
//    through MetricsRegistry. Quiescent, every tenant reconciles exactly:
//    ok + failed + timed_out + shed == submitted.
//
// Requests that name no tenant (tenant id 0, the default for every
// pre-tenancy caller) resolve to the built-in "default" tenant, as do
// unknown ids — admission never fails on an unconfigured tenant, it just
// bills the default bucket.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gateway/histogram.h"

namespace mobivine::gateway {

/// One tenant's identity and entitlement. id 0 is reserved for the
/// built-in default tenant (the table adds it when absent); configuring
/// id 0 explicitly overrides the default tenant's name/weight.
struct TenantConfig {
  std::uint32_t id = 0;
  std::string name;         ///< metric label; empty => "tenant<id>"
  std::uint32_t weight = 1; ///< admission weight; 0 => zero quota (always shed)
};

/// Point-in-time copy of one tenant's counters.
struct TenantSnapshot {
  std::uint32_t id = 0;
  std::string name;
  std::uint32_t weight = 1;
  std::uint64_t submitted = 0;   ///< Submit/SubmitScript calls billed here
  std::uint64_t accepted = 0;    ///< admitted into some shard queue
  std::uint64_t shed = 0;        ///< all sheds (watermark + quota + stopping)
  std::uint64_t quota_shed = 0;  ///< subset of shed: tenant cap, not watermark
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t retries = 0;
  HistogramSnapshot latency;  ///< completions (ok + failed + timed_out)

  [[nodiscard]] std::uint64_t completed() const {
    return ok + failed + timed_out;
  }
};

/// The live, written-in-place side. Same discipline as ShardStats: every
/// counter is an independent relaxed atomic, written by submitting
/// threads (admission) and shard workers (service) and snapshot by
/// anyone; cross-counter invariants hold exactly once quiescent. The
/// latency histogram's buckets are individually atomic, so one shared
/// histogram per tenant is safe under concurrent multi-shard writers.
class TenantStats {
 public:
  void OnSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void OnAccepted() { accepted_.fetch_add(1, std::memory_order_relaxed); }
  void OnShed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void OnQuotaShed() {
    shed_.fetch_add(1, std::memory_order_relaxed);
    quota_shed_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnOk() { ok_.fetch_add(1, std::memory_order_relaxed); }
  void OnFailed() { failed_.fetch_add(1, std::memory_order_relaxed); }
  void OnTimedOut() { timed_out_.fetch_add(1, std::memory_order_relaxed); }
  void OnRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void RecordLatency(std::uint64_t micros) { latency_.Record(micros); }

  [[nodiscard]] TenantSnapshot Snapshot() const {
    TenantSnapshot snap;
    snap.submitted = submitted_.load(std::memory_order_relaxed);
    snap.accepted = accepted_.load(std::memory_order_relaxed);
    snap.shed = shed_.load(std::memory_order_relaxed);
    snap.quota_shed = quota_shed_.load(std::memory_order_relaxed);
    snap.ok = ok_.load(std::memory_order_relaxed);
    snap.failed = failed_.load(std::memory_order_relaxed);
    snap.timed_out = timed_out_.load(std::memory_order_relaxed);
    snap.retries = retries_.load(std::memory_order_relaxed);
    snap.latency = latency_.Snapshot();
    return snap;
  }

 private:
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> quota_shed_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> retries_{0};
  LatencyHistogram latency_;
};

/// Immutable-after-construction tenant directory: id -> slot resolution,
/// per-slot weights and stats blocks, and the per-shard queue-slot cap
/// rule. Shared by reference between the Gateway (which owns it) and
/// every shard; all mutation after construction goes through the
/// per-slot TenantStats atomics, so concurrent use needs no lock.
class TenantTable {
 public:
  /// Builds the table. A config with id 0 customizes the default tenant;
  /// otherwise a default tenant {0, "default", weight 1} is prepended.
  /// Duplicate ids keep the first occurrence.
  explicit TenantTable(std::vector<TenantConfig> tenants);

  TenantTable(const TenantTable&) = delete;
  TenantTable& operator=(const TenantTable&) = delete;

  /// Slot for a tenant id; unknown ids resolve to the default slot 0.
  [[nodiscard]] std::size_t SlotFor(std::uint32_t id) const {
    const auto it = slots_.find(id);
    return it == slots_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::size_t size() const { return configs_.size(); }
  [[nodiscard]] const TenantConfig& config(std::size_t slot) const {
    return configs_[slot];
  }
  [[nodiscard]] std::uint64_t total_weight() const { return total_weight_; }

  [[nodiscard]] TenantStats& stats(std::size_t slot) const {
    return stats_[slot];
  }

  /// The weighted admission cap: how many of a shard's `watermark` queue
  /// slots this tenant may occupy at once. Weight 0 is a hard zero quota.
  /// A positive weight always yields at least one slot, so a starved
  /// tenant can make progress even when floor(...) would round to zero.
  [[nodiscard]] std::size_t QueueCap(std::size_t slot,
                                     std::size_t watermark) const {
    const std::uint32_t weight = configs_[slot].weight;
    if (weight == 0) return 0;
    const std::size_t share = watermark * weight / total_weight_;
    return share == 0 ? 1 : share;
  }

  [[nodiscard]] std::vector<TenantSnapshot> Snapshot() const;

 private:
  std::vector<TenantConfig> configs_;
  std::unordered_map<std::uint32_t, std::size_t> slots_;
  std::uint64_t total_weight_ = 1;
  /// Heap block so TenantStats (non-movable atomics) can sit in an array.
  std::unique_ptr<TenantStats[]> stats_;
};

}  // namespace mobivine::gateway
