// Bounded multi-producer single-consumer queue feeding a shard's worker
// thread. (Formerly misnamed BoundedMpmcQueue — the implementation was
// always single-consumer by design; the name now matches the contract,
// and debug builds assert it.)
//
// Producers (any client thread hitting Gateway::Submit) never block: a
// full or closed queue fails TryPush and the gateway sheds the request —
// backpressure is an admission decision, not a stalled caller. The single
// consumer blocks in Pop until an item or Close() arrives; after Close()
// the consumer drains whatever is already queued, then Pop returns false.
//
// A mutex + condvar ring buffer is deliberate: the consumer side performs
// simulated device I/O per item (microseconds to milliseconds), so queue
// synchronization is nowhere near the shard's critical path, and the
// blocking Pop gives an idle shard a real OS wait instead of a spin. The
// depth counter is a separate relaxed atomic so admission-control
// watermark checks never touch the lock.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace mobivine::gateway {

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity)
      : ring_(capacity > 0 ? capacity : 1) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Non-blocking producer side. False when full or closed (the caller
  /// sheds); true means the consumer will eventually pop the item.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || count_ == ring_.size()) return false;
      ring_[(head_ + count_) % ring_.size()] = std::move(item);
      ++count_;
      depth_.store(count_, std::memory_order_relaxed);
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking consumer side. False only when closed and drained. Must be
  /// called from exactly one thread over the queue's lifetime (the first
  /// popping thread claims the consumer role; debug builds assert it).
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    AssertSingleConsumer();
    not_empty_.wait(lock, [this] { return count_ > 0 || closed_; });
    if (count_ == 0) return false;
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    depth_.store(count_, std::memory_order_relaxed);
    return true;
  }

  /// Stop admitting; wake the consumer so it can drain and exit.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Approximate depth for watermark checks (exact under the lock, but
  /// read lock-free by producers deciding whether to shed).
  [[nodiscard]] std::size_t size() const {
    return depth_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

 private:
#ifndef NDEBUG
  // Called under mutex_; the first popper claims the consumer role and
  // any later Pop() from a different thread trips the assert.
  void AssertSingleConsumer() {
    if (consumer_ == std::thread::id{}) consumer_ = std::this_thread::get_id();
    assert(consumer_ == std::this_thread::get_id() &&
           "BoundedMpscQueue: Pop() from more than one thread");
  }
  std::thread::id consumer_;
#else
  void AssertSingleConsumer() {}
#endif

  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
  std::atomic<std::size_t> depth_{0};
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
};

}  // namespace mobivine::gateway
