#include "gateway/failover.h"

#include <algorithm>
#include <utility>

#include "support/trace.h"

namespace mobivine::gateway {

bool CircuitBreaker::Allow(std::uint64_t now_us) {
  if (threshold_ <= 0) return true;
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_us - opened_at_us_ < cooldown_us_) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      // One probe at a time; the rest wait for it to resolve.
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::OnSuccess() {
  consecutive_ = 0;
  probe_in_flight_ = false;
  state_ = State::kClosed;
}

bool CircuitBreaker::OnFailure(std::uint64_t now_us) {
  if (threshold_ <= 0) return false;
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to open, cooldown restarts.
    state_ = State::kOpen;
    opened_at_us_ = now_us;
    return true;
  }
  ++consecutive_;
  if (state_ == State::kClosed && consecutive_ >= threshold_) {
    state_ = State::kOpen;
    opened_at_us_ = now_us;
    return true;
  }
  return false;
}

FailoverEngine::FailoverEngine(const FailoverConfig& config,
                               ShardStats& stats, std::uint32_t shard_index)
    : config_(config),
      stats_(stats),
      injector_(config_.fault_plan, shard_index),
      breakers_{{config_.breaker_threshold, config_.breaker_cooldown_us},
                {config_.breaker_threshold, config_.breaker_cooldown_us},
                {config_.breaker_threshold, config_.breaker_cooldown_us}} {}

support::FaultDecision FailoverEngine::Admit(std::string_view platform_tag,
                                             std::string_view op_name) {
  if (!injector_.armed()) return support::FaultDecision{};
  support::FaultDecision decision = injector_.Decide(platform_tag, op_name);
  if (decision.action == support::FaultAction::kNone) return decision;
  stats_.OnFaultInjected();
  if (decision.action == support::FaultAction::kHang) {
    // The injector leaves the hang open-ended; the shard sized this
    // dispatch's patience (hedge threshold or capped deadline) just
    // before dispatching.
    decision.latency_us = std::max<std::uint64_t>(hang_budget_us_, 1);
  }
  return decision;
}

bool FailoverEngine::BreakerAllows(std::size_t platform_index,
                                   std::uint64_t now_us) {
  CircuitBreaker& breaker = breakers_[platform_index];
  const CircuitBreaker::State before = breaker.state();
  const bool allowed = breaker.Allow(now_us);
  if (allowed && before == CircuitBreaker::State::kOpen) {
    support::trace::Instant("gateway.breaker_half_open", "platform",
                            static_cast<std::int64_t>(platform_index));
  }
  return allowed;
}

void FailoverEngine::OnDispatchSuccess(std::size_t platform_index,
                                       std::uint64_t virt_latency_us) {
  CircuitBreaker& breaker = breakers_[platform_index];
  if (breaker.state() != CircuitBreaker::State::kClosed) {
    support::trace::Instant("gateway.breaker_close", "platform",
                            static_cast<std::int64_t>(platform_index));
  }
  breaker.OnSuccess();
  profiles_[platform_index].Record(virt_latency_us);
  ++profile_samples_[platform_index];
}

void FailoverEngine::OnDispatchFailure(std::size_t platform_index,
                                       std::uint64_t now_us) {
  if (breakers_[platform_index].OnFailure(now_us)) {
    stats_.OnBreakerOpen();
    support::trace::Instant("gateway.breaker_open", "platform",
                            static_cast<std::int64_t>(platform_index));
  }
}

std::uint64_t FailoverEngine::HedgeThresholdUs(std::size_t platform_index) {
  if (profile_samples_[platform_index] < kMinProfileSamples) {
    return config_.hedge_floor_us;
  }
  const std::uint64_t percentile =
      profiles_[platform_index].Snapshot().Percentile(config_.hedge_quantile);
  return std::max(percentile, config_.hedge_floor_us);
}

}  // namespace mobivine::gateway
