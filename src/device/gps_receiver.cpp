#include "device/gps_receiver.h"

#include "support/geo_units.h"

namespace mobivine::device {

GpsReceiver::GpsReceiver(sim::Scheduler& scheduler, sim::Rng& rng,
                         GpsConfig config)
    : scheduler_(scheduler), rng_(rng), config_(config) {}

const sim::LatencyModel& GpsReceiver::LatencyFor(GpsMode mode) const {
  switch (mode) {
    case GpsMode::kHighAccuracy:
      return config_.fix_latency_high;
    case GpsMode::kBalanced:
      return config_.fix_latency_balanced;
    case GpsMode::kLowPower:
      return config_.fix_latency_low;
  }
  return config_.fix_latency_balanced;
}

double GpsReceiver::NoiseFor(GpsMode mode) const {
  switch (mode) {
    case GpsMode::kHighAccuracy:
      return config_.noise_high_m;
    case GpsMode::kBalanced:
      return config_.noise_balanced_m;
    case GpsMode::kLowPower:
      return config_.noise_low_m;
  }
  return config_.noise_balanced_m;
}

GpsFix GpsReceiver::Measure(GpsMode mode) {
  GpsFix fix;
  fix.timestamp = scheduler_.now();
  if (track_.empty() || rng_.Bernoulli(config_.fix_failure_probability)) {
    fix.valid = false;
    return fix;
  }
  const sim::TrackFix truth = track_.PositionAt(scheduler_.now());
  const double sigma = NoiseFor(mode);
  // Isotropic horizontal noise: displace by Normal(0, sigma) along a
  // uniform bearing.
  const double error_m = rng_.NormalClamped(0.0, sigma, -4 * sigma, 4 * sigma);
  const double bearing = rng_.Uniform(0.0, 360.0);
  auto noisy = support::MoveAlongBearing(truth.latitude_deg,
                                         truth.longitude_deg, bearing,
                                         std::abs(error_m));
  fix.latitude_deg = noisy.latitude_deg;
  fix.longitude_deg = noisy.longitude_deg;
  fix.altitude_m = truth.altitude_m + rng_.NormalClamped(0, sigma, -50, 50);
  fix.speed_mps = truth.speed_mps;
  fix.heading_deg = truth.heading_deg;
  fix.horizontal_accuracy_m = sigma;
  fix.valid = true;
  return fix;
}

void GpsReceiver::RequestFix(GpsMode mode,
                             std::function<void(const GpsFix&)> callback) {
  const sim::SimTime delay = LatencyFor(mode).Sample(rng_);
  scheduler_.ScheduleAfter(delay, [this, mode, cb = std::move(callback)] {
    cb(Measure(mode));
  });
}

GpsFix GpsReceiver::BlockingFix(GpsMode mode) {
  scheduler_.AdvanceBy(LatencyFor(mode).Sample(rng_));
  return Measure(mode);
}

std::uint64_t GpsReceiver::StartPeriodicFixes(
    GpsMode mode, sim::SimTime interval,
    std::function<void(const GpsFix&)> callback) {
  const std::uint64_t id = next_subscription_++;
  auto cancelled = std::make_shared<bool>(false);
  // Self-rescheduling tick; stops silently once cancelled. The closure
  // captures itself weakly — the strong reference lives in
  // subscriptions_, so an abandoned subscription is reclaimed instead of
  // keeping itself alive through a shared_ptr cycle.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, mode, interval, cb = std::move(callback), cancelled,
           weak_tick = std::weak_ptr<std::function<void()>>(tick)] {
    if (*cancelled) return;
    cb(Measure(mode));
    if (auto self = weak_tick.lock()) {
      scheduler_.ScheduleAfter(interval, *self);
    }
  };
  scheduler_.ScheduleAfter(interval, *tick);
  subscriptions_[id] = Subscription{std::move(cancelled), std::move(tick)};
  return id;
}

void GpsReceiver::StopPeriodicFixes(std::uint64_t subscription_id) {
  auto it = subscriptions_.find(subscription_id);
  if (it == subscriptions_.end()) return;
  *it->second.cancelled = true;
  subscriptions_.erase(it);
}

sim::TrackFix GpsReceiver::TruePositionNow() const {
  return track_.PositionAt(scheduler_.now());
}

sim::SimTime GpsReceiver::ExpectedFixLatency(GpsMode mode) const {
  return LatencyFor(mode).Mean();
}

}  // namespace mobivine::device
