#include "device/network.h"

namespace mobivine::device {

const char* ToString(NetError error) {
  switch (error) {
    case NetError::kNone:
      return "none";
    case NetError::kHostUnreachable:
      return "host-unreachable";
    case NetError::kTimeout:
      return "timeout";
  }
  return "?";
}

SimNetwork::SimNetwork(sim::Scheduler& scheduler, sim::Rng& rng,
                       NetworkConfig config)
    : scheduler_(scheduler), rng_(rng), config_(config) {}

void SimNetwork::RegisterHost(const std::string& host, HttpHandler handler) {
  hosts_[host] = std::move(handler);
}

void SimNetwork::UnregisterHost(const std::string& host) { hosts_.erase(host); }

bool SimNetwork::HasHost(const std::string& host) const {
  return hosts_.count(host) > 0;
}

sim::SimTime SimNetwork::TransferTime(std::size_t bytes) const {
  if (config_.bandwidth_bytes_per_sec <= 0) return sim::SimTime::Zero();
  const double seconds =
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  return sim::SimTime::Micros(static_cast<std::int64_t>(seconds * 1e6));
}

NetResult SimNetwork::Exchange(const HttpRequest& request,
                               sim::SimTime& rtt_out) {
  ++requests_sent_;
  NetResult result;

  const bool request_lost = rng_.Bernoulli(config_.loss_probability);
  const bool response_lost = rng_.Bernoulli(config_.loss_probability);
  if (request_lost || response_lost) {
    result.error = NetError::kTimeout;
    rtt_out = config_.timeout;
    return result;
  }

  const sim::SimTime uplink = config_.one_way_latency.Sample(rng_) +
                              TransferTime(request.WireSize());
  auto it = hosts_.find(request.url.host);
  if (it == hosts_.end()) {
    // ICMP-style unreachable comes back after one round trip with no
    // payload transfer on the return path.
    result.error = NetError::kHostUnreachable;
    rtt_out = uplink + config_.one_way_latency.Sample(rng_);
    return result;
  }

  result.response = it->second(request);
  result.error = NetError::kNone;
  const sim::SimTime downlink = config_.one_way_latency.Sample(rng_) +
                                TransferTime(result.response.WireSize());
  rtt_out = uplink + downlink;
  return result;
}

void SimNetwork::Send(HttpRequest request,
                      std::function<void(const NetResult&)> callback) {
  sim::SimTime rtt;
  // The handler runs "on the server" but is evaluated eagerly; only the
  // completion is deferred by the round-trip time, which preserves the
  // observable ordering for a single-device simulation.
  NetResult result = Exchange(request, rtt);
  scheduler_.ScheduleAfter(rtt, [cb = std::move(callback),
                                 result = std::move(result)] { cb(result); });
}

NetResult SimNetwork::BlockingSend(const HttpRequest& request) {
  sim::SimTime rtt;
  NetResult result = Exchange(request, rtt);
  scheduler_.AdvanceBy(rtt);
  return result;
}

}  // namespace mobivine::device
