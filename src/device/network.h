// Simulated packet-radio network with named HTTP hosts.
//
// Hosts are registered by name (and optional port) with a handler function;
// a request charges round-trip latency plus a bandwidth-proportional
// transfer time, may be lost (-> timeout), and then delivers the handler's
// response. This carries the workforce-management example's server side
// and the Http proxies of all three platforms.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "device/http_message.h"
#include "sim/clock.h"
#include "sim/latency_model.h"
#include "sim/random.h"
#include "sim/scheduler.h"

namespace mobivine::device {

/// Outcome of a simulated HTTP exchange.
enum class NetError { kNone, kHostUnreachable, kTimeout };

[[nodiscard]] const char* ToString(NetError error);

struct NetResult {
  NetError error = NetError::kNone;
  HttpResponse response;  ///< valid only when error == kNone
};

/// Server-side request handler.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct NetworkConfig {
  /// One-way propagation latency (2.5G-era radio).
  sim::LatencyModel one_way_latency =
      sim::LatencyModel::Normal(sim::SimTime::Millis(35),
                                sim::SimTime::Millis(5),
                                sim::SimTime::Millis(10));
  /// Payload transfer rate, bytes per second (~128 kbit/s EDGE).
  double bandwidth_bytes_per_sec = 16000.0;
  /// Probability a request or response is lost (each direction).
  double loss_probability = 0.0;
  /// Virtual time after which a lost exchange reports kTimeout.
  sim::SimTime timeout = sim::SimTime::Seconds(30);
};

class SimNetwork {
 public:
  SimNetwork(sim::Scheduler& scheduler, sim::Rng& rng,
             NetworkConfig config = {});

  /// Register a host. `host` matches Url::host; requests to unknown hosts
  /// complete with kHostUnreachable after one round trip.
  void RegisterHost(const std::string& host, HttpHandler handler);
  void UnregisterHost(const std::string& host);
  bool HasHost(const std::string& host) const;

  /// Asynchronous exchange: latency is charged on the virtual clock and
  /// `callback` fires when the response (or error) arrives.
  void Send(HttpRequest request, std::function<void(const NetResult&)> callback);

  /// Blocking exchange: advances the virtual clock by the full round trip
  /// and returns the result. Models 2009 synchronous HTTP APIs
  /// (HttpConnection on S60, DefaultHttpClient on Android).
  [[nodiscard]] NetResult BlockingSend(const HttpRequest& request);

  /// Virtual duration a payload of `bytes` takes to transfer.
  [[nodiscard]] sim::SimTime TransferTime(std::size_t bytes) const;

  std::uint64_t requests_sent() const { return requests_sent_; }

 private:
  NetResult Exchange(const HttpRequest& request, sim::SimTime& rtt_out);

  sim::Scheduler& scheduler_;
  sim::Rng& rng_;
  NetworkConfig config_;
  std::map<std::string, HttpHandler> hosts_;
  std::uint64_t requests_sent_ = 0;
};

}  // namespace mobivine::device
