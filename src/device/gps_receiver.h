// Simulated GPS receiver.
//
// The receiver plays back a GeoTrack (the device's true movement), adds
// configurable measurement noise, and charges a time-to-fix latency that
// depends on the requested accuracy mode — this is what makes S60's
// criteria-driven LocationProvider and Android's provider lookup behave
// differently on top of the same hardware.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/clock.h"
#include "sim/geo_track.h"
#include "sim/latency_model.h"
#include "sim/random.h"
#include "sim/scheduler.h"

namespace mobivine::device {

/// A measured position as delivered by the receiver.
struct GpsFix {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
  double altitude_m = 0.0;
  double speed_mps = 0.0;
  double heading_deg = 0.0;
  double horizontal_accuracy_m = 0.0;  ///< 1-sigma error estimate
  sim::SimTime timestamp;
  bool valid = false;
};

/// Receiver operating mode; trades fix latency for accuracy.
enum class GpsMode {
  kHighAccuracy,  ///< slow first fix, small noise (assisted GPS off)
  kBalanced,      ///< default
  kLowPower,      ///< fast coarse fix (cell-tower quality)
};

struct GpsConfig {
  /// Time-to-fix per mode.
  sim::LatencyModel fix_latency_high =
      sim::LatencyModel::Normal(sim::SimTime::Millis(120),
                                sim::SimTime::Millis(8),
                                sim::SimTime::Millis(60));
  sim::LatencyModel fix_latency_balanced =
      sim::LatencyModel::Normal(sim::SimTime::Millis(40),
                                sim::SimTime::Millis(4),
                                sim::SimTime::Millis(15));
  sim::LatencyModel fix_latency_low =
      sim::LatencyModel::Normal(sim::SimTime::Millis(12),
                                sim::SimTime::Millis(2),
                                sim::SimTime::Millis(4));
  /// 1-sigma horizontal noise per mode, meters.
  double noise_high_m = 4.0;
  double noise_balanced_m = 12.0;
  double noise_low_m = 60.0;
  /// Probability a fix attempt fails (no satellites).
  double fix_failure_probability = 0.0;
};

class GpsReceiver {
 public:
  GpsReceiver(sim::Scheduler& scheduler, sim::Rng& rng, GpsConfig config = {});

  void set_track(sim::GeoTrack track) { track_ = std::move(track); }
  const sim::GeoTrack& track() const { return track_; }

  /// Asynchronous fix: charges the mode's time-to-fix, then invokes the
  /// callback with a (possibly invalid) fix.
  void RequestFix(GpsMode mode, std::function<void(const GpsFix&)> callback);

  /// Synchronous fix at the current instant: advances the virtual clock by
  /// the time-to-fix and returns the measurement. Models the blocking
  /// getLocation()-style calls of 2009 APIs.
  [[nodiscard]] GpsFix BlockingFix(GpsMode mode);

  /// Periodic fixes every `interval` until the returned subscription id is
  /// passed to StopPeriodicFixes.
  std::uint64_t StartPeriodicFixes(GpsMode mode, sim::SimTime interval,
                                   std::function<void(const GpsFix&)> callback);
  void StopPeriodicFixes(std::uint64_t subscription_id);

  /// True (noise-free) position, for test assertions.
  [[nodiscard]] sim::TrackFix TruePositionNow() const;

  /// Expected blocking-fix latency for a mode (used by Figure 10
  /// calibration assertions).
  [[nodiscard]] sim::SimTime ExpectedFixLatency(GpsMode mode) const;

 private:
  GpsFix Measure(GpsMode mode);
  const sim::LatencyModel& LatencyFor(GpsMode mode) const;
  double NoiseFor(GpsMode mode) const;

  sim::Scheduler& scheduler_;
  sim::Rng& rng_;
  GpsConfig config_;
  sim::GeoTrack track_;
  std::uint64_t next_subscription_ = 1;
  struct Subscription {
    // Flipped by StopPeriodicFixes; scheduled ticks check it and bail.
    std::shared_ptr<bool> cancelled;
    // The sole strong reference to the self-rescheduling tick closure —
    // the closure itself holds only a weak_ptr, so dropping this entry
    // (stop or receiver destruction) frees the chain instead of leaving
    // a shared_ptr cycle alive.
    std::shared_ptr<std::function<void()>> tick;
  };
  std::unordered_map<std::uint64_t, Subscription> subscriptions_;
};

}  // namespace mobivine::device
