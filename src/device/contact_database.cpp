#include "device/contact_database.h"

#include <algorithm>

#include "support/strings.h"

namespace mobivine::device {

std::int64_t ContactDatabase::Add(const std::string& display_name,
                                  const std::string& phone_number,
                                  const std::string& email) {
  ContactRecord record;
  record.id = next_id_++;
  record.display_name = display_name;
  record.phone_number = phone_number;
  record.email = email;
  records_.push_back(std::move(record));
  return records_.back().id;
}

bool ContactDatabase::Remove(std::int64_t id) {
  auto it = std::remove_if(records_.begin(), records_.end(),
                           [id](const ContactRecord& record) {
                             return record.id == id;
                           });
  const bool removed = it != records_.end();
  records_.erase(it, records_.end());
  return removed;
}

void ContactDatabase::Clear() { records_.clear(); }

std::optional<ContactRecord> ContactDatabase::FindById(std::int64_t id) const {
  for (const auto& record : records_) {
    if (record.id == id) return record;
  }
  return std::nullopt;
}

std::optional<ContactRecord> ContactDatabase::FindByNumber(
    const std::string& phone_number) const {
  for (const auto& record : records_) {
    if (record.phone_number == phone_number) return record;
  }
  return std::nullopt;
}

std::vector<ContactRecord> ContactDatabase::FindByName(
    const std::string& fragment) const {
  std::vector<ContactRecord> out;
  const std::string needle = support::ToLower(fragment);
  for (const auto& record : records_) {
    if (support::ToLower(record.display_name).find(needle) !=
        std::string::npos) {
      out.push_back(record);
    }
  }
  return out;
}

}  // namespace mobivine::device
