// The handset's calendar store — sibling of ContactDatabase for the
// paper's §7 "calendaring" interface. Platform substrates expose it
// through their own API shapes; notably, iPhone OS 2009 exposes it NOT AT
// ALL (no public calendar API before EventKit), making Calendar the second
// non-universal proxy after Call.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mobivine::device {

struct EventRecord {
  std::int64_t id = 0;
  std::string title;
  long long start_ms = 0;  ///< virtual milliseconds since simulation start
  long long end_ms = 0;
  std::string location;
};

class CalendarStore {
 public:
  /// Insert an event; returns its id. end must be >= start.
  std::int64_t Add(const std::string& title, long long start_ms,
                   long long end_ms, const std::string& location = "");

  bool Remove(std::int64_t id);
  void Clear();

  [[nodiscard]] const std::vector<EventRecord>& All() const { return events_; }
  [[nodiscard]] std::optional<EventRecord> FindById(std::int64_t id) const;
  /// Events overlapping [from_ms, to_ms), ordered by start time.
  [[nodiscard]] std::vector<EventRecord> Between(long long from_ms,
                                                 long long to_ms) const;
  /// The earliest event starting at or after `now_ms`.
  [[nodiscard]] std::optional<EventRecord> NextAfter(long long now_ms) const;

  std::size_t size() const { return events_.size(); }

 private:
  std::int64_t next_id_ = 1;
  std::vector<EventRecord> events_;
};

}  // namespace mobivine::device
