#include "device/calendar_store.h"

#include <algorithm>
#include <stdexcept>

namespace mobivine::device {

std::int64_t CalendarStore::Add(const std::string& title, long long start_ms,
                                long long end_ms,
                                const std::string& location) {
  if (end_ms < start_ms) {
    throw std::invalid_argument("event ends before it starts");
  }
  EventRecord record;
  record.id = next_id_++;
  record.title = title;
  record.start_ms = start_ms;
  record.end_ms = end_ms;
  record.location = location;
  events_.push_back(std::move(record));
  return events_.back().id;
}

bool CalendarStore::Remove(std::int64_t id) {
  auto it = std::remove_if(events_.begin(), events_.end(),
                           [id](const EventRecord& e) { return e.id == id; });
  const bool removed = it != events_.end();
  events_.erase(it, events_.end());
  return removed;
}

void CalendarStore::Clear() { events_.clear(); }

std::optional<EventRecord> CalendarStore::FindById(std::int64_t id) const {
  for (const auto& event : events_) {
    if (event.id == id) return event;
  }
  return std::nullopt;
}

std::vector<EventRecord> CalendarStore::Between(long long from_ms,
                                                long long to_ms) const {
  std::vector<EventRecord> out;
  for (const auto& event : events_) {
    if (event.start_ms < to_ms && event.end_ms > from_ms) {
      out.push_back(event);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.start_ms < b.start_ms;
            });
  return out;
}

std::optional<EventRecord> CalendarStore::NextAfter(long long now_ms) const {
  std::optional<EventRecord> best;
  for (const auto& event : events_) {
    if (event.start_ms >= now_ms &&
        (!best || event.start_ms < best->start_ms)) {
      best = event;
    }
  }
  return best;
}

}  // namespace mobivine::device
