#include "device/http_message.h"

#include <cctype>
#include <sstream>

#include "support/strings.h"

namespace mobivine::device {

using support::EqualsIgnoreCase;

std::string Url::ToString() const {
  std::ostringstream out;
  out << scheme << "://" << host;
  if ((scheme == "http" && port != 80) || (scheme == "https" && port != 443)) {
    out << ':' << port;
  }
  out << path;
  if (!query.empty()) out << '?' << query;
  return out.str();
}

std::optional<Url> ParseUrl(std::string_view raw) {
  Url url;
  size_t scheme_end = raw.find("://");
  if (scheme_end == std::string_view::npos) return std::nullopt;
  url.scheme = support::ToLower(raw.substr(0, scheme_end));
  if (url.scheme != "http" && url.scheme != "https") return std::nullopt;
  url.port = url.scheme == "https" ? 443 : 80;

  std::string_view rest = raw.substr(scheme_end + 3);
  if (rest.empty()) return std::nullopt;

  size_t path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  if (authority.empty()) return std::nullopt;

  size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    long long port = 0;
    if (!support::ParseInt(authority.substr(colon + 1), port) || port <= 0 ||
        port > 65535) {
      return std::nullopt;
    }
    url.port = static_cast<int>(port);
    url.host = std::string(authority.substr(0, colon));
  } else {
    url.host = std::string(authority);
  }
  if (url.host.empty()) return std::nullopt;

  if (path_start == std::string_view::npos) {
    url.path = "/";
    return url;
  }
  std::string_view path_and_query = rest.substr(path_start);
  size_t question = path_and_query.find('?');
  if (question == std::string_view::npos) {
    url.path = std::string(path_and_query);
  } else {
    url.path = std::string(path_and_query.substr(0, question));
    url.query = std::string(path_and_query.substr(question + 1));
  }
  return url;
}

namespace {
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string UrlDecode(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '+') {
      out += ' ';
    } else if (raw[i] == '%' && i + 2 < raw.size() &&
               HexValue(raw[i + 1]) >= 0 && HexValue(raw[i + 2]) >= 0) {
      out += static_cast<char>(HexValue(raw[i + 1]) * 16 + HexValue(raw[i + 2]));
      i += 2;
    } else {
      out += raw[i];
    }
  }
  return out;
}
}  // namespace

std::vector<std::pair<std::string, std::string>> ParseQuery(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> out;
  if (query.empty()) return out;
  for (const auto& piece : support::Split(query, '&')) {
    if (piece.empty()) continue;
    size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(UrlDecode(piece), "");
    } else {
      out.emplace_back(UrlDecode(piece.substr(0, eq)),
                       UrlDecode(piece.substr(eq + 1)));
    }
  }
  return out;
}

std::string UrlEncode(std::string_view raw) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~') {
      out += static_cast<char>(c);
    } else if (c == ' ') {
      out += '+';
    } else {
      out += '%';
      out += hex[c >> 4];
      out += hex[c & 0xF];
    }
  }
  return out;
}

void HeaderMap::Set(std::string name, std::string value) {
  for (auto& [existing, existing_value] : entries_) {
    if (EqualsIgnoreCase(existing, name)) {
      existing_value = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string> HeaderMap::Get(std::string_view name) const {
  for (const auto& [existing, value] : entries_) {
    if (EqualsIgnoreCase(existing, name)) return value;
  }
  return std::nullopt;
}

std::string HeaderMap::GetOr(std::string_view name, std::string fallback) const {
  auto value = Get(name);
  return value ? *value : std::move(fallback);
}

bool HeaderMap::Has(std::string_view name) const {
  return Get(name).has_value();
}

namespace {
std::size_t HeadersWireSize(const HeaderMap& headers) {
  std::size_t size = 0;
  for (const auto& [name, value] : headers.entries()) {
    size += name.size() + 2 + value.size() + 2;  // "Name: value\r\n"
  }
  return size;
}
}  // namespace

std::size_t HttpRequest::WireSize() const {
  return method.size() + 1 + url.path.size() +
         (url.query.empty() ? 0 : url.query.size() + 1) + 11 /* " HTTP/1.1\r\n" */ +
         HeadersWireSize(headers) + 2 + body.size();
}

std::size_t HttpResponse::WireSize() const {
  return 9 /* "HTTP/1.1 " */ + 3 + 1 + reason.size() + 2 +
         HeadersWireSize(headers) + 2 + body.size();
}

HttpResponse HttpResponse::Ok(std::string body, std::string content_type) {
  HttpResponse response;
  response.status = 200;
  response.reason = "OK";
  response.headers.Set("Content-Type", std::move(content_type));
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::NotFound(std::string message) {
  HttpResponse response;
  response.status = 404;
  response.reason = "Not Found";
  response.body = std::move(message);
  return response;
}

HttpResponse HttpResponse::BadRequest(std::string message) {
  HttpResponse response;
  response.status = 400;
  response.reason = "Bad Request";
  response.body = std::move(message);
  return response;
}

HttpResponse HttpResponse::ServerError(std::string message) {
  HttpResponse response;
  response.status = 500;
  response.reason = "Internal Server Error";
  response.body = std::move(message);
  return response;
}

std::string ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 204:
      return "No Content";
    case 301:
      return "Moved Permanently";
    case 302:
      return "Found";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 408:
      return "Request Timeout";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

}  // namespace mobivine::device
