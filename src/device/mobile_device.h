// The simulated handset: one scheduler, one RNG, and the three hardware
// blocks every platform substrate binds to.
//
// A MobileDevice is the unit of experiment setup — construct one, give the
// GPS a track, register network hosts and phone subscribers, then boot a
// platform (android::AndroidPlatform, s60::S60Platform or
// webview::WebViewPlatform) on top of it.
#pragma once

#include <cstdint>
#include <string>

#include "device/calendar_store.h"
#include "device/cellular_modem.h"
#include "device/contact_database.h"
#include "device/gps_receiver.h"
#include "device/network.h"
#include "sim/random.h"
#include "sim/scheduler.h"

namespace mobivine::device {

struct DeviceConfig {
  std::uint64_t seed = 42;
  std::string own_number = "+15550100";
  GpsConfig gps;
  ModemConfig modem;
  NetworkConfig network;
};

class MobileDevice {
 public:
  explicit MobileDevice(DeviceConfig config = {});

  MobileDevice(const MobileDevice&) = delete;
  MobileDevice& operator=(const MobileDevice&) = delete;

  sim::Scheduler& scheduler() { return scheduler_; }
  sim::Rng& rng() { return rng_; }
  GpsReceiver& gps() { return gps_; }
  CellularModem& modem() { return modem_; }
  SimNetwork& network() { return network_; }
  ContactDatabase& contacts() { return contacts_; }
  CalendarStore& calendar() { return calendar_; }
  const std::string& own_number() const { return own_number_; }

  /// Convenience: run the simulation for a stretch of virtual time.
  void RunFor(sim::SimTime duration) { scheduler_.RunFor(duration); }
  /// Drain every pending event (bounded by `limit` as a runaway guard).
  void RunAll(std::size_t limit = 1'000'000) { scheduler_.Run(limit); }

 private:
  sim::Scheduler scheduler_;
  sim::Rng rng_;
  GpsReceiver gps_;
  CellularModem modem_;
  SimNetwork network_;
  ContactDatabase contacts_;
  CalendarStore calendar_;
  std::string own_number_;
};

}  // namespace mobivine::device
