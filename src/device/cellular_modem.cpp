#include "device/cellular_modem.h"

#include "support/logging.h"

namespace mobivine::device {

const char* ToString(SmsStatus status) {
  switch (status) {
    case SmsStatus::kSent:
      return "sent";
    case SmsStatus::kDelivered:
      return "delivered";
    case SmsStatus::kFailedRadio:
      return "failed-radio";
    case SmsStatus::kFailedUnreachable:
      return "failed-unreachable";
  }
  return "?";
}

const char* ToString(CallState state) {
  switch (state) {
    case CallState::kIdle:
      return "idle";
    case CallState::kDialing:
      return "dialing";
    case CallState::kRinging:
      return "ringing";
    case CallState::kConnected:
      return "connected";
    case CallState::kEnded:
      return "ended";
    case CallState::kFailed:
      return "failed";
  }
  return "?";
}

CellularModem::CellularModem(sim::Scheduler& scheduler, sim::Rng& rng,
                             ModemConfig config)
    : scheduler_(scheduler), rng_(rng), config_(config) {}

void CellularModem::RegisterSubscriber(const std::string& number) {
  subscribers_.insert(number);
}

bool CellularModem::IsRegistered(const std::string& number) const {
  return subscribers_.count(number) > 0;
}

int CellularModem::SegmentCount(const std::string& text) const {
  const int per = config_.sms_segment_chars;
  if (text.empty()) return 1;
  return static_cast<int>((text.size() + per - 1) / per);
}

bool CellularModem::NextTransmitFails() {
  if (injected_failures_ > 0) {
    --injected_failures_;
    return true;
  }
  return rng_.Bernoulli(config_.sms_radio_failure_probability);
}

std::uint64_t CellularModem::SendSms(
    const std::string& destination, const std::string& text,
    std::function<void(const SmsResult&)> callback) {
  const std::uint64_t id = next_message_id_++;
  PendingSms pending;
  pending.id = id;
  pending.destination = destination;
  pending.segments = SegmentCount(text);
  pending.callback = std::move(callback);
  sms_queue_.push_back(std::move(pending));
  PumpSmsQueue();
  return id;
}

SmsResult CellularModem::BlockingSubmit(
    const std::string& destination, const std::string& text,
    std::function<void(const SmsResult&)> delivery_callback) {
  SmsResult result;
  result.message_id = next_message_id_++;
  result.segments = SegmentCount(text);
  sim::SimTime total = sim::SimTime::Zero();
  for (int i = 0; i < result.segments; ++i) {
    total += config_.sms_transmit.Sample(rng_);
  }
  scheduler_.AdvanceBy(total);
  if (NextTransmitFails()) {
    result.status = SmsStatus::kFailedRadio;
    return result;
  }
  if (!IsRegistered(destination)) {
    result.status = SmsStatus::kFailedUnreachable;
    return result;
  }
  result.status = SmsStatus::kSent;
  if (delivery_callback) {
    const sim::SimTime report = config_.delivery_report_delay.Sample(rng_);
    scheduler_.ScheduleAfter(
        report, [cb = std::move(delivery_callback), id = result.message_id,
                 segments = result.segments] {
          SmsResult delivered;
          delivered.message_id = id;
          delivered.segments = segments;
          delivered.status = SmsStatus::kDelivered;
          cb(delivered);
        });
  }
  return result;
}

void CellularModem::PumpSmsQueue() {
  if (sms_in_flight_ || sms_queue_.empty()) return;
  sms_in_flight_ = true;
  PendingSms message = std::move(sms_queue_.front());
  sms_queue_.pop_front();

  // Charge one transmit latency per segment.
  sim::SimTime total = sim::SimTime::Zero();
  for (int i = 0; i < message.segments; ++i) {
    total += config_.sms_transmit.Sample(rng_);
  }
  scheduler_.ScheduleAfter(total, [this, message = std::move(message)] {
    SmsResult result;
    result.message_id = message.id;
    result.segments = message.segments;
    if (NextTransmitFails()) {
      result.status = SmsStatus::kFailedRadio;
      if (message.callback) message.callback(result);
    } else if (!IsRegistered(message.destination)) {
      result.status = SmsStatus::kFailedUnreachable;
      if (message.callback) message.callback(result);
    } else {
      result.status = SmsStatus::kSent;
      if (message.callback) message.callback(result);
      // Delivery report arrives later.
      const sim::SimTime report = config_.delivery_report_delay.Sample(rng_);
      scheduler_.ScheduleAfter(
          report, [cb = message.callback, id = message.id,
                   segments = message.segments] {
            if (!cb) return;
            SmsResult delivered;
            delivered.message_id = id;
            delivered.segments = segments;
            delivered.status = SmsStatus::kDelivered;
            cb(delivered);
          });
    }
    sms_in_flight_ = false;
    PumpSmsQueue();
  });
}

void CellularModem::TransitionCall(CallState next) {
  call_state_ = next;
  if (call_listener_) call_listener_(next);
}

bool CellularModem::Dial(const std::string& number, CallListener listener) {
  if (call_state_ == CallState::kDialing || call_state_ == CallState::kRinging ||
      call_state_ == CallState::kConnected) {
    return false;  // busy
  }
  call_listener_ = std::move(listener);
  const std::uint64_t generation = ++call_generation_;
  TransitionCall(CallState::kDialing);

  scheduler_.ScheduleAfter(
      config_.dial_latency.Sample(rng_), [this, number, generation] {
        if (generation != call_generation_ ||
            call_state_ != CallState::kDialing) {
          return;
        }
        if (!IsRegistered(number)) {
          TransitionCall(CallState::kFailed);
          return;
        }
        TransitionCall(CallState::kRinging);
        scheduler_.ScheduleAfter(config_.ring_to_answer.Sample(rng_),
                                 [this, generation] {
                                   if (generation != call_generation_ ||
                                       call_state_ != CallState::kRinging) {
                                     return;
                                   }
                                   TransitionCall(CallState::kConnected);
                                 });
      });
  return true;
}

void CellularModem::HangUp() {
  if (call_state_ == CallState::kIdle || call_state_ == CallState::kEnded ||
      call_state_ == CallState::kFailed) {
    return;
  }
  ++call_generation_;  // cancel any in-flight transitions
  TransitionCall(CallState::kEnded);
}

}  // namespace mobivine::device
