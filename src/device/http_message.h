// HTTP request/response value types and URL parsing, shared between the
// simulated network, the platform HTTP stacks, and the server-side
// application in the workforce-management example.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mobivine::device {

/// Parsed absolute URL: scheme://host[:port]/path[?query]
struct Url {
  std::string scheme;  // "http"
  std::string host;
  int port = 80;
  std::string path = "/";
  std::string query;  // without '?'

  [[nodiscard]] std::string ToString() const;
};

/// Parse an absolute URL. Returns nullopt for anything that is not
/// http(s)://host[:port][/path][?query].
[[nodiscard]] std::optional<Url> ParseUrl(std::string_view url);

/// Decode a query string into key/value pairs ('+' and %XX decoded).
[[nodiscard]] std::vector<std::pair<std::string, std::string>> ParseQuery(
    std::string_view query);

/// Percent-encode a query component.
[[nodiscard]] std::string UrlEncode(std::string_view raw);

/// Case-insensitive header map (HTTP header names compare case-insensitively).
class HeaderMap {
 public:
  void Set(std::string name, std::string value);
  [[nodiscard]] std::optional<std::string> Get(std::string_view name) const;
  [[nodiscard]] std::string GetOr(std::string_view name,
                                  std::string fallback) const;
  [[nodiscard]] bool Has(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct HttpRequest {
  std::string method = "GET";
  Url url;
  HeaderMap headers;
  std::string body;

  [[nodiscard]] std::size_t WireSize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  HeaderMap headers;
  std::string body;

  static HttpResponse Ok(std::string body,
                         std::string content_type = "text/plain");
  static HttpResponse NotFound(std::string message = "not found");
  static HttpResponse BadRequest(std::string message = "bad request");
  static HttpResponse ServerError(std::string message = "internal error");

  [[nodiscard]] std::size_t WireSize() const;
};

/// Canonical reason phrase for a status code ("OK", "Not Found", ...).
[[nodiscard]] std::string ReasonPhrase(int status);

}  // namespace mobivine::device
