// The handset's contact store — shared hardware-level data that each
// platform substrate exposes through its own (deliberately different)
// PIM API: Android's content-provider cursors, J2ME's JSR-75 PIM lists,
// iPhone's AddressBook C-style calls.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mobivine::device {

struct ContactRecord {
  std::int64_t id = 0;
  std::string display_name;
  std::string phone_number;
  std::string email;
};

class ContactDatabase {
 public:
  /// Insert a contact; returns its id.
  std::int64_t Add(const std::string& display_name,
                   const std::string& phone_number,
                   const std::string& email = "");

  bool Remove(std::int64_t id);
  void Clear();

  [[nodiscard]] const std::vector<ContactRecord>& All() const {
    return records_;
  }
  [[nodiscard]] std::optional<ContactRecord> FindById(std::int64_t id) const;
  [[nodiscard]] std::optional<ContactRecord> FindByNumber(
      const std::string& phone_number) const;
  /// Case-insensitive substring match on the display name.
  [[nodiscard]] std::vector<ContactRecord> FindByName(
      const std::string& fragment) const;

  std::size_t size() const { return records_.size(); }

 private:
  std::int64_t next_id_ = 1;
  std::vector<ContactRecord> records_;
};

}  // namespace mobivine::device
