// Simulated cellular modem: SMS transmit queue and a voice-call state
// machine.
//
// SMS: messages are serialized through a single radio channel; each send
// charges a transmit latency, may fail with a configurable probability,
// and produces an asynchronous delivery report. Messages longer than one
// GSM segment (160 chars) are split and charged per segment.
//
// Voice: Dial() walks Idle -> Dialing -> Ringing -> Connected (or
// -> Failed if the callee is unreachable), reporting each transition to a
// listener; HangUp() ends the call from either side.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_set>

#include "sim/clock.h"
#include "sim/latency_model.h"
#include "sim/random.h"
#include "sim/scheduler.h"

namespace mobivine::device {

// ---------------------------------------------------------------------------
// SMS
// ---------------------------------------------------------------------------

enum class SmsStatus {
  kSent,              ///< accepted by the network
  kDelivered,         ///< delivery report from the recipient
  kFailedRadio,       ///< radio-level transmit failure
  kFailedUnreachable  ///< destination not registered on the network
};

[[nodiscard]] const char* ToString(SmsStatus status);

struct SmsResult {
  std::uint64_t message_id = 0;
  SmsStatus status = SmsStatus::kFailedRadio;
  int segments = 0;
};

// ---------------------------------------------------------------------------
// Voice calls
// ---------------------------------------------------------------------------

enum class CallState { kIdle, kDialing, kRinging, kConnected, kEnded, kFailed };

[[nodiscard]] const char* ToString(CallState state);

/// Observer for call progress; every transition is reported once.
using CallListener = std::function<void(CallState)>;

struct ModemConfig {
  /// Per-segment SMS transmit latency (paper's S60 sendSMS ~15.6 ms points
  /// at a fast modem path; Android's 52.7 ms includes framework cost, which
  /// the platform substrate charges separately).
  sim::LatencyModel sms_transmit =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(12.0),
                                sim::SimTime::MillisF(1.0),
                                sim::SimTime::MillisF(6.0));
  sim::LatencyModel delivery_report_delay =
      sim::LatencyModel::UniformIn(sim::SimTime::Millis(400),
                                   sim::SimTime::Millis(1500));
  double sms_radio_failure_probability = 0.0;
  int sms_segment_chars = 160;

  sim::LatencyModel dial_latency =
      sim::LatencyModel::UniformIn(sim::SimTime::Millis(300),
                                   sim::SimTime::Millis(800));
  sim::LatencyModel ring_to_answer =
      sim::LatencyModel::UniformIn(sim::SimTime::Seconds(1),
                                   sim::SimTime::Seconds(4));
};

class CellularModem {
 public:
  CellularModem(sim::Scheduler& scheduler, sim::Rng& rng,
                ModemConfig config = {});

  // --- network population --------------------------------------------------
  /// Numbers registered on the simulated network; unknown numbers are
  /// unreachable for both SMS delivery and calls.
  void RegisterSubscriber(const std::string& number);
  bool IsRegistered(const std::string& number) const;

  // --- SMS -------------------------------------------------------------
  /// Queue a message. The callback fires once with kSent/kFailed*, then —
  /// for registered destinations — a second time with kDelivered.
  /// Returns the message id.
  std::uint64_t SendSms(const std::string& destination, const std::string& text,
                        std::function<void(const SmsResult&)> callback);

  /// Blocking submit for platforms whose SMS API is synchronous (J2ME's
  /// MessageConnection.send): advances the virtual clock by the transmit
  /// time and returns the submit outcome (kSent / kFailedRadio /
  /// kFailedUnreachable). On success a delivery report is still scheduled
  /// asynchronously and reported via `delivery_callback` if provided.
  SmsResult BlockingSubmit(
      const std::string& destination, const std::string& text,
      std::function<void(const SmsResult&)> delivery_callback = nullptr);

  /// Number of GSM segments `text` occupies.
  [[nodiscard]] int SegmentCount(const std::string& text) const;

  std::size_t pending_sms_count() const { return sms_queue_.size(); }

  // --- Voice -----------------------------------------------------------
  /// Start a call. Only one call at a time; returns false if busy.
  bool Dial(const std::string& number, CallListener listener);
  /// End the active call (no-op when idle).
  void HangUp();
  CallState call_state() const { return call_state_; }

  /// Test hook: make the next `n` radio transmissions fail regardless of
  /// the configured probability.
  void InjectRadioFailures(int n) { injected_failures_ = n; }

 private:
  struct PendingSms {
    std::uint64_t id;
    std::string destination;
    int segments;
    std::function<void(const SmsResult&)> callback;
  };

  void PumpSmsQueue();
  bool NextTransmitFails();
  void TransitionCall(CallState next);

  sim::Scheduler& scheduler_;
  sim::Rng& rng_;
  ModemConfig config_;
  std::unordered_set<std::string> subscribers_;

  std::deque<PendingSms> sms_queue_;
  bool sms_in_flight_ = false;
  std::uint64_t next_message_id_ = 1;
  int injected_failures_ = 0;

  CallState call_state_ = CallState::kIdle;
  CallListener call_listener_;
  std::uint64_t call_generation_ = 0;  // invalidates in-flight transitions
};

}  // namespace mobivine::device
