#include "device/mobile_device.h"

namespace mobivine::device {

MobileDevice::MobileDevice(DeviceConfig config)
    : rng_(config.seed),
      gps_(scheduler_, rng_, config.gps),
      modem_(scheduler_, rng_, config.modem),
      network_(scheduler_, rng_, config.network),
      own_number_(std::move(config.own_number)) {
  modem_.RegisterSubscriber(own_number_);
}

}  // namespace mobivine::device
