// MobiVine quickstart: boot a simulated handset, load the proxy
// descriptors, and use the uniform API to read the location and send an
// SMS — first on Android, then the very same calls on Nokia S60.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/registry.h"
#include "device/mobile_device.h"
#include "s60/midlet.h"
#include "sim/geo_track.h"

using namespace mobivine;

namespace {

/// Application logic written ONCE against the uniform interfaces.
void RunAgentSnapshot(core::LocationProxy& location, core::SmsProxy& sms,
                      const char* platform_name) {
  core::Location fix = location.getLocation();
  std::printf("[%s] position: %.4f, %.4f (±%.0f m)\n", platform_name,
              fix.latitude, fix.longitude, fix.accuracy_m);

  const long long id = sms.sendTextMessage(
      "+15550199", "agent checked in", /*listener=*/nullptr);
  std::printf("[%s] sms #%lld submitted to supervisor\n", platform_name, id);
}

}  // namespace

int main() {
  const auto store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  core::ProxyRegistry registry(&store);
  std::printf("loaded %zu proxy descriptors\n", store.size());

  // --- a simulated handset near the IBM India Research Lab ----------------
  device::MobileDevice dev;
  dev.gps().set_track(sim::GeoTrack::Stationary(28.5245, 77.1855, 210));
  dev.modem().RegisterSubscriber("+15550199");

  // --- Android -------------------------------------------------------------
  {
    android::AndroidPlatform platform(dev);
    platform.grantPermission(android::permissions::kFineLocation);
    platform.grantPermission(android::permissions::kSendSms);

    auto location = registry.CreateLocationProxy(platform);
    // Platform-specific attributes travel through setProperty(), not the
    // common API (paper §4.1).
    location->setProperty("context", &platform.application_context());
    location->setProperty("provider", std::string("gps"));
    auto sms = registry.CreateSmsProxy(platform);
    sms->setProperty("context", &platform.application_context());

    RunAgentSnapshot(*location, *sms, "android");
  }

  // --- Nokia S60: identical application calls, different properties -------
  {
    s60::S60Platform platform(dev);
    s60::ApplicationManager manager(platform);
    s60::MidletSuiteDescriptor suite;
    suite.suite_name = "Quickstart";
    suite.permissions = {s60::permissions::kLocation,
                         s60::permissions::kSmsSend};
    manager.installSuite(suite);

    auto location = registry.CreateLocationProxy(platform);
    location->setProperty("verticalAccuracy", 50LL);
    location->setProperty("preferredResponseTime", 0LL);
    auto sms = registry.CreateSmsProxy(platform);

    RunAgentSnapshot(*location, *sms, "s60");
  }

  // --- error defragmentation: one catch clause fits every platform --------
  {
    android::AndroidPlatform locked_down(dev);  // no permissions granted
    auto location = registry.CreateLocationProxy(locked_down);
    location->setProperty("context", &locked_down.application_context());
    try {
      (void)location->getLocation();
    } catch (const core::ProxyError& error) {
      std::printf("uniform error: code=%s native=%s\n",
                  core::ToString(error.code()), error.native_type().c_str());
    }
  }

  dev.RunAll();  // drain delivery reports
  std::printf("quickstart done at virtual t=%.1f ms\n",
              dev.scheduler().now().millis());
  return 0;
}
