// M-Wire demo: the gateway served over a real loopback TCP socket.
//
// One process, both ends of the wire: an 8-shard gateway behind a
// 2-event-loop WireServer, and a WireClient that exercises the uniform
// surface — a sync call per op and platform, per-request properties, a
// typed error, and a pipelined burst — then prints the server's wire
// counters.
//
//   ./build/examples/wire_demo
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "wire/client.h"
#include "wire/protocol.h"
#include "wire/server.h"

using namespace mobivine;

int main() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);

  gateway::GatewayConfig config;
  config.shards = 8;
  config.store = &store;
  gateway::Gateway gw(config);

  wire::WireServerConfig wire_config;
  wire_config.event_loops = 2;
  wire::WireServer server(gw, wire_config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wire server listening on 127.0.0.1:%u (2 event loops, "
              "8 gateway shards)\n\n",
              server.port());

  wire::WireClient client;
  if (!client.Connect(server.port())) {
    std::fprintf(stderr, "client connect failed\n");
    return 1;
  }

  // Every op on every platform, synchronously, over the socket.
  const gateway::Platform platforms[] = {gateway::Platform::kAndroid,
                                         gateway::Platform::kS60,
                                         gateway::Platform::kIphone};
  for (gateway::Platform platform : platforms) {
    wire::WireRequest get;
    get.client_id = 7;
    get.platform = platform;
    get.op = gateway::Op::kHttpGet;
    get.target = std::string("http://") + gateway::kGatewayHttpHost + "/ping";
    wire::WireResponse response;
    client.Call(get, &response);
    std::printf("[%s] httpGet      -> %-8s \"%s\" (%llu us over the wire)\n",
                gateway::ToString(platform), wire::ToString(response.status),
                response.body.c_str(),
                static_cast<unsigned long long>(response.latency_micros));

    wire::WireRequest location;
    location.client_id = 7;
    location.platform = platform;
    location.op = gateway::Op::kGetLocation;
    client.Call(location, &response);
    std::printf("[%s] getLocation  -> %-8s \"%s\"\n",
                gateway::ToString(platform), wire::ToString(response.status),
                response.body.c_str());
  }

  // Per-request properties travel as tagged values and are applied under
  // save/restore on the serving shard.
  wire::WireRequest tuned;
  tuned.client_id = 9;
  tuned.platform = gateway::Platform::kS60;
  tuned.op = gateway::Op::kGetLocation;
  tuned.properties.emplace_back("horizontalAccuracy", 50LL);
  tuned.properties.emplace_back("powerConsumption", std::string("low"));
  wire::WireResponse response;
  client.Call(tuned, &response);
  std::printf("\ntuned getLocation (accuracy=50, power=low) -> %s \"%s\"\n",
              wire::ToString(response.status), response.body.c_str());

  // A typed failure arrives as a wire status, not a dead socket.
  wire::WireRequest bad;
  bad.client_id = 9;
  bad.platform = gateway::Platform::kAndroid;
  bad.op = gateway::Op::kHttpGet;
  bad.target = "http://gw.example/ping";
  bad.properties.emplace_back("noSuchProperty", 1LL);
  client.Call(bad, &response);
  std::printf("unknown property -> %s (connection still healthy)\n",
              wire::ToString(response.status));

  // Pipelined burst: many requests in flight on one connection.
  constexpr int kBurst = 500;
  std::mutex mutex;
  std::condition_variable cv;
  int done = 0;
  std::atomic<int> ok{0};
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kBurst; ++i) {
    wire::WireRequest request;
    request.client_id = static_cast<std::uint64_t>(i);
    request.platform = gateway::Platform::kAndroid;
    request.op = gateway::Op::kHttpGet;
    request.target =
        std::string("http://") + gateway::kGatewayHttpHost + "/ping";
    client.Submit(std::move(request), [&](const wire::WireResponse& r) {
      if (r.status == wire::WireStatus::kOk) ok.fetch_add(1);
      std::lock_guard<std::mutex> lock(mutex);
      ++done;
      cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done == kBurst; });
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  std::printf("\npipelined burst: %d/%d ok in %lld us (%.0f req/s on one "
              "connection)\n",
              ok.load(), kBurst, static_cast<long long>(micros.count()),
              kBurst * 1e6 / static_cast<double>(micros.count()));

  client.Close();
  server.Stop();
  gw.Stop();

  const wire::WireStatsSnapshot stats = server.Stats();
  std::printf("\nwire counters: %llu conns, %llu frames in, %llu frames "
              "out, %llu bytes in, %llu bytes out, %llu decode errors\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.frames_out),
              static_cast<unsigned long long>(stats.bytes_in),
              static_cast<unsigned long long>(stats.bytes_out),
              static_cast<unsigned long long>(stats.decode_errors));
  return 0;
}
