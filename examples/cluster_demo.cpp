// M-Cluster demo: one controller, three workers, a plan-routing client.
//
// Everything runs in one process (the same stacks cluster_worker runs
// one-per-process), but every hop is real loopback TCP: workers
// register with the controller over M-Wire control frames, the client
// fetches the partition plan once, then routes straight to the owning
// worker — the controller is never on the data path. The demo walks
// the full lifecycle: routing spread, direct calls, a coalesced batch,
// and a graceful worker leave with in-band re-routing.
//
//   ./build/examples/cluster_demo
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/controller.h"
#include "cluster/worker_agent.h"
#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "wire/client.h"
#include "wire/protocol.h"
#include "wire/server.h"

using namespace mobivine;

namespace {

/// One in-process worker: gateway + wire server + control-plane agent —
/// the per-process stack of tools/cluster_worker, minus the process.
struct Worker {
  Worker(std::uint64_t worker_id, std::uint16_t controller_port,
         const core::DescriptorStore& store) {
    gateway::GatewayConfig config;
    config.shards = 2;
    config.store = &store;
    gateway = std::make_unique<gateway::Gateway>(config);

    cluster::WorkerAgentConfig agent_config;
    agent_config.controller_port = controller_port;
    agent_config.worker_id = worker_id;
    agent = std::make_unique<cluster::WorkerAgent>(*gateway, agent_config);

    wire::WireServerConfig server_config;
    server_config.ownership = [this](std::uint64_t client_id,
                                     std::uint64_t* epoch) {
      return agent->Owns(client_id, epoch);
    };
    server = std::make_unique<wire::WireServer>(*gateway, server_config);
  }

  bool Start(std::string* error) {
    if (!server->Start(error)) return false;
    return agent->Start(server->port(), error);
  }

  void Stop() {
    agent->Stop();
    server->Stop();
    gateway->Stop();
  }

  std::unique_ptr<gateway::Gateway> gateway;
  std::unique_ptr<cluster::WorkerAgent> agent;
  std::unique_ptr<wire::WireServer> server;
};

wire::WireRequest Ping(std::uint64_t client_id) {
  wire::WireRequest request;
  request.client_id = client_id;
  request.platform = gateway::Platform::kAndroid;
  request.op = gateway::Op::kHttpGet;
  request.target = std::string("http://") + gateway::kGatewayHttpHost + "/ping";
  return request;
}

}  // namespace

int main() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);

  cluster::Controller controller;
  std::string error;
  if (!controller.Start(&error)) {
    std::fprintf(stderr, "controller start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("controller listening on 127.0.0.1:%u\n", controller.port());

  std::vector<std::unique_ptr<Worker>> workers;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    workers.push_back(std::make_unique<Worker>(id, controller.port(), store));
    if (!workers.back()->Start(&error)) {
      std::fprintf(stderr, "worker %llu start failed: %s\n",
                   static_cast<unsigned long long>(id), error.c_str());
      return 1;
    }
    std::printf("worker %llu serving on 127.0.0.1:%u\n",
                static_cast<unsigned long long>(id),
                workers.back()->server->port());
  }

  cluster::ClientConfig client_config;
  client_config.controller_port = controller.port();
  cluster::Client client(client_config);
  if (!client.Start(&error)) {
    std::fprintf(stderr, "client start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("\nplan epoch %llu; first 12 client ids route to workers:",
              static_cast<unsigned long long>(client.plan_epoch()));
  for (std::uint64_t id = 0; id < 12; ++id) {
    std::printf(" %llu", static_cast<unsigned long long>(client.OwnerOf(id)));
  }
  std::printf("\n\n");

  // Direct routed calls — the client talks straight to the owner.
  for (std::uint64_t id = 0; id < 4; ++id) {
    wire::WireResponse response;
    if (!client.Call(Ping(id), &response)) {
      std::fprintf(stderr, "call failed for id %llu\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
    std::printf("id %llu -> worker %llu: %s \"%s\"\n",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(client.OwnerOf(id)),
                wire::ToString(response.status), response.body.c_str());
  }

  // A batch spanning all owners goes out as ONE coalesced write per
  // worker connection (cluster::Client::SubmitBatch).
  constexpr std::uint64_t kBatch = 60;
  std::vector<wire::WireRequest> batch;
  for (std::uint64_t id = 0; id < kBatch; ++id) batch.push_back(Ping(id));
  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t done = 0, ok = 0;
  client.SubmitBatch(batch, [&](const wire::WireResponse& r) {
    std::lock_guard<std::mutex> lock(mutex);
    ++done;
    if (r.status == wire::WireStatus::kOk) ++ok;
    cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done == kBatch; });
  }
  std::printf("\nbatched %llu requests across 3 workers: %llu ok\n",
              static_cast<unsigned long long>(kBatch),
              static_cast<unsigned long long>(ok));

  // Graceful rotation: worker 2 leaves (fence + drain), the plan epoch
  // bumps, and the client re-routes in-band — no request is lost.
  std::printf("\nworker 2 leaving...\n");
  if (!workers[1]->agent->LeaveAndDrain()) {
    std::fprintf(stderr, "worker 2 failed to drain\n");
    return 1;
  }
  workers[1]->Stop();
  std::uint64_t rerouted_ok = 0;
  for (std::uint64_t id = 0; id < 30; ++id) {
    wire::WireResponse response;
    if (client.Call(Ping(id), &response) &&
        response.status == wire::WireStatus::kOk) {
      ++rerouted_ok;
    }
  }
  const cluster::ClientStats stats = client.Stats();
  std::printf("after leave: plan epoch %llu, 30/%llu calls ok "
              "(%llu wrong-worker bounces, %llu transport retries, "
              "%llu plan refreshes)\n",
              static_cast<unsigned long long>(client.plan_epoch()),
              static_cast<unsigned long long>(rerouted_ok),
              static_cast<unsigned long long>(stats.wrong_worker_retries),
              static_cast<unsigned long long>(stats.transport_retries),
              static_cast<unsigned long long>(stats.plan_refreshes));

  client.Stop();
  for (auto& worker : workers) worker->Stop();
  const cluster::ControllerStatsSnapshot cstats = controller.Stats();
  controller.Stop();
  std::printf("\ncontroller counters: %llu registers, %llu heartbeats, "
              "%llu plan pushes, %llu leaves, %llu deaths\n",
              static_cast<unsigned long long>(cstats.registers),
              static_cast<unsigned long long>(cstats.heartbeats),
              static_cast<unsigned long long>(cstats.plan_pushes),
              static_cast<unsigned long long>(cstats.leaves),
              static_cast<unsigned long long>(cstats.deaths));
  return 0;
}
