// M-Failover demo: chaos in, one healthy answer out.
//
// Walks the three M-Failover mechanisms against a deliberately broken
// android backend, printing what the caller sees (one uniform Response)
// next to what actually happened (which platform served, how many
// dispatches, what the breakers did):
//
//   1. failover  — every android dispatch is injected with a transient
//                  timeout; the shard re-dispatches to s60 inside the
//                  same retry round and the caller never notices.
//   2. breakers  — after enough consecutive failures the android breaker
//                  opens; requests skip it outright (one dispatch, not
//                  two) until a half-open probe on the virtual clock
//                  finds it healthy again.
//   3. hedging   — a hanging android dispatch is abandoned at the hedge
//                  threshold and raced against s60; first success wins
//                  and the loser books no completion.
//
// Pass a fault-plan spec (see support/fault.h for the grammar) to try
// your own chaos:
//
//   ./build/examples/failover_demo ["android:*:error=timeout:p=0.5"]
#include <cstdio>
#include <string>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "support/fault.h"

using namespace mobivine;

namespace {

gateway::Request PingRequest(std::uint64_t client) {
  gateway::Request request;
  request.client_id = client;
  request.platform = gateway::Platform::kAndroid;
  request.op = gateway::Op::kHttpGet;
  request.target =
      std::string("http://") + gateway::kGatewayHttpHost + "/ping";
  request.retry.max_attempts = 1;  // recovery is M-Failover's job today
  return request;
}

// segmentCount is pure (no device I/O): each dispatch advances the
// virtual clock by only the metered overhead, so the breaker's cooldown
// window spans several requests and the open-breaker skip is visible.
gateway::Request CountRequest(std::uint64_t client) {
  gateway::Request request;
  request.client_id = client;
  request.platform = gateway::Platform::kAndroid;
  request.op = gateway::Op::kSegmentCount;
  request.payload = "breaker demo payload";
  request.retry.max_attempts = 1;
  return request;
}

void Report(const char* label, const gateway::Response& response) {
  std::printf("  %-34s -> %-7s served_by=%-7s attempts=%d%s%s\n", label,
              response.ok ? "ok" : core::ToString(response.error),
              gateway::ToString(response.served_platform), response.attempts,
              response.ok ? "" : "  ", response.ok ? "" : response.message.c_str());
}

void Counters(const gateway::Gateway& gw) {
  const gateway::GatewaySnapshot stats = gw.Stats();
  std::printf(
      "  [counters] faults=%llu failovers=%llu hedges=%llu/%llu "
      "breaker_opens=%llu ok=%llu failed=%llu\n",
      static_cast<unsigned long long>(stats.totals.faults_injected),
      static_cast<unsigned long long>(stats.totals.failovers),
      static_cast<unsigned long long>(stats.totals.hedges_won),
      static_cast<unsigned long long>(stats.totals.hedges_fired),
      static_cast<unsigned long long>(stats.totals.breaker_opens),
      static_cast<unsigned long long>(stats.totals.ok),
      static_cast<unsigned long long>(stats.totals.failed));
}

}  // namespace

int main(int argc, char** argv) {
  const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);

  // --- 1. failover ------------------------------------------------------
  {
    const std::string spec =
        argc > 1 ? argv[1] : "android:*:error=timeout:p=1";
    std::string error;
    const auto plan = support::FaultPlan::Parse(spec, &error);
    if (!plan) {
      std::fprintf(stderr, "bad fault plan %s: %s\n", spec.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("1. failover — plan \"%s\", failover on:\n",
                plan->ToString().c_str());
    gateway::GatewayConfig config;
    config.shards = 1;
    config.store = &store;
    config.failover.failover = true;
    config.failover.fault_plan = *plan;
    gateway::Gateway gw(config);
    for (std::uint64_t i = 0; i < 3; ++i) {
      Report("httpGet on android", gw.Call(PingRequest(i)));
    }
    Counters(gw);
  }

  // --- 2. circuit breaker ----------------------------------------------
  {
    std::printf(
        "\n2. breakers — android faulted twice (then healthy), threshold 2, "
        "50ms virtual cooldown:\n");
    gateway::GatewayConfig config;
    config.shards = 1;
    config.store = &store;
    config.failover.failover = true;
    config.failover.breaker_threshold = 2;
    config.failover.breaker_cooldown_us = 50'000;
    config.failover.fault_plan =
        support::FaultPlan::Parse("android:*:error=timeout:p=1:max=2")
            .value();
    gateway::Gateway gw(config);
    Report("faulted: fails over", gw.Call(CountRequest(1)));
    Report("faulted again: breaker opens", gw.Call(CountRequest(1)));
    Report("open: android skipped outright", gw.Call(CountRequest(1)));
    // Serve until the virtual clock carries the breaker through its
    // cooldown and the half-open probe closes it again.
    int probes = 0;
    gateway::Response last;
    do {
      last = gw.Call(CountRequest(1));
      ++probes;
    } while (last.served_platform != gateway::Platform::kAndroid &&
             probes < 1000);
    std::printf("  ...%d requests later the half-open probe lands:\n",
                probes);
    Report("recovered: android serves again", last);
    Counters(gw);
  }

  // --- 3. hedging -------------------------------------------------------
  {
    std::printf(
        "\n3. hedging — android hangs once; the dispatch is hedged onto "
        "s60 at the threshold:\n");
    gateway::GatewayConfig config;
    config.shards = 1;
    config.store = &store;
    config.failover.hedging = true;
    config.failover.fault_plan =
        support::FaultPlan::Parse("android:httpGet:hang:p=1:max=1").value();
    gateway::Gateway gw(config);
    Report("hung primary, hedge wins", gw.Call(PingRequest(1)));
    Report("healthy again, no hedge", gw.Call(PingRequest(1)));
    Counters(gw);
  }

  std::printf(
      "\nSee docs/failure-semantics.md for the full error-code and "
      "recovery table.\n");
  return 0;
}
