// M-Script demo: server-side composite invocations over one kScript frame.
//
// One process, both ends of the wire: an 8-shard gateway behind a
// WireServer, and a WireClient that ships small MiniJS programs to the
// serving shard instead of pipelining dependent requests. The demo runs
// the worked example from docs/scripting.md — a location -> upload -> SMS
// composite — then shows typed host errors being caught *inside* the
// script, per-script property scoping, and a hostile infinite loop dying
// on its step budget without hurting the connection.
//
//   ./build/examples/script_demo
#include <cstdio>
#include <string>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "wire/client.h"
#include "wire/protocol.h"
#include "wire/server.h"

using namespace mobivine;

namespace {

void Show(const char* label, const wire::WireResponse& response) {
  std::printf("%-28s -> %-12s \"%s\"\n", label,
              wire::ToString(response.status), response.body.c_str());
}

}  // namespace

int main() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);

  gateway::GatewayConfig config;
  config.shards = 8;
  config.store = &store;
  gateway::Gateway gw(config);

  wire::WireServerConfig wire_config;
  wire_config.event_loops = 2;
  wire::WireServer server(gw, wire_config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wire server listening on 127.0.0.1:%u\n\n", server.port());

  wire::WireClient client;
  if (!client.Connect(server.port())) {
    std::fprintf(stderr, "client connect failed\n");
    return 1;
  }

  // The worked example: three dependent invocations — read the GPS fix,
  // upload it, text the upload receipt — as ONE round trip. Written as
  // three pipelined kRequest frames this costs three dependent wire
  // latencies because each leg needs the previous leg's body.
  wire::WireScriptRequest composite;
  composite.client_id = 7;
  composite.source = R"JS(
    var fix = mobile.invoke(args.platform, 'getLocation');
    var receipt = mobile.invoke(args.platform, 'httpPost',
                                args.ingest, fix, 'text/plain');
    var sms = mobile.invoke(args.platform, 'sendSms', args.peer, receipt);
    'fix=' + fix + ' sms=' + sms;
  )JS";
  composite.args.emplace_back("platform", "android");
  composite.args.emplace_back(
      "ingest", std::string("http://") + gateway::kGatewayHttpHost + "/ingest");
  composite.args.emplace_back("peer", gateway::kGatewaySmsPeer);
  wire::WireResponse response;
  client.CallScript(composite, &response);
  Show("composite (3 invocations)", response);
  std::printf("  one wire round trip; server-side latency %llu us\n\n",
              static_cast<unsigned long long>(response.latency_micros));

  // Host failures surface as catchable script throws with the same typed
  // fields the wire would report (name / message / code / platform), so a
  // script can fall back without another round trip.
  wire::WireScriptRequest fallback;
  fallback.client_id = 7;
  fallback.source = R"JS(
    var out;
    try {
      out = mobile.invoke('palmos', 'getLocation');
    } catch (e) {
      out = 'fell back after ' + e.name + ': ' + e.message;
    }
    out;
  )JS";
  client.CallScript(fallback, &response);
  Show("catchable host error", response);

  // Property writes are scoped to the script: the shard snapshots each
  // first-touched property and restores it afterwards, so the tuning
  // below never leaks into other clients' invocations.
  wire::WireScriptRequest tuned;
  tuned.client_id = 7;
  tuned.source = R"JS(
    mobile.setProperty('s60', 'getLocation', 'powerConsumption', 'low');
    mobile.invoke('s60', 'getLocation');
  )JS";
  client.CallScript(tuned, &response);
  Show("scoped property tuning", response);

  // An uncaught script throw is a typed kScriptError on a healthy
  // connection, never a dead socket.
  wire::WireScriptRequest thrower;
  thrower.client_id = 7;
  thrower.source = "throw 'deliberate failure';";
  client.CallScript(thrower, &response);
  Show("uncaught script throw", response);

  // Hostile script: an infinite loop burns its (clamped) step budget and
  // dies with an uncatchable RangeError; the next call still works.
  wire::WireScriptRequest hostile;
  hostile.client_id = 7;
  hostile.step_budget = 10'000;
  hostile.source = "while (true) {}";
  client.CallScript(hostile, &response);
  Show("infinite loop vs budget", response);

  wire::WireScriptRequest probe;
  probe.client_id = 7;
  probe.source = "'connection still alive';";
  client.CallScript(probe, &response);
  Show("post-kill liveness probe", response);

  client.Close();
  server.Stop();
  gw.Stop();

  const gateway::ShardSnapshot totals = gw.Stats().totals;
  const wire::WireStatsSnapshot wire_stats = server.Stats();
  std::printf(
      "\nscript counters: %llu dispatched, %llu executed, %llu errors, "
      "%llu budget kills, %llu steps, %llu host invocations\n",
      static_cast<unsigned long long>(wire_stats.scripts_dispatched),
      static_cast<unsigned long long>(totals.scripts),
      static_cast<unsigned long long>(totals.script_errors),
      static_cast<unsigned long long>(totals.script_budget_kills),
      static_cast<unsigned long long>(totals.script_steps),
      static_cast<unsigned long long>(totals.script_invocations));
  return 0;
}
