// Extension demo (paper §7): the Pim (contacts) proxy and the iPhone
// platform, working together. A dispatcher app looks up the on-call
// supervisor in the device contact list and reaches them by SMS — the
// same application routine on Android, Nokia S60 and iPhone, three
// completely different native PIM/messaging stacks.
//
//   ./build/examples/contact_dispatch
#include <cstdio>

#include "core/registry.h"
#include "iphone/iphone_platform.h"
#include "s60/midlet.h"
#include "sim/geo_track.h"

using namespace mobivine;

namespace {

void PopulateContacts(device::MobileDevice& dev) {
  dev.contacts().Add("Asha Verma (Supervisor)", "+15550199",
                     "asha@example.com");
  dev.contacts().Add("Ravi Kumar", "+15550123", "ravi@example.com");
  dev.contacts().Add("Depot Hotline", "+15550777", "");
  dev.modem().RegisterSubscriber("+15550199");
  dev.modem().RegisterSubscriber("+15550123");
}

/// Identical on every platform: find the supervisor, message them.
void DispatchToSupervisor(core::PimProxy& pim, core::SmsProxy& sms,
                          const char* platform_name) {
  auto matches = pim.findByName("supervisor");
  if (matches.empty()) {
    std::printf("[%s] no supervisor in the contact list\n", platform_name);
    return;
  }
  const core::Contact& supervisor = matches.front();
  std::printf("[%s] supervisor: %s <%s>\n", platform_name,
              supervisor.display_name.c_str(),
              supervisor.phone_number.c_str());
  const long long id = sms.sendTextMessage(
      supervisor.phone_number, "site inspection complete", nullptr);
  std::printf("[%s] dispatched message #%lld (%d contact(s) on device)\n",
              platform_name, id,
              static_cast<int>(pim.listContacts().size()));
}

}  // namespace

int main() {
  const auto store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  core::ProxyRegistry registry(&store);

  // --- Android: content-provider cursors underneath ------------------------
  {
    device::MobileDevice dev({.seed = 1});
    PopulateContacts(dev);
    android::AndroidPlatform platform(dev);
    platform.grantPermission(android::permissions::kReadContacts);
    platform.grantPermission(android::permissions::kSendSms);
    auto pim = registry.CreatePimProxy(platform);
    auto sms = registry.CreateSmsProxy(platform);
    sms->setProperty("context", &platform.application_context());
    DispatchToSupervisor(*pim, *sms, "android");
    dev.RunAll();
  }

  // --- S60: JSR-75 PIM lists underneath ------------------------------------
  {
    device::MobileDevice dev({.seed = 2});
    PopulateContacts(dev);
    s60::S60Platform platform(dev);
    s60::ApplicationManager manager(platform);
    s60::MidletSuiteDescriptor suite;
    suite.suite_name = "Dispatch";
    suite.permissions = {s60::permissions::kPimRead,
                         s60::permissions::kSmsSend};
    manager.installSuite(suite);
    auto pim = registry.CreatePimProxy(platform);
    auto sms = registry.CreateSmsProxy(platform);
    DispatchToSupervisor(*pim, *sms, "s60");
    dev.RunAll();
  }

  // --- iPhone: AddressBook + sms: composer underneath ----------------------
  {
    device::MobileDevice dev({.seed = 3});
    PopulateContacts(dev);
    iphone::IPhonePlatform platform(dev);
    auto pim = registry.CreatePimProxy(platform);
    auto sms = registry.CreateSmsProxy(platform);
    DispatchToSupervisor(*pim, *sms, "iphone");
    // The user confirms the system composer a moment later.
    dev.RunAll();
    std::printf("[iphone] composer outcome: %s\n",
                platform.last_composer_outcome() ==
                        iphone::IPhonePlatform::ComposerOutcome::kSent
                    ? "sent"
                    : "not sent");
  }

  return 0;
}
