// The paper's §2 motivating application, end to end: a mobile workforce
// management solution with a Web-standard server side and a device-side
// core written once against the MobiVine uniform interfaces — executed on
// Android, Nokia S60 AND Android WebView (the WebView agent runs the
// JavaScript twin through the MobiVine JS proxies).
//
//   ./build/examples/workforce_management
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/bindings/webview_proxies.h"
#include "core/registry.h"
#include "iphone/iphone_platform.h"
#include "s60/midlet.h"
#include "sim/geo_track.h"
#include "webview/webview.h"

using namespace mobivine;

namespace {

constexpr double kSiteLat = 28.5245;
constexpr double kSiteLon = 77.1855;

// ---------------------------------------------------------------------------
// Server-side application: book-keeping, request allocation, activity log.
// ---------------------------------------------------------------------------

class WorkforceServer {
 public:
  void AttachTo(device::SimNetwork& network) {
    network.RegisterHost("wfm.example", [this](const device::HttpRequest& r) {
      return Handle(r);
    });
  }

  device::HttpResponse Handle(const device::HttpRequest& request) {
    auto params = device::ParseQuery(request.body);
    std::string agent;
    for (const auto& [key, value] : params) {
      if (key == "agent") agent = value;
    }
    if (request.url.path == "/checkin") {
      Log(agent + " arrived on site");
      return device::HttpResponse::Ok(NextTask(agent));
    }
    if (request.url.path == "/checkout") {
      Log(agent + " left the site");
      return device::HttpResponse::Ok("noted");
    }
    if (request.url.path == "/track") {
      ++track_points_[agent];
      return device::HttpResponse::Ok("ok");
    }
    return device::HttpResponse::NotFound();
  }

  void Log(const std::string& line) { activity_log_.push_back(line); }

  std::string NextTask(const std::string& agent) {
    static const char* kTasks[] = {"task:meter-reading", "task:repair-check",
                                   "task:site-survey"};
    return std::string(kTasks[assignments_++ % 3]) + " -> " + agent;
  }

  void PrintSummary() const {
    std::printf("\n=== server-side activity log ===\n");
    for (const auto& line : activity_log_) std::printf("  %s\n", line.c_str());
    std::printf("=== tracking points ===\n");
    for (const auto& [agent, count] : track_points_) {
      std::printf("  %-16s %d position reports\n", agent.c_str(), count);
    }
  }

 private:
  int assignments_ = 0;
  std::vector<std::string> activity_log_;
  std::map<std::string, int> track_points_;
};

// ---------------------------------------------------------------------------
// Device-side application core — ONE implementation for Android and S60.
// ---------------------------------------------------------------------------

class FieldAgentApp : public core::ProximityListener, public core::SmsListener {
 public:
  FieldAgentApp(std::string agent_id, core::LocationProxy& location,
                core::SmsProxy& sms, core::HttpProxy& http)
      : agent_id_(std::move(agent_id)),
        location_(location),
        sms_(sms),
        http_(http) {}

  void Start() {
    location_.addProximityAlert(kSiteLat, kSiteLon, 210.0, 250.0f, -1, this);
    Track();
  }

  void Track() {
    core::Location now = location_.getLocation();
    if (!now.valid) return;
    std::ostringstream body;
    body << "agent=" << agent_id_ << "&lat=" << now.latitude
         << "&lon=" << now.longitude;
    (void)http_.post("http://wfm.example/track", body.str(),
                     "application/x-www-form-urlencoded");
  }

  void proximityEvent(double, double, double, const core::Location&,
                      bool entering) override {
    if (entering) {
      core::HttpResult response = http_.post(
          "http://wfm.example/checkin", "agent=" + agent_id_,
          "application/x-www-form-urlencoded");
      if (response.ok()) {
        std::printf("  [%s] assigned: %s\n", agent_id_.c_str(),
                    response.body.c_str());
        sms_.sendTextMessage("+15550199", agent_id_ + ": " + response.body,
                             this);
      }
    } else {
      (void)http_.post("http://wfm.example/checkout", "agent=" + agent_id_,
                       "application/x-www-form-urlencoded");
    }
  }

  void smsStatusChanged(long long id, core::SmsDeliveryStatus status) override {
    std::printf("  [%s] sms #%lld %s\n", agent_id_.c_str(), id,
                core::ToString(status));
  }

 private:
  std::string agent_id_;
  core::LocationProxy& location_;
  core::SmsProxy& sms_;
  core::HttpProxy& http_;
};

/// An agent approaching the site from `offset_m` meters north, driving
/// south through it.
sim::GeoTrack AgentTrack(double offset_m, double speed_mps) {
  auto start = support::MoveAlongBearing(kSiteLat, kSiteLon, 0.0, offset_m);
  return sim::GeoTrack::StraightLine(start.latitude_deg, start.longitude_deg,
                                     180.0, speed_mps,
                                     sim::SimTime::Seconds(300),
                                     sim::SimTime::Seconds(1));
}

}  // namespace

int main() {
  const auto store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  core::ProxyRegistry registry(&store);

  std::printf("=== agent 1: Android handset ===\n");
  {
    device::MobileDevice dev({.seed = 101});
    dev.gps().set_track(AgentTrack(900, 15.0));
    dev.modem().RegisterSubscriber("+15550199");
    WorkforceServer server;
    server.AttachTo(dev.network());

    android::AndroidPlatform platform(dev);
    platform.grantPermission(android::permissions::kFineLocation);
    platform.grantPermission(android::permissions::kSendSms);
    platform.grantPermission(android::permissions::kInternet);

    auto location = registry.CreateLocationProxy(platform);
    location->setProperty("context", &platform.application_context());
    auto sms = registry.CreateSmsProxy(platform);
    sms->setProperty("context", &platform.application_context());
    auto http = registry.CreateHttpProxy(platform);

    FieldAgentApp app("agent-android", *location, *sms, *http);
    app.Start();
    dev.RunFor(sim::SimTime::Seconds(300));
    server.PrintSummary();
  }

  std::printf("\n=== agent 2: Nokia S60 handset (same FieldAgentApp) ===\n");
  {
    device::MobileDevice dev({.seed = 202});
    dev.gps().set_track(AgentTrack(700, 12.0));
    dev.modem().RegisterSubscriber("+15550199");
    WorkforceServer server;
    server.AttachTo(dev.network());

    s60::S60Platform platform(dev);
    s60::ApplicationManager manager(platform);
    s60::MidletSuiteDescriptor suite;
    suite.suite_name = "WorkForce";
    suite.permissions = {s60::permissions::kLocation,
                         s60::permissions::kSmsSend, s60::permissions::kHttp};
    manager.installSuite(suite);

    auto location = registry.CreateLocationProxy(platform);
    location->setProperty("verticalAccuracy", 50LL);
    auto sms = registry.CreateSmsProxy(platform);
    auto http = registry.CreateHttpProxy(platform);

    FieldAgentApp app("agent-s60", *location, *sms, *http);
    app.Start();
    dev.RunFor(sim::SimTime::Seconds(300));
    server.PrintSummary();
  }

  std::printf("\n=== agent 3: Android WebView (JavaScript twin) ===\n");
  {
    device::MobileDevice dev({.seed = 303});
    dev.gps().set_track(AgentTrack(800, 14.0));
    dev.modem().RegisterSubscriber("+15550199");
    WorkforceServer server;
    server.AttachTo(dev.network());

    android::AndroidPlatform platform(dev);
    platform.grantPermission(android::permissions::kFineLocation);
    platform.grantPermission(android::permissions::kSendSms);
    platform.grantPermission(android::permissions::kInternet);
    webview::WebView webview(platform);
    core::InstallWebViewProxies(webview);

    webview.loadScript(R"(
      var loc = new LocationProxyImpl();
      loc.setProperty('provider', 'gps');
      var sms = new SmsProxyImpl();
      var http = new HttpProxyImpl();

      function proximityEvent(refLat, refLon, refAlt, current, entering) {
        if (entering) {
          var r = http.post('http://wfm.example/checkin',
                            'agent=agent-webview',
                            'application/x-www-form-urlencoded');
          if (r.status == 200) {
            print('  [agent-webview] assigned: ' + r.body);
            sms.sendTextMessage('+15550199', 'agent-webview: ' + r.body,
                                function(id, status) {
                                  print('  [agent-webview] sms ' + status);
                                });
          }
        } else {
          http.post('http://wfm.example/checkout', 'agent=agent-webview',
                    'application/x-www-form-urlencoded');
        }
      }

      loc.addProximityAlert(28.5245, 77.1855, 210, 250, -1, proximityEvent);
      var now = loc.getLocation();
      http.post('http://wfm.example/track',
                'agent=agent-webview&lat=' + now.latitude,
                'application/x-www-form-urlencoded');
    )");
    dev.RunFor(sim::SimTime::Seconds(300));
    for (const auto& line : webview.interpreter().output()) {
      std::printf("%s\n", line.c_str());
    }
    server.PrintSummary();
  }

  std::printf("\n=== agent 4: iPhone (same FieldAgentApp, §7 extension "
              "platform) ===\n");
  {
    device::MobileDevice dev({.seed = 404});
    dev.gps().set_track(AgentTrack(850, 13.0));
    dev.modem().RegisterSubscriber("+15550199");
    WorkforceServer server;
    server.AttachTo(dev.network());

    iphone::IPhonePlatform platform(dev);
    // No manifest: location and the SMS composer are runtime user consents.
    platform.set_user_allows_location(true);
    platform.set_user_confirms_compose(true);

    auto location = registry.CreateLocationProxy(platform);
    location->setProperty("desiredAccuracy", 10.0);
    auto sms = registry.CreateSmsProxy(platform);
    auto http = registry.CreateHttpProxy(platform);

    FieldAgentApp app("agent-iphone", *location, *sms, *http);
    app.Start();
    dev.RunFor(sim::SimTime::Seconds(300));
    server.PrintSummary();
  }

  return 0;
}
