// E4 as a runnable demo: platform API evolution.
//
// Android 1.0 changed addProximityAlert to take a PendingIntent instead of
// an Intent (paper §5 "Maintenance"). An application written against the
// raw m5 API breaks on 1.0; the SAME application written against the
// MobiVine Location proxy keeps working, because the binding plane absorbs
// the difference.
//
//   ./build/examples/platform_migration
#include <cstdio>

#include "android/exceptions.h"
#include "android/location_manager.h"
#include "core/registry.h"
#include "sim/geo_track.h"

using namespace mobivine;

namespace {

constexpr double kSiteLat = 28.5245;
constexpr double kSiteLon = 77.1855;

device::MobileDevice MakeDevice() {
  device::DeviceConfig config;
  config.seed = 7;
  return device::MobileDevice(config);
}

/// The raw-API application: exactly the m5 call of the paper's Figure 2(a).
bool RawAppRegistersAlert(android::AndroidPlatform& platform) {
  try {
    android::Intent intent("com.acme.PROXIMITY");
    platform.location_manager().addProximityAlert(kSiteLat, kSiteLon, 200.0f,
                                                  -1, intent);
    return true;
  } catch (const android::UnsupportedOperationException& error) {
    std::printf("    raw app FAILED: %s\n", error.what());
    return false;
  }
}

/// The proxy application: the Figure 8(a) shape.
bool ProxyAppRegistersAlert(core::ProxyRegistry& registry,
                            android::AndroidPlatform& platform,
                            core::ProximityListener& listener) {
  try {
    auto proxy = registry.CreateLocationProxy(platform);
    proxy->setProperty("context", &platform.application_context());
    proxy->addProximityAlert(kSiteLat, kSiteLon, 210.0, 200.0f, -1, &listener);
    return true;
  } catch (const core::ProxyError& error) {
    std::printf("    proxy app FAILED: %s\n", error.what());
    return false;
  }
}

class SilentListener : public core::ProximityListener {
 public:
  void proximityEvent(double, double, double, const core::Location&,
                      bool) override {}
};

}  // namespace

int main() {
  const auto store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  core::ProxyRegistry registry(&store);
  SilentListener listener;

  std::printf("scenario: application ships for SDK m5-rc15, then the fleet\n"
              "upgrades to Android 1.0 (Intent -> PendingIntent change)\n\n");

  int raw_ok = 0, proxy_ok = 0;
  for (android::ApiLevel level :
       {android::ApiLevel::kM5, android::ApiLevel::k10}) {
    std::printf("Android %s:\n", android::ToString(level));

    device::MobileDevice dev = MakeDevice();
    dev.gps().set_track(sim::GeoTrack::Stationary(kSiteLat, kSiteLon));
    android::AndroidPlatform platform(dev, level);
    platform.grantPermission(android::permissions::kFineLocation);

    const bool raw = RawAppRegistersAlert(platform);
    std::printf("    raw m5-style app:   %s\n", raw ? "works" : "BROKEN");
    raw_ok += raw ? 1 : 0;

    const bool proxy = ProxyAppRegistersAlert(registry, platform, listener);
    std::printf("    MobiVine proxy app: %s\n", proxy ? "works" : "BROKEN");
    proxy_ok += proxy ? 1 : 0;
  }

  std::printf("\nresult: raw app works on %d/2 platform versions; "
              "proxy app on %d/2.\n",
              raw_ok, proxy_ok);
  std::printf("application-code changes needed after the upgrade: "
              "raw=both call sites, proxy=none.\n");
  return proxy_ok == 2 ? 0 : 1;
}
