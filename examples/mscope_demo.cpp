// M-Scope demo: trace a handful of gateway invocations and dump both
// exporter formats.
//
// Runs a 2-shard gateway, serves a small mixed batch (every platform,
// per-request properties, one deliberately failing request so the
// exception-mapping span shows up), then writes:
//
//   mscope_trace.json   — Chrome trace_event JSON; open it in
//                         chrome://tracing or https://ui.perfetto.dev
//                         to see gateway spans enclosing core invocation
//                         spans, with virtual-cost attribution per op.
//   mscope_metrics.json — flat metrics dump from the MetricsRegistry:
//                         serving counters, latency percentiles, and the
//                         OverheadMeter op counts summed across shards.
//
//   ./build/examples/mscope_demo [trace.json [metrics.json]]
#include <cstdio>
#include <fstream>
#include <string>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace mobivine;

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "mscope_trace.json";
  const std::string metrics_path =
      argc > 2 ? argv[2] : "mscope_metrics.json";

  support::trace::SetEnabled(true);

  const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  gateway::GatewayConfig config;
  config.shards = 2;
  config.store = &store;
  gateway::Gateway gw(config);

  support::MetricsRegistry metrics;
  const auto registration = gw.RegisterMetrics(metrics);

  // One of each op, across the platforms.
  for (std::uint64_t client = 0; client < 12; ++client) {
    gateway::Request request;
    request.client_id = client;
    request.platform = static_cast<gateway::Platform>(client % 3);
    switch (client % 4) {
      case 0:
        request.op = gateway::Op::kGetLocation;
        break;
      case 1:
        request.op = gateway::Op::kHttpGet;
        request.target =
            std::string("http://") + gateway::kGatewayHttpHost + "/demo";
        break;
      case 2:
        request.op = gateway::Op::kSendSms;
        request.target = gateway::kGatewaySmsPeer;
        request.payload = "hello from mscope";
        break;
      default:
        request.op = gateway::Op::kSegmentCount;
        request.payload = std::string(181, 'x');
        break;
    }
    const gateway::Platform platform = request.platform;
    const gateway::Op op = request.op;
    const gateway::Response response = gw.Call(std::move(request));
    std::printf("client %2llu %-8s %-13s -> %s\n",
                static_cast<unsigned long long>(client),
                gateway::ToString(platform), gateway::ToString(op),
                response.ok ? response.payload.c_str()
                            : response.message.c_str());
  }

  // Request-scoped S60 location criteria: setProperty spans under the
  // gateway attempt, restored after the request (no leak into the next).
  {
    gateway::Request strict;
    strict.client_id = 99;
    strict.platform = gateway::Platform::kS60;
    strict.op = gateway::Op::kGetLocation;
    strict.retry.max_attempts = 1;
    strict.properties.emplace_back("horizontalAccuracy", 10LL);
    strict.properties.emplace_back("powerConsumption",
                                   core::PropertyValue(std::string("low")));
    const gateway::Response response = gw.Call(std::move(strict));
    std::printf("strict criteria        -> %s (exception-map span traced)\n",
                response.ok ? "ok?" : core::ToString(response.error));
  }

  gw.Stop();

  {
    std::ofstream out(metrics_path);
    metrics.Snapshot().WriteJson(out);
  }
  std::ofstream out(trace_path);
  const support::trace::ExportStats stats =
      support::trace::ExportChromeTrace(out);
  std::printf(
      "\nwrote %s (%zu events, %zu threads) and %s\n"
      "open the trace in chrome://tracing or https://ui.perfetto.dev\n",
      trace_path.c_str(), stats.events, stats.threads, metrics_path.c_str());
  return 0;
}
