// The M-Plugin as a command-line tool: browse the proxy drawer, configure
// the addProximityAlert interface for each platform, preview the generated
// code (proxy and raw styles), and package the application.
//
//   ./build/examples/codegen_tool [proxy method]
#include <cstdio>
#include <string>

#include "plugin/codegen.h"
#include "plugin/configuration.h"
#include "plugin/drawer.h"
#include "plugin/metrics.h"
#include "plugin/packaging.h"

using namespace mobivine;
using namespace mobivine::plugin;

namespace {

void Configure(ProxyConfiguration& config) {
  // The values a developer would type into the Figure 7(b) dialog.
  config.SetVariable("latitude", "28.5245");
  config.SetVariable("longitude", "77.1855");
  config.SetVariable("altitude", "210");
  config.SetVariable("radius", "200");
  config.SetVariable("timer", "-1");
  config.SetVariable("destination", "\"+15550199\"");
  config.SetVariable("text", "\"on site\"");
  config.SetVariable("number", "\"+15550199\"");
  config.SetVariable("url", "\"http://wfm.example/checkin\"");
  config.SetVariable("body", "\"agent=7\"");
  config.SetVariable("contentType", "\"text/plain\"");
  config.SetVariable("name", "\"X-Agent\"");
  config.SetVariable("value", "\"7\"");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string proxy_name = argc > 1 ? argv[1] : "Location";
  const std::string method = argc > 2 ? argv[2] : "addProximityAlert";

  const auto store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  CodeGenerator generator(store);

  // --- the proxy drawer per platform (Figure 7(a)) -------------------------
  for (const char* platform : {"android", "s60", "webview", "iphone"}) {
    ProxyDrawer drawer(store, platform);
    std::printf("%s", drawer.Render().c_str());
  }

  const core::ProxyDescriptor* descriptor = store.Find(proxy_name);
  if (descriptor == nullptr) {
    std::fprintf(stderr, "unknown proxy '%s'\n", proxy_name.c_str());
    return 1;
  }

  // --- configuration dialog + code preview per platform --------------------
  for (const char* platform : {"android", "s60", "webview", "iphone"}) {
    if (!descriptor->SupportsPlatform(platform)) {
      std::printf("\n--- %s: %s not available on this platform ---\n",
                  platform, proxy_name.c_str());
      continue;
    }
    ProxyConfiguration config =
        ProxyConfiguration::For(*descriptor, method, platform);
    Configure(config);

    std::printf("\n--- %s.%s on %s ---\n", proxy_name.c_str(), method.c_str(),
                platform);
    std::printf("variables:\n");
    for (const auto& field : config.variables()) {
      std::printf("  %-12s %-10s (%s) = %s\n", field.name.c_str(),
                  field.type.c_str(), field.dimension.c_str(),
                  field.value.c_str());
    }
    std::printf("properties:\n");
    for (const auto& field : config.properties()) {
      std::printf("  %-22s %-7s default=%-8s %s\n", field.name.c_str(),
                  field.type.c_str(), field.default_value.c_str(),
                  field.required ? "[required]" : "");
    }

    GeneratedCode proxy_code =
        generator.ApplicationFragment(config, CodeStyle::kProxy);
    GeneratedCode raw_code =
        generator.ApplicationFragment(config, CodeStyle::kRaw);
    std::printf("\n# generated (proxy style, %s):\n%s\n",
                proxy_code.language.c_str(), proxy_code.code.c_str());
    CodeMetrics with = Measure(proxy_code.code);
    CodeMetrics without = Measure(raw_code.code);
    std::printf("# complexity: proxy %d LoC / %d tokens vs raw %d LoC / %d "
                "tokens\n",
                with.lines, with.tokens, without.lines, without.tokens);
  }

  // --- packaging extensions -----------------------------------------------
  std::printf("\n--- packaging ---\n");
  S60Packager s60_packager(store);
  Jar app_jar{"workforce.jar",
              {{"com/acme/WorkForce.class", 9000},
               {"META-INF/MANIFEST.MF", 100}}};
  S60Package package = s60_packager.Package(
      app_jar, {"Location", "Sms", "Http"}, "WorkForce",
      {{"MIDlet-Install-Notify", "http://ota.example/notify"}});
  std::printf("s60 suite jar '%s': %zu entries, %zu bytes, %zu permissions\n",
              package.suite_jar.name.c_str(), package.suite_jar.entries.size(),
              package.suite_jar.TotalSize(),
              package.descriptor.permissions.size());

  AndroidPackager android_packager(store);
  AndroidProject project{"workforce", {}, {}};
  android_packager.Absorb(project, {"Location", "Sms", "Http", "Call"});
  std::printf("android project: %zu classpath jars, %zu permissions\n",
              project.classpath.size(), project.manifest_permissions.size());

  WebViewPackager webview_packager(store);
  WebViewProject page{"workforce", {}, {}};
  webview_packager.Absorb(page, {"Location", "Sms", "Http", "Call"});
  std::printf("webview page: %zu assets, %zu injected wrappers\n",
              page.page_assets.size(), page.injected_wrappers.size());
  return 0;
}
