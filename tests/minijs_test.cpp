#include <gtest/gtest.h>

#include "minijs/interpreter.h"
#include "minijs/lexer.h"
#include "minijs/parser.h"

namespace mobivine::minijs {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokenKindsAndPositions) {
  auto tokens = Tokenize("var x = 1.5;\nx += 2;");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].type, TokenType::kVar);
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[3].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1.5);
  EXPECT_EQ(tokens[5].line, 2);
  EXPECT_EQ(tokens[6].type, TokenType::kPlusAssign);
  EXPECT_EQ(tokens.back().type, TokenType::kEof);
}

TEST(Lexer, StringsWithEscapes) {
  auto tokens = Tokenize(R"('a\'b' "c\"d\n")");
  EXPECT_EQ(tokens[0].text, "a'b");
  EXPECT_EQ(tokens[1].text, "c\"d\n");
}

TEST(Lexer, CommentsSkipped) {
  auto tokens = Tokenize("a // line\n/* block\nmore */ b");
  ASSERT_EQ(tokens.size(), 3u);  // a, b, EOF
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, MultiCharOperators) {
  auto tokens = Tokenize("=== !== == != <= >= && || ++ --");
  EXPECT_EQ(tokens[0].type, TokenType::kStrictEq);
  EXPECT_EQ(tokens[1].type, TokenType::kStrictNotEq);
  EXPECT_EQ(tokens[2].type, TokenType::kEq);
  EXPECT_EQ(tokens[3].type, TokenType::kNotEq);
  EXPECT_EQ(tokens[4].type, TokenType::kLessEq);
  EXPECT_EQ(tokens[5].type, TokenType::kGreaterEq);
  EXPECT_EQ(tokens[6].type, TokenType::kAndAnd);
  EXPECT_EQ(tokens[7].type, TokenType::kOrOr);
  EXPECT_EQ(tokens[8].type, TokenType::kPlusPlus);
  EXPECT_EQ(tokens[9].type, TokenType::kMinusMinus);
}

TEST(Lexer, Errors) {
  EXPECT_THROW(Tokenize("'unterminated"), LexError);
  EXPECT_THROW(Tokenize("/* never closed"), LexError);
  EXPECT_THROW(Tokenize("a # b"), LexError);
  EXPECT_THROW(Tokenize("a & b"), LexError);
}

TEST(Lexer, NumberForms) {
  auto tokens = Tokenize("0 42 3.25 1e3 2.5e-2");
  EXPECT_DOUBLE_EQ(tokens[0].number, 0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 42);
  EXPECT_DOUBLE_EQ(tokens[2].number, 3.25);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1000);
  EXPECT_DOUBLE_EQ(tokens[4].number, 0.025);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(Parser, SyntaxErrorsCarryLocation) {
  try {
    (void)ParseProgram("var = 3;");
    FAIL() << "expected SyntaxError";
  } catch (const SyntaxError& error) {
    EXPECT_EQ(error.line(), 1);
  }
  EXPECT_THROW(ParseProgram("if (x) { "), SyntaxError);
  EXPECT_THROW(ParseProgram("1 + ;"), SyntaxError);
  EXPECT_THROW(ParseProgram("try {}"), SyntaxError);  // needs catch/finally
  EXPECT_THROW(ParseProgram("1 = 2;"), SyntaxError);  // bad assign target
}

TEST(Parser, PrecedenceShape) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  Program program = ParseProgram("1 + 2 * 3;");
  const auto& stmt = static_cast<const ExpressionStmt&>(*program.statements[0]);
  const auto& add = static_cast<const BinaryExpr&>(*stmt.expression);
  EXPECT_EQ(add.op, BinaryOp::kAdd);
  EXPECT_EQ(add.right->kind, ExprKind::kBinary);
}

// ---------------------------------------------------------------------------
// Interpreter: expression semantics
// ---------------------------------------------------------------------------

double RunNumber(const std::string& source) {
  Interpreter interpreter;
  Value result = interpreter.Run(source);
  EXPECT_TRUE(result.is_number()) << source << " -> "
                                  << result.ToDisplayString();
  return result.is_number() ? result.as_number() : 0;
}

std::string RunString(const std::string& source) {
  Interpreter interpreter;
  return interpreter.Run(source).ToDisplayString();
}

TEST(Interp, Arithmetic) {
  EXPECT_DOUBLE_EQ(RunNumber("1 + 2 * 3;"), 7);
  EXPECT_DOUBLE_EQ(RunNumber("(1 + 2) * 3;"), 9);
  EXPECT_DOUBLE_EQ(RunNumber("10 / 4;"), 2.5);
  EXPECT_DOUBLE_EQ(RunNumber("10 % 3;"), 1);
  EXPECT_DOUBLE_EQ(RunNumber("-3 + 1;"), -2);
}

TEST(Interp, StringConcatenation) {
  EXPECT_EQ(RunString("'a' + 'b' + 1;"), "ab1");
  EXPECT_EQ(RunString("1 + 2 + 'x';"), "3x");
}

TEST(Interp, ComparisonsAndEquality) {
  Interpreter interp;
  EXPECT_TRUE(interp.Run("1 < 2;").as_bool());
  EXPECT_TRUE(interp.Run("'abc' < 'abd';").as_bool());
  EXPECT_TRUE(interp.Run("1 == '1';").as_bool());
  EXPECT_FALSE(interp.Run("1 === '1';").as_bool());
  EXPECT_TRUE(interp.Run("null == undefined;").as_bool());
  EXPECT_FALSE(interp.Run("null === undefined;").as_bool());
  EXPECT_TRUE(interp.Run("typeof null;").as_string() == "object");
}

TEST(Interp, LogicalShortCircuit) {
  Interpreter interp;
  interp.Run("var called = false; function f() { called = true; return 1; }");
  interp.Run("false && f();");
  EXPECT_FALSE(interp.GetGlobal("called").as_bool());
  interp.Run("true || f();");
  EXPECT_FALSE(interp.GetGlobal("called").as_bool());
  interp.Run("true && f();");
  EXPECT_TRUE(interp.GetGlobal("called").as_bool());
}

TEST(Interp, Ternary) {
  EXPECT_DOUBLE_EQ(RunNumber("1 < 2 ? 10 : 20;"), 10);
  EXPECT_DOUBLE_EQ(RunNumber("1 > 2 ? 10 : 20;"), 20);
}

TEST(Interp, VarScopingAndClosures) {
  Interpreter interp;
  Value result = interp.Run(R"(
    function counter() {
      var n = 0;
      return function() { n = n + 1; return n; };
    }
    var c1 = counter();
    var c2 = counter();
    c1(); c1(); c2();
  )");
  EXPECT_DOUBLE_EQ(result.as_number(), 1);  // c2's own state
  EXPECT_DOUBLE_EQ(interp.Run("c1();").as_number(), 3);
}

TEST(Interp, WhileAndForLoops) {
  EXPECT_DOUBLE_EQ(
      RunNumber("var s = 0; var i = 0; while (i < 5) { s += i; i++; } s;"),
      10);
  EXPECT_DOUBLE_EQ(
      RunNumber("var s = 0; for (var i = 0; i < 5; i++) { s += i; } s;"), 10);
}

TEST(Interp, BreakAndContinue) {
  EXPECT_DOUBLE_EQ(RunNumber(R"(
    var s = 0;
    for (var i = 0; i < 10; i++) {
      if (i == 3) { continue; }
      if (i == 6) { break; }
      s += i;
    }
    s;
  )"),
                   0 + 1 + 2 + 4 + 5);
}

TEST(Interp, ObjectsAndArrays) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(interp.Run("var o = {a: 1, 'b': 2}; o.a + o['b'];")
                       .as_number(),
                   3);
  EXPECT_DOUBLE_EQ(interp.Run("var a = [1, 2, 3]; a[0] + a[2];").as_number(),
                   4);
  EXPECT_DOUBLE_EQ(interp.Run("a.push(9); a.length;").as_number(), 4);
  EXPECT_DOUBLE_EQ(interp.Run("a.pop();").as_number(), 9);
  EXPECT_DOUBLE_EQ(interp.Run("a.shift();").as_number(), 1);
  EXPECT_EQ(interp.Run("[4,5,6].join('-');").as_string(), "4-5-6");
  EXPECT_DOUBLE_EQ(interp.Run("a[10] = 1; a.length;").as_number(), 11);
}

TEST(Interp, StringBuiltins) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(interp.Run("'hello'.length;").as_number(), 5);
  EXPECT_DOUBLE_EQ(interp.Run("'hello'.indexOf('ll');").as_number(), 2);
  EXPECT_DOUBLE_EQ(interp.Run("'hello'.indexOf('z');").as_number(), -1);
  EXPECT_EQ(interp.Run("'hello'.substring(1, 3);").as_string(), "el");
  EXPECT_EQ(interp.Run("'hello'.charAt(1);").as_string(), "e");
  EXPECT_EQ(interp.Run("'hi'.toUpperCase();").as_string(), "HI");
  EXPECT_EQ(interp.Run("'HI'.toLowerCase();").as_string(), "hi");
}

TEST(Interp, NewAndThis) {
  Interpreter interp;
  Value result = interp.Run(R"(
    function Point(x, y) {
      this.x = x;
      this.y = y;
      this.norm2 = function() { return this.x * this.x + this.y * this.y; };
    }
    var p = new Point(3, 4);
    p.norm2();
  )");
  EXPECT_DOUBLE_EQ(result.as_number(), 25);
}

TEST(Interp, ConstructorReturningObjectWins) {
  Interpreter interp;
  Value result = interp.Run(R"(
    function F() { return {tag: 'explicit'}; }
    var o = new F();
    o.tag;
  )");
  EXPECT_EQ(result.as_string(), "explicit");
}

TEST(Interp, ThrowTryCatchFinally) {
  Interpreter interp;
  Value result = interp.Run(R"(
    var log = [];
    try {
      log.push('try');
      throw new Error('boom');
    } catch (e) {
      log.push('catch:' + e.message);
    } finally {
      log.push('finally');
    }
    log.join(',');
  )");
  EXPECT_EQ(result.as_string(), "try,catch:boom,finally");
}

TEST(Interp, FinallyRunsOnRethrow) {
  Interpreter interp;
  Value result = interp.Run(R"(
    var ran = false;
    function f() {
      try { throw 'x'; } finally { ran = true; }
    }
    try { f(); } catch (e) {}
    ran;
  )");
  EXPECT_TRUE(result.as_bool());
}

TEST(Interp, UncaughtThrowBecomesScriptError) {
  Interpreter interp;
  try {
    interp.Run("throw new Error('kaboom');");
    FAIL() << "expected ScriptError";
  } catch (const ScriptError& error) {
    EXPECT_NE(std::string(error.what()).find("kaboom"), std::string::npos);
  }
}

TEST(Interp, RuntimeTypeErrors) {
  Interpreter interp;
  EXPECT_THROW(interp.Run("undefinedName;"), ScriptError);
  EXPECT_THROW(interp.Run("null.x;"), ScriptError);
  EXPECT_THROW(interp.Run("var x = 3; x();"), ScriptError);
  EXPECT_THROW(interp.Run("var y = 1; y.z = 2;"), ScriptError);
}

TEST(Interp, FunctionHoisting) {
  EXPECT_DOUBLE_EQ(RunNumber("var r = f(); function f() { return 11; } r;"),
                   11);
}

TEST(Interp, ArgumentsObjectAndMissingParams) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(
      interp.Run("function f(a, b) { return arguments.length; } f(1, 2, 3);")
          .as_number(),
      3);
  EXPECT_EQ(interp.Run("function g(a, b) { return typeof b; } g(1);")
                .as_string(),
            "undefined");
}

TEST(Interp, PrefixPostfixIncrement) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(interp.Run("var i = 5; i++;").as_number(), 5);
  EXPECT_DOUBLE_EQ(interp.GetGlobal("i").as_number(), 6);
  EXPECT_DOUBLE_EQ(interp.Run("++i;").as_number(), 7);
  EXPECT_DOUBLE_EQ(interp.Run("var o = {n: 1}; o.n++; o.n;").as_number(), 2);
}

TEST(Interp, MathAndGlobalBuiltins) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(interp.Run("Math.abs(-4);").as_number(), 4);
  EXPECT_DOUBLE_EQ(interp.Run("Math.floor(2.7);").as_number(), 2);
  EXPECT_DOUBLE_EQ(interp.Run("Math.max(1, 9, 3);").as_number(), 9);
  EXPECT_DOUBLE_EQ(interp.Run("Math.min(4, 2);").as_number(), 2);
  EXPECT_DOUBLE_EQ(interp.Run("Math.pow(2, 10);").as_number(), 1024);
  EXPECT_TRUE(interp.Run("isNaN(Number('abc'));").as_bool());
  EXPECT_EQ(interp.Run("String(12);").as_string(), "12");
}

TEST(Interp, PrintCollectsOutput) {
  Interpreter interp;
  interp.Run("print('a', 1); print('b');");
  ASSERT_EQ(interp.output().size(), 2u);
  EXPECT_EQ(interp.output()[0], "a 1");
  EXPECT_EQ(interp.output()[1], "b");
}

TEST(Interp, StepLimitGuardsRunaway) {
  Interpreter interp;
  interp.set_step_limit(10'000);
  EXPECT_THROW(interp.Run("while (true) { var x = 1; }"), ScriptError);
}

TEST(Interp, StepsCounted) {
  Interpreter interp;
  interp.Run("1 + 2;");
  const auto baseline = interp.steps();
  EXPECT_GT(baseline, 0u);
  interp.Run("var s = 0; for (var i = 0; i < 100; i++) { s += i; }");
  EXPECT_GT(interp.steps(), baseline + 300);
}

TEST(Interp, HostFunctionsAndCallFromNative) {
  Interpreter interp;
  interp.SetGlobal("double",
                   MakeHostFunction("double", [](Interpreter&, const Value&,
                                                 std::vector<Value>& args) {
                     return Value::Number(args[0].ToNumber() * 2);
                   }));
  EXPECT_DOUBLE_EQ(interp.Run("double(21);").as_number(), 42);

  interp.Run("function add(a, b) { return a + b; }");
  Value result = interp.Call(interp.GetGlobal("add"), Value::Undefined(),
                             {Value::Number(2), Value::Number(3)});
  EXPECT_DOUBLE_EQ(result.as_number(), 5);
}

TEST(Interp, HostObjectMethodsReceiveThis) {
  Interpreter interp;
  auto host = Object::Make();
  host->Set("name", Value::String("wrapper"));
  host->Set("who", MakeHostFunction("who", [](Interpreter&, const Value& self,
                                              std::vector<Value>&) {
              return self.as_object()->Get("name");
            }));
  interp.SetGlobal("hostObj", Value::Obj(host));
  EXPECT_EQ(interp.Run("hostObj.who();").as_string(), "wrapper");
}

TEST(Interp, HostErrorsCatchableInScript) {
  Interpreter interp;
  interp.SetGlobal("explode",
                   MakeHostFunction("explode", [](Interpreter&, const Value&,
                                                  std::vector<Value>&) -> Value {
                     throw ScriptError(Value::Obj(
                         MakeErrorObject("SecurityError", "denied", 101)));
                   }));
  Value result = interp.Run(R"(
    var code = 0;
    try { explode(); } catch (e) { code = e.code; }
    code;
  )");
  EXPECT_DOUBLE_EQ(result.as_number(), 101);
}

}  // namespace
}  // namespace mobivine::minijs
