#include <gtest/gtest.h>

#include "core/bindings/webview_proxies.h"
#include "core/errors.h"
#include "tests/test_util.h"
#include "webview/webview.h"

namespace mobivine::core {
namespace {

using minijs::Value;
using mobivine::testing::ApproachTrack;
using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;
using mobivine::testing::MakeDevice;

struct Fixture {
  explicit Fixture(std::uint64_t seed = 42,
                   android::ApiLevel level = android::ApiLevel::kM5,
                   int poll_ms = 250)
      : dev(MakeDevice(seed)), platform(*dev, level), webview(platform) {
    platform.grantPermission(android::permissions::kFineLocation);
    platform.grantPermission(android::permissions::kSendSms);
    platform.grantPermission(android::permissions::kCallPhone);
    platform.grantPermission(android::permissions::kInternet);
    InstallWebViewProxies(webview, poll_ms);
  }
  std::unique_ptr<device::MobileDevice> dev;
  android::AndroidPlatform platform;
  webview::WebView webview;
};

// ---------------------------------------------------------------------------
// The JS proxy API of the paper's Figure 9
// ---------------------------------------------------------------------------

TEST(WebViewProxies, LibraryDefinesAllProxyConstructors) {
  Fixture fx;
  for (const char* ctor : {"LocationProxyImpl", "SmsProxyImpl",
                           "CallProxyImpl", "HttpProxyImpl", "notifHandler"}) {
    EXPECT_TRUE(fx.webview.interpreter().GetGlobal(ctor).is_function())
        << ctor;
  }
}

TEST(WebViewProxies, GetLocationUniformShape) {
  Fixture fx;
  Value loc = fx.webview.loadScript(R"(
    var lp = new LocationProxyImpl();
    lp.setProperty('provider', 'gps');
    lp.getLocation();
  )");
  ASSERT_TRUE(loc.is_object());
  // Uniform MobiVine field names — heading/timestamp/valid, unlike the raw
  // interface's bearing/time.
  EXPECT_NEAR(loc.as_object()->Get("latitude").as_number(), kBaseLat, 0.05);
  EXPECT_TRUE(loc.as_object()->Has("heading"));
  EXPECT_TRUE(loc.as_object()->Has("timestamp"));
  EXPECT_TRUE(loc.as_object()->Get("valid").as_bool());
  EXPECT_FALSE(loc.as_object()->Has("bearing"));
}

TEST(WebViewProxies, Figure10WithProxyGetLocation) {
  Fixture fx;
  fx.webview.loadScript("var lp = new LocationProxyImpl();");
  const sim::SimTime before = fx.dev->scheduler().now();
  fx.webview.loadScript("lp.getLocation();");
  const double elapsed = (fx.dev->scheduler().now() - before).millis();
  // Paper: WebView getLocation with proxy ~121.7 ms.
  EXPECT_NEAR(elapsed, 121.7, 15.0);
}

TEST(WebViewProxies, SmsCallbackThroughNotificationTablePolling) {
  Fixture fx;
  fx.webview.loadScript(R"(
    var events = [];
    var sms = new SmsProxyImpl();
    sms.sendTextMessage('+15550123', 'field report', function(id, status) {
      events.push(status);
    });
  )");
  // The callback is polled from the notification table, so it arrives only
  // after virtual time passes (paper Figure 6 step 3).
  Value immediate = fx.webview.loadScript("events.length;");
  EXPECT_DOUBLE_EQ(immediate.as_number(), 0);

  fx.dev->RunFor(sim::SimTime::Seconds(5));
  Value events = fx.webview.loadScript("events.join(',');");
  EXPECT_EQ(events.as_string(), "submitted,delivered");
}

TEST(WebViewProxies, SmsFailureStatusPolled) {
  Fixture fx;
  fx.webview.loadScript(R"(
    var statuses = [];
    var sms = new SmsProxyImpl();
    sms.sendTextMessage('+10000000', 'x', function(id, status) {
      statuses.push(status);
    });
  )");
  fx.dev->RunFor(sim::SimTime::Seconds(5));
  EXPECT_EQ(fx.webview.loadScript("statuses.join(',');").as_string(),
            "failed");
}

TEST(WebViewProxies, ProximityUniformFiveArgumentCallback) {
  Fixture fx;
  fx.dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  fx.webview.loadScript(
      "var hits = [];\n"
      "var lp = new LocationProxyImpl();\n"
      "lp.addProximityAlert(" +
      std::to_string(kBaseLat) + ", " + std::to_string(kBaseLon) +
      ", 210, 200, -1, function(refLat, refLon, refAlt, loc, entering) {\n"
      "  hits.push({refLat: refLat, entering: entering, lat: loc.latitude});\n"
      "});");
  fx.dev->RunFor(sim::SimTime::Seconds(120));
  Value count = fx.webview.loadScript("hits.length;");
  ASSERT_GE(count.as_number(), 2.0);
  Value first = fx.webview.loadScript("hits[0].entering;");
  EXPECT_TRUE(first.as_bool());
  Value ref = fx.webview.loadScript("hits[0].refLat;");
  EXPECT_NEAR(ref.as_number(), kBaseLat, 1e-9);
  Value lat = fx.webview.loadScript("hits[0].lat;");
  EXPECT_NEAR(lat.as_number(), kBaseLat, 0.05);
}

TEST(WebViewProxies, RemoveProximityAlertStopsPolling) {
  Fixture fx;
  fx.dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  fx.webview.loadScript(
      "var hits = 0;\n"
      "var lp = new LocationProxyImpl();\n"
      "var id = lp.addProximityAlert(" +
      std::to_string(kBaseLat) + ", " + std::to_string(kBaseLon) +
      ", 0, 200, -1, function() { hits++; });\n"
      "lp.removeProximityAlert(id);");
  fx.dev->RunFor(sim::SimTime::Seconds(120));
  EXPECT_DOUBLE_EQ(fx.webview.loadScript("hits;").as_number(), 0);
}

TEST(WebViewProxies, ErrorCodesReachScriptUniformly) {
  Fixture fx;
  fx.platform.revokePermission(android::permissions::kFineLocation);
  Value code = fx.webview.loadScript(R"(
    var c = 0;
    try {
      var lp = new LocationProxyImpl();
      lp.getLocation();
    } catch (e) { c = e.code; }
    c;
  )");
  EXPECT_DOUBLE_EQ(code.as_number(), webview::kErrorCodeSecurity);
  EXPECT_EQ(FromWebViewErrorCode(static_cast<int>(code.as_number())),
            ErrorCode::kSecurity);
}

TEST(WebViewProxies, CallProxyProgressPolled) {
  Fixture fx;
  fx.webview.loadScript(R"(
    var states = [];
    var call = new CallProxyImpl();
    call.makeCall('+15550123', function(state) { states.push(state); });
  )");
  fx.dev->RunFor(sim::SimTime::Seconds(10));
  Value states = fx.webview.loadScript("states.join(',');");
  EXPECT_EQ(states.as_string(), "dialing,ringing,connected");
  fx.webview.loadScript("call.endCall();");
}

TEST(WebViewProxies, HttpProxyBlockingExchange) {
  Fixture fx;
  fx.dev->network().RegisterHost("server", [](const device::HttpRequest& req) {
    return device::HttpResponse::Ok(req.method + ":" + req.body);
  });
  Value result = fx.webview.loadScript(R"(
    var http = new HttpProxyImpl();
    http.post('http://server/api', 'payload', 'text/plain');
  )");
  ASSERT_TRUE(result.is_object());
  EXPECT_DOUBLE_EQ(result.as_object()->Get("status").as_number(), 200);
  EXPECT_EQ(result.as_object()->Get("body").as_string(), "POST:payload");
}

TEST(WebViewProxies, ApiEvolutionAbsorbedOnWebViewToo) {
  // Same JS on Android 1.0: the wrapper picks PendingIntent internally.
  Fixture fx(42, android::ApiLevel::k10);
  fx.dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  fx.webview.loadScript(
      "var entered = false;\n"
      "var lp = new LocationProxyImpl();\n"
      "lp.addProximityAlert(" +
      std::to_string(kBaseLat) + ", " + std::to_string(kBaseLon) +
      ", 0, 200, -1, function(a, b, c, loc, entering) {\n"
      "  if (entering) { entered = true; }\n"
      "});");
  fx.dev->RunFor(sim::SimTime::Seconds(60));
  EXPECT_TRUE(fx.webview.loadScript("entered;").as_bool());
}

TEST(WebViewProxies, PollingIntervalConfigurable) {
  // A very slow poll delays callback delivery past the modem submit time.
  Fixture fx(42, android::ApiLevel::kM5, /*poll_ms=*/5000);
  fx.webview.loadScript(R"(
    var got = 0;
    var sms = new SmsProxyImpl();
    sms.sendTextMessage('+15550123', 'x', function() { got++; });
  )");
  fx.dev->RunFor(sim::SimTime::Seconds(3));
  EXPECT_DOUBLE_EQ(fx.webview.loadScript("got;").as_number(), 0);
  fx.dev->RunFor(sim::SimTime::Seconds(4));
  EXPECT_GE(fx.webview.loadScript("got;").as_number(), 1);
}

}  // namespace
}  // namespace mobivine::core
