// M-Gateway: the serving runtime's contract under load and under failure.
//
// What must hold:
//  * every submitted request completes exactly once — served, shed, or
//    expired — with a uniform typed error, never a platform exception;
//  * admission control sheds above the watermark with kOverloaded and the
//    queues stay bounded;
//  * deadlines fire at dequeue with kDeadlineExceeded;
//  * transient binding failures retry with bounded backoff; exhausting
//    attempts surfaces the underlying typed error, while running out of
//    deadline mid-retry surfaces kDeadlineExceeded and counts timed_out;
//  * request-scoped properties never leak into later requests served on
//    the same shard's proxies;
//  * GatewayStats counters reconcile with what the callbacks observed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "gateway/traffic.h"
#include "support/fault.h"

namespace mobivine {
namespace {

using core::ErrorCode;
using gateway::BorrowedProperty;
using gateway::BorrowedRequest;
using gateway::Gateway;
using gateway::GatewayConfig;
using gateway::GatewaySnapshot;
using gateway::Op;
using gateway::Platform;
using gateway::Request;
using gateway::Response;
using gateway::TrafficConfig;
using gateway::TrafficReport;

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

GatewayConfig BaseConfig(int shards) {
  GatewayConfig config;
  config.shards = shards;
  config.store = &Store();
  return config;
}

Request HttpGetRequest(std::uint64_t client_id) {
  Request request;
  request.client_id = client_id;
  request.platform = Platform::kAndroid;
  request.op = Op::kHttpGet;
  request.target =
      std::string("http://") + gateway::kGatewayHttpHost + "/ping";
  return request;
}

// ---------------------------------------------------------------------------
// Basic serving
// ---------------------------------------------------------------------------

TEST(Gateway, ServesEveryOpOnEveryPlatform) {
  Gateway gw(BaseConfig(2));
  const Platform platforms[] = {Platform::kAndroid, Platform::kS60,
                                Platform::kIphone};
  for (Platform platform : platforms) {
    {
      Request request;
      request.client_id = 7;
      request.platform = platform;
      request.op = Op::kGetLocation;
      const Response response = gw.Call(std::move(request));
      ASSERT_TRUE(response.ok) << gateway::ToString(platform) << ": "
                               << response.message;
      EXPECT_NE(response.payload.find(','), std::string::npos);
    }
    {
      Request request;
      request.client_id = 7;
      request.platform = platform;
      request.op = Op::kHttpGet;
      request.target =
          std::string("http://") + gateway::kGatewayHttpHost + "/ping";
      const Response response = gw.Call(std::move(request));
      ASSERT_TRUE(response.ok) << response.message;
      EXPECT_EQ(response.payload, "pong");
    }
    {
      Request request;
      request.client_id = 7;
      request.platform = platform;
      request.op = Op::kSendSms;
      request.target = gateway::kGatewaySmsPeer;
      request.payload = "hello from the gateway";
      const Response response = gw.Call(std::move(request));
      ASSERT_TRUE(response.ok) << response.message;
      EXPECT_GT(std::stoll(response.payload), 0);
    }
    {
      Request request;
      request.client_id = 7;
      request.platform = platform;
      request.op = Op::kSegmentCount;
      request.payload = std::string(200, 'x');  // two GSM segments
      const Response response = gw.Call(std::move(request));
      ASSERT_TRUE(response.ok) << response.message;
      EXPECT_EQ(response.payload, "2");
    }
  }
  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.ok, 12u);
  EXPECT_EQ(stats.totals.shed, 0u);
  EXPECT_EQ(stats.totals.failed, 0u);
}

TEST(Gateway, ClientAffinityIsStableAndSpreads) {
  Gateway gw(BaseConfig(4));
  std::set<std::uint32_t> used;
  for (std::uint64_t client = 0; client < 64; ++client) {
    const std::uint32_t shard = gw.ShardFor(client);
    EXPECT_EQ(shard, gw.ShardFor(client));  // stable
    EXPECT_LT(shard, 4u);
    used.insert(shard);
  }
  // 64 clients over 4 shards: every shard sees traffic.
  EXPECT_EQ(used.size(), 4u);

  // Served requests land on the affinity shard.
  for (std::uint64_t client : {3ull, 17ull, 40ull}) {
    const Response response = gw.Call(HttpGetRequest(client));
    ASSERT_TRUE(response.ok);
    EXPECT_EQ(response.shard, gw.ShardFor(client));
  }
}

TEST(Gateway, PerRequestPropertiesFlowThroughSetProperty) {
  Gateway gw(BaseConfig(1));
  Request request;
  request.client_id = 1;
  request.platform = Platform::kS60;
  request.op = Op::kGetLocation;
  request.properties.emplace_back("horizontalAccuracy", 25LL);
  request.properties.emplace_back("powerConsumption", std::string("low"));
  const Response ok_response = gw.Call(std::move(request));
  EXPECT_TRUE(ok_response.ok) << ok_response.message;

  // An unknown property is rejected by descriptor validation with the
  // uniform kIllegalArgument — not retried, not a crash.
  Request bad;
  bad.client_id = 1;
  bad.platform = Platform::kS60;
  bad.op = Op::kGetLocation;
  bad.properties.emplace_back("noSuchProperty", 1LL);
  const Response bad_response = gw.Call(std::move(bad));
  EXPECT_FALSE(bad_response.ok);
  EXPECT_EQ(bad_response.error, ErrorCode::kIllegalArgument);
  EXPECT_EQ(bad_response.attempts, 1);
}

TEST(Gateway, PerRequestPropertiesDoNotLeakAcrossRequests) {
  Gateway gw(BaseConfig(1));

  // Request A tightens the S60 location criteria past what the simulated
  // provider can satisfy in low-power mode (horizontalAccuracy < 25 with
  // powerConsumption "low" -> LocationException -> kLocationUnavailable).
  Request strict;
  strict.client_id = 1;
  strict.platform = Platform::kS60;
  strict.op = Op::kGetLocation;
  strict.retry.max_attempts = 1;  // kLocationUnavailable is transient
  strict.properties.emplace_back("horizontalAccuracy", 10LL);
  strict.properties.emplace_back("powerConsumption", std::string("low"));
  const Response strict_response = gw.Call(std::move(strict));
  ASSERT_FALSE(strict_response.ok);
  ASSERT_EQ(strict_response.error, ErrorCode::kLocationUnavailable);

  // Request B carries no properties. It runs on the same shard-shared
  // proxy; if A's criteria leaked, B inherits them and fails too.
  Request plain;
  plain.client_id = 1;
  plain.platform = Platform::kS60;
  plain.op = Op::kGetLocation;
  plain.retry.max_attempts = 1;
  const Response plain_response = gw.Call(std::move(plain));
  EXPECT_TRUE(plain_response.ok)
      << "request A's properties leaked into request B: "
      << plain_response.message;
}

// ---------------------------------------------------------------------------
// Admission control / load shedding
// ---------------------------------------------------------------------------

TEST(Gateway, OverloadShedsWithTypedErrorAndBoundedQueues) {
  GatewayConfig config = BaseConfig(2);
  config.queue_capacity = 8;
  config.shed_watermark = 8;
  Gateway gw(config);

  constexpr int kBurst = 600;
  std::atomic<int> completions{0};
  std::atomic<int> shed{0};
  std::atomic<int> served{0};
  for (int i = 0; i < kBurst; ++i) {
    Request request = HttpGetRequest(static_cast<std::uint64_t>(i));
    request.on_complete = [&](const Response& response) {
      completions.fetch_add(1);
      if (response.ok) {
        served.fetch_add(1);
      } else if (response.error == ErrorCode::kOverloaded) {
        shed.fetch_add(1);
      }
    };
    gw.Submit(std::move(request));
    // Queues never exceed their bound, whatever the burst size.
    EXPECT_LE(gw.queue_depth(), 2u * 8u);
  }
  gw.Stop();  // drains what was admitted

  EXPECT_EQ(completions.load(), kBurst);  // every request answered once
  EXPECT_GT(shed.load(), 0);              // the burst overran 2x8 slots
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(shed.load() + served.load(), kBurst);

  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.shed, static_cast<std::uint64_t>(shed.load()));
  EXPECT_EQ(stats.totals.ok, static_cast<std::uint64_t>(served.load()));
  EXPECT_EQ(stats.totals.accepted, stats.totals.completed());
  EXPECT_LE(stats.totals.max_queue_depth, 8u);
}

TEST(Gateway, SubmitAfterStopShedsImmediately) {
  GatewayConfig config = BaseConfig(1);
  Gateway gw(config);
  gw.Stop();
  bool called = false;
  Request request = HttpGetRequest(1);
  request.on_complete = [&called](const Response& response) {
    called = true;
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error, ErrorCode::kOverloaded);
  };
  EXPECT_FALSE(gw.Submit(std::move(request)));
  EXPECT_TRUE(called);  // synchronously, on this thread
}

// ---------------------------------------------------------------------------
// Borrowed submit (the wire layer's zero-copy entry point)
// ---------------------------------------------------------------------------

TEST(Gateway, BorrowedSubmitMaterializesBeforeReturning) {
  Gateway gw(BaseConfig(1));
  // Source buffers the views alias — heap-length strings so scribbling
  // over them after Submit returns would corrupt any view still held.
  std::string target =
      std::string("http://") + gateway::kGatewayHttpHost + "/ping";
  std::string payload = "borrowed payload, long enough to defeat SSO......";
  std::string content_type = "text/plain; charset=utf-8";

  BorrowedRequest request;
  request.client_id = 9;
  request.platform = Platform::kAndroid;
  request.op = Op::kHttpGet;
  request.target = target;
  request.payload = payload;
  request.content_type = content_type;

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Response completed;
  ASSERT_TRUE(gw.Submit(request, [&](const Response& response) {
    std::lock_guard<std::mutex> lock(mutex);
    completed = response;
    done = true;
    cv.notify_one();
  }));

  // Submit has returned but the request may still be queued: the
  // contract is that nothing retains the views past this point.
  target.assign(target.size(), 'X');
  payload.assign(payload.size(), 'X');
  content_type.assign(content_type.size(), 'X');

  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  EXPECT_TRUE(completed.ok) << completed.message;
  // The scribbled buffers must not have reached the device: /ping still
  // resolved and answered.
  EXPECT_EQ(completed.payload, "pong");
}

TEST(Gateway, BorrowedSubmitShedsSynchronouslyAfterStop) {
  Gateway gw(BaseConfig(1));
  gw.Stop();
  BorrowedRequest request;
  request.client_id = 3;
  request.platform = Platform::kAndroid;
  request.op = Op::kHttpGet;
  request.target = "http://unused.example/";
  bool called = false;
  EXPECT_FALSE(gw.Submit(request, [&called](const Response& response) {
    called = true;
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error, ErrorCode::kOverloaded);
  }));
  EXPECT_TRUE(called);  // synchronously, on this thread — no queueing
}

TEST(Gateway, BorrowedSubmitAppliesProperties) {
  Gateway gw(BaseConfig(1));
  const BorrowedProperty properties[] = {
      {"horizontalAccuracy", 25LL},
      {"powerConsumption", std::string_view("low")},
  };
  BorrowedRequest request;
  request.client_id = 1;
  request.platform = Platform::kS60;
  request.op = Op::kGetLocation;
  request.properties = properties;
  request.property_count = 2;

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Response completed;
  ASSERT_TRUE(gw.Submit(request, [&](const Response& response) {
    std::lock_guard<std::mutex> lock(mutex);
    completed = response;
    done = true;
    cv.notify_one();
  }));
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done; });
  }
  EXPECT_TRUE(completed.ok) << completed.message;

  // An unknown borrowed property hits the same descriptor validation as
  // the owning path: uniform kIllegalArgument, one attempt.
  const BorrowedProperty bad_properties[] = {{"noSuchProperty", 1LL}};
  request.properties = bad_properties;
  request.property_count = 1;
  done = false;
  ASSERT_TRUE(gw.Submit(request, [&](const Response& response) {
    std::lock_guard<std::mutex> lock(mutex);
    completed = response;
    done = true;
    cv.notify_one();
  }));
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  EXPECT_FALSE(completed.ok);
  EXPECT_EQ(completed.error, ErrorCode::kIllegalArgument);
  EXPECT_EQ(completed.attempts, 1);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(Gateway, ExpiredDeadlineFiresAtDequeueWithoutExecuting) {
  Gateway gw(BaseConfig(1));
  Request request = HttpGetRequest(5);
  request.timeout = std::chrono::microseconds(1);  // expires before dequeue
  const Response response = gw.Call(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(response.attempts, 0);  // the binding never ran

  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.timed_out, 1u);
  EXPECT_EQ(stats.totals.ok, 0u);
}

TEST(Gateway, GenerousDeadlineDoesNotFire) {
  Gateway gw(BaseConfig(1));
  Request request = HttpGetRequest(5);
  request.timeout = std::chrono::seconds(30);
  const Response response = gw.Call(std::move(request));
  EXPECT_TRUE(response.ok) << response.message;
  EXPECT_EQ(gw.Stats().totals.timed_out, 0u);
}

// ---------------------------------------------------------------------------
// Failure injection through a shard: retry, backoff, exhaustion
// ---------------------------------------------------------------------------

TEST(Gateway, RetryExhaustionSurfacesUnderlyingTypedError) {
  GatewayConfig config = BaseConfig(1);
  config.device_template.network.loss_probability = 1.0;  // every packet lost
  config.device_template.network.timeout = sim::SimTime::Seconds(2);
  config.default_retry.max_attempts = 3;
  config.default_retry.initial_backoff = std::chrono::microseconds(100);
  Gateway gw(config);

  const Response response = gw.Call(HttpGetRequest(9));
  EXPECT_FALSE(response.ok);
  // Android surfaces the lost exchange as a connect timeout; the gateway
  // retried it to exhaustion and reported the transient code, attempts
  // and retry counters consistently.
  EXPECT_EQ(response.error, ErrorCode::kTimeout);
  EXPECT_EQ(response.attempts, 3);

  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.failed, 1u);
  EXPECT_EQ(stats.totals.retries, 2u);  // attempts - 1
  EXPECT_EQ(stats.totals.ok, 0u);
}

TEST(Gateway, TransientFailuresRecoverWithinRetryBudget) {
  GatewayConfig config = BaseConfig(1);
  config.device_template.seed = 13;
  // The sim network draws loss twice per exchange (request and response),
  // so per-attempt failure is 1 - (1-p)^2 = 0.4375 here.
  config.device_template.network.loss_probability = 0.25;
  config.device_template.network.timeout = sim::SimTime::Seconds(1);
  config.default_retry.max_attempts = 16;
  config.default_retry.initial_backoff = std::chrono::microseconds(50);
  Gateway gw(config);

  int recovered = 0;
  for (int i = 0; i < 8; ++i) {
    const Response response = gw.Call(HttpGetRequest(1));
    if (response.ok) {
      ++recovered;
      EXPECT_EQ(response.payload, "pong");
    }
  }
  // p(16 straight lossy attempts) = 0.4375^16 ~= 2e-6 per request; all
  // eight must converge (and the seed is fixed, so this is deterministic).
  EXPECT_EQ(recovered, 8);
  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.ok, 8u);
  EXPECT_GT(stats.totals.retries, 0u);  // the lossy path was exercised
}

TEST(Gateway, NonTransientErrorsAreNotRetried) {
  GatewayConfig config = BaseConfig(1);
  config.default_retry.max_attempts = 5;
  Gateway gw(config);

  Request request;
  request.client_id = 2;
  request.platform = Platform::kAndroid;
  request.op = Op::kSendSms;
  request.target = "";  // validation failure: kIllegalArgument
  request.payload = "x";
  const Response response = gw.Call(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kIllegalArgument);
  EXPECT_EQ(response.attempts, 1);
  EXPECT_EQ(gw.Stats().totals.retries, 0u);
}

TEST(Gateway, RetryBackoffRespectsDeadline) {
  GatewayConfig config = BaseConfig(1);
  config.device_template.network.loss_probability = 1.0;
  config.device_template.network.timeout = sim::SimTime::Seconds(2);
  config.default_retry.max_attempts = 1000;  // deadline must cut this short
  config.default_retry.initial_backoff = std::chrono::milliseconds(20);
  config.default_retry.multiplier = 1.0;
  config.default_retry.max_backoff = std::chrono::milliseconds(20);
  Gateway gw(config);

  Request request = HttpGetRequest(3);
  request.timeout = std::chrono::milliseconds(100);
  const auto start = std::chrono::steady_clock::now();
  const Response response = gw.Call(std::move(request));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(response.ok);
  // Attempts remained but the deadline could not absorb another backoff:
  // a deadline outcome, not a failure of the last transient error's kind.
  EXPECT_EQ(response.error, ErrorCode::kDeadlineExceeded);
  EXPECT_LT(response.attempts, 1000);
  // Bounded by deadline + one in-flight attempt, not 1000 * 20 ms.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(Gateway, RetryDeadlineExhaustionClassifiedAsDeadlineExceeded) {
  GatewayConfig config = BaseConfig(1);
  config.device_template.network.loss_probability = 1.0;  // always transient
  config.device_template.network.timeout = sim::SimTime::Seconds(2);
  config.default_retry.max_attempts = 1000;
  config.default_retry.initial_backoff = std::chrono::milliseconds(200);
  config.default_retry.multiplier = 1.0;
  config.default_retry.max_backoff = std::chrono::milliseconds(200);
  Gateway gw(config);

  Request request = HttpGetRequest(3);
  // Generous deadline-to-queue-wait margin: under a loaded sanitizer run
  // a tight deadline can expire while the request is still queued (zero
  // attempts), which is the OTHER deadline path — this test needs the
  // between-rounds one, so at least one attempt must get to run.
  request.timeout = std::chrono::milliseconds(1000);
  const Response response = gw.Call(std::move(request));
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kDeadlineExceeded);
  // The message still names the transient error that was being retried.
  EXPECT_NE(response.message.find("last error"), std::string::npos)
      << response.message;

  // Stats must book the outcome as timed_out, exactly once, and not as a
  // failure — the double-booking the old classification produced.
  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.timed_out, 1u);
  EXPECT_EQ(stats.totals.failed, 0u);
  EXPECT_EQ(stats.totals.ok, 0u);
  // Every attempt beyond the first was booked as a retry; when the final
  // backoff oversleeps the deadline there is one extra booked retry whose
  // attempt never started.
  EXPECT_GE(stats.totals.retries,
            static_cast<std::uint64_t>(response.attempts - 1));
  EXPECT_LE(stats.totals.retries,
            static_cast<std::uint64_t>(response.attempts));
  EXPECT_EQ(stats.totals.completed(), 1u);
}

// ---------------------------------------------------------------------------
// Stats plane
// ---------------------------------------------------------------------------

TEST(Gateway, StatsSnapshotWhileServingAndCountersReconcile) {
  GatewayConfig config = BaseConfig(2);
  Gateway gw(config);

  TrafficConfig traffic;
  traffic.producers = 2;
  traffic.requests_per_producer = 150;
  traffic.clients = 32;
  traffic.window = 8;

  std::atomic<bool> done{false};
  std::thread sampler([&] {
    // Snapshots taken mid-flight must be well-formed and monotonic.
    std::uint64_t last_completed = 0;
    while (!done.load()) {
      const GatewaySnapshot snap = gw.Stats();
      EXPECT_GE(snap.totals.completed(), last_completed);
      last_completed = snap.totals.completed();
      EXPECT_EQ(snap.shards.size(), 2u);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  const TrafficReport report = gateway::RunTraffic(gw, traffic);
  done.store(true);
  sampler.join();

  EXPECT_EQ(report.submitted, 300u);
  EXPECT_EQ(report.ok + report.shed + report.failed + report.timed_out, 300u);
  EXPECT_EQ(report.ok, 300u);  // no overload, no failures injected

  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.ok, report.ok);
  EXPECT_EQ(stats.totals.shed, report.shed);
  EXPECT_EQ(stats.totals.accepted, report.ok);  // all admitted, all served
  // Histogram saw every completion, and percentiles are ordered.
  EXPECT_EQ(stats.totals.latency.total(), stats.totals.completed());
  EXPECT_LE(stats.p50_micros(), stats.p95_micros());
  EXPECT_LE(stats.p95_micros(), stats.p99_micros());
  // Per-shard counters sum to the totals.
  std::uint64_t per_shard_ok = 0;
  for (const auto& shard : stats.shards) per_shard_ok += shard.ok;
  EXPECT_EQ(per_shard_ok, stats.totals.ok);
}

TEST(Gateway, FailoverStatsReconcileUnderConcurrentTraffic) {
  // Multi-shard, multi-producer traffic with 30% of android dispatches
  // failing transiently and failover recovering them — the exactly-once
  // completion contract and counter reconciliation must survive the
  // sweep machinery (this is the tsan-leg integration test; the
  // mechanism-level coverage lives in failover_test.cpp).
  GatewayConfig config = BaseConfig(2);
  config.failover.failover = true;
  config.failover.fault_plan =
      support::FaultPlan::Parse("seed=7;android:*:error=timeout:p=0.3")
          .value();
  Gateway gw(config);

  TrafficConfig traffic;
  traffic.producers = 2;
  traffic.requests_per_producer = 200;
  traffic.clients = 32;
  traffic.window = 8;
  traffic.retry.max_attempts = 1;  // recovery must come from failover
  const TrafficReport report = gateway::RunTraffic(gw, traffic);

  // Only android is faulted and its transient failures sweep to healthy
  // platforms, so every request recovers.
  EXPECT_EQ(report.submitted, 400u);
  EXPECT_EQ(report.ok, 400u);

  const GatewaySnapshot stats = gw.Stats();
  EXPECT_GT(stats.totals.faults_injected, 0u);
  EXPECT_GT(stats.totals.failovers, 0u);
  EXPECT_EQ(stats.totals.ok + stats.totals.failed + stats.totals.timed_out,
            stats.totals.completed());
  EXPECT_EQ(stats.totals.completed(), stats.totals.accepted);
  EXPECT_EQ(stats.totals.latency.total(), stats.totals.completed());
  std::uint64_t per_shard_failovers = 0;
  for (const auto& shard : stats.shards) per_shard_failovers += shard.failovers;
  EXPECT_EQ(per_shard_failovers, stats.totals.failovers);
}

}  // namespace
}  // namespace mobivine
