// Failure injection: degraded radio, lossy network, GPS outages and user
// refusals, driven through the uniform MobiVine surface. The layer's
// contract under failure is (a) every failure surfaces as a uniform
// ProxyError or listener status — never a platform exception — and (b)
// long-running adaptations (proximity monitoring, polling) survive
// transient outages.
#include <gtest/gtest.h>

#include "core/bindings/webview_proxies.h"
#include "core/registry.h"
#include "iphone/iphone_platform.h"
#include "s60/midlet.h"
#include "tests/test_util.h"
#include "webview/webview.h"

namespace mobivine {
namespace {

using core::DescriptorStore;
using core::ErrorCode;
using core::ProxyError;
using core::ProxyRegistry;
using mobivine::testing::ApproachTrack;
using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;

const DescriptorStore& Store() {
  static const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

// ---------------------------------------------------------------------------
// Lossy network
// ---------------------------------------------------------------------------

TEST(FailureInjection, LossyNetworkSurfacesUniformTimeouts) {
  device::DeviceConfig config;
  config.seed = 11;
  config.network.loss_probability = 1.0;
  config.network.timeout = sim::SimTime::Seconds(5);
  device::MobileDevice dev(config);
  dev.network().RegisterHost("server", [](const device::HttpRequest&) {
    return device::HttpResponse::Ok("never seen");
  });

  ProxyRegistry registry(&Store());

  android::AndroidPlatform android_platform(dev);
  android_platform.grantPermission(android::permissions::kInternet);
  auto android_http = registry.CreateHttpProxy(android_platform);
  try {
    (void)android_http->get("http://server/");
    FAIL();
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kTimeout);
  }

  s60::S60Platform s60_platform(dev);
  s60_platform.grantPermission(s60::permissions::kHttp);
  auto s60_http = registry.CreateHttpProxy(s60_platform);
  try {
    (void)s60_http->get("http://server/");
    FAIL();
  } catch (const ProxyError& error) {
    // J2ME surfaces HTTP timeouts as InterruptedIOException, which the
    // unified model files under the radio-failure family.
    EXPECT_EQ(error.code(), ErrorCode::kRadioFailure);
  }

  iphone::IPhonePlatform iphone_platform(dev);
  auto iphone_http = registry.CreateHttpProxy(iphone_platform);
  try {
    (void)iphone_http->get("http://server/");
    FAIL();
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kTimeout);
  }
}

TEST(FailureInjection, IntermittentNetworkEventuallySucceeds) {
  device::DeviceConfig config;
  config.seed = 13;
  config.network.loss_probability = 0.5;
  config.network.timeout = sim::SimTime::Seconds(2);
  device::MobileDevice dev(config);
  dev.network().RegisterHost("server", [](const device::HttpRequest&) {
    return device::HttpResponse::Ok("finally");
  });
  android::AndroidPlatform platform(dev);
  platform.grantPermission(android::permissions::kInternet);
  ProxyRegistry registry(&Store());
  auto http = registry.CreateHttpProxy(platform);

  // Application-level retry over the uniform error: must converge.
  int attempts = 0;
  std::string body;
  while (attempts < 32) {
    ++attempts;
    try {
      body = http->get("http://server/").body;
      break;
    } catch (const ProxyError& error) {
      ASSERT_EQ(error.code(), ErrorCode::kTimeout);
    }
  }
  EXPECT_EQ(body, "finally");
  EXPECT_LT(attempts, 32);
}

// ---------------------------------------------------------------------------
// Radio failures during SMS bursts
// ---------------------------------------------------------------------------

TEST(FailureInjection, SmsBurstWithRadioFailuresAllAccountedFor) {
  auto dev = testing::MakeDevice(17);
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kSendSms);
  ProxyRegistry registry(&Store());
  auto sms = registry.CreateSmsProxy(platform);
  sms->setProperty("context", &platform.application_context());

  class Counter : public core::SmsListener {
   public:
    void smsStatusChanged(long long, core::SmsDeliveryStatus status) override {
      switch (status) {
        case core::SmsDeliveryStatus::kSubmitted:
          ++submitted;
          break;
        case core::SmsDeliveryStatus::kDelivered:
          ++delivered;
          break;
        case core::SmsDeliveryStatus::kFailed:
          ++failed;
          break;
      }
    }
    int submitted = 0, delivered = 0, failed = 0;
  } counter;

  dev->modem().InjectRadioFailures(3);
  for (int i = 0; i < 10; ++i) {
    sms->sendTextMessage("+15550123", "burst " + std::to_string(i), &counter);
  }
  dev->RunAll();
  // Exactly 3 failures; the rest submitted AND delivered.
  EXPECT_EQ(counter.failed, 3);
  EXPECT_EQ(counter.submitted, 7);
  EXPECT_EQ(counter.delivered, 7);
}

TEST(FailureInjection, S60BlockingSendFailureLeavesConnectionUsable) {
  auto dev = testing::MakeDevice(19);
  s60::S60Platform platform(*dev);
  platform.grantPermission(s60::permissions::kSmsSend);
  ProxyRegistry registry(&Store());
  auto sms = registry.CreateSmsProxy(platform);

  dev->modem().InjectRadioFailures(1);
  EXPECT_THROW(sms->sendTextMessage("+15550123", "first", nullptr),
               ProxyError);
  // The cached MessageConnection must still work afterwards.
  EXPECT_GT(sms->sendTextMessage("+15550123", "second", nullptr), 0);
}

// ---------------------------------------------------------------------------
// GPS outage during long-running proximity monitoring
// ---------------------------------------------------------------------------

TEST(FailureInjection, ProximityMonitoringSurvivesGpsOutage) {
  // 40% of fixes fail; the S60 one-shot adaptation (poll + exit detection +
  // re-arm) must still produce entry and exit events over a long pass.
  device::DeviceConfig config;
  config.seed = 23;
  config.gps.fix_failure_probability = 0.4;
  device::MobileDevice dev(config);
  dev.gps().set_track(ApproachTrack(800, 10.0, sim::SimTime::Seconds(300)));
  dev.modem().RegisterSubscriber("+15550123");

  s60::S60Platform platform(dev);
  platform.grantPermission(s60::permissions::kLocation);
  ProxyRegistry registry(&Store());
  auto proxy = registry.CreateLocationProxy(platform);

  class Recorder : public core::ProximityListener {
   public:
    void proximityEvent(double, double, double, const core::Location&,
                        bool entering) override {
      entering ? ++entries : ++exits;
    }
    int entries = 0, exits = 0;
  } recorder;

  proxy->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, -1, &recorder);
  dev.RunFor(sim::SimTime::Seconds(300));
  EXPECT_GE(recorder.entries, 1);
  EXPECT_GE(recorder.exits, 1);
}

TEST(FailureInjection, TotalGpsOutageIsUniformlyReported) {
  device::DeviceConfig config;
  config.seed = 29;
  config.gps.fix_failure_probability = 1.0;
  device::MobileDevice dev(config);
  dev.gps().set_track(sim::GeoTrack::Stationary(kBaseLat, kBaseLon));

  ProxyRegistry registry(&Store());
  {
    s60::S60Platform platform(dev);
    platform.grantPermission(s60::permissions::kLocation);
    auto proxy = registry.CreateLocationProxy(platform);
    try {
      (void)proxy->getLocation();
      FAIL();
    } catch (const ProxyError& error) {
      EXPECT_EQ(error.code(), ErrorCode::kLocationUnavailable);
    }
  }
  {
    iphone::IPhonePlatform platform(dev);
    auto proxy = registry.CreateLocationProxy(platform);
    proxy->setProperty("locationTimeout", 5LL);
    try {
      (void)proxy->getLocation();
      FAIL();
    } catch (const ProxyError& error) {
      EXPECT_EQ(error.code(), ErrorCode::kLocationUnavailable);
    }
  }
}

// ---------------------------------------------------------------------------
// WebView: errors inside polled callbacks do not kill the page
// ---------------------------------------------------------------------------

TEST(FailureInjection, CallbackErrorIsolatedToConsole) {
  auto dev = testing::MakeDevice(31);
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kSendSms);
  webview::WebView webview(platform);
  core::InstallWebViewProxies(webview);

  webview.loadScript(R"(
    var later = 0;
    var sms = new SmsProxyImpl();
    sms.sendTextMessage('+15550123', 'x', function(id, status) {
      boom();  // ReferenceError inside the polled callback
    });
    setInterval(function() { later++; }, 1000);
  )");
  dev->RunFor(sim::SimTime::Seconds(10));
  // The callback error landed on the console...
  ASSERT_FALSE(webview.console_errors().empty());
  EXPECT_NE(webview.console_errors()[0].find("boom"), std::string::npos);
  // ...and the page's other timers kept running.
  EXPECT_GE(webview.loadScript("later;").as_number(), 9.0);
}

TEST(FailureInjection, WorkforceAppSurvivesDegradedEverything) {
  // The motivating application under simultaneous degradation: lossy
  // network, occasional GPS failures, one radio failure. It must still
  // check in eventually and never see a platform exception type.
  device::DeviceConfig config;
  config.seed = 37;
  config.network.loss_probability = 0.3;
  config.network.timeout = sim::SimTime::Seconds(2);
  config.gps.fix_failure_probability = 0.3;
  device::MobileDevice dev(config);
  dev.gps().set_track(ApproachTrack(600, 10.0, sim::SimTime::Seconds(300)));
  dev.modem().RegisterSubscriber("+15550199");
  int checkins = 0;
  dev.network().RegisterHost("wfm.example", [&](const device::HttpRequest&) {
    ++checkins;
    return device::HttpResponse::Ok("task");
  });

  android::AndroidPlatform platform(dev);
  platform.grantPermission(android::permissions::kFineLocation);
  platform.grantPermission(android::permissions::kSendSms);
  platform.grantPermission(android::permissions::kInternet);
  ProxyRegistry registry(&Store());
  auto location = registry.CreateLocationProxy(platform);
  location->setProperty("context", &platform.application_context());
  auto sms = registry.CreateSmsProxy(platform);
  sms->setProperty("context", &platform.application_context());
  auto http = registry.CreateHttpProxy(platform);

  class Agent : public core::ProximityListener {
   public:
    Agent(core::HttpProxy& http, core::SmsProxy& sms)
        : http_(http), sms_(sms) {}
    void proximityEvent(double, double, double, const core::Location&,
                        bool entering) override {
      if (!entering) return;
      // Retry the check-in over the lossy network.
      for (int attempt = 0; attempt < 12; ++attempt) {
        try {
          if (http_.post("http://wfm.example/checkin", "agent=1", "text/plain")
                  .ok()) {
            checked_in = true;
            break;
          }
        } catch (const ProxyError&) {
          // uniform, retryable
        }
      }
      try {
        sms_.sendTextMessage("+15550199", "arrived", nullptr);
      } catch (const ProxyError&) {
      }
    }
    core::HttpProxy& http_;
    core::SmsProxy& sms_;
    bool checked_in = false;
  } agent(*http, *sms);

  dev.modem().InjectRadioFailures(1);
  location->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, -1, &agent);
  dev.RunFor(sim::SimTime::Seconds(300));
  EXPECT_TRUE(agent.checked_in);
  EXPECT_GE(checkins, 1);
}

}  // namespace
}  // namespace mobivine
