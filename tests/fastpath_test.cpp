// Fast-path invocation machinery: the string interner, the rewritten
// PropertyBag (variant fast lane + std::any fallback), the tombstone-based
// Scheduler cancellation, and a regression net asserting the indexed
// descriptor lookups agree with straight linear scans over the full
// descriptor directory.
#include <gtest/gtest.h>

#include <any>
#include <array>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "core/property.h"
#include "sim/scheduler.h"
#include "support/fingerprint.h"
#include "support/interner.h"
#include "support/name_index.h"

namespace mobivine {
namespace {

using core::DescriptorStore;
using core::PropertyBag;
using core::ProxyDescriptor;
using sim::Scheduler;
using sim::SimTime;
using support::Interner;
using support::NameIndex;
using support::Symbol;

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(Fingerprint, EqualsMatchesStringEqualityAcrossLengths) {
  // Every window-boundary length (0..26 spans the 4/8/12/16/20/24
  // transitions), plus strings that differ only in one byte at the
  // front, middle, or back — the cases a partial-window key would miss.
  std::vector<std::string> corpus;
  const std::string alphabet = "abcdefghijklmnopqrstuvwxyz";
  for (std::size_t n = 0; n <= alphabet.size(); ++n) {
    corpus.push_back(alphabet.substr(0, n));
  }
  for (std::size_t n = 1; n <= alphabet.size(); ++n) {
    for (std::size_t flip : {std::size_t{0}, n / 2, n - 1}) {
      std::string twisted = alphabet.substr(0, n);
      twisted[flip] = 'Z';
      corpus.push_back(twisted);
    }
  }
  for (const std::string& a : corpus) {
    for (const std::string& b : corpus) {
      EXPECT_EQ(support::FingerprintEquals(a, b), a == b)
          << "a='" << a << "' b='" << b << "'";
    }
  }
}

// ---------------------------------------------------------------------------
// Interner
// ---------------------------------------------------------------------------

TEST(Interner, IdsAreStableDenseAndUnique) {
  Interner interner;
  const Symbol a = interner.Intern("alpha");
  const Symbol b = interner.Intern("beta");
  const Symbol c = interner.Intern("gamma");

  // Dense in first-intern order.
  EXPECT_EQ(a.id(), 0u);
  EXPECT_EQ(b.id(), 1u);
  EXPECT_EQ(c.id(), 2u);

  // Re-interning returns the same id; size does not grow.
  EXPECT_EQ(interner.Intern("beta"), b);
  EXPECT_EQ(interner.size(), 3u);

  // Distinct strings never collide on id.
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);

  // Round trip.
  EXPECT_EQ(interner.NameOf(b), "beta");
}

TEST(Interner, LookupDoesNotIntern) {
  Interner interner;
  interner.Intern("known");
  EXPECT_TRUE(interner.Lookup("known").valid());
  EXPECT_FALSE(interner.Lookup("unknown").valid());
  EXPECT_EQ(interner.size(), 1u);  // Lookup left no trace
  EXPECT_FALSE(Symbol().valid());
}

TEST(Interner, NameReferencesSurviveGrowth) {
  Interner interner;
  const std::string& first = interner.NameOf(interner.Intern("anchor"));
  for (int i = 0; i < 2000; ++i) {
    interner.Intern("filler-" + std::to_string(i));
  }
  // Deque storage: the reference taken before 2000 inserts is intact.
  EXPECT_EQ(first, "anchor");
  EXPECT_EQ(interner.size(), 2001u);
}

TEST(Interner, GlobalIsOneNamespace) {
  const Symbol a = Interner::Global().Intern("fastpath-test-global-prop");
  const Symbol b = Interner::Global().Intern("fastpath-test-global-prop");
  EXPECT_EQ(a, b);
}

TEST(Interner, SharedInternerConcurrentInternAndLookup) {
  // N threads race over a shared spelling set plus a per-thread private
  // set, through a fresh SharedInterner. Every thread must observe the
  // same Symbol for the same spelling, NameOf must round-trip, and the
  // final population must be exactly |shared| + N * |private|.
  support::SharedInterner interner;
  constexpr int kThreads = 8;
  constexpr int kShared = 64;
  constexpr int kPrivate = 128;
  constexpr int kRounds = 40;
  std::vector<std::string> shared_names;
  for (int i = 0; i < kShared; ++i) {
    shared_names.push_back("shared-" + std::to_string(i));
  }
  std::vector<std::array<Symbol, kShared>> seen(kThreads);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kShared; ++i) {
          const Symbol symbol = interner.Intern(shared_names[i]);
          if (round == 0) {
            seen[t][i] = symbol;
          } else if (seen[t][i] != symbol) {
            ok = false;  // id changed across rounds
          }
          if (interner.NameOf(symbol) != shared_names[i]) ok = false;
          if (interner.Lookup(shared_names[i]) != symbol) ok = false;
        }
        for (int i = 0; i < kPrivate; ++i) {
          const std::string name =
              "private-" + std::to_string(t) + "-" + std::to_string(i);
          const Symbol symbol = interner.Intern(name);
          if (interner.NameOf(symbol) != name) ok = false;
        }
        // Misses must stay misses (Lookup never interns).
        if (interner.Lookup("never-interned").valid()) ok = false;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(interner.size(),
            static_cast<std::size_t>(kShared + kThreads * kPrivate));
  // All threads agreed on every shared id.
  for (int t = 1; t < kThreads; ++t) {
    for (int i = 0; i < kShared; ++i) EXPECT_EQ(seen[t][i], seen[0][i]);
  }
}

TEST(NameIndex, ShortAndLongNamesAndDuplicates) {
  NameIndex index;
  index.Add("get");                       // <= 7 chars: key-only match
  index.Add("getLocationUpdates");        // > 7 chars: verified match
  index.Add("getLocationUpdatesV2");      // shares the 7-byte prefix
  index.Add("get");                       // duplicate: first slot wins
  index.Freeze();
  EXPECT_TRUE(index.built());
  EXPECT_EQ(index.Lookup("get"), 0u);
  EXPECT_EQ(index.Lookup("getLocationUpdates"), 1u);
  EXPECT_EQ(index.Lookup("getLocationUpdatesV2"), 2u);
  EXPECT_EQ(index.Lookup("getLocationUpdatesV3"), NameIndex::npos);
  EXPECT_EQ(index.Lookup(""), NameIndex::npos);
}

// ---------------------------------------------------------------------------
// PropertyBag: variant fast lane vs std::any fallback
// ---------------------------------------------------------------------------

TEST(PropertyBag, FastLaneRoundTrips) {
  PropertyBag bag;
  bag.Set("count", 42LL);
  bag.Set("ratio", 2.5);
  bag.Set("enabled", true);
  bag.Set("label", std::string("gps"));
  bag.Set("literal", "wifi");  // const char* lands in the string lane

  EXPECT_EQ(bag.Get<long long>("count"), 42LL);
  EXPECT_EQ(bag.Get<double>("ratio"), 2.5);
  EXPECT_EQ(bag.Get<bool>("enabled"), true);
  EXPECT_EQ(bag.Get<std::string>("label"), "gps");
  EXPECT_EQ(bag.Get<std::string>("literal"), "wifi");
  EXPECT_EQ(bag.size(), 5u);
}

TEST(PropertyBag, TypeMismatchIsNullopt) {
  PropertyBag bag;
  bag.Set("count", 42LL);
  EXPECT_FALSE(bag.Get<std::string>("count").has_value());
  EXPECT_FALSE(bag.Get<double>("count").has_value());
  EXPECT_FALSE(bag.Get<int>("count").has_value());  // any lane is empty
  EXPECT_FALSE(bag.Get<long long>("missing").has_value());
  EXPECT_EQ(bag.GetOr<long long>("missing", -1), -1);
}

TEST(PropertyBag, AnyFallbackPreservesExactTypes) {
  PropertyBag bag;
  int dummy = 7;
  bag.Set("handle", &dummy);  // pointer: not a scalar lane
  bag.Set("plain-int", 5);    // int stays int (legacy Get<int> callers)
  bag.Set("narrow", 1.5f);    // float stays float

  ASSERT_TRUE(bag.Get<int*>("handle").has_value());
  EXPECT_EQ(*bag.Get<int*>("handle"), &dummy);
  EXPECT_EQ(bag.Get<int>("plain-int"), 5);
  EXPECT_EQ(bag.Get<float>("narrow"), 1.5f);
  // The fast lanes do not alias the any lane.
  EXPECT_FALSE(bag.Get<long long>("plain-int").has_value());
  EXPECT_FALSE(bag.Get<double>("narrow").has_value());
  // And a pointer is not silently collapsed to bool.
  EXPECT_FALSE(bag.Get<bool>("handle").has_value());
}

TEST(PropertyBag, BoxedAnyScalarsUnwrapToFastLane) {
  PropertyBag bag;
  bag.Set("a", std::any(42LL));
  bag.Set("b", std::any(std::string("text")));
  bag.Set("c", std::any(true));
  bag.Set("d", std::any(0.25));
  // std::any(42LL) and 42LL are indistinguishable to readers.
  EXPECT_EQ(bag.Get<long long>("a"), 42LL);
  EXPECT_EQ(bag.Get<std::string>("b"), "text");
  EXPECT_EQ(bag.Get<bool>("c"), true);
  EXPECT_EQ(bag.Get<double>("d"), 0.25);
}

TEST(PropertyBag, OverwriteAndNames) {
  PropertyBag bag;
  bag.Set("zeta", 1LL);
  bag.Set("alpha", 2LL);
  bag.Set("zeta", std::string("now a string"));
  EXPECT_EQ(bag.size(), 2u);
  EXPECT_EQ(bag.Get<std::string>("zeta"), "now a string");
  const std::vector<std::string> names = bag.Names();
  ASSERT_EQ(names.size(), 2u);  // alphabetical, like the old std::map
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(PropertyBag, SymbolKeyedAccess) {
  PropertyBag bag;
  const Symbol key = Interner::Global().Intern("fastpath-symbol-key");
  bag.Set(key, 9LL);
  EXPECT_TRUE(bag.Has(key));
  EXPECT_TRUE(bag.Has("fastpath-symbol-key"));
  EXPECT_EQ(bag.Get<long long>(key), 9LL);
  EXPECT_EQ(bag.Get<long long>("fastpath-symbol-key"), 9LL);
}

// ---------------------------------------------------------------------------
// Scheduler::Cancel tombstone edges
// ---------------------------------------------------------------------------

TEST(SchedulerCancel, CancelAfterFireFails) {
  Scheduler scheduler;
  int fired = 0;
  const sim::EventId id =
      scheduler.ScheduleAfter(SimTime::Millis(1), [&fired] { ++fired; });
  EXPECT_EQ(scheduler.Run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(scheduler.Cancel(id));  // already fired
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerCancel, CancelTwiceFailsSecondTime) {
  Scheduler scheduler;
  const sim::EventId id =
      scheduler.ScheduleAfter(SimTime::Millis(1), [] { FAIL(); });
  EXPECT_TRUE(scheduler.Cancel(id));
  EXPECT_FALSE(scheduler.Cancel(id));
  EXPECT_EQ(scheduler.pending_count(), 0u);
  EXPECT_EQ(scheduler.Run(), 0u);  // tombstoned event never fires
}

TEST(SchedulerCancel, CancelInsideCallback) {
  Scheduler scheduler;
  bool second_fired = false;
  sim::EventId self_id = 0;
  sim::EventId second_id = scheduler.ScheduleAfter(
      SimTime::Millis(2), [&second_fired] { second_fired = true; });
  bool self_cancel_result = true;
  self_id = scheduler.ScheduleAfter(SimTime::Millis(1), [&] {
    // Cancelling yourself mid-flight is a no-op (you already fired)...
    self_cancel_result = scheduler.Cancel(self_id);
    // ...but cancelling a different pending event from a callback works.
    EXPECT_TRUE(scheduler.Cancel(second_id));
  });
  scheduler.Run();
  EXPECT_FALSE(self_cancel_result);
  EXPECT_FALSE(second_fired);
}

TEST(SchedulerCancel, GarbageIdsFail) {
  Scheduler scheduler;
  EXPECT_FALSE(scheduler.Cancel(0));
  EXPECT_FALSE(scheduler.Cancel(0xdeadbeefcafeull));
  const sim::EventId id =
      scheduler.ScheduleAfter(SimTime::Millis(1), [] {});
  scheduler.Run();
  // Slot reuse after the fire: a fresh event may occupy the same slot,
  // but the stale id carries the old generation and must not cancel it.
  const sim::EventId fresh =
      scheduler.ScheduleAfter(SimTime::Millis(1), [] {});
  EXPECT_FALSE(scheduler.Cancel(id));
  EXPECT_EQ(scheduler.pending_count(), 1u);
  EXPECT_TRUE(scheduler.Cancel(fresh));
}

TEST(SchedulerCancel, SlotReuseKeepsFifoOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      scheduler.ScheduleAfter(SimTime::Millis(1),
                              [&order, round, i] { order.push_back(round * 4 + i); });
    }
    scheduler.Run();
  }
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(order[i], i);
}

// ---------------------------------------------------------------------------
// Indexed descriptor lookups == linear scans (full descriptor directory)
// ---------------------------------------------------------------------------

TEST(DescriptorIndexes, AgreeWithLinearScansOnFullStore) {
  const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  ASSERT_GT(store.size(), 0u);

  // Probe names: everything that exists, plus misses of various shapes.
  const std::vector<std::string> misses = {
      "", "x", "notAProxy", "getLocationButLonger", "zzzzzzzzzzzz"};

  std::size_t methods_checked = 0;
  std::size_t properties_checked = 0;
  for (const std::string& proxy_name : store.ProxyNames()) {
    const ProxyDescriptor* descriptor = store.Find(proxy_name);
    ASSERT_NE(descriptor, nullptr) << proxy_name;
    EXPECT_EQ(descriptor->name(), proxy_name);

    // Semantic plane: method lookups.
    const auto& semantic = descriptor->semantic();
    std::vector<std::string> method_names;
    for (const auto& method : semantic.methods) method_names.push_back(method.name);
    for (const auto& probe : misses) method_names.push_back(probe);
    for (const std::string& method_name : method_names) {
      EXPECT_EQ(semantic.FindMethod(method_name),
                semantic.FindMethodLinear(method_name))
          << proxy_name << "::" << method_name;
      ++methods_checked;
    }

    // Syntactic planes, indexed by language and per-plane by method.
    for (const auto& plane : descriptor->syntactic_planes()) {
      EXPECT_EQ(descriptor->FindSyntactic(plane.language),
                descriptor->FindSyntacticLinear(plane.language));
      for (const auto& method : plane.methods) {
        EXPECT_EQ(plane.FindMethod(method.method),
                  plane.FindMethodLinear(method.method))
            << proxy_name << "/" << plane.language << "::" << method.method;
      }
      for (const auto& probe : misses) {
        EXPECT_EQ(plane.FindMethod(probe), plane.FindMethodLinear(probe));
      }
    }
    for (const auto& probe : misses) {
      EXPECT_EQ(descriptor->FindSyntactic(probe),
                descriptor->FindSyntacticLinear(probe));
    }

    // Binding planes, indexed by platform and per-plane by property.
    for (const auto& plane : descriptor->binding_planes()) {
      EXPECT_EQ(descriptor->FindBinding(plane.platform),
                descriptor->FindBindingLinear(plane.platform));
      for (const auto& property : plane.properties) {
        EXPECT_EQ(plane.FindProperty(property.name),
                  plane.FindPropertyLinear(property.name))
            << proxy_name << "/" << plane.platform << "::" << property.name;
        ++properties_checked;
      }
      for (const auto& probe : misses) {
        EXPECT_EQ(plane.FindProperty(probe), plane.FindPropertyLinear(probe));
      }
    }
    for (const auto& probe : misses) {
      EXPECT_EQ(descriptor->FindBinding(probe),
                descriptor->FindBindingLinear(probe));
    }
  }
  // The directory is non-trivial; make sure the loop actually covered it.
  EXPECT_GT(methods_checked, 20u);
  EXPECT_GT(properties_checked, 5u);

  // Store-level Find: every name resolves, misses stay misses.
  for (const auto& probe : misses) {
    EXPECT_EQ(store.Find(probe), nullptr) << probe;
  }
}

}  // namespace
}  // namespace mobivine
