// Parameterized property-style sweeps (TEST_P) over the invariants the
// rest of the suite checks pointwise: geodesy inverses, XML round-trips on
// generated documents, scheduler ordering under random operation
// sequences, MiniJS expression semantics, exception-mapping totality, and
// cross-platform uniform-location agreement.
#include <gtest/gtest.h>

#include <functional>
#include <iterator>
#include <map>
#include <set>
#include <sstream>

#include "android/exceptions.h"
#include "core/errors.h"
#include "core/registry.h"
#include "iphone/iphone_platform.h"
#include "minijs/interpreter.h"
#include "s60/exceptions.h"
#include "sim/random.h"
#include "sim/scheduler.h"
#include "support/geo_units.h"
#include "tests/test_util.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace mobivine {
namespace {

// ===========================================================================
// Geodesy: Move/Haversine/Bearing inverses over a parameter grid
// ===========================================================================

struct GeoCase {
  double lat, lon, bearing, distance;
};

class GeoInverseProperty : public ::testing::TestWithParam<GeoCase> {};

TEST_P(GeoInverseProperty, MoveThenMeasureRecoversDistanceAndBearing) {
  const GeoCase& c = GetParam();
  auto moved = support::MoveAlongBearing(c.lat, c.lon, c.bearing, c.distance);
  const double measured = support::HaversineMeters(
      c.lat, c.lon, moved.latitude_deg, moved.longitude_deg);
  EXPECT_NEAR(measured, c.distance, c.distance * 0.002 + 0.5);
  if (c.distance > 10.0 && std::abs(c.lat) < 80.0) {
    const double bearing = support::InitialBearingDeg(
        c.lat, c.lon, moved.latitude_deg, moved.longitude_deg);
    double diff = std::abs(bearing - c.bearing);
    if (diff > 180.0) diff = 360.0 - diff;
    EXPECT_LT(diff, 1.0) << "bearing " << c.bearing;
  }
}

std::vector<GeoCase> GeoGrid() {
  std::vector<GeoCase> cases;
  for (double lat : {-60.0, -10.0, 0.0, 28.5245, 55.0}) {
    for (double bearing : {0.0, 37.0, 90.0, 181.0, 300.0}) {
      for (double distance : {5.0, 200.0, 5000.0, 120000.0}) {
        cases.push_back({lat, 77.1855, bearing, distance});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, GeoInverseProperty,
                         ::testing::ValuesIn(GeoGrid()));

// ===========================================================================
// XML: generated-document round trips
// ===========================================================================

class XmlRoundTripProperty : public ::testing::TestWithParam<int> {};

xml::NodePtr RandomTree(sim::Rng& rng, int depth) {
  static const char* kNames[] = {"proxy", "method", "parameter", "binding",
                                 "property", "item", "cfg"};
  static const char* kTexts[] = {"plain",       "with <angle>",
                                 "amp & quote\"", "'apos'",
                                 "  spaced  ",  "42"};
  auto node = xml::Node::Element(
      kNames[rng.UniformInt(0, std::size(kNames) - 1)]);
  const int attr_count = static_cast<int>(rng.UniformInt(0, 3));
  for (int i = 0; i < attr_count; ++i) {
    node->SetAttribute("a" + std::to_string(i),
                       kTexts[rng.UniformInt(0, std::size(kTexts) - 1)]);
  }
  const int child_count =
      depth > 0 ? static_cast<int>(rng.UniformInt(0, 3)) : 0;
  bool last_was_text = false;  // adjacent text nodes would merge on reparse
  for (int i = 0; i < child_count; ++i) {
    if (!last_was_text && rng.Bernoulli(0.3)) {
      node->AppendChild(xml::Node::Text(
          kTexts[rng.UniformInt(0, std::size(kTexts) - 1)]));
      last_was_text = true;
    } else {
      node->AppendChild(RandomTree(rng, depth - 1));
      last_was_text = false;
    }
  }
  return node;
}

TEST_P(XmlRoundTripProperty, WriteParseWriteIsStable) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  xml::NodePtr original = RandomTree(rng, 4);

  // Pretty-printed output re-parses to a structurally equal tree.
  const std::string pretty = xml::WriteNode(*original);
  xml::Document from_pretty = xml::Parse(pretty);
  EXPECT_TRUE(original->StructurallyEquals(*from_pretty.root)) << pretty;

  // Compact output (no inserted whitespace) is byte-stable under
  // parse -> write.
  xml::WriteOptions compact;
  compact.indent = 0;
  const std::string first = xml::WriteNode(*original, compact);
  xml::Document reparsed = xml::Parse(first);
  EXPECT_TRUE(original->StructurallyEquals(*reparsed.root)) << first;
  EXPECT_EQ(xml::WriteNode(*reparsed.root, compact), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty, ::testing::Range(0, 25));

// ===========================================================================
// Scheduler: ordering + cancellation under random operation sequences
// ===========================================================================

class SchedulerProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerProperty, FiringOrderMonotoneAndCancelledNeverFire) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  sim::Scheduler scheduler;

  struct Planned {
    sim::EventId id;
    sim::SimTime when;
    bool cancelled = false;
  };
  std::vector<Planned> planned;
  std::vector<sim::EventId> fired;

  for (int i = 0; i < 200; ++i) {
    const sim::SimTime when =
        sim::SimTime::Micros(rng.UniformInt(0, 1'000'000));
    Planned p;
    p.when = when;
    p.id = 0;
    planned.push_back(p);
    const size_t index = planned.size() - 1;
    planned[index].id = scheduler.ScheduleAt(when, [&fired, &planned, index] {
      fired.push_back(planned[index].id);
    });
  }
  // Cancel a random ~25%.
  for (auto& p : planned) {
    if (rng.Bernoulli(0.25)) {
      p.cancelled = true;
      EXPECT_TRUE(scheduler.Cancel(p.id));
    }
  }
  scheduler.Run();

  // Every non-cancelled event fired exactly once, in non-decreasing time.
  std::map<sim::EventId, sim::SimTime> when_of;
  std::set<sim::EventId> cancelled;
  size_t expected = 0;
  for (const auto& p : planned) {
    when_of[p.id] = p.when;
    if (p.cancelled) {
      cancelled.insert(p.id);
    } else {
      ++expected;
    }
  }
  ASSERT_EQ(fired.size(), expected);
  sim::SimTime previous = sim::SimTime::Zero();
  for (sim::EventId id : fired) {
    EXPECT_EQ(cancelled.count(id), 0u);
    EXPECT_GE(when_of[id], previous);
    previous = when_of[id];
  }
  // Cancelling after the run always fails.
  for (const auto& p : planned) {
    EXPECT_FALSE(scheduler.Cancel(p.id));
  }
  EXPECT_EQ(scheduler.pending_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty, ::testing::Range(0, 15));

// ===========================================================================
// MiniJS: expression semantics table
// ===========================================================================

struct JsCase {
  const char* source;
  const char* expected;  // ToDisplayString of the final expression
};

class MiniJsSemantics : public ::testing::TestWithParam<JsCase> {};

TEST_P(MiniJsSemantics, EvaluatesToExpectedDisplay) {
  minijs::Interpreter interp;
  minijs::Value result = interp.Run(GetParam().source);
  EXPECT_EQ(result.ToDisplayString(), GetParam().expected)
      << GetParam().source;
}

const JsCase kJsCases[] = {
    {"1 + 2 * 3 - 4 / 2;", "5"},
    {"(2 + 3) * (4 - 1);", "15"},
    {"7 % 4;", "3"},
    {"-(-5);", "5"},
    {"'a' + 1 + 2;", "a12"},
    {"1 + 2 + 'a';", "3a"},
    {"true && false || true;", "true"},
    {"!0;", "true"},
    {"!!'';", "false"},
    {"typeof 1;", "number"},
    {"typeof 'x';", "string"},
    {"typeof undefined;", "undefined"},
    {"typeof {};", "object"},
    {"typeof function(){};", "function"},
    {"1 < 2 == true;", "true"},
    {"'b' > 'a';", "true"},
    {"null == undefined;", "true"},
    {"null === undefined;", "false"},
    {"'5' == 5;", "true"},
    {"'5' === 5;", "false"},
    {"NaN_check();function NaN_check(){ return isNaN(0/0); }", "true"},
    {"var x = 10; x += 5; x -= 3; x;", "12"},
    {"var a = [1,2,3]; a[1] = 9; a.join('');", "193"},
    {"var o = {}; o['k'] = 'v'; o.k;", "v"},
    {"var s = 0; for (var i = 1; i <= 10; i++) { s += i; } s;", "55"},
    {"var n = 5; var f = 1; while (n > 1) { f = f * n; n--; } f;", "120"},
    {"function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); } fib(10);",
     "55"},
    {"var c = 0; try { throw 'x'; } catch (e) { c = 1; } c;", "1"},
    {"Math.max(1, Math.min(9, 5), 2);", "5"},
    {"Math.floor(3.9) + Math.ceil(3.1);", "7"},
    {"'hello world'.substring(6).toUpperCase();", "WORLD"},
    {"[3,1,2].length + [].length;", "3"},
    {"var i = 0; var r = i++ + ++i; r;", "2"},
    {"(function(a, b) { return a * b; })(6, 7);", "42"},
    {"var obj = {n: 1}; obj.n++; ++obj.n; obj.n;", "3"},
    {"'1.5e1' == 15;", "true"},
    {"undefined + 1;", "NaN"},
    {"null + 1;", "1"},
};

INSTANTIATE_TEST_SUITE_P(Table, MiniJsSemantics, ::testing::ValuesIn(kJsCases));

// ===========================================================================
// Exception mapping: totality over the platform exception sets
// ===========================================================================

struct ThrowCase {
  const char* name;
  std::function<void()> thrower;
  core::ErrorCode expected;
};

class ExceptionMappingProperty : public ::testing::TestWithParam<ThrowCase> {};

TEST_P(ExceptionMappingProperty, MapsToExpectedUniformCode) {
  const ThrowCase& c = GetParam();
  try {
    try {
      c.thrower();
    } catch (...) {
      core::RethrowAsProxyError("test");
    }
    FAIL() << c.name << ": nothing thrown";
  } catch (const core::ProxyError& error) {
    EXPECT_EQ(error.code(), c.expected) << c.name;
    EXPECT_EQ(error.platform(), "test");
    EXPECT_FALSE(error.native_type().empty());
  }
}

const ThrowCase kThrowCases[] = {
    {"android-security",
     [] { throw android::SecurityException("x"); },
     core::ErrorCode::kSecurity},
    {"android-illegal",
     [] { throw android::IllegalArgumentException("x"); },
     core::ErrorCode::kIllegalArgument},
    {"android-unsupported",
     [] { throw android::UnsupportedOperationException("x"); },
     core::ErrorCode::kUnsupported},
    {"android-state",
     [] { throw android::IllegalStateException("x"); },
     core::ErrorCode::kInvalidState},
    {"android-timeout",
     [] { throw android::ConnectTimeoutException("x"); },
     core::ErrorCode::kTimeout},
    {"android-protocol",
     [] { throw android::ClientProtocolException("x"); },
     core::ErrorCode::kUnreachable},
    {"android-remote",
     [] { throw android::RemoteException("x"); },
     core::ErrorCode::kUnknown},
    {"s60-security",
     [] { throw s60::SecurityException("x"); },
     core::ErrorCode::kSecurity},
    {"s60-location",
     [] { throw s60::LocationException("x"); },
     core::ErrorCode::kLocationUnavailable},
    {"s60-illegal",
     [] { throw s60::IllegalArgumentException("x"); },
     core::ErrorCode::kIllegalArgument},
    {"s60-null",
     [] { throw s60::NullPointerException("x"); },
     core::ErrorCode::kIllegalArgument},
    {"s60-interrupted",
     [] { throw s60::InterruptedIOException("x"); },
     core::ErrorCode::kRadioFailure},
    {"s60-connection",
     [] { throw s60::ConnectionNotFoundException("x"); },
     core::ErrorCode::kIllegalArgument},
    {"s60-io",
     [] { throw s60::IOException("x"); },
     core::ErrorCode::kNetwork},
    {"std-runtime",
     [] { throw std::runtime_error("x"); },
     core::ErrorCode::kUnknown},
};

INSTANTIATE_TEST_SUITE_P(AllExceptions, ExceptionMappingProperty,
                         ::testing::ValuesIn(kThrowCases));

// ===========================================================================
// Uniform location: all four platforms agree on the same device state
// ===========================================================================

class UniformLocationProperty
    : public ::testing::TestWithParam<std::tuple<const char*, double, double>> {
};

TEST_P(UniformLocationProperty, PlatformsAgreeWithinAccuracy) {
  const auto& [platform_name, lat, lon] = GetParam();
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  core::ProxyRegistry registry(&store);

  auto dev = testing::MakeDevice(77);
  dev->gps().set_track(sim::GeoTrack::Stationary(lat, lon, 100));

  core::Location result;
  const std::string name = platform_name;
  if (name == "android") {
    android::AndroidPlatform platform(*dev);
    platform.grantPermission(android::permissions::kFineLocation);
    auto proxy = registry.CreateLocationProxy(platform);
    proxy->setProperty("context", &platform.application_context());
    result = proxy->getLocation();
  } else if (name == "s60") {
    s60::S60Platform platform(*dev);
    platform.grantPermission(s60::permissions::kLocation);
    auto proxy = registry.CreateLocationProxy(platform);
    proxy->setProperty("verticalAccuracy", 50LL);
    result = proxy->getLocation();
  } else {
    iphone::IPhonePlatform platform(*dev);
    auto proxy = registry.CreateLocationProxy(platform);
    result = proxy->getLocation();
  }
  ASSERT_TRUE(result.valid) << name;
  const double error =
      support::HaversineMeters(result.latitude, result.longitude, lat, lon);
  // Within 5 sigma of the worst (low-power) noise model.
  EXPECT_LT(error, 300.0) << name;
  EXPECT_GT(result.timestamp_ms, 0) << name;
}

INSTANTIATE_TEST_SUITE_P(
    PlatformsTimesPlaces, UniformLocationProperty,
    ::testing::Combine(::testing::Values("android", "s60", "iphone"),
                       ::testing::Values(28.5245, -33.8688, 0.0),
                       ::testing::Values(77.1855, 151.2093)));

// ===========================================================================
// Latency models: samples respect bounds; sample mean approximates Mean()
// ===========================================================================

class LatencyModelProperty
    : public ::testing::TestWithParam<sim::LatencyModel> {};

TEST_P(LatencyModelProperty, SampleMeanNearDeclaredMean) {
  sim::Rng rng(5);
  const sim::LatencyModel& model = GetParam();
  double total = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const sim::SimTime sample = model.Sample(rng);
    EXPECT_GE(sample.micros(), 0);
    total += sample.millis();
  }
  const double mean = model.Mean().millis();
  EXPECT_NEAR(total / n, mean, std::max(0.5, mean * 0.05))
      << model.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Models, LatencyModelProperty,
    ::testing::Values(
        sim::LatencyModel::Fixed(sim::SimTime::Millis(10)),
        sim::LatencyModel::UniformIn(sim::SimTime::Millis(5),
                                     sim::SimTime::Millis(25)),
        sim::LatencyModel::Normal(sim::SimTime::Millis(50),
                                  sim::SimTime::Millis(4)),
        sim::LatencyModel::Normal(sim::SimTime::MillisF(15.6),
                                  sim::SimTime::MillisF(1.0),
                                  sim::SimTime::MillisF(8.0))));

}  // namespace
}  // namespace mobivine
