#include <gtest/gtest.h>

#include "android/activity.h"
#include "android/android_platform.h"
#include "android/exceptions.h"
#include "android/http_client.h"
#include "android/location_manager.h"
#include "android/sms_manager.h"
#include "android/telephony.h"
#include "tests/test_util.h"

namespace mobivine::android {
namespace {

using mobivine::testing::ApproachTrack;
using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;
using mobivine::testing::MakeDevice;

std::unique_ptr<AndroidPlatform> MakePlatform(
    device::MobileDevice& dev, ApiLevel level = ApiLevel::kM5) {
  auto platform = std::make_unique<AndroidPlatform>(dev, level);
  platform->grantPermission(permissions::kFineLocation);
  platform->grantPermission(permissions::kSendSms);
  platform->grantPermission(permissions::kCallPhone);
  platform->grantPermission(permissions::kInternet);
  return platform;
}

class RecordingReceiver : public IntentReceiver {
 public:
  void onReceiveIntent(Context&, const Intent& intent) override {
    received.push_back(intent);
  }
  std::vector<Intent> received;
};

// ---------------------------------------------------------------------------
// Bundle / Intent plumbing
// ---------------------------------------------------------------------------

TEST(Bundle, TypedAccessWithDefaults) {
  Bundle bundle;
  bundle.putBoolean("entering", true);
  bundle.putInt("result", -1);
  bundle.putLong("messageId", 42LL);
  bundle.putDouble("lat", 28.5);
  bundle.putString("s", "x");
  EXPECT_TRUE(bundle.getBoolean("entering", false));
  EXPECT_EQ(bundle.getInt("result", 0), -1);
  EXPECT_EQ(bundle.getLong("messageId", 0), 42);
  EXPECT_DOUBLE_EQ(bundle.getDouble("lat", 0), 28.5);
  EXPECT_EQ(bundle.getString("s"), "x");
  // Missing key and type mismatch both return the fallback.
  EXPECT_EQ(bundle.getInt("missing", 7), 7);
  EXPECT_EQ(bundle.getInt("s", 7), 7);
}

TEST(IntentFilter, MatchesOnAction) {
  IntentFilter filter("A");
  filter.addAction("B");
  EXPECT_TRUE(filter.matches(Intent("A")));
  EXPECT_TRUE(filter.matches(Intent("B")));
  EXPECT_FALSE(filter.matches(Intent("C")));
}

TEST(Context, BroadcastReachesMatchingReceiversAsync) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  Context& context = platform->application_context();
  RecordingReceiver matching, other;
  context.registerReceiver(&matching, IntentFilter("GO"));
  context.registerReceiver(&other, IntentFilter("STOP"));

  Intent intent("GO");
  intent.putExtra("k", 5);
  context.broadcastIntent(intent);
  EXPECT_TRUE(matching.received.empty());  // async via dispatch queue
  dev->RunAll();
  ASSERT_EQ(matching.received.size(), 1u);
  EXPECT_EQ(matching.received[0].getIntExtra("k", 0), 5);
  EXPECT_TRUE(other.received.empty());
  context.unregisterReceiver(&matching);
  context.unregisterReceiver(&other);
}

TEST(Context, UnregisteredBeforeDispatchNotDelivered) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  Context& context = platform->application_context();
  RecordingReceiver receiver;
  context.registerReceiver(&receiver, IntentFilter("GO"));
  context.broadcastIntent(Intent("GO"));
  context.unregisterReceiver(&receiver);
  dev->RunAll();
  EXPECT_TRUE(receiver.received.empty());
}

TEST(Context, GetSystemServiceByName) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  Context& context = platform->application_context();
  EXPECT_EQ(context.getSystemService(LOCATION_SERVICE),
            &platform->location_manager());
  EXPECT_EQ(context.getSystemService(TELEPHONY_SERVICE),
            &platform->telephony_manager());
  EXPECT_EQ(context.getSystemService("bogus"), nullptr);
}

// ---------------------------------------------------------------------------
// LocationManager
// ---------------------------------------------------------------------------

TEST(AndroidLocation, GetCurrentLocationFastPath) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  const sim::SimTime before = dev->scheduler().now();
  Location location =
      platform->location_manager().getCurrentLocation("gps");
  // Figure 10 calibration: Android getLocation ~15.5 ms.
  EXPECT_NEAR((dev->scheduler().now() - before).millis(), 15.5, 5.0);
  EXPECT_NEAR(location.getLatitude(), kBaseLat, 0.05);
  EXPECT_GT(location.getTime(), 0);
}

TEST(AndroidLocation, PermissionAndProviderValidation) {
  auto dev = MakeDevice();
  AndroidPlatform platform(*dev);  // no permissions granted
  EXPECT_THROW(platform.location_manager().getCurrentLocation("gps"),
               SecurityException);
  platform.grantPermission(permissions::kFineLocation);
  EXPECT_THROW(platform.location_manager().getCurrentLocation("wifi"),
               IllegalArgumentException);
}

TEST(AndroidLocation, ProximityAlertEntryAndExitEvents) {
  auto dev = MakeDevice();
  // Drive through the region: enter, then exit on the far side.
  dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  auto platform = MakePlatform(*dev);
  Context& context = platform->application_context();

  RecordingReceiver receiver;
  context.registerReceiver(&receiver, IntentFilter("PROX"));
  platform->location_manager().addProximityAlert(kBaseLat, kBaseLon, 200.0f,
                                                 -1, Intent("PROX"));
  dev->RunFor(sim::SimTime::Seconds(120));

  // Android semantics: entering AND exiting events (paper §2). GPS noise
  // near the boundary may produce extra pairs, but events must alternate
  // starting with an entry, and the pass ends outside.
  ASSERT_GE(receiver.received.size(), 2u);
  bool expected_entering = true;
  for (const Intent& intent : receiver.received) {
    EXPECT_EQ(intent.getBooleanExtra("entering", !expected_entering),
              expected_entering);
    expected_entering = !expected_entering;
  }
  EXPECT_FALSE(receiver.received.back().getBooleanExtra("entering", true));
  context.unregisterReceiver(&receiver);
}

TEST(AndroidLocation, ProximityAlertExpires) {
  auto dev = MakeDevice();
  // Enters at ~30 s; expiration at 10 s kills the alert first.
  dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  auto platform = MakePlatform(*dev);
  Context& context = platform->application_context();
  RecordingReceiver receiver;
  context.registerReceiver(&receiver, IntentFilter("PROX"));
  platform->location_manager().addProximityAlert(kBaseLat, kBaseLon, 200.0f,
                                                 10'000, Intent("PROX"));
  dev->RunFor(sim::SimTime::Seconds(120));
  EXPECT_TRUE(receiver.received.empty());
  EXPECT_EQ(platform->location_manager().alert_count(), 0u);
  context.unregisterReceiver(&receiver);
}

TEST(AndroidLocation, RemoveProximityAlertByAction) {
  auto dev = MakeDevice();
  dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  auto platform = MakePlatform(*dev);
  platform->location_manager().addProximityAlert(kBaseLat, kBaseLon, 200.0f,
                                                 -1, Intent("PROX"));
  EXPECT_EQ(platform->location_manager().alert_count(), 1u);
  platform->location_manager().removeProximityAlert("PROX");
  EXPECT_EQ(platform->location_manager().alert_count(), 0u);
}

TEST(AndroidLocation, AlertValidation) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  auto& manager = platform->location_manager();
  EXPECT_THROW(manager.addProximityAlert(95.0, 0.0, 10.0f, -1, Intent("A")),
               IllegalArgumentException);
  EXPECT_THROW(manager.addProximityAlert(0.0, 0.0, -1.0f, -1, Intent("A")),
               IllegalArgumentException);
  EXPECT_THROW(manager.addProximityAlert(0.0, 0.0, 10.0f, -1, Intent("")),
               IllegalArgumentException);
}

TEST(AndroidLocation, RegistrationCostMatchesFigure10) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  const sim::SimTime before = dev->scheduler().now();
  platform->location_manager().addProximityAlert(kBaseLat, kBaseLon, 100.0f,
                                                 -1, Intent("PROX"));
  // Figure 10: Android addProximityAlert ~53.6 ms.
  EXPECT_NEAR((dev->scheduler().now() - before).millis(), 53.6, 10.0);
}

// --- API evolution (E4) ------------------------------------------------

TEST(AndroidApiLevels, IntentOverloadRemovedOn10) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev, ApiLevel::k10);
  EXPECT_THROW(platform->location_manager().addProximityAlert(
                   kBaseLat, kBaseLon, 100.0f, -1, Intent("PROX")),
               UnsupportedOperationException);
}

TEST(AndroidApiLevels, PendingIntentUnavailableOnM5) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev, ApiLevel::kM5);
  auto pending = PendingIntent::getBroadcast(
      platform->application_context(), 1, Intent("PROX"), 0);
  EXPECT_THROW(platform->location_manager().addProximityAlert(
                   kBaseLat, kBaseLon, 100.0f, -1, pending),
               UnsupportedOperationException);
}

TEST(AndroidApiLevels, PendingIntentPathWorksOn10) {
  auto dev = MakeDevice();
  dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  auto platform = MakePlatform(*dev, ApiLevel::k10);
  Context& context = platform->application_context();
  RecordingReceiver receiver;
  context.registerReceiver(&receiver, IntentFilter("PROX"));
  auto pending = PendingIntent::getBroadcast(context, 1, Intent("PROX"), 0);
  platform->location_manager().addProximityAlert(kBaseLat, kBaseLon, 200.0f,
                                                 -1, pending);
  dev->RunFor(sim::SimTime::Seconds(60));
  ASSERT_FALSE(receiver.received.empty());
  EXPECT_TRUE(receiver.received[0].getBooleanExtra("entering", false));
  context.unregisterReceiver(&receiver);
}

// ---------------------------------------------------------------------------
// SmsManager
// ---------------------------------------------------------------------------

TEST(AndroidSms, SentAndDeliveredBroadcasts) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  Context& context = platform->application_context();
  RecordingReceiver receiver;
  IntentFilter filter("SENT");
  filter.addAction("DELIVERED");
  context.registerReceiver(&receiver, filter);

  const sim::SimTime before = dev->scheduler().now();
  platform->sms_manager().sendTextMessage("+15550123", "", "hi", "SENT",
                                          "DELIVERED");
  // Figure 10: Android sendSMS ~52.7 ms blocking.
  EXPECT_NEAR((dev->scheduler().now() - before).millis(), 52.7, 10.0);

  dev->RunAll();
  ASSERT_EQ(receiver.received.size(), 2u);
  EXPECT_EQ(receiver.received[0].getAction(), "SENT");
  EXPECT_EQ(receiver.received[0].getIntExtra("result", 0),
            SmsManager::RESULT_OK);
  EXPECT_EQ(receiver.received[1].getAction(), "DELIVERED");
  context.unregisterReceiver(&receiver);
}

TEST(AndroidSms, FailureResultCodes) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  Context& context = platform->application_context();
  RecordingReceiver receiver;
  context.registerReceiver(&receiver, IntentFilter("SENT"));

  platform->sms_manager().sendTextMessage("+10000000", "", "hi", "SENT", "");
  dev->RunAll();
  ASSERT_EQ(receiver.received.size(), 1u);
  EXPECT_EQ(receiver.received[0].getIntExtra("result", 0),
            SmsManager::RESULT_ERROR_NO_SERVICE);

  receiver.received.clear();
  dev->modem().InjectRadioFailures(1);
  platform->sms_manager().sendTextMessage("+15550123", "", "hi", "SENT", "");
  dev->RunAll();
  ASSERT_EQ(receiver.received.size(), 1u);
  EXPECT_EQ(receiver.received[0].getIntExtra("result", 0),
            SmsManager::RESULT_ERROR_GENERIC_FAILURE);
  context.unregisterReceiver(&receiver);
}

TEST(AndroidSms, ArgumentAndPermissionChecks) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  EXPECT_THROW(
      platform->sms_manager().sendTextMessage("", "", "x", "", ""),
      IllegalArgumentException);
  EXPECT_THROW(
      platform->sms_manager().sendTextMessage("+15550123", "", "", "", ""),
      IllegalArgumentException);
  platform->revokePermission(permissions::kSendSms);
  EXPECT_THROW(
      platform->sms_manager().sendTextMessage("+15550123", "", "x", "", ""),
      SecurityException);
}

TEST(AndroidSms, DivideMessageMatchesModem) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  EXPECT_EQ(platform->sms_manager().divideMessage(std::string(200, 'a')), 2);
}

// ---------------------------------------------------------------------------
// Telephony
// ---------------------------------------------------------------------------

class RecordingPhoneListener : public PhoneStateListener {
 public:
  void onCallStateChanged(int state, const std::string&) override {
    states.push_back(state);
  }
  std::vector<int> states;
};

TEST(AndroidTelephony, CallLifecycle) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  RecordingPhoneListener listener;
  auto& telephony = platform->telephony_manager();
  telephony.listen(&listener);
  EXPECT_TRUE(telephony.call("+15550123"));
  dev->RunAll();
  EXPECT_EQ(telephony.getCallState(), PhoneStateListener::CALL_STATE_OFFHOOK);
  telephony.endCall();
  EXPECT_EQ(telephony.getCallState(), PhoneStateListener::CALL_STATE_IDLE);
  ASSERT_FALSE(listener.states.empty());
  EXPECT_EQ(listener.states.back(), PhoneStateListener::CALL_STATE_IDLE);
  telephony.stopListening(&listener);
}

TEST(AndroidTelephony, Validation) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  EXPECT_THROW(platform->telephony_manager().call(""),
               IllegalArgumentException);
  platform->revokePermission(permissions::kCallPhone);
  EXPECT_THROW(platform->telephony_manager().call("+15550123"),
               SecurityException);
}

// ---------------------------------------------------------------------------
// Apache HTTP client analog
// ---------------------------------------------------------------------------

TEST(AndroidHttp, GetAndPost) {
  auto dev = MakeDevice();
  dev->network().RegisterHost("server", [](const device::HttpRequest& req) {
    if (req.method == "POST") {
      return device::HttpResponse::Ok("posted:" + req.body);
    }
    return device::HttpResponse::Ok("got:" + req.url.path);
  });
  auto platform = MakePlatform(*dev);
  DefaultHttpClient client(*platform);

  HttpGet get("http://server/a/b");
  ApacheHttpResponse get_response = client.execute(get);
  EXPECT_EQ(get_response.getStatusCode(), 200);
  EXPECT_EQ(get_response.getEntity(), "got:/a/b");

  HttpPost post("http://server/c");
  post.setEntity("payload");
  ApacheHttpResponse post_response = client.execute(post);
  EXPECT_EQ(post_response.getEntity(), "posted:payload");
}

TEST(AndroidHttp, ErrorMapping) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  DefaultHttpClient client(*platform);
  HttpGet bad_uri("garbage");
  EXPECT_THROW(client.execute(bad_uri), IllegalArgumentException);
  HttpGet unreachable("http://ghost/");
  EXPECT_THROW(client.execute(unreachable), ClientProtocolException);
  platform->revokePermission(permissions::kInternet);
  HttpGet get("http://server/");
  EXPECT_THROW(client.execute(get), SecurityException);
}

TEST(AndroidHttp, TimeoutMapsToConnectTimeout) {
  device::DeviceConfig config;
  config.network.loss_probability = 1.0;
  device::MobileDevice dev(config);
  dev.network().RegisterHost("server", [](const device::HttpRequest&) {
    return device::HttpResponse::Ok("x");
  });
  auto platform = MakePlatform(dev);
  DefaultHttpClient client(*platform);
  HttpGet get("http://server/");
  EXPECT_THROW(client.execute(get), ConnectTimeoutException);
}

// ---------------------------------------------------------------------------
// Activity lifecycle
// ---------------------------------------------------------------------------

class ProbeActivity : public Activity {
 public:
  void onCreate() override { created = true; }
  void onStart() override { started = true; }
  void onDestroy() override { destroyed = true; }
  bool created = false, started = false, destroyed = false;
};

TEST(AndroidActivity, LifecycleAndContextAccess) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  ActivityManager manager(*platform);
  ProbeActivity activity;
  EXPECT_THROW(activity.getApplicationContext(), IllegalStateException);
  manager.launch(activity);
  EXPECT_TRUE(activity.created);
  EXPECT_TRUE(activity.started);
  EXPECT_EQ(&activity.getApplicationContext(),
            &platform->application_context());
  manager.destroy(activity);
  EXPECT_TRUE(activity.destroyed);
}

}  // namespace
}  // namespace mobivine::android
