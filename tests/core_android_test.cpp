#include <gtest/gtest.h>

#include "core/bindings/android_bindings.h"
#include "core/descriptor/proxy_descriptor.h"
#include "core/registry.h"
#include "tests/test_util.h"

namespace mobivine::core {
namespace {

using mobivine::testing::ApproachTrack;
using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;
using mobivine::testing::MakeDevice;

const DescriptorStore& Store() {
  static const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

struct Fixture {
  explicit Fixture(std::uint64_t seed = 42,
                   android::ApiLevel level = android::ApiLevel::kM5)
      : dev(MakeDevice(seed)), platform(*dev, level), registry(&Store()) {
    platform.grantPermission(android::permissions::kFineLocation);
    platform.grantPermission(android::permissions::kSendSms);
    platform.grantPermission(android::permissions::kCallPhone);
    platform.grantPermission(android::permissions::kInternet);
  }
  std::unique_ptr<device::MobileDevice> dev;
  android::AndroidPlatform platform;
  ProxyRegistry registry;
};

class RecordingProximity : public ProximityListener {
 public:
  struct Event {
    double ref_lat, ref_lon, ref_alt;
    Location location;
    bool entering;
  };
  void proximityEvent(double ref_latitude, double ref_longitude,
                      double ref_altitude, const Location& current,
                      bool entering) override {
    events.push_back({ref_latitude, ref_longitude, ref_altitude, current,
                      entering});
  }
  std::vector<Event> events;
};

class RecordingSms : public SmsListener {
 public:
  void smsStatusChanged(long long id, SmsDeliveryStatus status) override {
    events.emplace_back(id, status);
  }
  std::vector<std::pair<long long, SmsDeliveryStatus>> events;
};

// ---------------------------------------------------------------------------
// Properties / MProxy base behaviour
// ---------------------------------------------------------------------------

TEST(AndroidProxyProperties, RequiredContextEnforced) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  EXPECT_THROW(proxy->getLocation(), ProxyError);
  try {
    proxy->getLocation();
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIllegalArgument);
  }
}

TEST(AndroidProxyProperties, UnknownPropertyRejected) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  EXPECT_THROW(proxy->setProperty("bogus", 1), ProxyError);
}

TEST(AndroidProxyProperties, AllowedValuesEnforced) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  EXPECT_THROW(proxy->setProperty("provider", std::string("wifi")),
               ProxyError);
  EXPECT_NO_THROW(proxy->setProperty("provider", std::string("network")));
}

TEST(AndroidProxyProperties, DefaultsAppliedFromDescriptor) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  EXPECT_EQ(proxy->getPropertyOr<std::string>("provider", ""), "gps");
}

// ---------------------------------------------------------------------------
// getLocation
// ---------------------------------------------------------------------------

TEST(AndroidLocationProxy, UniformLocationReturned) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  proxy->setProperty("context", &fx.platform.application_context());
  Location location = proxy->getLocation();
  EXPECT_TRUE(location.valid);
  EXPECT_NEAR(location.latitude, kBaseLat, 0.05);
  EXPECT_NEAR(location.longitude, kBaseLon, 0.05);
  EXPECT_GT(location.timestamp_ms, 0);
}

TEST(AndroidLocationProxy, MetersOverheadOnTopOfNative) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  proxy->setProperty("context", &fx.platform.application_context());
  const sim::SimTime before = fx.dev->scheduler().now();
  (void)proxy->getLocation();
  const double elapsed = (fx.dev->scheduler().now() - before).millis();
  // Figure 10 "With Proxy" Android getLocation ~17.3 ms (native 15.5 +
  // ~1.8 proxy). Allow slack for the stochastic native part.
  EXPECT_NEAR(elapsed, 17.3, 6.0);
  EXPECT_GT(proxy->meter().count(Op::kDispatch), 0u);
  EXPECT_GT(proxy->meter().count(Op::kTypeConversion), 0u);
}

// ---------------------------------------------------------------------------
// Proximity alerts: Intent machinery hidden, uniform callback exposed
// ---------------------------------------------------------------------------

TEST(AndroidLocationProxy, ProximityEntryExitUniformEvents) {
  Fixture fx;
  fx.dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  proxy->setProperty("context", &fx.platform.application_context());

  RecordingProximity listener;
  proxy->addProximityAlert(kBaseLat, kBaseLon, 210.0, 200.0f, -1, &listener);
  EXPECT_EQ(proxy->active_alert_count(), 1u);
  fx.dev->RunFor(sim::SimTime::Seconds(120));

  ASSERT_GE(listener.events.size(), 2u);
  EXPECT_TRUE(listener.events.front().entering);
  EXPECT_FALSE(listener.events.back().entering);
  // The uniform callback carries the reference point and a uniform
  // Location (the paper's Figure 8 signature).
  EXPECT_DOUBLE_EQ(listener.events[0].ref_lat, kBaseLat);
  EXPECT_DOUBLE_EQ(listener.events[0].ref_alt, 210.0);
  EXPECT_TRUE(listener.events[0].location.valid);
}

TEST(AndroidLocationProxy, RemoveProximityAlertStopsEvents) {
  Fixture fx;
  fx.dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  proxy->setProperty("context", &fx.platform.application_context());
  RecordingProximity listener;
  proxy->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, -1, &listener);
  proxy->removeProximityAlert(&listener);
  EXPECT_EQ(proxy->active_alert_count(), 0u);
  fx.dev->RunFor(sim::SimTime::Seconds(120));
  EXPECT_TRUE(listener.events.empty());
}

TEST(AndroidLocationProxy, NullListenerRejected) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  proxy->setProperty("context", &fx.platform.application_context());
  EXPECT_THROW(proxy->addProximityAlert(0, 0, 0, 10.0f, -1, nullptr),
               ProxyError);
}

// --- E4: the same proxy call works on both API levels ----------------------

TEST(AndroidLocationProxy, AbsorbsApiEvolution) {
  for (android::ApiLevel level :
       {android::ApiLevel::kM5, android::ApiLevel::k10}) {
    Fixture fx(42, level);
    fx.dev->gps().set_track(
        ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
    auto proxy = fx.registry.CreateLocationProxy(fx.platform);
    proxy->setProperty("context", &fx.platform.application_context());
    RecordingProximity listener;
    // IDENTICAL application code on m5 and 1.0: the binding picks Intent
    // vs PendingIntent internally.
    proxy->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, -1, &listener);
    fx.dev->RunFor(sim::SimTime::Seconds(60));
    EXPECT_FALSE(listener.events.empty())
        << "level=" << android::ToString(level);
    EXPECT_TRUE(listener.events.front().entering);
  }
}

// ---------------------------------------------------------------------------
// Exception mapping
// ---------------------------------------------------------------------------

TEST(AndroidLocationProxy, SecurityMappedToUniformCode) {
  Fixture fx;
  fx.platform.revokePermission(android::permissions::kFineLocation);
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  proxy->setProperty("context", &fx.platform.application_context());
  try {
    proxy->getLocation();
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kSecurity);
    EXPECT_EQ(error.platform(), "android");
    EXPECT_EQ(error.native_type(), "android.SecurityException");
  }
}

// ---------------------------------------------------------------------------
// SMS proxy
// ---------------------------------------------------------------------------

TEST(AndroidSmsProxy, UniformDeliveryCallbacks) {
  Fixture fx;
  auto proxy = fx.registry.CreateSmsProxy(fx.platform);
  proxy->setProperty("context", &fx.platform.application_context());
  RecordingSms listener;
  proxy->sendTextMessage("+15550123", "status report", &listener);
  fx.dev->RunAll();
  ASSERT_EQ(listener.events.size(), 2u);
  EXPECT_EQ(listener.events[0].second, SmsDeliveryStatus::kSubmitted);
  EXPECT_EQ(listener.events[1].second, SmsDeliveryStatus::kDelivered);
}

TEST(AndroidSmsProxy, FailureReportedAsUniformStatus) {
  Fixture fx;
  auto proxy = fx.registry.CreateSmsProxy(fx.platform);
  proxy->setProperty("context", &fx.platform.application_context());
  RecordingSms listener;
  proxy->sendTextMessage("+19998887777", "x", &listener);
  fx.dev->RunAll();
  ASSERT_EQ(listener.events.size(), 1u);
  EXPECT_EQ(listener.events[0].second, SmsDeliveryStatus::kFailed);
}

TEST(AndroidSmsProxy, NoListenerStillSends) {
  Fixture fx;
  auto proxy = fx.registry.CreateSmsProxy(fx.platform);
  proxy->setProperty("context", &fx.platform.application_context());
  EXPECT_GT(proxy->sendTextMessage("+15550123", "fire and forget", nullptr),
            0);
  fx.dev->RunAll();
}

TEST(AndroidSmsProxy, ValidationAndSegments) {
  Fixture fx;
  auto proxy = fx.registry.CreateSmsProxy(fx.platform);
  proxy->setProperty("context", &fx.platform.application_context());
  EXPECT_THROW(proxy->sendTextMessage("", "x", nullptr), ProxyError);
  EXPECT_THROW(proxy->sendTextMessage("+15550123", "", nullptr), ProxyError);
  EXPECT_EQ(proxy->segmentCount(std::string(161, 'a')), 2);
}

// ---------------------------------------------------------------------------
// Call proxy
// ---------------------------------------------------------------------------

class RecordingCall : public CallListener {
 public:
  void callStateChanged(CallProgress progress) override {
    states.push_back(progress);
  }
  std::vector<CallProgress> states;
};

TEST(AndroidCallProxy, UniformProgressStates) {
  Fixture fx;
  auto proxy = fx.registry.CreateCallProxy(fx.platform);
  RecordingCall listener;
  EXPECT_TRUE(proxy->makeCall("+15550123", &listener));
  fx.dev->RunAll();
  ASSERT_EQ(listener.states.size(), 3u);
  EXPECT_EQ(listener.states[0], CallProgress::kDialing);
  EXPECT_EQ(listener.states[1], CallProgress::kRinging);
  EXPECT_EQ(listener.states[2], CallProgress::kConnected);
  EXPECT_EQ(proxy->currentState(), CallProgress::kConnected);
  proxy->endCall();
  EXPECT_EQ(proxy->currentState(), CallProgress::kEnded);
}

TEST(AndroidCallProxy, FailedCallState) {
  Fixture fx;
  auto proxy = fx.registry.CreateCallProxy(fx.platform);
  RecordingCall listener;
  proxy->makeCall("+10000000", &listener);
  fx.dev->RunAll();
  ASSERT_FALSE(listener.states.empty());
  EXPECT_EQ(listener.states.back(), CallProgress::kFailed);
}

// ---------------------------------------------------------------------------
// Http proxy
// ---------------------------------------------------------------------------

TEST(AndroidHttpProxy, GetPostAndHeaders) {
  Fixture fx;
  fx.dev->network().RegisterHost("server", [](const device::HttpRequest& req) {
    if (req.method == "POST") {
      EXPECT_EQ(req.headers.GetOr("Content-Type", ""), "application/json");
      return device::HttpResponse::Ok("posted");
    }
    EXPECT_EQ(req.headers.GetOr("X-Agent", ""), "7");
    return device::HttpResponse::Ok("got");
  });
  auto proxy = fx.registry.CreateHttpProxy(fx.platform);
  proxy->setHeader("X-Agent", "7");
  HttpResult get = proxy->get("http://server/tasks");
  EXPECT_TRUE(get.ok());
  EXPECT_EQ(get.body, "got");
  HttpResult post =
      proxy->post("http://server/report", "{}", "application/json");
  EXPECT_EQ(post.body, "posted");
}

TEST(AndroidHttpProxy, ErrorsMappedUniformly) {
  Fixture fx;
  auto proxy = fx.registry.CreateHttpProxy(fx.platform);
  try {
    (void)proxy->get("http://ghost/");
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kUnreachable);
  }
  try {
    (void)proxy->get("totally-bogus");
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIllegalArgument);
  }
}

}  // namespace
}  // namespace mobivine::core
