#include <gtest/gtest.h>

#include "android/android_platform.h"
#include "tests/test_util.h"
#include "webview/webview.h"

namespace mobivine::webview {
namespace {

using minijs::Value;
using mobivine::testing::ApproachTrack;
using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;
using mobivine::testing::MakeDevice;

struct Fixture {
  explicit Fixture(std::uint64_t seed = 42,
                   android::ApiLevel level = android::ApiLevel::kM5)
      : dev(MakeDevice(seed)), platform(*dev, level), webview(platform) {
    platform.grantPermission(android::permissions::kFineLocation);
    platform.grantPermission(android::permissions::kSendSms);
    platform.grantPermission(android::permissions::kCallPhone);
    platform.grantPermission(android::permissions::kInternet);
    webview.injectRawPlatformInterfaces();
  }
  std::unique_ptr<device::MobileDevice> dev;
  android::AndroidPlatform platform;
  WebView webview;
};

// ---------------------------------------------------------------------------
// NotificationTable
// ---------------------------------------------------------------------------

TEST(NotificationTable, PostDrainLifecycle) {
  NotificationTable table;
  auto a = table.NewChannel();
  auto b = table.NewChannel();
  EXPECT_NE(a, b);
  table.Post(a, Value::Number(1));
  table.Post(a, Value::Number(2));
  table.Post(b, Value::Number(3));
  EXPECT_EQ(table.PendingCount(a), 2u);
  auto drained = table.Drain(a);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_DOUBLE_EQ(drained[0].as_number(), 1);
  EXPECT_TRUE(table.Drain(a).empty());
  EXPECT_EQ(table.PendingCount(b), 1u);
  table.CloseChannel(b);
  EXPECT_TRUE(table.Drain(b).empty());
}

TEST(NotificationTable, ImplicitChannelOnPostIsBoundedByWatermark) {
  NotificationTable table;
  // Posts to ids NewChannel() never handed out are dropped — a buggy
  // wrapper cannot grow the table without bound.
  table.Post(777, Value::String("bogus"));
  EXPECT_EQ(table.PendingCount(777), 0u);
  EXPECT_EQ(table.channel_count(), 0u);

  // But an allocated channel may be re-posted to even after CloseChannel
  // dropped its entry (the wrapper half doesn't know JS closed it).
  const auto channel = table.NewChannel();
  table.CloseChannel(channel);
  table.Post(channel, Value::String("late"));
  EXPECT_EQ(table.PendingCount(channel), 1u);
  table.Post(0, Value::String("never-valid"));
  table.Post(-5, Value::String("never-valid"));
  EXPECT_EQ(table.channel_count(), 1u);
}

TEST(NotificationTable, ChannelCacheSurvivesCloseAndGarbageIds) {
  NotificationTable table;
  // Garbage ids before any channel exists (the cache is empty; 0 must
  // not be treated as a hit).
  EXPECT_TRUE(table.Drain(0).empty());
  EXPECT_TRUE(table.Drain(-3).empty());

  const auto a = table.NewChannel();
  const auto b = table.NewChannel();
  // Burst to one channel (the cached pattern), then switch channels.
  for (int i = 0; i < 4; ++i) table.Post(a, Value::Number(i));
  table.Post(b, Value::Number(99));
  EXPECT_EQ(table.Drain(a).size(), 4u);
  EXPECT_EQ(table.Drain(b).size(), 1u);

  // Closing the cached channel must invalidate the cache: a re-post
  // recreates the entry rather than writing through a stale pointer.
  table.Post(a, Value::Number(7));
  table.CloseChannel(a);
  EXPECT_TRUE(table.Drain(a).empty());
  table.Post(a, Value::Number(8));
  ASSERT_EQ(table.PendingCount(a), 1u);
  EXPECT_DOUBLE_EQ(table.Drain(a)[0].as_number(), 8);
}

// ---------------------------------------------------------------------------
// Bridge costs (Figure 10 calibration, WebView raw column)
// ---------------------------------------------------------------------------

TEST(Bridge, RawGetLocationMatchesFigure10) {
  Fixture fx;
  const sim::SimTime before = fx.dev->scheduler().now();
  Value loc = fx.webview.loadScript(
      "LocationManagerRaw.getCurrentLocation('gps');");
  const double elapsed_ms = (fx.dev->scheduler().now() - before).millis();
  // Paper: WebView getLocation without proxy ~120 ms.
  EXPECT_NEAR(elapsed_ms, 120.0, 15.0);
  ASSERT_TRUE(loc.is_object());
  EXPECT_NEAR(loc.as_object()->Get("latitude").as_number(), kBaseLat, 0.05);
  EXPECT_TRUE(loc.as_object()->Has("bearing"));  // raw Android field names
}

TEST(Bridge, RawSendSmsMatchesFigure10) {
  Fixture fx;
  const sim::SimTime before = fx.dev->scheduler().now();
  fx.webview.loadScript(
      "SmsManagerRaw.sendTextMessage('+15550123', null, 'hi', 'S', 'D');");
  const double elapsed_ms = (fx.dev->scheduler().now() - before).millis();
  // Paper: WebView sendSMS without proxy ~91.6 ms.
  EXPECT_NEAR(elapsed_ms, 91.6, 12.0);
}

TEST(Bridge, RawAddProximityAlertMatchesFigure10) {
  Fixture fx;
  const sim::SimTime before = fx.dev->scheduler().now();
  fx.webview.loadScript(
      "LocationManagerRaw.addProximityAlert(28.52, 77.18, 150, -1, 'P');");
  const double elapsed_ms = (fx.dev->scheduler().now() - before).millis();
  // Paper: WebView addProximityAlert without proxy ~78.4 ms.
  EXPECT_NEAR(elapsed_ms, 78.4, 10.0);
}

TEST(Bridge, CrossingsCounted) {
  Fixture fx;
  const auto before = fx.webview.bridge().crossings();
  fx.webview.loadScript("LocationManagerRaw.getCurrentLocation('gps');");
  EXPECT_EQ(fx.webview.bridge().crossings(), before + 1);
}

TEST(Bridge, ScriptStepsChargedAsVirtualTime) {
  Fixture fx;
  const sim::SimTime before = fx.dev->scheduler().now();
  fx.webview.loadScript(
      "var s = 0; for (var i = 0; i < 1000; i++) { s += i; }");
  // ~30 us per step, thousands of steps -> tens of virtual ms, no bridge.
  const double elapsed_ms = (fx.dev->scheduler().now() - before).millis();
  EXPECT_GT(elapsed_ms, 10.0);
  EXPECT_LT(elapsed_ms, 2000.0);
}

// ---------------------------------------------------------------------------
// Error propagation as codes
// ---------------------------------------------------------------------------

TEST(BridgeErrors, SecurityExceptionBecomesCode101) {
  Fixture fx;
  fx.platform.revokePermission(android::permissions::kFineLocation);
  Value code = fx.webview.loadScript(R"(
    var c = 0;
    try { LocationManagerRaw.getCurrentLocation('gps'); }
    catch (e) { c = e.code; }
    c;
  )");
  EXPECT_DOUBLE_EQ(code.as_number(), kErrorCodeSecurity);
}

TEST(BridgeErrors, IllegalArgumentBecomesCode102) {
  Fixture fx;
  Value code = fx.webview.loadScript(R"(
    var c = 0;
    try { LocationManagerRaw.getCurrentLocation('wifi'); }
    catch (e) { c = e.code; }
    c;
  )");
  EXPECT_DOUBLE_EQ(code.as_number(), kErrorCodeIllegalArgument);
}

TEST(BridgeErrors, HttpUnreachableBecomesCode105) {
  Fixture fx;
  Value code = fx.webview.loadScript(R"(
    var c = 0;
    try { HttpClientRaw.execute('GET', 'http://ghost/'); }
    catch (e) { c = e.code; }
    c;
  )");
  EXPECT_DOUBLE_EQ(code.as_number(), kErrorCodeClientProtocol);
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

TEST(Timers, SetTimeoutFiresOnce) {
  Fixture fx;
  fx.webview.loadScript(
      "var fired = 0; setTimeout(function() { fired++; }, 500);");
  fx.dev->RunFor(sim::SimTime::Millis(400));
  EXPECT_DOUBLE_EQ(
      fx.webview.interpreter().GetGlobal("fired").as_number(), 0);
  fx.dev->RunFor(sim::SimTime::Millis(200));
  EXPECT_DOUBLE_EQ(
      fx.webview.interpreter().GetGlobal("fired").as_number(), 1);
  fx.dev->RunFor(sim::SimTime::Seconds(5));
  EXPECT_DOUBLE_EQ(
      fx.webview.interpreter().GetGlobal("fired").as_number(), 1);
}

TEST(Timers, SetIntervalRepeatsUntilCleared) {
  Fixture fx;
  fx.webview.loadScript(R"(
    var n = 0;
    var id = setInterval(function() {
      n++;
      if (n == 3) { clearInterval(id); }
    }, 1000);
  )");
  fx.dev->RunFor(sim::SimTime::Seconds(10));
  EXPECT_DOUBLE_EQ(fx.webview.interpreter().GetGlobal("n").as_number(), 3);
}

TEST(Timers, CallbackErrorsGoToConsole) {
  Fixture fx;
  fx.webview.loadScript("setTimeout(function() { missing(); }, 100);");
  fx.dev->RunFor(sim::SimTime::Seconds(1));
  ASSERT_EQ(fx.webview.console_errors().size(), 1u);
  EXPECT_NE(fx.webview.console_errors()[0].find("missing"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Raw interfaces: polled callbacks (footnote 8 behaviour)
// ---------------------------------------------------------------------------

TEST(RawInterfaces, SmsStatusPolledNotPushed) {
  Fixture fx;
  fx.webview.loadScript(
      "SmsManagerRaw.sendTextMessage('+15550123', null, 'hi', 'S', 'D');");
  fx.dev->RunFor(sim::SimTime::Seconds(5));
  Value notes = fx.webview.loadScript("SmsManagerRaw.pollStatus('S');");
  ASSERT_TRUE(notes.is_object());
  ASSERT_EQ(notes.as_object()->elements().size(), 1u);
  EXPECT_DOUBLE_EQ(notes.as_object()
                       ->elements()[0]
                       .as_object()
                       ->Get("result")
                       .as_number(),
                   -1);  // RESULT_OK
  Value delivered = fx.webview.loadScript("SmsManagerRaw.pollStatus('D');");
  EXPECT_EQ(delivered.as_object()->elements().size(), 1u);
}

TEST(RawInterfaces, ProximityPollSeesEntryEvent) {
  Fixture fx;
  fx.dev->gps().set_track(
      ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  fx.webview.loadScript(
      "LocationManagerRaw.addProximityAlert(" + std::to_string(kBaseLat) +
      ", " + std::to_string(kBaseLon) + ", 200, -1, 'P');");
  fx.dev->RunFor(sim::SimTime::Seconds(45));
  Value events = fx.webview.loadScript("LocationManagerRaw.pollProximity('P');");
  ASSERT_TRUE(events.is_object());
  ASSERT_FALSE(events.as_object()->elements().empty());
  EXPECT_TRUE(events.as_object()
                  ->elements()[0]
                  .as_object()
                  ->Get("entering")
                  .as_bool());
}

TEST(RawInterfaces, TelephonyCallAndState) {
  Fixture fx;
  Value started = fx.webview.loadScript("TelephonyRaw.call('+15550123');");
  EXPECT_TRUE(started.as_bool());
  fx.dev->RunAll();
  Value state = fx.webview.loadScript("TelephonyRaw.getCallState();");
  EXPECT_DOUBLE_EQ(state.as_number(), 2);  // CALL_STATE_OFFHOOK
  fx.webview.loadScript("TelephonyRaw.endCall();");
  Value idle = fx.webview.loadScript("TelephonyRaw.getCallState();");
  EXPECT_DOUBLE_EQ(idle.as_number(), 0);
}

TEST(RawInterfaces, HttpRoundTrip) {
  Fixture fx;
  fx.dev->network().RegisterHost("server", [](const device::HttpRequest& req) {
    return device::HttpResponse::Ok("echo:" + req.body);
  });
  Value response = fx.webview.loadScript(
      "HttpClientRaw.execute('POST', 'http://server/x', 'data');");
  ASSERT_TRUE(response.is_object());
  EXPECT_DOUBLE_EQ(response.as_object()->Get("status").as_number(), 200);
  EXPECT_EQ(response.as_object()->Get("body").as_string(), "echo:data");
}

TEST(WebViewApi, CallGlobalInvokesPageFunction) {
  Fixture fx;
  fx.webview.loadScript("function onEvent(x) { return x * 2; }");
  Value result = fx.webview.callGlobal("onEvent", {Value::Number(21)});
  EXPECT_DOUBLE_EQ(result.as_number(), 42);
}

}  // namespace
}  // namespace mobivine::webview
