#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "support/buffer_pool.h"
#include "support/checksum.h"
#include "support/geo_units.h"
#include "support/histogram.h"
#include "support/seed.h"
#include "support/strings.h"
#include "support/varint.h"

namespace mobivine::support {
namespace {

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(Strings, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a\t b \n c "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("sms://+155", "sms://"));
  EXPECT_FALSE(StartsWith("sm", "sms://"));
  EXPECT_TRUE(EndsWith("proxy.jar", ".jar"));
  EXPECT_FALSE(EndsWith("jar", "proxy.jar"));
}

TEST(Strings, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Strings, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Content-Type", "content-type"));
  EXPECT_FALSE(EqualsIgnoreCase("Content-Type", "content-typ"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(Strings, ParseInt) {
  long long out = 0;
  EXPECT_TRUE(ParseInt(" 42 ", out));
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(ParseInt("-7", out));
  EXPECT_EQ(out, -7);
  EXPECT_FALSE(ParseInt("4.2", out));
  EXPECT_FALSE(ParseInt("", out));
  EXPECT_FALSE(ParseInt("abc", out));
}

TEST(Strings, ParseDouble) {
  double out = 0;
  EXPECT_TRUE(ParseDouble("3.5", out));
  EXPECT_DOUBLE_EQ(out, 3.5);
  EXPECT_TRUE(ParseDouble("-1e3", out));
  EXPECT_DOUBLE_EQ(out, -1000.0);
  EXPECT_FALSE(ParseDouble("12x", out));
  EXPECT_FALSE(ParseDouble("", out));
}

TEST(Strings, ParseBool) {
  bool out = false;
  EXPECT_TRUE(ParseBool("TRUE", out));
  EXPECT_TRUE(out);
  EXPECT_TRUE(ParseBool("false", out));
  EXPECT_FALSE(out);
  EXPECT_TRUE(ParseBool("1", out));
  EXPECT_TRUE(out);
  EXPECT_FALSE(ParseBool("yes", out));
}

TEST(Strings, CountNonBlankLines) {
  EXPECT_EQ(CountNonBlankLines("a\n\n  \nb\n"), 2);
  EXPECT_EQ(CountNonBlankLines(""), 0);
  EXPECT_EQ(CountNonBlankLines("one"), 1);
}

TEST(Strings, IndentPadsNonEmptyLines) {
  EXPECT_EQ(Indent("a\n\nb", 2), "  a\n\n  b");
  EXPECT_EQ(Indent("x", 0), "x");
}

// ---------------------------------------------------------------------------
// geo
// ---------------------------------------------------------------------------

TEST(Geo, DegreesRadiansRoundTrip) {
  EXPECT_NEAR(RadiansToDegrees(DegreesToRadians(77.1855)), 77.1855, 1e-12);
  EXPECT_NEAR(DegreesToRadians(180.0), kPi, 1e-12);
}

TEST(Geo, HaversineZeroForSamePoint) {
  EXPECT_NEAR(HaversineMeters(28.5, 77.1, 28.5, 77.1), 0.0, 1e-9);
}

TEST(Geo, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km.
  const double d = HaversineMeters(28.0, 77.0, 29.0, 77.0);
  EXPECT_NEAR(d, 111195, 100);
}

TEST(Geo, HaversineSymmetric) {
  const double ab = HaversineMeters(28.5, 77.1, 28.9, 77.4);
  const double ba = HaversineMeters(28.9, 77.4, 28.5, 77.1);
  EXPECT_NEAR(ab, ba, 1e-6);
}

TEST(Geo, MoveAlongBearingDistanceConsistent) {
  for (double bearing : {0.0, 45.0, 90.0, 135.0, 200.0, 315.0}) {
    auto moved = MoveAlongBearing(28.5245, 77.1855, bearing, 500.0);
    const double back = HaversineMeters(28.5245, 77.1855, moved.latitude_deg,
                                        moved.longitude_deg);
    EXPECT_NEAR(back, 500.0, 0.5) << "bearing " << bearing;
  }
}

TEST(Geo, InitialBearingCardinal) {
  EXPECT_NEAR(InitialBearingDeg(28.0, 77.0, 29.0, 77.0), 0.0, 0.01);   // north
  EXPECT_NEAR(InitialBearingDeg(29.0, 77.0, 28.0, 77.0), 180.0, 0.01); // south
  EXPECT_NEAR(InitialBearingDeg(28.0, 77.0, 28.0, 78.0), 90.0, 0.5);   // east
}

TEST(Geo, NormalizeLatLonWrapsLongitude) {
  auto p = NormalizeLatLon(95.0, 190.0);
  EXPECT_DOUBLE_EQ(p.latitude_deg, 90.0);
  EXPECT_NEAR(p.longitude_deg, -170.0, 1e-9);
  auto q = NormalizeLatLon(-95.0, -181.0);
  EXPECT_DOUBLE_EQ(q.latitude_deg, -90.0);
  EXPECT_NEAR(q.longitude_deg, 179.0, 1e-9);
}

// ---------------------------------------------------------------------------
// varint (support/varint.h)
// ---------------------------------------------------------------------------

TEST(Varint, RoundTripsEveryEncodedLengthBoundary) {
  // Probe both sides of every 7-bit group boundary plus the extremes:
  // each value must round-trip exactly and use the minimal byte count.
  struct Case {
    std::uint64_t value;
    std::size_t bytes;
  };
  const Case cases[] = {
      {0, 1},          {1, 1},          {127, 1},
      {128, 2},        {16383, 2},      {16384, 3},
      {2097151, 3},    {2097152, 4},    {268435455, 4},
      {268435456, 5},  {(1ull << 35) - 1, 5}, {1ull << 35, 6},
      {(1ull << 42) - 1, 6}, {1ull << 42, 7},
      {(1ull << 49) - 1, 7}, {1ull << 49, 8},
      {(1ull << 56) - 1, 8}, {1ull << 56, 9},
      {(1ull << 63) - 1, 9}, {1ull << 63, 10},
      {UINT64_MAX, 10},
  };
  for (const Case& c : cases) {
    std::vector<std::uint8_t> buf;
    PutVarint(buf, c.value);
    EXPECT_EQ(buf.size(), c.bytes) << c.value;
    std::uint64_t decoded = 0;
    std::size_t consumed = 0;
    EXPECT_EQ(GetVarint(buf.data(), buf.size(), &decoded, &consumed),
              VarintStatus::kOk);
    EXPECT_EQ(decoded, c.value);
    EXPECT_EQ(consumed, c.bytes);
  }
}

TEST(Varint, RoundTripsDenseSweepAndBitPatterns) {
  // Dense low range plus every single-bit and all-ones-below-bit pattern:
  // exhaustive over the encodings' structure, cheap to run.
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < 4096; ++v) values.push_back(v);
  for (int bit = 0; bit < 64; ++bit) {
    values.push_back(1ull << bit);
    values.push_back((1ull << bit) - 1);
    values.push_back((1ull << bit) | 1u);
  }
  for (std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    PutVarint(buf, v);
    ASSERT_LE(buf.size(), kMaxVarintBytes);
    std::uint64_t decoded = 0;
    std::size_t consumed = 0;
    ASSERT_EQ(GetVarint(buf.data(), buf.size(), &decoded, &consumed),
              VarintStatus::kOk) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(consumed, buf.size());
  }
}

TEST(Varint, EveryStrictPrefixIsTruncatedNotMalformed) {
  // A streaming decoder must report a short buffer as kTruncated (wait
  // for more bytes), never kOk with a wrong value or kMalformed.
  for (std::uint64_t v :
       {std::uint64_t{128}, std::uint64_t{16384}, (std::uint64_t{1} << 35),
        (std::uint64_t{1} << 56), UINT64_MAX}) {
    std::vector<std::uint8_t> buf;
    PutVarint(buf, v);
    for (std::size_t len = 0; len < buf.size(); ++len) {
      std::uint64_t decoded = 0;
      std::size_t consumed = 0;
      EXPECT_EQ(GetVarint(buf.data(), len, &decoded, &consumed),
                VarintStatus::kTruncated)
          << "value " << v << " prefix " << len;
    }
  }
}

TEST(Varint, OverlongAndOverflowingEncodingsAreMalformed) {
  // 10 continuation bytes: an 11th group can never exist.
  std::vector<std::uint8_t> overlong(kMaxVarintBytes, 0xff);
  std::uint64_t decoded = 0;
  std::size_t consumed = 0;
  EXPECT_EQ(GetVarint(overlong.data(), overlong.size(), &decoded, &consumed),
            VarintStatus::kMalformed);
  // Group 10 carrying bits beyond the 64th (anything over 0x01).
  std::vector<std::uint8_t> overflow(kMaxVarintBytes - 1, 0x80);
  overflow.push_back(0x02);
  EXPECT_EQ(GetVarint(overflow.data(), overflow.size(), &decoded, &consumed),
            VarintStatus::kMalformed);
  // The maximal valid 10-byte encoding still decodes.
  std::vector<std::uint8_t> max_enc(kMaxVarintBytes - 1, 0xff);
  max_enc.push_back(0x01);
  EXPECT_EQ(GetVarint(max_enc.data(), max_enc.size(), &decoded, &consumed),
            VarintStatus::kOk);
  EXPECT_EQ(decoded, UINT64_MAX);
}

TEST(Varint, ZigzagIsAnExactInvolutionOnProbes) {
  const std::int64_t probes[] = {0,  -1, 1,  -2, 2,  63,  -64,
                                 64, INT64_MAX, INT64_MIN, -123456789};
  for (std::int64_t v : probes) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  // Small magnitudes map to small codes: |v| <= 63 fits one byte.
  EXPECT_LT(ZigzagEncode(-64), 128u);
  EXPECT_LT(ZigzagEncode(63), 128u);
}

// ---------------------------------------------------------------------------
// crc32 (support/checksum.h)
// ---------------------------------------------------------------------------

TEST(Checksum, MatchesKnownIeeeVectors) {
  // The classic check value for the IEEE 802.3 reflected polynomial.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc", 3), 0x352441C2u);
}

TEST(Checksum, ChainingEqualsOneShot) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  const std::size_t n = sizeof(data) - 1;
  const std::uint32_t whole = Crc32(data, n);
  for (std::size_t split = 0; split <= n; ++split) {
    const std::uint32_t first = Crc32(data, split);
    EXPECT_EQ(Crc32(data + split, n - split, first), whole) << split;
  }
}

TEST(Checksum, DetectsEverySingleBitFlipInShortPayload) {
  std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  const std::uint32_t good = Crc32(payload.data(), payload.size());
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      payload[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(Crc32(payload.data(), payload.size()), good)
          << "byte " << byte << " bit " << bit;
      payload[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
  // And truncation by any amount.
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_NE(Crc32(payload.data(), len), good) << len;
  }
}

// ---------------------------------------------------------------------------
// HDR histogram (support/histogram.h) — extracted from the gateway so the
// wire client's latency shares its buckets; the bound tests moved here.
// ---------------------------------------------------------------------------

TEST(Histogram, BucketsAndPercentiles) {
  LatencyHistogram histogram;
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.total(), 1000u);
  // ~12.5% relative bucket error at the reported quantile values.
  const std::uint64_t p50 = snap.Percentile(0.50);
  const std::uint64_t p99 = snap.Percentile(0.99);
  EXPECT_GE(p50, 450u);
  EXPECT_LE(p50, 600u);
  EXPECT_GE(p99, 900u);
  EXPECT_LE(p99, 1200u);
  EXPECT_LE(snap.Percentile(0.0), snap.Percentile(1.0));
}

TEST(Histogram, BucketBoundsAreExactBelowEightMicros) {
  // Values 0..7 get exact buckets: zero bucketing error.
  for (std::uint64_t v = 0; v < 8; ++v) {
    const std::size_t index = histogram_detail::BucketFor(v);
    EXPECT_EQ(index, v);
    EXPECT_EQ(histogram_detail::BucketUpperBound(index), v);
  }
}

TEST(Histogram, RelativeErrorBoundedAcrossAllOctaves) {
  // For every representable value the reported upper bound over-estimates
  // by at most one sub-bucket width: ub - v <= v / 8 (~12.5%). Probe each
  // octave at its boundaries and mid-band, where the bound is tightest
  // and loosest respectively.
  const auto check = [](std::uint64_t v) {
    const std::size_t index = histogram_detail::BucketFor(v);
    ASSERT_LT(index, histogram_detail::kBucketCount);
    const std::uint64_t ub = histogram_detail::BucketUpperBound(index);
    EXPECT_GE(ub, v) << "value " << v << " reported below itself";
    EXPECT_LE(ub - v, v / 8)
        << "value " << v << " bucket ub " << ub << " exceeds 12.5% error";
  };
  for (int octave = 3; octave < 64; ++octave) {
    const std::uint64_t base = 1ull << octave;
    check(base);          // octave entry
    check(base + 1);      // just inside
    check(base + base / 2);  // mid-band
    check(base + base - 1);  // last value of the octave (no overflow:
                             // 2*base - 1 <= UINT64_MAX for octave 63)
  }
}

TEST(Histogram, TopOctaveUpperBoundSaturatesAtMax) {
  using histogram_detail::BucketFor;
  using histogram_detail::BucketUpperBound;
  // The last occupied slot is octave 63, sub-bucket 7: (63-2)*8 + 7.
  constexpr std::size_t kTopIndex = 495;
  EXPECT_EQ(BucketFor(UINT64_MAX), kTopIndex);
  // base + 8*width - 1 = 2^63 + 2^63 - 1 saturates exactly at UINT64_MAX;
  // a naive "base * 2" would have overflowed to 0.
  EXPECT_EQ(BucketUpperBound(kTopIndex), UINT64_MAX);

  LatencyHistogram histogram;
  histogram.Record(UINT64_MAX);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.total(), 1u);
  EXPECT_EQ(snap.Percentile(1.0), UINT64_MAX);
}

TEST(Histogram, PercentileRankTakesPercentNotQuantile) {
  // Regression: the wire bench passed 50.0/95.0/99.0 into Percentile(),
  // whose argument is a quantile in [0, 1]. Everything above 1 clamps to
  // the max, so p50 == p95 == p99 == max — the degenerate flat
  // percentiles in early BENCH_wire.json runs. PercentileRank takes the
  // human-facing percent form and must agree with the quantile form.
  LatencyHistogram histogram;
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.PercentileRank(50.0), snap.Percentile(0.50));
  EXPECT_EQ(snap.PercentileRank(95.0), snap.Percentile(0.95));
  EXPECT_EQ(snap.PercentileRank(99.0), snap.Percentile(0.99));
  // The spread distribution must report spread percentiles: the old bug
  // made these all equal.
  EXPECT_LT(snap.PercentileRank(50.0), snap.PercentileRank(95.0));
  EXPECT_LT(snap.PercentileRank(95.0), snap.PercentileRank(99.0));
  // And the misuse mode stays what it was: out-of-range quantiles clamp.
  EXPECT_EQ(snap.Percentile(50.0), snap.Percentile(1.0));
}

// ---------------------------------------------------------------------------
// BufferPool (support/buffer_pool.h) — the wire frame-buffer pool
// ---------------------------------------------------------------------------

TEST(BufferPool, AcquireReturnsClearedBufferWithClassCapacity) {
  BufferPool pool;
  PooledBuffer buf = pool.Acquire(100);
  EXPECT_TRUE(buf.bytes().empty());
  EXPECT_GE(buf.bytes().capacity(), 512u);  // smallest class >= 100
  EXPECT_EQ(pool.Stats().misses, 1u);
  EXPECT_EQ(pool.Stats().hits, 0u);
}

TEST(BufferPool, ReleasedBufferIsReusedAsAHit) {
  BufferPool pool;
  {
    PooledBuffer buf = pool.Acquire(1000);
    buf.bytes().assign(1000, 0xab);
  }  // destructor returns it
  EXPECT_EQ(pool.PooledCount(), 1u);
  PooledBuffer again = pool.Acquire(1000);
  EXPECT_TRUE(again.bytes().empty());  // cleared on reuse
  EXPECT_GE(again.bytes().capacity(), 1000u);
  const BufferPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.returns, 1u);
}

TEST(BufferPool, ExplicitReleaseIsIdempotentAndMoveSafe) {
  BufferPool pool;
  PooledBuffer buf = pool.Acquire(64);
  PooledBuffer moved = std::move(buf);
  buf.Release();  // moved-from: no-op
  EXPECT_EQ(pool.PooledCount(), 0u);
  moved.Release();
  moved.Release();  // second release: no-op
  EXPECT_EQ(pool.PooledCount(), 1u);
  EXPECT_EQ(pool.Stats().returns, 1u);
}

TEST(BufferPool, GrownBufferReturnsToTheLargerClass) {
  BufferPool pool;
  {
    PooledBuffer buf = pool.Acquire(512);
    buf.bytes().resize(5000);  // grew past its class
  }
  EXPECT_EQ(pool.PooledCount(), 1u);
  // The grown capacity now serves the larger class without a fresh alloc.
  PooledBuffer big = pool.Acquire(4096);
  EXPECT_EQ(pool.Stats().hits, 1u);
}

TEST(BufferPool, OversizeRequestsBypassThePool) {
  BufferPool pool;
  { PooledBuffer jumbo = pool.Acquire(4u << 20); }  // above largest class
  EXPECT_EQ(pool.PooledCount(), 0u);  // trimmed, not pooled
  const BufferPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.trims, 1u);
}

TEST(BufferPool, ShelfCapBoundsPooledBuffers) {
  BufferPool pool;
  std::vector<PooledBuffer> held;
  const int over_cap = static_cast<int>(BufferPool::kMaxGlobalPerClass) + 40;
  for (int i = 0; i < over_cap; ++i) held.push_back(pool.Acquire(256));
  held.clear();  // returns overflow the bounded global shelf
  EXPECT_LE(pool.PooledCount(), BufferPool::kMaxGlobalPerClass);
  EXPECT_GT(pool.Stats().trims, 0u);
}

TEST(BufferPool, ThreadCacheFlushesToGlobalTierOnThreadExit) {
  // A thread-cache-enabled pool must make buffers released by a dying
  // thread visible to other threads — the wire bench depends on this
  // (warm-up client threads exit before the measured run starts).
  BufferPool& pool = BufferPool::WirePool();
  const std::uint64_t returns_before = pool.Stats().returns;
  std::thread worker([&pool] {
    PooledBuffer buf = pool.Acquire(2048);
    buf.bytes().resize(2048);
  });
  worker.join();
  EXPECT_GT(pool.Stats().returns, returns_before);
}

TEST(Histogram, PercentileRanksTrackExactValuesWithinErrorBound) {
  // 1..1000 recorded once each: the exact q-quantile is rank
  // floor(q * 999) + 1, and the histogram's answer must sit within one
  // sub-bucket width above it.
  LatencyHistogram histogram;
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  const HistogramSnapshot snap = histogram.Snapshot();
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::uint64_t exact =
        static_cast<std::uint64_t>(q * 999.0) + 1;
    const std::uint64_t reported = snap.Percentile(q);
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_LE(reported - exact, exact / 8 + 1) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// seed
// ---------------------------------------------------------------------------

TEST(Seed, SameRootSameForkPathSameStream) {
  SplitMix64 a = SeedSequence(42).Fork("fleet").Fork(3).Fork(1).stream();
  SplitMix64 b = SeedSequence(42).Fork("fleet").Fork(3).Fork(1).stream();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Seed, ForkingNeverMutatesTheParent) {
  const SeedSequence parent = SeedSequence(7).Fork("traffic");
  const std::uint64_t before = parent.state();
  (void)parent.Fork("child");
  (void)parent.Fork(9);
  EXPECT_EQ(parent.state(), before);
  // Re-deriving the same child after other forks names the same stream.
  EXPECT_EQ(parent.Fork(9).state(), parent.Fork(9).state());
}

TEST(Seed, LabelsIndicesAndRootsAllSeparateStreams) {
  const SeedSequence root(1);
  // A label fork and an index fork that "spell the same thing" must not
  // collide — labels go through FNV-1a, indices through Mix64.
  EXPECT_NE(root.Fork("1").state(), root.Fork(1).state());
  EXPECT_NE(root.Fork("a").Fork(1).state(), root.Fork("a1").state());
  EXPECT_NE(root.Fork("traffic").state(), root.Fork("fleet").state());
  EXPECT_NE(SeedSequence(1).state(), SeedSequence(2).state());
  // Sibling indices are distinct, including 0 (seed 0 must be usable).
  EXPECT_NE(root.Fork(0).state(), root.Fork(1).state());
}

TEST(Seed, SplitMixUnitDrawsAreInRangeAndRoughlyUniform) {
  SplitMix64 rng(99);
  double sum = 0;
  constexpr int kDraws = 4096;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.NextUnit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
  // NextBelow stays in range and hits both halves of a small bound.
  SplitMix64 rng2(7);
  bool low = false, high = false;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t v = rng2.NextBelow(10);
    ASSERT_LT(v, 10u);
    (v < 5 ? low : high) = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
  EXPECT_EQ(rng2.NextBelow(0), 0u);
}

}  // namespace
}  // namespace mobivine::support
