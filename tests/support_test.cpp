#include <gtest/gtest.h>

#include "support/geo_units.h"
#include "support/strings.h"

namespace mobivine::support {
namespace {

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(Strings, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a\t b \n c "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("sms://+155", "sms://"));
  EXPECT_FALSE(StartsWith("sm", "sms://"));
  EXPECT_TRUE(EndsWith("proxy.jar", ".jar"));
  EXPECT_FALSE(EndsWith("jar", "proxy.jar"));
}

TEST(Strings, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Strings, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Content-Type", "content-type"));
  EXPECT_FALSE(EqualsIgnoreCase("Content-Type", "content-typ"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(Strings, ParseInt) {
  long long out = 0;
  EXPECT_TRUE(ParseInt(" 42 ", out));
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(ParseInt("-7", out));
  EXPECT_EQ(out, -7);
  EXPECT_FALSE(ParseInt("4.2", out));
  EXPECT_FALSE(ParseInt("", out));
  EXPECT_FALSE(ParseInt("abc", out));
}

TEST(Strings, ParseDouble) {
  double out = 0;
  EXPECT_TRUE(ParseDouble("3.5", out));
  EXPECT_DOUBLE_EQ(out, 3.5);
  EXPECT_TRUE(ParseDouble("-1e3", out));
  EXPECT_DOUBLE_EQ(out, -1000.0);
  EXPECT_FALSE(ParseDouble("12x", out));
  EXPECT_FALSE(ParseDouble("", out));
}

TEST(Strings, ParseBool) {
  bool out = false;
  EXPECT_TRUE(ParseBool("TRUE", out));
  EXPECT_TRUE(out);
  EXPECT_TRUE(ParseBool("false", out));
  EXPECT_FALSE(out);
  EXPECT_TRUE(ParseBool("1", out));
  EXPECT_TRUE(out);
  EXPECT_FALSE(ParseBool("yes", out));
}

TEST(Strings, CountNonBlankLines) {
  EXPECT_EQ(CountNonBlankLines("a\n\n  \nb\n"), 2);
  EXPECT_EQ(CountNonBlankLines(""), 0);
  EXPECT_EQ(CountNonBlankLines("one"), 1);
}

TEST(Strings, IndentPadsNonEmptyLines) {
  EXPECT_EQ(Indent("a\n\nb", 2), "  a\n\n  b");
  EXPECT_EQ(Indent("x", 0), "x");
}

// ---------------------------------------------------------------------------
// geo
// ---------------------------------------------------------------------------

TEST(Geo, DegreesRadiansRoundTrip) {
  EXPECT_NEAR(RadiansToDegrees(DegreesToRadians(77.1855)), 77.1855, 1e-12);
  EXPECT_NEAR(DegreesToRadians(180.0), kPi, 1e-12);
}

TEST(Geo, HaversineZeroForSamePoint) {
  EXPECT_NEAR(HaversineMeters(28.5, 77.1, 28.5, 77.1), 0.0, 1e-9);
}

TEST(Geo, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km.
  const double d = HaversineMeters(28.0, 77.0, 29.0, 77.0);
  EXPECT_NEAR(d, 111195, 100);
}

TEST(Geo, HaversineSymmetric) {
  const double ab = HaversineMeters(28.5, 77.1, 28.9, 77.4);
  const double ba = HaversineMeters(28.9, 77.4, 28.5, 77.1);
  EXPECT_NEAR(ab, ba, 1e-6);
}

TEST(Geo, MoveAlongBearingDistanceConsistent) {
  for (double bearing : {0.0, 45.0, 90.0, 135.0, 200.0, 315.0}) {
    auto moved = MoveAlongBearing(28.5245, 77.1855, bearing, 500.0);
    const double back = HaversineMeters(28.5245, 77.1855, moved.latitude_deg,
                                        moved.longitude_deg);
    EXPECT_NEAR(back, 500.0, 0.5) << "bearing " << bearing;
  }
}

TEST(Geo, InitialBearingCardinal) {
  EXPECT_NEAR(InitialBearingDeg(28.0, 77.0, 29.0, 77.0), 0.0, 0.01);   // north
  EXPECT_NEAR(InitialBearingDeg(29.0, 77.0, 28.0, 77.0), 180.0, 0.01); // south
  EXPECT_NEAR(InitialBearingDeg(28.0, 77.0, 28.0, 78.0), 90.0, 0.5);   // east
}

TEST(Geo, NormalizeLatLonWrapsLongitude) {
  auto p = NormalizeLatLon(95.0, 190.0);
  EXPECT_DOUBLE_EQ(p.latitude_deg, 90.0);
  EXPECT_NEAR(p.longitude_deg, -170.0, 1e-9);
  auto q = NormalizeLatLon(-95.0, -181.0);
  EXPECT_DOUBLE_EQ(q.latitude_deg, -90.0);
  EXPECT_NEAR(q.longitude_deg, 179.0, 1e-9);
}

}  // namespace
}  // namespace mobivine::support
