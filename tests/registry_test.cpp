#include <gtest/gtest.h>

#include "core/registry.h"
#include "tests/test_util.h"

namespace mobivine::core {
namespace {

using mobivine::testing::MakeDevice;

const DescriptorStore& Store() {
  static const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

TEST(Registry, SupportsMatrixMatchesPaper) {
  ProxyRegistry registry(&Store());
  EXPECT_TRUE(registry.Supports("Location", "android"));
  EXPECT_TRUE(registry.Supports("Location", "s60"));
  EXPECT_TRUE(registry.Supports("Location", "webview"));
  EXPECT_TRUE(registry.Supports("Call", "android"));
  EXPECT_TRUE(registry.Supports("Call", "webview"));
  EXPECT_FALSE(registry.Supports("Call", "s60"));
  EXPECT_FALSE(registry.Supports("Nonexistent", "android"));
}

TEST(Registry, AvailableProxiesPerPlatform) {
  ProxyRegistry registry(&Store());
  EXPECT_EQ(registry.AvailableProxies("android"),
            (std::vector<std::string>{"Calendar", "Call", "Http", "Location",
                                      "Pim", "Sms"}));
  EXPECT_EQ(registry.AvailableProxies("s60"),
            (std::vector<std::string>{"Calendar", "Http", "Location", "Pim",
                                      "Sms"}));
  EXPECT_EQ(registry.AvailableProxies("iphone"),
            (std::vector<std::string>{"Call", "Http", "Location", "Pim",
                                      "Sms"}));
}

TEST(Registry, IPhoneCalendarUnsupported) {
  auto dev = MakeDevice();
  iphone::IPhonePlatform platform(*dev);
  ProxyRegistry registry(&Store());
  try {
    auto proxy = registry.CreateCalendarProxy(platform);
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kUnsupported);
  }
}

TEST(Registry, S60CallProxyUnsupported) {
  auto dev = MakeDevice();
  s60::S60Platform platform(*dev);
  ProxyRegistry registry(&Store());
  try {
    auto proxy = registry.CreateCallProxy(platform);
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kUnsupported);
  }
}

TEST(Registry, ProxiesCarryTheirBindingPlane) {
  auto dev = MakeDevice();
  android::AndroidPlatform platform(*dev);
  ProxyRegistry registry(&Store());
  auto proxy = registry.CreateLocationProxy(platform);
  ASSERT_NE(proxy->binding(), nullptr);
  EXPECT_EQ(proxy->binding()->platform, "android");
  EXPECT_EQ(proxy->binding()->proxy, "Location");
}

TEST(Registry, WorksWithoutDescriptorStore) {
  auto dev = MakeDevice();
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kFineLocation);
  ProxyRegistry registry;  // no store
  auto proxy = registry.CreateLocationProxy(platform);
  EXPECT_EQ(proxy->binding(), nullptr);
  // Property validation is off without a binding plane.
  EXPECT_NO_THROW(proxy->setProperty("anythingGoes", 1));
  EXPECT_FALSE(registry.Supports("Call", "s60"));
  EXPECT_TRUE(registry.Supports("Call", "android"));
}

}  // namespace
}  // namespace mobivine::core
