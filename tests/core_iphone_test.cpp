// Tests for the iPhone binding planes — the §7 future-work extension:
// the SAME uniform API as Android/S60/WebView, over a radically different
// platform (streaming CoreLocation, openURL composers, NSError HTTP).
#include <gtest/gtest.h>

#include "core/registry.h"
#include "iphone/iphone_platform.h"
#include "tests/test_util.h"

namespace mobivine::core {
namespace {

using mobivine::testing::ApproachTrack;
using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;
using mobivine::testing::MakeDevice;

const DescriptorStore& Store() {
  static const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

struct Fixture {
  explicit Fixture(std::uint64_t seed = 42)
      : dev(MakeDevice(seed)), platform(*dev), registry(&Store()) {}
  std::unique_ptr<device::MobileDevice> dev;
  iphone::IPhonePlatform platform;
  ProxyRegistry registry;
};

class RecordingProximity : public ProximityListener {
 public:
  struct Event {
    bool entering;
    Location location;
  };
  void proximityEvent(double, double, double, const Location& current,
                      bool entering) override {
    events.push_back({entering, current});
  }
  std::vector<Event> events;
};

class RecordingSms : public SmsListener {
 public:
  void smsStatusChanged(long long id, SmsDeliveryStatus status) override {
    events.emplace_back(id, status);
  }
  std::vector<std::pair<long long, SmsDeliveryStatus>> events;
};

class RecordingCall : public CallListener {
 public:
  void callStateChanged(CallProgress progress) override {
    states.push_back(progress);
  }
  std::vector<CallProgress> states;
};

// ---------------------------------------------------------------------------
// Location: blocking facade + client-side geofencing
// ---------------------------------------------------------------------------

TEST(IPhoneLocationProxy, BlockingGetLocationOverStreamingApi) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  Location location = proxy->getLocation();
  EXPECT_TRUE(location.valid);
  EXPECT_NEAR(location.latitude, kBaseLat, 0.05);
  EXPECT_GT(location.timestamp_ms, 0);
}

TEST(IPhoneLocationProxy, DesiredAccuracyPropertyConsumed) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  proxy->setProperty("desiredAccuracy", 10.0);
  Location location = proxy->getLocation();
  EXPECT_TRUE(location.valid);
  EXPECT_LE(location.accuracy_m, 5.0);  // high-accuracy GPS mode
}

TEST(IPhoneLocationProxy, UserDenialMapsToUniformSecurityError) {
  Fixture fx;
  fx.platform.set_user_allows_location(false);
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  try {
    (void)proxy->getLocation();
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    // Same uniform code as Android/S60 SecurityException, although the
    // native mechanism is a delegate NSError, not an exception.
    EXPECT_EQ(error.code(), ErrorCode::kSecurity);
    EXPECT_EQ(error.platform(), "iphone");
  }
}

TEST(IPhoneLocationProxy, UnknownPropertyRejectedViaDescriptor) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  EXPECT_THROW(proxy->setProperty("provider", std::string("gps")),
               ProxyError);  // an android property, not an iphone one
}

TEST(IPhoneLocationProxy, ProximitySynthesizedFromUpdateStream) {
  Fixture fx;
  fx.dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(150)));
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  RecordingProximity listener;
  proxy->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, -1, &listener);
  EXPECT_EQ(proxy->active_alert_count(), 1u);
  fx.dev->RunFor(sim::SimTime::Seconds(150));
  ASSERT_GE(listener.events.size(), 2u);
  EXPECT_TRUE(listener.events.front().entering);
  EXPECT_FALSE(listener.events.back().entering);
  EXPECT_TRUE(listener.events.front().location.valid);
}

TEST(IPhoneLocationProxy, ProximityTimerEmulated) {
  Fixture fx;
  fx.dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(150)));
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  RecordingProximity listener;
  proxy->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, 5'000, &listener);
  fx.dev->RunFor(sim::SimTime::Seconds(150));
  EXPECT_TRUE(listener.events.empty());  // expired before entry at ~30 s
  EXPECT_EQ(proxy->active_alert_count(), 0u);
}

TEST(IPhoneLocationProxy, RemoveStopsStream) {
  Fixture fx;
  fx.dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(150)));
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  RecordingProximity listener;
  proxy->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, -1, &listener);
  proxy->removeProximityAlert(&listener);
  fx.dev->RunFor(sim::SimTime::Seconds(150));
  EXPECT_TRUE(listener.events.empty());
}

// ---------------------------------------------------------------------------
// SMS: composer-based sending
// ---------------------------------------------------------------------------

TEST(IPhoneSmsProxy, SubmittedAfterUserConfirms) {
  Fixture fx;
  auto proxy = fx.registry.CreateSmsProxy(fx.platform);
  RecordingSms listener;
  const long long id =
      proxy->sendTextMessage("+15550123", "field report", &listener);
  EXPECT_TRUE(listener.events.empty());  // user still thinking
  fx.dev->RunFor(sim::SimTime::Seconds(30));
  ASSERT_EQ(listener.events.size(), 1u);
  EXPECT_EQ(listener.events[0].first, id);
  EXPECT_EQ(listener.events[0].second, SmsDeliveryStatus::kSubmitted);
}

TEST(IPhoneSmsProxy, UserCancellationBecomesFailed) {
  Fixture fx;
  fx.platform.set_user_confirms_compose(false);
  auto proxy = fx.registry.CreateSmsProxy(fx.platform);
  RecordingSms listener;
  proxy->sendTextMessage("+15550123", "x", &listener);
  fx.dev->RunFor(sim::SimTime::Seconds(30));
  ASSERT_EQ(listener.events.size(), 1u);
  EXPECT_EQ(listener.events[0].second, SmsDeliveryStatus::kFailed);
}

TEST(IPhoneSmsProxy, Validation) {
  Fixture fx;
  auto proxy = fx.registry.CreateSmsProxy(fx.platform);
  EXPECT_THROW(proxy->sendTextMessage("", "x", nullptr), ProxyError);
  EXPECT_THROW(proxy->sendTextMessage("+1555", "", nullptr), ProxyError);
  EXPECT_EQ(proxy->segmentCount(std::string(161, 'a')), 2);
}

// ---------------------------------------------------------------------------
// Call: tel: handoff
// ---------------------------------------------------------------------------

TEST(IPhoneCallProxy, DialingReportedAfterConfirmation) {
  Fixture fx;
  auto proxy = fx.registry.CreateCallProxy(fx.platform);
  RecordingCall listener;
  EXPECT_TRUE(proxy->makeCall("+15550123", &listener));
  fx.dev->RunFor(sim::SimTime::Seconds(30));
  // The system dialer owns the call: only kDialing is observable.
  ASSERT_EQ(listener.states.size(), 1u);
  EXPECT_EQ(listener.states[0], CallProgress::kDialing);
  EXPECT_EQ(proxy->currentState(), CallProgress::kDialing);
  proxy->endCall();
  EXPECT_EQ(proxy->currentState(), CallProgress::kEnded);
}

TEST(IPhoneCallProxy, CancellationBecomesFailed) {
  Fixture fx;
  fx.platform.set_user_confirms_compose(false);
  auto proxy = fx.registry.CreateCallProxy(fx.platform);
  RecordingCall listener;
  proxy->makeCall("+15550123", &listener);
  fx.dev->RunFor(sim::SimTime::Seconds(30));
  ASSERT_EQ(listener.states.size(), 1u);
  EXPECT_EQ(listener.states[0], CallProgress::kFailed);
}

// ---------------------------------------------------------------------------
// Http: NSError mapping
// ---------------------------------------------------------------------------

TEST(IPhoneHttpProxy, UniformExchangeAndErrors) {
  Fixture fx;
  fx.dev->network().RegisterHost("server", [](const device::HttpRequest& req) {
    return device::HttpResponse::Ok(req.method);
  });
  auto proxy = fx.registry.CreateHttpProxy(fx.platform);
  EXPECT_EQ(proxy->get("http://server/x").body, "GET");
  EXPECT_EQ(proxy->post("http://server/x", "b", "text/plain").body, "POST");
  try {
    (void)proxy->get("http://ghost/");
    FAIL();
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kUnreachable);
    EXPECT_EQ(error.native_type(), "NSError(NSURLErrorDomain)");
  }
  try {
    (void)proxy->get("garbage");
    FAIL();
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIllegalArgument);
  }
}

// ---------------------------------------------------------------------------
// Cross-platform: the same application routine on a FOURTH platform
// ---------------------------------------------------------------------------

TEST(IPhoneExtension, UniformRoutineRunsUnchanged) {
  // Same shape as CrossPlatform.UniformLocationIdenticalShape in
  // core_s60_test.cpp — now including the extension platform.
  auto check = [](LocationProxy& proxy) {
    Location location = proxy.getLocation();
    EXPECT_TRUE(location.valid);
    EXPECT_NEAR(location.latitude, kBaseLat, 0.05);
  };
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  check(*proxy);
}

}  // namespace
}  // namespace mobivine::core
