// M-Gateway tenancy: the weighted-admission contract from
// gateway/tenant.h.
//
// What must hold:
//  * the TenantTable always contains the built-in default tenant, resolves
//    unknown ids to it, and computes caps as max(1, floor(watermark*w/Σw))
//    with weight 0 a hard zero quota;
//  * a zero-quota tenant is shed with the same typed kOverloaded as a
//    watermark shed, even on an idle gateway, and the shed is counted as
//    quota_shed;
//  * the cap bounds a tenant's *outstanding* (queued + in-service) work
//    exactly — a burst above it is quota-shed deterministically;
//  * because shards serve FIFO under per-tenant outstanding caps, served
//    throughput under full backlog follows the weight ratio;
//  * per-tenant counters reconcile exactly once quiescent, including under
//    concurrent multi-tenant traffic: ok + failed + timed_out + shed ==
//    submitted, and the latency histogram holds exactly the completions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "gateway/tenant.h"
#include "gateway/traffic.h"
#include "support/fault.h"

namespace mobivine {
namespace {

using core::ErrorCode;
using gateway::Gateway;
using gateway::GatewayConfig;
using gateway::Op;
using gateway::Platform;
using gateway::Request;
using gateway::Response;
using gateway::TenantConfig;
using gateway::TenantSnapshot;
using gateway::TenantTable;

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

GatewayConfig BaseConfig(int shards = 1) {
  GatewayConfig config;
  config.shards = shards;
  config.store = &Store();
  return config;
}

Request PingRequest(std::uint32_t tenant, std::uint64_t client_id = 1) {
  Request request;
  request.client_id = client_id;
  request.tenant = tenant;
  request.platform = Platform::kAndroid;
  request.op = Op::kHttpGet;
  request.target =
      std::string("http://") + gateway::kGatewayHttpHost + "/ping";
  return request;
}

TenantSnapshot RowFor(const Gateway& gateway, std::uint32_t id) {
  for (const TenantSnapshot& row : gateway.TenantStatsSnapshot()) {
    if (row.id == id) return row;
  }
  ADD_FAILURE() << "no tenant row with id " << id;
  return {};
}

// ---------------------------------------------------------------------------
// TenantTable
// ---------------------------------------------------------------------------

TEST(TenantTable, PrependsDefaultAndResolvesUnknownIdsToIt) {
  TenantTable table({TenantConfig{1, "alpha", 4}});
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.config(0).id, 0u);
  EXPECT_EQ(table.config(0).name, "default");
  EXPECT_EQ(table.config(0).weight, 1u);
  EXPECT_EQ(table.total_weight(), 5u);
  EXPECT_EQ(table.SlotFor(1), 1u);
  EXPECT_EQ(table.SlotFor(0), 0u);
  EXPECT_EQ(table.SlotFor(999), 0u);  // unknown bills the default bucket
}

TEST(TenantTable, ExplicitIdZeroOverridesTheBuiltInDefault) {
  TenantTable table({TenantConfig{0, "house", 3}, TenantConfig{2, "beta", 1}});
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.config(0).name, "house");
  EXPECT_EQ(table.config(0).weight, 3u);
  EXPECT_EQ(table.total_weight(), 4u);
  EXPECT_EQ(table.SlotFor(2), 1u);
}

TEST(TenantTable, DuplicateIdsKeepTheFirstOccurrence) {
  TenantTable table({TenantConfig{5, "first", 2}, TenantConfig{5, "second", 9}});
  ASSERT_EQ(table.size(), 2u);
  const std::size_t slot = table.SlotFor(5);
  EXPECT_EQ(table.config(slot).name, "first");
  EXPECT_EQ(table.config(slot).weight, 2u);
  EXPECT_EQ(table.total_weight(), 3u);  // default 1 + first 2, not 9
}

TEST(TenantTable, QueueCapIsTheWeightedFloorWithAOneSlotMinimum) {
  // default 1 + {4, 2, 1} => Σ8.
  TenantTable table({TenantConfig{1, "a", 4}, TenantConfig{2, "b", 2},
                     TenantConfig{3, "c", 1}});
  EXPECT_EQ(table.QueueCap(table.SlotFor(1), 32), 16u);
  EXPECT_EQ(table.QueueCap(table.SlotFor(2), 32), 8u);
  EXPECT_EQ(table.QueueCap(table.SlotFor(3), 32), 4u);
  EXPECT_EQ(table.QueueCap(0, 32), 4u);
  // floor rounds to zero => the minimum of one slot keeps a starved
  // tenant live...
  TenantTable skewed(
      {TenantConfig{1, "small", 1}, TenantConfig{2, "huge", 100}});
  EXPECT_EQ(skewed.QueueCap(skewed.SlotFor(1), 8), 1u);
  // ...but weight 0 is a hard zero quota, never promoted to one.
  TenantTable banned({TenantConfig{1, "banned", 0}});
  EXPECT_EQ(banned.QueueCap(banned.SlotFor(1), 1024), 0u);
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

TEST(TenantGateway, ZeroQuotaTenantIsShedTypedEvenWhenIdle) {
  GatewayConfig config = BaseConfig(1);
  config.tenants = {TenantConfig{7, "banned", 0}};
  Gateway gateway(config);

  Response observed;
  Request request = PingRequest(/*tenant=*/7);
  request.on_complete = [&observed](const Response& r) { observed = r; };
  EXPECT_FALSE(gateway.Submit(std::move(request)));
  EXPECT_FALSE(observed.ok);
  EXPECT_EQ(observed.error, ErrorCode::kOverloaded);

  // The same gateway still serves everyone else.
  const Response served = gateway.Call(PingRequest(/*tenant=*/0));
  ASSERT_TRUE(served.ok) << served.message;

  const TenantSnapshot banned = RowFor(gateway, 7);
  EXPECT_EQ(banned.submitted, 1u);
  EXPECT_EQ(banned.accepted, 0u);
  EXPECT_EQ(banned.shed, 1u);
  EXPECT_EQ(banned.quota_shed, 1u);
}

TEST(TenantGateway, QuotaCapBoundsOutstandingWorkExactly) {
  // One shard whose every dispatch blocks 20ms of wall clock: a burst
  // submitted inside that window sees no occupancy releases, so the
  // admitted count is exactly the tenant's cap. default 1 + capped 1 =>
  // Σ2; watermark 32 => cap 16.
  GatewayConfig config = BaseConfig(1);
  config.queue_capacity = 64;
  config.shed_watermark = 32;
  config.tenants = {TenantConfig{1, "capped", 1}};
  config.failover.fault_plan = *support::FaultPlan::Parse("*:*:latency=20000:wall");
  Gateway gateway(config);

  constexpr int kBurst = 40;
  std::mutex mu;
  std::condition_variable cv;
  int completed = 0;
  int admitted = 0;
  for (int i = 0; i < kBurst; ++i) {
    Request request = PingRequest(/*tenant=*/1, /*client_id=*/i);
    request.on_complete = [&](const Response&) {
      std::lock_guard<std::mutex> lock(mu);
      if (++completed == kBurst) cv.notify_all();
    };
    if (gateway.Submit(std::move(request))) ++admitted;
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == kBurst; });
  }

  EXPECT_EQ(admitted, 16);
  const TenantSnapshot row = RowFor(gateway, 1);
  EXPECT_EQ(row.submitted, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(row.accepted, 16u);
  EXPECT_EQ(row.shed, static_cast<std::uint64_t>(kBurst - 16));
  // The queue never reached the watermark (16 < 32), so every shed was a
  // quota shed, not a shard-full shed.
  EXPECT_EQ(row.quota_shed, row.shed);
  EXPECT_EQ(row.ok + row.failed + row.timed_out + row.shed, row.submitted);
}

// ---------------------------------------------------------------------------
// Weighted fairness
// ---------------------------------------------------------------------------

TEST(TenantFairness, ServedThroughputFollowsWeightsUnderBacklog) {
  // One shard, 2ms pinned service, three tenants flooding it with weights
  // 4:2:1. Outstanding caps (16/8/4 of watermark 32, Σ8 with the default)
  // plus FIFO service make served throughput converge to the weights;
  // generous tolerances keep the test honest on a loaded host.
  GatewayConfig config = BaseConfig(1);
  config.queue_capacity = 64;
  config.shed_watermark = 32;
  config.tenants = {TenantConfig{1, "alpha", 4}, TenantConfig{2, "beta", 2},
                    TenantConfig{3, "gamma", 1}};
  config.failover.fault_plan = *support::FaultPlan::Parse("*:*:latency=2000:wall");
  Gateway gateway(config);

  constexpr auto kRunFor = std::chrono::milliseconds(600);
  std::atomic<std::uint64_t> in_flight{0};
  auto flood = [&](std::uint32_t tenant) {
    const auto deadline = std::chrono::steady_clock::now() + kRunFor;
    while (std::chrono::steady_clock::now() < deadline) {
      Request request = PingRequest(tenant, /*client_id=*/tenant);
      in_flight.fetch_add(1, std::memory_order_relaxed);
      request.on_complete = [&in_flight](const Response&) {
        in_flight.fetch_sub(1, std::memory_order_relaxed);
      };
      const bool ok = gateway.Submit(std::move(request));
      // Above the cap every submit sheds instantly; back off so three
      // flooding threads don't spin a 1-CPU host into the ground.
      std::this_thread::sleep_for(std::chrono::microseconds(ok ? 100 : 500));
    }
  };
  std::vector<std::thread> producers;
  for (std::uint32_t tenant : {1u, 2u, 3u}) {
    producers.emplace_back(flood, tenant);
  }
  for (std::thread& t : producers) t.join();
  while (in_flight.load(std::memory_order_relaxed) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const TenantSnapshot alpha = RowFor(gateway, 1);
  const TenantSnapshot beta = RowFor(gateway, 2);
  const TenantSnapshot gamma = RowFor(gateway, 3);
  // Every tenant was pushed past its share...
  EXPECT_GT(alpha.quota_shed, 0u);
  EXPECT_GT(beta.quota_shed, 0u);
  EXPECT_GT(gamma.quota_shed, 0u);
  // ...and enough was served to make the ratios meaningful.
  ASSERT_GT(gamma.ok, 20u);
  const double ab = static_cast<double>(alpha.ok) / static_cast<double>(beta.ok);
  const double bg = static_cast<double>(beta.ok) / static_cast<double>(gamma.ok);
  EXPECT_GT(ab, 1.4);
  EXPECT_LT(ab, 2.9);
  EXPECT_GT(bg, 1.4);
  EXPECT_LT(bg, 2.9);
  // Quiescent reconcile holds for every row.
  for (const TenantSnapshot& row : gateway.TenantStatsSnapshot()) {
    EXPECT_EQ(row.ok + row.failed + row.timed_out + row.shed, row.submitted)
        << "tenant " << row.name;
  }
}

// ---------------------------------------------------------------------------
// Accounting under concurrency
// ---------------------------------------------------------------------------

TEST(TenantGateway, RowsReconcileUnderConcurrentMultiTenantTraffic) {
  GatewayConfig config = BaseConfig(2);
  config.tenants = {TenantConfig{1, "a", 2}, TenantConfig{2, "b", 2},
                    TenantConfig{3, "c", 2}};
  Gateway gateway(config);

  constexpr std::uint64_t kPerProducer = 250;
  std::vector<gateway::TrafficReport> reports(3);
  std::vector<std::thread> drivers;
  for (std::uint32_t tenant : {1u, 2u, 3u}) {
    drivers.emplace_back([&gateway, &reports, tenant] {
      gateway::TrafficConfig traffic;
      traffic.producers = 2;
      traffic.requests_per_producer = kPerProducer;
      traffic.seed = 40 + tenant;
      traffic.tenant = tenant;
      traffic.window = 8;
      reports[tenant - 1] = RunTraffic(gateway, traffic);
    });
  }
  for (std::thread& t : drivers) t.join();

  for (std::uint32_t tenant : {1u, 2u, 3u}) {
    const gateway::TrafficReport& client = reports[tenant - 1];
    const TenantSnapshot row = RowFor(gateway, tenant);
    EXPECT_EQ(row.submitted, 2 * kPerProducer) << "tenant " << tenant;
    // Server-side row matches the client-side view band for band.
    EXPECT_EQ(row.submitted, client.submitted);
    EXPECT_EQ(row.ok, client.ok);
    EXPECT_EQ(row.shed, client.shed);
    EXPECT_EQ(row.failed, client.failed);
    EXPECT_EQ(row.timed_out, client.timed_out);
    EXPECT_EQ(row.ok + row.failed + row.timed_out + row.shed, row.submitted);
    // The latency histogram holds exactly the completions, never sheds.
    EXPECT_EQ(row.latency.total(), row.completed());
  }
  // Nothing leaked into the default bucket.
  EXPECT_EQ(RowFor(gateway, 0).submitted, 0u);
}

}  // namespace
}  // namespace mobivine
