// M-Wire: the binary protocol and the epoll TCP front-end.
//
// What must hold:
//  * every encodable request/response round-trips bit-exactly, and every
//    strict prefix of a valid frame decodes as kNeedMore, never as
//    malformed or as a shorter valid frame;
//  * framing violations (bad magic/version/type, oversized length
//    prefix, CRC mismatch) are kMalformed and close the connection; a
//    well-framed body violation gets a typed kMalformedRequest response
//    and the connection lives on;
//  * the server serves every gateway op over real loopback sockets with
//    the same bodies, typed errors and property semantics as in-process
//    calls, under deep pipelining;
//  * hostile bytes (deterministic frame-mutation fuzz, run under ASan)
//    never crash or leak the server, and a fresh connection is always
//    served afterwards;
//  * output backpressure pauses reading at the watermark and resumes —
//    no unbounded buffering, no lost responses;
//  * the client surfaces connection death as kTransportError on every
//    outstanding callback, exactly once each.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "support/checksum.h"
#include "support/metrics.h"
#include "support/varint.h"
#include "wire/client.h"
#include "wire/connection.h"
#include "wire/protocol.h"
#include "wire/server.h"

namespace mobivine {
namespace {

using core::ErrorCode;
using gateway::Gateway;
using gateway::GatewayConfig;
using gateway::Op;
using gateway::Platform;
using wire::BodyStatus;
using wire::ByteRing;
using wire::DecodeFrame;
using wire::DecodeRequest;
using wire::DecodeRequestView;
using wire::DecodeStatus;
using wire::EncodeRequest;
using wire::EncodeResponse;
using wire::FrameType;
using wire::FrameView;
using wire::WireClient;
using wire::WireRequest;
using wire::WireRequestView;
using wire::WireResponse;
using wire::WireServer;
using wire::WireServerConfig;
using wire::WireStatus;

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

GatewayConfig BaseConfig(int shards) {
  GatewayConfig config;
  config.shards = shards;
  config.store = &Store();
  return config;
}

WireRequest HttpGet(std::uint64_t client_id) {
  WireRequest request;
  request.client_id = client_id;
  request.platform = Platform::kAndroid;
  request.op = Op::kHttpGet;
  request.target = std::string("http://") + gateway::kGatewayHttpHost + "/ping";
  return request;
}

/// splitmix64: the fuzz suite's only entropy source — same seed, same
/// mutations, same verdicts, every run.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t Next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

// ---------------------------------------------------------------------------
// Protocol: round trips
// ---------------------------------------------------------------------------

TEST(WireProtocol, RequestRoundTripsAllFields) {
  WireRequest request;
  request.request_id = 0xdeadbeefcafe1234ull;
  request.client_id = 77;
  request.platform = Platform::kS60;
  request.op = Op::kHttpPost;
  request.timeout_micros = 250000;
  request.max_attempts = 5;
  request.target = "http://gw.example/echo";
  request.payload = std::string("body with \0 bytes", 17);
  request.content_type = "text/plain";
  request.properties.emplace_back("horizontalAccuracy", 25LL);
  request.properties.emplace_back("powerConsumption", std::string("low"));
  request.properties.emplace_back("threshold", 2.5);
  request.properties.emplace_back("enabled", true);

  std::vector<std::uint8_t> bytes;
  EncodeRequest(request, bytes);

  FrameView frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, &error),
            DecodeStatus::kOk)
      << error;
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.type, FrameType::kRequest);

  WireRequest decoded;
  ASSERT_EQ(DecodeRequest(frame.payload, frame.payload_size, &decoded, &error),
            BodyStatus::kOk)
      << error;
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.client_id, request.client_id);
  EXPECT_EQ(decoded.platform, request.platform);
  EXPECT_EQ(decoded.op, request.op);
  EXPECT_EQ(decoded.timeout_micros, request.timeout_micros);
  EXPECT_EQ(decoded.max_attempts, request.max_attempts);
  EXPECT_EQ(decoded.target, request.target);
  EXPECT_EQ(decoded.payload, request.payload);
  EXPECT_EQ(decoded.content_type, request.content_type);
  ASSERT_EQ(decoded.properties.size(), 4u);
  EXPECT_EQ(decoded.properties[0].first, "horizontalAccuracy");
  ASSERT_NE(decoded.properties[0].second.AsInt(), nullptr);
  EXPECT_EQ(*decoded.properties[0].second.AsInt(), 25LL);
  ASSERT_NE(decoded.properties[1].second.AsString(), nullptr);
  EXPECT_EQ(*decoded.properties[1].second.AsString(), "low");
  const double* threshold =
      std::get_if<double>(&decoded.properties[2].second.stored());
  ASSERT_NE(threshold, nullptr);
  EXPECT_EQ(*threshold, 2.5);
  const bool* enabled =
      std::get_if<bool>(&decoded.properties[3].second.stored());
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(*enabled);
}

TEST(WireProtocol, ResponseRoundTrips) {
  WireResponse response;
  response.request_id = 42;
  response.status = WireStatus::kAllBackendsFailed;
  response.served_platform = Platform::kIphone;
  response.attempts = 3;
  response.latency_micros = 123456;
  response.body = "every platform refused";

  std::vector<std::uint8_t> bytes;
  EncodeResponse(response, bytes);

  FrameView frame;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, nullptr),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kResponse);

  WireResponse decoded;
  ASSERT_TRUE(wire::DecodeResponse(frame.payload, frame.payload_size, &decoded,
                                   nullptr));
  EXPECT_EQ(decoded.request_id, response.request_id);
  EXPECT_EQ(decoded.status, response.status);
  EXPECT_EQ(decoded.served_platform, response.served_platform);
  EXPECT_EQ(decoded.attempts, response.attempts);
  EXPECT_EQ(decoded.latency_micros, response.latency_micros);
  EXPECT_EQ(decoded.body, response.body);
}

TEST(WireProtocol, BackToBackFramesDecodeIndependently) {
  std::vector<std::uint8_t> bytes;
  EncodeRequest(HttpGet(1), bytes);
  const std::size_t first_size = bytes.size();
  WireRequest second = HttpGet(2);
  second.request_id = 9;
  EncodeRequest(second, bytes);

  FrameView frame;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, nullptr),
            DecodeStatus::kOk);
  EXPECT_EQ(consumed, first_size);
  WireRequest decoded;
  ASSERT_EQ(DecodeRequest(frame.payload, frame.payload_size, &decoded, nullptr),
            BodyStatus::kOk);
  EXPECT_EQ(decoded.client_id, 1u);

  ASSERT_EQ(DecodeFrame(bytes.data() + consumed, bytes.size() - consumed,
                        &frame, &consumed, nullptr),
            DecodeStatus::kOk);
  ASSERT_EQ(DecodeRequest(frame.payload, frame.payload_size, &decoded, nullptr),
            BodyStatus::kOk);
  EXPECT_EQ(decoded.request_id, 9u);
}

// ---------------------------------------------------------------------------
// Protocol: incremental and malformed input
// ---------------------------------------------------------------------------

TEST(WireProtocol, EveryStrictPrefixNeedsMoreBytes) {
  std::vector<std::uint8_t> bytes;
  WireRequest request = HttpGet(3);
  request.properties.emplace_back("powerConsumption", std::string("low"));
  EncodeRequest(request, bytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    FrameView frame;
    std::size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(bytes.data(), len, &frame, &consumed, nullptr),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireProtocol, CrcMismatchIsMalformed) {
  std::vector<std::uint8_t> bytes;
  EncodeRequest(HttpGet(4), bytes);
  bytes[bytes.size() / 2] ^= 0x40;  // corrupt the payload, not the CRC
  FrameView frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, &error),
            DecodeStatus::kMalformed);
  EXPECT_NE(error.find("crc"), std::string::npos) << error;
}

TEST(WireProtocol, BadMagicAndVersionAreMalformed) {
  std::vector<std::uint8_t> good;
  EncodeRequest(HttpGet(5), good);
  FrameView frame;
  std::size_t consumed = 0;

  std::vector<std::uint8_t> bad = good;
  bad[0] = 'X';
  EXPECT_EQ(DecodeFrame(bad.data(), bad.size(), &frame, &consumed, nullptr),
            DecodeStatus::kMalformed);

  bad = good;
  bad[2] = wire::kWireVersion + 1;
  EXPECT_EQ(DecodeFrame(bad.data(), bad.size(), &frame, &consumed, nullptr),
            DecodeStatus::kMalformed);
}

TEST(WireProtocol, UnknownFrameTypeDecodesForInBandRejection) {
  // An unknown type byte is NOT a framing violation: the envelope still
  // parses (the CRC covers the payload, not the type), so a server can
  // answer kUnsupportedFrame in-band instead of hard-closing — that is
  // how an old server tells a newer peer "I don't speak that" without
  // killing every other request pipelined on the connection.
  std::vector<std::uint8_t> bytes;
  EncodeRequest(HttpGet(5), bytes);
  bytes[3] = 0x7f;  // type from the future
  FrameView frame;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed,
                        nullptr),
            DecodeStatus::kOk);
  EXPECT_EQ(static_cast<std::uint8_t>(frame.type), 0x7f);
  EXPECT_FALSE(IsKnownFrameType(frame.type));
  EXPECT_EQ(consumed, bytes.size());

  // The request id survives (the payload still leads with a varint id),
  // so the rejection can be correlated.
  std::uint64_t id = 0;
  EXPECT_TRUE(wire::PeekPayloadId(frame.payload, frame.payload_size, &id));
  // HttpGet(5) stamps no id; EncodeRequest without an explicit id writes
  // the struct's request_id verbatim.
  EXPECT_EQ(id, 0u);
}

TEST(WireProtocol, OversizedLengthPrefixIsMalformedBeforePayloadArrives) {
  // Header declares 2 MiB — over the cap. The decoder must reject it
  // from the header alone instead of waiting for (or allocating) 2 MiB.
  std::vector<std::uint8_t> bytes = {wire::kMagic0, wire::kMagic1,
                                     wire::kWireVersion,
                                     static_cast<std::uint8_t>(1)};
  support::PutVarint(bytes, 2u << 20);
  FrameView frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, &error),
            DecodeStatus::kMalformed);
  EXPECT_NE(error.find("cap"), std::string::npos) << error;
}

TEST(WireProtocol, BodyRuleViolationsAreBadBodyWithRecoveredId) {
  // Too many properties: well-framed, decodable id, rejected body.
  WireRequest request = HttpGet(6);
  request.request_id = 31337;
  for (std::size_t i = 0; i <= wire::kMaxProperties; ++i) {
    request.properties.emplace_back("p" + std::to_string(i),
                                    static_cast<long long>(i));
  }
  std::vector<std::uint8_t> bytes;
  EncodeRequest(request, bytes);
  FrameView frame;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, nullptr),
            DecodeStatus::kOk);
  WireRequest decoded;
  std::string error;
  EXPECT_EQ(DecodeRequest(frame.payload, frame.payload_size, &decoded, &error),
            BodyStatus::kBadBody);
  EXPECT_EQ(decoded.request_id, 31337u) << "id must survive for the response";

  // Unknown platform code: same deal.
  WireRequest bad_platform = HttpGet(7);
  bad_platform.request_id = 99;
  bytes.clear();
  EncodeRequest(bad_platform, bytes);
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, nullptr),
            DecodeStatus::kOk);
  // Patch the platform byte (right after the varint request id +
  // varint client id) and re-frame with a fresh CRC.
  std::vector<std::uint8_t> payload(frame.payload,
                                    frame.payload + frame.payload_size);
  std::uint64_t value = 0;
  std::size_t off = 0, used = 0;
  ASSERT_EQ(support::GetVarint(payload.data(), payload.size(), &value, &used),
            support::VarintStatus::kOk);
  off += used;
  ASSERT_EQ(
      support::GetVarint(payload.data() + off, payload.size() - off, &value,
                         &used),
      support::VarintStatus::kOk);
  off += used;
  payload[off] = 0x7f;  // no such platform
  bytes.assign({wire::kMagic0, wire::kMagic1, wire::kWireVersion,
                static_cast<std::uint8_t>(1)});
  support::PutVarint(bytes, payload.size());
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  const std::uint32_t crc = support::Crc32(payload.data(), payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> shift));
  }
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, nullptr),
            DecodeStatus::kOk);
  EXPECT_EQ(DecodeRequest(frame.payload, frame.payload_size, &decoded, &error),
            BodyStatus::kBadBody);
  EXPECT_EQ(decoded.request_id, 99u);
}

TEST(WireProtocol, StatusAndErrorCodeMappingsAreInverse) {
  const ErrorCode codes[] = {
      ErrorCode::kSecurity,         ErrorCode::kIllegalArgument,
      ErrorCode::kLocationUnavailable, ErrorCode::kTimeout,
      ErrorCode::kUnreachable,      ErrorCode::kRadioFailure,
      ErrorCode::kUnsupported,      ErrorCode::kInvalidState,
      ErrorCode::kNetwork,          ErrorCode::kOverloaded,
      ErrorCode::kDeadlineExceeded, ErrorCode::kAllBackendsFailed,
      ErrorCode::kUnknown};
  for (ErrorCode code : codes) {
    const WireStatus status = wire::FromErrorCode(code);
    EXPECT_EQ(wire::ToErrorCode(status), code);
    EXPECT_NE(wire::ToString(status), nullptr);
    EXPECT_NE(std::string(wire::ToString(status)), "");
  }
  EXPECT_EQ(wire::ToErrorCode(WireStatus::kMalformedRequest),
            ErrorCode::kUnknown);
  EXPECT_EQ(wire::ToErrorCode(WireStatus::kTransportError),
            ErrorCode::kUnknown);
}

// ---------------------------------------------------------------------------
// Protocol: deterministic decoder fuzz (no sockets)
// ---------------------------------------------------------------------------

TEST(WireFuzz, MutatedFramesNeverCrashTheDecoder) {
  SplitMix64 rng{0x5eedf00dull};
  WireRequest base = HttpGet(11);
  base.payload = "fuzz body";
  base.properties.emplace_back("powerConsumption", std::string("low"));
  std::vector<std::uint8_t> pristine;
  EncodeRequest(base, pristine);

  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::vector<std::uint8_t> bytes = pristine;
    switch (rng.Next() % 4) {
      case 0:  // single bit flip
        bytes[rng.Next() % bytes.size()] ^=
            static_cast<std::uint8_t>(1u << (rng.Next() % 8));
        break;
      case 1:  // truncate
        bytes.resize(rng.Next() % bytes.size());
        break;
      case 2:  // splice random garbage into the middle
        bytes[rng.Next() % bytes.size()] =
            static_cast<std::uint8_t>(rng.Next());
        bytes[rng.Next() % bytes.size()] =
            static_cast<std::uint8_t>(rng.Next());
        break;
      default:  // pure noise, random length
        bytes.assign(rng.Next() % 64, 0);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.Next());
        break;
    }
    FrameView frame;
    std::size_t consumed = 0;
    std::string error;
    const DecodeStatus status =
        DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, &error);
    if (status != DecodeStatus::kOk) continue;
    // A frame that still decodes must parse or fail typed — never crash.
    WireRequest decoded;
    const BodyStatus owning =
        DecodeRequest(frame.payload, frame.payload_size, &decoded, &error);
    // Differential check: the zero-copy decoder must agree with the
    // owning one, verdict for verdict, on every mutation — and, when
    // both accept, field for field (views compared against the owned
    // copies while the frame bytes are still alive).
    WireRequestView view;
    const BodyStatus borrowed =
        DecodeRequestView(frame.payload, frame.payload_size, &view, &error);
    ASSERT_EQ(borrowed, owning) << "iteration " << iteration;
    if (owning != BodyStatus::kOk) {
      if (owning == BodyStatus::kBadBody) {
        ASSERT_EQ(view.request_id, decoded.request_id);
      }
      continue;
    }
    ASSERT_EQ(view.request_id, decoded.request_id);
    ASSERT_EQ(view.client_id, decoded.client_id);
    ASSERT_EQ(view.platform, decoded.platform);
    ASSERT_EQ(view.op, decoded.op);
    ASSERT_EQ(view.timeout_micros, decoded.timeout_micros);
    ASSERT_EQ(view.max_attempts, decoded.max_attempts);
    ASSERT_EQ(view.target, decoded.target);
    ASSERT_EQ(view.payload, decoded.payload);
    ASSERT_EQ(view.content_type, decoded.content_type);
    ASSERT_EQ(view.properties.size(), decoded.properties.size());
    for (std::size_t i = 0; i < view.properties.size(); ++i) {
      const gateway::BorrowedProperty& bp = view.properties[i];
      const auto& [name, value] = decoded.properties[i];
      ASSERT_EQ(bp.name, name);
      if (const auto* s = std::get_if<std::string_view>(&bp.value)) {
        ASSERT_NE(value.AsString(), nullptr);
        ASSERT_EQ(*s, *value.AsString());
      } else if (const auto* n = std::get_if<long long>(&bp.value)) {
        ASSERT_NE(value.AsInt(), nullptr);
        ASSERT_EQ(*n, *value.AsInt());
      } else if (const auto* d = std::get_if<double>(&bp.value)) {
        const auto* owned = std::get_if<double>(&value.stored());
        ASSERT_NE(owned, nullptr);
        ASSERT_EQ(*d, *owned);
      } else {
        const auto* owned = std::get_if<bool>(&value.stored());
        ASSERT_NE(owned, nullptr);
        ASSERT_EQ(std::get<bool>(bp.value), *owned);
      }
    }
  }
}

TEST(WireFuzz, MutatedPushFramesNeverCrashTheDecoders) {
  // Same mutation engine as the request sweep, over all four M-Push
  // frame families: whatever survives framing must decode or fail typed.
  SplitMix64 rng{0x9057f7a3e5ull};
  std::vector<std::vector<std::uint8_t>> pristine;

  wire::WireSubscribe subscribe;
  subscribe.request_id = 31;
  subscribe.client_id = 9;
  subscribe.topic = wire::PushTopic::kSmsDelivery;
  subscribe.mode = wire::SubscribeMode::kFromCursor;
  subscribe.cursor = 777;
  pristine.emplace_back();
  wire::EncodeSubscribe(subscribe, pristine.back());

  wire::WireUnsubscribe unsubscribe;
  unsubscribe.request_id = 32;
  unsubscribe.subscription_id = 4;
  pristine.emplace_back();
  wire::EncodeUnsubscribe(unsubscribe, pristine.back());

  wire::WireSubscribeAck ack;
  ack.request_id = 33;
  ack.status = WireStatus::kOk;
  ack.subscription_id = 4;
  ack.start_cursor = 777;
  pristine.emplace_back();
  wire::EncodeSubscribeAck(ack, pristine.back());

  wire::WireEvent event;
  event.subscription_id = 4;
  event.kind = wire::EventKind::kData;
  event.topic = wire::PushTopic::kSmsDelivery;
  event.cursor = 778;
  event.aux = 9;
  event.body = "314159:submitted";
  pristine.emplace_back();
  wire::EncodeEvent(event, pristine.back());

  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::vector<std::uint8_t> bytes = pristine[iteration % pristine.size()];
    switch (rng.Next() % 4) {
      case 0:
        bytes[rng.Next() % bytes.size()] ^=
            static_cast<std::uint8_t>(1u << (rng.Next() % 8));
        break;
      case 1:
        bytes.resize(rng.Next() % bytes.size());
        break;
      case 2:
        bytes[rng.Next() % bytes.size()] =
            static_cast<std::uint8_t>(rng.Next());
        bytes[rng.Next() % bytes.size()] =
            static_cast<std::uint8_t>(rng.Next());
        break;
      default:
        bytes.assign(rng.Next() % 64, 0);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.Next());
        break;
    }
    FrameView frame;
    std::size_t consumed = 0;
    std::string error;
    if (DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, &error) !=
        DecodeStatus::kOk) {
      continue;
    }
    switch (frame.type) {
      case FrameType::kSubscribe: {
        wire::WireSubscribe out;
        (void)wire::DecodeSubscribe(frame.payload, frame.payload_size, &out,
                                    &error);
        break;
      }
      case FrameType::kUnsubscribe: {
        wire::WireUnsubscribe out;
        (void)wire::DecodeUnsubscribe(frame.payload, frame.payload_size, &out,
                                      &error);
        break;
      }
      case FrameType::kSubscribeAck: {
        wire::WireSubscribeAck out;
        (void)wire::DecodeSubscribeAck(frame.payload, frame.payload_size, &out,
                                       &error);
        break;
      }
      case FrameType::kEvent: {
        wire::WireEvent out;
        (void)wire::DecodeEvent(frame.payload, frame.payload_size, &out,
                                &error);
        break;
      }
      default: {
        // Mutation flipped the type byte into another family (or an
        // unknown one): the unsupported-frame answer path peeks the id.
        std::uint64_t id = 0;
        (void)wire::PeekPayloadId(frame.payload, frame.payload_size, &id);
        break;
      }
    }
  }
}

TEST(WireFuzz, MutatedScriptFramesNeverCrashTheDecoder) {
  // kScript carries the largest, most structured body on the wire (a
  // whole program plus an argument table), so it gets the same
  // deterministic mutation sweep as requests and push frames.
  SplitMix64 rng{0x5c21b7d00dull};
  wire::WireScriptRequest base;
  base.request_id = 41;
  base.client_id = 6;
  base.timeout_micros = 250'000;
  base.step_budget = 10'000;
  base.virtual_us_budget = 500'000;
  base.max_result_bytes = 2048;
  base.source = "var loc = mobile.invoke('android', 'getLocation'); loc";
  base.args.emplace_back("url", "http://gw.example/ingest");
  base.args.emplace_back("note", std::string(120, 'n'));
  std::vector<std::uint8_t> pristine;
  wire::EncodeScript(base, pristine);

  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::vector<std::uint8_t> bytes = pristine;
    switch (rng.Next() % 4) {
      case 0:
        bytes[rng.Next() % bytes.size()] ^=
            static_cast<std::uint8_t>(1u << (rng.Next() % 8));
        break;
      case 1:
        bytes.resize(rng.Next() % bytes.size());
        break;
      case 2:
        bytes[rng.Next() % bytes.size()] =
            static_cast<std::uint8_t>(rng.Next());
        bytes[rng.Next() % bytes.size()] =
            static_cast<std::uint8_t>(rng.Next());
        break;
      default:
        bytes.assign(rng.Next() % 64, 0);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.Next());
        break;
    }
    FrameView frame;
    std::size_t consumed = 0;
    std::string error;
    if (DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, &error) !=
        DecodeStatus::kOk) {
      continue;
    }
    // Whatever survived framing must decode or fail typed — never crash.
    // A kBadBody verdict must still recover the request id so the server
    // can answer kMalformedRequest in-band.
    wire::WireScriptRequest out;
    const BodyStatus status =
        wire::DecodeScript(frame.payload, frame.payload_size, &out, &error);
    if (status == BodyStatus::kBadBody) {
      ASSERT_FALSE(error.empty()) << "iteration " << iteration;
    }
  }
}

// ---------------------------------------------------------------------------
// ByteRing: the zero-copy staleness contract
// ---------------------------------------------------------------------------

TEST(WireRing, WriteWindowCommitAndConsumeMoveBytesThrough) {
  ByteRing ring(64);
  std::size_t available = 0;
  std::uint8_t* window = ring.WriteWindow(16, &available);
  ASSERT_NE(window, nullptr);
  ASSERT_GE(available, 16u);
  const char payload[] = "direct-read bytes";
  std::memcpy(window, payload, sizeof payload - 1);
  ring.CommitWrite(sizeof payload - 1);
  ASSERT_EQ(ring.size(), sizeof payload - 1);
  const std::uint8_t* data = ring.Contiguous();
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(data), ring.size()),
            payload);
  ring.Consume(7);  // "direct-"
  data = ring.Contiguous();
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(data), ring.size()),
            "read bytes");
  ring.Consume(ring.size());
  EXPECT_EQ(ring.size(), 0u);
}

TEST(WireRing, GenerationBumpsOnConsumeGrowAndRotation) {
  ByteRing ring(64);
  const std::uint8_t bytes[32] = {};
  ring.Append(bytes, sizeof bytes);
  const std::uint64_t at_rest = ring.generation();
  // Contiguous on unwrapped data moves nothing: views stay valid.
  (void)ring.Contiguous();
  EXPECT_EQ(ring.generation(), at_rest);

  // Consume marks the recycle horizon — generation must advance.
  ring.Consume(16);
  const std::uint64_t after_consume = ring.generation();
  EXPECT_GT(after_consume, at_rest);

  // Wrap the ring (append past the end with a consumed head), then
  // linearize: the storage rotates in place, so views move.
  std::size_t available = 0;
  (void)ring.WriteWindow(1, &available);
  const std::uint8_t tail[40] = {};
  ring.Append(tail, sizeof tail);
  (void)ring.Contiguous();
  const std::uint64_t after_rotate = ring.generation();
  EXPECT_GT(after_rotate, after_consume);

  // Growing reallocates the backing store — generation must advance.
  std::vector<std::uint8_t> big(4096, 0xab);
  ring.Append(big.data(), big.size());
  EXPECT_GT(ring.generation(), after_rotate);
}

// The use-after-recycle canary: decode a zero-copy view out of a ring,
// recycle the frame's bytes, and show the generation guard is exactly
// what separates the valid window from the stale one. This is the
// contract WireServer::HandleRequest asserts after every borrowed
// Submit.
TEST(WireRing, RequestViewsAreGuardedByTheGenerationCounter) {
  WireRequest request = HttpGet(42);
  request.payload = "canary payload that exceeds SSO length for certain";
  std::vector<std::uint8_t> frame_bytes;
  EncodeRequest(request, frame_bytes);

  ByteRing ring(frame_bytes.size() * 2);
  ring.Append(frame_bytes.data(), frame_bytes.size());

  FrameView frame;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(ring.Contiguous(), ring.size(), &frame, &consumed,
                        nullptr),
            DecodeStatus::kOk);
  WireRequestView view;
  ASSERT_EQ(DecodeRequestView(frame.payload, frame.payload_size, &view,
                              nullptr),
            BodyStatus::kOk);
  const std::uint64_t generation = ring.generation();

  // Within the generation window the views alias live frame bytes:
  // materializing now must observe the encoded strings.
  ASSERT_EQ(ring.generation(), generation);
  const std::string materialized_payload(view.payload);
  EXPECT_EQ(materialized_payload, request.payload);

  // Recycle the frame (the server does this once dispatch returns) and
  // land fresh bytes over the old range. The guard trips: any view still
  // held is now past the recycle horizon and must not be read.
  ring.Consume(consumed);
  std::vector<std::uint8_t> overwrite(frame_bytes.size(), 0x5a);
  ring.Append(overwrite.data(), overwrite.size());
  EXPECT_NE(ring.generation(), generation);

  // The copy taken inside the window is untouched by the recycle.
  EXPECT_EQ(materialized_payload, request.payload);
}

// ---------------------------------------------------------------------------
// Server fixture and raw-socket helpers
// ---------------------------------------------------------------------------

/// A blocking loopback socket that speaks frames by hand — for tests
/// that need byte-level control the WireClient deliberately forbids.
class RawConn {
 public:
  ~RawConn() { CloseNow(); }

  [[nodiscard]] bool Connect(std::uint16_t port, int rcvbuf = 0,
                             int rcvtimeo_ms = 10000) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    }
    // Reads fail loud instead of hanging the test.
    timeval tv{rcvtimeo_ms / 1000, (rcvtimeo_ms % 1000) * 1000};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
           0;
  }

  [[nodiscard]] bool Send(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Read until one whole response frame decodes. False on EOF, read
  /// timeout, or malformed bytes from the server.
  [[nodiscard]] bool RecvResponse(WireResponse* response) {
    while (true) {
      FrameView frame;
      std::size_t consumed = 0;
      const DecodeStatus status = DecodeFrame(
          buf_.data() + start_, buf_.size() - start_, &frame, &consumed,
          nullptr);
      if (status == DecodeStatus::kMalformed) return false;
      if (status == DecodeStatus::kOk) {
        if (frame.type != FrameType::kResponse) return false;
        const bool ok = wire::DecodeResponse(frame.payload, frame.payload_size,
                                             response, nullptr);
        start_ += consumed;
        if (start_ == buf_.size()) {
          buf_.clear();
          start_ = 0;
        }
        return ok;
      }
      std::uint8_t chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buf_.insert(buf_.end(), chunk, chunk + n);
    }
  }

  /// True if the server closed this connection (EOF within the timeout).
  [[nodiscard]] bool WaitForClose() {
    std::uint8_t chunk[4096];
    while (true) {
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      return n == 0;  // timeout or error means "not closed"
    }
  }

  void CloseNow() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> buf_;
  std::size_t start_ = 0;
};

class WireServerTest : public ::testing::Test {
 protected:
  void StartAll(GatewayConfig gateway_config, WireServerConfig wire_config) {
    gateway_ = std::make_unique<Gateway>(std::move(gateway_config));
    server_ = std::make_unique<WireServer>(*gateway_, wire_config);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  // Shutdown contract: server first (stops reading), then the gateway
  // (drains; completions land on closed connections and drop).
  void TearDown() override {
    if (server_) server_->Stop();
    if (gateway_) gateway_->Stop();
  }

  std::unique_ptr<Gateway> gateway_;
  std::unique_ptr<WireServer> server_;
};

// ---------------------------------------------------------------------------
// Server: serving semantics over real sockets
// ---------------------------------------------------------------------------

TEST_F(WireServerTest, ServesEveryOpOverLoopback) {
  StartAll(BaseConfig(2), {});
  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  const Platform platforms[] = {Platform::kAndroid, Platform::kS60,
                                Platform::kIphone};
  for (Platform platform : platforms) {
    WireRequest get = HttpGet(7);
    get.platform = platform;
    WireResponse response;
    ASSERT_TRUE(client.Call(get, &response));
    EXPECT_EQ(response.status, WireStatus::kOk) << response.body;
    EXPECT_EQ(response.body, "pong");
    EXPECT_EQ(response.served_platform, platform);
    EXPECT_EQ(response.attempts, 1u);

    WireRequest location;
    location.client_id = 7;
    location.platform = platform;
    location.op = Op::kGetLocation;
    ASSERT_TRUE(client.Call(location, &response));
    EXPECT_EQ(response.status, WireStatus::kOk) << response.body;
    EXPECT_NE(response.body.find(','), std::string::npos);

    WireRequest sms;
    sms.client_id = 7;
    sms.platform = platform;
    sms.op = Op::kSendSms;
    sms.target = gateway::kGatewaySmsPeer;
    sms.payload = "hello over the wire";
    ASSERT_TRUE(client.Call(sms, &response));
    EXPECT_EQ(response.status, WireStatus::kOk) << response.body;
    EXPECT_GT(std::stoll(response.body), 0);

    WireRequest segments;
    segments.client_id = 7;
    segments.platform = platform;
    segments.op = Op::kSegmentCount;
    segments.payload = std::string(200, 'x');
    ASSERT_TRUE(client.Call(segments, &response));
    EXPECT_EQ(response.status, WireStatus::kOk) << response.body;
    EXPECT_EQ(response.body, "2");
  }
  client.Close();

  const wire::WireStatsSnapshot stats = server_->Stats();
  EXPECT_EQ(stats.requests_dispatched, 12u);
  EXPECT_EQ(stats.frames_in, 12u);
  EXPECT_EQ(stats.frames_out, 12u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(WireServerTest, PipelinedRequestsAllCompleteOnce) {
  StartAll(BaseConfig(4), {});
  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  constexpr int kInFlight = 200;
  std::mutex mutex;
  std::condition_variable cv;
  int completions = 0;
  int ok = 0;
  for (int i = 0; i < kInFlight; ++i) {
    // Spread over client ids so every shard serves part of the burst.
    client.Submit(HttpGet(static_cast<std::uint64_t>(i)),
                  [&](const WireResponse& response) {
                    std::lock_guard<std::mutex> lock(mutex);
                    ++completions;
                    if (response.status == WireStatus::kOk &&
                        response.body == "pong") {
                      ++ok;
                    }
                    cv.notify_one();
                  });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return completions == kInFlight; }));
  EXPECT_EQ(ok, kInFlight);
  EXPECT_EQ(client.outstanding(), 0u);
  lock.unlock();
  client.Close();

  const wire::WireStatsSnapshot stats = server_->Stats();
  EXPECT_EQ(stats.requests_dispatched, static_cast<std::uint64_t>(kInFlight));
  EXPECT_EQ(stats.frames_out, static_cast<std::uint64_t>(kInFlight));
}

TEST_F(WireServerTest, BatchWithPerRequestCallbacksFiresEachExactlyOnce) {
  StartAll(BaseConfig(2), {});
  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  // Distinct segment counts per request prove each callback got ITS
  // response, not just any response from the batch.
  constexpr int kBatch = 8;
  std::vector<WireRequest> requests;
  std::vector<WireClient::Callback> callbacks;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> fires(kBatch, 0);
  std::vector<std::string> bodies(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    WireRequest request;
    request.client_id = static_cast<std::uint64_t>(i);
    request.platform = Platform::kAndroid;
    request.op = Op::kSegmentCount;
    request.payload = std::string(static_cast<std::size_t>(i) * 160 + 10, 'x');
    requests.push_back(std::move(request));
    callbacks.emplace_back([&, i](const WireResponse& response) {
      std::lock_guard<std::mutex> lock(mutex);
      ++fires[static_cast<std::size_t>(i)];
      bodies[static_cast<std::size_t>(i)] = response.body;
      cv.notify_one();
    });
  }
  EXPECT_EQ(client.SubmitBatch(requests, std::move(callbacks)),
            static_cast<std::size_t>(kBatch));
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] {
      int total = 0;
      for (int f : fires) total += f;
      return total == kBatch;
    }));
  }
  for (int i = 0; i < kBatch; ++i) {
    EXPECT_EQ(fires[static_cast<std::size_t>(i)], 1) << i;
    EXPECT_EQ(bodies[static_cast<std::size_t>(i)], std::to_string(i + 1)) << i;
  }

  // Length mismatch never reaches the socket: every callback fails
  // in-line with kTransportError.
  std::vector<WireClient::Callback> short_callbacks;
  int mismatch_fires = 0;
  short_callbacks.emplace_back([&](const WireResponse& response) {
    EXPECT_EQ(response.status, WireStatus::kTransportError);
    ++mismatch_fires;
  });
  EXPECT_EQ(client.SubmitBatch(requests, std::move(short_callbacks)), 0u);
  EXPECT_EQ(mismatch_fires, 1);
  client.Close();
}

TEST_F(WireServerTest, PropertiesApplyPerRequestOverTheWire) {
  StartAll(BaseConfig(1), {});
  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  // Impossible criteria -> typed kLocationUnavailable over the wire.
  WireRequest strict;
  strict.client_id = 1;
  strict.platform = Platform::kS60;
  strict.op = Op::kGetLocation;
  strict.max_attempts = 1;
  strict.properties.emplace_back("horizontalAccuracy", 10LL);
  strict.properties.emplace_back("powerConsumption", std::string("low"));
  WireResponse response;
  ASSERT_TRUE(client.Call(strict, &response));
  EXPECT_EQ(response.status, WireStatus::kLocationUnavailable);

  // Same shard, no properties: must not inherit the strict criteria.
  WireRequest plain;
  plain.client_id = 1;
  plain.platform = Platform::kS60;
  plain.op = Op::kGetLocation;
  plain.max_attempts = 1;
  ASSERT_TRUE(client.Call(plain, &response));
  EXPECT_EQ(response.status, WireStatus::kOk)
      << "wire properties leaked across requests: " << response.body;

  // Unknown property -> descriptor validation -> kIllegalArgument.
  WireRequest bad = HttpGet(1);
  bad.properties.emplace_back("noSuchProperty", 1LL);
  ASSERT_TRUE(client.Call(bad, &response));
  EXPECT_EQ(response.status, WireStatus::kIllegalArgument);
  EXPECT_EQ(response.attempts, 1u);
  client.Close();
}

TEST_F(WireServerTest, OverloadShedsWithTypedWireStatus) {
  GatewayConfig config = BaseConfig(1);
  config.queue_capacity = 4;
  config.shed_watermark = 4;
  StartAll(config, {});
  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  constexpr int kBurst = 400;
  std::mutex mutex;
  std::condition_variable cv;
  int completions = 0;
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    // One client id: every request lands on the same 4-slot shard queue.
    client.Submit(HttpGet(1), [&](const WireResponse& response) {
      std::lock_guard<std::mutex> lock(mutex);
      ++completions;
      if (response.status == WireStatus::kOk) ++ok;
      if (response.status == WireStatus::kOverloaded) ++shed;
      cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return completions == kBurst; }));
  EXPECT_EQ(ok + shed, kBurst) << "only kOk / kOverloaded expected";
  EXPECT_GT(shed, 0) << "the burst must overrun a 4-slot queue";
  EXPECT_GT(ok, 0);
  lock.unlock();
  client.Close();
}

// ---------------------------------------------------------------------------
// Server: protocol violations over real sockets
// ---------------------------------------------------------------------------

TEST_F(WireServerTest, MalformedBodyGetsTypedResponseAndConnectionSurvives) {
  StartAll(BaseConfig(1), {});
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));

  // Well-framed request whose body violates the property cap.
  WireRequest bad = HttpGet(1);
  bad.request_id = 555;
  for (std::size_t i = 0; i <= wire::kMaxProperties; ++i) {
    bad.properties.emplace_back("p" + std::to_string(i),
                                static_cast<long long>(i));
  }
  std::vector<std::uint8_t> bytes;
  EncodeRequest(bad, bytes);
  ASSERT_TRUE(conn.Send(bytes));
  WireResponse response;
  ASSERT_TRUE(conn.RecvResponse(&response));
  EXPECT_EQ(response.status, WireStatus::kMalformedRequest);
  EXPECT_EQ(response.request_id, 555u);

  // The same connection still serves valid traffic afterwards.
  bytes.clear();
  WireRequest good = HttpGet(1);
  good.request_id = 556;
  EncodeRequest(good, bytes);
  ASSERT_TRUE(conn.Send(bytes));
  ASSERT_TRUE(conn.RecvResponse(&response));
  EXPECT_EQ(response.status, WireStatus::kOk);
  EXPECT_EQ(response.request_id, 556u);
  EXPECT_EQ(response.body, "pong");

  EXPECT_EQ(server_->Stats().decode_errors, 1u);
  EXPECT_EQ(server_->Stats().protocol_errors, 0u);
}

TEST_F(WireServerTest, FramingErrorClosesConnectionFreshOneIsServed) {
  StartAll(BaseConfig(1), {});

  {  // Bad magic: connection must close.
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server_->port()));
    ASSERT_TRUE(conn.Send({'X', 'Y', 0x01, 0x01, 0x00}));
    EXPECT_TRUE(conn.WaitForClose());
  }
  {  // Oversized declared length: close before any payload arrives.
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server_->port()));
    std::vector<std::uint8_t> bytes = {wire::kMagic0, wire::kMagic1,
                                       wire::kWireVersion,
                                       static_cast<std::uint8_t>(1)};
    support::PutVarint(bytes, 8u << 20);
    ASSERT_TRUE(conn.Send(bytes));
    EXPECT_TRUE(conn.WaitForClose());
  }
  {  // CRC corruption: close.
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server_->port()));
    std::vector<std::uint8_t> bytes;
    EncodeRequest(HttpGet(1), bytes);
    bytes[bytes.size() - 1] ^= 0xff;
    ASSERT_TRUE(conn.Send(bytes));
    EXPECT_TRUE(conn.WaitForClose());
  }
  EXPECT_GE(server_->Stats().protocol_errors, 3u);

  // The server itself is unharmed: a fresh connection round-trips.
  RawConn fresh;
  ASSERT_TRUE(fresh.Connect(server_->port()));
  std::vector<std::uint8_t> bytes;
  WireRequest good = HttpGet(2);
  good.request_id = 1;
  EncodeRequest(good, bytes);
  ASSERT_TRUE(fresh.Send(bytes));
  WireResponse response;
  ASSERT_TRUE(fresh.RecvResponse(&response));
  EXPECT_EQ(response.status, WireStatus::kOk);
}

TEST_F(WireServerTest, DuplicateRequestIdsBothGetAnswered) {
  StartAll(BaseConfig(1), {});
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));

  // The server treats ids as opaque correlation tokens — no dedupe.
  std::vector<std::uint8_t> bytes;
  WireRequest first = HttpGet(1);
  first.request_id = 777;
  EncodeRequest(first, bytes);
  WireRequest second = HttpGet(1);
  second.request_id = 777;
  second.op = Op::kSegmentCount;
  second.target.clear();
  second.payload = std::string(10, 'x');
  EncodeRequest(second, bytes);
  ASSERT_TRUE(conn.Send(bytes));

  WireResponse a, b;
  ASSERT_TRUE(conn.RecvResponse(&a));
  ASSERT_TRUE(conn.RecvResponse(&b));
  EXPECT_EQ(a.request_id, 777u);
  EXPECT_EQ(b.request_id, 777u);
  // Same shard, same client: responses arrive in submit order.
  EXPECT_EQ(a.body, "pong");
  EXPECT_EQ(b.body, "1");
}

// ---------------------------------------------------------------------------
// Server: socket-level fuzz
// ---------------------------------------------------------------------------

TEST_F(WireServerTest, SocketFuzzNeverKillsTheServer) {
  StartAll(BaseConfig(1), {});
  SplitMix64 rng{0xfeedbeefull};
  // Alternate between the two client-originated frame families so the
  // server's kScript dispatch path faces the same hostile bytes as
  // kRequest.
  std::vector<std::vector<std::uint8_t>> corpus(2);
  WireRequest base = HttpGet(1);
  base.request_id = 1;
  base.properties.emplace_back("powerConsumption", std::string("low"));
  EncodeRequest(base, corpus[0]);
  wire::WireScriptRequest script;
  script.request_id = 2;
  script.client_id = 1;
  script.step_budget = 1000;
  script.source = "mobile.invoke('android', 'getLocation')";
  script.args.emplace_back("k", "v");
  wire::EncodeScript(script, corpus[1]);

  for (int round = 0; round < 48; ++round) {
    const std::vector<std::uint8_t>& pristine = corpus[round % corpus.size()];
    RawConn conn;
    // Short read timeout: a mutation that leaves the connection idle
    // (e.g. a truncated frame the server is still waiting on) must not
    // stall the round for the full default timeout.
    ASSERT_TRUE(conn.Connect(server_->port(), /*rcvbuf=*/0,
                             /*rcvtimeo_ms=*/200))
        << "server died on round " << round;
    std::vector<std::uint8_t> bytes = pristine;
    switch (rng.Next() % 4) {
      case 0:
        bytes[rng.Next() % bytes.size()] ^=
            static_cast<std::uint8_t>(1u << (rng.Next() % 8));
        break;
      case 1:
        bytes.resize(1 + rng.Next() % (bytes.size() - 1));
        break;
      case 2: {  // duplicate the frame then corrupt the second copy
        const std::size_t n = bytes.size();
        bytes.insert(bytes.end(), pristine.begin(), pristine.end());
        bytes[n + rng.Next() % n] ^= 0x10;
        break;
      }
      default:
        bytes.assign(4 + rng.Next() % 64, 0);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.Next());
        break;
    }
    if (!conn.Send(bytes)) continue;  // server closed mid-send: fine
    // Drain whatever comes back (typed responses and/or a close); the
    // only forbidden outcome — a crash — shows up as Connect failing on
    // the next round or the final round trip failing.
    WireResponse response;
    while (conn.RecvResponse(&response)) {
    }
  }

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  std::vector<std::uint8_t> bytes;
  WireRequest good = HttpGet(1);
  good.request_id = 9999;
  EncodeRequest(good, bytes);
  ASSERT_TRUE(conn.Send(bytes));
  WireResponse response;
  ASSERT_TRUE(conn.RecvResponse(&response));
  EXPECT_EQ(response.status, WireStatus::kOk);
  EXPECT_EQ(response.body, "pong");
}

// ---------------------------------------------------------------------------
// Server: backpressure
// ---------------------------------------------------------------------------

TEST_F(WireServerTest, OutputBackpressurePausesAndEveryResponseArrives) {
  WireServerConfig wire_config;
  wire_config.output_high_watermark = 8 * 1024;
  wire_config.output_low_watermark = 2 * 1024;
  StartAll(BaseConfig(2), wire_config);

  // Big echoes, tiny client receive buffer, and no reading until every
  // request is on the wire: the server must hit the watermark, pause,
  // and still deliver everything once we drain.
  constexpr int kPosts = 16;
  const std::string body(48 * 1024, 'e');
  RawConn conn;
  // Generous receive timeout: 768 KiB drains through a 4 KiB receive
  // buffer in many small reads, and a saturated CI host (the full suite
  // under ctest -j) can starve this thread between them.
  ASSERT_TRUE(
      conn.Connect(server_->port(), /*rcvbuf=*/4096, /*rcvtimeo_ms=*/60000));
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < kPosts; ++i) {
    WireRequest post;
    post.request_id = static_cast<std::uint64_t>(i) + 1;
    post.client_id = 1;
    post.platform = Platform::kAndroid;
    post.op = Op::kHttpPost;
    post.target = std::string("http://") + gateway::kGatewayHttpHost + "/echo";
    post.payload = body;
    post.content_type = "text/plain";
    EncodeRequest(post, bytes);
  }
  ASSERT_TRUE(conn.Send(bytes));

  int received = 0;
  for (; received < kPosts; ++received) {
    WireResponse response;
    if (!conn.RecvResponse(&response)) break;
    EXPECT_EQ(response.status, WireStatus::kOk);
    EXPECT_EQ(response.body, body) << "echo body mangled under backpressure";
  }
  EXPECT_EQ(received, kPosts);
  EXPECT_GE(server_->Stats().backpressure_stalls, 1u)
      << "48 KiB x 16 echoes through a 4 KiB receive buffer must stall";
}

// ---------------------------------------------------------------------------
// Server: lifecycle and client failure semantics
// ---------------------------------------------------------------------------

TEST_F(WireServerTest, StopWithBusyClientsFailsOutstandingExactlyOnce) {
  StartAll(BaseConfig(2), {});
  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  constexpr int kInFlight = 64;
  std::atomic<int> fired{0};
  for (int i = 0; i < kInFlight; ++i) {
    client.Submit(HttpGet(static_cast<std::uint64_t>(i)),
                  [&](const WireResponse&) { fired.fetch_add(1); });
  }
  server_->Stop();
  gateway_->Stop();
  client.Close();  // reader sees EOF; outstanding fail with kTransportError
  EXPECT_EQ(fired.load(), kInFlight) << "every callback fires exactly once";
  EXPECT_EQ(client.outstanding(), 0u);
}

TEST_F(WireServerTest, ClientSurfacesTransportErrorAfterServerStops) {
  StartAll(BaseConfig(1), {});
  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  WireResponse warm;
  ASSERT_TRUE(client.Call(HttpGet(1), &warm));
  ASSERT_EQ(warm.status, WireStatus::kOk);

  server_->Stop();
  gateway_->Stop();

  WireResponse response;
  EXPECT_FALSE(client.Call(HttpGet(1), &response));
  EXPECT_EQ(response.status, WireStatus::kTransportError);
  client.Close();

  // A closed client fails fast, synchronously.
  bool called = false;
  EXPECT_FALSE(client.Submit(HttpGet(1), [&](const WireResponse& dead) {
    called = true;
    EXPECT_EQ(dead.status, WireStatus::kTransportError);
  }));
  EXPECT_TRUE(called);
}

TEST_F(WireServerTest, MetricsSourceExportsWireCounters) {
  StartAll(BaseConfig(1), {});
  support::MetricsRegistry registry;
  const auto registration = server_->RegisterMetrics(registry);

  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  WireResponse response;
  ASSERT_TRUE(client.Call(HttpGet(1), &response));
  ASSERT_EQ(response.status, WireStatus::kOk);
  client.Close();

  // The loop thread books bytes_out after its write() returns, and the
  // client can observe the response a hair earlier — give the counter a
  // moment to settle before snapshotting.
  for (int i = 0; i < 2000; ++i) {
    if (registry.Snapshot().Find("wire.bytes_out")->count > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const support::MetricsSnapshot snapshot = registry.Snapshot();
  const char* names[] = {
      "wire.connections_accepted", "wire.connections_closed",
      "wire.connections_active",   "wire.frames_in",
      "wire.frames_out",           "wire.bytes_in",
      "wire.bytes_out",            "wire.decode_errors",
      "wire.protocol_errors",      "wire.backpressure_stalls",
      "wire.requests_dispatched"};
  for (const char* name : names) {
    ASSERT_NE(snapshot.Find(name), nullptr) << name;
  }
  EXPECT_EQ(snapshot.Find("wire.frames_in")->count, 1u);
  EXPECT_EQ(snapshot.Find("wire.requests_dispatched")->count, 1u);
  EXPECT_GT(snapshot.Find("wire.bytes_in")->count, 0u);
  EXPECT_GT(snapshot.Find("wire.bytes_out")->count, 0u);
}

// ---------------------------------------------------------------------------
// Server: forward compatibility and cluster routing fence
// ---------------------------------------------------------------------------

TEST_F(WireServerTest, UnknownFrameTypeAnsweredInBandConnectionSurvives) {
  StartAll(BaseConfig(1), {});
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));

  // A frame with a type byte from the future, its payload leading with a
  // varint id (the cross-family convention) so the rejection correlates.
  std::vector<std::uint8_t> frame;
  EncodeRequest(HttpGet(3), 77, frame);
  frame[3] = 0x2a;  // no such frame family here
  ASSERT_TRUE(conn.Send(frame));

  WireResponse response;
  ASSERT_TRUE(conn.RecvResponse(&response));
  EXPECT_EQ(response.status, WireStatus::kUnsupportedFrame);
  EXPECT_EQ(response.request_id, 77u);

  // Not a hard close: the same connection still serves real requests.
  std::vector<std::uint8_t> good;
  EncodeRequest(HttpGet(3), 78, good);
  ASSERT_TRUE(conn.Send(good));
  ASSERT_TRUE(conn.RecvResponse(&response));
  EXPECT_EQ(response.status, WireStatus::kOk);
  EXPECT_EQ(response.request_id, 78u);

  const wire::WireStatsSnapshot stats = server_->Stats();
  EXPECT_EQ(stats.unsupported_frames, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(WireServerTest, OwnershipFilterAnswersWrongWorkerWithEpoch) {
  // Fence odd client ids behind a plan at epoch 42 — the shape the
  // cluster worker agent backs this callback with.
  WireServerConfig config;
  config.ownership = [](std::uint64_t client_id, std::uint64_t* epoch) {
    *epoch = 42;
    return client_id % 2 == 0;
  };
  StartAll(BaseConfig(1), config);
  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  WireResponse response;
  ASSERT_TRUE(client.Call(HttpGet(2), &response));
  EXPECT_EQ(response.status, WireStatus::kOk);

  ASSERT_TRUE(client.Call(HttpGet(3), &response));
  EXPECT_EQ(response.status, WireStatus::kWrongWorker);
  EXPECT_EQ(response.body, "42");  // the epoch travels as the body

  // The fence answers before dispatch: the gateway never saw request 3.
  client.Close();
  const wire::WireStatsSnapshot stats = server_->Stats();
  EXPECT_EQ(stats.wrong_worker, 1u);
  EXPECT_EQ(stats.requests_dispatched, 1u);
}

// ---------------------------------------------------------------------------
// Client: bounded connects and reconnection
// ---------------------------------------------------------------------------

TEST(WireClientConnect, RefusedPortFailsFastNotAfterKernelPatience) {
  // Grab a port with no listener behind it: bind, learn the number,
  // close — connects then get ECONNREFUSED immediately.
  const int probe = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  wire::ConnectOptions options;
  options.max_attempts = 3;
  options.initial_backoff = std::chrono::microseconds(2'000);
  options.backoff_multiplier = 2.0;
  const auto start = std::chrono::steady_clock::now();
  WireClient client;
  std::string error;
  EXPECT_FALSE(client.Connect(dead_port, options, &error));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(error.empty());
  // 3 refused attempts + 2ms and 4ms backoffs: well under a second, and
  // provably more than the backoff floor (the retries really slept).
  EXPECT_GE(elapsed, std::chrono::microseconds(6'000));
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST_F(WireServerTest, ClientReconnectsAfterServerRestart) {
  StartAll(BaseConfig(1), {});
  const std::uint16_t port = server_->port();

  WireClient client;
  ASSERT_TRUE(client.Connect(port));
  WireResponse response;
  ASSERT_TRUE(client.Call(HttpGet(1), &response));
  EXPECT_EQ(response.status, WireStatus::kOk);

  // Kill the server under the client. In-flight and future submits fail
  // with kTransportError (the exactly-once contract)…
  server_->Stop();
  for (int i = 0; i < 2000 && client.connected(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(client.connected());
  EXPECT_FALSE(client.Call(HttpGet(1), &response));

  // …and a fresh server on the same port is reachable through the SAME
  // client object: Connect reclaims the dead reader and dials again.
  WireServerConfig config;
  config.port = port;
  server_ = std::make_unique<WireServer>(*gateway_, config);
  std::string error;
  ASSERT_TRUE(server_->Start(&error)) << error;

  wire::ConnectOptions retry;
  retry.max_attempts = 20;
  retry.initial_backoff = std::chrono::microseconds(10'000);
  retry.backoff_multiplier = 1.0;
  ASSERT_TRUE(client.Connect(port, retry, &error)) << error;
  ASSERT_TRUE(client.Call(HttpGet(1), &response));
  EXPECT_EQ(response.status, WireStatus::kOk);
  EXPECT_EQ(client.outstanding(), 0u);
  client.Close();
}

}  // namespace
}  // namespace mobivine
