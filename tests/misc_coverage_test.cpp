// Coverage for corners the module-focused suites skip: logging sinks, the
// overhead meter, property-bag typing, writer options, MiniJS runtime
// odds-and-ends, WebView page API edges, and binding hygiene (receiver
// pruning).
#include <gtest/gtest.h>

#include "core/bindings/android_bindings.h"
#include "core/meter.h"
#include "core/property.h"
#include "core/registry.h"
#include "minijs/interpreter.h"
#include "support/logging.h"
#include "tests/test_util.h"
#include "webview/webview.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace mobivine {
namespace {

using mobivine::testing::MakeDevice;

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(Logging, LevelsGateOutputAndSinkCaptures) {
  auto& logger = support::Logger::Instance();
  std::vector<std::pair<support::LogLevel, std::string>> captured;
  logger.set_sink([&](support::LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });

  logger.set_level(support::LogLevel::kOff);
  MOBIVINE_LOG_ERROR << "suppressed";
  EXPECT_TRUE(captured.empty());

  logger.set_level(support::LogLevel::kWarn);
  MOBIVINE_LOG_ERROR << "error " << 42;
  MOBIVINE_LOG_WARN << "warn";
  MOBIVINE_LOG_INFO << "info suppressed";
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "error 42");
  EXPECT_EQ(captured[1].first, support::LogLevel::kWarn);

  logger.set_level(support::LogLevel::kDebug);
  MOBIVINE_LOG_DEBUG << "debug";
  EXPECT_EQ(captured.size(), 3u);

  // Restore defaults for other tests.
  logger.set_level(support::LogLevel::kOff);
}

// ---------------------------------------------------------------------------
// OverheadMeter / PropertyBag
// ---------------------------------------------------------------------------

TEST(OverheadMeter, CountsChargesAndAdvancesClock) {
  sim::Scheduler scheduler;
  core::OverheadMeter meter(scheduler);
  meter.Charge(core::Op::kDispatch);
  meter.Charge(core::Op::kTypeConversion, 7);
  EXPECT_EQ(meter.count(core::Op::kDispatch), 1u);
  EXPECT_EQ(meter.count(core::Op::kTypeConversion), 7u);
  EXPECT_EQ(meter.total_ops(), 8u);
  EXPECT_GT(meter.charged().micros(), 0);
  EXPECT_EQ(scheduler.now(), meter.charged());
  meter.Reset();
  EXPECT_EQ(meter.total_ops(), 0u);
  EXPECT_EQ(meter.charged(), sim::SimTime::Zero());
  // ToString is total over the op enum.
  for (int i = 0; i < static_cast<int>(core::Op::kCount_); ++i) {
    EXPECT_STRNE(core::ToString(static_cast<core::Op>(i)), "?");
  }
}

TEST(PropertyBag, TypedAccessAndMismatch) {
  core::PropertyBag bag;
  bag.Set("i", 42LL);
  bag.Set("s", std::string("x"));
  bag.Set("b", true);
  EXPECT_EQ(bag.GetOr<long long>("i", 0), 42);
  EXPECT_EQ(bag.GetOr<std::string>("s", ""), "x");
  EXPECT_TRUE(bag.GetOr<bool>("b", false));
  // Type mismatch yields nullopt, not a throw.
  EXPECT_FALSE(bag.Get<std::string>("i").has_value());
  EXPECT_FALSE(bag.Get<long long>("missing").has_value());
  EXPECT_EQ(bag.Names().size(), 3u);
  // Overwrite keeps one entry.
  bag.Set("i", 7LL);
  EXPECT_EQ(bag.size(), 3u);
  EXPECT_EQ(bag.GetOr<long long>("i", 0), 7);
}

// ---------------------------------------------------------------------------
// XML writer options
// ---------------------------------------------------------------------------

TEST(XmlWriterOptions, DeclarationAndIndentControl) {
  xml::Document doc = xml::Parse("<a><b>t</b></a>");
  xml::WriteOptions with_decl;
  const std::string pretty = xml::WriteDocument(doc, with_decl);
  EXPECT_NE(pretty.find("<?xml version=\"1.0\""), std::string::npos);
  EXPECT_NE(pretty.find('\n'), std::string::npos);

  xml::WriteOptions bare;
  bare.indent = 0;
  bare.declaration = false;
  EXPECT_EQ(xml::WriteDocument(doc, bare), "<a><b>t</b></a>");
}

// ---------------------------------------------------------------------------
// MiniJS runtime odds and ends
// ---------------------------------------------------------------------------

TEST(MiniJsMisc, ValueDisplayForms) {
  using minijs::Value;
  EXPECT_EQ(Value::Undefined().ToDisplayString(), "undefined");
  EXPECT_EQ(Value::Null().ToDisplayString(), "null");
  EXPECT_EQ(Value::Number(2.5).ToDisplayString(), "2.5");
  EXPECT_EQ(Value::Number(-3).ToDisplayString(), "-3");
  auto array = minijs::Object::MakeArray();
  array->elements() = {Value::Number(1), Value::String("a")};
  EXPECT_EQ(Value::Obj(array).ToDisplayString(), "1,a");
  auto error = minijs::MakeErrorObject("TypeError", "boom", 7);
  EXPECT_EQ(Value::Obj(error).ToDisplayString(), "TypeError: boom");
}

TEST(MiniJsMisc, TruthinessTable) {
  using minijs::Value;
  EXPECT_FALSE(Value::Undefined().Truthy());
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Number(0).Truthy());
  EXPECT_FALSE(Value::String("").Truthy());
  EXPECT_TRUE(Value::Number(-1).Truthy());
  EXPECT_TRUE(Value::String("0").Truthy());
  EXPECT_TRUE(Value::Obj(minijs::Object::Make()).Truthy());
}

TEST(MiniJsMisc, NestedFunctionScopesAndShadowing) {
  minijs::Interpreter interp;
  minijs::Value result = interp.Run(R"(
    var x = 'outer';
    function f() {
      var x = 'inner';
      function g() { return x; }
      return g();
    }
    f() + '/' + x;
  )");
  EXPECT_EQ(result.as_string(), "inner/outer");
}

TEST(MiniJsMisc, ForLoopScopeIsolatedFromGlobals) {
  minijs::Interpreter interp;
  interp.Run("for (var i = 0; i < 3; i++) { }");
  // `var` in for-init lives in the loop's scope in MiniJS (stricter than
  // sloppy JS); globals are untouched.
  EXPECT_TRUE(interp.GetGlobal("i").is_undefined());
}

TEST(MiniJsMisc, CallNonFunctionGlobalThrows) {
  auto dev = MakeDevice();
  android::AndroidPlatform platform(*dev);
  webview::WebView webview(platform);
  EXPECT_THROW(webview.callGlobal("doesNotExist", {}), minijs::ScriptError);
}

// ---------------------------------------------------------------------------
// Binding hygiene: SMS status receivers are pruned after terminal states
// ---------------------------------------------------------------------------

TEST(BindingHygiene, SmsReceiversPrunedAfterDelivery) {
  auto dev = MakeDevice();
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kSendSms);
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  core::ProxyRegistry registry(&store);
  auto generic = registry.CreateSmsProxy(platform);
  auto* proxy = dynamic_cast<core::AndroidSmsProxy*>(generic.get());
  ASSERT_NE(proxy, nullptr);
  proxy->setProperty("context", &platform.application_context());

  class Sink : public core::SmsListener {
   public:
    void smsStatusChanged(long long, core::SmsDeliveryStatus) override {}
  } sink;

  for (int i = 0; i < 5; ++i) {
    proxy->sendTextMessage("+15550123", "m", &sink);
    dev->RunAll();  // drive each message to its delivery report
  }
  // One receiver may be pending (pruning happens on the NEXT send), but
  // the other four delivered ones must be gone.
  EXPECT_LE(proxy->pending_receiver_count(), 1u);
  // And the context's receiver list shrank accordingly.
  EXPECT_LE(platform.application_context().receiver_count(), 1u);
}

// ---------------------------------------------------------------------------
// Device odds and ends
// ---------------------------------------------------------------------------

TEST(DeviceMisc, OwnNumberRegisteredAutomatically) {
  device::DeviceConfig config;
  config.own_number = "+19998887766";
  device::MobileDevice dev(config);
  EXPECT_TRUE(dev.modem().IsRegistered("+19998887766"));
  EXPECT_EQ(dev.own_number(), "+19998887766");
}

TEST(DeviceMisc, LatencyModelToStringNamesFamily) {
  EXPECT_NE(sim::LatencyModel::Fixed(sim::SimTime::Millis(5))
                .ToString()
                .find("fixed"),
            std::string::npos);
  EXPECT_NE(sim::LatencyModel::UniformIn(sim::SimTime::Millis(1),
                                         sim::SimTime::Millis(2))
                .ToString()
                .find("uniform"),
            std::string::npos);
  EXPECT_NE(sim::LatencyModel::Normal(sim::SimTime::Millis(5),
                                      sim::SimTime::Millis(1))
                .ToString()
                .find("normal"),
            std::string::npos);
}

}  // namespace
}  // namespace mobivine
