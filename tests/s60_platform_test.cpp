#include <gtest/gtest.h>

#include "s60/connector.h"
#include "s60/location_provider.h"
#include "s60/messaging.h"
#include "s60/midlet.h"
#include "s60/s60_platform.h"
#include "tests/test_util.h"

namespace mobivine::s60 {
namespace {

using mobivine::testing::ApproachTrack;
using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;
using mobivine::testing::MakeDevice;

std::unique_ptr<S60Platform> MakePlatform(device::MobileDevice& dev,
                                          bool grant_all = true) {
  auto platform = std::make_unique<S60Platform>(dev);
  if (grant_all) {
    platform->grantPermission(permissions::kLocation);
    platform->grantPermission(permissions::kSmsSend);
    platform->grantPermission(permissions::kHttp);
  }
  return platform;
}

// ---------------------------------------------------------------------------
// Permissions
// ---------------------------------------------------------------------------

TEST(S60Permissions, MissingPermissionThrowsSecurity) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev, /*grant_all=*/false);
  Criteria criteria;
  EXPECT_THROW(LocationProvider::getInstance(*platform, criteria),
               SecurityException);
}

TEST(S60Permissions, RevokeRestoresSecurityFailure) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  EXPECT_NO_THROW(platform->checkPermission(permissions::kSmsSend));
  platform->revokePermission(permissions::kSmsSend);
  EXPECT_THROW(platform->checkPermission(permissions::kSmsSend),
               SecurityException);
}

// ---------------------------------------------------------------------------
// Location
// ---------------------------------------------------------------------------

TEST(S60Location, GetLocationBlocksAndReturnsFix) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  Criteria criteria;
  criteria.setVerticalAccuracy(50);
  auto provider = LocationProvider::getInstance(*platform, criteria);
  const sim::SimTime before = dev->scheduler().now();
  Location location = provider->getLocation(30);
  const sim::SimTime elapsed = dev->scheduler().now() - before;
  // Figure 10 calibration: S60 getLocation ~140.8 ms.
  EXPECT_NEAR(elapsed.millis(), 140.8, 25.0);
  EXPECT_TRUE(location.isValid());
  EXPECT_NEAR(location.getQualifiedCoordinates().getLatitude(), kBaseLat,
              0.01);
}

TEST(S60Location, CriteriaSelectsGpsMode) {
  Criteria low_power;
  low_power.setPreferredPowerConsumption(Criteria::POWER_USAGE_LOW);
  EXPECT_EQ(S60Platform::ModeFor(low_power), device::GpsMode::kLowPower);

  Criteria accurate;
  accurate.setVerticalAccuracy(50);
  EXPECT_EQ(S60Platform::ModeFor(accurate), device::GpsMode::kHighAccuracy);

  Criteria fallback;
  EXPECT_EQ(S60Platform::ModeFor(fallback), device::GpsMode::kBalanced);
}

TEST(S60Location, GetInstanceRejectsImpossibleCriteria) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  Criteria impossible;
  impossible.setPreferredPowerConsumption(Criteria::POWER_USAGE_LOW);
  impossible.setHorizontalAccuracy(10);
  EXPECT_THROW(LocationProvider::getInstance(*platform, impossible),
               LocationException);
}

TEST(S60Location, GetLocationThrowsWhenNoFix) {
  device::DeviceConfig config;
  config.gps.fix_failure_probability = 1.0;
  device::MobileDevice dev(config);
  dev.gps().set_track(sim::GeoTrack::Stationary(kBaseLat, kBaseLon));
  auto platform = MakePlatform(dev);
  auto provider = LocationProvider::getInstance(*platform, Criteria());
  EXPECT_THROW(provider->getLocation(30), LocationException);
}

class RecordingProximityListener : public ProximityListener {
 public:
  void proximityEvent(const Coordinates& coordinates,
                      const Location& location) override {
    (void)coordinates;
    events.push_back(location);
  }
  void monitoringStateChanged(bool active) override {
    monitoring_changes.push_back(active);
  }
  std::vector<Location> events;
  std::vector<bool> monitoring_changes;
};

TEST(S60Location, ProximityListenerValidation) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  Coordinates center(kBaseLat, kBaseLon, 0);
  EXPECT_THROW(LocationProvider::addProximityListener(*platform, nullptr,
                                                      center, 100.0f),
               NullPointerException);
  RecordingProximityListener listener;
  EXPECT_THROW(LocationProvider::addProximityListener(*platform, &listener,
                                                      center, -5.0f),
               IllegalArgumentException);
  EXPECT_THROW(LocationProvider::addProximityListener(*platform, &listener,
                                                      center, 0.0f),
               IllegalArgumentException);
}

TEST(S60Location, ProximityIsOneShot) {
  auto dev = MakeDevice();
  // Start 800 m north, drive south through the region at 20 m/s.
  dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  auto platform = MakePlatform(*dev);

  RecordingProximityListener listener;
  LocationProvider::addProximityListener(
      *platform, &listener, Coordinates(kBaseLat, kBaseLon, 0), 200.0f);
  EXPECT_EQ(platform->proximity_registration_count(), 1u);

  dev->RunFor(sim::SimTime::Seconds(120));
  // JSR-179: fires exactly once on entry, then the registration is gone —
  // even though the device later exits and the poll continues.
  ASSERT_EQ(listener.events.size(), 1u);
  EXPECT_EQ(platform->proximity_registration_count(), 0u);
  EXPECT_EQ(listener.monitoring_changes,
            (std::vector<bool>{true}));
}

TEST(S60Location, RemoveProximityListenerStopsEvents) {
  auto dev = MakeDevice();
  dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
  auto platform = MakePlatform(*dev);
  RecordingProximityListener listener;
  LocationProvider::addProximityListener(
      *platform, &listener, Coordinates(kBaseLat, kBaseLon, 0), 200.0f);
  LocationProvider::removeProximityListener(*platform, &listener);
  dev->RunFor(sim::SimTime::Seconds(120));
  EXPECT_TRUE(listener.events.empty());
}

class RecordingLocationListener : public LocationListener {
 public:
  void locationUpdated(LocationProvider&, const Location& location) override {
    updates.push_back(location);
  }
  std::vector<Location> updates;
};

TEST(S60Location, PeriodicLocationListener) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  auto provider = LocationProvider::getInstance(*platform, Criteria());
  RecordingLocationListener listener;
  provider->setLocationListener(&listener, 2, -1, -1);
  dev->RunFor(sim::SimTime::Seconds(10));
  EXPECT_EQ(listener.updates.size(), 5u);
  provider->setLocationListener(nullptr, -1, -1, -1);
  dev->RunFor(sim::SimTime::Seconds(10));
  EXPECT_EQ(listener.updates.size(), 5u);
}

TEST(S60Location, LocationListenerIntervalValidation) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  auto provider = LocationProvider::getInstance(*platform, Criteria());
  RecordingLocationListener listener;
  EXPECT_THROW(provider->setLocationListener(&listener, 0, -1, -1),
               IllegalArgumentException);
  EXPECT_THROW(provider->setLocationListener(&listener, -2, -1, -1),
               IllegalArgumentException);
}

// ---------------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------------

TEST(S60Messaging, ConnectorParsesSmsUrl) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  auto connection = platform->openMessageConnection("sms://+15550123");
  EXPECT_EQ(connection->address(), "+15550123");
  EXPECT_THROW(platform->openMessageConnection("http://x"),
               ConnectionNotFoundException);
  EXPECT_THROW(platform->openMessageConnection("sms://"),
               IllegalArgumentException);
}

TEST(S60Messaging, BlockingSendSucceeds) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  auto connection = platform->openMessageConnection("sms://+15550123");
  TextMessage message = connection->newTextMessage();
  message.setPayloadText("field report");
  const sim::SimTime before = dev->scheduler().now();
  connection->send(message);
  // Figure 10 calibration: S60 sendSMS ~15.6 ms blocking.
  EXPECT_NEAR((dev->scheduler().now() - before).millis(), 15.6, 6.0);
  EXPECT_EQ(connection->sent_count(), 1);
}

TEST(S60Messaging, RadioFailureThrowsInterruptedIO) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  auto connection = platform->openMessageConnection("sms://+15550123");
  dev->modem().InjectRadioFailures(1);
  TextMessage message = connection->newTextMessage();
  message.setPayloadText("x");
  EXPECT_THROW(connection->send(message), InterruptedIOException);
}

TEST(S60Messaging, UnreachableDestinationThrowsIO) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  auto connection = platform->openMessageConnection("sms://+10000000");
  TextMessage message = connection->newTextMessage();
  message.setPayloadText("x");
  EXPECT_THROW(connection->send(message), IOException);
}

TEST(S60Messaging, ClosedConnectionThrows) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  auto connection = platform->openMessageConnection("sms://+15550123");
  connection->close();
  TextMessage message = connection->newTextMessage();
  message.setPayloadText("x");
  EXPECT_THROW(connection->send(message), IOException);
}

TEST(S60Messaging, MissingPermissionThrowsSecurity) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev, /*grant_all=*/false);
  platform->grantPermission(permissions::kHttp);
  auto connection = platform->openMessageConnection("sms://+15550123");
  TextMessage message = connection->newTextMessage();
  message.setPayloadText("x");
  EXPECT_THROW(connection->send(message), SecurityException);
}

// ---------------------------------------------------------------------------
// HTTP (Generic Connection Framework)
// ---------------------------------------------------------------------------

TEST(S60Http, LazyBlockingExchange) {
  auto dev = MakeDevice();
  dev->network().RegisterHost("server", [](const device::HttpRequest& request) {
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.headers.GetOr("Content-Type", ""), "text/plain");
    return device::HttpResponse::Ok("ack:" + request.body);
  });
  auto platform = MakePlatform(*dev);
  auto connection = platform->openHttpConnection("http://server/report");
  connection->setRequestMethod("POST");
  connection->setRequestProperty("Content-Type", "text/plain");
  connection->setRequestBody("status=ok");
  EXPECT_EQ(connection->getResponseCode(), 200);
  EXPECT_EQ(connection->readBody(), "ack:status=ok");
  EXPECT_EQ(connection->getResponseMessage(), "OK");
  // Request already transmitted: further staging fails.
  EXPECT_THROW(connection->setRequestMethod("GET"), IOException);
}

TEST(S60Http, UnreachableHostThrowsIOException) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  auto connection = platform->openHttpConnection("http://ghost/x");
  EXPECT_THROW(connection->getResponseCode(), IOException);
}

TEST(S60Http, MalformedUrlRejectedAtOpen) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  EXPECT_THROW(platform->openHttpConnection("not a url"),
               ConnectionNotFoundException);
}

TEST(S60Http, UnsupportedMethodRejected) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev);
  auto connection = platform->openHttpConnection("http://server/x");
  EXPECT_THROW(connection->setRequestMethod("DELETE"),
               IllegalArgumentException);
}

// ---------------------------------------------------------------------------
// MIDlet lifecycle
// ---------------------------------------------------------------------------

class ProbeMidlet : public MIDlet {
 public:
  void startApp() override { started = true; }
  void pauseApp() override { paused = true; }
  void destroyApp(bool) override { destroyed = true; }
  bool started = false, paused = false, destroyed = false;
};

TEST(S60Midlet, LifecycleAndSuiteInstall) {
  auto dev = MakeDevice();
  auto platform = MakePlatform(*dev, /*grant_all=*/false);
  ApplicationManager manager(*platform);

  MidletSuiteDescriptor suite;
  suite.suite_name = "WorkForce";
  suite.permissions = {permissions::kLocation, permissions::kSmsSend};
  manager.installSuite(suite);
  EXPECT_TRUE(platform->hasPermission(permissions::kLocation));
  EXPECT_TRUE(platform->hasPermission(permissions::kSmsSend));
  EXPECT_FALSE(platform->hasPermission(permissions::kHttp));

  ProbeMidlet midlet;
  manager.start(midlet);
  EXPECT_TRUE(midlet.started);
  EXPECT_EQ(&midlet.platform(), platform.get());
  manager.pause(midlet);
  EXPECT_TRUE(midlet.paused);
  manager.terminate(midlet);
  EXPECT_TRUE(midlet.destroyed);
  EXPECT_TRUE(midlet.isDestroyed());
}

TEST(S60Midlet, UnattachedMidletThrows) {
  ProbeMidlet midlet;
  EXPECT_THROW(midlet.platform(), S60Exception);
}

}  // namespace
}  // namespace mobivine::s60
