// M-Cluster pure-logic tests: the membership state machine, the
// consistent-hash ring, and the control-frame codec — no processes, no
// sockets, no real time. The clock is a plain integer the tests advance,
// which is what makes the miss-threshold cases deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/control.h"
#include "cluster/membership.h"
#include "cluster/plan.h"
#include "wire/protocol.h"

namespace mobivine {
namespace {

using cluster::AckStatus;
using cluster::ControlMessage;
using cluster::ControlOp;
using cluster::HashRing;
using cluster::Membership;
using cluster::MembershipConfig;
using cluster::Mix64;
using cluster::PartitionPlan;
using cluster::PlanMember;
using cluster::RegisterOutcome;
using cluster::WorkerHealth;

MembershipConfig Config() {
  MembershipConfig config;
  config.heartbeat_interval_us = 1000;
  config.suspect_after_misses = 2;
  config.dead_after_misses = 8;
  return config;
}

// ---------------------------------------------------------------------------
// Membership: health thresholds and the epoch contract
// ---------------------------------------------------------------------------

TEST(ClusterMembership, JoinsBumpEpochByExactlyOne) {
  Membership membership(Config());
  EXPECT_EQ(membership.plan().epoch, 0u);  // no plan before the first join

  EXPECT_EQ(membership.Register(1, 1001, 0), RegisterOutcome::kJoined);
  EXPECT_EQ(membership.plan().epoch, 1u);
  EXPECT_EQ(membership.Register(2, 1002, 0), RegisterOutcome::kJoined);
  EXPECT_EQ(membership.plan().epoch, 2u);
  EXPECT_EQ(membership.Register(3, 1003, 0), RegisterOutcome::kJoined);
  EXPECT_EQ(membership.plan().epoch, 3u);
  ASSERT_EQ(membership.plan().members.size(), 3u);
  // Canonical order: sorted by worker id.
  EXPECT_EQ(membership.plan().members[0].worker_id, 1u);
  EXPECT_EQ(membership.plan().members[2].worker_id, 3u);

  EXPECT_EQ(membership.Register(0, 1000, 0), RegisterOutcome::kRejected);
  EXPECT_EQ(membership.plan().epoch, 3u);  // rejected: no churn
}

TEST(ClusterMembership, MissThresholdsWalkAliveSuspectDead) {
  Membership membership(Config());
  (void)membership.Register(1, 1001, 0);
  (void)membership.Register(2, 1002, 0);
  const std::uint64_t epoch = membership.plan().epoch;

  // Worker 2 heartbeats; worker 1 goes silent.
  (void)membership.Heartbeat(2, 1000);
  EXPECT_FALSE(membership.Tick(1999));  // one miss: still alive
  EXPECT_EQ(membership.health(1), WorkerHealth::kAlive);

  (void)membership.Heartbeat(2, 2000);
  EXPECT_FALSE(membership.Tick(2000));  // two misses: suspect, still planned
  EXPECT_EQ(membership.health(1), WorkerHealth::kSuspect);
  EXPECT_EQ(membership.plan().epoch, epoch);
  EXPECT_EQ(membership.plan().members.size(), 2u);
  EXPECT_EQ(membership.suspect_count(), 1u);

  EXPECT_TRUE(membership.Tick(8000));  // eight misses: dead, dropped
  EXPECT_EQ(membership.health(1), WorkerHealth::kDead);
  EXPECT_EQ(membership.plan().epoch, epoch + 1);
  ASSERT_EQ(membership.plan().members.size(), 1u);
  EXPECT_EQ(membership.plan().members[0].worker_id, 2u);

  // A dead worker's heartbeat is refused — it must re-register (its
  // removal was already broadcast; silent resurrection would skip the
  // epoch bump clients key off).
  EXPECT_FALSE(membership.Heartbeat(1, 8100));
  EXPECT_EQ(membership.Register(1, 1001, 8200), RegisterOutcome::kRejoined);
  EXPECT_EQ(membership.plan().epoch, epoch + 2);
  EXPECT_EQ(membership.plan().members.size(), 2u);
}

TEST(ClusterMembership, FlappingNeverChurnsTheEpoch) {
  Membership membership(Config());
  (void)membership.Register(1, 1001, 0);
  (void)membership.Register(2, 1002, 0);
  const std::uint64_t epoch = membership.plan().epoch;

  // Worker 1 oscillates: silent past the suspect line, then beats, ten
  // times over. The plan (and its epoch) must not move once — suspect
  // stays IN the plan, exactly like a breaker's half-open probe window.
  std::uint64_t now = 0;
  for (int round = 0; round < 10; ++round) {
    (void)membership.Heartbeat(2, now);
    now += 3000;  // three missed intervals: suspect, not dead
    (void)membership.Heartbeat(2, now);
    EXPECT_FALSE(membership.Tick(now));
    EXPECT_EQ(membership.health(1), WorkerHealth::kSuspect);
    EXPECT_TRUE(membership.Heartbeat(1, now));  // probe succeeds
    EXPECT_EQ(membership.health(1), WorkerHealth::kAlive);
  }
  EXPECT_EQ(membership.plan().epoch, epoch);
  EXPECT_EQ(membership.plan().members.size(), 2u);
}

TEST(ClusterMembership, EpochIsMonotoneAcrossEveryTransition) {
  Membership membership(Config());
  std::uint64_t last = membership.plan().epoch;
  const auto check = [&] {
    EXPECT_GE(membership.plan().epoch, last);
    last = membership.plan().epoch;
  };

  (void)membership.Register(1, 1001, 0);
  check();
  (void)membership.Register(2, 1002, 0);
  check();
  (void)membership.Remove(1, WorkerHealth::kLeft);
  check();
  (void)membership.Register(1, 1001, 100);  // rejoin after leave
  check();
  EXPECT_EQ(membership.Register(1, 2001, 200), RegisterOutcome::kReplaced);
  check();  // replace bumps even though the id already lived
  (void)membership.Tick(1'000'000);  // everyone dies of silence
  check();
  EXPECT_EQ(membership.plan().members.size(), 0u);
  EXPECT_GT(membership.plan().epoch, 0u);
}

TEST(ClusterMembership, ReplaceUpdatesEndpointAndBumps) {
  Membership membership(Config());
  (void)membership.Register(7, 1001, 0);
  const std::uint64_t epoch = membership.plan().epoch;
  // Same id, new port: a restart that beat the failure detector. Latest
  // wins; the bump is what forces routers to re-dial.
  EXPECT_EQ(membership.Register(7, 3333, 50), RegisterOutcome::kReplaced);
  EXPECT_EQ(membership.plan().epoch, epoch + 1);
  ASSERT_EQ(membership.plan().members.size(), 1u);
  EXPECT_EQ(membership.plan().members[0].data_port, 3333u);
}

TEST(ClusterMembership, RemoveOfUnplannedWorkerDoesNotChurn) {
  Membership membership(Config());
  (void)membership.Register(1, 1001, 0);
  (void)membership.Tick(1'000'000);  // dies of silence
  const std::uint64_t epoch = membership.plan().epoch;
  // The connection close that follows the death sweep must not bump
  // again — the worker already left the plan.
  EXPECT_FALSE(membership.Remove(1, WorkerHealth::kDead));
  EXPECT_FALSE(membership.Remove(99, WorkerHealth::kDead));  // never seen
  EXPECT_EQ(membership.plan().epoch, epoch);
}

// ---------------------------------------------------------------------------
// Hash ring: determinism, coverage, bounded movement
// ---------------------------------------------------------------------------

PartitionPlan PlanOf(std::vector<std::uint64_t> ids) {
  PartitionPlan plan;
  plan.epoch = 1;
  for (const std::uint64_t id : ids) {
    plan.members.push_back(PlanMember{id, static_cast<std::uint16_t>(id)});
  }
  return plan;
}

constexpr int kSampledKeys = 10'000;

TEST(ClusterRing, OwnershipIsDeterministicAndCoversAllMembers) {
  const HashRing ring(PlanOf({1, 2, 3}));
  const HashRing again(PlanOf({1, 2, 3}));
  std::unordered_map<std::uint64_t, int> served;
  for (int key = 0; key < kSampledKeys; ++key) {
    const auto id = static_cast<std::uint64_t>(key);
    const std::uint64_t owner = ring.OwnerFor(id);
    EXPECT_EQ(owner, again.OwnerFor(id));  // same plan => same answers
    ++served[owner];
  }
  // Every member owns a real share. 64 vnodes won't split 3 ways evenly,
  // but nobody should starve (each gets well over a tenth).
  ASSERT_EQ(served.size(), 3u);
  for (const auto& [id, count] : served) {
    EXPECT_GT(count, kSampledKeys / 10) << "worker " << id << " starved";
  }
}

TEST(ClusterRing, SingleLeaveMovesOnlyTheLeaversKeys) {
  const HashRing before(PlanOf({1, 2, 3}));
  const HashRing after(PlanOf({1, 2}));  // worker 3 left
  int moved = 0;
  for (int key = 0; key < kSampledKeys; ++key) {
    const auto id = static_cast<std::uint64_t>(key);
    const std::uint64_t was = before.OwnerFor(id);
    const std::uint64_t now = after.OwnerFor(id);
    if (was != now) {
      ++moved;
      // Consistency: only keys the leaver owned may move; everyone
      // else's assignment is untouched.
      EXPECT_EQ(was, 3u) << "key " << key << " moved off a surviving worker";
    }
  }
  // The leaver owned about a third; all of it (and nothing else) moved.
  EXPECT_GT(moved, kSampledKeys / 5);
  EXPECT_LT(moved, kSampledKeys / 2);
}

TEST(ClusterRing, SingleJoinTakesABoundedFraction) {
  const HashRing before(PlanOf({1, 2, 3}));
  const HashRing after(PlanOf({1, 2, 3, 4}));
  int moved = 0;
  for (int key = 0; key < kSampledKeys; ++key) {
    const auto id = static_cast<std::uint64_t>(key);
    const std::uint64_t was = before.OwnerFor(id);
    const std::uint64_t now = after.OwnerFor(id);
    if (was != now) {
      ++moved;
      EXPECT_EQ(now, 4u) << "key " << key << " moved to a pre-existing worker";
    }
  }
  // The joiner takes roughly 1/4 of the keyspace — bounded well below a
  // reshuffle (vnode placement wobbles, so allow generous slack).
  EXPECT_GT(moved, kSampledKeys / 10);
  EXPECT_LT(moved, (kSampledKeys * 2) / 5);
}

TEST(ClusterRing, MixerMatchesSplitMix64Reference) {
  // Mix64 must stay the repo's splitmix64 finalizer: workers and clients
  // hash independently and MUST agree forever. Pin reference values.
  EXPECT_EQ(Mix64(0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(Mix64(1), 0x910a2dec89025cc1ull);
}

// ---------------------------------------------------------------------------
// Control codec
// ---------------------------------------------------------------------------

TEST(ClusterControlCodec, RoundTripsEveryField) {
  ControlMessage message;
  message.correlation_id = 99;
  message.op = ControlOp::kRegisterAck;
  message.worker_id = 7;
  message.data_port = 40'001;
  message.epoch = 12;
  message.status = AckStatus::kRejected;
  message.plan.epoch = 12;
  message.plan.members = {PlanMember{1, 1001}, PlanMember{2, 1002}};
  message.message = "diagnostic text";

  std::vector<std::uint8_t> bytes;
  EncodeControl(message, bytes);

  wire::FrameView frame;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed,
                              nullptr),
            wire::DecodeStatus::kOk);
  EXPECT_EQ(frame.type, wire::FrameType::kControl);
  EXPECT_EQ(consumed, bytes.size());

  ControlMessage decoded;
  std::string error;
  ASSERT_TRUE(DecodeControl(frame.payload, frame.payload_size, &decoded,
                            &error))
      << error;
  EXPECT_EQ(decoded.correlation_id, 99u);
  EXPECT_EQ(decoded.op, ControlOp::kRegisterAck);
  EXPECT_EQ(decoded.worker_id, 7u);
  EXPECT_EQ(decoded.data_port, 40'001u);
  EXPECT_EQ(decoded.epoch, 12u);
  EXPECT_EQ(decoded.status, AckStatus::kRejected);
  EXPECT_EQ(decoded.plan, message.plan);
  EXPECT_EQ(decoded.message, "diagnostic text");

  // The leading varint id is readable by the generic peek — the hook
  // that lets a control-blind server correlate its kUnsupportedFrame.
  std::uint64_t id = 0;
  ASSERT_TRUE(wire::PeekPayloadId(frame.payload, frame.payload_size, &id));
  EXPECT_EQ(id, 99u);
}

TEST(ClusterControlCodec, RejectsInvalidOpStatusPortAndTruncation) {
  ControlMessage message;
  message.op = ControlOp::kHeartbeat;
  message.worker_id = 1;
  std::vector<std::uint8_t> bytes;
  EncodeControl(message, bytes);
  wire::FrameView frame;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed,
                              nullptr),
            wire::DecodeStatus::kOk);

  ControlMessage decoded;
  // Every strict payload prefix must be rejected, never read past.
  for (std::size_t cut = 0; cut < frame.payload_size; ++cut) {
    EXPECT_FALSE(DecodeControl(frame.payload, cut, &decoded, nullptr));
  }

  // An op byte outside the enum is a codec error (the transport already
  // proved integrity — this is a contract violation, not corruption).
  std::vector<std::uint8_t> payload(frame.payload,
                                    frame.payload + frame.payload_size);
  // Layout: varint correlation (1 byte, 0) then the op byte.
  ASSERT_GT(payload.size(), 2u);
  payload[1] = 0xee;
  EXPECT_FALSE(DecodeControl(payload.data(), payload.size(), &decoded,
                             nullptr));
}

}  // namespace
}  // namespace mobivine
