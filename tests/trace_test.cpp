// M-Scope: the observability plane's contract.
//
// What must hold:
//  * tracing is off by default and a disabled hook records nothing;
//  * spans export as Chrome trace_event complete events with their tags,
//    instants as "i" events, cross-thread intervals via CompleteEvent;
//  * per-thread buffers survive their thread's join, fill by dropping
//    new events (published slots are immutable), and Reset() discards;
//  * a registered virtual clock attaches virtual-time attribution;
//  * MetricsRegistry snapshots registered sources under their prefix,
//    renders flat JSON, and RAII registrations unregister on destruction;
//  * a traced gateway call yields nested spans from both layers (gateway
//    attempt enclosing core invocation work) on the worker's tid.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace mobivine {
namespace {

namespace trace = support::trace;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::SetEnabled(false);
    trace::SetPerThreadCapacity(64 * 1024);
    trace::Reset();
  }
  void TearDown() override {
    trace::SetEnabled(false);
    trace::SetThreadVirtualClock(nullptr, nullptr);
    trace::SetPerThreadCapacity(64 * 1024);
    trace::Reset();
  }

  static std::string Export(trace::ExportStats* stats = nullptr) {
    std::ostringstream out;
    const trace::ExportStats s = trace::ExportChromeTrace(out);
    if (stats != nullptr) *stats = s;
    return out.str();
  }
};

TEST_F(TraceTest, DisabledByDefaultRecordsNothing) {
  EXPECT_FALSE(trace::IsEnabled());
  {
    trace::Span span("should-not-appear");
    span.Tag("k", 1);
  }
  trace::Instant("also-not", "k", 2);
  trace::CompleteEvent("nor-this", std::chrono::steady_clock::now(),
                       std::chrono::steady_clock::now());
  trace::ExportStats stats;
  const std::string json = Export(&stats);
  EXPECT_EQ(stats.events, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(json.find("should-not-appear"), std::string::npos);
}

TEST_F(TraceTest, SpansExportAsCompleteEventsWithTags) {
  trace::SetEnabled(true);
  {
    trace::Span outer("outer");
    outer.Tag("n", 7);
    outer.Tag("shard", 3);
    { trace::Span inner("inner"); }
  }
  trace::ExportStats stats;
  const std::string json = Export(&stats);
  EXPECT_EQ(stats.events, 2u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":7"), std::string::npos);
  EXPECT_NE(json.find("\"shard\":3"), std::string::npos);
  // Spans publish at End(): inner (ending first) precedes outer in the
  // buffer, and both carry a dur field.
  EXPECT_LT(json.find("\"name\":\"inner\""), json.find("\"name\":\"outer\""));
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, InstantEventsExportWithMarker) {
  trace::SetEnabled(true);
  trace::Instant("mark", "value", 41);
  trace::ExportStats stats;
  const std::string json = Export(&stats);
  EXPECT_EQ(stats.events, 1u);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mark\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":41"), std::string::npos);
}

TEST_F(TraceTest, CompleteEventUsesCallerSuppliedBounds) {
  trace::SetEnabled(true);
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::milliseconds(2);
  trace::CompleteEvent("queue_wait", start, end, "shard", 1);
  const std::string json = Export();
  // 2 ms -> "dur":2000.0 (µs with one decimal of 100 ns).
  EXPECT_NE(json.find("\"name\":\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000.0"), std::string::npos);
  EXPECT_NE(json.find("\"shard\":1"), std::string::npos);
}

TEST_F(TraceTest, BuffersSurviveThreadJoinAndCarryDistinctTids) {
  trace::SetEnabled(true);
  std::thread worker([] {
    trace::SetCurrentThreadName("worker-1");
    trace::Span span("on-worker");
  });
  worker.join();
  { trace::Span span("on-main"); }
  trace::ExportStats stats;
  const std::string json = Export(&stats);
  EXPECT_GE(stats.threads, 2u);
  EXPECT_EQ(stats.events, 2u);
  // The joined worker's span still exports, with its thread_name metadata.
  EXPECT_NE(json.find("\"name\":\"on-worker\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"on-main\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker-1\""), std::string::npos);
}

TEST_F(TraceTest, FullBufferDropsNewEventsAndCountsThem) {
  trace::SetPerThreadCapacity(16);
  trace::Reset();  // the shrunken capacity applies to fresh buffers
  trace::SetEnabled(true);
  for (int i = 0; i < 40; ++i) trace::Instant("burst");
  trace::ExportStats stats;
  const std::string json = Export(&stats);
  EXPECT_EQ(stats.events, 16u);   // published slots kept, never wrapped
  EXPECT_EQ(stats.dropped, 24u);  // the overflow is accounted, not silent
  EXPECT_NE(json.find("\"name\":\"burst\""), std::string::npos);
}

TEST_F(TraceTest, ResetDiscardsRecordedEvents) {
  trace::SetEnabled(true);
  { trace::Span span("before-reset"); }
  trace::Reset();
  trace::ExportStats stats;
  const std::string json = Export(&stats);
  EXPECT_EQ(stats.events, 0u);
  EXPECT_EQ(json.find("before-reset"), std::string::npos);
}

std::uint64_t FakeVirtualClock(void* ctx) {
  return *static_cast<std::uint64_t*>(ctx);
}

TEST_F(TraceTest, RegisteredVirtualClockAttachesVirtualTimestamps) {
  trace::SetEnabled(true);
  std::uint64_t virtual_now = 100;
  trace::SetThreadVirtualClock(&FakeVirtualClock, &virtual_now);
  {
    trace::Span span("virt");
    virtual_now = 350;  // the span "costs" 250 virtual microseconds
  }
  trace::SetThreadVirtualClock(nullptr, nullptr);
  { trace::Span span("no-virt"); }
  const std::string json = Export();
  EXPECT_NE(json.find("\"virt_start_us\":100"), std::string::npos);
  EXPECT_NE(json.find("\"virt_dur_us\":250"), std::string::npos);
  // After clearing the clock, spans carry no virtual pair.
  const std::size_t no_virt = json.find("\"name\":\"no-virt\"");
  ASSERT_NE(no_virt, std::string::npos);
  EXPECT_EQ(json.find("virt_start_us", no_virt), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, SnapshotCollectsPrefixedSortedEntries) {
  support::MetricsRegistry registry;
  auto reg_b = registry.Register("b.", [](support::MetricsSink& sink) {
    sink.Counter("count", 5);
  });
  auto reg_a = registry.Register("a.", [](support::MetricsSink& sink) {
    sink.Gauge("ratio", 0.5);
    sink.Counter("hits", 3);
  });
  EXPECT_EQ(registry.source_count(), 2u);

  const support::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.entries.size(), 3u);
  // Sorted by full name, prefixes applied.
  EXPECT_EQ(snapshot.entries[0].name, "a.hits");
  EXPECT_EQ(snapshot.entries[1].name, "a.ratio");
  EXPECT_EQ(snapshot.entries[2].name, "b.count");

  const auto* hits = snapshot.Find("a.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_TRUE(hits->is_counter);
  EXPECT_EQ(hits->count, 3u);
  const auto* ratio = snapshot.Find("a.ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_FALSE(ratio->is_counter);
  EXPECT_DOUBLE_EQ(ratio->gauge, 0.5);
  EXPECT_EQ(snapshot.Find("missing"), nullptr);
}

TEST(MetricsRegistry, RegistrationUnregistersOnDestruction) {
  support::MetricsRegistry registry;
  {
    auto reg = registry.Register("x.", [](support::MetricsSink& sink) {
      sink.Counter("alive", 1);
    });
    EXPECT_EQ(registry.source_count(), 1u);
    EXPECT_NE(registry.Snapshot().Find("x.alive"), nullptr);
  }
  EXPECT_EQ(registry.source_count(), 0u);
  EXPECT_TRUE(registry.Snapshot().entries.empty());
}

TEST(MetricsRegistry, WriteJsonRendersFlatDump) {
  support::MetricsRegistry registry;
  auto reg = registry.Register("m.", [](support::MetricsSink& sink) {
    sink.Counter("requests", 42);
    sink.Gauge("p99_us", 1234.5);
    sink.Gauge("broken", std::nan(""));
  });
  std::ostringstream out;
  registry.Snapshot().WriteJson(out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("{\"metrics\":{"), 0u);
  EXPECT_NE(json.find("\"m.requests\":42"), std::string::npos);
  EXPECT_NE(json.find("\"m.p99_us\":1234.5"), std::string::npos);
  // Non-finite gauges must not produce invalid JSON.
  EXPECT_NE(json.find("\"m.broken\":null"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

// ---------------------------------------------------------------------------
// Both layers through the gateway
// ---------------------------------------------------------------------------

TEST_F(TraceTest, GatewayCallEmitsSpansFromBothLayers) {
  trace::SetEnabled(true);
  const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  gateway::GatewayConfig config;
  config.shards = 1;
  config.store = &store;
  gateway::Gateway gw(config);

  support::MetricsRegistry metrics;
  const auto registration = gw.RegisterMetrics(metrics);

  gateway::Request request;
  request.client_id = 1;
  request.platform = gateway::Platform::kS60;
  request.op = gateway::Op::kGetLocation;
  request.properties.emplace_back("horizontalAccuracy", 50LL);
  const gateway::Response response = gw.Call(std::move(request));
  ASSERT_TRUE(response.ok) << response.message;

  const support::MetricsSnapshot snapshot = metrics.Snapshot();
  const auto* ok = snapshot.Find("gateway.ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->count, 1u);
  const auto* dispatch = snapshot.Find("gateway.op.dispatch");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_GE(dispatch->count, 1u);  // the OverheadMeter plane flows through

  gw.Stop();
  const std::string json = Export();
  // Serving-plane spans...
  EXPECT_NE(json.find("\"name\":\"gateway.submit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gateway.queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gateway.serve\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gateway.attempt\""), std::string::npos);
  // ...and core invocation spans underneath, with op attribution.
  EXPECT_NE(json.find("\"name\":\"core.setProperty\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"op.dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"virt_cost_us\""), std::string::npos);
  // The worker thread registered both its name and its virtual clock.
  EXPECT_NE(json.find("\"shard-0\""), std::string::npos);
  EXPECT_NE(json.find("\"virt_start_us\""), std::string::npos);
}

}  // namespace
}  // namespace mobivine
