#include <gtest/gtest.h>

#include "xml/xml_node.h"
#include "xml/xml_parser.h"
#include "xml/xml_schema.h"
#include "xml/xml_writer.h"

namespace mobivine::xml {
namespace {

TEST(XmlParser, SimpleElement) {
  Document doc = Parse("<root/>");
  ASSERT_TRUE(doc.root);
  EXPECT_EQ(doc.root->name(), "root");
  EXPECT_TRUE(doc.root->children().empty());
}

TEST(XmlParser, DeclarationParsed) {
  Document doc = Parse("<?xml version=\"1.1\" encoding=\"ascii\"?><r/>");
  EXPECT_EQ(doc.version, "1.1");
  EXPECT_EQ(doc.encoding, "ascii");
}

TEST(XmlParser, AttributesBothQuoteStyles) {
  Document doc = Parse(R"(<m name="addProximityAlert" lang='java'/>)");
  EXPECT_EQ(doc.root->GetAttributeOr("name", ""), "addProximityAlert");
  EXPECT_EQ(doc.root->GetAttributeOr("lang", ""), "java");
  EXPECT_FALSE(doc.root->HasAttribute("missing"));
}

TEST(XmlParser, NestedElementsAndText) {
  Document doc = Parse("<a><b>hello</b><b>world</b></a>");
  auto children = doc.root->Children("b");
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0]->InnerText(), "hello");
  EXPECT_EQ(children[1]->InnerText(), "world");
}

TEST(XmlParser, EntitiesDecoded) {
  Document doc = Parse("<a x=\"&lt;&amp;&gt;\">&quot;q&apos; &#65;&#x42;</a>");
  EXPECT_EQ(doc.root->GetAttributeOr("x", ""), "<&>");
  EXPECT_EQ(doc.root->InnerText(), "\"q' AB");
}

TEST(XmlParser, CDataPreserved) {
  Document doc = Parse("<a><![CDATA[if (x < 2 && y) {}]]></a>");
  EXPECT_EQ(doc.root->InnerText(), "if (x < 2 && y) {}");
}

TEST(XmlParser, CommentsIgnored) {
  Document doc = Parse("<!-- top --><a><!-- in -->text</a><!-- after -->");
  EXPECT_EQ(doc.root->InnerText(), "text");
}

TEST(XmlParser, MismatchedTagThrows) {
  EXPECT_THROW(Parse("<a><b></a></b>"), ParseError);
}

TEST(XmlParser, UnterminatedThrows) {
  EXPECT_THROW(Parse("<a>"), ParseError);
  EXPECT_THROW(Parse("<a attr=\"x>"), ParseError);
  EXPECT_THROW(Parse("<a><!-- never closed"), ParseError);
}

TEST(XmlParser, DuplicateAttributeThrows) {
  EXPECT_THROW(Parse("<a x=\"1\" x=\"2\"/>"), ParseError);
}

TEST(XmlParser, ContentAfterRootThrows) {
  EXPECT_THROW(Parse("<a/><b/>"), ParseError);
}

TEST(XmlParser, UnknownEntityThrows) {
  EXPECT_THROW(Parse("<a>&nbsp;</a>"), ParseError);
}

TEST(XmlParser, ErrorCarriesLocation) {
  try {
    (void)Parse("<a>\n  <b></c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), 2);
    EXPECT_GT(error.column(), 1);
  }
}

TEST(XmlParser, DoctypeRejected) {
  EXPECT_THROW(Parse("<a><!DOCTYPE html></a>"), ParseError);
}

// ---------------------------------------------------------------------------
// Writer round trips
// ---------------------------------------------------------------------------

TEST(XmlWriter, EscapesSpecials) {
  auto node = Node::Element("a");
  node->SetAttribute("x", "<\"&'>");
  node->AppendChild(Node::Text("a<b&c"));
  const std::string written = WriteNode(*node);
  Document reparsed = Parse(written);
  EXPECT_EQ(reparsed.root->GetAttributeOr("x", ""), "<\"&'>");
  EXPECT_EQ(reparsed.root->InnerText(), "a<b&c");
}

TEST(XmlWriter, RoundTripStructurallyEqual) {
  const char* source = R"(<proxy name="Location" category="Location">
    <method name="getLocation"><returns dimension="location"/></method>
    <method name="addProximityAlert">
      <parameter name="latitude" dimension="degrees">
        <description>lat &amp; more</description>
      </parameter>
      <callback name="listener"/>
    </method>
  </proxy>)";
  Document original = Parse(source);
  const std::string rewritten = WriteNode(*original.root);
  Document reparsed = Parse(rewritten);
  EXPECT_TRUE(original.root->StructurallyEquals(*reparsed.root))
      << rewritten;
}

TEST(XmlWriter, CloneEqualsOriginal) {
  Document doc = Parse("<a x=\"1\"><b>t</b><!--c--></a>");
  NodePtr clone = doc.root->Clone();
  EXPECT_TRUE(doc.root->StructurallyEquals(*clone));
}

TEST(XmlNode, ChildTextHelpers) {
  Document doc = Parse("<a><name> trimmed </name></a>");
  EXPECT_EQ(doc.root->ChildTextOr("name", ""), "trimmed");
  EXPECT_EQ(doc.root->ChildTextOr("missing", "fallback"), "fallback");
  EXPECT_FALSE(doc.root->ChildText("missing").has_value());
}

// ---------------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------------

Schema TinySchema() {
  Schema schema("tiny", "root");
  schema.Rule("root", {.required_attributes = {"name"},
                       .optional_attributes = {"opt"},
                       .children = {{"item", {1, 2}}}});
  schema.Rule("item", {.required_attributes = {},
                       .optional_attributes = {"id"},
                       .text = TextPolicy::kRequired});
  return schema;
}

TEST(XmlSchema, ValidDocumentPasses) {
  Document doc = Parse("<root name=\"x\"><item>v</item></root>");
  EXPECT_TRUE(TinySchema().Validate(*doc.root).empty());
}

TEST(XmlSchema, WrongRootReported) {
  Document doc = Parse("<other/>");
  auto violations = TinySchema().Validate(*doc.root);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].message.find("expected root"), std::string::npos);
}

TEST(XmlSchema, MissingRequiredAttribute) {
  Document doc = Parse("<root><item>v</item></root>");
  auto violations = TinySchema().Validate(*doc.root);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].message.find("name"), std::string::npos);
}

TEST(XmlSchema, UnexpectedAttributeAndChild) {
  Document doc =
      Parse("<root name=\"x\" bogus=\"1\"><item>v</item><junk/></root>");
  auto violations = TinySchema().Validate(*doc.root);
  EXPECT_EQ(violations.size(), 2u) << FormatViolations(violations);
}

TEST(XmlSchema, CardinalityBounds) {
  Document none = Parse("<root name=\"x\"/>");
  EXPECT_FALSE(TinySchema().Validate(*none.root).empty());
  Document too_many = Parse(
      "<root name=\"x\"><item>a</item><item>b</item><item>c</item></root>");
  EXPECT_FALSE(TinySchema().Validate(*too_many.root).empty());
}

TEST(XmlSchema, TextPolicyEnforced) {
  Document no_text = Parse("<root name=\"x\"><item/></root>");
  auto violations = TinySchema().Validate(*no_text.root);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].message.find("text content required"),
            std::string::npos);

  Schema forbid("f", "r");
  forbid.Rule("r", {.text = TextPolicy::kForbidden});
  Document with_text = Parse("<r>bad</r>");
  EXPECT_FALSE(forbid.Validate(*with_text.root).empty());
}

TEST(XmlSchema, PathsPointAtViolation) {
  Document doc = Parse("<root name=\"x\"><item/><item>ok</item></root>");
  auto violations = TinySchema().Validate(*doc.root);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].path, "/root/item[1]");
}

}  // namespace
}  // namespace mobivine::xml
