// M-Script: server-side composite invocations over a kScript frame.
//
// What must hold:
//  * the kScript codec round-trips bit-exactly and rejects empty
//    sources, oversized arg counts and trailing bytes with typed
//    kBadBody (never a crash) — plus a decoder-level mutation sweep;
//  * a composite script (getLocation -> httpPost -> sendSms-on-failure)
//    executes inside the owning shard against the real proxies and
//    returns one aggregated result;
//  * the sandbox budgets all surface as TYPED statuses, never process
//    faults: step-limit exhaustion mid-script (kScriptError, not
//    catchable in-script), virtual-time exhaustion driven by a `:wall`
//    fault rule (kDeadlineExceeded), oversized results (kScriptError),
//    hostile programs (infinite loop, deep recursion, huge string
//    building) — and the budget kills are counted in
//    gateway.script.budget_kills;
//  * script property writes never leak into later traffic on the shard;
//  * over real sockets a kScript frame answers with an ordinary
//    kResponse carrying kOk / kScriptError, and the frame-mutation
//    fuzzer covers kScript at the socket level without killing the
//    server (wire_test.cpp covers the shared fuzz harness).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "gateway/script.h"
#include "minijs/interpreter.h"
#include "support/fault.h"
#include "wire/client.h"
#include "wire/protocol.h"
#include "wire/server.h"

namespace mobivine {
namespace {

using gateway::Gateway;
using gateway::GatewayConfig;
using gateway::ScriptRequest;
using gateway::ScriptResponse;

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

GatewayConfig BaseConfig(int shards = 1) {
  GatewayConfig config;
  config.shards = shards;
  config.store = &Store();
  return config;
}

ScriptRequest MakeScript(std::string source, std::uint64_t client_id = 7) {
  ScriptRequest request;
  request.client_id = client_id;
  request.source = std::move(source);
  return request;
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(ScriptCodec, RoundTripsAllFields) {
  wire::WireScriptRequest script;
  script.request_id = 42;
  script.client_id = 9001;
  script.timeout_micros = 1'000'000;
  script.step_budget = 5'000;
  script.virtual_us_budget = 250'000;
  script.max_result_bytes = 4096;
  script.source = "mobile.invoke('android', 'httpGet', args.url);";
  script.args.emplace_back("url", "http://gw.example/ping");
  script.args.emplace_back("note", std::string(300, 'x'));

  std::vector<std::uint8_t> frame;
  EncodeScript(script, frame);

  wire::FrameView view;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(wire::DecodeFrame(frame.data(), frame.size(), &view, &consumed,
                              &error),
            wire::DecodeStatus::kOk)
      << error;
  EXPECT_EQ(view.type, wire::FrameType::kScript);
  EXPECT_EQ(consumed, frame.size());

  wire::WireScriptRequest decoded;
  ASSERT_EQ(wire::DecodeScript(view.payload, view.payload_size, &decoded,
                               &error),
            wire::BodyStatus::kOk)
      << error;
  EXPECT_EQ(decoded.request_id, script.request_id);
  EXPECT_EQ(decoded.client_id, script.client_id);
  EXPECT_EQ(decoded.timeout_micros, script.timeout_micros);
  EXPECT_EQ(decoded.step_budget, script.step_budget);
  EXPECT_EQ(decoded.virtual_us_budget, script.virtual_us_budget);
  EXPECT_EQ(decoded.max_result_bytes, script.max_result_bytes);
  EXPECT_EQ(decoded.source, script.source);
  EXPECT_EQ(decoded.args, script.args);
}

TEST(ScriptCodec, IdStampingOverloadMatchesClientContract) {
  wire::WireScriptRequest script;
  script.request_id = 999;  // must be ignored by the stamping overload
  script.client_id = 3;
  script.source = "1 + 1";
  std::vector<std::uint8_t> frame;
  EncodeScript(script, /*request_id=*/77, frame);

  wire::FrameView view;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(wire::DecodeFrame(frame.data(), frame.size(), &view, &consumed,
                              &error),
            wire::DecodeStatus::kOk);
  wire::WireScriptRequest decoded;
  ASSERT_EQ(wire::DecodeScript(view.payload, view.payload_size, &decoded,
                               &error),
            wire::BodyStatus::kOk);
  EXPECT_EQ(decoded.request_id, 77u);
}

TEST(ScriptCodec, RejectsEmptySource) {
  wire::WireScriptRequest script;
  script.request_id = 1;
  script.source = "";
  std::vector<std::uint8_t> frame;
  EncodeScript(script, frame);
  wire::FrameView view;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(wire::DecodeFrame(frame.data(), frame.size(), &view, &consumed,
                              &error),
            wire::DecodeStatus::kOk);
  wire::WireScriptRequest decoded;
  EXPECT_EQ(wire::DecodeScript(view.payload, view.payload_size, &decoded,
                               &error),
            wire::BodyStatus::kBadBody);
  EXPECT_EQ(decoded.request_id, 1u);  // recovered for the typed response
}

TEST(ScriptCodec, DecoderSurvivesMutationSweep) {
  // Every single-byte mutation of a valid payload must produce a typed
  // decode result — kOk, kBadBody or kBadId — never a crash or an
  // overread (the suite runs under ASan in CI).
  wire::WireScriptRequest script;
  script.request_id = 11;
  script.client_id = 22;
  script.step_budget = 100;
  script.source = "mobile.invoke('android', 'getLocation')";
  script.args.emplace_back("k", "v");
  std::vector<std::uint8_t> frame;
  EncodeScript(script, frame);
  wire::FrameView view;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(wire::DecodeFrame(frame.data(), frame.size(), &view, &consumed,
                              &error),
            wire::DecodeStatus::kOk);
  std::vector<std::uint8_t> payload(view.payload,
                                    view.payload + view.payload_size);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    for (const std::uint8_t delta : {0x01, 0x80, 0xff}) {
      std::vector<std::uint8_t> mutated = payload;
      mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ delta);
      wire::WireScriptRequest out;
      std::string why;
      (void)wire::DecodeScript(mutated.data(), mutated.size(), &out, &why);
    }
    // Truncations at every length, too.
    wire::WireScriptRequest out;
    std::string why;
    (void)wire::DecodeScript(payload.data(), i, &out, &why);
  }
}

// ---------------------------------------------------------------------------
// Gateway execution plane
// ---------------------------------------------------------------------------

TEST(ScriptGateway, CompositeAggregatesDependentInvocations) {
  Gateway gateway(BaseConfig());
  // The canonical composite: read a sensor, post the reading, fall back
  // to SMS if the post fails — three dependent round trips as requests,
  // one as a script.
  ScriptResponse response = gateway.CallScript(MakeScript(R"JS(
    var loc = mobile.invoke('android', 'getLocation');
    var posted;
    try {
      posted = mobile.invoke('android', 'httpPost',
                             'http://gw.example/track', loc, 'text/plain');
    } catch (e) {
      posted = 'sms:' + mobile.invoke('android', 'sendSms', '+15550123', loc);
    }
    'loc=' + loc + ';post=' + posted;
  )JS"));
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_FALSE(response.script_error);
  // The in-sim HTTP host echoes POST bodies, so the result embeds the
  // "lat,lon" reading twice (GPS fix noise keeps the fraction fuzzy).
  EXPECT_NE(response.result.find("loc=28."), std::string::npos)
      << response.result;
  EXPECT_NE(response.result.find("post=28."), std::string::npos)
      << response.result;
  EXPECT_EQ(response.invocations, 2u);
  EXPECT_GT(response.steps, 0u);

  const auto totals = gateway.Stats().totals;
  EXPECT_EQ(totals.scripts, 1u);
  EXPECT_EQ(totals.accepted, 1u);
  EXPECT_EQ(totals.ok, 1u);
  EXPECT_EQ(totals.script_errors, 0u);
  EXPECT_EQ(totals.script_budget_kills, 0u);
  EXPECT_EQ(totals.script_invocations, 2u);
  EXPECT_GT(totals.script_steps, 0u);
}

TEST(ScriptGateway, ArgsAreExposedAndHostErrorsAreCatchable) {
  Gateway gateway(BaseConfig());
  ScriptRequest request = MakeScript(R"JS(
    var out = '';
    try {
      mobile.invoke(args.platform, 'httpGet', args.url);
    } catch (e) {
      out = e.name + ':' + e.message;
    }
    out;
  )JS");
  request.args.emplace_back("platform", "android");
  request.args.emplace_back("url", "http://nowhere.invalid/x");
  ScriptResponse response = gateway.CallScript(std::move(request));
  ASSERT_TRUE(response.ok) << response.message;
  // The unknown host surfaces as a catchable ProxyError object.
  EXPECT_NE(response.result.find("ProxyError:"), std::string::npos)
      << response.result;
}

TEST(ScriptGateway, UncaughtThrowMapsToScriptError) {
  Gateway gateway(BaseConfig());
  ScriptResponse response =
      gateway.CallScript(MakeScript("throw 'boom from script';"));
  EXPECT_FALSE(response.ok);
  EXPECT_TRUE(response.script_error);
  EXPECT_FALSE(response.budget_kill);
  EXPECT_NE(response.message.find("boom from script"), std::string::npos);
  const auto totals = gateway.Stats().totals;
  EXPECT_EQ(totals.script_errors, 1u);
  EXPECT_EQ(totals.failed, 1u);
}

TEST(ScriptGateway, ParseErrorMapsToScriptError) {
  Gateway gateway(BaseConfig());
  ScriptResponse response = gateway.CallScript(MakeScript("var = ;;;("));
  EXPECT_FALSE(response.ok);
  EXPECT_TRUE(response.script_error);
  EXPECT_FALSE(response.message.empty());
}

TEST(ScriptGateway, UnknownPlatformOrOpIsATypedScriptThrow) {
  Gateway gateway(BaseConfig());
  ScriptResponse response = gateway.CallScript(
      MakeScript("mobile.invoke('palmos', 'getLocation');"));
  EXPECT_FALSE(response.ok);
  EXPECT_TRUE(response.script_error);
  EXPECT_NE(response.message.find("unknown platform"), std::string::npos)
      << response.message;
}

TEST(ScriptGateway, PropertyWritesAreScopedToTheScript) {
  GatewayConfig config = BaseConfig();
  Gateway gateway(config);
  // The script sets a real descriptor-validated property, reads it back,
  // then the shard must restore the pre-script value for later traffic.
  ScriptResponse first = gateway.CallScript(MakeScript(R"JS(
    mobile.setProperty('s60', 'getLocation', 'powerConsumption', 'low');
    mobile.getProperty('s60', 'getLocation', 'powerConsumption');
  )JS"));
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_EQ(first.result, "low");

  ScriptResponse second = gateway.CallScript(MakeScript(
      "mobile.getProperty('s60', 'getLocation', 'powerConsumption');"));
  ASSERT_TRUE(second.ok) << second.message;
  EXPECT_NE(second.result, "low") << "property leaked across scripts";
}

// ---------------------------------------------------------------------------
// Sandbox budgets: every kill is a typed status, never a process fault
// ---------------------------------------------------------------------------

TEST(ScriptSandbox, StepBudgetKillsInfiniteLoop) {
  Gateway gateway(BaseConfig());
  ScriptRequest request = MakeScript("while (true) { var x = 1; }");
  request.step_budget = 10'000;
  ScriptResponse response = gateway.CallScript(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_TRUE(response.script_error);
  EXPECT_TRUE(response.budget_kill);
  EXPECT_NE(response.message.find("step limit exceeded"), std::string::npos)
      << response.message;
  EXPECT_GT(response.steps, 10'000u);
  const auto totals = gateway.Stats().totals;
  EXPECT_EQ(totals.script_budget_kills, 1u);
}

TEST(ScriptSandbox, StepBudgetKillIsNotCatchableInScript) {
  Gateway gateway(BaseConfig());
  // A hostile script wraps the burn loop in try/catch; the kill must
  // still surface (only ThrowSignal is catchable in-script, and the
  // step-limit ScriptError deliberately is not one).
  ScriptRequest request = MakeScript(R"JS(
    var out = 'survived';
    try { while (true) { out = out + ''; } } catch (e) { out = 'caught'; }
    out;
  )JS");
  request.step_budget = 5'000;
  ScriptResponse response = gateway.CallScript(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_TRUE(response.script_error);
  EXPECT_TRUE(response.budget_kill);
}

TEST(ScriptSandbox, WallFaultBurnsVirtualTimeBudget) {
  GatewayConfig config = BaseConfig();
  // A `:wall` latency rule stalls the worker for real AND advances the
  // shard's virtual clock — exactly how a slow backend burns a script's
  // time budget. 50ms of injected latency against a 20ms budget.
  auto plan = support::FaultPlan::Parse("android:httpGet:latency=50000:wall");
  ASSERT_TRUE(plan.has_value());
  config.failover.fault_plan = *plan;
  Gateway gateway(config);

  ScriptRequest request = MakeScript(R"JS(
    mobile.invoke('android', 'httpGet', 'http://gw.example/ping');
    var i = 0;
    while (i < 10000) { i = i + 1; }
    'done';
  )JS");
  request.virtual_us_budget = 20'000;
  ScriptResponse response = gateway.CallScript(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.script_error);  // time budget is a deadline outcome
  EXPECT_TRUE(response.budget_kill);
  EXPECT_EQ(response.error, core::ErrorCode::kDeadlineExceeded);
  EXPECT_NE(response.message.find("virtual-time budget exceeded"),
            std::string::npos)
      << response.message;
  const auto totals = gateway.Stats().totals;
  EXPECT_EQ(totals.timed_out, 1u);
  EXPECT_EQ(totals.script_budget_kills, 1u);
}

TEST(ScriptSandbox, OversizedResultIsRejected) {
  Gateway gateway(BaseConfig());
  ScriptRequest request = MakeScript(R"JS(
    var s = 'xxxxxxxxxxxxxxxx';
    var i = 0;
    while (i < 8) { s = s + s; i = i + 1; }
    s;
  )JS");  // 16 bytes << 8 = 4 KiB
  request.max_result_bytes = 1024;
  ScriptResponse response = gateway.CallScript(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_TRUE(response.script_error);
  EXPECT_TRUE(response.budget_kill);
  EXPECT_NE(response.message.find("result over cap"), std::string::npos)
      << response.message;
}

TEST(ScriptSandbox, HostileCorpusAllDieTyped) {
  GatewayConfig config = BaseConfig();
  config.script.max_steps = 50'000;
  config.script.max_result_bytes = 64u << 10;
  Gateway gateway(config);
  const char* corpus[] = {
      // Infinite loop.
      "while (true) {}",
      // Deep recursion — would smash the C++ stack without the
      // interpreter's call-depth ceiling.
      "function f() { return f(); } f();",
      // Unbounded string doubling: reaches gigabytes within ~30 loop
      // iterations unless allocation burns the step budget — this is
      // the memory-exhaustion probe, not the result-cap one.
      "var s = 'x'; while (true) { s = s + s; }",
      // Throwing a huge value: the message is a display string of a
      // capped-size build, delivered typed.
      "var s = 'y'; var i = 0; while (i < 10) { s = s + s; i = i + 1; }"
      " throw s;",
  };
  for (const char* source : corpus) {
    ScriptResponse response = gateway.CallScript(MakeScript(source));
    EXPECT_FALSE(response.ok) << source;
    // Typed outcome, process alive: either a script error or a budget
    // status — never a crash (ASan/TSan runs make "never" checkable).
    EXPECT_TRUE(response.script_error ||
                response.error == core::ErrorCode::kDeadlineExceeded)
        << source << ": " << response.message;
  }
  // The gateway still serves normal scripts afterwards.
  ScriptResponse after = gateway.CallScript(MakeScript("'alive';"));
  ASSERT_TRUE(after.ok) << after.message;
  EXPECT_EQ(after.result, "alive");
}

TEST(ScriptSandbox, BudgetsAreClampedToOperatorCeilings) {
  GatewayConfig config = BaseConfig();
  config.script.max_steps = 1'000;
  Gateway gateway(config);
  // The client asks for a bigger sandbox than the operator allows; the
  // clamp means the loop still dies at the server's ceiling.
  ScriptRequest request = MakeScript("while (true) {}");
  request.step_budget = 100'000'000;
  ScriptResponse response = gateway.CallScript(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_TRUE(response.budget_kill);
  EXPECT_LT(response.steps, 5'000u);
}

TEST(ScriptGateway, ShedWhenStoppingIsTypedOverload) {
  auto gateway = std::make_unique<Gateway>(BaseConfig());
  gateway->Stop();
  ScriptResponse response = gateway->CallScript(MakeScript("'x'"));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, core::ErrorCode::kOverloaded);
  EXPECT_EQ(response.message, "gateway is stopping");
}

// ---------------------------------------------------------------------------
// Over real sockets
// ---------------------------------------------------------------------------

TEST(ScriptWire, RoundTripOverSockets) {
  Gateway gateway(BaseConfig(2));
  wire::WireServer server(gateway);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  wire::WireClient client;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;

  wire::WireScriptRequest script;
  script.client_id = 5;
  script.source = "mobile.invoke('android', 'httpGet', args.url);";
  script.args.emplace_back("url", "http://gw.example/ping");
  wire::WireResponse response;
  ASSERT_TRUE(client.CallScript(script, &response));
  EXPECT_EQ(response.status, wire::WireStatus::kOk) << response.body;
  EXPECT_EQ(response.body, "pong");

  // Script failure: typed kScriptError with the thrown display string.
  script.source = "throw 'socket boom';";
  script.args.clear();
  ASSERT_TRUE(client.CallScript(script, &response));
  EXPECT_EQ(response.status, wire::WireStatus::kScriptError);
  EXPECT_NE(response.body.find("socket boom"), std::string::npos);

  // Budget kill over the wire: still a frame, still typed.
  script.source = "while (true) {}";
  script.step_budget = 2'000;
  ASSERT_TRUE(client.CallScript(script, &response));
  EXPECT_EQ(response.status, wire::WireStatus::kScriptError);
  EXPECT_NE(response.body.find("step limit exceeded"), std::string::npos);

  const wire::WireStatsSnapshot wire_stats = server.Stats();
  EXPECT_EQ(wire_stats.scripts_dispatched, 3u);
  EXPECT_EQ(wire_stats.requests_dispatched, 0u);

  client.Close();
  server.Stop();
  gateway.Stop();
}

TEST(ScriptWire, MalformedScriptBodyGetsTypedResponse) {
  Gateway gateway(BaseConfig());
  wire::WireServer server(gateway);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  wire::WireClient client;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;

  // Empty source is well-framed but violates the body rule: the server
  // must answer kMalformedRequest in-band and keep the connection.
  wire::WireScriptRequest script;
  script.client_id = 1;
  script.source = "";
  wire::WireResponse response;
  ASSERT_TRUE(client.CallScript(script, &response));
  EXPECT_EQ(response.status, wire::WireStatus::kMalformedRequest);

  // Connection still alive for a healthy script.
  script.source = "'still here';";
  ASSERT_TRUE(client.CallScript(script, &response));
  EXPECT_EQ(response.status, wire::WireStatus::kOk);
  EXPECT_EQ(response.body, "still here");

  client.Close();
  server.Stop();
  gateway.Stop();
}

TEST(ScriptWire, PipelinedScriptsAllComplete) {
  Gateway gateway(BaseConfig(2));
  wire::WireServer server(gateway);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  wire::WireClient client;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;

  constexpr int kScripts = 32;
  std::atomic<int> completed{0};
  std::atomic<int> ok{0};
  for (int i = 0; i < kScripts; ++i) {
    wire::WireScriptRequest script;
    script.client_id = static_cast<std::uint64_t>(i);
    script.source = "1 + " + std::to_string(i) + ";";
    ASSERT_TRUE(client.SubmitScript(
        script, [&completed, &ok](const wire::WireResponse& response) {
          if (response.status == wire::WireStatus::kOk) {
            ok.fetch_add(1, std::memory_order_relaxed);
          }
          completed.fetch_add(1, std::memory_order_relaxed);
        }));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (completed.load(std::memory_order_relaxed) < kScripts &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(completed.load(), kScripts);
  EXPECT_EQ(ok.load(), kScripts);

  client.Close();
  server.Stop();
  gateway.Stop();
}

// ---------------------------------------------------------------------------
// Interpreter seams the engine depends on
// ---------------------------------------------------------------------------

TEST(ScriptInterpreter, StepObserverDeliversAllSteps) {
  minijs::Interpreter interp;
  std::uint64_t observed = 0;
  interp.set_step_observer(
      [&observed](std::uint64_t delta) { observed += delta; },
      /*interval=*/64);
  (void)interp.Run("var i = 0; while (i < 1000) { i = i + 1; }");
  interp.FlushStepObserver();
  EXPECT_EQ(observed, interp.steps());
}

TEST(ScriptInterpreter, ObserverThrowIsNotCatchableInScript) {
  minijs::Interpreter interp;
  struct Kill {};
  int fires = 0;
  interp.set_step_observer(
      [&fires](std::uint64_t) {
        if (++fires >= 3) throw Kill{};
      },
      /*interval=*/32);
  EXPECT_THROW(
      (void)interp.Run("try { while (true) {} } catch (e) { 'swallowed'; }"),
      Kill);
}

TEST(ScriptInterpreter, CallDepthCeilingIsCatchableRangeError) {
  minijs::Interpreter interp;
  const minijs::Value value = interp.Run(
      "function f() { try { return f(); } catch (e) { return e.name; } }"
      " f();");
  EXPECT_EQ(value.ToDisplayString(), "RangeError");
}

// ---------------------------------------------------------------------------
// Parse cache
// ---------------------------------------------------------------------------

TEST(ScriptCache, SecondExecutionOfSameSourceIsAHit) {
  Gateway gateway(BaseConfig());
  const char* source = "'cached ' + (1 + 2);";
  const ScriptResponse first = gateway.CallScript(MakeScript(source));
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_FALSE(first.cache_hit);
  const ScriptResponse second = gateway.CallScript(MakeScript(source));
  ASSERT_TRUE(second.ok) << second.message;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result, first.result);
  const auto totals = gateway.Stats().totals;
  EXPECT_EQ(totals.script_cache_hits, 1u);
  EXPECT_EQ(totals.script_cache_misses, 1u);
  EXPECT_EQ(totals.script_cache_hits + totals.script_cache_misses,
            totals.scripts);
}

TEST(ScriptCache, CachedProgramGetsFreshArgsAndBudgets) {
  Gateway gateway(BaseConfig());
  // Same source, different args: the parse is reused, the sandbox state
  // must not be. A cache that reused the interpreter (or captured the
  // first run's args) would echo "one" twice.
  auto with_arg = [](const char* value) {
    ScriptRequest request = MakeScript("'v=' + args.x;");
    request.args.emplace_back("x", value);
    return request;
  };
  const ScriptResponse first = gateway.CallScript(with_arg("one"));
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_EQ(first.result, "v=one");
  const ScriptResponse second = gateway.CallScript(with_arg("two"));
  ASSERT_TRUE(second.ok) << second.message;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result, "v=two");

  // Budgets are per-execution too: the same (now cached) looping source
  // must run under a generous step budget and die under a tight one.
  const char* loop = "var i = 0; while (i < 2000) { i = i + 1; } 'done';";
  ScriptRequest generous = MakeScript(loop);
  const ScriptResponse ran = gateway.CallScript(std::move(generous));
  ASSERT_TRUE(ran.ok) << ran.message;
  ScriptRequest tight = MakeScript(loop);
  tight.step_budget = 100;
  const ScriptResponse killed = gateway.CallScript(std::move(tight));
  EXPECT_FALSE(killed.ok);
  EXPECT_TRUE(killed.cache_hit);
  EXPECT_TRUE(killed.budget_kill);
}

TEST(ScriptCache, LruEvictsTheColdestProgram) {
  GatewayConfig config = BaseConfig();
  config.script.parse_cache_entries = 2;
  Gateway gateway(config);
  ASSERT_TRUE(gateway.CallScript(MakeScript("'a';")).ok);
  ASSERT_TRUE(gateway.CallScript(MakeScript("'b';")).ok);
  // Third distinct program evicts 'a' (the coldest).
  ASSERT_TRUE(gateway.CallScript(MakeScript("'c';")).ok);
  EXPECT_FALSE(gateway.CallScript(MakeScript("'a';")).cache_hit);
  // 'c' stayed resident through the re-parse of 'a' ('b' was evicted).
  EXPECT_TRUE(gateway.CallScript(MakeScript("'c';")).cache_hit);
  const auto totals = gateway.Stats().totals;
  EXPECT_EQ(totals.script_cache_hits, 1u);
  EXPECT_EQ(totals.script_cache_misses, 4u);
}

TEST(ScriptCache, ZeroEntriesDisablesCaching) {
  GatewayConfig config = BaseConfig();
  config.script.parse_cache_entries = 0;
  Gateway gateway(config);
  const char* source = "'twice';";
  EXPECT_FALSE(gateway.CallScript(MakeScript(source)).cache_hit);
  EXPECT_FALSE(gateway.CallScript(MakeScript(source)).cache_hit);
  const auto totals = gateway.Stats().totals;
  EXPECT_EQ(totals.script_cache_hits, 0u);
  EXPECT_EQ(totals.script_cache_misses, 2u);
}

TEST(ScriptCache, ParseFailuresAreNeverCached) {
  Gateway gateway(BaseConfig());
  const char* broken = "var (;";
  const ScriptResponse first = gateway.CallScript(MakeScript(broken));
  EXPECT_FALSE(first.ok);
  EXPECT_FALSE(first.cache_hit);
  // Still a parse (and a miss) the second time — an error cached as a
  // program would replay the stale failure even after an engine fix.
  const ScriptResponse second = gateway.CallScript(MakeScript(broken));
  EXPECT_FALSE(second.ok);
  EXPECT_FALSE(second.cache_hit);
  const auto totals = gateway.Stats().totals;
  EXPECT_EQ(totals.script_cache_hits, 0u);
  EXPECT_EQ(totals.script_cache_misses, 2u);
}

}  // namespace
}  // namespace mobivine
