// Tests for the contacts stack: the device database, the four deliberately
// different platform PIM APIs, and the uniform Pim proxy over each.
#include <gtest/gtest.h>

#include "android/contacts.h"
#include "android/exceptions.h"
#include "core/bindings/webview_proxies.h"
#include "core/registry.h"
#include "iphone/iphone_platform.h"
#include "s60/pim.h"
#include "tests/test_util.h"
#include "webview/webview.h"

namespace mobivine {
namespace {

using core::Contact;
using core::DescriptorStore;
using core::ErrorCode;
using core::ProxyError;
using core::ProxyRegistry;
using mobivine::testing::MakeDevice;

const DescriptorStore& Store() {
  static const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

void Populate(device::MobileDevice& dev) {
  dev.contacts().Add("Ravi Kumar", "+15550123", "ravi@example.com");
  dev.contacts().Add("Sunita Devi", "+15550199", "sunita@example.com");
  dev.contacts().Add("Ravi Shankar", "+15550777", "");
}

// ---------------------------------------------------------------------------
// Device database
// ---------------------------------------------------------------------------

TEST(ContactDatabase, CrudAndLookups) {
  device::ContactDatabase db;
  const auto id1 = db.Add("Alpha", "+1", "a@x");
  const auto id2 = db.Add("Beta", "+2");
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.FindById(id1)->display_name, "Alpha");
  EXPECT_EQ(db.FindByNumber("+2")->id, id2);
  EXPECT_FALSE(db.FindByNumber("+3").has_value());
  EXPECT_EQ(db.FindByName("alph").size(), 1u);
  EXPECT_TRUE(db.Remove(id1));
  EXPECT_FALSE(db.Remove(id1));
  EXPECT_EQ(db.size(), 1u);
  db.Clear();
  EXPECT_EQ(db.size(), 0u);
}

// ---------------------------------------------------------------------------
// Android cursor API
// ---------------------------------------------------------------------------

TEST(AndroidContacts, CursorIteration) {
  auto dev = MakeDevice();
  Populate(*dev);
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kReadContacts);
  android::ContactsProvider provider(platform);
  android::Cursor cursor = provider.query();
  EXPECT_EQ(cursor.getCount(), 3);
  int seen = 0;
  while (cursor.moveToNext()) {
    ++seen;
    EXPECT_FALSE(
        cursor.getString(android::Cursor::COLUMN_DISPLAY_NAME).empty());
  }
  EXPECT_EQ(seen, 3);
  cursor.close();
  EXPECT_THROW(cursor.moveToNext(), android::IllegalStateException);
}

TEST(AndroidContacts, CursorMisuseThrows) {
  auto dev = MakeDevice();
  Populate(*dev);
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kReadContacts);
  android::ContactsProvider provider(platform);
  android::Cursor cursor = provider.query();
  // Not positioned yet.
  EXPECT_THROW(cursor.getString(android::Cursor::COLUMN_NUMBER),
               android::IllegalStateException);
  ASSERT_TRUE(cursor.moveToNext());
  EXPECT_THROW((void)cursor.getString(42), android::IllegalArgumentException);
  EXPECT_THROW((void)cursor.getLong(android::Cursor::COLUMN_NUMBER),
               android::IllegalArgumentException);
}

TEST(AndroidContacts, PermissionRequired) {
  auto dev = MakeDevice();
  android::AndroidPlatform platform(*dev);
  android::ContactsProvider provider(platform);
  EXPECT_THROW((void)provider.query(), android::SecurityException);
}

// ---------------------------------------------------------------------------
// S60 JSR-75 API
// ---------------------------------------------------------------------------

TEST(S60Pim, ItemsAndFields) {
  auto dev = MakeDevice();
  Populate(*dev);
  s60::S60Platform platform(*dev);
  platform.grantPermission(s60::permissions::kPimRead);
  auto list = s60::PIM::openContactList(platform, s60::ContactList::READ_ONLY);
  auto items = list->items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].getString(s60::Contact::NAME, 0), "Ravi Kumar");
  EXPECT_EQ(items[0].countValues(s60::Contact::EMAIL), 1);
  EXPECT_EQ(items[2].countValues(s60::Contact::EMAIL), 0);
  EXPECT_THROW(items[0].getString(s60::Contact::EMAIL, 5),
               s60::IllegalArgumentException);
  EXPECT_THROW(items[0].getString(9999, 0), s60::IllegalArgumentException);
  // Name-matching variant.
  EXPECT_EQ(list->items("ravi").size(), 2u);
  list->close();
  EXPECT_THROW((void)list->items(), s60::IOException);
}

TEST(S60Pim, PermissionAndModeChecks) {
  auto dev = MakeDevice();
  s60::S60Platform platform(*dev);
  EXPECT_THROW(
      (void)s60::PIM::openContactList(platform, s60::ContactList::READ_ONLY),
      s60::SecurityException);
  platform.grantPermission(s60::permissions::kPimRead);
  EXPECT_THROW(
      (void)s60::PIM::openContactList(platform, s60::ContactList::READ_WRITE),
      s60::IllegalArgumentException);
}

// ---------------------------------------------------------------------------
// The uniform Pim proxy on every platform
// ---------------------------------------------------------------------------

void CheckUniform(core::PimProxy& proxy) {
  auto contacts = proxy.listContacts();
  ASSERT_EQ(contacts.size(), 3u);
  EXPECT_EQ(contacts[0].display_name, "Ravi Kumar");
  EXPECT_EQ(contacts[0].phone_number, "+15550123");
  EXPECT_EQ(contacts[0].email, "ravi@example.com");

  auto by_number = proxy.findByNumber("+15550199");
  ASSERT_TRUE(by_number.has_value());
  EXPECT_EQ(by_number->display_name, "Sunita Devi");
  EXPECT_FALSE(proxy.findByNumber("+19999999").has_value());

  EXPECT_EQ(proxy.findByName("RAVI").size(), 2u);
  EXPECT_EQ(proxy.findByName("nobody").size(), 0u);
}

TEST(PimProxy, AndroidUniform) {
  auto dev = MakeDevice();
  Populate(*dev);
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kReadContacts);
  ProxyRegistry registry(&Store());
  auto proxy = registry.CreatePimProxy(platform);
  CheckUniform(*proxy);
}

TEST(PimProxy, S60Uniform) {
  auto dev = MakeDevice();
  Populate(*dev);
  s60::S60Platform platform(*dev);
  platform.grantPermission(s60::permissions::kPimRead);
  ProxyRegistry registry(&Store());
  auto proxy = registry.CreatePimProxy(platform);
  CheckUniform(*proxy);
}

TEST(PimProxy, IPhoneUniform) {
  auto dev = MakeDevice();
  Populate(*dev);
  iphone::IPhonePlatform platform(*dev);
  ProxyRegistry registry(&Store());
  auto proxy = registry.CreatePimProxy(platform);
  CheckUniform(*proxy);
}

TEST(PimProxy, SecurityMappedUniformly) {
  auto dev = MakeDevice();
  Populate(*dev);
  // Android and S60 deny through their permission systems; the uniform
  // code is the same kSecurity in both.
  {
    android::AndroidPlatform platform(*dev);
    ProxyRegistry registry(&Store());
    auto proxy = registry.CreatePimProxy(platform);
    try {
      (void)proxy->listContacts();
      FAIL();
    } catch (const ProxyError& error) {
      EXPECT_EQ(error.code(), ErrorCode::kSecurity);
    }
  }
  {
    s60::S60Platform platform(*dev);
    ProxyRegistry registry(&Store());
    auto proxy = registry.CreatePimProxy(platform);
    try {
      (void)proxy->listContacts();
      FAIL();
    } catch (const ProxyError& error) {
      EXPECT_EQ(error.code(), ErrorCode::kSecurity);
    }
  }
}

// ---------------------------------------------------------------------------
// WebView: the JS Pim proxy
// ---------------------------------------------------------------------------

TEST(PimProxy, WebViewJsProxy) {
  auto dev = MakeDevice();
  Populate(*dev);
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kReadContacts);
  webview::WebView webview(platform);
  core::InstallWebViewProxies(webview);

  minijs::Value count = webview.loadScript(R"(
    var pim = new PimProxyImpl();
    var all = pim.listContacts();
    all.length;
  )");
  EXPECT_DOUBLE_EQ(count.as_number(), 3);

  minijs::Value name = webview.loadScript(
      "pim.findByNumber('+15550199').displayName;");
  EXPECT_EQ(name.as_string(), "Sunita Devi");

  minijs::Value matches =
      webview.loadScript("pim.findByName('ravi').length;");
  EXPECT_DOUBLE_EQ(matches.as_number(), 2);

  minijs::Value missing = webview.loadScript(
      "pim.findByNumber('+10000000') === null;");
  EXPECT_TRUE(missing.as_bool());
}

TEST(PimProxy, WebViewSecurityErrorCode) {
  auto dev = MakeDevice();
  android::AndroidPlatform platform(*dev);  // no READ_CONTACTS
  webview::WebView webview(platform);
  core::InstallWebViewProxies(webview);
  minijs::Value code = webview.loadScript(R"(
    var c = 0;
    try { new PimProxyImpl().listContacts(); } catch (e) { c = e.code; }
    c;
  )");
  EXPECT_DOUBLE_EQ(code.as_number(), webview::kErrorCodeSecurity);
}

TEST(PimProxy, WebViewRawUsesAndroidColumnNames) {
  auto dev = MakeDevice();
  Populate(*dev);
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kReadContacts);
  webview::WebView webview(platform);
  webview.injectRawPlatformInterfaces();
  minijs::Value row = webview.loadScript("ContactsRaw.listContacts()[0];");
  ASSERT_TRUE(row.is_object());
  EXPECT_TRUE(row.as_object()->Has("display_name"));   // raw shape
  EXPECT_FALSE(row.as_object()->Has("displayName"));   // not the uniform one
}

}  // namespace
}  // namespace mobivine
