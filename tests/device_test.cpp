#include <gtest/gtest.h>

#include "device/mobile_device.h"
#include "tests/test_util.h"

namespace mobivine::device {
namespace {

using mobivine::testing::MakeDevice;
using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;

// ---------------------------------------------------------------------------
// GPS
// ---------------------------------------------------------------------------

TEST(Gps, BlockingFixAdvancesClockAndReturnsNearTruth) {
  auto dev = MakeDevice();
  const sim::SimTime before = dev->scheduler().now();
  GpsFix fix = dev->gps().BlockingFix(GpsMode::kHighAccuracy);
  EXPECT_GT(dev->scheduler().now(), before);
  ASSERT_TRUE(fix.valid);
  const double error = support::HaversineMeters(fix.latitude_deg,
                                                fix.longitude_deg, kBaseLat,
                                                kBaseLon);
  EXPECT_LT(error, 20.0);  // high accuracy: 4 m sigma, clamp at 4 sigma
}

TEST(Gps, ModeControlsLatencyOrdering) {
  auto dev = MakeDevice();
  auto& gps = dev->gps();
  EXPECT_LT(gps.ExpectedFixLatency(GpsMode::kLowPower),
            gps.ExpectedFixLatency(GpsMode::kBalanced));
  EXPECT_LT(gps.ExpectedFixLatency(GpsMode::kBalanced),
            gps.ExpectedFixLatency(GpsMode::kHighAccuracy));
}

TEST(Gps, AsyncFixDelivered) {
  auto dev = MakeDevice();
  bool got = false;
  dev->gps().RequestFix(GpsMode::kBalanced, [&](const GpsFix& fix) {
    got = true;
    EXPECT_TRUE(fix.valid);
  });
  EXPECT_FALSE(got);
  dev->RunAll();
  EXPECT_TRUE(got);
}

TEST(Gps, PeriodicFixesStopOnUnsubscribe) {
  auto dev = MakeDevice();
  int count = 0;
  auto id = dev->gps().StartPeriodicFixes(
      GpsMode::kLowPower, sim::SimTime::Seconds(1),
      [&](const GpsFix&) { ++count; });
  dev->RunFor(sim::SimTime::Seconds(5));
  EXPECT_EQ(count, 5);
  dev->gps().StopPeriodicFixes(id);
  dev->RunFor(sim::SimTime::Seconds(5));
  EXPECT_EQ(count, 5);
}

TEST(Gps, FixFailureProbabilityProducesInvalidFixes) {
  DeviceConfig config;
  config.gps.fix_failure_probability = 1.0;
  MobileDevice dev(config);
  dev.gps().set_track(sim::GeoTrack::Stationary(kBaseLat, kBaseLon));
  GpsFix fix = dev.gps().BlockingFix(GpsMode::kBalanced);
  EXPECT_FALSE(fix.valid);
}

TEST(Gps, NoTrackMeansInvalidFix) {
  MobileDevice dev;
  GpsFix fix = dev.gps().BlockingFix(GpsMode::kBalanced);
  EXPECT_FALSE(fix.valid);
}

// ---------------------------------------------------------------------------
// Modem: SMS
// ---------------------------------------------------------------------------

TEST(ModemSms, SentThenDeliveredForRegisteredDestination) {
  auto dev = MakeDevice();
  std::vector<SmsStatus> statuses;
  dev->modem().SendSms("+15550123", "hello",
                       [&](const SmsResult& result) {
                         statuses.push_back(result.status);
                       });
  dev->RunAll();
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0], SmsStatus::kSent);
  EXPECT_EQ(statuses[1], SmsStatus::kDelivered);
}

TEST(ModemSms, UnknownDestinationUnreachable) {
  auto dev = MakeDevice();
  std::vector<SmsStatus> statuses;
  dev->modem().SendSms("+19990000", "hello",
                       [&](const SmsResult& result) {
                         statuses.push_back(result.status);
                       });
  dev->RunAll();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0], SmsStatus::kFailedUnreachable);
}

TEST(ModemSms, InjectedRadioFailure) {
  auto dev = MakeDevice();
  dev->modem().InjectRadioFailures(1);
  std::vector<SmsStatus> statuses;
  dev->modem().SendSms("+15550123", "x", [&](const SmsResult& r) {
    statuses.push_back(r.status);
  });
  dev->RunAll();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0], SmsStatus::kFailedRadio);
}

TEST(ModemSms, LongMessagesSplitIntoSegments) {
  auto dev = MakeDevice();
  EXPECT_EQ(dev->modem().SegmentCount(""), 1);
  EXPECT_EQ(dev->modem().SegmentCount(std::string(160, 'a')), 1);
  EXPECT_EQ(dev->modem().SegmentCount(std::string(161, 'a')), 2);
  EXPECT_EQ(dev->modem().SegmentCount(std::string(500, 'a')), 4);
}

TEST(ModemSms, QueueSerializesTransmissions) {
  auto dev = MakeDevice();
  std::vector<std::uint64_t> completion_order;
  for (int i = 0; i < 3; ++i) {
    dev->modem().SendSms("+15550123", "m",
                         [&](const SmsResult& result) {
                           if (result.status == SmsStatus::kSent) {
                             completion_order.push_back(result.message_id);
                           }
                         });
  }
  dev->RunAll();
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_TRUE(std::is_sorted(completion_order.begin(),
                             completion_order.end()));
}

TEST(ModemSms, BlockingSubmitReportsOutcomeSynchronously) {
  auto dev = MakeDevice();
  const sim::SimTime before = dev->scheduler().now();
  SmsResult ok = dev->modem().BlockingSubmit("+15550123", "hi");
  EXPECT_EQ(ok.status, SmsStatus::kSent);
  EXPECT_GT(dev->scheduler().now(), before);

  SmsResult bad = dev->modem().BlockingSubmit("+10000000", "hi");
  EXPECT_EQ(bad.status, SmsStatus::kFailedUnreachable);

  dev->modem().InjectRadioFailures(1);
  SmsResult radio = dev->modem().BlockingSubmit("+15550123", "hi");
  EXPECT_EQ(radio.status, SmsStatus::kFailedRadio);
}

TEST(ModemSms, BlockingSubmitDeliveryReportIsAsync) {
  auto dev = MakeDevice();
  bool delivered = false;
  dev->modem().BlockingSubmit("+15550123", "hi", [&](const SmsResult& r) {
    delivered = r.status == SmsStatus::kDelivered;
  });
  EXPECT_FALSE(delivered);
  dev->RunAll();
  EXPECT_TRUE(delivered);
}

// ---------------------------------------------------------------------------
// Modem: voice
// ---------------------------------------------------------------------------

TEST(ModemCall, FullProgressToConnected) {
  auto dev = MakeDevice();
  std::vector<CallState> states;
  ASSERT_TRUE(dev->modem().Dial("+15550123", [&](CallState state) {
    states.push_back(state);
  }));
  dev->RunAll();
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0], CallState::kDialing);
  EXPECT_EQ(states[1], CallState::kRinging);
  EXPECT_EQ(states[2], CallState::kConnected);
}

TEST(ModemCall, UnreachableCalleeFails) {
  auto dev = MakeDevice();
  std::vector<CallState> states;
  dev->modem().Dial("+10000000",
                    [&](CallState state) { states.push_back(state); });
  dev->RunAll();
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states.back(), CallState::kFailed);
}

TEST(ModemCall, BusyRejectsSecondDial) {
  auto dev = MakeDevice();
  ASSERT_TRUE(dev->modem().Dial("+15550123", nullptr));
  EXPECT_FALSE(dev->modem().Dial("+15550199", nullptr));
}

TEST(ModemCall, HangUpCancelsInFlightTransitions) {
  auto dev = MakeDevice();
  std::vector<CallState> states;
  dev->modem().Dial("+15550123",
                    [&](CallState state) { states.push_back(state); });
  dev->modem().HangUp();
  dev->RunAll();
  EXPECT_EQ(dev->modem().call_state(), CallState::kEnded);
  // No kConnected after the hangup.
  for (CallState state : states) EXPECT_NE(state, CallState::kConnected);
}

TEST(ModemCall, CanRedialAfterEnd) {
  auto dev = MakeDevice();
  dev->modem().Dial("+15550123", nullptr);
  dev->RunAll();
  dev->modem().HangUp();
  EXPECT_TRUE(dev->modem().Dial("+15550199", nullptr));
  dev->RunAll();
  EXPECT_EQ(dev->modem().call_state(), CallState::kConnected);
}

// ---------------------------------------------------------------------------
// HTTP messages / URL parsing
// ---------------------------------------------------------------------------

TEST(Url, ParsesFullForm) {
  auto url = ParseUrl("http://server.example:8080/api/tasks?agent=7&x=1");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "server.example");
  EXPECT_EQ(url->port, 8080);
  EXPECT_EQ(url->path, "/api/tasks");
  EXPECT_EQ(url->query, "agent=7&x=1");
}

TEST(Url, DefaultsAndToStringRoundTrip) {
  auto url = ParseUrl("http://host/path");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->port, 80);
  EXPECT_EQ(url->ToString(), "http://host/path");
  auto bare = ParseUrl("http://host");
  ASSERT_TRUE(bare);
  EXPECT_EQ(bare->path, "/");
}

TEST(Url, RejectsMalformed) {
  EXPECT_FALSE(ParseUrl("not-a-url"));
  EXPECT_FALSE(ParseUrl("ftp://host/x"));
  EXPECT_FALSE(ParseUrl("http://"));
  EXPECT_FALSE(ParseUrl("http://host:notaport/"));
  EXPECT_FALSE(ParseUrl("http://host:0/"));
}

TEST(Url, QueryParsingAndEncoding) {
  auto pairs = ParseQuery("a=1&b=two+words&c=%2Fslash&flag");
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[1].second, "two words");
  EXPECT_EQ(pairs[2].second, "/slash");
  EXPECT_EQ(pairs[3].first, "flag");
  EXPECT_EQ(pairs[3].second, "");
  EXPECT_EQ(UrlEncode("a b/c"), "a+b%2Fc");
}

TEST(HeaderMap, CaseInsensitive) {
  HeaderMap headers;
  headers.Set("Content-Type", "text/plain");
  EXPECT_EQ(headers.GetOr("content-type", ""), "text/plain");
  headers.Set("CONTENT-TYPE", "application/json");
  EXPECT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers.GetOr("Content-Type", ""), "application/json");
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

HttpRequest MakeRequest(const std::string& url) {
  HttpRequest request;
  request.url = *ParseUrl(url);
  return request;
}

TEST(Network, BlockingExchangeHitsRegisteredHost) {
  auto dev = MakeDevice();
  dev->network().RegisterHost("server", [](const HttpRequest& request) {
    EXPECT_EQ(request.url.path, "/ping");
    return HttpResponse::Ok("pong");
  });
  const sim::SimTime before = dev->scheduler().now();
  NetResult result = dev->network().BlockingSend(MakeRequest("http://server/ping"));
  EXPECT_EQ(result.error, NetError::kNone);
  EXPECT_EQ(result.response.body, "pong");
  EXPECT_GT(dev->scheduler().now(), before + sim::SimTime::Millis(20));
}

TEST(Network, UnknownHostUnreachable) {
  auto dev = MakeDevice();
  NetResult result = dev->network().BlockingSend(MakeRequest("http://nowhere/"));
  EXPECT_EQ(result.error, NetError::kHostUnreachable);
}

TEST(Network, LossCausesTimeout) {
  DeviceConfig config;
  config.network.loss_probability = 1.0;
  MobileDevice dev(config);
  dev.network().RegisterHost("server", [](const HttpRequest&) {
    return HttpResponse::Ok("x");
  });
  NetResult result = dev.network().BlockingSend(MakeRequest("http://server/"));
  EXPECT_EQ(result.error, NetError::kTimeout);
  EXPECT_GE(dev.scheduler().now(), config.network.timeout);
}

TEST(Network, AsyncSendDeliversLater) {
  auto dev = MakeDevice();
  dev->network().RegisterHost("server", [](const HttpRequest&) {
    return HttpResponse::Ok("ok");
  });
  bool got = false;
  dev->network().Send(MakeRequest("http://server/"),
                      [&](const NetResult& result) {
                        got = result.error == NetError::kNone;
                      });
  EXPECT_FALSE(got);
  dev->RunAll();
  EXPECT_TRUE(got);
}

TEST(Network, BandwidthChargesTransferTime) {
  auto dev = MakeDevice();
  const sim::SimTime small = dev->network().TransferTime(100);
  const sim::SimTime large = dev->network().TransferTime(100000);
  EXPECT_LT(small, large);
  EXPECT_NEAR(large.seconds(), 100000 / 16000.0, 0.01);
}

TEST(HttpResponseHelpers, FactoriesAndReasons) {
  EXPECT_EQ(HttpResponse::Ok("x").status, 200);
  EXPECT_EQ(HttpResponse::NotFound().status, 404);
  EXPECT_EQ(HttpResponse::BadRequest().status, 400);
  EXPECT_EQ(HttpResponse::ServerError().status, 500);
  EXPECT_EQ(ReasonPhrase(404), "Not Found");
  EXPECT_EQ(ReasonPhrase(418), "Unknown");
}

}  // namespace
}  // namespace mobivine::device
