// M-Failover: the fault-injection plane and the gateway's failover,
// circuit-breaker and hedging behavior built on it.
//
// What must hold:
//  * FaultPlan's text form parses, round-trips, and rejects malformed
//    input with a diagnostic; FaultInjector streams are deterministic
//    for a (plan, seed, salt) triple and decorrelated across salts;
//  * an injected fault surfaces through the ordinary binding dispatch
//    path as the same typed ProxyError a real failure would produce;
//  * injected latency is charged on the shard's virtual clock only —
//    wall-clock service time is unaffected;
//  * with failover on, a transient primary failure is served by the next
//    healthy platform inside the same retry round;
//  * circuit breakers open after the consecutive-failure threshold,
//    sideline the platform while open, and recover through a half-open
//    probe on the virtual clock;
//  * a hedged dispatch books exactly one completion — the hung loser
//    never double-counts in ShardStats;
//  * request-scoped properties applied during a failover sweep never
//    leak into later requests (ScopedPropertyRestore on every
//    candidate), and a candidate that cannot accept the properties is
//    skipped rather than failing the request;
//  * exhausting every platform (dispatched or breaker-skipped) surfaces
//    kAllBackendsFailed and the stats reconcile;
//  * the ISSUE acceptance bar: 30% injected transient faults on one
//    platform keep availability >= 99% with failover on, and measurably
//    degrade it with failover off;
//  * the global interner stays size-stable under a property-carrying
//    gateway soak (the never-evicts contract in
//    docs/failure-semantics.md).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "core/errors.h"
#include "gateway/failover.h"
#include "gateway/gateway.h"
#include "gateway/traffic.h"
#include "support/fault.h"
#include "support/interner.h"

namespace mobivine {
namespace {

using core::ErrorCode;
using gateway::CircuitBreaker;
using gateway::Gateway;
using gateway::GatewayConfig;
using gateway::GatewaySnapshot;
using gateway::Op;
using gateway::Platform;
using gateway::Request;
using gateway::Response;
using support::FaultAction;
using support::FaultDecision;
using support::FaultInjector;
using support::FaultPlan;

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

GatewayConfig BaseConfig(int shards) {
  GatewayConfig config;
  config.shards = shards;
  config.store = &Store();
  return config;
}

FaultPlan MustParse(const std::string& text) {
  std::string error;
  auto plan = FaultPlan::Parse(text, &error);
  EXPECT_TRUE(plan.has_value()) << text << ": " << error;
  return plan.value_or(FaultPlan{});
}

Request HttpGetRequest(std::uint64_t client_id,
                       Platform platform = Platform::kAndroid) {
  Request request;
  request.client_id = client_id;
  request.platform = platform;
  request.op = Op::kHttpGet;
  request.target =
      std::string("http://") + gateway::kGatewayHttpHost + "/ping";
  return request;
}

Request SegmentCountRequest(std::uint64_t client_id,
                            Platform platform = Platform::kAndroid) {
  Request request;
  request.client_id = client_id;
  request.platform = platform;
  request.op = Op::kSegmentCount;
  request.payload = "short enough for one segment";
  return request;
}

// ---------------------------------------------------------------------------
// FaultPlan text form
// ---------------------------------------------------------------------------

TEST(Failover, FaultPlanParsesEveryEffectAndOption) {
  const FaultPlan plan = MustParse(
      "seed=7;android:*:error=timeout:p=0.3;"
      "s60:getLocation:latency=5000;*:*:hang:p=0.25:max=100;"
      "*:*:latency=1000:wall");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.rules.size(), 4u);

  EXPECT_EQ(plan.rules[0].platform, "android");
  EXPECT_EQ(plan.rules[0].op, "*");
  EXPECT_EQ(plan.rules[0].action, FaultAction::kError);
  EXPECT_EQ(plan.rules[0].error, "timeout");
  EXPECT_NEAR(plan.rules[0].probability, 0.3, 1e-9);
  EXPECT_EQ(plan.rules[0].max_fires, 0u);

  EXPECT_EQ(plan.rules[1].action, FaultAction::kLatency);
  EXPECT_EQ(plan.rules[1].latency_us, 5000u);
  EXPECT_EQ(plan.rules[1].probability, 1.0);
  EXPECT_FALSE(plan.rules[1].wall);

  EXPECT_EQ(plan.rules[3].action, FaultAction::kLatency);
  EXPECT_EQ(plan.rules[3].latency_us, 1000u);
  EXPECT_TRUE(plan.rules[3].wall);

  EXPECT_EQ(plan.rules[2].action, FaultAction::kHang);
  EXPECT_EQ(plan.rules[2].max_fires, 100u);
  EXPECT_TRUE(plan.rules[2].Matches("iphone", "httpPost"));
  EXPECT_TRUE(plan.rules[0].Matches("android", "sendTextMessage"));
  EXPECT_FALSE(plan.rules[0].Matches("s60", "sendTextMessage"));
}

TEST(Failover, FaultPlanRoundTripsThroughToString) {
  const char* specs[] = {
      "android:*:error=timeout:p=0.3",
      "seed=42;s60:getLocation:latency=5000;*:*:hang:p=0.125:max=9",
      "iphone:httpGet:error=network",
      "*:*:latency=1000:wall:p=0.5",
  };
  for (const char* spec : specs) {
    const FaultPlan plan = MustParse(spec);
    const std::string text = plan.ToString();
    const FaultPlan reparsed = MustParse(text);
    EXPECT_EQ(reparsed.ToString(), text) << spec;
    EXPECT_EQ(reparsed.seed, plan.seed) << spec;
    ASSERT_EQ(reparsed.rules.size(), plan.rules.size()) << spec;
    for (std::size_t i = 0; i < plan.rules.size(); ++i) {
      EXPECT_EQ(reparsed.rules[i].action, plan.rules[i].action) << spec;
      EXPECT_EQ(reparsed.rules[i].error, plan.rules[i].error) << spec;
      EXPECT_EQ(reparsed.rules[i].latency_us, plan.rules[i].latency_us)
          << spec;
      EXPECT_NEAR(reparsed.rules[i].probability, plan.rules[i].probability,
                  1e-6)
          << spec;
      EXPECT_EQ(reparsed.rules[i].max_fires, plan.rules[i].max_fires) << spec;
      EXPECT_EQ(reparsed.rules[i].wall, plan.rules[i].wall) << spec;
    }
  }
}

TEST(Failover, FaultPlanRejectsMalformedInputWithDiagnostic) {
  const char* bad[] = {
      "",                             // no rules at all
      "android:*",                    // missing effect
      "android:*:explode",            // unknown effect
      "android:*:error=",             // error= without a code name
      "android:*:latency=0",          // latency must be positive
      "android:*:latency=abc",        // not a number
      "android:*:error=timeout:p=1.5",  // probability out of range
      "android:*:error=timeout:p=x",    // unparseable probability
      "android:*:error=timeout:max=x",  // unparseable max
      "android:*:error=timeout:q=1",    // unknown option
      "android:*:hang:wall",            // wall only applies to latency=
      "seed=abc;android:*:hang",        // bad seed
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(FaultPlan::Parse(spec, &error).has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// ---------------------------------------------------------------------------
// FaultInjector determinism
// ---------------------------------------------------------------------------

TEST(Failover, FaultInjectorStreamsAreDeterministicPerSalt) {
  const FaultPlan plan =
      MustParse("seed=42;android:*:error=timeout:p=0.5;s60:*:hang:p=0.5");
  FaultInjector a(plan, /*salt=*/3);
  FaultInjector b(plan, /*salt=*/3);
  FaultInjector c(plan, /*salt=*/4);

  int divergences = 0;
  for (int i = 0; i < 256; ++i) {
    const char* platform = (i % 2 == 0) ? "android" : "s60";
    const FaultDecision da = a.Decide(platform, "httpGet");
    const FaultDecision db = b.Decide(platform, "httpGet");
    const FaultDecision dc = c.Decide(platform, "httpGet");
    EXPECT_EQ(da.action, db.action) << "same salt must replay identically";
    if (da.action != dc.action) ++divergences;
  }
  EXPECT_EQ(a.fired(), b.fired());
  // p=0.5 over 256 draws: salts 3 and 4 drawing identical streams would
  // mean the decorrelation mix is broken.
  EXPECT_GT(divergences, 0);
  // Roughly half the draws should fire; exact counts are pinned by the
  // seed, the band only guards against p= being ignored entirely.
  EXPECT_GT(a.fired(), 64u);
  EXPECT_LT(a.fired(), 192u);
}

TEST(Failover, FaultInjectorHonorsProbabilityZeroAndMaxFires) {
  FaultInjector never(MustParse("android:*:error=timeout:p=0"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(never.Decide("android", "httpGet").action, FaultAction::kNone);
  }
  EXPECT_EQ(never.fired(), 0u);

  FaultInjector capped(MustParse("android:*:error=timeout:max=3"));
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (capped.Decide("android", "httpGet").action == FaultAction::kError) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(capped.fired(), 3u);
  EXPECT_EQ(capped.rule_fires(0), 3u);
  EXPECT_EQ(capped.fired(FaultAction::kError), 3u);
  // Non-matching dispatches never consume the rule.
  EXPECT_EQ(capped.Decide("s60", "httpGet").action, FaultAction::kNone);
}

TEST(Failover, ErrorCodeNamesRoundTripThroughCoreMapping) {
  const ErrorCode codes[] = {
      ErrorCode::kSecurity,         ErrorCode::kTimeout,
      ErrorCode::kUnsupported,      ErrorCode::kIllegalArgument,
      ErrorCode::kUnreachable,      ErrorCode::kRadioFailure,
      ErrorCode::kInvalidState,     ErrorCode::kLocationUnavailable,
      ErrorCode::kNetwork,          ErrorCode::kOverloaded,
      ErrorCode::kDeadlineExceeded, ErrorCode::kAllBackendsFailed,
      ErrorCode::kUnknown,
  };
  for (ErrorCode code : codes) {
    EXPECT_EQ(core::ErrorCodeFromName(core::ToString(code)), code)
        << core::ToString(code);
  }
  EXPECT_EQ(core::ErrorCodeFromName("no-such-error"), ErrorCode::kUnknown);
}

// ---------------------------------------------------------------------------
// CircuitBreaker state machine
// ---------------------------------------------------------------------------

TEST(Failover, CircuitBreakerOpensProbesAndRecovers) {
  CircuitBreaker breaker(/*threshold=*/3, /*cooldown_us=*/1000);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  EXPECT_FALSE(breaker.OnFailure(10));
  EXPECT_FALSE(breaker.OnFailure(20));
  EXPECT_TRUE(breaker.Allow(25));  // still closed below the threshold
  EXPECT_TRUE(breaker.OnFailure(30));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  EXPECT_FALSE(breaker.Allow(500));   // cooldown not elapsed
  EXPECT_TRUE(breaker.Allow(1030));   // half-open: one probe admitted
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(1031));  // probe in flight, nobody else

  // Failed probe: straight back to open, cooldown restarts from now.
  EXPECT_TRUE(breaker.OnFailure(1040));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(1500));
  EXPECT_TRUE(breaker.Allow(2040 + 1));

  breaker.OnSuccess();  // successful probe closes it
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_TRUE(breaker.Allow(2100));
}

TEST(Failover, CircuitBreakerDisabledByZeroThreshold) {
  CircuitBreaker breaker(/*threshold=*/0, /*cooldown_us=*/1000);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(breaker.OnFailure(static_cast<std::uint64_t>(i)));
    EXPECT_TRUE(breaker.Allow(static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// Injection through the gateway dispatch path
// ---------------------------------------------------------------------------

TEST(Failover, InjectedErrorSurfacesAsTypedFailure) {
  GatewayConfig config = BaseConfig(1);
  config.failover.fault_plan = MustParse("android:*:error=timeout:p=1");
  Gateway gw(config);

  Request request = HttpGetRequest(1);
  request.retry.max_attempts = 1;
  const Response response = gw.Call(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kTimeout);
  EXPECT_NE(response.message.find("injected fault"), std::string::npos);
  EXPECT_EQ(response.attempts, 1);

  // The plan is android-scoped: other platforms are untouched.
  const Response s60 = gw.Call(HttpGetRequest(1, Platform::kS60));
  EXPECT_TRUE(s60.ok) << s60.message;

  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.faults_injected, 1u);
  EXPECT_EQ(stats.totals.failed, 1u);
  EXPECT_EQ(stats.totals.ok, 1u);
  EXPECT_EQ(stats.totals.failovers, 0u);  // failover is off
}

TEST(Failover, LatencyFaultChargesVirtualClockNotWallClock) {
  GatewayConfig config = BaseConfig(1);
  // Half a virtual second per httpGet — far beyond anything the test
  // could absorb on the wall clock.
  config.failover.fault_plan = MustParse("android:httpGet:latency=500000");
  Gateway gw(config);

  const auto start = std::chrono::steady_clock::now();
  const Response response = gw.Call(HttpGetRequest(1));
  const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(response.ok) << response.message;
  EXPECT_EQ(response.payload, "pong");
  EXPECT_LT(wall.count(), 400) << "injected latency must be virtual-only";
  EXPECT_EQ(gw.Stats().totals.faults_injected, 1u);
}

TEST(Failover, WallLatencyFaultBlocksTheWallClock) {
  GatewayConfig config = BaseConfig(1);
  // The :wall option makes the shard thread really stall — this is what
  // wire/cluster capacity modelling relies on, since a peer across a
  // socket cannot observe the virtual clock.
  config.failover.fault_plan = MustParse("android:httpGet:latency=30000:wall");
  Gateway gw(config);

  const auto start = std::chrono::steady_clock::now();
  const Response response = gw.Call(HttpGetRequest(1));
  const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(response.ok) << response.message;
  EXPECT_EQ(response.payload, "pong");
  EXPECT_GE(wall.count(), 30) << "wall latency must really block";
  EXPECT_EQ(gw.Stats().totals.faults_injected, 1u);
}

TEST(Failover, HangWithoutHedgingSurfacesTimeout) {
  GatewayConfig config = BaseConfig(1);
  config.failover.fault_plan = MustParse("android:httpGet:hang:p=1");
  Gateway gw(config);

  Request request = HttpGetRequest(1);
  request.retry.max_attempts = 1;
  const Response response = gw.Call(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kTimeout);
  EXPECT_NE(response.message.find("hang"), std::string::npos);
  EXPECT_EQ(response.attempts, 1);
}

// ---------------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------------

TEST(Failover, TransientFaultFailsOverToNextPlatform) {
  GatewayConfig config = BaseConfig(1);
  config.failover.failover = true;
  config.failover.fault_plan = MustParse("android:*:error=timeout:p=1");
  Gateway gw(config);

  Request request = HttpGetRequest(1);
  request.retry.max_attempts = 1;  // no retry rounds: failover is the story
  const Response response = gw.Call(std::move(request));
  EXPECT_TRUE(response.ok) << response.message;
  EXPECT_EQ(response.payload, "pong");
  EXPECT_NE(response.served_platform, Platform::kAndroid);
  EXPECT_EQ(response.attempts, 2);  // primary + one failover dispatch

  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.ok, 1u);
  EXPECT_EQ(stats.totals.failed, 0u);
  EXPECT_EQ(stats.totals.retries, 0u);
  EXPECT_EQ(stats.totals.failovers, 1u);
  EXPECT_EQ(stats.totals.faults_injected, 1u);
}

TEST(Failover, NonTransientFaultIsNotFailedOver) {
  GatewayConfig config = BaseConfig(1);
  config.failover.failover = true;
  config.failover.fault_plan = MustParse("android:*:error=security:p=1");
  Gateway gw(config);

  Request request = HttpGetRequest(1);
  request.retry.max_attempts = 3;
  const Response response = gw.Call(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kSecurity);
  EXPECT_EQ(response.attempts, 1);  // terminal on the primary, no sweep

  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.failovers, 0u);
  EXPECT_EQ(stats.totals.retries, 0u);
}

TEST(Failover, AllBackendsDownSurfacesAllBackendsFailed) {
  GatewayConfig config = BaseConfig(1);
  config.failover.failover = true;
  config.failover.fault_plan = MustParse("*:*:error=timeout:p=1");
  Gateway gw(config);

  Request request = HttpGetRequest(1);
  request.retry.max_attempts = 1;
  const Response response = gw.Call(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kAllBackendsFailed);
  EXPECT_NE(response.message.find("all backends failed"), std::string::npos);
  EXPECT_NE(response.message.find("injected fault"), std::string::npos);
  EXPECT_EQ(response.attempts, 3);  // every platform dispatched once

  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.failed, 1u);
  EXPECT_EQ(stats.totals.ok, 0u);
  EXPECT_EQ(stats.totals.failovers, 2u);
  EXPECT_EQ(stats.totals.faults_injected, 3u);
  // accepted == completed: one request, one completion, no double books.
  EXPECT_EQ(stats.totals.accepted, 1u);
  EXPECT_EQ(stats.totals.completed(), 1u);
}

TEST(Failover, AllBreakersOpenFailsFastWithoutDispatching) {
  GatewayConfig config = BaseConfig(1);
  config.failover.failover = true;
  config.failover.breaker_threshold = 1;
  config.failover.breaker_cooldown_us = 60'000'000;  // hold open for the test
  config.failover.fault_plan = MustParse("*:*:error=timeout:p=1:max=3");
  Gateway gw(config);

  // First request trips all three breakers (threshold 1, every platform
  // faulted once).
  Request first = SegmentCountRequest(1);
  first.retry.max_attempts = 1;
  const Response opened = gw.Call(std::move(first));
  EXPECT_FALSE(opened.ok);
  EXPECT_EQ(opened.error, ErrorCode::kAllBackendsFailed);
  EXPECT_EQ(opened.attempts, 3);

  // Second request finds every candidate sidelined: nothing dispatches.
  Request second = SegmentCountRequest(1);
  second.retry.max_attempts = 1;
  const Response skipped = gw.Call(std::move(second));
  EXPECT_FALSE(skipped.ok);
  EXPECT_EQ(skipped.error, ErrorCode::kAllBackendsFailed);
  EXPECT_NE(skipped.message.find("all circuit breakers open"),
            std::string::npos);
  EXPECT_EQ(skipped.attempts, 0);

  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.breaker_opens, 3u);
  EXPECT_EQ(stats.totals.failed, 2u);
  EXPECT_EQ(stats.totals.accepted, 2u);
  EXPECT_EQ(stats.totals.completed(), 2u);
}

TEST(Failover, BreakerSidelinesPlatformAndHalfOpenProbeRecovers) {
  GatewayConfig config = BaseConfig(1);
  config.failover.failover = true;
  config.failover.breaker_threshold = 2;
  // segmentCount is pure (no device I/O): each dispatch charges well
  // under 5ms virtual, so 50ms of cooldown reliably spans several
  // requests before the half-open probe — and recovery stays quick.
  config.failover.breaker_cooldown_us = 50'000;
  config.failover.fault_plan =
      MustParse("android:segmentCount:error=timeout:p=1:max=2");
  Gateway gw(config);

  auto call = [&gw] {
    Request request = SegmentCountRequest(1);
    request.retry.max_attempts = 1;
    return gw.Call(std::move(request));
  };

  // Two faulted dispatches: both fail over to s60, the second opens the
  // android breaker.
  for (int i = 0; i < 2; ++i) {
    const Response response = call();
    ASSERT_TRUE(response.ok) << response.message;
    EXPECT_EQ(response.served_platform, Platform::kS60);
    EXPECT_EQ(response.attempts, 2);
  }
  EXPECT_EQ(gw.Stats().totals.breaker_opens, 1u);
  EXPECT_EQ(gw.Stats().totals.failovers, 2u);

  // While open, the primary is skipped without a dispatch: the fault
  // rule is exhausted (max=2), so only the breaker explains why this
  // lands on s60 in a single attempt.
  const Response sidelined = call();
  ASSERT_TRUE(sidelined.ok) << sidelined.message;
  EXPECT_EQ(sidelined.served_platform, Platform::kS60);
  EXPECT_EQ(sidelined.attempts, 1);
  EXPECT_EQ(gw.Stats().totals.failovers, 2u);  // a skip is not a failover

  // Keep serving; the virtual clock advances with every dispatch until
  // the cooldown elapses, the half-open probe hits android (healthy now),
  // and the breaker closes.
  bool recovered = false;
  for (int i = 0; i < 500 && !recovered; ++i) {
    const Response response = call();
    ASSERT_TRUE(response.ok) << response.message;
    recovered = response.served_platform == Platform::kAndroid;
  }
  EXPECT_TRUE(recovered) << "half-open probe never closed the breaker";

  const GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.breaker_opens, 1u);  // probe succeeded: no reopen
  EXPECT_EQ(stats.totals.failed, 0u);
  EXPECT_EQ(stats.totals.ok, stats.totals.accepted);

  // Closed again: the primary serves directly.
  const Response after = call();
  ASSERT_TRUE(after.ok) << after.message;
  EXPECT_EQ(after.served_platform, Platform::kAndroid);
  EXPECT_EQ(after.attempts, 1);
}

// ---------------------------------------------------------------------------
// Hedging
// ---------------------------------------------------------------------------

TEST(Failover, HedgedRequestWinsAndBooksExactlyOneCompletion) {
  GatewayConfig config = BaseConfig(1);
  config.failover.hedging = true;  // hedging alone, no plain failover
  config.failover.fault_plan = MustParse("android:httpGet:hang:p=1:max=1");
  Gateway gw(config);

  Request request = HttpGetRequest(1);
  request.retry.max_attempts = 1;
  const Response response = gw.Call(std::move(request));
  EXPECT_TRUE(response.ok) << response.message;
  EXPECT_EQ(response.payload, "pong");
  EXPECT_NE(response.served_platform, Platform::kAndroid);
  EXPECT_EQ(response.attempts, 2);  // hung primary + winning hedge

  GatewaySnapshot stats = gw.Stats();
  EXPECT_EQ(stats.totals.hedges_fired, 1u);
  EXPECT_EQ(stats.totals.hedges_won, 1u);
  EXPECT_EQ(stats.totals.failovers, 0u);  // a hedge is not a failover
  // Exactly one completion booked: the abandoned primary contributes no
  // ok/failed/timed_out of its own.
  EXPECT_EQ(stats.totals.ok, 1u);
  EXPECT_EQ(stats.totals.failed, 0u);
  EXPECT_EQ(stats.totals.timed_out, 0u);
  EXPECT_EQ(stats.totals.completed(), 1u);
  EXPECT_EQ(stats.totals.accepted, 1u);

  // The hang rule is exhausted (max=1): the primary now serves directly
  // and no further hedges fire.
  Request again = HttpGetRequest(1);
  again.retry.max_attempts = 1;
  const Response direct = gw.Call(std::move(again));
  EXPECT_TRUE(direct.ok) << direct.message;
  EXPECT_EQ(direct.served_platform, Platform::kAndroid);
  EXPECT_EQ(direct.attempts, 1);
  EXPECT_EQ(gw.Stats().totals.hedges_fired, 1u);
}

TEST(Failover, OtherTransientsDoNotHedgeWhenOnlyHedgingIsOn) {
  GatewayConfig config = BaseConfig(1);
  config.failover.hedging = true;  // failover stays off
  config.failover.fault_plan = MustParse("android:httpGet:error=timeout:p=1");
  Gateway gw(config);

  Request request = HttpGetRequest(1);
  request.retry.max_attempts = 1;
  const Response response = gw.Call(std::move(request));
  // A plain transient error is not a hang: with failover off it falls
  // back to the retry plane, which is out of rounds here.
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kTimeout);
  EXPECT_EQ(response.attempts, 1);
  EXPECT_EQ(gw.Stats().totals.hedges_fired, 0u);
}

// ---------------------------------------------------------------------------
// Properties across the sweep
// ---------------------------------------------------------------------------

TEST(Failover, SweepPreservesPerRequestPropertiesAndSkipsIncompatible) {
  GatewayConfig config = BaseConfig(1);
  config.failover.failover = true;
  Gateway gw(config);

  // Strict s60-only criteria the simulated provider cannot satisfy in
  // low-power mode: the primary fails with a genuine transient
  // kLocationUnavailable, and the sweep then discovers neither android
  // nor iphone understands these properties (skip, not a failure).
  Request strict;
  strict.client_id = 1;
  strict.platform = Platform::kS60;
  strict.op = Op::kGetLocation;
  strict.properties.emplace_back("horizontalAccuracy", 10LL);
  strict.properties.emplace_back("powerConsumption", "low");
  strict.retry.max_attempts = 1;
  const Response response = gw.Call(std::move(strict));
  EXPECT_FALSE(response.ok);
  // The property-incompatible candidates were swept over, so this is a
  // shard-wide exhaustion — but the underlying error is preserved in the
  // message, and no candidate surfaced its kIllegalArgument.
  EXPECT_EQ(response.error, ErrorCode::kAllBackendsFailed);
  EXPECT_NE(response.message.find("all backends failed"), std::string::npos);

  // ScopedPropertyRestore must have unwound every candidate the sweep
  // touched: the same proxies now serve property-less requests cleanly.
  const Platform platforms[] = {Platform::kS60, Platform::kAndroid,
                                Platform::kIphone};
  for (Platform platform : platforms) {
    Request plain;
    plain.client_id = 1;
    plain.platform = platform;
    plain.op = Op::kGetLocation;
    const Response ok = gw.Call(std::move(plain));
    EXPECT_TRUE(ok.ok) << gateway::ToString(platform) << ": " << ok.message;
  }
}

TEST(Failover, PrimaryPropertyErrorStaysTerminal) {
  GatewayConfig config = BaseConfig(1);
  config.failover.failover = true;
  Gateway gw(config);

  // An unknown property on the PRIMARY is the caller's bug, not a reason
  // to shop the request around other platforms.
  Request request = HttpGetRequest(1);
  request.properties.emplace_back("definitelyNotAProperty", 1LL);
  const Response response = gw.Call(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ErrorCode::kIllegalArgument);
  EXPECT_EQ(response.attempts, 1);
  EXPECT_EQ(gw.Stats().totals.failovers, 0u);
}

// ---------------------------------------------------------------------------
// The acceptance bar: availability under 30% injected faults
// ---------------------------------------------------------------------------

TEST(Failover, ThirtyPercentFaultsAvailabilityRecoversWithFailover) {
  gateway::TrafficConfig traffic;
  traffic.producers = 2;
  traffic.requests_per_producer = 300;
  traffic.seed = 99;
  traffic.retry.max_attempts = 1;  // failover, not retries, is on trial
  traffic.mix.android = 1;         // all primaries on the faulted platform
  traffic.mix.s60 = 0;
  traffic.mix.iphone = 0;

  const char* kPlan = "seed=5;android:*:error=timeout:p=0.3";

  double availability_without = 0;
  {
    GatewayConfig config = BaseConfig(2);
    config.failover.fault_plan = MustParse(kPlan);
    Gateway gw(config);
    const gateway::TrafficReport report = RunTraffic(gw, traffic);
    ASSERT_EQ(report.ok + report.failed + report.shed + report.timed_out,
              report.submitted);
    availability_without =
        static_cast<double>(report.ok) / static_cast<double>(report.submitted);
    EXPECT_GT(gw.Stats().totals.faults_injected, 0u);
  }

  double availability_with = 0;
  {
    GatewayConfig config = BaseConfig(2);
    config.failover.failover = true;
    config.failover.fault_plan = MustParse(kPlan);
    Gateway gw(config);
    const gateway::TrafficReport report = RunTraffic(gw, traffic);
    ASSERT_EQ(report.ok + report.failed + report.shed + report.timed_out,
              report.submitted);
    availability_with =
        static_cast<double>(report.ok) / static_cast<double>(report.submitted);
    const GatewaySnapshot stats = gw.Stats();
    EXPECT_GT(stats.totals.failovers, 0u);
    EXPECT_EQ(stats.totals.accepted, stats.totals.completed());
  }

  // ~30% of dispatches fault: without failover availability collapses to
  // roughly the fault rate's complement; with it the sweep absorbs every
  // injected fault.
  EXPECT_LT(availability_without, 0.9);
  EXPECT_GE(availability_with, 0.99)
      << "failover failed the ISSUE acceptance bar";
}

// ---------------------------------------------------------------------------
// Interner growth under soak (never-evicts contract)
// ---------------------------------------------------------------------------

TEST(Interner, GlobalInternerStaysBoundedUnderGatewaySoak) {
  GatewayConfig config = BaseConfig(2);
  Gateway gw(config);

  gateway::TrafficConfig warmup;
  warmup.producers = 1;
  warmup.requests_per_producer = 200;
  warmup.seed = 7;
  warmup.location_property_values = 8;  // bounded by design (traffic.h)
  (void)RunTraffic(gw, warmup);

  // Everything the traffic shape can intern has been interned above; a
  // 10x longer soak over fresh seeds must not add a single symbol — the
  // global interner never evicts, so any growth here is a leak that
  // compounds for a process's lifetime (docs/failure-semantics.md).
  const std::size_t after_warmup = support::Interner::Global().size();
  gateway::TrafficConfig soak = warmup;
  soak.producers = 2;
  soak.requests_per_producer = 1000;
  soak.seed = 8675309;
  const gateway::TrafficReport report = RunTraffic(gw, soak);
  EXPECT_EQ(report.ok + report.failed + report.shed + report.timed_out,
            report.submitted);

  EXPECT_EQ(support::Interner::Global().size(), after_warmup)
      << "global interner grew during a steady-state soak";
}

}  // namespace
}  // namespace mobivine
