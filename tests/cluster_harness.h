// Multi-process harness for the M-Cluster tests: fork/exec the real
// cluster_controller / cluster_worker binaries (paths injected by CMake
// as compile definitions), parse their "PORT=<n>\nREADY\n" handshake,
// and poll the controller's control port for plan convergence so tests
// wait on STATE, not on sleeps.
//
// Processes are loopback-only children of the test process; Cluster
// teardown SIGKILLs whatever a test left running, so a failing assertion
// never leaks orphans into the ctest run.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/control.h"
#include "cluster/plan.h"

namespace mobivine::cluster_testing {

struct Process {
  pid_t pid = -1;
  int stdout_fd = -1;         ///< read end of the child's stdout pipe
  std::uint16_t port = 0;     ///< from the PORT= handshake line
  std::string name;           ///< for failure messages
};

/// fork/exec `binary` with `args` (argv[0] is derived from the path),
/// then block until the child prints PORT= and READY (or `timeout_ms`
/// passes / the child exits). False leaves *out untouched except name.
[[nodiscard]] bool SpawnAndAwaitReady(const std::string& binary,
                                      const std::vector<std::string>& args,
                                      Process* out, std::string* error,
                                      int timeout_ms = 10'000);

/// SIGKILL — the crash case: no leave, no drain, no goodbye.
void Kill(Process& process);

/// SIGTERM and reap; returns the exit code (-1: signal death/timeout).
int Terminate(Process& process, int timeout_ms = 10'000);

/// Reap a child that should exit on its own. -1 on timeout (leaves it).
int AwaitExit(Process& process, int timeout_ms = 10'000);

/// Poll the controller (kPlanGet over a throwaway ControlChannel) until
/// `predicate(plan)` holds. False on timeout; `out` holds the last plan
/// seen either way.
[[nodiscard]] bool WaitForPlan(
    std::uint16_t controller_port,
    const std::function<bool(const cluster::PartitionPlan&)>& predicate,
    cluster::PartitionPlan* out, int timeout_ms = 10'000);

/// Convenience predicate wrapper: plan has exactly `n` members.
[[nodiscard]] bool WaitForMembers(std::uint16_t controller_port, std::size_t n,
                                  cluster::PartitionPlan* out,
                                  int timeout_ms = 10'000);

}  // namespace mobivine::cluster_testing
