#include <gtest/gtest.h>

#include "core/descriptor/proxy_descriptor.h"
#include "core/descriptor/schemas.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace mobivine::core {
namespace {

// ---------------------------------------------------------------------------
// The shipped descriptor set
// ---------------------------------------------------------------------------

const DescriptorStore& ShippedStore() {
  static const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

TEST(ShippedDescriptors, LoadsAllProxies) {
  const auto& store = ShippedStore();
  EXPECT_EQ(store.size(), 6u);
  EXPECT_EQ(store.ProxyNames(),
            (std::vector<std::string>{"Calendar", "Call", "Http", "Location",
                                      "Pim", "Sms"}));
}

TEST(ShippedDescriptors, PlatformCoverageMatchesPaper) {
  const auto& store = ShippedStore();
  // Location / Sms / Http / Pim on every platform (incl. the iphone
  // extension); Call has no s60 binding.
  for (const char* name : {"Location", "Sms", "Http", "Pim"}) {
    const ProxyDescriptor* descriptor = store.Find(name);
    ASSERT_NE(descriptor, nullptr) << name;
    EXPECT_TRUE(descriptor->SupportsPlatform("android")) << name;
    EXPECT_TRUE(descriptor->SupportsPlatform("webview")) << name;
    EXPECT_TRUE(descriptor->SupportsPlatform("s60")) << name;
    EXPECT_TRUE(descriptor->SupportsPlatform("iphone")) << name;
  }
  const ProxyDescriptor* call = store.Find("Call");
  ASSERT_NE(call, nullptr);
  EXPECT_TRUE(call->SupportsPlatform("android"));
  EXPECT_TRUE(call->SupportsPlatform("webview"));
  EXPECT_TRUE(call->SupportsPlatform("iphone"));
  EXPECT_FALSE(call->SupportsPlatform("s60"));

  // Calendar mirrors the asymmetry on the other side: everywhere except
  // iPhone OS (no public calendar API in 2009).
  const ProxyDescriptor* calendar = store.Find("Calendar");
  ASSERT_NE(calendar, nullptr);
  EXPECT_TRUE(calendar->SupportsPlatform("android"));
  EXPECT_TRUE(calendar->SupportsPlatform("s60"));
  EXPECT_TRUE(calendar->SupportsPlatform("webview"));
  EXPECT_FALSE(calendar->SupportsPlatform("iphone"));
}

TEST(ShippedDescriptors, IPhoneExtensionUsesObjCPlanes) {
  // The §3.3 extension invariant: the iphone bindings reference the new
  // "objc" syntactic planes; the original java/javascript planes are
  // untouched.
  for (const char* name : {"Location", "Sms", "Http", "Call", "Pim"}) {
    const ProxyDescriptor* descriptor = ShippedStore().Find(name);
    const BindingPlane* binding = descriptor->FindBinding("iphone");
    ASSERT_NE(binding, nullptr) << name;
    EXPECT_EQ(binding->language, "objc") << name;
    EXPECT_NE(descriptor->FindSyntactic("objc"), nullptr) << name;
    EXPECT_NE(descriptor->FindSyntactic("java"), nullptr) << name;
  }
}

TEST(ShippedDescriptors, AllValidate) {
  const auto& store = ShippedStore();
  for (const std::string& name : store.ProxyNames()) {
    EXPECT_TRUE(store.Find(name)->Validate().empty()) << name;
  }
}

TEST(ShippedDescriptors, S60LocationHasCriteriaProperties) {
  const BindingPlane* binding =
      ShippedStore().Find("Location")->FindBinding("s60");
  ASSERT_NE(binding, nullptr);
  for (const char* property :
       {"preferredResponseTime", "horizontalAccuracy", "verticalAccuracy",
        "powerConsumption", "costAllowed"}) {
    EXPECT_NE(binding->FindProperty(property), nullptr) << property;
  }
  const PropertySpec* power = binding->FindProperty("powerConsumption");
  EXPECT_EQ(power->allowed_values.size(), 3u);
}

TEST(ShippedDescriptors, AndroidBindingsRequireContext) {
  for (const char* proxy : {"Location", "Sms"}) {
    const BindingPlane* binding =
        ShippedStore().Find(proxy)->FindBinding("android");
    const PropertySpec* context = binding->FindProperty("context");
    ASSERT_NE(context, nullptr) << proxy;
    EXPECT_TRUE(context->required) << proxy;
    EXPECT_EQ(context->type, "handle") << proxy;
  }
}

TEST(ShippedDescriptors, ExceptionSetsDifferPerPlatform) {
  const ProxyDescriptor* location = ShippedStore().Find("Location");
  auto android_ex = location->FindBinding("android")->exceptions;
  auto s60_ex = location->FindBinding("s60")->exceptions;
  // S60 declares LocationException; Android does not have it.
  auto has = [](const std::vector<ExceptionSpec>& list, const char* type) {
    for (const auto& e : list) {
      if (e.native_type.find(type) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(s60_ex, "LocationException"));
  EXPECT_FALSE(has(android_ex, "LocationException"));
}

// ---------------------------------------------------------------------------
// Round-trip: model -> XML -> model
// ---------------------------------------------------------------------------

TEST(DescriptorRoundTrip, SemanticPlane) {
  const SemanticPlane& original = ShippedStore().Find("Location")->semantic();
  xml::NodePtr serialized = ToXml(original);
  EXPECT_TRUE(SemanticSchema().Validate(*serialized).empty());
  SemanticPlane reparsed = ParseSemantic(*serialized);
  EXPECT_EQ(reparsed.interface_name, original.interface_name);
  ASSERT_EQ(reparsed.methods.size(), original.methods.size());
  for (size_t i = 0; i < original.methods.size(); ++i) {
    EXPECT_EQ(reparsed.methods[i].name, original.methods[i].name);
    EXPECT_EQ(reparsed.methods[i].parameters.size(),
              original.methods[i].parameters.size());
    EXPECT_EQ(reparsed.methods[i].callback_name,
              original.methods[i].callback_name);
    EXPECT_EQ(reparsed.methods[i].return_dimension,
              original.methods[i].return_dimension);
  }
}

TEST(DescriptorRoundTrip, BindingPlane) {
  const BindingPlane* original =
      ShippedStore().Find("Location")->FindBinding("s60");
  xml::NodePtr serialized = ToXml(*original);
  EXPECT_TRUE(BindingJavaSchema().Validate(*serialized).empty())
      << xml::WriteNode(*serialized);
  BindingPlane reparsed = ParseBinding(*serialized);
  EXPECT_EQ(reparsed.platform, "s60");
  EXPECT_EQ(reparsed.implementation_class, original->implementation_class);
  EXPECT_EQ(reparsed.exceptions.size(), original->exceptions.size());
  EXPECT_EQ(reparsed.properties.size(), original->properties.size());
}

TEST(DescriptorRoundTrip, SyntacticPlane) {
  const SyntacticPlane* original =
      ShippedStore().Find("Sms")->FindSyntactic("javascript");
  ASSERT_NE(original, nullptr);
  xml::NodePtr serialized = ToXml(*original);
  EXPECT_TRUE(SyntacticJavaScriptSchema().Validate(*serialized).empty());
  SyntacticPlane reparsed = ParseSyntactic(*serialized);
  EXPECT_EQ(reparsed.language, "javascript");
  ASSERT_EQ(reparsed.methods.size(), original->methods.size());
  EXPECT_EQ(reparsed.methods[0].parameter_types,
            original->methods[0].parameter_types);
}

// ---------------------------------------------------------------------------
// Validation failures
// ---------------------------------------------------------------------------

DescriptorStore StoreFromDocs(const std::vector<std::string>& docs) {
  DescriptorStore store;
  for (size_t i = 0; i < docs.size(); ++i) {
    xml::Document doc = xml::Parse(docs[i]);
    store.AddDocument(*doc.root, "doc" + std::to_string(i));
  }
  store.Finalize();
  return store;
}

TEST(DescriptorValidation, OrphanPlaneRejected) {
  EXPECT_THROW(StoreFromDocs({R"(<binding proxy="Ghost" platform="android"
      language="java"><implementation class="X"/></binding>)"}),
               std::runtime_error);
}

TEST(DescriptorValidation, SchemaViolationRejected) {
  // method without name attribute.
  EXPECT_THROW(StoreFromDocs({R"(<proxy name="P"><method/></proxy>)"}),
               std::runtime_error);
}

TEST(DescriptorValidation, ParameterCountMismatchRejected) {
  EXPECT_THROW(StoreFromDocs({
                   R"(<proxy name="P"><method name="m">
          <parameter name="a" dimension="x"/>
          <parameter name="b" dimension="y"/>
        </method></proxy>)",
                   R"(<syntax proxy="P" language="java">
          <method name="m"><param type="double"/></method></syntax>)",
               }),
               std::runtime_error);
}

TEST(DescriptorValidation, UnknownErrorCodeRejected) {
  EXPECT_THROW(
      StoreFromDocs({
          R"(<proxy name="P"><method name="m"/></proxy>)",
          R"(<syntax proxy="P" language="java"><method name="m"/></syntax>)",
          R"(<binding proxy="P" platform="android" language="java">
          <implementation class="X"/>
          <exception native="Weird" code="not-a-code"/></binding>)",
      }),
      std::runtime_error);
}

TEST(DescriptorValidation, BindingWithoutSyntacticPlaneRejected) {
  EXPECT_THROW(StoreFromDocs({
                   R"(<proxy name="P"><method name="m"/></proxy>)",
                   R"(<binding proxy="P" platform="android" language="java">
          <implementation class="X"/></binding>)",
               }),
               std::runtime_error);
}

TEST(DescriptorValidation, DefaultOutsideAllowedValuesRejected) {
  EXPECT_THROW(
      StoreFromDocs({
          R"(<proxy name="P"><method name="m"/></proxy>)",
          R"(<syntax proxy="P" language="java"><method name="m"/></syntax>)",
          R"(<binding proxy="P" platform="android" language="java">
          <implementation class="X"/>
          <property name="mode" type="string" default="zzz">
            <allowedValue>a</allowedValue><allowedValue>b</allowedValue>
          </property></binding>)",
      }),
      std::runtime_error);
}

TEST(DescriptorValidation, PlanesArrivingBeforeSemanticAreAttached) {
  // Binding first, then syntax, then semantic: still assembles.
  DescriptorStore store = StoreFromDocs({
      R"(<binding proxy="P" platform="android" language="java">
        <implementation class="X"/></binding>)",
      R"(<syntax proxy="P" language="java"><method name="m"/></syntax>)",
      R"(<proxy name="P"><method name="m"/></proxy>)",
  });
  const ProxyDescriptor* descriptor = store.Find("P");
  ASSERT_NE(descriptor, nullptr);
  EXPECT_TRUE(descriptor->SupportsPlatform("android"));
  EXPECT_NE(descriptor->FindSyntactic("java"), nullptr);
}

TEST(Schemas, SchemaForDispatch) {
  xml::Document semantic = xml::Parse("<proxy name=\"X\"/>");
  EXPECT_EQ(SchemaFor(*semantic.root), &SemanticSchema());
  xml::Document java = xml::Parse("<syntax proxy=\"X\" language=\"java\"/>");
  EXPECT_EQ(SchemaFor(*java.root), &SyntacticJavaSchema());
  xml::Document js =
      xml::Parse("<syntax proxy=\"X\" language=\"javascript\"/>");
  EXPECT_EQ(SchemaFor(*js.root), &SyntacticJavaScriptSchema());
  xml::Document binding = xml::Parse(
      "<binding proxy=\"X\" platform=\"s60\" language=\"java\"/>");
  EXPECT_EQ(SchemaFor(*binding.root), &BindingJavaSchema());
  xml::Document unknown = xml::Parse("<wat/>");
  EXPECT_EQ(SchemaFor(*unknown.root), nullptr);
}

}  // namespace
}  // namespace mobivine::core
