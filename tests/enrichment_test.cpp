#include <gtest/gtest.h>

#include "core/bindings/android_bindings.h"
#include "core/descriptor/proxy_descriptor.h"
#include "core/enrichment.h"
#include "core/registry.h"
#include "support/geo_units.h"
#include "tests/test_util.h"

namespace mobivine::core {
namespace {

using mobivine::testing::kBaseLat;
using mobivine::testing::MakeDevice;

const DescriptorStore& Store() {
  static const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

struct Fixture {
  Fixture() : dev(MakeDevice()), platform(*dev), registry(&Store()) {
    platform.grantPermission(android::permissions::kFineLocation);
    platform.grantPermission(android::permissions::kSendSms);
    platform.grantPermission(android::permissions::kCallPhone);
  }
  std::unique_ptr<device::MobileDevice> dev;
  android::AndroidPlatform platform;
  ProxyRegistry registry;
};

class RecordingCall : public CallListener {
 public:
  void callStateChanged(CallProgress progress) override {
    states.push_back(progress);
  }
  std::vector<CallProgress> states;
};

// ---------------------------------------------------------------------------
// Output-format enrichment (degrees/radians) — paper §3.3
// ---------------------------------------------------------------------------

TEST(Enrichment, LocationUnitsRadians) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  proxy->setProperty("context", &fx.platform.application_context());

  Location degrees = proxy->getLocation();
  proxy->setAngleUnit(AngleUnit::kRadians);
  Location radians = proxy->getLocation();
  EXPECT_NEAR(radians.latitude, support::DegreesToRadians(degrees.latitude),
              0.01);
  EXPECT_LT(radians.latitude, 1.0);  // ~0.5 rad vs ~28.5 deg
  EXPECT_GT(proxy->meter().count(Op::kEnrichment), 0u);
}

// ---------------------------------------------------------------------------
// Call retry enrichment — paper §3.3
// ---------------------------------------------------------------------------

TEST(Enrichment, RetryRedialsUnreachableCallee) {
  Fixture fx;
  RetryingCallProxy proxy(fx.registry.CreateCallProxy(fx.platform),
                          fx.dev->scheduler(), /*max_retries=*/2,
                          sim::SimTime::Seconds(1));
  RecordingCall listener;
  EXPECT_TRUE(proxy.makeCall("+10000000", &listener));
  fx.dev->RunFor(sim::SimTime::Seconds(30));
  EXPECT_EQ(proxy.retries_used(), 2);
  int failures = 0;
  for (CallProgress state : listener.states) {
    if (state == CallProgress::kFailed) ++failures;
  }
  EXPECT_EQ(failures, 3);  // initial + 2 retries, all reported
}

TEST(Enrichment, RetrySucceedsWhenCalleeAppears) {
  Fixture fx;
  RetryingCallProxy proxy(fx.registry.CreateCallProxy(fx.platform),
                          fx.dev->scheduler(), /*max_retries=*/3,
                          sim::SimTime::Seconds(1));
  RecordingCall listener;
  proxy.makeCall("+17770000", &listener);
  // Callee registers between attempts (e.g. phone switched on).
  fx.dev->scheduler().ScheduleAfter(sim::SimTime::Millis(1500), [&] {
    fx.dev->modem().RegisterSubscriber("+17770000");
  });
  fx.dev->RunFor(sim::SimTime::Seconds(30));
  ASSERT_FALSE(listener.states.empty());
  EXPECT_EQ(listener.states.back(), CallProgress::kConnected);
  EXPECT_GE(proxy.retries_used(), 1);
}

TEST(Enrichment, NoRetryAfterManualEndCall) {
  Fixture fx;
  RetryingCallProxy proxy(fx.registry.CreateCallProxy(fx.platform),
                          fx.dev->scheduler(), /*max_retries=*/5,
                          sim::SimTime::Seconds(1));
  RecordingCall listener;
  proxy.makeCall("+10000000", &listener);
  proxy.endCall();
  fx.dev->RunFor(sim::SimTime::Seconds(30));
  EXPECT_EQ(proxy.retries_used(), 0);
}

// ---------------------------------------------------------------------------
// Access-control enrichment — paper §3.3
// ---------------------------------------------------------------------------

TEST(Enrichment, PolicyDeniesInterface) {
  Fixture fx;
  AccessPolicy policy;  // nothing allowed
  SecureSmsProxy proxy(fx.registry.CreateSmsProxy(fx.platform), policy,
                       fx.dev->scheduler());
  try {
    proxy.sendTextMessage("+15550123", "x", nullptr);
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kSecurity);
  }
}

TEST(Enrichment, PolicyDestinationPrefixes) {
  Fixture fx;
  AccessPolicy policy;
  policy.AllowInterface("Sms");
  policy.AllowDestinationPrefix("+1555");
  SecureSmsProxy proxy(fx.registry.CreateSmsProxy(fx.platform), policy,
                       fx.dev->scheduler());
  proxy.setProperty("context", &fx.platform.application_context());
  EXPECT_GT(proxy.sendTextMessage("+15550123", "ok", nullptr), 0);
  EXPECT_THROW(proxy.sendTextMessage("+4400000", "nope", nullptr), ProxyError);
}

TEST(Enrichment, PolicyGuardsCallAndLocation) {
  Fixture fx;
  AccessPolicy policy;
  policy.AllowInterface("Location");
  SecureCallProxy call(fx.registry.CreateCallProxy(fx.platform), policy,
                       fx.dev->scheduler());
  EXPECT_THROW(call.makeCall("+15550123", nullptr), ProxyError);

  SecureLocationProxy location(fx.registry.CreateLocationProxy(fx.platform),
                               policy, fx.dev->scheduler());
  location.setProperty("context", &fx.platform.application_context());
  EXPECT_NO_THROW((void)location.getLocation());
}

// ---------------------------------------------------------------------------
// Authentication enrichment — paper §3.3
// ---------------------------------------------------------------------------

/// A server with a token endpoint and a protected resource; tokens can be
/// invalidated to force the 401-refresh path.
struct AuthServer {
  int issued = 0;
  std::string current_token;

  void AttachTo(device::SimNetwork& network) {
    network.RegisterHost("auth.example", [this](const device::HttpRequest& r) {
      if (r.url.path == "/token") {
        auto params = device::ParseQuery(r.body);
        for (const auto& [key, value] : params) {
          if (key == "credentials" && value == "agent:secret") {
            current_token = "tok-" + std::to_string(++issued);
            return device::HttpResponse::Ok(current_token);
          }
        }
        return device::HttpResponse{401, "Unauthorized", {}, ""};
      }
      if (r.url.path == "/protected") {
        const std::string auth = r.headers.GetOr("Authorization", "");
        if (auth == "Bearer " + current_token && !current_token.empty()) {
          return device::HttpResponse::Ok("secret-data");
        }
        return device::HttpResponse{401, "Unauthorized", {}, ""};
      }
      return device::HttpResponse::NotFound();
    });
  }
};

TEST(Enrichment, AuthFetchesTokenOnceAndAttachesIt) {
  Fixture fx;
  fx.platform.grantPermission(android::permissions::kInternet);
  AuthServer server;
  server.AttachTo(fx.dev->network());

  AuthenticatingHttpProxy http(fx.registry.CreateHttpProxy(fx.platform),
                               "http://auth.example/token", "agent:secret",
                               fx.dev->scheduler());
  EXPECT_EQ(http.get("http://auth.example/protected").body, "secret-data");
  EXPECT_EQ(http.get("http://auth.example/protected").body, "secret-data");
  EXPECT_EQ(http.token_fetches(), 1);  // token reused across requests
}

TEST(Enrichment, AuthRefreshesOn401AndRetriesOnce) {
  Fixture fx;
  fx.platform.grantPermission(android::permissions::kInternet);
  AuthServer server;
  server.AttachTo(fx.dev->network());
  AuthenticatingHttpProxy http(fx.registry.CreateHttpProxy(fx.platform),
                               "http://auth.example/token", "agent:secret",
                               fx.dev->scheduler());
  EXPECT_EQ(http.get("http://auth.example/protected").body, "secret-data");
  // Server-side invalidation: the next exchange hits 401, refreshes and
  // succeeds transparently.
  server.current_token = "revoked";
  EXPECT_EQ(http.get("http://auth.example/protected").body, "secret-data");
  EXPECT_EQ(http.token_fetches(), 2);
}

TEST(Enrichment, AuthBadCredentialsUniformSecurityError) {
  Fixture fx;
  fx.platform.grantPermission(android::permissions::kInternet);
  AuthServer server;
  server.AttachTo(fx.dev->network());
  AuthenticatingHttpProxy http(fx.registry.CreateHttpProxy(fx.platform),
                               "http://auth.example/token", "agent:wrong",
                               fx.dev->scheduler());
  try {
    (void)http.get("http://auth.example/protected");
    FAIL();
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kSecurity);
  }
}

TEST(Enrichment, AuthComposesAcrossPlatforms) {
  // The same decorator over the S60 binding — enrichment is
  // platform-neutral by construction.
  auto dev = MakeDevice();
  s60::S60Platform platform(*dev);
  platform.grantPermission(s60::permissions::kHttp);
  AuthServer server;
  server.AttachTo(dev->network());
  ProxyRegistry registry(&Store());
  AuthenticatingHttpProxy http(registry.CreateHttpProxy(platform),
                               "http://auth.example/token", "agent:secret",
                               dev->scheduler());
  EXPECT_EQ(http.get("http://auth.example/protected").body, "secret-data");
}

TEST(Enrichment, PolicyDeniesBeforePlatformTouched) {
  Fixture fx;
  // Even with the platform permission revoked, the policy check fires
  // first — no android::SecurityException leaks through.
  fx.platform.revokePermission(android::permissions::kSendSms);
  AccessPolicy policy;
  SecureSmsProxy proxy(fx.registry.CreateSmsProxy(fx.platform), policy,
                       fx.dev->scheduler());
  try {
    proxy.sendTextMessage("+15550123", "x", nullptr);
    FAIL();
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kSecurity);
    EXPECT_TRUE(error.platform().empty());  // raised by the MobiVine layer
  }
}

}  // namespace
}  // namespace mobivine::core
