#include "tests/cluster_harness.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "wire/client.h"

namespace mobivine::cluster_testing {

namespace {

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool SpawnAndAwaitReady(const std::string& binary,
                        const std::vector<std::string>& args, Process* out,
                        std::string* error, int timeout_ms) {
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC) != 0) {
    if (error) *error = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    if (error) *error = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (pid == 0) {
    // Child: stdout -> pipe, exec the binary. _exit on any failure — the
    // parent reads EOF and reports.
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);
  }

  ::close(pipe_fds[1]);
  out->pid = pid;
  out->stdout_fd = pipe_fds[0];
  if (out->name.empty()) out->name = binary;

  // Read the handshake: lines until READY, harvesting PORT=.
  std::string buffered;
  const std::uint64_t deadline = NowMs() + static_cast<std::uint64_t>(timeout_ms);
  while (true) {
    const std::size_t ready_at = buffered.find("READY\n");
    if (ready_at != std::string::npos) break;
    const std::uint64_t now = NowMs();
    if (now >= deadline) {
      if (error) *error = out->name + ": no READY within timeout";
      return false;
    }
    pollfd pfd{out->stdout_fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(deadline - now));
    if (rc <= 0) continue;
    char chunk[256];
    const ssize_t n = ::read(out->stdout_fd, chunk, sizeof chunk);
    if (n == 0) {
      if (error) *error = out->name + ": exited before READY";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = out->name + ": read: " + std::strerror(errno);
      return false;
    }
    buffered.append(chunk, static_cast<std::size_t>(n));
  }

  const std::size_t port_at = buffered.find("PORT=");
  if (port_at == std::string::npos) {
    if (error) *error = out->name + ": READY without PORT=";
    return false;
  }
  out->port = static_cast<std::uint16_t>(
      std::strtoul(buffered.c_str() + port_at + 5, nullptr, 10));
  return true;
}

void Kill(Process& process) {
  if (process.pid > 0) {
    ::kill(process.pid, SIGKILL);
    ::waitpid(process.pid, nullptr, 0);
    process.pid = -1;
  }
  if (process.stdout_fd >= 0) {
    ::close(process.stdout_fd);
    process.stdout_fd = -1;
  }
}

int AwaitExit(Process& process, int timeout_ms) {
  if (process.pid <= 0) return -1;
  const std::uint64_t deadline = NowMs() + static_cast<std::uint64_t>(timeout_ms);
  while (true) {
    int status = 0;
    const pid_t reaped = ::waitpid(process.pid, &status, WNOHANG);
    if (reaped == process.pid) {
      process.pid = -1;
      if (process.stdout_fd >= 0) {
        ::close(process.stdout_fd);
        process.stdout_fd = -1;
      }
      return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    if (NowMs() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

int Terminate(Process& process, int timeout_ms) {
  if (process.pid <= 0) return -1;
  ::kill(process.pid, SIGTERM);
  const int code = AwaitExit(process, timeout_ms);
  if (process.pid > 0) Kill(process);  // SIGTERM ignored: stop leaking it
  return code;
}

bool WaitForPlan(
    std::uint16_t controller_port,
    const std::function<bool(const cluster::PartitionPlan&)>& predicate,
    cluster::PartitionPlan* out, int timeout_ms) {
  const std::uint64_t deadline = NowMs() + static_cast<std::uint64_t>(timeout_ms);
  wire::ConnectOptions options;
  options.connect_timeout = std::chrono::microseconds(500'000);
  while (NowMs() < deadline) {
    // A fresh channel per probe: the controller treats each as a cheap
    // anonymous subscriber and drops it when we close.
    cluster::ControlChannel channel;
    std::string error;
    if (channel.Connect(controller_port, options, &error)) {
      cluster::ControlMessage request;
      request.op = cluster::ControlOp::kPlanGet;
      cluster::ControlMessage reply;
      if (channel.Roundtrip(std::move(request), &reply, 500'000, &error) &&
          reply.op == cluster::ControlOp::kPlanPush) {
        if (out) *out = reply.plan;
        if (predicate(reply.plan)) return true;
      }
      channel.Close();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

bool WaitForMembers(std::uint16_t controller_port, std::size_t n,
                    cluster::PartitionPlan* out, int timeout_ms) {
  return WaitForPlan(
      controller_port,
      [n](const cluster::PartitionPlan& plan) {
        return plan.members.size() == n;
      },
      out, timeout_ms);
}

}  // namespace mobivine::cluster_testing
