// M-Cluster end-to-end: a real controller process and real worker
// processes (fork/exec, loopback TCP), driven deterministically — every
// wait is on observable state (plan membership, epochs, exit codes),
// never on bare sleeps.
//
// What these pin down:
//  * direct routing: a cluster::Client resolves owners from the plan and
//    talks straight to workers — zero wrong-worker bounces in steady
//    state, controller never on the data path;
//  * crash rebalance: SIGKILL a worker -> the controller detects death,
//    bumps the epoch, survivors absorb the keyspace, and EVERY
//    subsequent request still succeeds (the client re-routes in-band);
//  * rejoin: the same worker id comes back -> epoch bumps again, the
//    rejoiner reacquires key ranges and serves them;
//  * graceful leave: SIGTERM -> leave + fence + drain -> exit 0;
//  * M-Push: subscriptions follow the plan — a stale route is fenced
//    with kWrongWorker (epoch in the ack's start_cursor varint) and the
//    client re-subscribes against the real owner, carrying its cursor.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "cluster/client.h"
#include "cluster/plan.h"
#include "gateway/gateway.h"
#include "tests/cluster_harness.h"
#include "wire/client.h"
#include "wire/protocol.h"

namespace mobivine {
namespace {

using cluster::HashRing;
using cluster::PartitionPlan;
using cluster_testing::Process;

class ClusterEndToEnd : public ::testing::Test {
 protected:
  void StartController() {
    std::string error;
    controller_.name = "controller";
    ASSERT_TRUE(cluster_testing::SpawnAndAwaitReady(
        MOBIVINE_CLUSTER_CONTROLLER_BIN, {}, &controller_, &error))
        << error;
  }

  void StartWorker(std::uint64_t worker_id) {
    Process worker;
    worker.name = "worker-" + std::to_string(worker_id);
    std::string error;
    ASSERT_TRUE(cluster_testing::SpawnAndAwaitReady(
        MOBIVINE_CLUSTER_WORKER_BIN,
        {"--controller-port=" + std::to_string(controller_.port),
         "--worker-id=" + std::to_string(worker_id), "--shards=2"},
        &worker, &error))
        << error;
    workers_.push_back(worker);
  }

  void TearDown() override {
    for (Process& worker : workers_) cluster_testing::Kill(worker);
    cluster_testing::Kill(controller_);
  }

  static wire::WireRequest Ping(std::uint64_t client_id) {
    wire::WireRequest request;
    request.client_id = client_id;
    request.platform = gateway::Platform::kAndroid;
    request.op = gateway::Op::kHttpGet;
    request.target =
        std::string("http://") + gateway::kGatewayHttpHost + "/ping";
    return request;
  }

  Process controller_;
  std::vector<Process> workers_;
};

TEST_F(ClusterEndToEnd, ThreeWorkersServeDirectRoutes) {
  StartController();
  StartWorker(1);
  StartWorker(2);
  StartWorker(3);
  PartitionPlan plan;
  ASSERT_TRUE(cluster_testing::WaitForMembers(controller_.port, 3, &plan));

  cluster::ClientConfig config;
  config.controller_port = controller_.port;
  cluster::Client client(config);
  std::string error;
  ASSERT_TRUE(client.Start(&error)) << error;
  EXPECT_EQ(client.plan_epoch(), plan.epoch);

  // 120 ids spanning the keyspace: the ring sends them to all three
  // workers (proved against the plan), and every call succeeds.
  const HashRing ring(plan);
  std::unordered_set<std::uint64_t> owners;
  for (std::uint64_t id = 0; id < 120; ++id) {
    owners.insert(ring.OwnerFor(id));
    wire::WireResponse response;
    ASSERT_TRUE(client.Call(Ping(id), &response)) << "id " << id;
    EXPECT_EQ(response.status, wire::WireStatus::kOk)
        << "id " << id << ": " << response.body;
    EXPECT_EQ(response.body, "pong");
  }
  EXPECT_EQ(owners.size(), 3u) << "keyspace not spread over all workers";

  // Steady state is DIRECT: nothing bounced, nothing re-fetched beyond
  // the initial plan, the controller stayed off the data path.
  const cluster::ClientStats stats = client.Stats();
  EXPECT_EQ(stats.wrong_worker_retries, 0u);
  EXPECT_EQ(stats.transport_retries, 0u);
  EXPECT_EQ(stats.exhausted, 0u);
  EXPECT_EQ(stats.plan_refreshes, 1u);
  client.Stop();
}

TEST_F(ClusterEndToEnd, BatchSubmitCoalescesPerOwnerAndCompletesEach) {
  StartController();
  StartWorker(1);
  StartWorker(2);
  StartWorker(3);
  PartitionPlan plan;
  ASSERT_TRUE(cluster_testing::WaitForMembers(controller_.port, 3, &plan));

  cluster::ClientConfig config;
  config.controller_port = controller_.port;
  cluster::Client client(config);
  std::string error;
  ASSERT_TRUE(client.Start(&error)) << error;

  // One batch spanning all three owners (OwnerOf agrees with the plan's
  // ring), submitted as a single call: each request completes exactly
  // once, all kOk, and nothing bounced — the batch split along the same
  // routes Call() would have taken.
  const HashRing ring(plan);
  constexpr std::uint64_t kBatch = 120;
  std::vector<wire::WireRequest> requests;
  std::unordered_set<std::uint64_t> owners;
  for (std::uint64_t id = 0; id < kBatch; ++id) {
    EXPECT_EQ(client.OwnerOf(id), ring.OwnerFor(id)) << "id " << id;
    owners.insert(ring.OwnerFor(id));
    requests.push_back(Ping(id));
  }
  EXPECT_EQ(owners.size(), 3u) << "keyspace not spread over all workers";

  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t completions = 0, ok = 0;
  EXPECT_EQ(client.SubmitBatch(requests,
                               [&](const wire::WireResponse& response) {
                                 std::lock_guard<std::mutex> lock(mutex);
                                 ++completions;
                                 if (response.status == wire::WireStatus::kOk &&
                                     response.body == "pong") {
                                   ++ok;
                                 }
                                 cv.notify_one();
                               }),
            kBatch);
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return completions == kBatch; }));
  }
  EXPECT_EQ(ok, kBatch);

  const cluster::ClientStats stats = client.Stats();
  EXPECT_EQ(stats.calls, kBatch);
  EXPECT_EQ(stats.wrong_worker_retries, 0u);
  EXPECT_EQ(stats.transport_retries, 0u);
  EXPECT_EQ(stats.exhausted, 0u);
  client.Stop();
}

TEST_F(ClusterEndToEnd, KillWorkerRebalancesThenRejoinReacquires) {
  StartController();
  StartWorker(1);
  StartWorker(2);
  StartWorker(3);
  PartitionPlan plan3;
  ASSERT_TRUE(cluster_testing::WaitForMembers(controller_.port, 3, &plan3));

  cluster::ClientConfig config;
  config.controller_port = controller_.port;
  cluster::Client client(config);
  std::string error;
  ASSERT_TRUE(client.Start(&error)) << error;

  // Warm every route (connections to all three workers).
  for (std::uint64_t id = 0; id < 30; ++id) {
    wire::WireResponse response;
    ASSERT_TRUE(client.Call(Ping(id), &response));
    ASSERT_EQ(response.status, wire::WireStatus::kOk);
  }

  // Crash worker 2 — SIGKILL, no goodbye. The controller sees the
  // control connection drop and removes it: epoch bumps, two remain.
  cluster_testing::Kill(workers_[1]);
  PartitionPlan plan2;
  ASSERT_TRUE(cluster_testing::WaitForMembers(controller_.port, 2, &plan2));
  EXPECT_GT(plan2.epoch, plan3.epoch);
  for (const auto& member : plan2.members) {
    EXPECT_NE(member.worker_id, 2u);
  }

  // 100% of subsequent requests succeed — including the ids the dead
  // worker owned, which the client re-routes to survivors (transport
  // error or kWrongWorker in-band, then plan refresh, then retry).
  for (std::uint64_t id = 0; id < 120; ++id) {
    wire::WireResponse response;
    ASSERT_TRUE(client.Call(Ping(id), &response)) << "id " << id;
    EXPECT_EQ(response.status, wire::WireStatus::kOk)
        << "id " << id << ": " << response.body;
  }
  EXPECT_GE(client.plan_epoch(), plan2.epoch);

  // The same worker id rejoins: epoch bumps again and the rejoiner
  // reacquires (and serves) its key ranges.
  StartWorker(2);
  PartitionPlan plan3b;
  ASSERT_TRUE(cluster_testing::WaitForMembers(controller_.port, 3, &plan3b));
  EXPECT_GT(plan3b.epoch, plan2.epoch);

  const HashRing ring(plan3b);
  std::size_t served_by_rejoiner = 0;
  for (std::uint64_t id = 0; id < 120; ++id) {
    if (ring.OwnerFor(id) == 2) ++served_by_rejoiner;
    wire::WireResponse response;
    ASSERT_TRUE(client.Call(Ping(id), &response)) << "id " << id;
    EXPECT_EQ(response.status, wire::WireStatus::kOk)
        << "id " << id << ": " << response.body;
  }
  EXPECT_GT(served_by_rejoiner, 0u)
      << "rejoined worker owns no sampled keys — rebalance didn't return "
         "ranges";
  const cluster::ClientStats stats = client.Stats();
  EXPECT_EQ(stats.exhausted, 0u);
  client.Stop();
}

TEST_F(ClusterEndToEnd, SigtermLeavesDrainsAndExitsZero) {
  StartController();
  StartWorker(1);
  StartWorker(2);
  PartitionPlan plan;
  ASSERT_TRUE(cluster_testing::WaitForMembers(controller_.port, 2, &plan));

  cluster::ClientConfig config;
  config.controller_port = controller_.port;
  cluster::Client client(config);
  std::string error;
  ASSERT_TRUE(client.Start(&error)) << error;
  for (std::uint64_t id = 0; id < 20; ++id) {
    wire::WireResponse response;
    ASSERT_TRUE(client.Call(Ping(id), &response));
    ASSERT_EQ(response.status, wire::WireStatus::kOk);
  }

  // Graceful rotation: exit code 0 certifies leave + fence + full drain
  // (the worker exits 3 when the gateway failed to go quiescent).
  EXPECT_EQ(cluster_testing::Terminate(workers_[0]), 0);
  PartitionPlan plan1;
  ASSERT_TRUE(cluster_testing::WaitForMembers(controller_.port, 1, &plan1));
  EXPECT_GT(plan1.epoch, plan.epoch);
  EXPECT_EQ(plan1.members[0].worker_id, 2u);

  // The survivor owns everything; traffic keeps flowing.
  for (std::uint64_t id = 0; id < 40; ++id) {
    wire::WireResponse response;
    ASSERT_TRUE(client.Call(Ping(id), &response)) << "id " << id;
    EXPECT_EQ(response.status, wire::WireStatus::kOk);
  }
  const cluster::ClientStats stats = client.Stats();
  EXPECT_EQ(stats.exhausted, 0u);
  client.Stop();
}

// ---------------------------------------------------------------------------
// M-Push across the cluster: subscriptions follow the partition plan
// ---------------------------------------------------------------------------

namespace {
/// Collects one routed subscription's callbacks behind a condition
/// variable (same shape as the wire-level Subscriber helper).
struct PushSink {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<wire::WireSubscribeAck> acks;
  std::vector<wire::WireEvent> events;

  wire::WireClient::AckCallback OnAck() {
    return [this](const wire::WireSubscribeAck& ack) {
      std::lock_guard<std::mutex> lock(mutex);
      acks.push_back(ack);
      cv.notify_all();
    };
  }
  wire::WireClient::EventHandler OnEvent() {
    return [this](const wire::WireEvent& event) {
      std::lock_guard<std::mutex> lock(mutex);
      events.push_back(event);
      cv.notify_all();
    };
  }
  bool WaitForAck(int timeout_ms = 10'000) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return !acks.empty(); });
  }
  bool WaitForEvents(std::size_t n, int timeout_ms = 10'000) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return events.size() >= n; });
  }
};

wire::WireRequest SendSms(std::uint64_t client_id) {
  wire::WireRequest request;
  request.client_id = client_id;
  request.platform = gateway::Platform::kAndroid;
  request.op = gateway::Op::kSendSms;
  request.target = gateway::kGatewaySmsPeer;
  request.payload = "push me";
  return request;
}
}  // namespace

TEST_F(ClusterEndToEnd, SubscribeFencedByOwnershipAnswersWrongWorkerWithEpoch) {
  StartController();
  StartWorker(1);
  StartWorker(2);
  PartitionPlan plan;
  ASSERT_TRUE(cluster_testing::WaitForMembers(controller_.port, 2, &plan));

  // Pick a client id and the member that does NOT own it.
  const HashRing ring(plan);
  const std::uint64_t client_id = 123;
  const std::uint64_t owner = ring.OwnerFor(client_id);
  const cluster::PlanMember* wrong = nullptr;
  for (const auto& member : plan.members) {
    if (member.worker_id != owner) wrong = &member;
  }
  ASSERT_NE(wrong, nullptr);

  wire::WireClient direct;
  ASSERT_TRUE(direct.Connect(wrong->data_port));

  // The controller has published the 2-member plan, but the worker
  // applies it asynchronously — probe with requests until this worker
  // fences the id, so the subscribe below observes the fence
  // deterministically rather than racing the plan push.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (true) {
    wire::WireResponse probe;
    ASSERT_TRUE(direct.Call(SendSms(client_id), &probe));
    if (probe.status == wire::WireStatus::kWrongWorker) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "worker never applied the 2-member plan";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  wire::WireSubscribe subscribe;
  subscribe.client_id = client_id;
  subscribe.topic = wire::PushTopic::kAll;
  PushSink sink;
  ASSERT_TRUE(direct.Subscribe(subscribe, sink.OnEvent(), sink.OnAck()));
  ASSERT_TRUE(sink.WaitForAck());
  // The fence answers in-band, with the worker's plan epoch riding the
  // ack's start_cursor varint (no body parsing on the push path).
  EXPECT_EQ(sink.acks[0].status, wire::WireStatus::kWrongWorker);
  EXPECT_GE(sink.acks[0].start_cursor, plan.epoch);
  direct.Close();
}

TEST_F(ClusterEndToEnd, PushSubscriptionFollowsPlanAcrossStaleRoutes) {
  StartController();
  StartWorker(1);
  PartitionPlan plan1;
  ASSERT_TRUE(cluster_testing::WaitForMembers(controller_.port, 1, &plan1));

  // Start the client against the one-member plan, THEN grow the cluster:
  // the client's held plan is now stale by construction.
  cluster::ClientConfig config;
  config.controller_port = controller_.port;
  cluster::Client client(config);
  std::string error;
  ASSERT_TRUE(client.Start(&error)) << error;

  StartWorker(2);
  PartitionPlan plan2;
  ASSERT_TRUE(cluster_testing::WaitForMembers(controller_.port, 2, &plan2));
  ASSERT_GT(plan2.epoch, plan1.epoch);

  // A client id the NEW worker owns: the first subscribe attempt routes
  // to worker 1 (stale plan), gets fenced with kWrongWorker + epoch,
  // refreshes, and re-subscribes against worker 2 — all inside
  // Subscribe()'s bounded repair loop.
  const HashRing ring(plan2);
  std::uint64_t moved_id = 0;
  for (std::uint64_t id = 1; id < 10'000; ++id) {
    if (ring.OwnerFor(id) == 2) {
      moved_id = id;
      break;
    }
  }
  ASSERT_NE(moved_id, 0u) << "no sampled id owned by the new worker";

  // Make the staleness observable before subscribing: worker 1 applies
  // plan 2 asynchronously, and until it does it still owns everything
  // and would accept the subscription with no repair to exercise. Probe
  // it directly (NOT through `client`, whose plan must stay stale) until
  // it fences the moved id.
  {
    const cluster::PlanMember* old_worker = nullptr;
    for (const auto& member : plan2.members) {
      if (member.worker_id == 1) old_worker = &member;
    }
    ASSERT_NE(old_worker, nullptr);
    wire::WireClient probe_conn;
    ASSERT_TRUE(probe_conn.Connect(old_worker->data_port));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (true) {
      wire::WireResponse probe;
      ASSERT_TRUE(probe_conn.Call(SendSms(moved_id), &probe));
      if (probe.status == wire::WireStatus::kWrongWorker) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "worker 1 never applied the 2-member plan";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    probe_conn.Close();
  }

  PushSink sink;
  ASSERT_TRUE(client.Subscribe(moved_id, wire::PushTopic::kSmsDelivery,
                               /*cursor=*/0, sink.OnEvent(), sink.OnAck()));
  ASSERT_TRUE(sink.WaitForAck());
  ASSERT_EQ(sink.acks[0].status, wire::WireStatus::kOk);

  const cluster::ClientStats repaired = client.Stats();
  EXPECT_GE(repaired.wrong_worker_retries, 1u);
  EXPECT_GE(repaired.push_resubscribes, 1u);
  EXPECT_GE(client.plan_epoch(), plan2.epoch);

  // The stream is live on the right worker: an SMS routed to the same
  // client publishes delivery reports into that worker's shard feed, and
  // they arrive as pushed events — no polling anywhere.
  wire::WireResponse response;
  ASSERT_TRUE(client.Call(SendSms(moved_id), &response));
  ASSERT_EQ(response.status, wire::WireStatus::kOk) << response.body;
  ASSERT_TRUE(sink.WaitForEvents(1));
  {
    std::lock_guard<std::mutex> lock(sink.mutex);
    EXPECT_EQ(sink.events[0].kind, wire::EventKind::kData);
    EXPECT_EQ(sink.events[0].topic, wire::PushTopic::kSmsDelivery);
    EXPECT_EQ(sink.events[0].aux, moved_id);
    EXPECT_GE(sink.events[0].cursor, 1u);
  }
  EXPECT_EQ(client.Stats().exhausted, 0u);
  client.Stop();
}

}  // namespace
}  // namespace mobivine
