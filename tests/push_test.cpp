// M-Push: the server-initiated subscription/streaming plane over M-Wire.
//
// What must hold:
//  * every push frame family (kSubscribe / kUnsubscribe / kSubscribeAck /
//    kEvent) round-trips bit-exactly through the codec;
//  * the per-shard feed notifies live listeners, retains a bounded replay
//    ring under monotonic cursors, and reports evicted ranges as explicit
//    gaps — AddListenerAndReplay is an exactly-once seam even against
//    concurrent publishers;
//  * over real sockets: a subscribe is acked before its first event, data
//    arrives WITHOUT polling, a reconnecting cursor replays the gap, and
//    kDrainOnce is the poll primitive (replay + end marker + auto-close);
//  * a slow subscriber sheds oldest-first into typed kEventsDropped gap
//    markers — every published cursor is either delivered or covered by
//    a gap range (no silent loss) — and request/response traffic on the
//    same connection still completes;
//  * NotificationTable bounds + counts loss instead of growing without
//    bound (the lost-notification bugfix regression);
//  * WireClient teardown never races an in-flight Submit into a recycled
//    fd, and every callback fires exactly once (run under TSan in CI);
//  * ParseWrongWorkerEpoch is strict: garbage, trailing bytes and
//    overflow map to 0, never to a saturated epoch no controller
//    publishes.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/client.h"
#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "gateway/push.h"
#include "minijs/value.h"
#include "webview/notification_table.h"
#include "wire/client.h"
#include "wire/protocol.h"
#include "wire/server.h"

namespace mobivine {
namespace {

using gateway::Gateway;
using gateway::GatewayConfig;
using gateway::Op;
using gateway::Platform;
using minijs::Value;
using webview::NotificationTable;
using wire::DecodeFrame;
using wire::DecodeStatus;
using wire::EventKind;
using wire::FrameType;
using wire::FrameView;
using wire::PushTopic;
using wire::SubscribeMode;
using wire::WireClient;
using wire::WireEvent;
using wire::WireRequest;
using wire::WireResponse;
using wire::WireServer;
using wire::WireServerConfig;
using wire::WireStatus;
using wire::WireSubscribe;
using wire::WireSubscribeAck;
using wire::WireUnsubscribe;

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

GatewayConfig BaseConfig(int shards) {
  GatewayConfig config;
  config.shards = shards;
  config.store = &Store();
  return config;
}

WireRequest HttpGet(std::uint64_t client_id) {
  WireRequest request;
  request.client_id = client_id;
  request.platform = Platform::kAndroid;
  request.op = Op::kHttpGet;
  request.target = std::string("http://") + gateway::kGatewayHttpHost + "/ping";
  return request;
}

// ---------------------------------------------------------------------------
// Protocol: push frame families round-trip
// ---------------------------------------------------------------------------

TEST(PushProtocol, SubscribeRoundTripsAllFields) {
  WireSubscribe subscribe;
  subscribe.request_id = 0xfeedface12345678ull;
  subscribe.client_id = 42;
  subscribe.topic = PushTopic::kSmsDelivery;
  subscribe.mode = SubscribeMode::kFromCursor;
  subscribe.cursor = 0x1234567890ull;

  std::vector<std::uint8_t> bytes;
  wire::EncodeSubscribe(subscribe, bytes);

  FrameView frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, &error),
            DecodeStatus::kOk)
      << error;
  EXPECT_EQ(frame.type, FrameType::kSubscribe);
  EXPECT_EQ(consumed, bytes.size());

  std::uint64_t peeked = 0;
  EXPECT_TRUE(wire::PeekPayloadId(frame.payload, frame.payload_size, &peeked));
  EXPECT_EQ(peeked, subscribe.request_id);

  WireSubscribe decoded;
  ASSERT_EQ(wire::DecodeSubscribe(frame.payload, frame.payload_size, &decoded,
                                  &error),
            wire::BodyStatus::kOk)
      << error;
  EXPECT_EQ(decoded.request_id, subscribe.request_id);
  EXPECT_EQ(decoded.client_id, subscribe.client_id);
  EXPECT_EQ(decoded.topic, subscribe.topic);
  EXPECT_EQ(decoded.mode, subscribe.mode);
  EXPECT_EQ(decoded.cursor, subscribe.cursor);

  // Every strict prefix is kNeedMore — never malformed, never a shorter
  // valid frame (the same invariant the request codec holds).
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    FrameView partial;
    std::size_t used = 0;
    EXPECT_EQ(DecodeFrame(bytes.data(), len, &partial, &used, &error),
              DecodeStatus::kNeedMore)
        << "prefix " << len;
  }
}

TEST(PushProtocol, UnsubscribeRoundTrips) {
  WireUnsubscribe unsubscribe;
  unsubscribe.request_id = 91;
  unsubscribe.subscription_id = 0xabcdefull;

  std::vector<std::uint8_t> bytes;
  wire::EncodeUnsubscribe(unsubscribe, bytes);

  FrameView frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, &error),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kUnsubscribe);

  WireUnsubscribe decoded;
  ASSERT_EQ(wire::DecodeUnsubscribe(frame.payload, frame.payload_size,
                                    &decoded, &error),
            wire::BodyStatus::kOk);
  EXPECT_EQ(decoded.request_id, unsubscribe.request_id);
  EXPECT_EQ(decoded.subscription_id, unsubscribe.subscription_id);
}

TEST(PushProtocol, SubscribeAckRoundTripsEveryStatus) {
  for (WireStatus status :
       {WireStatus::kOk, WireStatus::kWrongWorker,
        WireStatus::kMalformedRequest, WireStatus::kTransportError}) {
    WireSubscribeAck ack;
    ack.request_id = 7;
    ack.status = status;
    ack.subscription_id = 0x300;
    ack.start_cursor = 0x123456789abcull;  // kWrongWorker: the plan epoch

    std::vector<std::uint8_t> bytes;
    wire::EncodeSubscribeAck(ack, bytes);

    FrameView frame;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(
        DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed, &error),
        DecodeStatus::kOk);
    EXPECT_EQ(frame.type, FrameType::kSubscribeAck);

    WireSubscribeAck decoded;
    ASSERT_TRUE(wire::DecodeSubscribeAck(frame.payload, frame.payload_size,
                                         &decoded, &error))
        << error;
    EXPECT_EQ(decoded.request_id, ack.request_id);
    EXPECT_EQ(decoded.status, status);
    EXPECT_EQ(decoded.subscription_id, ack.subscription_id);
    EXPECT_EQ(decoded.start_cursor, ack.start_cursor);
  }
}

TEST(PushProtocol, EventRoundTripsAndBorrowedBodyAgrees) {
  WireEvent event;
  event.subscription_id = 17;
  event.kind = EventKind::kData;
  event.topic = PushTopic::kNotification;
  event.cursor = 10'001;
  event.aux = 42;
  event.body = "{\"level\":3}";

  std::vector<std::uint8_t> owned;
  wire::EncodeEvent(event, owned);

  // The server's pump uses the borrowed-body overload; both encoders
  // must produce identical bytes.
  WireEvent header = event;
  header.body.clear();
  std::vector<std::uint8_t> borrowed;
  wire::EncodeEvent(header, std::string_view("{\"level\":3}"), borrowed);
  EXPECT_EQ(owned, borrowed);

  FrameView frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(owned.data(), owned.size(), &frame, &consumed, &error),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kEvent);

  WireEvent decoded;
  ASSERT_TRUE(
      wire::DecodeEvent(frame.payload, frame.payload_size, &decoded, &error))
      << error;
  EXPECT_EQ(decoded.subscription_id, event.subscription_id);
  EXPECT_EQ(decoded.kind, event.kind);
  EXPECT_EQ(decoded.topic, event.topic);
  EXPECT_EQ(decoded.cursor, event.cursor);
  EXPECT_EQ(decoded.aux, event.aux);
  EXPECT_EQ(decoded.body, event.body);
}

// ---------------------------------------------------------------------------
// PushFeed: notify + bounded replay + the exactly-once seam
// ---------------------------------------------------------------------------

TEST(PushFeed, PublishAssignsMonotonicCursorsAndNotifiesListeners) {
  gateway::PushFeed feed(/*replay_capacity=*/8);
  std::vector<gateway::PushEvent> seen;
  const std::uint64_t id =
      feed.AddListener([&](const gateway::PushEvent& e) { seen.push_back(e); });

  EXPECT_EQ(feed.Publish(gateway::PushTopic::kProximity, 5, "near"), 1u);
  EXPECT_EQ(feed.Publish(gateway::PushTopic::kCallState, 5, "ringing"), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].cursor, 1u);
  EXPECT_EQ(seen[1].cursor, 2u);
  EXPECT_EQ(seen[1].body, "ringing");

  feed.RemoveListener(id);
  feed.Publish(gateway::PushTopic::kProximity, 5, "far");
  EXPECT_EQ(seen.size(), 2u);  // fence: nothing after RemoveListener
  EXPECT_EQ(feed.last_cursor(), 3u);
}

TEST(PushFeed, ReplayReportsEvictedRangeAsGap) {
  gateway::PushFeed feed(/*replay_capacity=*/3);
  for (int i = 0; i < 6; ++i) {
    feed.Publish(gateway::PushTopic::kProximity, 1, "e" + std::to_string(i));
  }
  // Ring retains cursors 4..6; a replay after cursor 1 lost [2,3].
  std::vector<std::uint64_t> cursors;
  const auto result = feed.ReplayAfter(
      1, gateway::PushTopic::kAll, 0,
      [&](const gateway::PushEvent& e) { cursors.push_back(e.cursor); });
  EXPECT_TRUE(result.gap);
  EXPECT_EQ(result.gap_first, 2u);
  EXPECT_EQ(result.gap_last, 3u);
  EXPECT_EQ(result.resume_cursor, 6u);
  EXPECT_EQ(cursors, (std::vector<std::uint64_t>{4, 5, 6}));

  // A cursor from the future (another worker's timeline after a plan
  // change) clamps down instead of replaying garbage.
  const auto clamped = feed.ReplayAfter(100, gateway::PushTopic::kAll, 0,
                                        [](const gateway::PushEvent&) {});
  EXPECT_FALSE(clamped.gap);
  EXPECT_EQ(clamped.delivered, 0u);
  EXPECT_EQ(clamped.resume_cursor, 6u);

  const auto counters = feed.GetCounters();
  EXPECT_EQ(counters.published, 6u);
  EXPECT_EQ(counters.evicted, 3u);
  EXPECT_EQ(counters.replays, 2u);
  EXPECT_EQ(counters.replay_gaps, 1u);
}

TEST(PushFeed, AddListenerAndReplayIsExactlyOnceUnderConcurrentPublish) {
  gateway::PushFeed feed(/*replay_capacity=*/4096);
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      feed.Publish(gateway::PushTopic::kProximity, 1, "x");
    }
  });

  // Subscribe mid-stream many times: replay + live must cover every
  // cursor exactly once — no duplicate at the seam, no hole.
  for (int round = 0; round < 50; ++round) {
    std::mutex mutex;
    std::vector<std::uint64_t> cursors;
    auto record = [&](const gateway::PushEvent& e) {
      std::lock_guard<std::mutex> lock(mutex);
      cursors.push_back(e.cursor);
    };
    gateway::PushFeed::ReplayResult covered;
    const std::uint64_t id = feed.AddListenerAndReplay(
        /*after=*/0, gateway::PushTopic::kAll, 0, record, record, &covered);
    while (true) {
      std::lock_guard<std::mutex> lock(mutex);
      if (cursors.size() >= covered.delivered + 3) break;
    }
    feed.RemoveListener(id);
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 1; i < cursors.size(); ++i) {
      ASSERT_EQ(cursors[i], cursors[i - 1] + 1)
          << "seam duplicated or dropped a cursor in round " << round;
    }
  }
  stop.store(true, std::memory_order_release);
  publisher.join();
}

// ---------------------------------------------------------------------------
// Server: push over real sockets
// ---------------------------------------------------------------------------

/// Collects one subscription's callbacks behind a condition variable so
/// tests wait on state, not on sleeps.
struct Subscriber {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<WireSubscribeAck> acks;
  std::vector<WireEvent> events;

  WireClient::AckCallback OnAck() {
    return [this](const WireSubscribeAck& ack) {
      std::lock_guard<std::mutex> lock(mutex);
      acks.push_back(ack);
      cv.notify_all();
    };
  }
  WireClient::EventHandler OnEvent() {
    return [this](const WireEvent& event) {
      std::lock_guard<std::mutex> lock(mutex);
      events.push_back(event);
      cv.notify_all();
    };
  }
  bool WaitForAck(std::size_t n = 1, int timeout_ms = 5000) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return acks.size() >= n; });
  }
  bool WaitForEvents(std::size_t n, int timeout_ms = 5000) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return events.size() >= n; });
  }
};

class PushServerTest : public ::testing::Test {
 protected:
  void StartAll(GatewayConfig gateway_config, WireServerConfig wire_config) {
    gateway_ = std::make_unique<Gateway>(std::move(gateway_config));
    server_ = std::make_unique<WireServer>(*gateway_, wire_config);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  void TearDown() override {
    if (server_) server_->Stop();
    if (gateway_) gateway_->Stop();
  }

  std::unique_ptr<Gateway> gateway_;
  std::unique_ptr<WireServer> server_;
};

TEST_F(PushServerTest, SubscribeDeliversEventsWithoutPolling) {
  StartAll(BaseConfig(1), {});
  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  WireSubscribe subscribe;
  subscribe.client_id = 9;
  subscribe.topic = PushTopic::kProximity;
  subscribe.mode = SubscribeMode::kLiveOnly;
  Subscriber sub;
  ASSERT_TRUE(client.Subscribe(subscribe, sub.OnEvent(), sub.OnAck()));
  ASSERT_TRUE(sub.WaitForAck());
  ASSERT_EQ(sub.acks[0].status, WireStatus::kOk);
  EXPECT_NE(sub.acks[0].subscription_id, 0u);

  // One publish, zero polls: the event arrives because the server sent
  // it, not because anyone asked.
  gateway_->PublishEvent(9, gateway::PushTopic::kProximity, "beacon-12");
  ASSERT_TRUE(sub.WaitForEvents(1));
  {
    // Scoped: Close() fires the synthetic death marker into OnEvent,
    // which needs sub.mutex — holding it across Close() deadlocks.
    std::lock_guard<std::mutex> lock(sub.mutex);
    EXPECT_EQ(sub.events[0].kind, EventKind::kData);
    EXPECT_EQ(sub.events[0].topic, PushTopic::kProximity);
    EXPECT_EQ(sub.events[0].aux, 9u);  // origin client id
    EXPECT_EQ(sub.events[0].body, "beacon-12");
    EXPECT_EQ(sub.events[0].subscription_id, sub.acks[0].subscription_id);
  }

  const auto stats = server_->Stats();
  EXPECT_EQ(stats.subscriptions_opened, 1u);
  EXPECT_EQ(stats.subscriptions_active(), 1u);
  EXPECT_GE(stats.events_out, 1u);
  client.Close();
}

TEST_F(PushServerTest, TopicAndClientFiltersDemuxOnOneConnection) {
  StartAll(BaseConfig(1), {});
  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  WireSubscribe proximity;
  proximity.client_id = 5;
  proximity.topic = PushTopic::kProximity;
  Subscriber prox_sub;
  ASSERT_TRUE(
      client.Subscribe(proximity, prox_sub.OnEvent(), prox_sub.OnAck()));
  ASSERT_TRUE(prox_sub.WaitForAck());
  ASSERT_EQ(prox_sub.acks[0].status, WireStatus::kOk);

  WireSubscribe calls;
  calls.client_id = 5;
  calls.topic = PushTopic::kCallState;
  Subscriber call_sub;
  ASSERT_TRUE(client.Subscribe(calls, call_sub.OnEvent(), call_sub.OnAck()));
  ASSERT_TRUE(call_sub.WaitForAck());
  ASSERT_EQ(call_sub.acks[0].status, WireStatus::kOk);

  gateway_->PublishEvent(5, gateway::PushTopic::kCallState, "ringing");
  gateway_->PublishEvent(5, gateway::PushTopic::kProximity, "near");
  // Another client's event reaches neither subscription... unless it is
  // a broadcast (client 0), which reaches both topic subscribers.
  gateway_->PublishEvent(7, gateway::PushTopic::kProximity, "other");

  ASSERT_TRUE(call_sub.WaitForEvents(1));
  ASSERT_TRUE(prox_sub.WaitForEvents(1));
  {
    std::lock_guard<std::mutex> lock(call_sub.mutex);
    ASSERT_EQ(call_sub.events.size(), 1u);
    EXPECT_EQ(call_sub.events[0].body, "ringing");
  }
  {
    std::lock_guard<std::mutex> lock(prox_sub.mutex);
    ASSERT_EQ(prox_sub.events.size(), 1u);
    EXPECT_EQ(prox_sub.events[0].body, "near");
  }
  client.Close();
}

TEST_F(PushServerTest, ReconnectWithCursorReplaysTheGap) {
  StartAll(BaseConfig(1), {});

  // A first subscriber sees cursors 1..3, then its connection dies.
  std::uint64_t resume_after = 0;
  {
    WireClient client;
    ASSERT_TRUE(client.Connect(server_->port()));
    WireSubscribe subscribe;
    subscribe.client_id = 4;
    subscribe.topic = PushTopic::kAll;
    Subscriber sub;
    ASSERT_TRUE(client.Subscribe(subscribe, sub.OnEvent(), sub.OnAck()));
    ASSERT_TRUE(sub.WaitForAck());
    for (int i = 0; i < 3; ++i) {
      gateway_->PublishEvent(4, gateway::PushTopic::kProximity,
                             "pre" + std::to_string(i));
    }
    ASSERT_TRUE(sub.WaitForEvents(3));
    {
      std::lock_guard<std::mutex> lock(sub.mutex);
      resume_after = sub.events.back().cursor;
    }
    client.Close();
  }

  // Events published while disconnected.
  gateway_->PublishEvent(4, gateway::PushTopic::kProximity, "missed-a");
  gateway_->PublishEvent(4, gateway::PushTopic::kProximity, "missed-b");

  // Reconnect from the last cursor: the replay hands over exactly the
  // missed window, then the stream goes live.
  WireClient fresh;
  ASSERT_TRUE(fresh.Connect(server_->port()));
  WireSubscribe resubscribe;
  resubscribe.client_id = 4;
  resubscribe.topic = PushTopic::kAll;
  resubscribe.mode = SubscribeMode::kFromCursor;
  resubscribe.cursor = resume_after;
  Subscriber sub;
  ASSERT_TRUE(fresh.Subscribe(resubscribe, sub.OnEvent(), sub.OnAck()));
  ASSERT_TRUE(sub.WaitForAck());
  ASSERT_EQ(sub.acks[0].status, WireStatus::kOk);
  ASSERT_TRUE(sub.WaitForEvents(2));
  gateway_->PublishEvent(4, gateway::PushTopic::kProximity, "live");
  ASSERT_TRUE(sub.WaitForEvents(3));

  {
    std::lock_guard<std::mutex> lock(sub.mutex);
    EXPECT_EQ(sub.events[0].body, "missed-a");
    EXPECT_EQ(sub.events[1].body, "missed-b");
    EXPECT_EQ(sub.events[2].body, "live");
    for (std::size_t i = 1; i < sub.events.size(); ++i) {
      EXPECT_GT(sub.events[i].cursor, sub.events[i - 1].cursor);
    }
  }
  fresh.Close();
}

TEST_F(PushServerTest, StaleCursorGetsTypedGapMarkerThenData) {
  GatewayConfig config = BaseConfig(1);
  config.push_replay_capacity = 3;  // ring retains only the newest 3
  StartAll(std::move(config), {});
  for (int i = 1; i <= 6; ++i) {
    gateway_->PublishEvent(2, gateway::PushTopic::kProximity,
                           "e" + std::to_string(i));
  }

  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  WireSubscribe subscribe;
  subscribe.client_id = 2;
  subscribe.topic = PushTopic::kAll;
  subscribe.mode = SubscribeMode::kFromCursor;
  subscribe.cursor = 1;  // [2,3] were evicted; 4..6 retained
  Subscriber sub;
  ASSERT_TRUE(client.Subscribe(subscribe, sub.OnEvent(), sub.OnAck()));
  ASSERT_TRUE(sub.WaitForAck());
  ASSERT_TRUE(sub.WaitForEvents(4));

  {
    std::lock_guard<std::mutex> lock(sub.mutex);
    EXPECT_EQ(sub.events[0].kind, EventKind::kEventsDropped);
    EXPECT_EQ(sub.events[0].aux, 2u);     // gap start
    EXPECT_EQ(sub.events[0].cursor, 3u);  // gap end
    EXPECT_EQ(sub.events[1].body, "e4");
    EXPECT_EQ(sub.events[2].body, "e5");
    EXPECT_EQ(sub.events[3].body, "e6");
  }
  client.Close();
}

TEST_F(PushServerTest, DrainOnceReplaysEmitsEndMarkerAndAutoCloses) {
  StartAll(BaseConfig(1), {});
  for (int i = 0; i < 3; ++i) {
    gateway_->PublishEvent(8, gateway::PushTopic::kNotification,
                           "n" + std::to_string(i));
  }

  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  WireSubscribe drain;
  drain.client_id = 8;
  drain.topic = PushTopic::kAll;
  drain.mode = SubscribeMode::kDrainOnce;
  drain.cursor = 0;
  Subscriber sub;
  ASSERT_TRUE(client.Subscribe(drain, sub.OnEvent(), sub.OnAck()));
  ASSERT_TRUE(sub.WaitForAck());
  ASSERT_TRUE(sub.WaitForEvents(4));
  {
    std::lock_guard<std::mutex> lock(sub.mutex);
    EXPECT_EQ(sub.events[0].body, "n0");
    EXPECT_EQ(sub.events[2].body, "n2");
    EXPECT_EQ(sub.events[3].kind, EventKind::kEndOfDrain);
    // The end marker carries the resume point for the next drain.
    EXPECT_EQ(sub.events[3].cursor, sub.events[2].cursor);
  }

  // Auto-closed: later publishes deliver nothing to this subscription.
  gateway_->PublishEvent(8, gateway::PushTopic::kNotification, "after");
  WireResponse response;
  ASSERT_TRUE(client.Call(HttpGet(8), &response));  // round-trip fence
  {
    std::lock_guard<std::mutex> lock(sub.mutex);
    EXPECT_EQ(sub.events.size(), 4u);
  }
  EXPECT_EQ(server_->Stats().subscriptions_active(), 0u);
  client.Close();
}

TEST_F(PushServerTest, UnsubscribeStopsDeliveryAndAcks) {
  StartAll(BaseConfig(1), {});
  WireClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  WireSubscribe subscribe;
  subscribe.client_id = 3;
  subscribe.topic = PushTopic::kAll;
  Subscriber sub;
  ASSERT_TRUE(client.Subscribe(subscribe, sub.OnEvent(), sub.OnAck()));
  ASSERT_TRUE(sub.WaitForAck());
  const std::uint64_t id = sub.acks[0].subscription_id;

  Subscriber unsub;
  ASSERT_TRUE(client.Unsubscribe(id, unsub.OnAck()));
  ASSERT_TRUE(unsub.WaitForAck());
  EXPECT_EQ(unsub.acks[0].status, WireStatus::kOk);
  EXPECT_EQ(unsub.acks[0].subscription_id, id);

  gateway_->PublishEvent(3, gateway::PushTopic::kProximity, "late");
  WireResponse response;
  ASSERT_TRUE(client.Call(HttpGet(3), &response));  // round-trip fence
  {
    std::lock_guard<std::mutex> lock(sub.mutex);
    EXPECT_TRUE(sub.events.empty());
  }
  EXPECT_EQ(server_->Stats().subscriptions_active(), 0u);

  // Unsubscribing a subscription this connection does not own is a typed
  // rejection, not a hang.
  Subscriber bogus;
  ASSERT_TRUE(client.Unsubscribe(999'999, bogus.OnAck()));
  ASSERT_TRUE(bogus.WaitForAck());
  EXPECT_EQ(bogus.acks[0].status, WireStatus::kMalformedRequest);
  client.Close();
}

TEST_F(PushServerTest, ConnectionDeathDeliversSyntheticCursorZeroMarker) {
  StartAll(BaseConfig(1), {});
  auto client = std::make_unique<WireClient>();
  ASSERT_TRUE(client->Connect(server_->port()));
  WireSubscribe subscribe;
  subscribe.client_id = 6;
  subscribe.topic = PushTopic::kAll;
  Subscriber sub;
  ASSERT_TRUE(client->Subscribe(subscribe, sub.OnEvent(), sub.OnAck()));
  ASSERT_TRUE(sub.WaitForAck());
  ASSERT_EQ(sub.acks[0].status, WireStatus::kOk);

  server_->Stop();  // peer death, from the subscriber's point of view
  ASSERT_TRUE(sub.WaitForEvents(1));
  std::lock_guard<std::mutex> lock(sub.mutex);
  EXPECT_EQ(sub.events.back().kind, EventKind::kEventsDropped);
  EXPECT_EQ(sub.events.back().cursor, 0u)
      << "the death marker must be distinguishable from a real shed range";
}

// ---------------------------------------------------------------------------
// Slow consumer: shed + gap markers + request/response still completes
// ---------------------------------------------------------------------------

/// Raw client socket: lets a test be a deliberately terrible subscriber
/// (never reading) and then pick frames off the wire by hand.
class RawConn {
 public:
  ~RawConn() { CloseNow(); }

  bool Connect(std::uint16_t port, int rcvbuf) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool Send(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Blocking-read the next well-formed frame. False on EOF/error.
  bool ReadFrame(FrameView* frame, std::vector<std::uint8_t>* storage) {
    while (true) {
      std::size_t consumed = 0;
      std::string error;
      const DecodeStatus status = DecodeFrame(
          buf_.data() + start_, buf_.size() - start_, frame, &consumed, &error);
      if (status == DecodeStatus::kOk) {
        // Hand the caller a stable copy; the ring compacts under us.
        storage->assign(buf_.begin() + static_cast<std::ptrdiff_t>(start_),
                        buf_.begin() +
                            static_cast<std::ptrdiff_t>(start_ + consumed));
        std::size_t reconsumed = 0;
        EXPECT_EQ(DecodeFrame(storage->data(), storage->size(), frame,
                              &reconsumed, &error),
                  DecodeStatus::kOk);
        start_ += consumed;
        if (start_ > 1 << 20) {
          buf_.erase(buf_.begin(), buf_.begin() + start_);
          start_ = 0;
        }
        return true;
      }
      if (status != DecodeStatus::kNeedMore) return false;
      std::uint8_t chunk[64 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.insert(buf_.end(), chunk, chunk + n);
    }
  }

  void CloseNow() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> buf_;
  std::size_t start_ = 0;
};

TEST_F(PushServerTest, SlowSubscriberShedsWithGapMarkersNotStalledResponses) {
  GatewayConfig gateway_config = BaseConfig(1);
  gateway_config.push_replay_capacity = 8;  // keep the flood's memory small
  WireServerConfig wire_config;
  wire_config.output_high_watermark = 16 * 1024;
  wire_config.output_low_watermark = 4 * 1024;
  wire_config.push_queue_capacity = 8;
  StartAll(std::move(gateway_config), wire_config);

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port(), /*rcvbuf=*/4096));
  WireSubscribe subscribe;
  subscribe.request_id = 1;
  subscribe.client_id = 11;
  subscribe.topic = PushTopic::kAll;
  std::vector<std::uint8_t> bytes;
  wire::EncodeSubscribe(subscribe, bytes);
  ASSERT_TRUE(conn.Send(bytes));

  FrameView frame;
  std::vector<std::uint8_t> storage;
  ASSERT_TRUE(conn.ReadFrame(&frame, &storage));
  ASSERT_EQ(frame.type, FrameType::kSubscribeAck);
  WireSubscribeAck ack;
  std::string error;
  ASSERT_TRUE(
      wire::DecodeSubscribeAck(frame.payload, frame.payload_size, &ack, &error));
  ASSERT_EQ(ack.status, WireStatus::kOk);

  // Flood without reading: enough bytes to fill the kernel's socket
  // buffers AND the server's output queue up to the watermark, so the
  // pump gates and the per-subscription queue (capacity 8) must shed.
  const int kEvents = 256;
  const std::string body(64 * 1024, 'x');
  for (int i = 0; i < kEvents; ++i) {
    gateway_->PublishEvent(11, gateway::PushTopic::kProximity, body);
  }
  // Request/response on the SAME connection, sent mid-flood. (The server
  // may have paused reading at the high watermark — the request parks in
  // kernel buffers until we start draining, then must complete.)
  WireRequest request = HttpGet(11);
  request.request_id = 42;
  std::vector<std::uint8_t> request_bytes;
  wire::EncodeRequest(request, request_bytes);
  ASSERT_TRUE(conn.Send(request_bytes));

  // Drain: every published cursor must be delivered or gap-covered, and
  // the response must arrive — shedding, not stalling.
  std::set<std::uint64_t> delivered;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> gaps;
  bool response_seen = false;
  std::uint64_t accounted = 0;
  while (accounted < static_cast<std::uint64_t>(kEvents) || !response_seen) {
    ASSERT_TRUE(conn.ReadFrame(&frame, &storage))
        << "connection died with " << accounted << "/" << kEvents
        << " cursors accounted, response_seen=" << response_seen;
    if (frame.type == FrameType::kResponse) {
      WireResponse response;
      ASSERT_TRUE(wire::DecodeResponse(frame.payload, frame.payload_size,
                                       &response, &error));
      EXPECT_EQ(response.request_id, 42u);
      EXPECT_EQ(response.status, WireStatus::kOk);
      response_seen = true;
      continue;
    }
    ASSERT_EQ(frame.type, FrameType::kEvent);
    WireEvent event;
    ASSERT_TRUE(
        wire::DecodeEvent(frame.payload, frame.payload_size, &event, &error));
    if (event.kind == EventKind::kData) {
      EXPECT_TRUE(delivered.insert(event.cursor).second)
          << "cursor " << event.cursor << " delivered twice";
      ++accounted;
    } else if (event.kind == EventKind::kEventsDropped) {
      ASSERT_GE(event.aux, 1u);
      ASSERT_GE(event.cursor, event.aux);
      gaps.emplace_back(event.aux, event.cursor);
      accounted += event.cursor - event.aux + 1;
    }
  }

  // Exactly-once-or-counted: cursors 1..kEvents partition into delivered
  // and gap ranges with no overlap.
  ASSERT_FALSE(gaps.empty()) << "flood never shed — test lost its teeth";
  for (const auto& [first, last] : gaps) {
    for (std::uint64_t c = first; c <= last; ++c) {
      EXPECT_EQ(delivered.count(c), 0u)
          << "cursor " << c << " both delivered and gap-covered";
    }
  }
  const auto stats = server_->Stats();
  EXPECT_GE(stats.events_dropped, 1u);
  EXPECT_GE(stats.gap_markers, 1u);
  conn.CloseNow();
}

TEST_F(PushServerTest, ClientSentEventFramesAreDirectionViolations) {
  StartAll(BaseConfig(1), {});
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port(), 0));
  WireEvent event;
  event.subscription_id = 1;
  std::vector<std::uint8_t> bytes;
  wire::EncodeEvent(event, bytes);
  ASSERT_TRUE(conn.Send(bytes));
  // Server closes the connection: next read is EOF, no reply frame.
  FrameView frame;
  std::vector<std::uint8_t> storage;
  EXPECT_FALSE(conn.ReadFrame(&frame, &storage));
  EXPECT_GE(server_->Stats().protocol_errors, 1u);
}

TEST_F(PushServerTest, MalformedSubscribeBodyGetsTypedAck) {
  StartAll(BaseConfig(1), {});
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port(), 0));
  // Valid frame, valid request id (7), then garbage where the body's
  // client id varint should be (0xff * 10 overflows any varint).
  std::vector<std::uint8_t> bytes = {7};
  bytes.insert(bytes.end(), 10, 0xff);
  wire::FinishFrame(bytes, 0, FrameType::kSubscribe);
  ASSERT_TRUE(conn.Send(bytes));

  FrameView frame;
  std::vector<std::uint8_t> storage;
  ASSERT_TRUE(conn.ReadFrame(&frame, &storage));
  ASSERT_EQ(frame.type, FrameType::kSubscribeAck);
  WireSubscribeAck ack;
  std::string error;
  ASSERT_TRUE(
      wire::DecodeSubscribeAck(frame.payload, frame.payload_size, &ack, &error));
  EXPECT_EQ(ack.request_id, 7u);
  EXPECT_EQ(ack.status, WireStatus::kMalformedRequest);

  // The connection survives a typed rejection.
  WireRequest request = HttpGet(1);
  request.request_id = 8;
  std::vector<std::uint8_t> request_bytes;
  wire::EncodeRequest(request, request_bytes);
  ASSERT_TRUE(conn.Send(request_bytes));
  ASSERT_TRUE(conn.ReadFrame(&frame, &storage));
  EXPECT_EQ(frame.type, FrameType::kResponse);
}

// ---------------------------------------------------------------------------
// NotificationTable: the lost-notification bugfix (regression)
// ---------------------------------------------------------------------------

TEST(PushNotificationTable, PendingIsCappedDropOldestAndCounted) {
  // Pre-fix, a channel nobody polls grew without bound and posts past
  // any reasonable buffer vanished on process death uncounted. Now: cap,
  // drop-oldest, count.
  NotificationTable table(/*pending_cap=*/4);
  const std::int64_t channel = table.NewChannel();
  for (int i = 0; i < 10; ++i) {
    table.Post(channel, Value::Number(i));
  }
  EXPECT_EQ(table.PendingCount(channel), 4u);
  EXPECT_EQ(table.dropped(), 6u);

  // The survivors are the NEWEST four — a prompt poller still sees the
  // latest burst, not a stale prefix.
  const std::vector<Value> drained = table.Drain(channel);
  ASSERT_EQ(drained.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(drained[static_cast<std::size_t>(i)].is_number());
    EXPECT_EQ(drained[static_cast<std::size_t>(i)].as_number(), 6.0 + i);
  }
}

TEST(PushNotificationTable, PostToNeverAllocatedIdIsDroppedAndCounted) {
  NotificationTable table(/*pending_cap=*/4);
  const std::int64_t channel = table.NewChannel();
  const std::size_t before = table.channel_count();
  table.Post(9999, Value::String("no such channel"));
  EXPECT_EQ(table.dropped(), 1u);
  EXPECT_EQ(table.channel_count(), before);  // no implicit table growth
  table.Post(channel, Value::Number(1));
  EXPECT_EQ(table.PendingCount(channel), 1u);
  EXPECT_EQ(table.dropped(), 1u);
}

TEST(PushNotificationTable, PostListenerSeesEveryAcceptedPostBeforeEviction) {
  NotificationTable table(/*pending_cap=*/2);
  std::vector<std::pair<std::int64_t, double>> seen;
  table.SetPostListener([&](std::int64_t channel, const Value& value) {
    ASSERT_TRUE(value.is_number());
    seen.emplace_back(channel, value.as_number());
  });
  const std::int64_t channel = table.NewChannel();
  for (int i = 0; i < 5; ++i) table.Post(channel, Value::Number(i));
  // Push delivery never loses what polling would have: the bridge saw
  // all five accepted posts even though the cap kept only two.
  ASSERT_EQ(seen.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].second, 1.0 * i);
  }
  EXPECT_EQ(table.PendingCount(channel), 2u);
  // But a rejected post (never-allocated id) is NOT bridged.
  table.Post(4242, Value::Number(99));
  EXPECT_EQ(seen.size(), 5u);
}

// ---------------------------------------------------------------------------
// WireClient: teardown vs in-flight Submit (the satellite-2 race)
// ---------------------------------------------------------------------------

TEST(WireClientTeardown, CloseNeverRacesInFlightSubmits) {
  // Pre-fix, Close()/reclaim closed fd_ without holding send_mutex_, so a
  // Submit mid-WriteAll could write into a recycled descriptor (and the
  // plain-int fd_ was a data race under TSan). Hammer the interleaving:
  // every Submit's callback must fire exactly once, whatever side of the
  // close it lands on.
  GatewayConfig gateway_config = BaseConfig(1);
  Gateway gateway(std::move(gateway_config));
  WireServer server(gateway, {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  for (int round = 0; round < 8; ++round) {
    WireClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    std::atomic<int> submitted{0};
    std::atomic<int> completed{0};
    std::vector<std::thread> writers;
    for (int t = 0; t < 3; ++t) {
      writers.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
          submitted.fetch_add(1, std::memory_order_relaxed);
          client.Submit(HttpGet(1), [&](const WireResponse&) {
            completed.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
    // Land the close mid-burst.
    std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
    client.Close();
    for (auto& thread : writers) thread.join();
    // Close() joined the reader and failed everything outstanding; any
    // Submit after it fails inline. Either way: exactly once each.
    EXPECT_EQ(completed.load(), submitted.load()) << "round " << round;
  }
  server.Stop();
  gateway.Stop();
}

// ---------------------------------------------------------------------------
// ParseWrongWorkerEpoch: strict parse (the satellite-3 bug)
// ---------------------------------------------------------------------------

TEST(PushEpochParse, StrictDigitsOnly) {
  using cluster::ParseWrongWorkerEpoch;
  EXPECT_EQ(ParseWrongWorkerEpoch("0"), 0u);
  EXPECT_EQ(ParseWrongWorkerEpoch("7"), 7u);
  EXPECT_EQ(ParseWrongWorkerEpoch("123456789"), 123456789u);
  EXPECT_EQ(ParseWrongWorkerEpoch("18446744073709551615"),
            18446744073709551615ull);  // UINT64_MAX parses exactly

  // Everything a buggy or hostile worker could send maps to 0 ("refresh
  // to anything newer"), never to a saturated or partial epoch.
  EXPECT_EQ(ParseWrongWorkerEpoch(""), 0u);
  EXPECT_EQ(ParseWrongWorkerEpoch("abc"), 0u);
  EXPECT_EQ(ParseWrongWorkerEpoch("12x"), 0u);    // trailing garbage
  EXPECT_EQ(ParseWrongWorkerEpoch(" 12"), 0u);    // leading space
  EXPECT_EQ(ParseWrongWorkerEpoch("12 "), 0u);
  EXPECT_EQ(ParseWrongWorkerEpoch("-1"), 0u);
  EXPECT_EQ(ParseWrongWorkerEpoch("+1"), 0u);
  EXPECT_EQ(ParseWrongWorkerEpoch("0x10"), 0u);
  EXPECT_EQ(ParseWrongWorkerEpoch("18446744073709551616"), 0u);  // MAX+1
  EXPECT_EQ(ParseWrongWorkerEpoch("99999999999999999999999"), 0u);
  EXPECT_EQ(ParseWrongWorkerEpoch(std::string("1\0", 2)), 0u);  // embedded NUL
  EXPECT_EQ(ParseWrongWorkerEpoch("1.0"), 0u);
}

TEST(PushEpochParse, MalformedBodyCorpusNeverMisparses) {
  // Deterministic corpus of hostile bodies (the satellite-3 fuzz sweep):
  // the strict parser must agree with a trivially-correct reference on
  // every input — in particular it must not saturate on overflow the way
  // the old strtoull-based parse did.
  struct SplitMix64 {
    std::uint64_t state;
    std::uint64_t Next() {
      std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    }
  };
  auto reference = [](const std::string& body) -> std::uint64_t {
    if (body.empty()) return 0;
    for (char c : body) {
      if (c < '0' || c > '9') return 0;
    }
    // 128-bit accumulation: overflow detected exactly, no width games.
    unsigned __int128 value = 0;
    for (char c : body) {
      value = value * 10 + static_cast<unsigned>(c - '0');
      if (value > std::numeric_limits<std::uint64_t>::max()) return 0;
    }
    return static_cast<std::uint64_t>(value);
  };

  SplitMix64 rng{0xec0c0ull};
  const char alphabet[] = "0123456789 -+.xeE\xff\x00" "abz";
  for (int iteration = 0; iteration < 20'000; ++iteration) {
    std::string body;
    const std::size_t len = rng.Next() % 24;
    for (std::size_t i = 0; i < len; ++i) {
      // Bias toward digits so plenty of the corpus is almost-valid.
      if (rng.Next() % 4 != 0) {
        body.push_back(static_cast<char>('0' + rng.Next() % 10));
      } else {
        body.push_back(alphabet[rng.Next() % (sizeof(alphabet) - 1)]);
      }
    }
    ASSERT_EQ(cluster::ParseWrongWorkerEpoch(body), reference(body))
        << "iteration " << iteration << " body \"" << body << '"';
  }
}

}  // namespace
}  // namespace mobivine
