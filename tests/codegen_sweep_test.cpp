// Codegen totality sweep: for EVERY item the proxy drawer shows on every
// platform, the configuration dialog model builds and the proxy-style
// code generator produces a plausible snippet. This is the M-Plugin's core
// contract — a drawer item that cannot be configured or previewed would be
// a broken tool.
#include <gtest/gtest.h>

#include <tuple>

#include "plugin/codegen.h"
#include "plugin/configuration.h"
#include "plugin/drawer.h"
#include "plugin/metrics.h"

namespace mobivine::plugin {
namespace {

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

struct SweepCase {
  std::string platform;
  std::string proxy;
  std::string method;

  friend std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
    return os << c.platform << "_" << c.proxy << "_" << c.method;
  }
};

std::vector<SweepCase> AllDrawerItems() {
  std::vector<SweepCase> cases;
  for (const char* platform : {"android", "s60", "webview", "iphone"}) {
    ProxyDrawer drawer(Store(), platform);
    for (const auto& category : drawer.categories()) {
      for (const auto& item : category.items) {
        cases.push_back({platform, item.proxy, item.method});
      }
    }
  }
  return cases;
}

class DrawerItemSweep : public ::testing::TestWithParam<SweepCase> {};

/// Fill every variable with a type-appropriate dummy literal.
void FillVariables(ProxyConfiguration& config) {
  for (auto& field : config.variables()) {
    if (!field.allowed_values.empty()) {
      field.value = field.allowed_values.front();
    } else if (field.type.find("tring") != std::string::npos ||
               field.type == "string" || field.type == "NSString*") {
      field.value = "\"value\"";
    } else {
      field.value = "1";
    }
  }
}

TEST_P(DrawerItemSweep, ConfiguresAndGeneratesProxyCode) {
  const SweepCase& c = GetParam();
  const core::ProxyDescriptor* descriptor = Store().Find(c.proxy);
  ASSERT_NE(descriptor, nullptr);

  ProxyConfiguration config =
      ProxyConfiguration::For(*descriptor, c.method, c.platform);
  FillVariables(config);
  EXPECT_TRUE(config.Validate().empty())
      << testing::PrintToString(config.Validate());

  CodeGenerator generator(Store());
  GeneratedCode snippet = generator.InvocationSnippet(config, CodeStyle::kProxy);
  EXPECT_FALSE(snippet.code.empty());
  EXPECT_NE(snippet.code.find(c.method), std::string::npos)
      << snippet.code;
  // The snippet always carries error handling (uniform error story).
  EXPECT_TRUE(snippet.code.find("catch") != std::string::npos)
      << snippet.code;
  // Non-trivial but compact.
  const CodeMetrics metrics = Measure(snippet.code);
  EXPECT_GE(metrics.lines, 3);
  EXPECT_LE(metrics.lines, 20);

  GeneratedCode application =
      generator.ApplicationFragment(config, CodeStyle::kProxy);
  EXPECT_GE(Measure(application.code).lines, metrics.lines - 2);

  // Language follows the binding plane.
  if (c.platform == "webview") {
    EXPECT_EQ(snippet.language, "javascript");
  } else if (c.platform == "iphone") {
    EXPECT_EQ(snippet.language, "objc");
  } else {
    EXPECT_EQ(snippet.language, "java");
  }
}

TEST_P(DrawerItemSweep, RawGenerationEitherWorksOrReportsCleanly) {
  const SweepCase& c = GetParam();
  ProxyConfiguration config =
      ProxyConfiguration::For(*Store().Find(c.proxy), c.method, c.platform);
  FillVariables(config);
  CodeGenerator generator(Store());
  // Raw templates exist for the primary APIs; for the rest the generator
  // must refuse with std::invalid_argument, never crash or emit garbage.
  try {
    GeneratedCode raw = generator.ApplicationFragment(config, CodeStyle::kRaw);
    EXPECT_FALSE(raw.code.empty());
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("no raw template"),
              std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(AllItems, DrawerItemSweep,
                         ::testing::ValuesIn(AllDrawerItems()),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           return info.param.platform + "_" +
                                  info.param.proxy + "_" + info.param.method;
                         });

}  // namespace
}  // namespace mobivine::plugin
