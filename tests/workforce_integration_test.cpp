// End-to-end integration: the paper's §2 mobile workforce management
// application, with its device-side core written ONCE against the MobiVine
// uniform interfaces and executed unchanged on Android and S60 — plus the
// JavaScript twin on Android WebView. This is the portability claim as a
// running program.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/bindings/webview_proxies.h"
#include "core/registry.h"
#include "s60/midlet.h"
#include "tests/test_util.h"
#include "webview/webview.h"

namespace mobivine {
namespace {

using core::DescriptorStore;
using core::HttpProxy;
using core::Location;
using core::LocationProxy;
using core::ProxyRegistry;
using core::SmsProxy;
using mobivine::testing::ApproachTrack;
using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;

const DescriptorStore& Store() {
  static const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

// ---------------------------------------------------------------------------
// Server-side application (paper Figure 1, right half): agent tracking,
// request assignment, activity log — plain Web-standard handlers.
// ---------------------------------------------------------------------------

class WorkforceServer {
 public:
  void AttachTo(device::SimNetwork& network) {
    network.RegisterHost("wfm.example", [this](const device::HttpRequest& req) {
      return Handle(req);
    });
  }

  device::HttpResponse Handle(const device::HttpRequest& request) {
    if (request.url.path == "/checkin" && request.method == "POST") {
      auto params = device::ParseQuery(request.body);
      std::string agent, site;
      for (const auto& [key, value] : params) {
        if (key == "agent") agent = value;
        if (key == "site") site = value;
      }
      if (agent.empty()) return device::HttpResponse::BadRequest("no agent");
      checkins[agent].push_back(site);
      activity_log.push_back(agent + " checked in at " + site);
      return device::HttpResponse::Ok("task:inspect-" + site);
    }
    if (request.url.path == "/track" && request.method == "POST") {
      auto params = device::ParseQuery(request.body);
      for (const auto& [key, value] : params) {
        if (key == "agent") track_points[value]++;
      }
      return device::HttpResponse::Ok("ok");
    }
    return device::HttpResponse::NotFound();
  }

  std::map<std::string, std::vector<std::string>> checkins;
  std::map<std::string, int> track_points;
  std::vector<std::string> activity_log;
};

// ---------------------------------------------------------------------------
// Device-side application core — written once against the uniform API.
// ---------------------------------------------------------------------------

class WorkforceCore : public core::ProximityListener,
                      public core::SmsListener {
 public:
  WorkforceCore(std::string agent_id, LocationProxy& location, SmsProxy& sms,
                HttpProxy& http)
      : agent_id_(std::move(agent_id)),
        location_(location),
        sms_(sms),
        http_(http) {}

  /// Identical on every platform (the paper's Figure 8 code shape).
  void Start() {
    location_.addProximityAlert(kBaseLat, kBaseLon, 210.0, 200.0f,
                                /*timer_ms=*/-1, this);
    ReportPosition();
  }

  void ReportPosition() {
    Location now = location_.getLocation();
    if (!now.valid) return;
    std::ostringstream body;
    body << "agent=" << agent_id_ << "&lat=" << now.latitude
         << "&lon=" << now.longitude;
    (void)http_.post("http://wfm.example/track", body.str(),
                     "application/x-www-form-urlencoded");
  }

  void proximityEvent(double, double, double, const Location&,
                      bool entering) override {
    if (!entering) {
      ++exits_;
      return;
    }
    ++entries_;
    core::HttpResult response =
        http_.post("http://wfm.example/checkin",
                   "agent=" + agent_id_ + "&site=hq",
                   "application/x-www-form-urlencoded");
    if (response.ok()) {
      assigned_task_ = response.body;
      // Notify the region supervisor by SMS (paper §2).
      sms_.sendTextMessage("+15550199",
                           agent_id_ + " on site, " + assigned_task_, this);
    }
  }

  void smsStatusChanged(long long, core::SmsDeliveryStatus status) override {
    sms_statuses_.push_back(status);
  }

  int entries() const { return entries_; }
  int exits() const { return exits_; }
  const std::string& assigned_task() const { return assigned_task_; }
  const std::vector<core::SmsDeliveryStatus>& sms_statuses() const {
    return sms_statuses_;
  }

 private:
  std::string agent_id_;
  LocationProxy& location_;
  SmsProxy& sms_;
  HttpProxy& http_;
  int entries_ = 0;
  int exits_ = 0;
  std::string assigned_task_;
  std::vector<core::SmsDeliveryStatus> sms_statuses_;
};

// ---------------------------------------------------------------------------
// Android run
// ---------------------------------------------------------------------------

TEST(Workforce, RunsOnAndroid) {
  auto dev = testing::MakeDevice(7);
  dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(180)));
  WorkforceServer server;
  server.AttachTo(dev->network());

  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kFineLocation);
  platform.grantPermission(android::permissions::kSendSms);
  platform.grantPermission(android::permissions::kInternet);

  ProxyRegistry registry(&Store());
  auto location = registry.CreateLocationProxy(platform);
  location->setProperty("context", &platform.application_context());
  auto sms = registry.CreateSmsProxy(platform);
  sms->setProperty("context", &platform.application_context());
  auto http = registry.CreateHttpProxy(platform);

  WorkforceCore app("agent-android", *location, *sms, *http);
  app.Start();
  dev->RunFor(sim::SimTime::Seconds(180));

  EXPECT_GE(app.entries(), 1);
  EXPECT_GE(app.exits(), 1);
  EXPECT_EQ(app.assigned_task(), "task:inspect-hq");
  ASSERT_EQ(server.checkins.count("agent-android"), 1u);
  EXPECT_GE(server.track_points["agent-android"], 1);
  // Android delivers both submit and delivery callbacks.
  ASSERT_GE(app.sms_statuses().size(), 2u);
  EXPECT_EQ(app.sms_statuses()[0], core::SmsDeliveryStatus::kSubmitted);
  EXPECT_EQ(app.sms_statuses()[1], core::SmsDeliveryStatus::kDelivered);
}

// ---------------------------------------------------------------------------
// S60 run: the SAME WorkforceCore type, zero changes.
// ---------------------------------------------------------------------------

TEST(Workforce, RunsOnS60Unchanged) {
  auto dev = testing::MakeDevice(7);
  dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(180)));
  WorkforceServer server;
  server.AttachTo(dev->network());

  s60::S60Platform platform(*dev);
  s60::ApplicationManager manager(platform);
  s60::MidletSuiteDescriptor suite;
  suite.suite_name = "WorkForce";
  suite.permissions = {s60::permissions::kLocation, s60::permissions::kSmsSend,
                       s60::permissions::kHttp};
  manager.installSuite(suite);

  ProxyRegistry registry(&Store());
  auto location = registry.CreateLocationProxy(platform);
  location->setProperty("verticalAccuracy", 50LL);
  auto sms = registry.CreateSmsProxy(platform);
  auto http = registry.CreateHttpProxy(platform);

  WorkforceCore app("agent-s60", *location, *sms, *http);
  app.Start();
  dev->RunFor(sim::SimTime::Seconds(180));

  EXPECT_GE(app.entries(), 1);
  EXPECT_GE(app.exits(), 1);
  EXPECT_EQ(app.assigned_task(), "task:inspect-hq");
  ASSERT_EQ(server.checkins.count("agent-s60"), 1u);
  // S60 has no delivery reports: only kSubmitted arrives.
  ASSERT_GE(app.sms_statuses().size(), 1u);
  EXPECT_EQ(app.sms_statuses()[0], core::SmsDeliveryStatus::kSubmitted);
}

// ---------------------------------------------------------------------------
// WebView run: the JavaScript twin of the same logic via the JS proxies.
// ---------------------------------------------------------------------------

TEST(Workforce, RunsOnWebView) {
  auto dev = testing::MakeDevice(7);
  dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(180)));
  WorkforceServer server;
  server.AttachTo(dev->network());

  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kFineLocation);
  platform.grantPermission(android::permissions::kSendSms);
  platform.grantPermission(android::permissions::kInternet);
  webview::WebView webview(platform);
  core::InstallWebViewProxies(webview);

  webview.loadScript(
      std::string(R"(
    var entries = 0;
    var exits = 0;
    var task = '';
    var smsStatuses = [];
    var loc = new LocationProxyImpl();
    loc.setProperty('provider', 'gps');
    var sms = new SmsProxyImpl();
    var http = new HttpProxyImpl();

    function proximityEvent(refLat, refLon, refAlt, current, entering) {
      if (!entering) { exits++; return; }
      entries++;
      var r = http.post('http://wfm.example/checkin',
                        'agent=agent-webview&site=hq',
                        'application/x-www-form-urlencoded');
      if (r.status == 200) {
        task = r.body;
        sms.sendTextMessage('+15550199', 'agent-webview on site, ' + task,
                            function(id, status) { smsStatuses.push(status); });
      }
    }

    function jsInit() {
      loc.addProximityAlert()") +
      std::to_string(kBaseLat) + ", " + std::to_string(kBaseLon) +
      R"(, 210, 200, -1, proximityEvent);
      var now = loc.getLocation();
      if (now.valid) {
        http.post('http://wfm.example/track',
                  'agent=agent-webview&lat=' + now.latitude +
                  '&lon=' + now.longitude,
                  'application/x-www-form-urlencoded');
      }
    }
    jsInit();
  )");
  dev->RunFor(sim::SimTime::Seconds(180));

  EXPECT_GE(webview.loadScript("entries;").as_number(), 1);
  EXPECT_GE(webview.loadScript("exits;").as_number(), 1);
  EXPECT_EQ(webview.loadScript("task;").as_string(), "task:inspect-hq");
  EXPECT_EQ(webview.loadScript("smsStatuses.join(',');").as_string(),
            "submitted,delivered");
  ASSERT_EQ(server.checkins.count("agent-webview"), 1u);
  EXPECT_GE(server.track_points["agent-webview"], 1);
}

// ---------------------------------------------------------------------------
// E4 as integration: the same WorkforceCore on Android m5 AND Android 1.0.
// ---------------------------------------------------------------------------

TEST(Workforce, SurvivesAndroidApiEvolution) {
  for (android::ApiLevel level :
       {android::ApiLevel::kM5, android::ApiLevel::k10}) {
    auto dev = testing::MakeDevice(7);
    dev->gps().set_track(ApproachTrack(800, 20.0, sim::SimTime::Seconds(120)));
    WorkforceServer server;
    server.AttachTo(dev->network());
    android::AndroidPlatform platform(*dev, level);
    platform.grantPermission(android::permissions::kFineLocation);
    platform.grantPermission(android::permissions::kSendSms);
    platform.grantPermission(android::permissions::kInternet);

    ProxyRegistry registry(&Store());
    auto location = registry.CreateLocationProxy(platform);
    location->setProperty("context", &platform.application_context());
    auto sms = registry.CreateSmsProxy(platform);
    sms->setProperty("context", &platform.application_context());
    auto http = registry.CreateHttpProxy(platform);

    WorkforceCore app("agent", *location, *sms, *http);
    app.Start();
    dev->RunFor(sim::SimTime::Seconds(120));
    EXPECT_GE(app.entries(), 1) << android::ToString(level);
  }
}

}  // namespace
}  // namespace mobivine
