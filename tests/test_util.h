// Shared helpers for the MobiVine test suite.
#pragma once

#include <memory>

#include "device/mobile_device.h"
#include "sim/geo_track.h"

namespace mobivine::testing {

/// IBM India Research Lab, New Delhi — the paper's venue, a natural test
/// site coordinate.
inline constexpr double kBaseLat = 28.5245;
inline constexpr double kBaseLon = 77.1855;

/// A device with deterministic seed, a stationary GPS track at the base
/// coordinate, and a couple of registered peers.
inline std::unique_ptr<device::MobileDevice> MakeDevice(
    std::uint64_t seed = 42) {
  device::DeviceConfig config;
  config.seed = seed;
  auto dev = std::make_unique<device::MobileDevice>(config);
  dev->gps().set_track(sim::GeoTrack::Stationary(kBaseLat, kBaseLon, 210.0));
  dev->modem().RegisterSubscriber("+15550123");
  dev->modem().RegisterSubscriber("+15550199");
  return dev;
}

/// Track that starts `start_offset_m` meters north of (kBaseLat, kBaseLon)
/// and drives south through the base point at `speed_mps`.
inline sim::GeoTrack ApproachTrack(double start_offset_m, double speed_mps,
                                   sim::SimTime duration) {
  auto start = support::MoveAlongBearing(kBaseLat, kBaseLon, 0.0,
                                         start_offset_m);
  return sim::GeoTrack::StraightLine(start.latitude_deg, start.longitude_deg,
                                     180.0, speed_mps, duration,
                                     sim::SimTime::Seconds(1));
}

}  // namespace mobivine::testing
