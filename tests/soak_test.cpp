// Soak + determinism: hours of virtual time through the full stack.
//
// Two invariants a middleware layer must hold over long runs:
//  * bit-for-bit reproducibility — the whole simulation is a function of
//    the seed (same seed => identical server-side activity log), which is
//    what makes every experiment in EXPERIMENTS.md trustworthy;
//  * bounded state — repeated proxy use must not accumulate registrations
//    (receivers, platform listeners) without bound.
#include <gtest/gtest.h>

#include <sstream>

#include "core/bindings/webview_proxies.h"
#include "core/registry.h"
#include "tests/test_util.h"
#include "webview/webview.h"

namespace mobivine {
namespace {

using core::DescriptorStore;
using core::ProxyRegistry;
using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;

const DescriptorStore& Store() {
  static const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

/// Shuttle track: out 600 m north and back through the site, repeated for
/// the whole soak window — one region entry + exit per lap.
sim::GeoTrack ShuttleTrack(sim::SimTime total, sim::SimTime lap) {
  sim::GeoTrack track;
  auto far_point = support::MoveAlongBearing(kBaseLat, kBaseLon, 0.0, 600);
  sim::SimTime t = sim::SimTime::Zero();
  bool at_site = true;
  while (t <= total) {
    track.AddWaypoint({t, at_site ? kBaseLat : far_point.latitude_deg,
                       at_site ? kBaseLon : far_point.longitude_deg, 0});
    at_site = !at_site;
    t += lap;
  }
  return track;
}

struct RunResult {
  std::string activity_log;
  int entries = 0;
  int exits = 0;
  std::size_t receiver_count = 0;
};

RunResult RunSoak(std::uint64_t seed, sim::SimTime duration) {
  device::DeviceConfig config;
  config.seed = seed;
  device::MobileDevice dev(config);
  dev.gps().set_track(ShuttleTrack(duration, sim::SimTime::Seconds(180)));
  dev.modem().RegisterSubscriber("+15550199");

  std::ostringstream log;
  dev.network().RegisterHost("wfm.example", [&](const device::HttpRequest& r) {
    log << dev.scheduler().now().micros() << ' ' << r.url.path << ' '
        << r.body << '\n';
    return device::HttpResponse::Ok("ok");
  });

  android::AndroidPlatform platform(dev);
  platform.grantPermission(android::permissions::kFineLocation);
  platform.grantPermission(android::permissions::kSendSms);
  platform.grantPermission(android::permissions::kInternet);

  ProxyRegistry registry(&Store());
  auto location = registry.CreateLocationProxy(platform);
  location->setProperty("context", &platform.application_context());
  auto sms = registry.CreateSmsProxy(platform);
  sms->setProperty("context", &platform.application_context());
  auto http = registry.CreateHttpProxy(platform);

  class Agent : public core::ProximityListener, public core::SmsListener {
   public:
    Agent(core::HttpProxy& http, core::SmsProxy& sms)
        : http_(http), sms_(sms) {}
    void proximityEvent(double, double, double, const core::Location&,
                        bool entering) override {
      entering ? ++entries : ++exits;
      (void)http_.post("http://wfm.example/event",
                       entering ? "k=in" : "k=out", "text/plain");
      if (entering) {
        sms_.sendTextMessage("+15550199", "lap done", this);
      }
    }
    void smsStatusChanged(long long, core::SmsDeliveryStatus) override {}
    core::HttpProxy& http_;
    core::SmsProxy& sms_;
    int entries = 0;
    int exits = 0;
  } agent(*http, *sms);

  location->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, -1, &agent);
  dev.RunFor(duration);

  RunResult result;
  result.activity_log = log.str();
  result.entries = agent.entries;
  result.exits = agent.exits;
  result.receiver_count = platform.application_context().receiver_count();
  return result;
}

TEST(Soak, TwoVirtualHoursOfLapsStayConsistent) {
  const sim::SimTime duration = sim::SimTime::Seconds(2 * 3600);
  RunResult result = RunSoak(1234, duration);
  // ~40 laps in 2 h at 180 s per leg: at least 15 full in/out cycles even
  // with GPS noise near the boundary.
  EXPECT_GE(result.entries, 15);
  // Entries and exits interleave: they differ by at most one.
  EXPECT_LE(std::abs(result.entries - result.exits), 1);
  EXPECT_GT(result.activity_log.size(), 0u);
}

TEST(Soak, ReceiverStateBoundedDespiteManySends) {
  const sim::SimTime duration = sim::SimTime::Seconds(2 * 3600);
  RunResult result = RunSoak(1234, duration);
  // One proximity receiver + at most a couple of in-flight SMS status
  // receivers — NOT one per sent message.
  EXPECT_LE(result.receiver_count, 4u);
}

TEST(Soak, IdenticalSeedsReproduceByteIdenticalLogs) {
  const sim::SimTime duration = sim::SimTime::Seconds(3600);
  RunResult a = RunSoak(777, duration);
  RunResult b = RunSoak(777, duration);
  EXPECT_EQ(a.activity_log, b.activity_log);
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.exits, b.exits);
}

TEST(Soak, WebViewSmsConversationsReleaseReceivers) {
  auto dev = testing::MakeDevice(55);
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kSendSms);
  webview::WebView webview(platform);
  core::InstallWebViewProxies(webview);

  webview.loadScript(R"(
    var delivered = 0;
    var sms = new SmsProxyImpl();
    function sendOne() {
      sms.sendTextMessage('+15550123', 'lap', function(id, status) {
        if (status == 'delivered') { delivered++; }
      });
    }
  )");
  for (int i = 0; i < 12; ++i) {
    webview.callGlobal("sendOne", {});
    dev->RunFor(sim::SimTime::Seconds(10));  // deliver + poll + release
  }
  EXPECT_DOUBLE_EQ(webview.loadScript("delivered;").as_number(), 12);
  // Terminal conversations released their action receivers; at most the
  // last one may still be mid-teardown.
  EXPECT_LE(webview.action_receiver_count(), 2u);
  EXPECT_LE(platform.application_context().receiver_count(), 2u);
  // And the stopped notifHandlers stopped burning interpreter steps: a
  // quiet stretch adds only the (possibly) last active poller.
  const auto steps_before = webview.interpreter().steps();
  dev->RunFor(sim::SimTime::Seconds(30));
  const auto quiet_steps = webview.interpreter().steps() - steps_before;
  EXPECT_LT(quiet_steps, 4000u);  // one poller max, not twelve
}

TEST(Soak, DifferentSeedsDiverge) {
  const sim::SimTime duration = sim::SimTime::Seconds(3600);
  RunResult a = RunSoak(777, duration);
  RunResult b = RunSoak(778, duration);
  // Same workload shape, different noise draws: the logs differ in the
  // timestamps even though the structure matches.
  EXPECT_NE(a.activity_log, b.activity_log);
}

}  // namespace
}  // namespace mobivine
