// M-Fleet: the device-fleet simulator's contract (src/fleet/).
//
// What must hold:
//  * DeviceState stays flyweight-sized — the whole 1M-device story rests
//    on per-device cost being a few bytes of extrinsic state;
//  * the arrival schedule is a pure function of the config: same seed =>
//    identical Preview digest, different seed => different schedule, and
//    the diurnal curve actually shapes arrival counts;
//  * PoissonDraw is mean-correct on both its branches (Knuth below 30,
//    normal approximation above);
//  * Run() drives a real gateway and the client-side per-tenant report
//    reconciles exactly with the gateway's server-side tenant rows, while
//    device state (GPS track progress, messaging counters) advances in
//    lockstep with what was submitted;
//  * RegisterMetrics exports the fleet.* counters M-Scope validates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "fleet/arrival.h"
#include "fleet/device_state.h"
#include "fleet/fleet.h"
#include "gateway/gateway.h"
#include "support/metrics.h"
#include "support/seed.h"

namespace mobivine {
namespace {

using fleet::DeviceState;
using fleet::DiurnalCurve;
using fleet::Fleet;
using fleet::FleetConfig;
using fleet::FleetReport;
using fleet::FleetTenant;
using fleet::FleetTenantReport;
using fleet::SchedulePreview;
using gateway::Gateway;
using gateway::GatewayConfig;
using gateway::TenantConfig;
using gateway::TenantSnapshot;

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

/// A small two-tenant fleet, unpaced so tests emit the schedule as fast
/// as possible instead of sleeping through wall-clock pacing.
FleetConfig SmallFleetConfig() {
  FleetConfig config;
  config.tenants = {
      FleetTenant{TenantConfig{1, "alpha", 2}, /*devices=*/150,
                  /*mean_rps_per_device=*/2.0},
      FleetTenant{TenantConfig{2, "beta", 1}, /*devices=*/50,
                  /*mean_rps_per_device=*/2.0},
  };
  config.duration_seconds = 0.5;
  config.tick_seconds = 0.005;
  config.seed = 7;
  config.producers = 2;
  config.paced = false;
  config.curve = DiurnalCurve::Flat();
  return config;
}

// ---------------------------------------------------------------------------
// Flyweight
// ---------------------------------------------------------------------------

TEST(FleetDeviceState, StaysFlyweightSized) {
  // 1M devices must fit one small contiguous vector; the static_assert in
  // device_state.h enforces <= 32, this pins the actual layout.
  EXPECT_EQ(sizeof(DeviceState), 16u);
  std::vector<DeviceState> million(1'000'000);
  EXPECT_LE(million.size() * sizeof(DeviceState), 32u << 20);
}

TEST(FleetDeviceState, ConstructionPartitionsDevicesByTenant) {
  Fleet fleet(SmallFleetConfig());
  ASSERT_EQ(fleet.device_count(), 200u);
  ASSERT_FALSE(fleet.routes().empty());
  std::vector<std::uint64_t> per_slot(2, 0);
  for (std::size_t i = 0; i < fleet.device_count(); ++i) {
    const DeviceState& device = fleet.device(i);
    ASSERT_LT(device.tenant_slot, 2u);  // fleet tenant index: alpha, beta
    ASSERT_LT(device.route, fleet.routes().size());
    ++per_slot[device.tenant_slot];
  }
  EXPECT_EQ(per_slot[0], 150u);  // alpha
  EXPECT_EQ(per_slot[1], 50u);   // beta
}

// ---------------------------------------------------------------------------
// Deterministic schedule
// ---------------------------------------------------------------------------

TEST(FleetSchedule, SameSeedSameSchedule) {
  const FleetConfig config = SmallFleetConfig();
  const SchedulePreview first = Fleet(config).Preview();
  const SchedulePreview second = Fleet(config).Preview();
  EXPECT_GT(first.arrivals, 0u);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.arrivals, second.arrivals);
  EXPECT_EQ(first.per_tenant, second.per_tenant);
  // Both tenants actually contribute arrivals.
  ASSERT_EQ(first.per_tenant.size(), 2u);
  EXPECT_GT(first.per_tenant[0], 0u);
  EXPECT_GT(first.per_tenant[1], 0u);
}

TEST(FleetSchedule, DifferentSeedDifferentSchedule) {
  FleetConfig config = SmallFleetConfig();
  const SchedulePreview first = Fleet(config).Preview();
  config.seed = 8;
  const SchedulePreview second = Fleet(config).Preview();
  EXPECT_NE(first.digest, second.digest);
}

TEST(FleetSchedule, PreviewMatchesWhatRunSubmits) {
  const FleetConfig config = SmallFleetConfig();
  const SchedulePreview preview = Fleet(config).Preview();

  GatewayConfig gw_config;
  gw_config.shards = 2;
  gw_config.store = &Store();
  Fleet fleet(config);
  gw_config.tenants = fleet.TenantConfigs();
  Gateway gateway(gw_config);
  const FleetReport report = fleet.Run(gateway);

  EXPECT_EQ(report.submitted, preview.arrivals);
  ASSERT_EQ(report.tenants.size(), preview.per_tenant.size());
  for (std::size_t t = 0; t < report.tenants.size(); ++t) {
    EXPECT_EQ(report.tenants[t].submitted, preview.per_tenant[t]);
  }
}

// ---------------------------------------------------------------------------
// Arrival model
// ---------------------------------------------------------------------------

TEST(FleetArrival, DiurnalCurveIsMeanOneAndShapesTheDay) {
  const DiurnalCurve flat = DiurnalCurve::Flat();
  EXPECT_DOUBLE_EQ(flat.RateAt(0.0), 1.0);
  EXPECT_DOUBLE_EQ(flat.RateAt(0.5), 1.0);

  const DiurnalCurve commuter = DiurnalCurve::Commuter();
  double mean = 0;
  for (double w : commuter.hourly()) mean += w;
  mean /= 24.0;
  EXPECT_NEAR(mean, 1.0, 1e-9);
  // Evening peak well above the overnight trough.
  EXPECT_GT(commuter.RateAt(19.0 / 24.0), 1.5);
  EXPECT_LT(commuter.RateAt(3.5 / 24.0), 0.5);
  // Fractions outside [0, 1) wrap.
  EXPECT_DOUBLE_EQ(commuter.RateAt(1.25), commuter.RateAt(0.25));
}

TEST(FleetArrival, PoissonDrawIsMeanCorrectOnBothBranches) {
  // mean 5 exercises the Knuth branch, mean 200 the normal approximation.
  for (const double mean : {5.0, 200.0}) {
    support::SplitMix64 rng(123);
    constexpr int kDraws = 20'000;
    double sum = 0;
    for (int i = 0; i < kDraws; ++i) sum += fleet::PoissonDraw(rng, mean);
    const double sample_mean = sum / kDraws;
    // 4-sigma band on the sample mean: 4 * sqrt(mean / kDraws).
    EXPECT_NEAR(sample_mean, mean, 4.0 * std::sqrt(mean / kDraws))
        << "mean=" << mean;
  }
  // Degenerate mean draws nothing.
  support::SplitMix64 rng(9);
  EXPECT_EQ(fleet::PoissonDraw(rng, 0.0), 0u);
}

TEST(FleetArrival, DiurnalCurveShapesArrivalCounts) {
  FleetConfig config = SmallFleetConfig();
  config.curve = DiurnalCurve::Commuter();
  config.day_seconds = 60.0;
  config.start_day_fraction = 19.0 / 24.0;  // evening peak
  const SchedulePreview peak = Fleet(config).Preview();
  config.start_day_fraction = 3.5 / 24.0;  // overnight trough
  const SchedulePreview trough = Fleet(config).Preview();
  // Peak rate is > 3x trough; even with Poisson noise the counts order.
  EXPECT_GT(peak.arrivals, trough.arrivals * 2);
}

// ---------------------------------------------------------------------------
// Driving a real gateway
// ---------------------------------------------------------------------------

TEST(FleetRun, ReconcilesWithGatewayTenantRowsAndAdvancesDevices) {
  const FleetConfig config = SmallFleetConfig();
  Fleet fleet(config);

  std::vector<std::uint32_t> offsets_before(fleet.device_count());
  for (std::size_t i = 0; i < fleet.device_count(); ++i) {
    offsets_before[i] = fleet.device(i).track_offset_s;
  }

  GatewayConfig gw_config;
  gw_config.shards = 2;
  gw_config.store = &Store();
  gw_config.tenants = fleet.TenantConfigs();
  Gateway gateway(gw_config);
  const FleetReport report = fleet.Run(gateway);

  // Something ran, and the fleet-level totals add up.
  ASSERT_GT(report.submitted, 0u);
  EXPECT_EQ(report.devices, fleet.device_count());
  EXPECT_EQ(report.ok + report.shed + report.failed + report.timed_out,
            report.submitted);

  // Client-side tenant rows reconcile with the gateway's server-side view.
  ASSERT_EQ(report.tenants.size(), 2u);
  std::uint64_t tenant_sum = 0;
  for (const FleetTenantReport& client : report.tenants) {
    tenant_sum += client.submitted;
    bool found = false;
    for (const TenantSnapshot& row : gateway.TenantStatsSnapshot()) {
      if (row.id != client.id) continue;
      found = true;
      EXPECT_EQ(row.submitted, client.submitted) << client.name;
      EXPECT_EQ(row.ok, client.ok) << client.name;
      EXPECT_EQ(row.shed, client.shed) << client.name;
      EXPECT_EQ(row.failed, client.failed) << client.name;
      EXPECT_EQ(row.timed_out, client.timed_out) << client.name;
    }
    EXPECT_TRUE(found) << "no gateway row for tenant " << client.id;
  }
  EXPECT_EQ(tenant_sum, report.submitted);

  // Device state advanced in lockstep with the schedule: every arrival
  // bumped its device's request counter, every telemetry report walked
  // the device 30 virtual seconds down its route.
  std::uint64_t device_requests = 0;
  std::uint64_t device_reports = 0;
  std::uint64_t device_sms = 0;
  for (std::size_t i = 0; i < fleet.device_count(); ++i) {
    const DeviceState& device = fleet.device(i);
    device_requests += device.requests;
    device_reports += device.reports;
    device_sms += device.sms_sent;
    EXPECT_EQ(device.track_offset_s,
              offsets_before[i] + 30u * device.reports);
  }
  EXPECT_EQ(device_requests, report.submitted);
  EXPECT_GT(device_reports, 0u);  // mix weight 4/9: reports dominate
  EXPECT_GT(device_sms, 0u);
}

TEST(FleetMetrics, ExportsFleetCountersAfterARun) {
  const FleetConfig config = SmallFleetConfig();
  Fleet fleet(config);
  GatewayConfig gw_config;
  gw_config.shards = 1;
  gw_config.store = &Store();
  gw_config.tenants = fleet.TenantConfigs();
  Gateway gateway(gw_config);

  support::MetricsRegistry registry;
  const auto registration = fleet.RegisterMetrics(registry);
  const FleetReport report = fleet.Run(gateway);

  const support::MetricsSnapshot snap = registry.Snapshot();
  const auto* devices = snap.Find("fleet.devices");
  ASSERT_NE(devices, nullptr);
  EXPECT_DOUBLE_EQ(devices->gauge, static_cast<double>(fleet.device_count()));
  const auto* submitted = snap.Find("fleet.submitted");
  ASSERT_NE(submitted, nullptr);
  EXPECT_EQ(submitted->count, report.submitted);
  const auto* completed = snap.Find("fleet.completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->count, report.submitted);  // quiescent after Run
  ASSERT_NE(snap.Find("fleet.tenants"), nullptr);
  ASSERT_NE(snap.Find("fleet.producers"), nullptr);
  ASSERT_NE(snap.Find("fleet.scheduled"), nullptr);
}

}  // namespace
}  // namespace mobivine
