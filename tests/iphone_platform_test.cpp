#include <gtest/gtest.h>

#include "iphone/address_book.h"
#include "iphone/core_location.h"
#include "iphone/iphone_platform.h"
#include "tests/test_util.h"

namespace mobivine::iphone {
namespace {

using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;
using mobivine::testing::MakeDevice;

class RecordingDelegate : public CLLocationManagerDelegate {
 public:
  void locationManagerDidUpdateToLocation(const CLLocation& new_location,
                                          const CLLocation& old) override {
    updates.push_back(new_location);
    previous.push_back(old);
  }
  void locationManagerDidFailWithError(const NSError& error) override {
    errors.push_back(error);
  }
  std::vector<CLLocation> updates;
  std::vector<CLLocation> previous;
  std::vector<NSError> errors;
};

TEST(IPhoneCoreLocation, StreamsFixesAfterAuthorization) {
  auto dev = MakeDevice();
  IPhonePlatform platform(*dev);
  CLLocationManager manager(platform);
  RecordingDelegate delegate;
  manager.setDelegate(&delegate);
  manager.setDesiredAccuracy(kCLLocationAccuracyNearestTenMeters);
  manager.startUpdatingLocation();

  // Nothing until the user answers the authorization prompt.
  EXPECT_TRUE(delegate.updates.empty());
  dev->RunFor(sim::SimTime::Seconds(15));
  ASSERT_GE(delegate.updates.size(), 10u);
  EXPECT_NEAR(delegate.updates[0].latitude, kBaseLat, 0.01);
  EXPECT_TRUE(delegate.updates[0].valid());
  // The delegate also receives the previous fix (invalid for the first).
  EXPECT_FALSE(delegate.previous[0].valid());
  EXPECT_TRUE(delegate.previous[1].valid());
}

TEST(IPhoneCoreLocation, DenialDeliversKCLErrorDenied) {
  auto dev = MakeDevice();
  IPhonePlatform platform(*dev);
  platform.set_user_allows_location(false);
  CLLocationManager manager(platform);
  RecordingDelegate delegate;
  manager.setDelegate(&delegate);
  manager.startUpdatingLocation();
  dev->RunFor(sim::SimTime::Seconds(15));
  EXPECT_TRUE(delegate.updates.empty());
  ASSERT_EQ(delegate.errors.size(), 1u);
  EXPECT_EQ(delegate.errors[0].domain, kCLErrorDomain);
  EXPECT_EQ(delegate.errors[0].code, kCLErrorDenied);
  EXPECT_FALSE(manager.updating());
}

TEST(IPhoneCoreLocation, StopUpdatingStopsStream) {
  auto dev = MakeDevice();
  IPhonePlatform platform(*dev);
  CLLocationManager manager(platform);
  RecordingDelegate delegate;
  manager.setDelegate(&delegate);
  manager.startUpdatingLocation();
  dev->RunFor(sim::SimTime::Seconds(8));
  const size_t count = delegate.updates.size();
  ASSERT_GT(count, 0u);
  manager.stopUpdatingLocation();
  dev->RunFor(sim::SimTime::Seconds(8));
  EXPECT_EQ(delegate.updates.size(), count);
}

TEST(IPhoneCoreLocation, GpsOutageReportsLocationUnknown) {
  device::DeviceConfig config;
  config.gps.fix_failure_probability = 1.0;
  device::MobileDevice dev(config);
  dev.gps().set_track(sim::GeoTrack::Stationary(kBaseLat, kBaseLon));
  IPhonePlatform platform(dev);
  CLLocationManager manager(platform);
  RecordingDelegate delegate;
  manager.setDelegate(&delegate);
  manager.startUpdatingLocation();
  dev.RunFor(sim::SimTime::Seconds(10));
  EXPECT_TRUE(delegate.updates.empty());
  ASSERT_FALSE(delegate.errors.empty());
  EXPECT_EQ(delegate.errors[0].code, kCLErrorLocationUnknown);
  EXPECT_TRUE(manager.updating());  // transient: the stream keeps trying
}

// ---------------------------------------------------------------------------
// openURL composer (sms: / tel:)
// ---------------------------------------------------------------------------

TEST(IPhoneOpenUrl, SmsComposerSendsAfterUserConfirms) {
  auto dev = MakeDevice();
  IPhonePlatform platform(*dev);
  std::vector<IPhonePlatform::ComposerOutcome> outcomes;
  platform.set_composer_observer(
      [&](IPhonePlatform::ComposerOutcome outcome) {
        outcomes.push_back(outcome);
      });
  ASSERT_TRUE(platform.openURL("sms:+15550123", "hello"));
  EXPECT_TRUE(outcomes.empty());  // user has not decided yet
  dev->RunFor(sim::SimTime::Seconds(30));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0], IPhonePlatform::ComposerOutcome::kSent);
}

TEST(IPhoneOpenUrl, UserCancellationReported) {
  auto dev = MakeDevice();
  IPhonePlatform platform(*dev);
  platform.set_user_confirms_compose(false);
  ASSERT_TRUE(platform.openURL("sms:+15550123", "hello"));
  dev->RunFor(sim::SimTime::Seconds(30));
  EXPECT_EQ(platform.last_composer_outcome(),
            IPhonePlatform::ComposerOutcome::kCancelled);
}

TEST(IPhoneOpenUrl, UnreachableDestinationFails) {
  auto dev = MakeDevice();
  IPhonePlatform platform(*dev);
  ASSERT_TRUE(platform.openURL("sms:+10000000", "hello"));
  dev->RunFor(sim::SimTime::Seconds(30));
  EXPECT_EQ(platform.last_composer_outcome(),
            IPhonePlatform::ComposerOutcome::kFailed);
}

TEST(IPhoneOpenUrl, TelLaunchesCall) {
  auto dev = MakeDevice();
  IPhonePlatform platform(*dev);
  ASSERT_TRUE(platform.openURL("tel:+15550123"));
  dev->RunFor(sim::SimTime::Seconds(30));
  EXPECT_EQ(platform.last_composer_outcome(),
            IPhonePlatform::ComposerOutcome::kSent);
  EXPECT_EQ(dev->modem().call_state(), device::CallState::kConnected);
}

TEST(IPhoneOpenUrl, RejectsUnsupportedSchemes) {
  auto dev = MakeDevice();
  IPhonePlatform platform(*dev);
  EXPECT_FALSE(platform.openURL("mailto:x@y"));
  EXPECT_FALSE(platform.openURL("sms:"));
  EXPECT_FALSE(platform.openURL("nonsense"));
}

// ---------------------------------------------------------------------------
// NSURLConnection
// ---------------------------------------------------------------------------

TEST(IPhoneNsUrl, SynchronousRequestRoundTrip) {
  auto dev = MakeDevice();
  dev->network().RegisterHost("server", [](const device::HttpRequest& req) {
    return device::HttpResponse::Ok("echo:" + req.body);
  });
  IPhonePlatform platform(*dev);
  NSError error = NSError::None();
  auto response = platform.sendSynchronousRequest(
      "POST", "http://server/x", "data", "text/plain", error);
  EXPECT_TRUE(error.ok());
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body, "echo:data");
}

TEST(IPhoneNsUrl, ErrorsAsNSError) {
  auto dev = MakeDevice();
  IPhonePlatform platform(*dev);
  NSError error = NSError::None();
  (void)platform.sendSynchronousRequest("GET", "http://ghost/", "", "", error);
  EXPECT_EQ(error.domain, kNSURLErrorDomain);
  EXPECT_EQ(error.code, kNSURLErrorCannotFindHost);

  (void)platform.sendSynchronousRequest("GET", "garbage", "", "", error);
  EXPECT_EQ(error.code, kNSURLErrorBadURL);
}

// ---------------------------------------------------------------------------
// AddressBook
// ---------------------------------------------------------------------------

TEST(IPhoneAddressBook, CopyAllPeople) {
  auto dev = MakeDevice();
  dev->contacts().Add("Ravi Kumar", "+15550123", "ravi@example.com");
  dev->contacts().Add("Sunita Devi", "+15550199", "");
  IPhonePlatform platform(*dev);
  ABAddressBook book(platform);
  EXPECT_EQ(book.GetPersonCount(), 2);
  auto people = book.CopyArrayOfAllPeople();
  ASSERT_EQ(people.size(), 2u);
  EXPECT_EQ(people[0].CopyValue(kABPersonNameProperty), "Ravi Kumar");
  EXPECT_EQ(people[0].CopyValue(kABPersonPhoneProperty), "+15550123");
  EXPECT_THROW(people[0].CopyValue(999), NSInvalidArgumentException);
}

}  // namespace
}  // namespace mobivine::iphone
