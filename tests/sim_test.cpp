#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.h"
#include "sim/geo_track.h"
#include "sim/latency_model.h"
#include "sim/random.h"
#include "sim/scheduler.h"
#include "support/geo_units.h"

namespace mobivine::sim {
namespace {

TEST(SimTime, ArithmeticAndComparisons) {
  EXPECT_EQ(SimTime::Millis(1), SimTime::Micros(1000));
  EXPECT_EQ(SimTime::Seconds(2) + SimTime::Millis(500),
            SimTime::MillisF(2500.0));
  EXPECT_LT(SimTime::Millis(1), SimTime::Millis(2));
  EXPECT_EQ((SimTime::Millis(10) - SimTime::Millis(4)).millis(), 6.0);
  EXPECT_EQ((SimTime::Millis(3) * 4).millis(), 12.0);
}

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.ScheduleAt(SimTime::Millis(30), [&] { order.push_back(3); });
  scheduler.ScheduleAt(SimTime::Millis(10), [&] { order.push_back(1); });
  scheduler.ScheduleAt(SimTime::Millis(20), [&] { order.push_back(2); });
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), SimTime::Millis(30));
}

TEST(Scheduler, FifoWithinSameInstant) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    scheduler.ScheduleAt(SimTime::Millis(5), [&order, i] { order.push_back(i); });
  }
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler scheduler;
  bool fired = false;
  EventId id = scheduler.ScheduleAfter(SimTime::Millis(5), [&] { fired = true; });
  EXPECT_TRUE(scheduler.Cancel(id));
  scheduler.Run();
  EXPECT_FALSE(fired);
  // Double-cancel and bogus ids are rejected.
  EXPECT_FALSE(scheduler.Cancel(id));
  EXPECT_FALSE(scheduler.Cancel(0));
  EXPECT_FALSE(scheduler.Cancel(9999));
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler scheduler;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) scheduler.ScheduleAfter(SimTime::Millis(10), chain);
  };
  scheduler.ScheduleAfter(SimTime::Millis(10), chain);
  scheduler.Run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(scheduler.now(), SimTime::Millis(50));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler scheduler;
  std::vector<int> fired;
  scheduler.ScheduleAt(SimTime::Millis(10), [&] { fired.push_back(10); });
  scheduler.ScheduleAt(SimTime::Millis(20), [&] { fired.push_back(20); });
  scheduler.ScheduleAt(SimTime::Millis(30), [&] { fired.push_back(30); });
  scheduler.RunUntil(SimTime::Millis(20));
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(scheduler.now(), SimTime::Millis(20));
  scheduler.Run();
  EXPECT_EQ(fired.back(), 30);
}

TEST(Scheduler, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Scheduler scheduler;
  scheduler.RunUntil(SimTime::Seconds(5));
  EXPECT_EQ(scheduler.now(), SimTime::Seconds(5));
}

TEST(Scheduler, AdvanceByMovesClockForwardOnly) {
  Scheduler scheduler;
  scheduler.AdvanceBy(SimTime::Millis(7));
  scheduler.AdvanceBy(SimTime::Millis(-3));  // ignored
  EXPECT_EQ(scheduler.now(), SimTime::Millis(7));
}

TEST(Scheduler, PastScheduleClampsToNow) {
  Scheduler scheduler;
  scheduler.AdvanceBy(SimTime::Millis(100));
  bool fired = false;
  scheduler.ScheduleAt(SimTime::Millis(10), [&] { fired = true; });
  scheduler.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(scheduler.now(), SimTime::Millis(100));
}

TEST(Scheduler, RunLimitBoundsExecution) {
  Scheduler scheduler;
  int count = 0;
  std::function<void()> forever = [&] {
    ++count;
    scheduler.ScheduleAfter(SimTime::Millis(1), forever);
  };
  scheduler.ScheduleAfter(SimTime::Millis(1), forever);
  EXPECT_EQ(scheduler.Run(100), 100u);
  EXPECT_EQ(count, 100);
}

// ---------------------------------------------------------------------------
// Rng / latency models
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(LatencyModel, FixedAlwaysSame) {
  Rng rng(3);
  auto model = LatencyModel::Fixed(SimTime::Millis(12));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.Sample(rng), SimTime::Millis(12));
  }
  EXPECT_EQ(model.Mean(), SimTime::Millis(12));
}

TEST(LatencyModel, UniformWithinBoundsAndMean) {
  Rng rng(3);
  auto model = LatencyModel::UniformIn(SimTime::Millis(10), SimTime::Millis(20));
  for (int i = 0; i < 1000; ++i) {
    auto sample = model.Sample(rng);
    EXPECT_GE(sample, SimTime::Millis(10));
    EXPECT_LE(sample, SimTime::Millis(20));
  }
  EXPECT_EQ(model.Mean(), SimTime::Millis(15));
}

TEST(LatencyModel, NormalClampedAtMin) {
  Rng rng(3);
  auto model = LatencyModel::Normal(SimTime::Millis(5), SimTime::Millis(10),
                                    SimTime::Millis(4));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(model.Sample(rng), SimTime::Millis(4));
  }
}

TEST(LatencyModel, NormalSampleMeanApproximatesMean) {
  Rng rng(11);
  auto model = LatencyModel::Normal(SimTime::Millis(50), SimTime::Millis(3));
  double total_ms = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) total_ms += model.Sample(rng).millis();
  EXPECT_NEAR(total_ms / n, 50.0, 0.5);
}

// ---------------------------------------------------------------------------
// GeoTrack
// ---------------------------------------------------------------------------

TEST(GeoTrack, StationaryHoldsPosition) {
  auto track = GeoTrack::Stationary(28.5, 77.2, 100);
  auto fix = track.PositionAt(SimTime::Seconds(1000));
  EXPECT_DOUBLE_EQ(fix.latitude_deg, 28.5);
  EXPECT_DOUBLE_EQ(fix.longitude_deg, 77.2);
  EXPECT_DOUBLE_EQ(fix.altitude_m, 100);
  EXPECT_DOUBLE_EQ(fix.speed_mps, 0.0);
}

TEST(GeoTrack, RejectsOutOfOrderWaypoints) {
  GeoTrack track;
  track.AddWaypoint({SimTime::Seconds(10), 28.5, 77.2, 0});
  EXPECT_THROW(track.AddWaypoint({SimTime::Seconds(5), 28.5, 77.2, 0}),
               std::invalid_argument);
}

TEST(GeoTrack, StraightLineSpeedAndDistance) {
  auto track = GeoTrack::StraightLine(28.5, 77.2, 90.0, 10.0,
                                      SimTime::Seconds(100),
                                      SimTime::Seconds(10));
  auto mid = track.PositionAt(SimTime::Seconds(50));
  EXPECT_NEAR(mid.speed_mps, 10.0, 0.2);
  const double travelled = support::HaversineMeters(
      28.5, 77.2, mid.latitude_deg, mid.longitude_deg);
  EXPECT_NEAR(travelled, 500.0, 5.0);
}

TEST(GeoTrack, InterpolatesBetweenWaypoints) {
  GeoTrack track;
  track.AddWaypoint({SimTime::Zero(), 28.0, 77.0, 0});
  track.AddWaypoint({SimTime::Seconds(100), 28.0, 77.0, 100});
  auto fix = track.PositionAt(SimTime::Seconds(50));
  EXPECT_NEAR(fix.altitude_m, 50.0, 1e-9);
}

TEST(GeoTrack, HoldsBeforeFirstAndAfterLast) {
  GeoTrack track;
  track.AddWaypoint({SimTime::Seconds(10), 28.0, 77.0, 0});
  track.AddWaypoint({SimTime::Seconds(20), 29.0, 77.0, 0});
  EXPECT_DOUBLE_EQ(track.PositionAt(SimTime::Zero()).latitude_deg, 28.0);
  EXPECT_DOUBLE_EQ(track.PositionAt(SimTime::Seconds(100)).latitude_deg, 29.0);
}

}  // namespace
}  // namespace mobivine::sim
