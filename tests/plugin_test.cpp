#include <gtest/gtest.h>

#include <algorithm>

#include "plugin/codegen.h"
#include "plugin/configuration.h"
#include "plugin/drawer.h"
#include "plugin/metrics.h"
#include "plugin/packaging.h"

namespace mobivine::plugin {
namespace {

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

// ---------------------------------------------------------------------------
// Drawer
// ---------------------------------------------------------------------------

TEST(Drawer, AndroidHasAllCategories) {
  ProxyDrawer drawer(Store(), "android");
  EXPECT_EQ(drawer.categories().size(), 5u);
  EXPECT_NE(drawer.Find("Location", "addProximityAlert"), nullptr);
  EXPECT_NE(drawer.Find("Call", "makeCall"), nullptr);
  EXPECT_NE(drawer.Find("Pim", "listContacts"), nullptr);
  EXPECT_EQ(drawer.Find("Location", "bogus"), nullptr);
}

TEST(Drawer, S60OmitsCallCategory) {
  ProxyDrawer drawer(Store(), "s60");
  EXPECT_EQ(drawer.categories().size(), 4u);
  EXPECT_EQ(drawer.Find("Call", "makeCall"), nullptr);
  EXPECT_NE(drawer.Find("Sms", "sendTextMessage"), nullptr);
}

TEST(Drawer, IPhoneExtensionAppears) {
  ProxyDrawer drawer(Store(), "iphone");
  EXPECT_EQ(drawer.categories().size(), 5u);
  EXPECT_NE(drawer.Find("Call", "makeCall"), nullptr);
}

TEST(Drawer, RenderListsItems) {
  ProxyDrawer drawer(Store(), "webview");
  const std::string rendered = drawer.Render();
  EXPECT_NE(rendered.find("Location.addProximityAlert"), std::string::npos);
  EXPECT_NE(rendered.find("Http.post"), std::string::npos);
  EXPECT_GE(drawer.item_count(), 8u);
}

// ---------------------------------------------------------------------------
// Configuration dialog model
// ---------------------------------------------------------------------------

ProxyConfiguration AlertConfig(const std::string& platform) {
  ProxyConfiguration config = ProxyConfiguration::For(
      *Store().Find("Location"), "addProximityAlert", platform);
  config.SetVariable("latitude", "28.5245");
  config.SetVariable("longitude", "77.1855");
  config.SetVariable("altitude", "210");
  config.SetVariable("radius", "200");
  config.SetVariable("timer", "-1");
  return config;
}

TEST(Configuration, VariablesComeFromSemanticAndSyntacticPlanes) {
  ProxyConfiguration config = AlertConfig("android");
  ASSERT_EQ(config.variables().size(), 5u);
  EXPECT_EQ(config.variables()[0].name, "latitude");
  EXPECT_EQ(config.variables()[0].dimension, "degrees");
  EXPECT_EQ(config.variables()[0].type, "double");
  EXPECT_EQ(config.variables()[4].type, "long");
  EXPECT_TRUE(config.has_callback());
  EXPECT_EQ(config.callback_method(), "proximityEvent");
}

TEST(Configuration, PropertiesComeFromBindingPlane) {
  ProxyConfiguration android_config = AlertConfig("android");
  ASSERT_EQ(android_config.properties().size(), 2u);  // context + provider
  ProxyConfiguration s60_config = AlertConfig("s60");
  EXPECT_EQ(s60_config.properties().size(), 6u);
  EXPECT_EQ(s60_config.EffectiveProperty("locationTimeout"), "30");
}

TEST(Configuration, ValidateCatchesProblems) {
  ProxyConfiguration config = ProxyConfiguration::For(
      *Store().Find("Location"), "addProximityAlert", "android");
  auto problems = config.Validate();
  EXPECT_EQ(problems.size(), 5u);  // all five variables unset

  config = AlertConfig("android");
  EXPECT_TRUE(config.Validate().empty());

  config.SetProperty("provider", "wifi");
  problems = config.Validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("provider"), std::string::npos);
}

TEST(Configuration, UnknownMethodOrPlatformThrows) {
  EXPECT_THROW(ProxyConfiguration::For(*Store().Find("Location"), "bogus",
                                       "android"),
               std::invalid_argument);
  EXPECT_THROW(
      ProxyConfiguration::For(*Store().Find("Call"), "makeCall", "s60"),
      std::invalid_argument);
}

TEST(Configuration, SettersRejectUnknownNames) {
  ProxyConfiguration config = AlertConfig("android");
  EXPECT_FALSE(config.SetVariable("nope", "1"));
  EXPECT_FALSE(config.SetProperty("nope", "1"));
  EXPECT_TRUE(config.SetProperty("provider", "network"));
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

TEST(Codegen, ProxyFragmentMirrorsFigure8) {
  CodeGenerator generator(Store());
  GeneratedCode android_code = generator.ApplicationFragment(
      AlertConfig("android"), CodeStyle::kProxy);
  EXPECT_EQ(android_code.language, "java");
  EXPECT_NE(android_code.code.find("extends Activity"), std::string::npos);
  EXPECT_NE(android_code.code.find("setProperty(\"context\", this)"),
            std::string::npos);
  EXPECT_NE(android_code.code.find("loc.addProximityAlert(28.5245"),
            std::string::npos);
  EXPECT_NE(android_code.code.find("proximityEvent"), std::string::npos);
  // The Intent machinery is NOT in the generated application code.
  EXPECT_EQ(android_code.code.find("IntentReceiver"), std::string::npos);

  GeneratedCode s60_code =
      generator.ApplicationFragment(AlertConfig("s60"), CodeStyle::kProxy);
  EXPECT_NE(s60_code.code.find("extends MIDlet"), std::string::npos);
  EXPECT_NE(s60_code.code.find("loc.addProximityAlert(28.5245"),
            std::string::npos);
}

TEST(Codegen, ProxyFragmentMirrorsFigure9OnWebView) {
  CodeGenerator generator(Store());
  GeneratedCode js = generator.ApplicationFragment(AlertConfig("webview"),
                                                   CodeStyle::kProxy);
  EXPECT_EQ(js.language, "javascript");
  EXPECT_NE(js.code.find("new LocationProxyImpl()"), std::string::npos);
  EXPECT_NE(js.code.find("function proximityEvent"), std::string::npos);
  EXPECT_NE(js.code.find("function JSInit"), std::string::npos);
}

TEST(Codegen, RawFragmentMirrorsFigure2) {
  CodeGenerator generator(Store());
  GeneratedCode android_raw = generator.ApplicationFragment(
      AlertConfig("android"), CodeStyle::kRaw);
  EXPECT_NE(android_raw.code.find("IntentReceiver"), std::string::npos);
  EXPECT_NE(android_raw.code.find("registerReceiver"), std::string::npos);

  GeneratedCode s60_raw =
      generator.ApplicationFragment(AlertConfig("s60"), CodeStyle::kRaw);
  EXPECT_NE(s60_raw.code.find("addProximityListener"), std::string::npos);
  EXPECT_NE(s60_raw.code.find("locationUpdated"), std::string::npos);
}

TEST(Codegen, GeneratedProxyCodeSmallerThanRaw) {
  // E2's claim in unit-test form, for every platform.
  CodeGenerator generator(Store());
  for (const char* platform : {"android", "s60", "webview"}) {
    GeneratedCode with_proxy = generator.ApplicationFragment(
        AlertConfig(platform), CodeStyle::kProxy);
    GeneratedCode raw =
        generator.ApplicationFragment(AlertConfig(platform), CodeStyle::kRaw);
    EXPECT_LT(Measure(with_proxy.code).lines, Measure(raw.code).lines)
        << platform;
  }
}

TEST(Codegen, ProxyCodeMoreSimilarAcrossPlatformsThanRaw) {
  // E3's claim in unit-test form.
  CodeGenerator generator(Store());
  auto fragment = [&](const char* platform, CodeStyle style) {
    return generator.ApplicationFragment(AlertConfig(platform), style).code;
  };
  const double proxy_sim =
      LineSimilarity(fragment("android", CodeStyle::kProxy),
                     fragment("s60", CodeStyle::kProxy));
  const double raw_sim = LineSimilarity(fragment("android", CodeStyle::kRaw),
                                        fragment("s60", CodeStyle::kRaw));
  EXPECT_GT(proxy_sim, raw_sim);
  EXPECT_GT(proxy_sim, 0.5);
}

TEST(Codegen, InvocationSnippetCompact) {
  CodeGenerator generator(Store());
  GeneratedCode snippet =
      generator.InvocationSnippet(AlertConfig("android"), CodeStyle::kProxy);
  EXPECT_NE(snippet.code.find("addProximityAlert"), std::string::npos);
  EXPECT_LT(Measure(snippet.code).lines, 15);
}

TEST(Codegen, SmsAndHttpTemplatesExist) {
  CodeGenerator generator(Store());
  ProxyConfiguration sms = ProxyConfiguration::For(
      *Store().Find("Sms"), "sendTextMessage", "s60");
  sms.SetVariable("destination", "\"+15550123\"");
  sms.SetVariable("text", "\"report\"");
  EXPECT_NE(generator.ApplicationFragment(sms, CodeStyle::kRaw)
                .code.find("MessageConnection"),
            std::string::npos);

  ProxyConfiguration http =
      ProxyConfiguration::For(*Store().Find("Http"), "post", "android");
  http.SetVariable("url", "\"http://server/x\"");
  http.SetVariable("body", "\"{}\"");
  http.SetVariable("contentType", "\"application/json\"");
  EXPECT_NE(generator.ApplicationFragment(http, CodeStyle::kRaw)
                .code.find("HttpPost"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, MeasureCountsLinesTokensBranches) {
  const std::string code = R"(
    // comment only
    if (a > b) {
      x = 1; /* inline */
    } else {
      while (y) { y--; }
    }
  )";
  CodeMetrics metrics = Measure(code);
  EXPECT_EQ(metrics.lines, 5);
  EXPECT_EQ(metrics.branches, 3);  // if, else, while
  EXPECT_GT(metrics.tokens, 15);
}

TEST(Metrics, CommentsAndStringsHandled) {
  CodeMetrics metrics = Measure("var s = \"if // not a comment\"; // real");
  EXPECT_EQ(metrics.branches, 0);
  EXPECT_EQ(metrics.lines, 1);
}

TEST(Metrics, LineSimilarityProperties) {
  EXPECT_DOUBLE_EQ(LineSimilarity("a;\nb;\n", "a;\nb;\n"), 1.0);
  EXPECT_DOUBLE_EQ(LineSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LineSimilarity("a;", ""), 0.0);
  const double partial = LineSimilarity("a;\nb;\nc;", "a;\nx;\nc;");
  EXPECT_GT(partial, 0.5);
  EXPECT_LT(partial, 1.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(LineSimilarity("a;\nb;", "b;"),
                   LineSimilarity("b;", "a;\nb;"));
}

// ---------------------------------------------------------------------------
// Packaging
// ---------------------------------------------------------------------------

TEST(Packaging, S60SingleJarMergeWithPermissions) {
  S60Packager packager(Store());
  Jar app;
  app.name = "workforce.jar";
  app.entries = {{"com/acme/WorkForce.class", 9000},
                 {"META-INF/MANIFEST.MF", 100}};
  S60Package package =
      packager.Package(app, {"Location", "Sms", "Http"}, "WorkForce",
                       {{"MIDlet-Install-Notify", "http://ota/notify"}});

  // One jar, containing both the app and every proxy artifact.
  EXPECT_TRUE(package.suite_jar.HasEntry("com/acme/WorkForce.class"));
  EXPECT_GE(package.suite_jar.entries.size(), 7u);
  EXPECT_EQ(package.descriptor.permissions.size(), 3u);
  EXPECT_EQ(package.descriptor.properties[0].second, "http://ota/notify");
  // Artifact manifests are dropped in favour of the app's.
  int manifests = 0;
  for (const auto& entry : package.suite_jar.entries) {
    if (entry.path == "META-INF/MANIFEST.MF") ++manifests;
  }
  EXPECT_EQ(manifests, 1);
}

TEST(Packaging, S60RejectsCallProxy) {
  S60Packager packager(Store());
  Jar app;
  EXPECT_THROW(packager.Package(app, {"Call"}, "X"), std::invalid_argument);
}

TEST(Packaging, AndroidClasspathAndManifestIdempotent) {
  AndroidPackager packager(Store());
  AndroidProject project;
  project.name = "workforce";
  packager.Absorb(project, {"Location", "Sms"});
  packager.Absorb(project, {"Location"});  // again: no duplicates
  EXPECT_EQ(project.classpath.size(), 2u);
  ASSERT_EQ(project.manifest_permissions.size(), 2u);
  EXPECT_EQ(project.manifest_permissions[0],
            "android.permission.ACCESS_FINE_LOCATION");
}

TEST(Packaging, WebViewAssetsAndWrappers) {
  WebViewPackager packager(Store());
  WebViewProject project;
  packager.Absorb(project, {"Location", "Sms", "Http", "Call"});
  // The shared JS library appears once.
  int js_count = 0;
  for (const auto& asset : project.page_assets) {
    if (asset == "mobivine-proxies.js") ++js_count;
  }
  EXPECT_EQ(js_count, 1);
  EXPECT_EQ(project.injected_wrappers.size(), 4u);
  EXPECT_NE(std::find(project.injected_wrappers.begin(),
                      project.injected_wrappers.end(),
                      "createSmsWrapperInstance"),
            project.injected_wrappers.end());
}

TEST(Packaging, RequiredPermissionsMatrix) {
  EXPECT_EQ(RequiredPermissions("Location", "android")[0],
            "android.permission.ACCESS_FINE_LOCATION");
  EXPECT_EQ(RequiredPermissions("Sms", "s60")[0],
            "javax.wireless.messaging.sms.send");
  EXPECT_EQ(RequiredPermissions("Pim", "android")[0],
            "android.permission.READ_CONTACTS");
  EXPECT_EQ(RequiredPermissions("Pim", "s60")[0],
            "javax.microedition.pim.ContactList.read");
  EXPECT_TRUE(RequiredPermissions("Call", "s60").empty());
  EXPECT_TRUE(RequiredPermissions("Unknown", "android").empty());
  // iPhone declares nothing at package time (runtime consent dialogs).
  EXPECT_TRUE(RequiredPermissions("Location", "iphone").empty());
}

TEST(Packaging, IPhoneBundleLinksStaticLibraries) {
  IPhonePackager packager(Store());
  IPhoneAppBundle bundle{"Dispatch", {}};
  packager.Absorb(bundle, {"Location", "Sms", "Pim"});
  packager.Absorb(bundle, {"Location"});  // idempotent
  ASSERT_EQ(bundle.linked_libraries.size(), 3u);
  EXPECT_EQ(bundle.linked_libraries[0], "libMobiVineLocation.a");
}

TEST(Codegen, ObjCProxyFragment) {
  CodeGenerator generator(Store());
  ProxyConfiguration config = AlertConfig("iphone");
  GeneratedCode proxy_code =
      generator.ApplicationFragment(config, CodeStyle::kProxy);
  EXPECT_EQ(proxy_code.language, "objc");
  EXPECT_NE(proxy_code.code.find("MVLocationProxy"), std::string::npos);
  EXPECT_NE(proxy_code.code.find("@try"), std::string::npos);

  GeneratedCode raw_code =
      generator.ApplicationFragment(config, CodeStyle::kRaw);
  EXPECT_NE(raw_code.code.find("CLLocationManager"), std::string::npos);
  EXPECT_NE(raw_code.code.find("didUpdateToLocation"), std::string::npos);
  // The raw iPhone geofence-by-hand code is much bigger.
  EXPECT_LT(Measure(proxy_code.code).lines, Measure(raw_code.code).lines);
}

TEST(Codegen, PimRawTemplatesPerPlatform) {
  CodeGenerator generator(Store());
  for (const char* platform : {"android", "s60", "iphone", "webview"}) {
    ProxyConfiguration config =
        ProxyConfiguration::For(*Store().Find("Pim"), "listContacts",
                                platform);
    GeneratedCode raw = generator.ApplicationFragment(config, CodeStyle::kRaw);
    EXPECT_FALSE(raw.code.empty()) << platform;
  }
  // The raw shapes are platform-specific; the proxy shapes are not.
  ProxyConfiguration android_config =
      ProxyConfiguration::For(*Store().Find("Pim"), "listContacts", "android");
  ProxyConfiguration s60_config =
      ProxyConfiguration::For(*Store().Find("Pim"), "listContacts", "s60");
  const double raw_sim = LineSimilarity(
      generator.ApplicationFragment(android_config, CodeStyle::kRaw).code,
      generator.ApplicationFragment(s60_config, CodeStyle::kRaw).code);
  const double proxy_sim = LineSimilarity(
      generator.InvocationSnippet(android_config, CodeStyle::kProxy).code,
      generator.InvocationSnippet(s60_config, CodeStyle::kProxy).code);
  EXPECT_GT(proxy_sim, raw_sim);
}

}  // namespace
}  // namespace mobivine::plugin
