#include <gtest/gtest.h>

#include "core/bindings/s60_bindings.h"
#include "core/registry.h"
#include "tests/test_util.h"

namespace mobivine::core {
namespace {

using mobivine::testing::kBaseLat;
using mobivine::testing::kBaseLon;
using mobivine::testing::MakeDevice;

const DescriptorStore& Store() {
  static const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

struct Fixture {
  explicit Fixture(std::uint64_t seed = 42)
      : dev(MakeDevice(seed)), platform(*dev), registry(&Store()) {
    platform.grantPermission(s60::permissions::kLocation);
    platform.grantPermission(s60::permissions::kSmsSend);
    platform.grantPermission(s60::permissions::kHttp);
  }
  std::unique_ptr<device::MobileDevice> dev;
  s60::S60Platform platform;
  ProxyRegistry registry;
};

class RecordingProximity : public ProximityListener {
 public:
  struct Event {
    bool entering;
    Location location;
  };
  void proximityEvent(double, double, double, const Location& current,
                      bool entering) override {
    events.push_back({entering, current});
  }
  std::vector<Event> events;
};

class RecordingSms : public SmsListener {
 public:
  void smsStatusChanged(long long id, SmsDeliveryStatus status) override {
    events.emplace_back(id, status);
  }
  std::vector<std::pair<long long, SmsDeliveryStatus>> events;
};

/// Out-and-back track: starts 800 m north, drives south through the base
/// point, keeps going — producing one entry and one exit.
sim::GeoTrack ThroughTrack() {
  return mobivine::testing::ApproachTrack(800, 20.0, sim::SimTime::Seconds(150));
}

// ---------------------------------------------------------------------------
// getLocation with criteria properties
// ---------------------------------------------------------------------------

TEST(S60LocationProxy, CriteriaPropertiesConsumed) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  proxy->setProperty("verticalAccuracy", 50LL);
  proxy->setProperty("preferredResponseTime", 0LL);
  Location location = proxy->getLocation();
  EXPECT_TRUE(location.valid);
  EXPECT_NEAR(location.latitude, kBaseLat, 0.01);
  // High-accuracy criteria -> small reported accuracy.
  EXPECT_LE(location.accuracy_m, 5.0);
}

TEST(S60LocationProxy, Figure10WithProxyTiming) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  proxy->setProperty("verticalAccuracy", 50LL);
  const sim::SimTime before = fx.dev->scheduler().now();
  (void)proxy->getLocation();
  const double elapsed = (fx.dev->scheduler().now() - before).millis();
  // Paper Figure 10: S60 getLocation with proxy ~148.5 ms (native 140.8 +
  // ~7.7 proxy overhead, incl. getInstance).
  EXPECT_NEAR(elapsed, 155.0, 25.0);
}

TEST(S60LocationProxy, PowerConsumptionPropertyValidated) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  EXPECT_THROW(proxy->setProperty("powerConsumption", std::string("turbo")),
               ProxyError);
  EXPECT_NO_THROW(proxy->setProperty("powerConsumption", std::string("low")));
}

TEST(S60LocationProxy, ImpossibleCriteriaMappedToUniformError) {
  Fixture fx;
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  proxy->setProperty("powerConsumption", std::string("low"));
  proxy->setProperty("horizontalAccuracy", 10LL);
  try {
    (void)proxy->getLocation();
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kLocationUnavailable);
    EXPECT_EQ(error.platform(), "s60");
  }
}

TEST(S60LocationProxy, SecurityMapped) {
  Fixture fx;
  fx.platform.revokePermission(s60::permissions::kLocation);
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  try {
    (void)proxy->getLocation();
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kSecurity);
    EXPECT_EQ(error.native_type(), "s60.SecurityException");
  }
}

// ---------------------------------------------------------------------------
// The one-shot -> continuous adaptation (the heart of Figure 2(b))
// ---------------------------------------------------------------------------

TEST(S60LocationProxy, ContinuousEntryAndExitFromOneShotPlatform) {
  Fixture fx;
  fx.dev->gps().set_track(ThroughTrack());
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  RecordingProximity listener;
  proxy->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, -1, &listener);
  fx.dev->RunFor(sim::SimTime::Seconds(150));

  // Uniform semantics on S60: entry AND exit — even though the platform's
  // proximity listener is one-shot with no exit events.
  ASSERT_GE(listener.events.size(), 2u);
  EXPECT_TRUE(listener.events.front().entering);
  bool saw_exit = false;
  for (const auto& event : listener.events) {
    if (!event.entering) saw_exit = true;
  }
  EXPECT_TRUE(saw_exit);
  EXPECT_TRUE(listener.events.front().location.valid);
}

TEST(S60LocationProxy, RearmsAfterExitForSecondPass) {
  Fixture fx;
  // Two passes through the region: north->south, then back south->north.
  sim::GeoTrack track;
  auto start = support::MoveAlongBearing(kBaseLat, kBaseLon, 0.0, 600);
  auto far_south = support::MoveAlongBearing(kBaseLat, kBaseLon, 180.0, 600);
  track.AddWaypoint({sim::SimTime::Zero(), start.latitude_deg,
                     start.longitude_deg, 0});
  track.AddWaypoint({sim::SimTime::Seconds(60), far_south.latitude_deg,
                     far_south.longitude_deg, 0});
  track.AddWaypoint({sim::SimTime::Seconds(120), start.latitude_deg,
                     start.longitude_deg, 0});
  fx.dev->gps().set_track(track);

  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  RecordingProximity listener;
  proxy->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, -1, &listener);
  fx.dev->RunFor(sim::SimTime::Seconds(150));

  int entries = 0, exits = 0;
  for (const auto& event : listener.events) {
    event.entering ? ++entries : ++exits;
  }
  EXPECT_GE(entries, 2) << "proxy must re-arm the one-shot registration";
  EXPECT_GE(exits, 2);
}

TEST(S60LocationProxy, ExpirationEmulated) {
  Fixture fx;
  fx.dev->gps().set_track(ThroughTrack());  // would enter at ~30 s
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  RecordingProximity listener;
  proxy->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, 10'000, &listener);
  EXPECT_EQ(proxy->active_alert_count(), 1u);
  fx.dev->RunFor(sim::SimTime::Seconds(150));
  EXPECT_TRUE(listener.events.empty());  // expired before entry
  EXPECT_EQ(proxy->active_alert_count(), 0u);
}

TEST(S60LocationProxy, RemoveStopsEverything) {
  Fixture fx;
  fx.dev->gps().set_track(ThroughTrack());
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  RecordingProximity listener;
  proxy->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, -1, &listener);
  proxy->removeProximityAlert(&listener);
  EXPECT_EQ(proxy->active_alert_count(), 0u);
  EXPECT_EQ(fx.platform.proximity_registration_count(), 0u);
  fx.dev->RunFor(sim::SimTime::Seconds(150));
  EXPECT_TRUE(listener.events.empty());
}

TEST(S60LocationProxy, AdaptationWorkVisibleInMeter) {
  Fixture fx;
  fx.dev->gps().set_track(ThroughTrack());
  auto proxy = fx.registry.CreateLocationProxy(fx.platform);
  RecordingProximity listener;
  proxy->addProximityAlert(kBaseLat, kBaseLon, 0, 200.0f, -1, &listener);
  fx.dev->RunFor(sim::SimTime::Seconds(150));
  // The S60 adaptation does listener wiring repeatedly (entry handler,
  // exit detector, re-arm) — more than the single registration.
  EXPECT_GE(proxy->meter().count(Op::kListenerAdaptation), 3u);
}

// ---------------------------------------------------------------------------
// SMS proxy
// ---------------------------------------------------------------------------

TEST(S60SmsProxy, SubmittedStatusOnBlockingSend) {
  Fixture fx;
  auto proxy = fx.registry.CreateSmsProxy(fx.platform);
  RecordingSms listener;
  const long long id = proxy->sendTextMessage("+15550123", "report", &listener);
  ASSERT_EQ(listener.events.size(), 1u);
  EXPECT_EQ(listener.events[0].first, id);
  EXPECT_EQ(listener.events[0].second, SmsDeliveryStatus::kSubmitted);
  // S60 exposes no delivery reports: no kDelivered ever arrives.
  fx.dev->RunAll();
  EXPECT_EQ(listener.events.size(), 1u);
}

TEST(S60SmsProxy, RadioFailureMappedAndReported) {
  Fixture fx;
  auto proxy = fx.registry.CreateSmsProxy(fx.platform);
  fx.dev->modem().InjectRadioFailures(1);
  RecordingSms listener;
  try {
    proxy->sendTextMessage("+15550123", "x", &listener);
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kRadioFailure);
    EXPECT_EQ(error.native_type(), "s60.InterruptedIOException");
  }
  ASSERT_EQ(listener.events.size(), 1u);
  EXPECT_EQ(listener.events[0].second, SmsDeliveryStatus::kFailed);
}

TEST(S60SmsProxy, UnreachableMapped) {
  Fixture fx;
  auto proxy = fx.registry.CreateSmsProxy(fx.platform);
  try {
    proxy->sendTextMessage("+10000000", "x", nullptr);
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kNetwork);
  }
}

TEST(S60SmsProxy, SegmentCountEnrichment) {
  Fixture fx;
  auto proxy = fx.registry.CreateSmsProxy(fx.platform);
  EXPECT_EQ(proxy->segmentCount(""), 1);
  EXPECT_EQ(proxy->segmentCount(std::string(320, 'x')), 2);
  EXPECT_GT(proxy->meter().count(Op::kEnrichment), 0u);
}

// ---------------------------------------------------------------------------
// Http proxy
// ---------------------------------------------------------------------------

TEST(S60HttpProxy, UniformExchange) {
  Fixture fx;
  fx.dev->network().RegisterHost("server", [](const device::HttpRequest& req) {
    return device::HttpResponse::Ok(req.method + ":" + req.url.path);
  });
  auto proxy = fx.registry.CreateHttpProxy(fx.platform);
  HttpResult get = proxy->get("http://server/tasks");
  EXPECT_EQ(get.body, "GET:/tasks");
  HttpResult post = proxy->post("http://server/report", "{}", "text/json");
  EXPECT_EQ(post.body, "POST:/report");
}

TEST(S60HttpProxy, ErrorMapping) {
  Fixture fx;
  auto proxy = fx.registry.CreateHttpProxy(fx.platform);
  try {
    (void)proxy->get("http://ghost/");
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kNetwork);
    EXPECT_EQ(error.native_type(), "s60.IOException");
  }
  try {
    (void)proxy->get("bogus-url");
    FAIL() << "expected ProxyError";
  } catch (const ProxyError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIllegalArgument);
  }
}

// ---------------------------------------------------------------------------
// Cross-platform invariant: uniform Location is the SAME type
// ---------------------------------------------------------------------------

TEST(CrossPlatform, UniformLocationIdenticalShape) {
  // The same assertion code compiles and runs against both platforms'
  // proxies — the portability claim, in executable form.
  auto check = [](LocationProxy& proxy) {
    Location location = proxy.getLocation();
    EXPECT_TRUE(location.valid);
    EXPECT_NEAR(location.latitude, kBaseLat, 0.05);
    EXPECT_GE(location.accuracy_m, 0.0);
  };
  {
    Fixture fx;
    auto proxy = fx.registry.CreateLocationProxy(fx.platform);
    check(*proxy);
  }
  {
    auto dev = MakeDevice();
    android::AndroidPlatform platform(*dev);
    platform.grantPermission(android::permissions::kFineLocation);
    ProxyRegistry registry(&Store());
    auto proxy = registry.CreateLocationProxy(platform);
    proxy->setProperty("context", &platform.application_context());
    check(*proxy);
  }
}

}  // namespace
}  // namespace mobivine::core
