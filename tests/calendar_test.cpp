// Tests for the calendar stack: the device store, the Android provider and
// S60 JSR-75 event APIs, and the uniform Calendar proxy (android, s60,
// webview — and its principled ABSENCE on iPhone OS 2009).
#include <gtest/gtest.h>

#include "android/calendar.h"
#include "android/exceptions.h"
#include "core/bindings/webview_proxies.h"
#include "core/registry.h"
#include "plugin/drawer.h"
#include "s60/pim.h"
#include "tests/test_util.h"
#include "webview/webview.h"

namespace mobivine {
namespace {

using core::CalendarEvent;
using core::DescriptorStore;
using core::ProxyRegistry;
using mobivine::testing::MakeDevice;

const DescriptorStore& Store() {
  static const DescriptorStore store =
      DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

constexpr long long kHour = 3'600'000;

void Populate(device::MobileDevice& dev) {
  dev.calendar().Add("Standup", 1 * kHour, 1 * kHour + 900'000, "HQ");
  dev.calendar().Add("Site survey", 3 * kHour, 5 * kHour, "Sector 7");
  dev.calendar().Add("Debrief", 8 * kHour, 9 * kHour, "");
}

// ---------------------------------------------------------------------------
// Device store
// ---------------------------------------------------------------------------

TEST(CalendarStore, CrudWindowsAndNext) {
  device::CalendarStore store;
  const auto id = store.Add("A", 100, 200, "x");
  store.Add("B", 150, 300);
  store.Add("C", 500, 600);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.FindById(id)->title, "A");

  auto window = store.Between(120, 160);
  ASSERT_EQ(window.size(), 2u);  // A and B overlap
  EXPECT_EQ(window[0].title, "A");

  auto next = store.NextAfter(250);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->title, "C");
  EXPECT_FALSE(store.NextAfter(700).has_value());

  EXPECT_TRUE(store.Remove(id));
  EXPECT_FALSE(store.Remove(id));
  EXPECT_THROW(store.Add("bad", 100, 50), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Android provider
// ---------------------------------------------------------------------------

TEST(AndroidCalendar, CursorIterationAndWindow) {
  auto dev = MakeDevice();
  Populate(*dev);
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kReadCalendar);
  android::CalendarProvider provider(platform);

  android::EventCursor all = provider.query();
  EXPECT_EQ(all.getCount(), 3);
  ASSERT_TRUE(all.moveToNext());
  EXPECT_EQ(all.getString(android::EventCursor::COLUMN_TITLE), "Standup");
  EXPECT_EQ(all.getLong(android::EventCursor::COLUMN_DTSTART), kHour);
  EXPECT_THROW(all.getString(android::EventCursor::COLUMN_DTSTART),
               android::IllegalArgumentException);
  all.close();
  EXPECT_THROW(all.moveToNext(), android::IllegalStateException);

  android::EventCursor window = provider.queryBetween(2 * kHour, 6 * kHour);
  EXPECT_EQ(window.getCount(), 1);
}

TEST(AndroidCalendar, PermissionRequired) {
  auto dev = MakeDevice();
  android::AndroidPlatform platform(*dev);
  android::CalendarProvider provider(platform);
  EXPECT_THROW((void)provider.query(), android::SecurityException);
}

// ---------------------------------------------------------------------------
// S60 JSR-75 EventList
// ---------------------------------------------------------------------------

TEST(S60Calendar, EventFieldsAndWindow) {
  auto dev = MakeDevice();
  Populate(*dev);
  s60::S60Platform platform(*dev);
  platform.grantPermission(s60::permissions::kPimEventRead);
  auto list = s60::PIM::openEventList(platform, s60::ContactList::READ_ONLY);
  auto items = list->items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[1].getString(s60::Event::SUMMARY, 0), "Site survey");
  EXPECT_EQ(items[1].getDate(s60::Event::START, 0), 3 * kHour);
  EXPECT_EQ(items[1].getString(s60::Event::LOCATION, 0), "Sector 7");
  EXPECT_EQ(items[2].countValues(s60::Event::LOCATION), 0);
  EXPECT_THROW((void)items[0].getDate(s60::Event::SUMMARY, 0),
               s60::IllegalArgumentException);

  EXPECT_EQ(list->items(2 * kHour, 6 * kHour).size(), 1u);
  list->close();
  EXPECT_THROW((void)list->items(), s60::IOException);
}

TEST(S60Calendar, PermissionSeparateFromContacts) {
  auto dev = MakeDevice();
  s60::S60Platform platform(*dev);
  platform.grantPermission(s60::permissions::kPimRead);  // contacts only
  EXPECT_THROW(
      (void)s60::PIM::openEventList(platform, s60::ContactList::READ_ONLY),
      s60::SecurityException);
}

// ---------------------------------------------------------------------------
// Uniform proxy
// ---------------------------------------------------------------------------

void CheckUniform(core::CalendarProxy& proxy) {
  auto all = proxy.listEvents();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].title, "Standup");       // start-ordered
  EXPECT_EQ(all[1].location, "Sector 7");

  auto window = proxy.eventsBetween(2 * kHour, 6 * kHour);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].title, "Site survey");

  auto next = proxy.nextEvent(4 * kHour);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->title, "Debrief");
  EXPECT_FALSE(proxy.nextEvent(10 * kHour).has_value());
}

TEST(CalendarProxy, AndroidUniform) {
  auto dev = MakeDevice();
  Populate(*dev);
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kReadCalendar);
  ProxyRegistry registry(&Store());
  auto proxy = registry.CreateCalendarProxy(platform);
  CheckUniform(*proxy);
}

TEST(CalendarProxy, S60Uniform) {
  auto dev = MakeDevice();
  Populate(*dev);
  s60::S60Platform platform(*dev);
  platform.grantPermission(s60::permissions::kPimEventRead);
  ProxyRegistry registry(&Store());
  auto proxy = registry.CreateCalendarProxy(platform);
  CheckUniform(*proxy);
}

TEST(CalendarProxy, SecurityMappedUniformly) {
  auto dev = MakeDevice();
  Populate(*dev);
  android::AndroidPlatform platform(*dev);
  ProxyRegistry registry(&Store());
  auto proxy = registry.CreateCalendarProxy(platform);
  try {
    (void)proxy->listEvents();
    FAIL();
  } catch (const core::ProxyError& error) {
    EXPECT_EQ(error.code(), core::ErrorCode::kSecurity);
  }
}

TEST(CalendarProxy, WebViewJsProxy) {
  auto dev = MakeDevice();
  Populate(*dev);
  android::AndroidPlatform platform(*dev);
  platform.grantPermission(android::permissions::kReadCalendar);
  webview::WebView webview(platform);
  core::InstallWebViewProxies(webview);

  EXPECT_DOUBLE_EQ(webview
                       .loadScript("var cal = new CalendarProxyImpl();"
                                   "cal.listEvents().length;")
                       .as_number(),
                   3);
  EXPECT_DOUBLE_EQ(
      webview
          .loadScript("cal.eventsBetween(" + std::to_string(2 * kHour) +
                      ", " + std::to_string(6 * kHour) + ").length;")
          .as_number(),
      1);
  EXPECT_EQ(webview
                .loadScript("cal.nextEvent(" + std::to_string(4 * kHour) +
                            ").title;")
                .as_string(),
            "Debrief");
  EXPECT_TRUE(webview
                  .loadScript("cal.nextEvent(" + std::to_string(10 * kHour) +
                              ") === null;")
                  .as_bool());
}

TEST(CalendarProxy, DrawerShowsCalendarUnderPersonalInformation) {
  plugin::ProxyDrawer drawer(Store(), "android");
  const plugin::DrawerItem* item = drawer.Find("Calendar", "listEvents");
  ASSERT_NE(item, nullptr);
  // Pim and Calendar share the "Personal Information" category.
  bool found_category = false;
  for (const auto& category : drawer.categories()) {
    if (category.name != "Personal Information") continue;
    found_category = true;
    EXPECT_GE(category.items.size(), 6u);  // 3 Pim + 3 Calendar methods
  }
  EXPECT_TRUE(found_category);
  // No Calendar in the iPhone drawer.
  plugin::ProxyDrawer iphone_drawer(Store(), "iphone");
  EXPECT_EQ(iphone_drawer.Find("Calendar", "listEvents"), nullptr);
}

}  // namespace
}  // namespace mobivine
