// E1 — Figure 10: "Time taken for invoking APIs on Android, Android
// WebView and Nokia S60", with and without proxies, averaged over ten
// executions (as in the paper).
//
// Native API costs are virtual-time models calibrated to the paper's
// "Without Proxy" row; the "With Proxy" row emerges from the
// de-fragmentation work the bindings actually perform (per-op virtual
// costs, JS interpreter steps, bridge crossings) — see EXPERIMENTS.md.
//
//   ./build/bench/bench_fig10_invocation
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "android/location_manager.h"
#include "android/sms_manager.h"
#include "core/bindings/webview_proxies.h"
#include "core/registry.h"
#include "s60/connector.h"
#include "s60/location_provider.h"
#include "s60/messaging.h"
#include "sim/geo_track.h"
#include "webview/webview.h"

using namespace mobivine;

namespace {

constexpr double kLat = 28.5245;
constexpr double kLon = 77.1855;
constexpr int kRuns = 10;  // paper: "average of ten executions"

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

std::unique_ptr<device::MobileDevice> MakeDevice(std::uint64_t seed) {
  device::DeviceConfig config;
  config.seed = seed;
  auto dev = std::make_unique<device::MobileDevice>(config);
  dev->gps().set_track(sim::GeoTrack::Stationary(kLat, kLon, 210));
  dev->modem().RegisterSubscriber("+15550123");
  return dev;
}

/// One measurement: build a fresh world, run `setup` (untimed), then time
/// `invoke` on the virtual clock.
double MeasureMs(std::uint64_t seed,
                 const std::function<void(device::MobileDevice&)>& run) {
  auto dev = MakeDevice(seed);
  const sim::SimTime before = dev->scheduler().now();
  run(*dev);
  return (dev->scheduler().now() - before).millis();
}

struct Cell {
  double without_proxy = 0;
  double with_proxy = 0;
};

class SilentProximity : public core::ProximityListener {
 public:
  void proximityEvent(double, double, double, const core::Location&,
                      bool) override {}
};

// ---------------------------------------------------------------------------
// Android
// ---------------------------------------------------------------------------

android::AndroidPlatform* NewAndroid(device::MobileDevice& dev) {
  auto* platform = new android::AndroidPlatform(dev);
  platform->grantPermission(android::permissions::kFineLocation);
  platform->grantPermission(android::permissions::kSendSms);
  return platform;
}

Cell AndroidCell(const std::string& api) {
  Cell cell;
  core::ProxyRegistry registry(&Store());
  static SilentProximity listener;
  for (int run = 0; run < kRuns; ++run) {
    const std::uint64_t seed = 1000 + run;
    cell.without_proxy += MeasureMs(seed, [&](device::MobileDevice& dev) {
      std::unique_ptr<android::AndroidPlatform> platform(NewAndroid(dev));
      // Untimed setup is outside MeasureMs for the proxy path; raw calls
      // need none beyond the platform itself, whose construction is free.
      if (api == "addProximityAlert") {
        platform->location_manager().addProximityAlert(
            kLat, kLon, 200.0f, -1, android::Intent("PROX"));
      } else if (api == "getLocation") {
        (void)platform->location_manager().getCurrentLocation("gps");
      } else {
        platform->sms_manager().sendTextMessage("+15550123", "", "ping", "",
                                                "");
      }
    });
    // With proxy: proxy construction/properties untimed; invocation timed.
    auto dev = MakeDevice(seed);
    std::unique_ptr<android::AndroidPlatform> platform(NewAndroid(*dev));
    auto location = registry.CreateLocationProxy(*platform);
    location->setProperty("context", &platform->application_context());
    auto sms = registry.CreateSmsProxy(*platform);
    sms->setProperty("context", &platform->application_context());
    const sim::SimTime before = dev->scheduler().now();
    if (api == "addProximityAlert") {
      location->addProximityAlert(kLat, kLon, 210, 200.0f, -1, &listener);
    } else if (api == "getLocation") {
      (void)location->getLocation();
    } else {
      sms->sendTextMessage("+15550123", "ping", nullptr);
    }
    cell.with_proxy += (dev->scheduler().now() - before).millis();
  }
  cell.without_proxy /= kRuns;
  cell.with_proxy /= kRuns;
  return cell;
}

// ---------------------------------------------------------------------------
// Android WebView
// ---------------------------------------------------------------------------

Cell WebViewCell(const std::string& api) {
  Cell cell;
  for (int run = 0; run < kRuns; ++run) {
    const std::uint64_t seed = 2000 + run;
    // Raw: the addJavaScriptInterface'd platform objects, from script.
    {
      auto dev = MakeDevice(seed);
      std::unique_ptr<android::AndroidPlatform> platform(NewAndroid(*dev));
      webview::WebView webview(*platform);
      webview.injectRawPlatformInterfaces();
      std::string script;
      if (api == "addProximityAlert") {
        script = "LocationManagerRaw.addProximityAlert(28.5245, 77.1855, "
                 "200, -1, 'P');";
      } else if (api == "getLocation") {
        script = "LocationManagerRaw.getCurrentLocation('gps');";
      } else {
        script = "SmsManagerRaw.sendTextMessage('+15550123', null, 'ping', "
                 "'S', 'D');";
      }
      const sim::SimTime before = dev->scheduler().now();
      webview.loadScript(script);
      cell.without_proxy += (dev->scheduler().now() - before).millis();
    }
    // With proxy: Figure 9 style through the JS proxy objects.
    {
      auto dev = MakeDevice(seed);
      std::unique_ptr<android::AndroidPlatform> platform(NewAndroid(*dev));
      webview::WebView webview(*platform);
      core::InstallWebViewProxies(webview);
      webview.loadScript(
          "var loc = new LocationProxyImpl();"
          "var sms = new SmsProxyImpl();"
          "function cb() {}");
      std::string script;
      if (api == "addProximityAlert") {
        script = "loc.addProximityAlert(28.5245, 77.1855, 210, 200, -1, cb);";
      } else if (api == "getLocation") {
        script = "loc.getLocation();";
      } else {
        script = "sms.sendTextMessage('+15550123', 'ping', cb);";
      }
      const sim::SimTime before = dev->scheduler().now();
      webview.loadScript(script);
      cell.with_proxy += (dev->scheduler().now() - before).millis();
    }
  }
  cell.without_proxy /= kRuns;
  cell.with_proxy /= kRuns;
  return cell;
}

// ---------------------------------------------------------------------------
// Nokia S60
// ---------------------------------------------------------------------------

class SilentS60Proximity : public s60::ProximityListener {
 public:
  void proximityEvent(const s60::Coordinates&, const s60::Location&) override {}
};

s60::S60Platform* NewS60(device::MobileDevice& dev) {
  auto* platform = new s60::S60Platform(dev);
  platform->grantPermission(s60::permissions::kLocation);
  platform->grantPermission(s60::permissions::kSmsSend);
  return platform;
}

Cell S60Cell(const std::string& api) {
  Cell cell;
  core::ProxyRegistry registry(&Store());
  static SilentS60Proximity raw_listener;
  static SilentProximity uniform_listener;
  for (int run = 0; run < kRuns; ++run) {
    const std::uint64_t seed = 3000 + run;
    // Raw: provider/connection acquisition is part of the measured call
    // sequence only where the paper's Figure 2(b) does it inline
    // (getLocation path); proximity registration is the static call.
    {
      auto dev = MakeDevice(seed);
      std::unique_ptr<s60::S60Platform> platform(NewS60(*dev));
      s60::Criteria criteria;
      criteria.setVerticalAccuracy(50);
      std::shared_ptr<s60::LocationProvider> provider;
      std::shared_ptr<s60::MessageConnection> connection;
      if (api == "getLocation") {
        provider = s60::LocationProvider::getInstance(*platform, criteria);
      }
      if (api == "sendSMS") {
        connection = platform->openMessageConnection("sms://+15550123");
      }
      const sim::SimTime before = dev->scheduler().now();
      if (api == "addProximityAlert") {
        s60::LocationProvider::addProximityListener(
            *platform, &raw_listener, s60::Coordinates(kLat, kLon, 0),
            200.0f);
      } else if (api == "getLocation") {
        (void)provider->getLocation(30);
      } else {
        s60::TextMessage message = connection->newTextMessage();
        message.setPayloadText("ping");
        connection->send(message);
      }
      cell.without_proxy += (dev->scheduler().now() - before).millis();
    }
    {
      auto dev = MakeDevice(seed);
      std::unique_ptr<s60::S60Platform> platform(NewS60(*dev));
      auto location = registry.CreateLocationProxy(*platform);
      location->setProperty("verticalAccuracy", 50LL);
      auto sms = registry.CreateSmsProxy(*platform);
      const sim::SimTime before = dev->scheduler().now();
      if (api == "addProximityAlert") {
        location->addProximityAlert(kLat, kLon, 0, 200.0f, -1,
                                    &uniform_listener);
      } else if (api == "getLocation") {
        (void)location->getLocation();
      } else {
        sms->sendTextMessage("+15550123", "ping", nullptr);
      }
      cell.with_proxy += (dev->scheduler().now() - before).millis();
    }
  }
  cell.without_proxy /= kRuns;
  cell.with_proxy /= kRuns;
  return cell;
}

}  // namespace

int main() {
  struct Row {
    const char* platform;
    const char* api;
    Cell cell;
    double paper_without;
    double paper_with;
  };
  std::vector<Row> rows = {
      {"Android", "addProximityAlert", AndroidCell("addProximityAlert"), 53.6,
       55.4},
      {"Android", "getLocation", AndroidCell("getLocation"), 15.5, 17.3},
      {"Android", "sendSMS", AndroidCell("sendSMS"), 52.7, 55.8},
      {"Android WebView", "addProximityAlert",
       WebViewCell("addProximityAlert"), 78.4, 80.5},
      {"Android WebView", "getLocation", WebViewCell("getLocation"), 120.0,
       121.7},
      {"Android WebView", "sendSMS", WebViewCell("sendSMS"), 91.6, 91.8},
      {"Nokia S60", "addProximityAlert", S60Cell("addProximityAlert"), 141.0,
       146.8},
      {"Nokia S60", "getLocation", S60Cell("getLocation"), 140.8, 148.5},
      {"Nokia S60", "sendSMS", S60Cell("sendSMS"), 15.6, 16.1},
  };

  std::printf(
      "E1 / Figure 10 — time (ms, virtual) to invoke APIs, avg of %d runs\n\n",
      kRuns);
  std::printf("%-16s %-18s | %13s %13s | %13s %13s | %9s\n", "Platform", "API",
              "measured w/o", "measured w/", "paper w/o", "paper w/",
              "overhead%");
  std::printf("%s\n", std::string(110, '-').c_str());
  bool shape_holds = true;
  for (const Row& row : rows) {
    const double overhead_pct =
        100.0 * (row.cell.with_proxy - row.cell.without_proxy) /
        row.cell.without_proxy;
    std::printf("%-16s %-18s | %13.1f %13.1f | %13.1f %13.1f | %8.1f%%\n",
                row.platform, row.api, row.cell.without_proxy,
                row.cell.with_proxy, row.paper_without, row.paper_with,
                overhead_pct);
    // Small positive overhead on every API (tolerate <1% stochastic noise
    // from the distinct native-latency draws of the two measurement runs).
    if (overhead_pct < -1.0 || overhead_pct > 25.0) shape_holds = false;
  }
  std::printf("\nshape check (proxy adds a small positive overhead on every "
              "API): %s\n",
              shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
