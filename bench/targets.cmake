# Table/figure reproduction harnesses (E*) print paper-style tables and run
# as plain executables; the ablation microbenches (A2, A3) use
# google-benchmark. Included from the top-level CMakeLists (see note there).
function(mobivine_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE mobivine_core mobivine_plugin)
  target_compile_definitions(${name} PRIVATE
    MOBIVINE_DESCRIPTOR_DIR="${MOBIVINE_DESCRIPTOR_DIR}")
endfunction()

mobivine_bench(bench_fig10_invocation)
mobivine_bench(bench_e2_complexity)
mobivine_bench(bench_e3_portability)
mobivine_bench(bench_e4_maintenance)
mobivine_bench(bench_a1_polling)
mobivine_bench(bench_a4_extension)
mobivine_bench(bench_a5_detection)

mobivine_bench(bench_wallclock_throughput)

mobivine_bench(bench_gateway_throughput)
target_link_libraries(bench_gateway_throughput PRIVATE mobivine_gateway)

mobivine_bench(bench_wire_throughput)
target_link_libraries(bench_wire_throughput PRIVATE mobivine_wire)

mobivine_bench(bench_fleet_throughput)
target_link_libraries(bench_fleet_throughput PRIVATE mobivine_fleet)

mobivine_bench(bench_cluster_throughput)
target_link_libraries(bench_cluster_throughput PRIVATE mobivine_cluster)

mobivine_bench(bench_push_throughput)
target_link_libraries(bench_push_throughput PRIVATE mobivine_wire)

mobivine_bench(bench_script_throughput)
target_link_libraries(bench_script_throughput PRIVATE mobivine_wire)

mobivine_bench(bench_a2_descriptor)
target_link_libraries(bench_a2_descriptor PRIVATE benchmark::benchmark)
mobivine_bench(bench_a3_bridge)
target_link_libraries(bench_a3_bridge PRIVATE benchmark::benchmark)
