// E4 — maintenance across platform evolution (paper §5 "Maintenance"):
// Android 1.0 changed addProximityAlert(Intent) to take a PendingIntent.
// The harness runs the same two applications (raw-API vs proxy-API) on
// both SDK generations and reports which ones keep working and how many
// application call sites would need edits.
//
//   ./build/bench/bench_e4_maintenance
#include <cstdio>
#include <memory>

#include "android/exceptions.h"
#include "android/location_manager.h"
#include "core/registry.h"
#include "sim/geo_track.h"

using namespace mobivine;

namespace {

constexpr double kLat = 28.5245;
constexpr double kLon = 77.1855;

class CountingListener : public core::ProximityListener {
 public:
  void proximityEvent(double, double, double, const core::Location&,
                      bool entering) override {
    entering ? ++entries : ++exits;
  }
  int entries = 0;
  int exits = 0;
};

std::unique_ptr<device::MobileDevice> MakeApproachingDevice() {
  device::DeviceConfig config;
  config.seed = 99;
  auto dev = std::make_unique<device::MobileDevice>(config);
  auto start = support::MoveAlongBearing(kLat, kLon, 0.0, 800);
  dev->gps().set_track(sim::GeoTrack::StraightLine(
      start.latitude_deg, start.longitude_deg, 180.0, 20.0,
      sim::SimTime::Seconds(120), sim::SimTime::Seconds(1)));
  return dev;
}

/// The raw m5-style application: registers via the Intent overload and
/// counts received broadcasts. Returns events received (-1 = API broken).
int RunRawApp(android::ApiLevel level) {
  auto dev = MakeApproachingDevice();
  android::AndroidPlatform platform(*dev, level);
  platform.grantPermission(android::permissions::kFineLocation);

  class Receiver : public android::IntentReceiver {
   public:
    void onReceiveIntent(android::Context&, const android::Intent&) override {
      ++events;
    }
    int events = 0;
  } receiver;

  platform.application_context().registerReceiver(
      &receiver, android::IntentFilter("PROX"));
  try {
    platform.location_manager().addProximityAlert(kLat, kLon, 200.0f, -1,
                                                  android::Intent("PROX"));
  } catch (const android::UnsupportedOperationException&) {
    platform.application_context().unregisterReceiver(&receiver);
    return -1;
  }
  dev->RunFor(sim::SimTime::Seconds(120));
  platform.application_context().unregisterReceiver(&receiver);
  return receiver.events;
}

/// The proxy application: identical source for both levels.
int RunProxyApp(android::ApiLevel level,
                const core::DescriptorStore& store) {
  auto dev = MakeApproachingDevice();
  android::AndroidPlatform platform(*dev, level);
  platform.grantPermission(android::permissions::kFineLocation);
  core::ProxyRegistry registry(&store);
  auto proxy = registry.CreateLocationProxy(platform);
  proxy->setProperty("context", &platform.application_context());
  CountingListener listener;
  try {
    proxy->addProximityAlert(kLat, kLon, 0, 200.0f, -1, &listener);
  } catch (const core::ProxyError&) {
    return -1;
  }
  dev->RunFor(sim::SimTime::Seconds(120));
  proxy->removeProximityAlert(&listener);
  return listener.entries + listener.exits;
}

}  // namespace

int main() {
  const auto store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);

  std::printf("E4 — application survival across the m5 -> 1.0 "
              "addProximityAlert API change\n\n");
  std::printf("%-14s | %-26s | %-26s\n", "SDK", "raw m5-style app",
              "MobiVine proxy app");
  std::printf("%s\n", std::string(74, '-').c_str());

  bool shape_holds = true;
  for (android::ApiLevel level :
       {android::ApiLevel::kM5, android::ApiLevel::k10}) {
    const int raw_events = RunRawApp(level);
    const int proxy_events = RunProxyApp(level, store);
    char raw_text[64], proxy_text[64];
    if (raw_events < 0) {
      std::snprintf(raw_text, sizeof raw_text, "BROKEN (API removed)");
    } else {
      std::snprintf(raw_text, sizeof raw_text, "works (%d events)",
                    raw_events);
    }
    std::snprintf(proxy_text, sizeof proxy_text,
                  proxy_events < 0 ? "BROKEN" : "works (%d events)",
                  proxy_events);
    std::printf("%-14s | %-26s | %-26s\n", android::ToString(level), raw_text,
                proxy_text);
    if (proxy_events <= 0) shape_holds = false;
    if (level == android::ApiLevel::k10 && raw_events >= 0) {
      shape_holds = false;  // the break must actually happen
    }
  }

  std::printf("\napplication call sites to edit after the upgrade:\n");
  std::printf("  raw app:   every addProximityAlert call "
              "(Intent -> PendingIntent rewrite)\n");
  std::printf("  proxy app: 0 (difference absorbed in the binding plane)\n");
  std::printf("\npaper's maintenance claim: %s\n",
              shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
