// M-Cluster horizontal-scaling bench: 1 worker vs 3 workers behind a
// controller, driven by the plan-routing cluster::Client.
//
// The question (EXPERIMENTS.md W7): does partitioning the keyspace over
// multiple gateway+wire-server workers buy aggregate throughput — and
// what does the routing layer (consistent-hash lookup per request,
// plan-epoch checks on every worker) cost when nothing is moving?
//
// Topology is in-process but real: one Controller, N (Gateway +
// WireServer + WorkerAgent) stacks on distinct loopback ports, and
// driver threads pushing closed-loop per-worker pipelined windows
// through one cluster::Client each — requests flow client -> owning
// worker directly over TCP, never through the controller. Running
// everything in one process keeps the bench self-contained and lets the
// traced variant export gateway.*, wire.* and cluster.* M-Scope
// sources side by side.
//
// Capacity model. A horizontal-scaling bench is meaningless when every
// "worker" shares one saturated CPU — on the repo's 1-CPU reference
// host a CPU-bound shoot-out only measures which topology batches
// syscalls better at the machine's fixed ceiling. Real gateway workers
// are not CPU-bound; they wait on backends. So each worker's shards run
// under the fault plane's wall-clock latency rule
// ("*:*:latency=<tau>:wall", support/fault.h): every dispatch blocks
// its shard thread for tau of real time, the way a platform binding
// blocks on its backend. Per-worker capacity is then shards/tau —
// independent of scheduler noise — and adding workers multiplies it,
// because stalled shard threads cost no CPU. The wall option exists for
// exactly this (virtual-clock charging is invisible across a TCP
// boundary); the routing layer's own overhead rides on top and would
// show up as scaling short of Nx.
//
// Scenario matrix, written to BENCH_cluster.json (or argv[1]):
//   * workers=1 and workers=3, same per-driver request count, same op
//     mix as bench_wire_throughput, shards=2 and tau=1ms per worker
//     (2k req/s per worker), window 16 per driver thread per worker.
//
// --smoke shrinks the run (CI leg). --trace/--metrics run an additional
// traced scenario on a 1-worker cluster and export the trace plus a
// metrics dump carrying "gateway.", "wire." and "cluster." sources;
// --trace-only skips the throughput matrix (the CI validation leg).
//
//   ./build/bench/bench_cluster_throughput [output.json]
//       [--trace trace.json] [--metrics metrics.json] [--trace-only]
//       [--smoke]
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client.h"
#include "cluster/controller.h"
#include "cluster/worker_agent.h"
#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "support/fault.h"
#include "support/histogram.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "wire/client.h"
#include "wire/protocol.h"
#include "wire/server.h"

using namespace mobivine;

namespace {

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t Next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

/// Same mix as bench_wire_throughput, so the 1-worker row is directly
/// comparable to BENCH_wire.json's single-server numbers.
wire::WireRequest MixedRequest(SplitMix64& rng, std::uint64_t clients) {
  wire::WireRequest request;
  request.client_id = rng.Next() % clients;
  switch (rng.Next() % 4) {
    case 0:
    case 1:
      request.platform = gateway::Platform::kAndroid;
      break;
    case 2:
      request.platform = gateway::Platform::kS60;
      break;
    default:
      request.platform = gateway::Platform::kIphone;
      break;
  }
  switch (rng.Next() % 6) {
    case 0:
      request.op = gateway::Op::kGetLocation;
      break;
    case 1:
      request.op = gateway::Op::kSendSms;
      request.target = gateway::kGatewaySmsPeer;
      request.payload = "cluster bench message";
      break;
    case 2:
      request.op = gateway::Op::kHttpPost;
      request.target =
          std::string("http://") + gateway::kGatewayHttpHost + "/echo";
      request.payload = "post body";
      request.content_type = "text/plain";
      break;
    case 3:
      request.op = gateway::Op::kSegmentCount;
      request.payload = std::string(200, 'x');
      break;
    default:
      request.op = gateway::Op::kHttpGet;
      request.target =
          std::string("http://") + gateway::kGatewayHttpHost + "/ping";
      break;
  }
  return request;
}

/// One in-process worker: the full per-process stack of cluster_worker,
/// minus the process.
/// Simulated backend service time per dispatch (wall clock; see the
/// capacity-model note at the top). shards / kBackendTauUs caps each
/// worker at ~2000 req/s.
constexpr std::uint64_t kBackendTauUs = 1'000;

struct Worker {
  explicit Worker(std::uint64_t worker_id, std::uint16_t controller_port) {
    gateway::GatewayConfig config;
    config.shards = 2;
    config.queue_capacity = 1024;
    config.store = &Store();
    config.failover.fault_plan = *support::FaultPlan::Parse(
        "*:*:latency=" + std::to_string(kBackendTauUs) + ":wall");
    gateway = std::make_unique<gateway::Gateway>(config);

    cluster::WorkerAgentConfig agent_config;
    agent_config.controller_port = controller_port;
    agent_config.worker_id = worker_id;
    agent = std::make_unique<cluster::WorkerAgent>(*gateway, agent_config);

    wire::WireServerConfig server_config;
    server_config.event_loops = 1;
    server_config.ownership = [this](std::uint64_t client_id,
                                     std::uint64_t* epoch) {
      return agent->Owns(client_id, epoch);
    };
    server = std::make_unique<wire::WireServer>(*gateway, server_config);
  }

  bool Start(std::string* error) {
    if (!server->Start(error)) return false;
    return agent->Start(server->port(), error);
  }

  void Stop() {
    agent->Stop();
    server->Stop();  // before gateway.Stop(): the wire shutdown contract
    gateway->Stop();
  }

  std::unique_ptr<gateway::Gateway> gateway;
  std::unique_ptr<cluster::WorkerAgent> agent;
  std::unique_ptr<wire::WireServer> server;
};

/// Closed-loop driver with a PER-WORKER pipelining window: at most
/// `window` requests in flight toward each worker, refilled in
/// half-window bursts (one contiguous write per refill — all of a
/// burst's ids are drawn from that worker's key ranges via
/// cluster::Client::OwnerOf).
///
/// The window only has to stay comfortably above the worker's shard
/// count so the shards never starve; with the wall-latency backend
/// model (see top) the measured rate is then capacity-bound, not
/// window- or RTT-bound, and each worker contributes shards/tau to the
/// aggregate.
void DriverThread(cluster::Client* client, std::uint64_t worker_count,
                  std::uint64_t requests, int window, std::uint64_t seed,
                  std::uint64_t clients, std::uint64_t* completed_ok,
                  std::uint64_t* completed_total,
                  support::LatencyHistogram* latency) {
  SplitMix64 rng{seed};

  // Partition the id space by owner once: each sub-stream draws only
  // ids its worker owns, so every burst routes whole.
  std::vector<std::vector<std::uint64_t>> pools(worker_count + 1);
  for (std::uint64_t id = 0; id < clients; ++id) {
    const std::uint64_t owner = client->OwnerOf(id);
    if (owner >= 1 && owner <= worker_count) pools[owner].push_back(id);
  }

  struct Stream {
    std::uint64_t in_flight = 0;
    std::uint64_t submitted = 0;
    std::uint64_t done = 0;
    std::uint64_t quota = 0;
  };
  std::vector<Stream> streams(worker_count + 1);
  for (std::uint64_t w = 1; w <= worker_count; ++w) {
    streams[w].quota = requests / worker_count;
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t done_total = 0, quota_total = 0, ok = 0;
  for (std::uint64_t w = 1; w <= worker_count; ++w) {
    quota_total += streams[w].quota;
  }

  std::vector<wire::WireRequest> batch;
  while (true) {
    std::uint64_t target = 0, burst = 0;
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] {
        if (done_total == quota_total) return true;
        for (std::uint64_t w = 1; w <= worker_count; ++w) {
          const Stream& s = streams[w];
          if (s.submitted < s.quota &&
              s.in_flight <= static_cast<std::uint64_t>(window) / 2) {
            return true;
          }
        }
        return false;
      });
      if (done_total == quota_total) break;
      for (std::uint64_t w = 1; w <= worker_count; ++w) {
        Stream& s = streams[w];
        if (s.submitted < s.quota &&
            s.in_flight <= static_cast<std::uint64_t>(window) / 2) {
          target = w;
          burst = std::min(static_cast<std::uint64_t>(window) - s.in_flight,
                           s.quota - s.submitted);
          s.in_flight += burst;
          s.submitted += burst;
          break;
        }
      }
    }
    if (burst == 0) continue;
    const std::vector<std::uint64_t>& pool = pools[target];
    batch.clear();
    for (std::uint64_t i = 0; i < burst; ++i) {
      batch.push_back(MixedRequest(rng, clients));
      batch.back().client_id = pool[rng.Next() % pool.size()];
    }
    const auto start = std::chrono::steady_clock::now();
    client->SubmitBatch(batch, [&, target,
                                start](const wire::WireResponse& r) {
      const auto micros =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start);
      latency->Record(static_cast<std::uint64_t>(micros.count()));
      std::lock_guard<std::mutex> lock(mutex);
      --streams[target].in_flight;
      ++streams[target].done;
      ++done_total;
      if (r.status == wire::WireStatus::kOk) ++ok;
      cv.notify_one();
    });
  }
  *completed_ok = ok;
  *completed_total = done_total;
}

struct ClusterRunResult {
  int workers = 0;
  int window = 0;
  int driver_threads = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  double wall_seconds = 0;
  double requests_per_sec = 0;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t plan_epoch = 0;
  cluster::ClientStats client_stats;
  cluster::ControllerStatsSnapshot controller_stats;
};

ClusterRunResult RunClusterScenario(int worker_count, int window,
                                    int driver_threads,
                                    std::uint64_t requests_per_thread) {
  cluster::Controller controller;
  std::string error;
  if (!controller.Start(&error)) {
    std::fprintf(stderr, "controller start failed: %s\n", error.c_str());
    return {};
  }

  std::vector<std::unique_ptr<Worker>> workers;
  for (int i = 0; i < worker_count; ++i) {
    workers.push_back(std::make_unique<Worker>(
        static_cast<std::uint64_t>(i) + 1, controller.port()));
    if (!workers.back()->Start(&error)) {
      std::fprintf(stderr, "worker %d start failed: %s\n", i + 1,
                   error.c_str());
      return {};
    }
  }

  // One routed client PER driver thread — independent applications each
  // run their own cluster::Client, so each session stream rides its own
  // TCP connection. That is also what makes the comparison fair: with a
  // single shared client, every stream funnels into one connection per
  // worker, and the 1-worker scenario gets artificially perfect write
  // coalescing no real multi-client deployment would see.
  std::vector<std::unique_ptr<cluster::Client>> clients;
  for (int t = 0; t < driver_threads; ++t) {
    cluster::ClientConfig client_config;
    client_config.controller_port = controller.port();
    clients.push_back(std::make_unique<cluster::Client>(client_config));
    if (!clients.back()->Start(&error)) {
      std::fprintf(stderr, "cluster client start failed: %s\n", error.c_str());
      return {};
    }
  }

  const auto run = [&](std::uint64_t per_thread,
                       std::vector<std::uint64_t>* oks,
                       std::vector<std::uint64_t>* totals,
                       std::vector<support::LatencyHistogram>* hists) {
    std::vector<std::thread> threads;
    for (int t = 0; t < driver_threads; ++t) {
      threads.emplace_back(DriverThread, clients[t].get(),
                           static_cast<std::uint64_t>(worker_count),
                           per_thread, window,
                           static_cast<std::uint64_t>(t) * 7919 + 1, 512ull,
                           &(*oks)[t], &(*totals)[t], &(*hists)[t]);
    }
    for (auto& thread : threads) thread.join();
  };

  // Warm-up (~10%): routes resolved, connections dialed, pools primed.
  {
    std::vector<std::uint64_t> oks(driver_threads, 0);
    std::vector<std::uint64_t> totals(driver_threads, 0);
    std::vector<support::LatencyHistogram> hists(driver_threads);
    run(std::max<std::uint64_t>(requests_per_thread / 10, 1), &oks, &totals,
        &hists);
  }

  ClusterRunResult result;
  result.workers = worker_count;
  result.window = window;
  result.driver_threads = driver_threads;

  std::vector<std::uint64_t> oks(driver_threads, 0);
  std::vector<std::uint64_t> totals(driver_threads, 0);
  std::vector<support::LatencyHistogram> hists(driver_threads);
  const auto start = std::chrono::steady_clock::now();
  run(requests_per_thread, &oks, &totals, &hists);
  const auto end = std::chrono::steady_clock::now();

  support::HistogramSnapshot merged;
  for (int t = 0; t < driver_threads; ++t) {
    result.ok += oks[t];
    result.completed += totals[t];
    merged.Merge(hists[t].Snapshot());
  }
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  result.requests_per_sec =
      result.wall_seconds > 0
          ? static_cast<double>(result.completed) / result.wall_seconds
          : 0;
  result.p50 = merged.PercentileRank(50.0);
  result.p95 = merged.PercentileRank(95.0);
  result.p99 = merged.PercentileRank(99.0);
  for (const auto& client : clients) {
    result.plan_epoch = std::max(result.plan_epoch, client->plan_epoch());
    const cluster::ClientStats stats = client->Stats();
    result.client_stats.calls += stats.calls;
    result.client_stats.wrong_worker_retries += stats.wrong_worker_retries;
    result.client_stats.transport_retries += stats.transport_retries;
    result.client_stats.plan_refreshes += stats.plan_refreshes;
    result.client_stats.exhausted += stats.exhausted;
  }
  result.controller_stats = controller.Stats();

  for (auto& client : clients) client->Stop();
  for (auto& worker : workers) worker->Stop();
  controller.Stop();
  return result;
}

/// M-Scope across all three planes: a traced 1-worker cluster run whose
/// export carries gateway.* and wire.* spans as usual plus the cluster.*
/// instants (plan application, drains) and the "cluster." metrics
/// source, with "cluster-ctrl" / "cluster-agent" thread labels.
void RunTraced(const std::string& trace_path,
               const std::string& metrics_path) {
  namespace trace = support::trace;
  trace::SetPerThreadCapacity(256 * 1024);
  trace::Reset();
  trace::SetEnabled(true);

  cluster::Controller controller;
  std::string error;
  if (!controller.Start(&error)) {
    std::fprintf(stderr, "controller start failed: %s\n", error.c_str());
    return;
  }
  Worker worker(1, controller.port());
  if (!worker.Start(&error)) {
    std::fprintf(stderr, "worker start failed: %s\n", error.c_str());
    return;
  }

  support::MetricsRegistry metrics;
  const auto gateway_registration = worker.gateway->RegisterMetrics(metrics);
  const auto wire_registration = worker.server->RegisterMetrics(metrics);
  const auto cluster_registration = controller.RegisterMetrics(metrics);

  cluster::ClientConfig client_config;
  client_config.controller_port = controller.port();
  cluster::Client client(client_config);
  if (!client.Start(&error)) {
    std::fprintf(stderr, "cluster client start failed: %s\n", error.c_str());
    return;
  }
  SplitMix64 rng{42};
  for (int i = 0; i < 400; ++i) {
    wire::WireRequest request = MixedRequest(rng, 64);
    wire::WireResponse response;
    (void)client.Call(request, &response);
  }
  client.Stop();
  // Quiesce the serving stack before snapshotting so the gateway
  // counters reconcile; the controller keeps running (its gauges are
  // part of the export) — the worker agent has already deregistered by
  // Stop(), so workers_alive legitimately reads 0 or 1 depending on
  // heartbeat timing; epoch stays > 0 either way.
  worker.agent->Stop();
  worker.server->Stop();
  worker.gateway->Stop();

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    metrics.Snapshot().WriteJson(out);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::ofstream out(trace_path);
  const trace::ExportStats stats = trace::ExportChromeTrace(out);
  out.close();
  trace::SetEnabled(false);
  controller.Stop();
  std::printf("wrote %s (%zu events across %zu threads, %zu dropped)\n",
              trace_path.c_str(), stats.events, stats.threads, stats.dropped);
}

void WriteJson(const std::string& path,
               const std::vector<ClusterRunResult>& results) {
  std::ofstream out(path);
  out << "{\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ClusterRunResult& r = results[i];
    out << "    {\n"
        << "      \"workers\": " << r.workers << ",\n"
        << "      \"window\": " << r.window << ",\n"
        << "      \"driver_threads\": " << r.driver_threads << ",\n"
        << "      \"completed\": " << r.completed << ",\n"
        << "      \"ok\": " << r.ok << ",\n"
        << "      \"wall_seconds\": " << r.wall_seconds << ",\n"
        << "      \"requests_per_sec\": " << r.requests_per_sec << ",\n"
        << "      \"latency_us\": {\"p50\": " << r.p50
        << ", \"p95\": " << r.p95 << ", \"p99\": " << r.p99 << "},\n"
        << "      \"plan_epoch\": " << r.plan_epoch << ",\n"
        << "      \"client\": {\"wrong_worker_retries\": "
        << r.client_stats.wrong_worker_retries
        << ", \"transport_retries\": " << r.client_stats.transport_retries
        << ", \"plan_refreshes\": " << r.client_stats.plan_refreshes
        << ", \"exhausted\": " << r.client_stats.exhausted << "},\n"
        << "      \"controller\": {\"registers\": "
        << r.controller_stats.registers
        << ", \"heartbeats\": " << r.controller_stats.heartbeats
        << ", \"plan_pushes\": " << r.controller_stats.plan_pushes
        << ", \"deaths\": " << r.controller_stats.deaths << "}\n"
        << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  std::string trace_path;
  std::string metrics_path;
  bool trace_only = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace-only") {
      trace_only = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (output.empty()) {
      output = arg;
    }
  }
  if (output.empty()) output = "BENCH_cluster.json";

  if (!trace_only) {
    const int driver_threads = 2;
    const int window = 16;
    const std::uint64_t per_thread = smoke ? 600 : 4'000;
    std::vector<ClusterRunResult> results;
    for (const int workers : {1, 3}) {
      std::printf("cluster scenario: %d worker%s, window %d x %d threads, "
                  "%llu requests/thread\n",
                  workers, workers == 1 ? "" : "s", window, driver_threads,
                  static_cast<unsigned long long>(per_thread));
      const ClusterRunResult result =
          RunClusterScenario(workers, window, driver_threads, per_thread);
      std::printf(
          "  -> %.0f req/s (%llu/%llu ok), p50 %llu us, p99 %llu us, "
          "wrong_worker %llu, epoch %llu\n",
          result.requests_per_sec,
          static_cast<unsigned long long>(result.ok),
          static_cast<unsigned long long>(result.completed),
          static_cast<unsigned long long>(result.p50),
          static_cast<unsigned long long>(result.p99),
          static_cast<unsigned long long>(
              result.client_stats.wrong_worker_retries),
          static_cast<unsigned long long>(result.plan_epoch));
      results.push_back(result);
    }
    WriteJson(output, results);
  }

  if (!trace_path.empty()) RunTraced(trace_path, metrics_path);
  return 0;
}
