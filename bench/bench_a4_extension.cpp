// A4 — the extension experiment: Figure-10-style invocation latencies on
// the iPhone platform (no paper column exists — these are the predictions
// the calibrated substrate makes for the §7 future-work platform), plus
// the Pim proxy's cost across all four platforms.
//
//   ./build/bench/bench_a4_extension
#include <cstdio>
#include <memory>

#include "core/registry.h"
#include "iphone/iphone_platform.h"
#include "s60/midlet.h"
#include "sim/geo_track.h"
#include "webview/webview.h"
#include "core/bindings/webview_proxies.h"

using namespace mobivine;

namespace {

constexpr double kLat = 28.5245;
constexpr double kLon = 77.1855;
constexpr int kRuns = 10;

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

std::unique_ptr<device::MobileDevice> MakeDevice(std::uint64_t seed) {
  device::DeviceConfig config;
  config.seed = seed;
  auto dev = std::make_unique<device::MobileDevice>(config);
  dev->gps().set_track(sim::GeoTrack::Stationary(kLat, kLon, 210));
  dev->modem().RegisterSubscriber("+15550123");
  for (int i = 0; i < 25; ++i) {
    dev->contacts().Add("Contact " + std::to_string(i),
                        "+1555" + std::to_string(1000 + i), "");
  }
  return dev;
}

// ---------------------------------------------------------------------------
// iPhone invocation latencies (prediction, no paper baseline)
// ---------------------------------------------------------------------------

class SilentProximity : public core::ProximityListener {
 public:
  void proximityEvent(double, double, double, const core::Location&,
                      bool) override {}
};

void PrintIPhoneRows() {
  core::ProxyRegistry registry(&Store());
  std::printf(
      "iPhone OS (extension platform) — proxy invocation latency, avg of %d "
      "runs\n",
      kRuns);
  std::printf("(getLocation spans the authorization prompt + first CoreLocation "
              "fix; sendSMS returns at openURL handoff)\n\n");
  std::printf("%-20s | %14s\n", "API", "with proxy (ms)");
  std::printf("%s\n", std::string(40, '-').c_str());

  static SilentProximity listener;
  for (const char* api : {"addProximityAlert", "getLocation", "sendSMS",
                          "listContacts"}) {
    double total = 0;
    for (int run = 0; run < kRuns; ++run) {
      auto dev = MakeDevice(4000 + run);
      iphone::IPhonePlatform platform(*dev);
      auto location = registry.CreateLocationProxy(platform);
      auto sms = registry.CreateSmsProxy(platform);
      auto pim = registry.CreatePimProxy(platform);
      const sim::SimTime before = dev->scheduler().now();
      const std::string name = api;
      if (name == "addProximityAlert") {
        location->addProximityAlert(kLat, kLon, 0, 200.0f, -1, &listener);
      } else if (name == "getLocation") {
        (void)location->getLocation();
      } else if (name == "sendSMS") {
        sms->sendTextMessage("+15550123", "ping", nullptr);
      } else {
        (void)pim->listContacts();
      }
      total += (dev->scheduler().now() - before).millis();
    }
    std::printf("%-20s | %14.1f\n", api, total / kRuns);
  }
}

// ---------------------------------------------------------------------------
// Pim proxy across all four platforms (25 contacts)
// ---------------------------------------------------------------------------

void PrintPimRows() {
  core::ProxyRegistry registry(&Store());
  std::printf("\nPim.listContacts, 25 contacts — virtual ms and "
              "de-fragmentation ops, avg of %d runs\n\n",
              kRuns);
  std::printf("%-10s | %10s | %12s\n", "platform", "time (ms)", "defrag ops");
  std::printf("%s\n", std::string(40, '-').c_str());

  for (const char* platform_name : {"android", "s60", "iphone", "webview"}) {
    double total_ms = 0;
    double total_ops = 0;
    for (int run = 0; run < kRuns; ++run) {
      auto dev = MakeDevice(5000 + run);
      const std::string name = platform_name;
      if (name == "android") {
        android::AndroidPlatform platform(*dev);
        platform.grantPermission(android::permissions::kReadContacts);
        auto pim = registry.CreatePimProxy(platform);
        const sim::SimTime before = dev->scheduler().now();
        (void)pim->listContacts();
        total_ms += (dev->scheduler().now() - before).millis();
        total_ops += static_cast<double>(pim->meter().total_ops());
      } else if (name == "s60") {
        s60::S60Platform platform(*dev);
        platform.grantPermission(s60::permissions::kPimRead);
        auto pim = registry.CreatePimProxy(platform);
        const sim::SimTime before = dev->scheduler().now();
        (void)pim->listContacts();
        total_ms += (dev->scheduler().now() - before).millis();
        total_ops += static_cast<double>(pim->meter().total_ops());
      } else if (name == "iphone") {
        iphone::IPhonePlatform platform(*dev);
        auto pim = registry.CreatePimProxy(platform);
        const sim::SimTime before = dev->scheduler().now();
        (void)pim->listContacts();
        total_ms += (dev->scheduler().now() - before).millis();
        total_ops += static_cast<double>(pim->meter().total_ops());
      } else {
        android::AndroidPlatform platform(*dev);
        platform.grantPermission(android::permissions::kReadContacts);
        webview::WebView webview(platform);
        core::InstallWebViewProxies(webview);
        webview.loadScript("var pim = new PimProxyImpl();");
        const sim::SimTime before = dev->scheduler().now();
        webview.loadScript("pim.listContacts();");
        total_ms += (dev->scheduler().now() - before).millis();
        total_ops += 0;  // JS path: ops live in the bridge, not the meter
      }
    }
    std::printf("%-10s | %10.1f | %12.0f\n", platform_name, total_ms / kRuns,
                total_ops / kRuns);
  }
}

}  // namespace

int main() {
  std::printf("A4 — extension experiment (paper §7: iPhone platform + "
              "contact-list interface)\n\n");
  PrintIPhoneRows();
  PrintPimRows();
  std::printf("\nextension invariant: added via binding planes + objc "
              "syntactic planes only (see tests: "
              "ShippedDescriptors.IPhoneExtensionUsesObjCPlanes)\n");
  return 0;
}
