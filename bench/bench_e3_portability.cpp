// E3 — portability (paper §5 "Portability"): how similar is the SAME
// application fragment across platforms, with and without proxies?
// Measured as line-LCS similarity of the generated fragments.
//
//   ./build/bench/bench_e3_portability
#include <cstdio>
#include <string>
#include <vector>

#include "plugin/codegen.h"
#include "plugin/configuration.h"
#include "plugin/metrics.h"

using namespace mobivine;
using namespace mobivine::plugin;

namespace {

ProxyConfiguration Configure(const core::DescriptorStore& store,
                             const std::string& proxy,
                             const std::string& method,
                             const std::string& platform) {
  ProxyConfiguration config =
      ProxyConfiguration::For(*store.Find(proxy), method, platform);
  config.SetVariable("latitude", "28.5245");
  config.SetVariable("longitude", "77.1855");
  config.SetVariable("altitude", "210");
  config.SetVariable("radius", "200");
  config.SetVariable("timer", "-1");
  config.SetVariable("destination", "\"+15550199\"");
  config.SetVariable("text", "\"on site\"");
  config.SetVariable("url", "\"http://wfm.example/checkin\"");
  config.SetVariable("body", "\"agent=7\"");
  config.SetVariable("contentType", "\"text/plain\"");
  return config;
}

}  // namespace

int main() {
  const auto store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  CodeGenerator generator(store);

  struct Case {
    const char* proxy;
    const char* method;
  };
  const std::vector<Case> cases = {{"Location", "addProximityAlert"},
                                   {"Location", "getLocation"},
                                   {"Sms", "sendTextMessage"},
                                   {"Http", "post"}};
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"android", "s60"},     {"android", "webview"}, {"s60", "webview"},
      {"android", "iphone"},  {"s60", "iphone"}};

  std::printf("E3 — cross-platform similarity of the same application "
              "fragment (line-LCS, 1.0 = identical)\n\n");
  std::printf("%-26s %-20s | %10s %10s\n", "API", "platform pair",
              "raw sim", "proxy sim");
  std::printf("%s\n", std::string(74, '-').c_str());

  bool shape_holds = true;
  double raw_total = 0, proxy_total = 0;
  int measured = 0;
  for (const Case& c : cases) {
    for (const auto& [a, b] : pairs) {
      if (!store.Find(c.proxy)->SupportsPlatform(a) ||
          !store.Find(c.proxy)->SupportsPlatform(b)) {
        continue;
      }
      auto config_a = Configure(store, c.proxy, c.method, a);
      auto config_b = Configure(store, c.proxy, c.method, b);
      const double raw_sim = LineSimilarity(
          generator.ApplicationFragment(config_a, CodeStyle::kRaw).code,
          generator.ApplicationFragment(config_b, CodeStyle::kRaw).code);
      const double proxy_sim = LineSimilarity(
          generator.ApplicationFragment(config_a, CodeStyle::kProxy).code,
          generator.ApplicationFragment(config_b, CodeStyle::kProxy).code);
      std::printf("%-26s %-20s | %10.2f %10.2f\n",
                  (std::string(c.proxy) + "." + c.method).c_str(),
                  (a + " vs " + b).c_str(), raw_sim, proxy_sim);
      if (proxy_sim <= raw_sim) shape_holds = false;
      raw_total += raw_sim;
      proxy_total += proxy_sim;
      ++measured;
    }
  }
  std::printf("\nmean similarity: raw %.2f, proxy %.2f\n", raw_total / measured,
              proxy_total / measured);
  std::printf("paper's claim (proxy code 'mostly similar' across platforms "
              "and languages): %s\n",
              shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
