// A2 — ablation: cost of the descriptor pipeline (real time, not virtual).
// XML parsing, schema validation, plane assembly and full store loading —
// the design-time machinery of the M-Proxy model.
//
//   ./build/bench/bench_a2_descriptor
#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

#include "core/descriptor/proxy_descriptor.h"
#include "core/descriptor/schemas.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

using namespace mobivine;

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

const std::string& SemanticSource() {
  static const std::string source =
      ReadFile(std::string(MOBIVINE_DESCRIPTOR_DIR) +
               "/location/semantic.xml");
  return source;
}

const std::string& BindingSource() {
  static const std::string source =
      ReadFile(std::string(MOBIVINE_DESCRIPTOR_DIR) +
               "/location/binding-s60.xml");
  return source;
}

void BM_XmlParseSemantic(benchmark::State& state) {
  for (auto _ : state) {
    xml::Document doc = xml::Parse(SemanticSource());
    benchmark::DoNotOptimize(doc.root);
  }
  state.SetBytesProcessed(state.iterations() * SemanticSource().size());
}
BENCHMARK(BM_XmlParseSemantic);

void BM_SchemaValidateSemantic(benchmark::State& state) {
  xml::Document doc = xml::Parse(SemanticSource());
  for (auto _ : state) {
    auto violations = core::SemanticSchema().Validate(*doc.root);
    benchmark::DoNotOptimize(violations);
  }
}
BENCHMARK(BM_SchemaValidateSemantic);

void BM_ParseSemanticPlane(benchmark::State& state) {
  xml::Document doc = xml::Parse(SemanticSource());
  for (auto _ : state) {
    core::SemanticPlane plane = core::ParseSemantic(*doc.root);
    benchmark::DoNotOptimize(plane);
  }
}
BENCHMARK(BM_ParseSemanticPlane);

void BM_ParseBindingPlane(benchmark::State& state) {
  xml::Document doc = xml::Parse(BindingSource());
  for (auto _ : state) {
    core::BindingPlane plane = core::ParseBinding(*doc.root);
    benchmark::DoNotOptimize(plane);
  }
}
BENCHMARK(BM_ParseBindingPlane);

void BM_SerializeSemanticPlane(benchmark::State& state) {
  xml::Document doc = xml::Parse(SemanticSource());
  core::SemanticPlane plane = core::ParseSemantic(*doc.root);
  for (auto _ : state) {
    std::string out = xml::WriteNode(*core::ToXml(plane));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SerializeSemanticPlane);

void BM_LoadFullDescriptorStore(benchmark::State& state) {
  for (auto _ : state) {
    core::DescriptorStore store =
        core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
    benchmark::DoNotOptimize(store.size());
  }
}
BENCHMARK(BM_LoadFullDescriptorStore)->Unit(benchmark::kMicrosecond);

void BM_CrossPlaneValidation(benchmark::State& state) {
  core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  const core::ProxyDescriptor* descriptor = store.Find("Location");
  for (auto _ : state) {
    auto problems = descriptor->Validate();
    benchmark::DoNotOptimize(problems);
  }
}
BENCHMARK(BM_CrossPlaneValidation);

}  // namespace

BENCHMARK_MAIN();
