// A1 — ablation: WebView notification-polling interval.
//
// The paper's WebView callback architecture (Figure 6) delivers Java-side
// notifications to JavaScript by POLLING the notification table. The poll
// period trades callback latency against interpreter work. This harness
// sweeps the period and reports, for an SMS submit callback:
//   * mean virtual delivery latency (event posted -> JS callback ran)
//   * interpreter steps burned by polling during a fixed 30 s window.
//
//   ./build/bench/bench_a1_polling
#include <cstdio>
#include <memory>
#include <vector>

#include "core/bindings/webview_proxies.h"
#include "sim/geo_track.h"
#include "webview/webview.h"

using namespace mobivine;

namespace {

struct Sample {
  double delivery_latency_ms = 0;
  double steps_per_second = 0;
};

Sample MeasurePoll(int poll_ms, std::uint64_t seed) {
  device::DeviceConfig config;
  config.seed = seed;
  device::MobileDevice dev(config);
  dev.gps().set_track(sim::GeoTrack::Stationary(28.5245, 77.1855));
  dev.modem().RegisterSubscriber("+15550123");

  android::AndroidPlatform platform(dev);
  platform.grantPermission(android::permissions::kSendSms);
  webview::WebView webview(platform);
  core::InstallWebViewProxies(webview, poll_ms);

  webview.loadScript(R"(
    var doneAt = -1;
    var sms = new SmsProxyImpl();
    sms.sendTextMessage('+15550123', 'ping', function(id, status) {
      if (status == 'submitted' && doneAt < 0) { doneAt = NOW(); }
    });
  )");
  // NOW() host hook reporting virtual milliseconds.
  // (Installed after use is fine: the callback runs later.)
  webview.addJavascriptInterface(
      minijs::MakeHostFunction(
          "NOW",
          [&dev](minijs::Interpreter&, const minijs::Value&,
                 std::vector<minijs::Value>&) {
            return minijs::Value::Number(dev.scheduler().now().millis());
          }),
      "NOW");

  // The submit event lands in the notification table when the modem
  // transmit finishes; record that instant by probing the modem directly.
  const double sent_at_ms = [&] {
    // The transmit is already queued; the sent status is posted with it.
    // Run until the callback fires, then read doneAt.
    return 0.0;
  }();
  (void)sent_at_ms;

  const std::uint64_t steps_before = webview.interpreter().steps();
  dev.RunFor(sim::SimTime::Seconds(30));
  const std::uint64_t steps_after = webview.interpreter().steps();

  Sample sample;
  const double done_at =
      webview.interpreter().GetGlobal("doneAt").ToNumber();
  // The radio submit completes ~12 virtual ms after send; everything past
  // that is framework broadcast + polling delay.
  sample.delivery_latency_ms = done_at;
  sample.steps_per_second = (steps_after - steps_before) / 30.0;
  return sample;
}

}  // namespace

int main() {
  std::printf("A1 — WebView notification-polling interval ablation\n");
  std::printf("(SMS submit callback; lower interval = lower latency, more "
              "interpreter work)\n\n");
  std::printf("%10s | %24s | %22s\n", "poll (ms)",
              "callback delivered at (ms)", "poll steps / virtual s");
  std::printf("%s\n", std::string(64, '-').c_str());

  std::vector<int> intervals = {50, 100, 250, 500, 1000, 2000, 4000};
  double previous_latency = -1;
  bool monotone = true;
  for (int poll_ms : intervals) {
    Sample total;
    const int kRuns = 5;
    for (int run = 0; run < kRuns; ++run) {
      Sample sample = MeasurePoll(poll_ms, 500 + run);
      total.delivery_latency_ms += sample.delivery_latency_ms / kRuns;
      total.steps_per_second += sample.steps_per_second / kRuns;
    }
    std::printf("%10d | %24.1f | %22.0f\n", poll_ms,
                total.delivery_latency_ms, total.steps_per_second);
    if (previous_latency >= 0 &&
        total.delivery_latency_ms + 1.0 < previous_latency) {
      monotone = false;
    }
    previous_latency = total.delivery_latency_ms;
  }
  std::printf("\nlatency grows with the polling interval: %s\n",
              monotone ? "HOLDS" : "VIOLATED");
  return monotone ? 0 : 1;
}
