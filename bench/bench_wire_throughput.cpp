// M-Wire loopback serving throughput vs the in-process gateway path.
//
// The question this bench answers (EXPERIMENTS.md W5): what does putting
// a real socket, a binary codec and an epoll reactor in front of the
// gateway cost, against the same 8-shard gateway driven in-process by
// the closed-loop traffic generator?
//
// Scenario matrix, written to BENCH_wire.json (or argv[1]):
//
//  * in_process — gateway::RunTraffic closed-loop baseline (no sockets),
//    same op/platform mix, 8 shards.
//  * wire — {1, 4, 8} event loops x {pipelined (window 64), sync
//    (window 1)} over loopback TCP: client threads run the same
//    deterministic mix through WireClient; requests/sec is completions
//    over wall clock, latency percentiles are client-observed (socket
//    round trip included) from support::LatencyHistogram.
//
// Methodology mirrors bench_gateway_throughput: wall-clock timing on
// steady_clock, a fresh gateway+server per scenario, an untimed ~10%
// warm-up batch, tracing disabled during throughput runs.
//
// M-Scope (W3/W5): with --trace/--metrics an additional traced scenario
// runs — tracing enabled end to end, mixed traffic with properties and
// transient failures over a real socket — exporting wire.read /
// wire.decode / wire.dispatch / wire.write spans on "wire-loop-N"
// threads alongside the gateway's spans, plus a metrics dump with both
// "gateway." and "wire." sources. --trace-only skips the throughput
// matrix (the CI validation leg uses this).
//
// --smoke runs a shortened single-scenario matrix (the CI perf-smoke
// leg): in-process baseline plus one pipelined wire scenario, same JSON
// shape, a fraction of the wall clock.
//
//   ./build/bench/bench_wire_throughput [output.json]
//       [--trace trace.json] [--metrics metrics.json] [--trace-only]
//       [--smoke]
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "gateway/traffic.h"
#include "sim/clock.h"
#include "support/buffer_pool.h"
#include "support/histogram.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "wire/client.h"
#include "wire/protocol.h"
#include "wire/server.h"

using namespace mobivine;

namespace {

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t Next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

/// The traffic generator's default op/platform mix (gateway/traffic.h),
/// re-rolled here so the wire and in-process runs offer the same work.
wire::WireRequest MixedRequest(SplitMix64& rng, std::uint64_t clients) {
  wire::WireRequest request;
  request.client_id = rng.Next() % clients;
  switch (rng.Next() % 4) {
    case 0:
    case 1:
      request.platform = gateway::Platform::kAndroid;
      break;
    case 2:
      request.platform = gateway::Platform::kS60;
      break;
    default:
      request.platform = gateway::Platform::kIphone;
      break;
  }
  switch (rng.Next() % 6) {
    case 0:
      request.op = gateway::Op::kGetLocation;
      break;
    case 1:
      request.op = gateway::Op::kSendSms;
      request.target = gateway::kGatewaySmsPeer;
      request.payload = "wire bench message";
      break;
    case 2:
      request.op = gateway::Op::kHttpPost;
      request.target =
          std::string("http://") + gateway::kGatewayHttpHost + "/echo";
      request.payload = "post body";
      request.content_type = "text/plain";
      break;
    case 3:
      request.op = gateway::Op::kSegmentCount;
      request.payload = std::string(200, 'x');
      break;
    default:
      request.op = gateway::Op::kHttpGet;
      request.target =
          std::string("http://") + gateway::kGatewayHttpHost + "/ping";
      break;
  }
  return request;
}

/// One closed-loop client thread: keep up to `window` requests in flight
/// on a dedicated connection until `requests` completions have been
/// observed. Refills in half-window batches through SubmitBatch so the
/// send side pays one syscall per batch, not per request (window == 1
/// degenerates to strict request/response).
void ClientWorker(std::uint16_t port, std::uint64_t requests, int window,
                  std::uint64_t seed, std::uint64_t clients,
                  std::uint64_t* completed_ok, std::uint64_t* completed_total,
                  support::LatencyHistogram* latency) {
  wire::WireClient client;
  if (!client.Connect(port)) return;
  SplitMix64 rng{seed};

  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t in_flight = 0;
  std::uint64_t done = 0;
  std::uint64_t ok = 0;
  const std::uint64_t refill_at =
      window > 1 ? static_cast<std::uint64_t>(window) / 2 : 0;

  std::uint64_t submitted = 0;
  while (submitted < requests) {
    std::uint64_t batch_size = 0;
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return in_flight <= refill_at; });
      batch_size = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(window) - in_flight,
          requests - submitted);
      in_flight += batch_size;
    }
    std::vector<wire::WireRequest> batch;
    batch.reserve(batch_size);
    for (std::uint64_t i = 0; i < batch_size; ++i) {
      batch.push_back(MixedRequest(rng, clients));
    }
    const auto start = std::chrono::steady_clock::now();
    client.SubmitBatch(
        batch, [&, start](const wire::WireResponse& r) {
          const auto micros =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start);
          latency->Record(static_cast<std::uint64_t>(micros.count()));
          std::lock_guard<std::mutex> lock(mutex);
          --in_flight;
          ++done;
          if (r.status == wire::WireStatus::kOk) ++ok;
          // Only wake the submitter at the refill threshold (or at the
          // end): a wakeup per completion is measurable on small hosts.
          if (in_flight <= refill_at || done == requests) cv.notify_one();
        });
    submitted += batch_size;
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done == requests; });
  }
  client.Close();
  *completed_ok = ok;
  *completed_total = done;
}

struct WireRunResult {
  int event_loops = 0;
  int window = 0;
  int client_threads = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  double wall_seconds = 0;
  double requests_per_sec = 0;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0;
  /// Fresh frame-buffer heap allocations (pool misses, client + server,
  /// measured run only) per completed request. The tentpole claim is
  /// that this is 0 at steady state: the warm-up run populates the pool.
  std::uint64_t pool_miss_delta = 0;
  double allocs_per_req = 0;
  wire::WireStatsSnapshot stats;
};

WireRunResult RunWireScenario(int event_loops, int window, int client_threads,
                              std::uint64_t requests_per_thread) {
  gateway::GatewayConfig config;
  config.shards = 8;
  config.queue_capacity = 1024;
  config.store = &Store();
  gateway::Gateway gw(config);

  wire::WireServerConfig wire_config;
  wire_config.event_loops = event_loops;
  wire::WireServer server(gw, wire_config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "wire server start failed: %s\n", error.c_str());
    return {};
  }

  // Warm-up (~10%): interners, descriptor indexes, per-shard caches, TCP.
  {
    std::vector<std::thread> threads;
    std::vector<std::uint64_t> oks(client_threads, 0);
    std::vector<std::uint64_t> totals(client_threads, 0);
    std::vector<support::LatencyHistogram> hists(client_threads);
    const std::uint64_t per_thread =
        std::max<std::uint64_t>(requests_per_thread / 10, 1);
    for (int t = 0; t < client_threads; ++t) {
      threads.emplace_back(ClientWorker, server.port(), per_thread, window,
                           static_cast<std::uint64_t>(t) * 104729 + 3, 512ull,
                           &oks[t], &totals[t], &hists[t]);
    }
    for (auto& thread : threads) thread.join();
  }

  WireRunResult result;
  result.event_loops = event_loops;
  result.window = window;
  result.client_threads = client_threads;

  // Pool misses after warm-up are real steady-state allocations. Warm-up
  // client threads flushed their thread caches into the global tier on
  // exit, so the fresh measured-run threads inherit those buffers.
  const std::uint64_t misses_before =
      support::BufferPool::WirePool().Stats().misses;

  std::vector<std::thread> threads;
  std::vector<std::uint64_t> oks(client_threads, 0);
  std::vector<std::uint64_t> totals(client_threads, 0);
  std::vector<support::LatencyHistogram> hists(client_threads);
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < client_threads; ++t) {
    threads.emplace_back(ClientWorker, server.port(), requests_per_thread,
                         window, static_cast<std::uint64_t>(t) * 7919 + 1,
                         512ull, &oks[t], &totals[t], &hists[t]);
  }
  for (auto& thread : threads) thread.join();
  const auto end = std::chrono::steady_clock::now();

  support::HistogramSnapshot merged;
  for (int t = 0; t < client_threads; ++t) {
    result.ok += oks[t];
    result.completed += totals[t];
    merged.Merge(hists[t].Snapshot());
  }
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  result.requests_per_sec =
      result.wall_seconds > 0
          ? static_cast<double>(result.completed) / result.wall_seconds
          : 0;
  result.p50 = merged.PercentileRank(50.0);
  result.p95 = merged.PercentileRank(95.0);
  result.p99 = merged.PercentileRank(99.0);
  result.pool_miss_delta =
      support::BufferPool::WirePool().Stats().misses - misses_before;
  result.allocs_per_req =
      result.completed > 0 ? static_cast<double>(result.pool_miss_delta) /
                                 static_cast<double>(result.completed)
                           : 0;
  result.stats = server.Stats();

  server.Stop();
  gw.Stop();
  return result;
}

gateway::TrafficReport RunInProcessBaseline(std::uint64_t total_requests) {
  gateway::GatewayConfig config;
  config.shards = 8;
  config.queue_capacity = 1024;
  config.store = &Store();
  gateway::Gateway gw(config);

  gateway::TrafficConfig traffic;
  traffic.producers = 4;
  traffic.requests_per_producer = total_requests / 4;
  traffic.clients = 512;
  traffic.window = 16;
  traffic.seed = 42;

  gateway::TrafficConfig warmup = traffic;
  warmup.requests_per_producer =
      std::max<std::uint64_t>(traffic.requests_per_producer / 10, 1);
  (void)gateway::RunTraffic(gw, warmup);

  const gateway::TrafficReport report = gateway::RunTraffic(gw, traffic);
  gw.Stop();
  return report;
}

/// M-Scope over the wire: tracing enabled end to end, mixed traffic with
/// per-request properties and transient failures through a real socket,
/// exporting the trace plus a metrics dump carrying both the "gateway."
/// and "wire." sources.
void RunTraced(const std::string& trace_path,
               const std::string& metrics_path) {
  namespace trace = support::trace;
  trace::SetPerThreadCapacity(256 * 1024);
  trace::Reset();
  trace::SetEnabled(true);

  gateway::GatewayConfig config;
  config.shards = 2;
  config.store = &Store();
  config.device_template.network.loss_probability = 0.2;
  config.device_template.network.timeout = sim::SimTime::Seconds(1);
  config.default_retry.max_attempts = 4;
  config.default_retry.initial_backoff = std::chrono::microseconds(100);
  gateway::Gateway gw(config);

  wire::WireServerConfig wire_config;
  wire_config.event_loops = 2;
  wire::WireServer server(gw, wire_config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "wire server start failed: %s\n", error.c_str());
    return;
  }

  support::MetricsRegistry metrics;
  const auto gateway_registration = gw.RegisterMetrics(metrics);
  const auto wire_registration = server.RegisterMetrics(metrics);

  wire::WireClient client;
  if (!client.Connect(server.port())) {
    std::fprintf(stderr, "wire client connect failed\n");
    return;
  }
  for (std::uint64_t i = 0; i < 400; ++i) {
    wire::WireRequest request;
    request.client_id = i;
    switch (i % 4) {
      case 0:
        request.platform = gateway::Platform::kAndroid;
        request.op = gateway::Op::kHttpGet;
        request.target =
            std::string("http://") + gateway::kGatewayHttpHost + "/ping";
        break;
      case 1:
        request.platform = gateway::Platform::kS60;
        request.op = gateway::Op::kGetLocation;
        request.properties.emplace_back("horizontalAccuracy", 50LL);
        request.properties.emplace_back(
            "powerConsumption", core::PropertyValue(std::string("low")));
        break;
      case 2:
        request.platform = gateway::Platform::kIphone;
        request.op = gateway::Op::kSendSms;
        request.target = gateway::kGatewaySmsPeer;
        request.payload = "traced message";
        break;
      default:
        request.platform = gateway::Platform::kS60;
        request.op = gateway::Op::kSegmentCount;
        request.payload = std::string(200, 'x');
        break;
    }
    wire::WireResponse response;
    (void)client.Call(std::move(request), &response);
  }
  client.Close();
  // Quiesce before snapshotting so the gateway counters reconcile
  // (accepted == ok + failed + timed_out) and every span is closed.
  server.Stop();
  gw.Stop();

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    metrics.Snapshot().WriteJson(out);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::ofstream out(trace_path);
  const trace::ExportStats stats = trace::ExportChromeTrace(out);
  out.close();
  trace::SetEnabled(false);
  std::printf("wrote %s (%zu events across %zu threads, %zu dropped)\n",
              trace_path.c_str(), stats.events, stats.threads, stats.dropped);
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  std::string trace_path;
  std::string metrics_path;
  bool trace_only = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace-only") {
      trace_only = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      output = arg;
    }
  }
  if (output.empty()) output = "BENCH_wire.json";
  if (trace_only) {
    RunTraced(trace_path.empty() ? "TRACE_wire.json" : trace_path,
              metrics_path);
    return 0;
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("M-Wire loopback serving benchmark (host: %u hardware "
              "threads, gateway: 8 shards%s)\n\n",
              cores, smoke ? ", smoke" : "");

  const std::uint64_t kTotalRequests = smoke ? 8000 : 20000;
  const gateway::TrafficReport in_process =
      RunInProcessBaseline(kTotalRequests);
  std::printf("in-process baseline: %llu served, %.0f req/s\n\n",
              static_cast<unsigned long long>(in_process.ok),
              in_process.completed_per_sec);

  std::printf("%-8s %-10s %12s %12s %10s %10s %10s %8s %11s\n", "loops",
              "pipeline", "served", "req/s", "p50(us)", "p95(us)", "p99(us)",
              "stalls", "allocs/req");
  std::printf("%s\n", std::string(100, '-').c_str());

  constexpr int kClientThreads = 2;
  // Smoke: one pipelined scenario is enough to price the wire path; the
  // full matrix exists to show the loop-count/window trends.
  const std::vector<int> loop_counts = smoke ? std::vector<int>{4}
                                             : std::vector<int>{1, 4, 8};
  const std::vector<int> windows = smoke ? std::vector<int>{64}
                                         : std::vector<int>{64, 1};
  std::vector<WireRunResult> scenarios;
  for (int event_loops : loop_counts) {
    for (int window : windows) {
      WireRunResult result = RunWireScenario(
          event_loops, window, kClientThreads, kTotalRequests / kClientThreads);
      std::printf(
          "%-8d %-10s %12llu %12.0f %10llu %10llu %10llu %8llu %11.4f\n",
          result.event_loops, window > 1 ? "on" : "off",
          static_cast<unsigned long long>(result.ok),
          result.requests_per_sec,
          static_cast<unsigned long long>(result.p50),
          static_cast<unsigned long long>(result.p95),
          static_cast<unsigned long long>(result.p99),
          static_cast<unsigned long long>(result.stats.backpressure_stalls),
          result.allocs_per_req);
      scenarios.push_back(std::move(result));
    }
  }

  // The acceptance ratio: best pipelined wire scenario vs in-process.
  double best_wire_rps = 0;
  double best_allocs_per_req = 0;
  for (const WireRunResult& r : scenarios) {
    if (r.window > 1 && r.requests_per_sec > best_wire_rps) {
      best_wire_rps = r.requests_per_sec;
      best_allocs_per_req = r.allocs_per_req;
    }
  }
  const double ratio = in_process.completed_per_sec > 0
                           ? best_wire_rps / in_process.completed_per_sec
                           : 0;
  std::printf("\nloopback overhead: best pipelined wire %.0f req/s = %.1f%% "
              "of in-process %.0f req/s (%.4f frame-buffer allocs/req)\n",
              best_wire_rps, ratio * 100.0, in_process.completed_per_sec,
              best_allocs_per_req);

  std::ofstream json(output);
  json << "{\n  \"bench\": \"wire_throughput\",\n"
       << "  \"hardware_concurrency\": " << cores << ",\n"
       << "  \"gateway_shards\": 8,\n  \"client_threads\": " << kClientThreads
       << ",\n  \"in_process\": {\"served\": " << in_process.ok
       << ", \"requests_per_sec\": "
       << static_cast<std::uint64_t>(in_process.completed_per_sec)
       << "},\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const WireRunResult& r = scenarios[i];
    json << "    {\"event_loops\": " << r.event_loops
         << ", \"pipelining\": " << (r.window > 1 ? "true" : "false")
         << ", \"window\": " << r.window << ", \"served\": " << r.ok
         << ", \"requests_per_sec\": "
         << static_cast<std::uint64_t>(r.requests_per_sec)
         << ",\n     \"p50_us\": " << r.p50 << ", \"p95_us\": " << r.p95
         << ", \"p99_us\": " << r.p99
         << ", \"frames_in\": " << r.stats.frames_in
         << ", \"frames_out\": " << r.stats.frames_out
         << ", \"bytes_in\": " << r.stats.bytes_in
         << ", \"bytes_out\": " << r.stats.bytes_out
         << ", \"backpressure_stalls\": " << r.stats.backpressure_stalls
         << ", \"pool_miss_delta\": " << r.pool_miss_delta
         << ", \"frame_buffer_allocs_per_req\": " << r.allocs_per_req
         << "}" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"overhead\": {\"best_pipelined_wire_rps\": "
       << static_cast<std::uint64_t>(best_wire_rps)
       << ", \"in_process_rps\": "
       << static_cast<std::uint64_t>(in_process.completed_per_sec)
       << ", \"wire_over_in_process\": " << ratio
       << ", \"frame_buffer_allocs_per_req\": " << best_allocs_per_req
       << "}\n}\n";
  json.close();
  std::printf("wrote %s\n", output.c_str());

  if (!trace_path.empty()) {
    std::printf("\nM-Scope traced scenario over the wire:\n");
    RunTraced(trace_path, metrics_path);
  }
  return 0;
}
