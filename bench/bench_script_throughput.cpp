// M-Script vs pipelined requests: what server-side composition buys.
//
// The question this bench answers (EXPERIMENTS.md W9): a real client
// scenario is rarely one invocation — "read the location, POST it,
// SMS the confirmation" is three *dependent* round trips, each one
// paying the full wire latency before the next can start. M-Script
// ships the whole composite as one kScript frame and runs it inside
// the owning shard, so the wire is paid once per composite instead of
// once per step.
//
// Scenario matrix, written to BENCH_script.json (or argv[1]):
//
//  * requests — each composite is k=3 dependent kRequest round trips
//    (getLocation -> httpPost(reading) -> sendSms(receipt)), issued
//    sequentially on one connection because step N+1 needs step N's
//    result. Composite latency is first-send to last-response.
//  * script — the same three invocations as one kScript frame running
//    the composite in MiniJS on the shard. Same proxies, same fault
//    gates, same meters; one round trip.
//
// A hostile-budget phase then fires sandbox-killer scripts (infinite
// loop, deep recursion, unbounded string doubling, oversized result)
// with tight budgets over the same socket and counts outcomes: every
// one must come back as a TYPED status — the acceptance block records
// zero process faults, and the bench crashing IS the failure signal.
//
// Methodology mirrors bench_push_throughput: wall-clock timing on
// steady_clock, a fresh gateway+server per scenario, tracing disabled
// during timed runs. --smoke shrinks the matrix (CI perf-smoke leg);
// --trace exports an M-Scope trace of a small traced scenario
// (script.run spans + script.* counters); --metrics dumps metric
// families; --trace-only runs just the traced scenario (CI validation
// leg, checked by validate_mscope.py --require-script).
//
//   ./build/bench/bench_script_throughput [output.json]
//       [--trace trace.json] [--metrics metrics.json] [--smoke]
//       [--trace-only]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "support/histogram.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "wire/client.h"
#include "wire/protocol.h"
#include "wire/server.h"

using namespace mobivine;

namespace {

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

gateway::GatewayConfig ScriptGatewayConfig() {
  gateway::GatewayConfig config;
  config.shards = 4;
  config.store = &Store();
  return config;
}

/// The composite, as the script plane runs it: three dependent
/// invocations, one frame. Keep in sync with RunCompositeAsRequests —
/// the comparison is only honest if both modes do identical work.
const char* kCompositeSource = R"JS(
  var loc = mobile.invoke('android', 'getLocation');
  var posted = mobile.invoke('android', 'httpPost', args.ingest, loc,
                             'text/plain');
  mobile.invoke('android', 'sendSms', args.peer, posted);
)JS";

struct ScenarioResult {
  std::string mode;
  int clients = 0;
  std::uint64_t composites = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double composites_per_sec = 0;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t frames_in = 0;  ///< client->server frames for the run
};

/// One composite as k=3 dependent wire round trips. Returns false if any
/// leg failed (the caller counts, the next composite still runs).
bool RunCompositeAsRequests(wire::WireClient& client,
                            std::uint64_t client_id,
                            const std::string& ingest_url,
                            const std::string& sms_peer) {
  wire::WireRequest get_location;
  get_location.client_id = client_id;
  get_location.platform = gateway::Platform::kAndroid;
  get_location.op = gateway::Op::kGetLocation;
  wire::WireResponse location;
  if (!client.Call(std::move(get_location), &location) ||
      location.status != wire::WireStatus::kOk) {
    return false;
  }

  wire::WireRequest post;
  post.client_id = client_id;
  post.platform = gateway::Platform::kAndroid;
  post.op = gateway::Op::kHttpPost;
  post.target = ingest_url;
  post.payload = location.body;  // dependency: can't start earlier
  post.content_type = "text/plain";
  wire::WireResponse posted;
  if (!client.Call(std::move(post), &posted) ||
      posted.status != wire::WireStatus::kOk) {
    return false;
  }

  wire::WireRequest sms;
  sms.client_id = client_id;
  sms.platform = gateway::Platform::kAndroid;
  sms.op = gateway::Op::kSendSms;
  sms.target = sms_peer;
  sms.payload = posted.body;  // dependency again
  wire::WireResponse sent;
  return client.Call(std::move(sms), &sent) &&
         sent.status == wire::WireStatus::kOk;
}

ScenarioResult RunScenario(bool as_script, int clients,
                           std::uint64_t composites_per_client) {
  gateway::Gateway gateway(ScriptGatewayConfig());
  wire::WireServer server(gateway, {});
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "wire server start failed: %s\n", error.c_str());
    std::exit(1);
  }
  const std::string ingest_url =
      std::string("http://") + gateway::kGatewayHttpHost + "/ingest";
  const std::string sms_peer = gateway::kGatewaySmsPeer;

  support::LatencyHistogram latency;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < clients; ++i) {
    workers.emplace_back([&, i] {
      wire::WireClient client;
      if (!client.Connect(server.port())) return;
      const std::uint64_t client_id = static_cast<std::uint64_t>(i + 1);
      for (std::uint64_t n = 0; n < composites_per_client; ++n) {
        const auto start = std::chrono::steady_clock::now();
        bool ok;
        if (as_script) {
          wire::WireScriptRequest script;
          script.client_id = client_id;
          script.source = kCompositeSource;
          script.args.emplace_back("ingest", ingest_url);
          script.args.emplace_back("peer", sms_peer);
          wire::WireResponse response;
          ok = client.CallScript(script, &response) &&
               response.status == wire::WireStatus::kOk;
        } else {
          ok = RunCompositeAsRequests(client, client_id, ingest_url,
                                      sms_peer);
        }
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        latency.Record(static_cast<std::uint64_t>(micros));
        (ok ? completed : failed).fetch_add(1, std::memory_order_relaxed);
      }
      client.Close();
    });
  }
  const auto start = std::chrono::steady_clock::now();
  for (auto& worker : workers) worker.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ScenarioResult result;
  result.mode = as_script ? "script" : "requests";
  result.clients = clients;
  result.composites =
      composites_per_client * static_cast<std::uint64_t>(clients);
  result.completed = completed.load(std::memory_order_relaxed);
  result.failed = failed.load(std::memory_order_relaxed);
  result.composites_per_sec = seconds > 0 ? result.completed / seconds : 0;
  const auto snap = latency.Snapshot();
  result.p50 = snap.PercentileRank(50.0);
  result.p95 = snap.PercentileRank(95.0);
  result.p99 = snap.PercentileRank(99.0);
  result.frames_in = server.Stats().frames_in;
  server.Stop();
  gateway.Stop();
  return result;
}

// ---------------------------------------------------------------------------
// Hostile-budget phase: sandbox kills must all be typed statuses
// ---------------------------------------------------------------------------

struct HostileResult {
  std::uint64_t total = 0;
  std::uint64_t typed_script_errors = 0;
  std::uint64_t typed_deadline = 0;
  std::uint64_t other = 0;        ///< anything else that still came back
  std::uint64_t budget_kills = 0; ///< from gateway stats — the sandbox fired
  bool server_alive_after = false;
};

HostileResult RunHostilePhase(std::uint64_t rounds) {
  gateway::GatewayConfig config = ScriptGatewayConfig();
  config.script.max_steps = 20'000;  // tight operator ceiling
  gateway::Gateway gateway(config);
  wire::WireServer server(gateway, {});
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "wire server start failed: %s\n", error.c_str());
    std::exit(1);
  }
  wire::WireClient client;
  if (!client.Connect(server.port())) {
    std::fprintf(stderr, "hostile client connect failed\n");
    std::exit(1);
  }

  const char* corpus[] = {
      "while (true) {}",
      "function f() { return f(); } f();",
      "var s = 'x'; while (true) { s = s + s; }",
      // Builds ~4 MiB then returns it: dies on the result cap.
      "var s = 'xxxxxxxxxxxxxxxx'; var i = 0;"
      " while (i < 18) { s = s + s; i = i + 1; } s;",
      "var t = 0; while (true) { t = mobile.invoke('android',"
      " 'getLocation'); }",
  };
  HostileResult result;
  for (std::uint64_t n = 0; n < rounds; ++n) {
    wire::WireScriptRequest script;
    script.client_id = n;
    script.source = corpus[n % (sizeof corpus / sizeof corpus[0])];
    script.virtual_us_budget = 200'000;
    script.max_result_bytes = 4096;
    wire::WireResponse response;
    if (!client.CallScript(script, &response)) {
      ++result.other;  // transport failure would mean the server died
      continue;
    }
    ++result.total;
    if (response.status == wire::WireStatus::kScriptError) {
      ++result.typed_script_errors;
    } else if (response.status == wire::WireStatus::kDeadlineExceeded) {
      ++result.typed_deadline;
    } else {
      ++result.other;
    }
  }
  result.budget_kills = gateway.Stats().totals.script_budget_kills;

  // The liveness probe: a healthy script still round-trips afterwards.
  wire::WireScriptRequest probe;
  probe.client_id = 1;
  probe.source = "'alive';";
  wire::WireResponse response;
  result.server_alive_after = client.CallScript(probe, &response) &&
                              response.status == wire::WireStatus::kOk &&
                              response.body == "alive";
  client.Close();
  server.Stop();
  gateway.Stop();
  return result;
}

// ---------------------------------------------------------------------------
// M-Scope traced scenario + metrics dump
// ---------------------------------------------------------------------------

void RunTraced(const std::string& trace_path,
               const std::string& metrics_path) {
  namespace trace = support::trace;
  support::MetricsRegistry metrics;
  trace::SetPerThreadCapacity(256 * 1024);
  trace::Reset();
  trace::SetEnabled(true);

  gateway::Gateway gateway(ScriptGatewayConfig());
  wire::WireServerConfig config;
  wire::WireServer server(gateway, config);
  const auto gateway_registration = gateway.RegisterMetrics(metrics);
  const auto registration = server.RegisterMetrics(metrics);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "wire server start failed: %s\n", error.c_str());
    std::exit(1);
  }
  wire::WireClient client;
  if (!client.Connect(server.port())) {
    std::fprintf(stderr, "traced client connect failed\n");
    std::exit(1);
  }
  const std::string ingest_url =
      std::string("http://") + gateway::kGatewayHttpHost + "/ingest";

  // Script traffic: composites, one scripted budget kill, one script
  // error — so script.executed, script.errors AND script.budget_kills
  // all move in the exported metrics.
  for (std::uint64_t i = 0; i < 60; ++i) {
    wire::WireScriptRequest script;
    script.client_id = i;
    script.args.emplace_back("ingest", ingest_url);
    script.args.emplace_back("peer", gateway::kGatewaySmsPeer);
    switch (i % 8) {
      case 6:
        script.source = "while (true) {}";
        script.step_budget = 5'000;
        break;
      case 7:
        script.source = "throw 'traced failure';";
        break;
      default:
        script.source = kCompositeSource;
        break;
    }
    wire::WireResponse response;
    (void)client.CallScript(script, &response);
  }
  // Mixed request traffic on the same connection: the validator's base
  // gateway checks (serve spans, op instants, counter reconciliation)
  // and --require-wire both need the request plane in the same export.
  for (std::uint64_t i = 0; i < 120; ++i) {
    wire::WireRequest request;
    request.client_id = i;
    switch (i % 3) {
      case 0:
        request.platform = gateway::Platform::kAndroid;
        request.op = gateway::Op::kHttpGet;
        request.target =
            std::string("http://") + gateway::kGatewayHttpHost + "/ping";
        break;
      case 1:
        request.platform = gateway::Platform::kIphone;
        request.op = gateway::Op::kSendSms;
        request.target = gateway::kGatewaySmsPeer;
        request.payload = "traced script message";
        break;
      default:
        request.platform = gateway::Platform::kS60;
        request.op = gateway::Op::kSegmentCount;
        request.payload = std::string(200, 'x');
        break;
    }
    wire::WireResponse response;
    (void)client.Call(std::move(request), &response);
  }
  client.Close();
  // Quiesce before snapshotting so counters reconcile and spans close.
  server.Stop();
  gateway.Stop();

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    metrics.Snapshot().WriteJson(out);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::ofstream out(trace_path);
  const trace::ExportStats stats = trace::ExportChromeTrace(out);
  out.close();
  trace::SetEnabled(false);
  std::printf("wrote %s (%zu events across %zu threads, %zu dropped)\n",
              trace_path.c_str(), stats.events, stats.threads, stats.dropped);
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  std::string trace_path;
  std::string metrics_path;
  bool smoke = false;
  bool trace_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--trace-only") {
      trace_only = true;
    } else {
      output = arg;
    }
  }
  if (output.empty()) output = "BENCH_script.json";
  if (trace_only) {
    if (trace_path.empty()) trace_path = "TRACE_script.json";
    std::printf("M-Scope traced script scenario:\n");
    RunTraced(trace_path, metrics_path);
    return 0;
  }

  const unsigned cores = std::thread::hardware_concurrency();
  const std::uint64_t kPerClient = smoke ? 300 : 1'500;
  const std::vector<int> counts =
      smoke ? std::vector<int>{4} : std::vector<int>{1, 4, 8};

  std::printf("M-Script composite benchmark: 3 dependent round trips vs 1 "
              "kScript (host: %u hardware threads, gateway: 4 shards%s)\n\n",
              cores, smoke ? ", smoke" : "");
  std::printf("%-9s %-8s %11s %10s %8s %13s %9s %9s %9s %10s\n", "mode",
              "clients", "composites", "completed", "failed", "composites/s",
              "p50(us)", "p95(us)", "p99(us)", "frames_in");
  std::printf("%s\n", std::string(104, '-').c_str());

  std::vector<ScenarioResult> scenarios;
  auto report = [](const ScenarioResult& r) {
    std::printf("%-9s %-8d %11llu %10llu %8llu %13.0f %9llu %9llu %9llu "
                "%10llu\n",
                r.mode.c_str(), r.clients,
                static_cast<unsigned long long>(r.composites),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed),
                r.composites_per_sec, static_cast<unsigned long long>(r.p50),
                static_cast<unsigned long long>(r.p95),
                static_cast<unsigned long long>(r.p99),
                static_cast<unsigned long long>(r.frames_in));
  };
  for (int clients : counts) {
    ScenarioResult requests = RunScenario(/*as_script=*/false, clients,
                                          kPerClient);
    report(requests);
    scenarios.push_back(std::move(requests));
    ScenarioResult script = RunScenario(/*as_script=*/true, clients,
                                        kPerClient);
    report(script);
    scenarios.push_back(std::move(script));
  }

  std::printf("\nhostile-budget phase (tight ceilings, sandbox-killer "
              "corpus):\n");
  const HostileResult hostile = RunHostilePhase(smoke ? 25 : 100);
  std::printf("  %llu scripts: %llu kScriptError, %llu kDeadlineExceeded, "
              "%llu other; %llu budget kills; server alive: %s\n",
              static_cast<unsigned long long>(hostile.total),
              static_cast<unsigned long long>(hostile.typed_script_errors),
              static_cast<unsigned long long>(hostile.typed_deadline),
              static_cast<unsigned long long>(hostile.other),
              static_cast<unsigned long long>(hostile.budget_kills),
              hostile.server_alive_after ? "yes" : "NO");

  // Acceptance: one kScript beats k=3 dependent round trips on p50 at
  // every client count, and every hostile script died typed.
  const ScenarioResult* requests_ref = nullptr;
  const ScenarioResult* script_ref = nullptr;
  for (const ScenarioResult& r : scenarios) {
    if (r.mode == "requests") requests_ref = &r;  // last (largest) count
    if (r.mode == "script") script_ref = &r;
  }
  double speedup = 0;
  if (requests_ref && script_ref && script_ref->p50 > 0) {
    speedup = static_cast<double>(requests_ref->p50) /
              static_cast<double>(script_ref->p50);
    std::printf("\nscript vs requests @ %d clients: p50 %llu us vs %llu us "
                "(%.2fx)\n",
                script_ref->clients,
                static_cast<unsigned long long>(script_ref->p50),
                static_cast<unsigned long long>(requests_ref->p50), speedup);
  }

  std::ofstream json(output);
  json << "{\n  \"bench\": \"script_throughput\",\n"
       << "  \"hardware_concurrency\": " << cores
       << ",\n  \"gateway_shards\": 4,\n  \"round_trips_per_composite\": 3"
       << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& r = scenarios[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"clients\": " << r.clients
         << ", \"composites\": " << r.composites
         << ", \"completed\": " << r.completed
         << ", \"failed\": " << r.failed << ",\n     \"composites_per_sec\": "
         << static_cast<std::uint64_t>(r.composites_per_sec)
         << ", \"p50_us\": " << r.p50 << ", \"p95_us\": " << r.p95
         << ", \"p99_us\": " << r.p99 << ", \"frames_in\": " << r.frames_in
         << "}" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"hostile\": {\"total\": " << hostile.total
       << ", \"script_errors\": " << hostile.typed_script_errors
       << ", \"deadline_exceeded\": " << hostile.typed_deadline
       << ", \"other\": " << hostile.other
       << ", \"budget_kills\": " << hostile.budget_kills
       << ", \"server_alive_after\": "
       << (hostile.server_alive_after ? "true" : "false")
       << ", \"process_faults\": 0}";
  if (requests_ref && script_ref) {
    json << ",\n  \"acceptance\": {\"clients\": " << script_ref->clients
         << ", \"requests_p50_us\": " << requests_ref->p50
         << ", \"script_p50_us\": " << script_ref->p50
         << ", \"requests_over_script_p50\": " << speedup
         << ", \"requests_frames_in\": " << requests_ref->frames_in
         << ", \"script_frames_in\": " << script_ref->frames_in << "}";
  }
  json << "\n}\n";
  json.close();
  std::printf("wrote %s\n", output.c_str());

  if (!trace_path.empty()) {
    std::printf("\nM-Scope traced script scenario:\n");
    RunTraced(trace_path, metrics_path);
  }
  return 0;
}
