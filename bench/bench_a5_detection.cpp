// A5 — ablation: region-monitor poll interval vs proximity detection
// latency.
//
// Every platform's proximity machinery ultimately polls position (Android's
// system region monitor, S60's platform poll + the proxy's exit detector,
// iPhone's client-side geofencing on the update stream). The poll period is
// THE design knob: it trades detection latency against positioning work.
// The harness drives a device through a region boundary at a known time and
// measures when the uniform entering=true event arrives.
//
//   ./build/bench/bench_a5_detection
#include <cstdio>
#include <memory>
#include <vector>

#include "core/registry.h"
#include "sim/geo_track.h"

using namespace mobivine;

namespace {

constexpr double kLat = 28.5245;
constexpr double kLon = 77.1855;
// Start 800 m out at 20 m/s toward the center of a 200 m region: the
// boundary crossing is at exactly (800 - 200) / 20 = 30 s.
constexpr double kCrossingSeconds = 30.0;
constexpr int kRuns = 8;

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

class FirstEntry : public core::ProximityListener {
 public:
  explicit FirstEntry(sim::Scheduler& scheduler) : scheduler_(scheduler) {}
  void proximityEvent(double, double, double, const core::Location&,
                      bool entering) override {
    if (entering && entered_at_ < 0) {
      entered_at_ = scheduler_.now().seconds();
    }
  }
  double entered_at() const { return entered_at_; }

 private:
  sim::Scheduler& scheduler_;
  double entered_at_ = -1;
};

std::unique_ptr<device::MobileDevice> MakeApproach(std::uint64_t seed) {
  device::DeviceConfig config;
  config.seed = seed;
  // Suppress GPS noise so detection latency is purely the poll period.
  config.gps.noise_balanced_m = 1.0;
  auto dev = std::make_unique<device::MobileDevice>(config);
  auto start = support::MoveAlongBearing(kLat, kLon, 0.0, 800);
  dev->gps().set_track(sim::GeoTrack::StraightLine(
      start.latitude_deg, start.longitude_deg, 180.0, 20.0,
      sim::SimTime::Seconds(120), sim::SimTime::Seconds(1)));
  return dev;
}

/// Registration happens at a random phase within one poll period so the
/// measured delay is a genuine mean over phases, not a fixed alias of the
/// crossing time.
void RandomizePhase(device::MobileDevice& dev, sim::SimTime poll_interval,
                    std::uint64_t seed) {
  sim::Rng phase(seed * 31 + 1);
  dev.scheduler().AdvanceBy(
      sim::SimTime::Micros(phase.UniformInt(0, poll_interval.micros() - 1)));
}

double AndroidDetectionDelay(sim::SimTime poll_interval, std::uint64_t seed) {
  auto dev = MakeApproach(seed);
  android::AndroidApiCost cost;
  cost.proximity_poll_interval = poll_interval;
  android::AndroidPlatform platform(*dev, android::ApiLevel::kM5, cost);
  platform.grantPermission(android::permissions::kFineLocation);
  core::ProxyRegistry registry(&Store());
  auto proxy = registry.CreateLocationProxy(platform);
  proxy->setProperty("context", &platform.application_context());
  RandomizePhase(*dev, poll_interval, seed);
  FirstEntry listener(dev->scheduler());
  proxy->addProximityAlert(kLat, kLon, 0, 200.0f, -1, &listener);
  dev->RunFor(sim::SimTime::Seconds(120));
  if (listener.entered_at() < 0) return -1;
  return listener.entered_at() - kCrossingSeconds;
}

double S60DetectionDelay(sim::SimTime poll_interval, std::uint64_t seed) {
  auto dev = MakeApproach(seed);
  s60::S60ApiCost cost;
  cost.proximity_poll_interval = poll_interval;
  s60::S60Platform platform(*dev, cost);
  platform.grantPermission(s60::permissions::kLocation);
  core::ProxyRegistry registry(&Store());
  auto proxy = registry.CreateLocationProxy(platform);
  RandomizePhase(*dev, poll_interval, seed);
  FirstEntry listener(dev->scheduler());
  proxy->addProximityAlert(kLat, kLon, 0, 200.0f, -1, &listener);
  dev->RunFor(sim::SimTime::Seconds(120));
  if (listener.entered_at() < 0) return -1;
  return listener.entered_at() - kCrossingSeconds;
}

}  // namespace

int main() {
  std::printf("A5 — proximity detection latency vs region-monitor poll "
              "interval\n");
  std::printf("(boundary crossing at t=%.0f s; delay = first entering event "
              "- crossing; avg of %d seeded runs)\n\n",
              kCrossingSeconds, kRuns);
  std::printf("%12s | %18s | %18s\n", "poll (ms)", "android delay (s)",
              "s60 delay (s)");
  std::printf("%s\n", std::string(56, '-').c_str());

  const std::vector<int> intervals_ms = {250, 500, 1000, 2000, 4000, 8000};
  bool monotone = true;
  double previous_android = -1;
  for (int interval_ms : intervals_ms) {
    double android_total = 0, s60_total = 0;
    for (int run = 0; run < kRuns; ++run) {
      android_total += AndroidDetectionDelay(
          sim::SimTime::Millis(interval_ms), 8000 + run);
      s60_total +=
          S60DetectionDelay(sim::SimTime::Millis(interval_ms), 9000 + run);
    }
    const double android_mean = android_total / kRuns;
    const double s60_mean = s60_total / kRuns;
    std::printf("%12d | %18.2f | %18.2f\n", interval_ms, android_mean,
                s60_mean);
    if (previous_android >= 0 && android_mean + 0.05 < previous_android &&
        interval_ms > 1000) {
      monotone = false;
    }
    previous_android = android_mean;
  }
  std::printf("\nexpected: mean delay ~= poll/2 (uniform phase) + fix time; "
              "grows with the interval: %s\n",
              monotone ? "HOLDS" : "VIOLATED");
  return monotone ? 0 : 1;
}
