// E2 — code complexity (paper §5 "Complexity", Figures 2 vs 8/9): the same
// configured functionality generated as raw native code and as M-Proxy
// code, measured in non-blank LoC, lexical tokens and branch points.
//
//   ./build/bench/bench_e2_complexity
#include <cstdio>
#include <string>
#include <vector>

#include "plugin/codegen.h"
#include "plugin/configuration.h"
#include "plugin/metrics.h"

using namespace mobivine;
using namespace mobivine::plugin;

namespace {

ProxyConfiguration Configure(const core::DescriptorStore& store,
                             const std::string& proxy,
                             const std::string& method,
                             const std::string& platform) {
  ProxyConfiguration config =
      ProxyConfiguration::For(*store.Find(proxy), method, platform);
  config.SetVariable("latitude", "28.5245");
  config.SetVariable("longitude", "77.1855");
  config.SetVariable("altitude", "210");
  config.SetVariable("radius", "200");
  config.SetVariable("timer", "-1");
  config.SetVariable("destination", "\"+15550199\"");
  config.SetVariable("text", "\"on site\"");
  return config;
}

}  // namespace

int main() {
  const auto store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  CodeGenerator generator(store);

  struct Case {
    const char* proxy;
    const char* method;
    bool callback_api;  // event plumbing dominates the raw code
  };
  const std::vector<Case> cases = {{"Location", "addProximityAlert", true},
                                   {"Location", "getLocation", false},
                                   {"Sms", "sendTextMessage", true}};
  // "iphone" is the §7 extension platform (objc codegen).
  const std::vector<std::string> platforms = {"android", "s60", "webview",
                                              "iphone"};

  std::printf("E2 — application-fragment complexity, raw vs M-Proxy\n\n");
  std::printf("%-26s %-9s | %11s %11s | %13s %13s | %9s %9s | %7s\n",
              "API", "platform", "raw LoC", "proxy LoC", "raw tokens",
              "proxy tokens", "raw br", "proxy br", "LoC red.");
  std::printf("%s\n", std::string(128, '-').c_str());

  bool shape_holds = true;
  double total_reduction = 0;
  int measured = 0;
  for (const Case& c : cases) {
    for (const std::string& platform : platforms) {
      ProxyConfiguration config = Configure(store, c.proxy, c.method, platform);
      // Callback APIs drag class-level event plumbing into the raw code, so
      // both styles are compared as full application fragments; the
      // synchronous getLocation compares as plain invocation snippets.
      // Exception: raw iPhone SMS cannot observe delivery AT ALL (openURL
      // handoff), so the functionally comparable unit is the bare
      // invocation snippet, not the callback-carrying fragment.
      const bool callback_comparison =
          c.callback_api &&
          !(platform == "iphone" && std::string(c.proxy) == "Sms");
      const CodeStyle raw_style = CodeStyle::kRaw;
      const std::string raw_code =
          callback_comparison
              ? generator.ApplicationFragment(config, raw_style).code
              : generator.InvocationSnippet(config, raw_style).code;
      const std::string proxy_code =
          callback_comparison
              ? generator.ApplicationFragment(config, CodeStyle::kProxy).code
              : generator.InvocationSnippet(config, CodeStyle::kProxy).code;
      const CodeMetrics raw = Measure(raw_code);
      const CodeMetrics proxy = Measure(proxy_code);
      const double reduction =
          100.0 * (raw.lines - proxy.lines) / std::max(raw.lines, 1);
      std::printf("%-26s %-9s | %11d %11d | %13d %13d | %9d %9d | %6.0f%%\n",
                  (std::string(c.proxy) + "." + c.method).c_str(),
                  platform.c_str(), raw.lines, proxy.lines, raw.tokens,
                  proxy.tokens, raw.branches, proxy.branches, reduction);
      // Callback-heavy APIs must shrink decisively; synchronous /
      // handoff-only APIs must not grow by more than a couple of
      // boilerplate lines.
      if (callback_comparison && proxy.lines >= raw.lines) {
        shape_holds = false;
      }
      if (!callback_comparison && proxy.lines > raw.lines + 3) {
        shape_holds = false;
      }
      total_reduction += reduction;
      ++measured;
    }
  }
  std::printf("\nmean LoC reduction with proxies: %.0f%%\n",
              total_reduction / measured);
  std::printf("paper's qualitative claim (Figure 8 'much simpler and "
              "smaller' than Figure 2): %s\n",
              shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
