// A3 — ablation: real-time microbenchmarks of the de-fragmentation
// machinery itself (the paper's proxy overhead, measured in host
// nanoseconds rather than calibrated virtual time):
//   * MiniJS: script statements, script->host crossings, function calls
//   * property bag set/lookup with descriptor validation
//   * native exception -> ProxyError mapping
//
//   ./build/bench/bench_a3_bridge
#include <benchmark/benchmark.h>

#include "android/exceptions.h"
#include "core/descriptor/proxy_descriptor.h"
#include "core/errors.h"
#include "core/property.h"
#include "minijs/interpreter.h"

using namespace mobivine;

namespace {

void BM_MiniJsArithmeticStatement(benchmark::State& state) {
  minijs::Interpreter interp;
  interp.Run("var x = 0;");
  interp.Run("function tick() { x = x + 1; return x; }");
  minijs::Value tick = interp.GetGlobal("tick");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Call(tick, minijs::Value::Undefined(), {}));
  }
  state.counters["steps/call"] = benchmark::Counter(
      static_cast<double>(interp.steps()) / state.iterations());
}
BENCHMARK(BM_MiniJsArithmeticStatement);

void BM_MiniJsHostCrossing(benchmark::State& state) {
  minijs::Interpreter interp;
  interp.SetGlobal("native",
                   minijs::MakeHostFunction(
                       "native", [](minijs::Interpreter&, const minijs::Value&,
                                    std::vector<minijs::Value>& args) {
                         return minijs::Value::Number(
                             args.empty() ? 0 : args[0].ToNumber() + 1);
                       }));
  interp.Run("function cross(v) { return native(v); }");
  minijs::Value cross = interp.GetGlobal("cross");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        interp.Call(cross, minijs::Value::Undefined(),
                    {minijs::Value::Number(1)}));
  }
}
BENCHMARK(BM_MiniJsHostCrossing);

void BM_MiniJsObjectConstruction(benchmark::State& state) {
  minijs::Interpreter interp;
  interp.Run(R"(
    function Proxy() {
      this.setProperty = function(k, v) { return v; };
      this.invoke = function(a, b) { return a + b; };
    }
    function make() { var p = new Proxy(); return p.invoke(1, 2); }
  )");
  minijs::Value make = interp.GetGlobal("make");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Call(make, minijs::Value::Undefined(), {}));
  }
}
BENCHMARK(BM_MiniJsObjectConstruction);

void BM_PropertyBagSetGet(benchmark::State& state) {
  core::PropertyBag bag;
  for (auto _ : state) {
    bag.Set("preferredResponseTime", 100LL);
    benchmark::DoNotOptimize(bag.Get<long long>("preferredResponseTime"));
  }
}
BENCHMARK(BM_PropertyBagSetGet);

void BM_PropertyValidationAgainstDescriptor(benchmark::State& state) {
  core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  const core::BindingPlane* binding =
      store.Find("Location")->FindBinding("s60");
  for (auto _ : state) {
    const core::PropertySpec* spec = binding->FindProperty("powerConsumption");
    bool allowed = false;
    for (const auto& value : spec->allowed_values) {
      if (value == "medium") allowed = true;
    }
    benchmark::DoNotOptimize(allowed);
  }
}
BENCHMARK(BM_PropertyValidationAgainstDescriptor);

void BM_ExceptionMapping(benchmark::State& state) {
  for (auto _ : state) {
    core::ErrorCode code = core::ErrorCode::kUnknown;
    try {
      try {
        throw android::SecurityException("no permission");
      } catch (...) {
        core::RethrowAsProxyError("android");
      }
    } catch (const core::ProxyError& error) {
      code = error.code();
    }
    benchmark::DoNotOptimize(code);
  }
}
BENCHMARK(BM_ExceptionMapping);

void BM_UniformErrorCodeFromWebView(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FromWebViewErrorCode(101));
  }
}
BENCHMARK(BM_UniformErrorCodeFromWebView);

}  // namespace

BENCHMARK_MAIN();
